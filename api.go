// Package secureloop is the public API of SecureLoop-Go, a from-scratch
// reproduction of "SecureLoop: Design Space Exploration of Secure DNN
// Accelerators" (MICRO 2023). It schedules DNN workloads onto spatial
// accelerators whose off-chip traffic passes through AES-GCM cryptographic
// engines, searching loopnest schedules, authentication-block assignments
// and cross-layer combinations for the best secure design.
//
// The typical flow:
//
//	net := secureloop.MobileNetV2()
//	spec := secureloop.BaseArch()
//	crypto := secureloop.CryptoConfig{Engine: secureloop.ParallelEngine(), CountPerDatatype: 1}
//	s := secureloop.NewScheduler(spec, crypto)
//	res, err := s.ScheduleNetwork(net, secureloop.CryptOptCross)
//
// Long searches are cancellable: ScheduleNetworkCtx accepts a
// context.Context, stops at the next stage boundary when it is cancelled,
// and returns ctx.Err() wrapped with the stage the search reached. Progress
// is observable by setting the scheduler's Observe field to an Observer
// (for example one built with NewProgressLogger):
//
//	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
//	defer cancel()
//	s.Observe = secureloop.NewProgressLogger(os.Stderr)
//	res, err := s.ScheduleNetworkCtx(ctx, net, secureloop.CryptOptCross)
//
// The result carries per-layer loopnest schedules, AuthBlock assignments,
// latency/energy statistics and the authentication-traffic breakdown.
// Design-space sweeps are exported too: Sweep evaluates a (spec, crypto)
// cross product, and SweepFront runs the dominance-pruned coordinator that
// returns the same Pareto front while skipping points a cheap lower bound
// proves cannot reach it. Deeper functionality (the AuthBlock search, the
// roofline model, the functional AES-GCM data path) lives in the internal
// packages and is exercised by the cmd/ binaries and examples/.
//
// For long-lived deployments, cmd/secured wraps the same searches in an
// HTTP/JSON daemon (internal/service): typed requests, a bounded admission
// queue, singleflight coalescing of identical in-flight requests, SSE
// progress streaming, and warm answers from a shared persistent store.
// internal/service/client is its typed Go client.
package secureloop

import (
	"io"

	"context"

	"secureloop/internal/arch"
	"secureloop/internal/core"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/dse"
	"secureloop/internal/mapper"
	"secureloop/internal/obs"
	"secureloop/internal/store"
	"secureloop/internal/workload"
)

// Scheduler runs the three-step SecureLoop search (crypto-aware loopnest
// scheduling, optimal AuthBlock assignment, cross-layer annealing).
type Scheduler = core.Scheduler

// NetworkResult is a scheduled network with totals and per-layer schedules.
type NetworkResult = core.NetworkResult

// LayerResult is one layer's schedule and cost.
type LayerResult = core.LayerResult

// Algorithm selects a Table 1 scheduling algorithm.
type Algorithm = core.Algorithm

// The scheduling algorithms (paper Table 1) plus the unsecure baseline.
const (
	Unsecure        = core.Unsecure
	CryptTileSingle = core.CryptTileSingle
	CryptOptSingle  = core.CryptOptSingle
	CryptOptCross   = core.CryptOptCross
)

// Objective selects the fine-tuning cost function.
type Objective = core.Objective

// The fine-tuning objectives.
const (
	MinLatency = core.MinLatency
	MinEDP     = core.MinEDP
)

// MapperOptions selects the per-layer loopnest search strategy (the
// scheduler's Mapper field). The zero value is the exhaustive search; set
// Mode to GuidedSearch for the lower-bound-guided mode, which returns
// byte-identical results at the default Epsilon = 0 an order of magnitude
// faster, seeding each search from the warm-start store of previous
// searches over similar layer shapes:
//
//	s := secureloop.NewScheduler(spec, crypto)
//	s.Mapper = secureloop.MapperOptions{Mode: secureloop.GuidedSearch}
//
// Epsilon > 0 relaxes the search further: each returned schedule's
// scheduling cycles may exceed the exhaustive result's by at most a factor
// of (1 + Epsilon).
type MapperOptions = mapper.Options

// The loopnest search modes.
const (
	ExhaustiveSearch = mapper.Exhaustive
	GuidedSearch     = mapper.Guided
)

// ArchSpec describes a spatial DNN accelerator.
type ArchSpec = arch.Spec

// DRAMTech is an off-chip memory technology.
type DRAMTech = arch.DRAMTech

// CryptoConfig deploys AES-GCM engines (one group per datatype).
type CryptoConfig = cryptoengine.Config

// CryptoEngine is one AES-GCM engine microarchitecture (Table 2).
type CryptoEngine = cryptoengine.EngineArch

// Observer receives progress events from a running search (stage start/end,
// per-layer completion, annealing progress). Implementations must be safe
// for concurrent use; events carry no wall-clock state, so an observed run
// stays byte-identical to an unobserved one.
type Observer = obs.Observer

// NewProgressLogger returns an Observer that renders progress events as
// human-readable lines on w (the cmd binaries' -progress output).
func NewProgressLogger(w io.Writer) Observer { return obs.NewLogger(w) }

// ResultStore is a persistent content-addressed result store. Assign one to
// a scheduler's Store field and identical scheduling requests — whole-network
// schedules, per-layer loopnest searches, AuthBlock assignments — resolve
// from disk across processes and restarts, byte-identical to the searches
// they replace:
//
//	st, err := secureloop.OpenResultStore(".secureloop-store", secureloop.StoreOptions{})
//	if err != nil { ... }
//	defer st.Close()
//	s := secureloop.NewScheduler(spec, crypto)
//	s.Store = st
//
// The store is safe for concurrent use by any number of schedulers; a
// corrupt or torn record (for example after a crash) is dropped and
// recomputed, never fatal.
type ResultStore = store.Store

// StoreOptions tunes a result store: MaxBytes bounds the on-disk footprint
// (oldest segments are evicted beyond it), SegmentBytes sets the log
// rotation threshold. Zero values select the defaults.
type StoreOptions = store.Options

// StoreStats is a snapshot of a store's counters (hits, misses, puts,
// corruption drops, evictions) and footprint.
type StoreStats = store.Stats

// OpenResultStore opens (creating if needed) the persistent result store in
// dir. Call Close to flush the write-behind queue and release the segment
// files.
func OpenResultStore(dir string, opt StoreOptions) (*ResultStore, error) {
	return store.Open(dir, opt)
}

// DesignPoint is one evaluated secure-accelerator design from a
// design-space sweep: the (architecture, crypto) pair with its area,
// latency, energy, unsecure baseline and Pareto-front membership.
type DesignPoint = dse.DesignPoint

// SweepOptions tunes a design-space sweep: annealing iterations, mapper
// mode, worker-pool width, persistent store, and the coordinator knobs
// (Shards, Prune, BoundSlack, ShardTimeout, Executor).
type SweepOptions = dse.Options

// SweepExecutor dispatches one shard of a coordinator sweep's design-point
// evaluations; implement it to run shards somewhere other than the
// in-process pool.
type SweepExecutor = dse.Executor

// SweepFrontResult is a coordinator sweep's outcome: the Pareto front and
// the run's pruning/dispatch accounting.
type SweepFrontResult = dse.SweepFrontResult

// SweepStats is the coordinator sweep's work accounting: points bounded,
// pruned, deferred, re-evaluated, fully evaluated, store-answered,
// re-dispatched.
type SweepStats = dse.FrontStats

// Sweep evaluates the cross product of architectures and crypto configs on
// one workload, returning every design point in deterministic specs-major
// order (MarkParetoFront marks the front in place).
func Sweep(net *Network, specs []ArchSpec, cryptos []CryptoConfig, alg Algorithm, opt SweepOptions) ([]DesignPoint, error) {
	return dse.SweepOpts(net, specs, cryptos, alg, opt)
}

// SweepFront runs the dominance-pruned coordinator sweep: a cheap bound
// pre-pass, canonical best-bound-first shards, and a streaming Pareto
// front let it skip design points that cannot reach the front. The
// returned front is byte-identical to ParetoFront over an unpruned Sweep:
//
//	res, err := secureloop.SweepFront(ctx, net, specs, cryptos,
//	    secureloop.CryptOptCross, secureloop.SweepOptions{Prune: true, Shards: 4})
func SweepFront(ctx context.Context, net *Network, specs []ArchSpec, cryptos []CryptoConfig, alg Algorithm, opt SweepOptions) (SweepFrontResult, error) {
	return dse.SweepFrontCtx(ctx, net, specs, cryptos, alg, opt)
}

// MarkParetoFront sets each point's Pareto field: true iff no other point
// has both smaller-or-equal area and smaller-or-equal latency with at
// least one strict. The marking is a pure function of the multiset of
// points, independent of their order.
func MarkParetoFront(points []DesignPoint) { dse.MarkPareto(points) }

// ParetoFront returns the Pareto-optimal points sorted by ascending area.
func ParetoFront(points []DesignPoint) []DesignPoint { return dse.ParetoFront(points) }

// Network is a DNN workload with its segment structure.
type Network = workload.Network

// Layer is one convolutional layer.
type Layer = workload.Layer

// NewScheduler returns a scheduler with the paper's default knobs (k=6,
// 1000 annealing iterations).
func NewScheduler(spec ArchSpec, crypto CryptoConfig) *Scheduler {
	return core.New(spec, crypto)
}

// BaseArch returns the paper's base configuration: Eyeriss-derived 14x12 PE
// array, 131 kB buffer, LPDDR4 at 64 B/cycle, 100 MHz.
func BaseArch() ArchSpec { return arch.Base() }

// The Table 2 cryptographic engines.
func PipelinedEngine() CryptoEngine { return cryptoengine.Pipelined() }
func ParallelEngine() CryptoEngine  { return cryptoengine.Parallel() }
func SerialEngine() CryptoEngine    { return cryptoengine.Serial() }

// The evaluation workloads (VGG16 is an extension beyond the paper's set).
func AlexNet() *Network     { return workload.AlexNet() }
func ResNet18() *Network    { return workload.ResNet18() }
func MobileNetV2() *Network { return workload.MobileNetV2() }
func VGG16() *Network       { return workload.VGG16() }

// NetworkByName resolves "alexnet", "resnet18", "mobilenetv2" or "vgg16".
func NetworkByName(name string) (*Network, error) { return workload.ByName(name) }

// LoadNetworkJSON reads a custom network description (see the JSON schema
// in internal/workload: layers with c/m/r/s/p/q, stride, pad, depthwise,
// cut_after segment markers).
func LoadNetworkJSON(path string) (*Network, error) { return workload.LoadJSON(path) }
