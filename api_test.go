package secureloop_test

import (
	"testing"

	secureloop "secureloop"
)

// TestPublicAPIQuickstart exercises the documented public flow end to end.
func TestPublicAPIQuickstart(t *testing.T) {
	net := secureloop.AlexNet()
	spec := secureloop.BaseArch()
	crypto := secureloop.CryptoConfig{Engine: secureloop.ParallelEngine(), CountPerDatatype: 1}

	s := secureloop.NewScheduler(spec, crypto)
	s.Anneal.Iterations = 50

	base, err := s.ScheduleNetwork(net, secureloop.Unsecure)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.ScheduleNetwork(net, secureloop.CryptOptCross)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Cycles < base.Total.Cycles {
		t.Error("secure run faster than unsecure baseline")
	}
	if len(res.Layers) != net.NumLayers() {
		t.Error("missing layer results")
	}
}

func TestNetworkByName(t *testing.T) {
	for _, name := range []string{"alexnet", "resnet18", "mobilenetv2"} {
		n, err := secureloop.NetworkByName(name)
		if err != nil || n.NumLayers() == 0 {
			t.Errorf("NetworkByName(%q): %v", name, err)
		}
	}
	if _, err := secureloop.NetworkByName("lenet"); err == nil {
		t.Error("unknown network accepted")
	}
}

func TestEngineConstructors(t *testing.T) {
	if secureloop.PipelinedEngine().CyclesPerBlock() != 1 {
		t.Error("pipelined interval")
	}
	if secureloop.ParallelEngine().CyclesPerBlock() != 11 {
		t.Error("parallel interval")
	}
	if secureloop.SerialEngine().CyclesPerBlock() != 336 {
		t.Error("serial interval")
	}
}

// ExampleNewScheduler demonstrates the documented flow: pick a workload and
// a secure design, schedule with the full three-step engine, and inspect
// totals. (Compiled, not executed: a full run takes seconds.)
func ExampleNewScheduler() {
	net := secureloop.MobileNetV2()
	spec := secureloop.BaseArch()
	crypto := secureloop.CryptoConfig{
		Engine:           secureloop.ParallelEngine(),
		CountPerDatatype: 1,
	}
	s := secureloop.NewScheduler(spec, crypto)
	res, err := s.ScheduleNetwork(net, secureloop.CryptOptCross)
	if err != nil {
		panic(err)
	}
	_ = res.Total.Cycles              // latency
	_ = res.Traffic.Total()           // authentication overhead bits
	_ = res.Layers[0].Mapping         // chosen loopnest
	_ = res.Layers[0].OfmapAssignment // chosen AuthBlock regime
}
