// Package store is the disk-persistent, content-addressed result tier that
// sits beneath the process-wide in-memory caches (mapper search cache,
// authblock optimal memo, the scheduler's whole-network results). A request
// key is the SHA-256 of a canonical binary encoding of everything that
// determines the result — layer shape, architecture, crypto configuration,
// search options, k — so identical requests from any process, any run, any
// machine resolve to the same record, and a warm sweep turns recomputation
// into index lookups (ROADMAP items 1 and 4 both plug into this substrate).
//
// The file is split in two:
//
//   - key.go: the canonical encoder/decoder. Encodings are deterministic
//     (explicit field order, fixed-width big-endian values, one tag byte per
//     field, a leading format-version byte so any change to the encoding
//     invalidates every old key at once) and injective (distinct field
//     sequences never collide before hashing). FuzzKeyCodec holds the
//     round-trip and determinism obligations.
//   - store.go: the append-only CRC-checked segment log with its rebuildable
//     in-memory index.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
)

// Version is the canonical-encoding format version, the first byte of every
// encoding. Bump it whenever the meaning of any client's field sequence
// changes: every previously persisted key then misses cleanly instead of
// resolving to a stale result.
const Version byte = 1

// Key is a content address: the SHA-256 of a canonical encoding.
type Key [sha256.Size]byte

// Field tags. Each encoded field is one tag byte followed by a fixed-width
// (or length-prefixed) big-endian payload, so the byte stream parses
// unambiguously and two different field sequences can never encode to the
// same bytes.
const (
	tagInt    byte = 0x01 // 8-byte two's-complement big-endian
	tagFloat  byte = 0x02 // 8-byte IEEE-754 bits, big-endian
	tagBool   byte = 0x03 // 1 byte, 0 or 1
	tagString byte = 0x04 // 4-byte length + raw bytes
	tagBytes  byte = 0x05 // 4-byte length + raw bytes
)

// Enc builds a canonical encoding field by field. The zero value is not
// ready to use; call NewEnc so the version byte leads the stream.
type Enc struct {
	b []byte
}

// NewEnc returns an encoder primed with the format version byte.
func NewEnc() *Enc {
	return &Enc{b: []byte{Version}}
}

// Int appends a signed integer field.
func (e *Enc) Int(v int64) *Enc {
	var p [9]byte
	p[0] = tagInt
	binary.BigEndian.PutUint64(p[1:], uint64(v))
	e.b = append(e.b, p[:]...)
	return e
}

// Float appends a float field by its exact IEEE-754 bits.
func (e *Enc) Float(v float64) *Enc {
	var p [9]byte
	p[0] = tagFloat
	binary.BigEndian.PutUint64(p[1:], math.Float64bits(v))
	e.b = append(e.b, p[:]...)
	return e
}

// Bool appends a boolean field.
func (e *Enc) Bool(v bool) *Enc {
	x := byte(0)
	if v {
		x = 1
	}
	e.b = append(e.b, tagBool, x)
	return e
}

// String appends a string field (length-prefixed, so adjacent strings can
// never alias each other's bytes).
func (e *Enc) String(s string) *Enc {
	var p [5]byte
	p[0] = tagString
	binary.BigEndian.PutUint32(p[1:], uint32(len(s)))
	e.b = append(e.b, p[:]...)
	e.b = append(e.b, s...)
	return e
}

// Bytes appends a raw byte-slice field.
func (e *Enc) Bytes(v []byte) *Enc {
	var p [5]byte
	p[0] = tagBytes
	binary.BigEndian.PutUint32(p[1:], uint32(len(v)))
	e.b = append(e.b, p[:]...)
	e.b = append(e.b, v...)
	return e
}

// Encoding returns the canonical byte stream built so far. Callers must not
// mutate it.
func (e *Enc) Encoding() []byte { return e.b }

// Key hashes the encoding into its content address.
func (e *Enc) Key() Key { return sha256.Sum256(e.b) }

// Dec decodes a canonical encoding produced by Enc. Every accessor returns
// an error on tag or bounds mismatch instead of panicking, so a corrupt or
// version-skewed record is a clean miss, never a crash.
type Dec struct {
	b   []byte
	off int
}

// NewDec validates the version byte and returns a decoder positioned at the
// first field.
func NewDec(b []byte) (*Dec, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("store: empty encoding")
	}
	if b[0] != Version {
		return nil, fmt.Errorf("store: encoding version %d, want %d", b[0], Version)
	}
	return &Dec{b: b, off: 1}, nil
}

func (d *Dec) tag(want byte) error {
	if d.off >= len(d.b) {
		return fmt.Errorf("store: truncated encoding at offset %d", d.off)
	}
	if got := d.b[d.off]; got != want {
		return fmt.Errorf("store: field tag %#x at offset %d, want %#x", got, d.off, want)
	}
	d.off++
	return nil
}

func (d *Dec) fixed(n int) ([]byte, error) {
	if d.off+n > len(d.b) {
		return nil, fmt.Errorf("store: truncated field at offset %d", d.off)
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p, nil
}

// Int decodes the next field as a signed integer.
func (d *Dec) Int() (int64, error) {
	if err := d.tag(tagInt); err != nil {
		return 0, err
	}
	p, err := d.fixed(8)
	if err != nil {
		return 0, err
	}
	return int64(binary.BigEndian.Uint64(p)), nil
}

// Float decodes the next field as a float.
func (d *Dec) Float() (float64, error) {
	if err := d.tag(tagFloat); err != nil {
		return 0, err
	}
	p, err := d.fixed(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.BigEndian.Uint64(p)), nil
}

// Bool decodes the next field as a boolean.
func (d *Dec) Bool() (bool, error) {
	if err := d.tag(tagBool); err != nil {
		return false, err
	}
	p, err := d.fixed(1)
	if err != nil {
		return false, err
	}
	switch p[0] {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, fmt.Errorf("store: bool byte %#x", p[0])
}

// String decodes the next field as a string.
func (d *Dec) String() (string, error) {
	if err := d.tag(tagString); err != nil {
		return "", err
	}
	p, err := d.fixed(4)
	if err != nil {
		return "", err
	}
	n := int(binary.BigEndian.Uint32(p))
	v, err := d.fixed(n)
	if err != nil {
		return "", err
	}
	return string(v), nil
}

// Bytes decodes the next field as a byte slice (copied, so the decoder's
// backing buffer can be reused).
func (d *Dec) Bytes() ([]byte, error) {
	if err := d.tag(tagBytes); err != nil {
		return nil, err
	}
	p, err := d.fixed(4)
	if err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(p))
	v, err := d.fixed(n)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), v...), nil
}

// Done reports whether every encoded field has been consumed; decoding a
// record with trailing bytes is a format error (a sign the writer and
// reader disagree about the field sequence).
func (d *Dec) Done() error {
	if d.off != len(d.b) {
		return fmt.Errorf("store: %d trailing bytes after last field", len(d.b)-d.off)
	}
	return nil
}
