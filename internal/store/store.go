package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Record kinds, stored in each record's payload so the log is
// self-describing when inspected offline. The store itself treats them as
// opaque; the key alone addresses a record.
const (
	KindMapper    byte = 1 // mapper top-k candidates
	KindAuthBlock byte = 2 // authblock Optimal choice
	KindNetwork   byte = 3 // full core network schedule
)

// On-disk record layout:
//
//	crc32c(payload)  4 bytes, little-endian
//	len(payload)     4 bytes, little-endian
//	payload          kind (1 byte) | key (32 bytes) | value
//
// The CRC covers the whole payload, so a torn write, a bit flip in the
// value, or a garbage length field all fail validation identically: the
// record (and, in the tail case, everything after it) is dropped and
// counted, never returned.
const (
	headerSize  = 8
	payloadMin  = 1 + KeySize
	maxPayload  = 64 << 20 // sanity cap: a corrupt length field must not drive a huge allocation
	segPrefix   = "seg-"
	segSuffix   = ".log"
	tmpSuffix   = ".tmp"
	defaultMax  = 1 << 30 // 1 GiB byte budget
	defaultSeg  = 8 << 20 // 8 MiB rotation threshold
	opQueueSize = 256
)

// KeySize is the size of a content address in bytes.
const KeySize = 32

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a Store. The zero value means a 1 GiB byte budget with
// 8 MiB segments.
type Options struct {
	// MaxBytes is the total on-disk byte budget. When the log exceeds it,
	// whole segments are evicted oldest-first (the active segment is never
	// evicted). <= 0 means the 1 GiB default.
	MaxBytes int64
	// SegmentBytes is the rotation threshold: once the active segment
	// reaches it, appends move to a fresh segment. <= 0 means 8 MiB.
	SegmentBytes int64
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	Hits            int64 // Get found a record (pending or on disk)
	Misses          int64 // Get found nothing
	Puts            int64 // Put calls accepted
	Corrupt         int64 // CRC/format failures detected at open or read time
	EvictedSegments int64 // whole segments dropped by the byte budget
	EvictedBytes    int64 // bytes reclaimed by eviction
	Errors          int64 // I/O failures (write or read) — records dropped, store kept serving
	Entries         int   // live keys (index + unflushed pending)
	Segments        int   // on-disk segment files
	Bytes           int64 // on-disk log size
}

type ref struct {
	seg  uint64 // segment id
	off  int64  // record start offset within the segment
	plen uint32 // payload length
}

type segment struct {
	id   uint64
	path string
	f    *os.File
	size int64 // written by the writer goroutine / Open only
}

type pendingVal struct {
	val []byte
	seq uint64
}

type op struct {
	put  bool
	kind byte
	key  Key
	val  []byte
	seq  uint64
	ack  chan struct{} // flush barrier: writer fsyncs then closes
	comp chan error    // compaction request: writer compacts then replies
}

// Store is a disk-backed, content-addressed result store: an append-only
// log of CRC-checked records across numbered segment files, with an
// in-memory index rebuilt on open. Writes are write-behind (a single
// writer goroutine appends; Get sees unflushed puts via the pending map),
// reads are CRC-verified, corruption is counted and dropped, never fatal.
// All methods are safe for concurrent use.
type Store struct {
	dir string
	opt Options

	mu      sync.RWMutex
	index   map[Key]ref         // guarded by mu
	pending map[Key]pendingVal  // guarded by mu
	segs    map[uint64]*segment // guarded by mu
	segIDs  []uint64            // guarded by mu (ascending)
	active  *segment            // guarded by mu (pointer; size is writer-only)
	shut    bool                // guarded by mu (true once Close has run)

	sendMu sync.Mutex
	closed bool    // guarded by sendMu (no further ops may be enqueued)
	seq    uint64  // guarded by sendMu
	ops    chan op // enqueue guarded by sendMu; writer goroutine drains
	wg     sync.WaitGroup

	totalBytes atomic.Int64
	hits       atomic.Int64
	misses     atomic.Int64
	puts       atomic.Int64
	corrupt    atomic.Int64
	evictSegs  atomic.Int64
	evictBytes atomic.Int64
	ioErrors   atomic.Int64
}

// Open opens (or creates) the store rooted at dir and rebuilds the index
// by scanning every segment. Records that fail CRC or format validation
// are counted and skipped; a corrupt tail on the newest segment is
// physically truncated so the log is clean for appending. Corruption is
// never an open failure — only real I/O errors are.
func Open(dir string, opt Options) (*Store, error) {
	if opt.MaxBytes <= 0 {
		opt.MaxBytes = defaultMax
	}
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = defaultSeg
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	s := &Store{
		dir:     dir,
		opt:     opt,
		index:   make(map[Key]ref),
		pending: make(map[Key]pendingVal),
		segs:    make(map[uint64]*segment),
		ops:     make(chan op, opQueueSize),
	}
	ids, err := listSegments(dir)
	if err != nil {
		s.closeFiles()
		return nil, err
	}
	for i, id := range ids {
		last := i == len(ids)-1
		if err := s.scanSegment(id, last); err != nil {
			s.closeFiles()
			return nil, err
		}
	}
	s.mu.Lock()
	empty := len(s.segIDs) == 0
	s.mu.Unlock()
	if empty {
		if err := s.addSegment(1); err != nil {
			s.closeFiles()
			return nil, err
		}
	}
	s.mu.Lock()
	s.active = s.segs[s.segIDs[len(s.segIDs)-1]]
	s.mu.Unlock()
	s.wg.Add(1)
	go s.run()
	return s, nil
}

func segPath(dir string, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", segPrefix, id, segSuffix))
}

func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: list %s: %w", dir, err)
	}
	var ids []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) {
			continue
		}
		if strings.HasSuffix(name, tmpSuffix) {
			// Leftover from a compaction that never reached its atomic
			// rename: the old segments are still intact, so the temp file
			// is garbage by construction.
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasSuffix(name, segSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		id, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// scanSegment opens one segment, replays its records into the index, and —
// if it is the newest segment — truncates any corrupt tail so appends
// resume on a clean boundary. Segments scan in ascending id order and
// records in file order, so the latest record for a key always wins.
func (s *Store) scanSegment(id uint64, last bool) error {
	// Open-time only (no writer goroutine yet), but the index and segment
	// tables are mu-guarded, so hold mu for the replay; it is uncontended.
	s.mu.Lock()
	defer s.mu.Unlock()
	path := segPath(s.dir, id)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: open segment: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: stat segment: %w", err)
	}
	size := fi.Size()
	seg := &segment{id: id, path: path, f: f, size: size}

	var off int64
	var hdr [headerSize]byte
	clean := true
	for off < size {
		if size-off < headerSize {
			clean = false
			break
		}
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			clean = false
			break
		}
		plen := binary.LittleEndian.Uint32(hdr[4:])
		if plen < payloadMin || plen > maxPayload || off+headerSize+int64(plen) > size {
			clean = false
			break
		}
		payload := make([]byte, plen)
		if _, err := f.ReadAt(payload, off+headerSize); err != nil {
			clean = false
			break
		}
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[:4]) {
			clean = false
			break
		}
		var key Key
		copy(key[:], payload[1:1+KeySize])
		s.index[key] = ref{seg: id, off: off, plen: plen}
		off += headerSize + int64(plen)
	}
	if !clean {
		s.corrupt.Add(1)
		if last {
			// Torn tail on the segment we are about to append to: cut it
			// off so new records land on a valid boundary. On earlier
			// segments the bytes past the bad record are unreachable but
			// harmless — the index simply never points there.
			if err := f.Truncate(off); err != nil {
				f.Close()
				return fmt.Errorf("store: truncate corrupt tail: %w", err)
			}
			seg.size = off
		}
	}
	s.segs[id] = seg
	s.segIDs = append(s.segIDs, id)
	s.totalBytes.Add(seg.size)
	return nil
}

// addSegment creates a fresh segment with the given id and makes it active.
// Called from Open and the writer goroutine only.
func (s *Store) addSegment(id uint64) error {
	path := segPath(s.dir, id)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: create segment: %w", err)
	}
	seg := &segment{id: id, path: path, f: f}
	s.mu.Lock()
	s.segs[id] = seg
	s.segIDs = append(s.segIDs, id)
	s.active = seg
	s.mu.Unlock()
	return nil
}

func (s *Store) closeFiles() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, seg := range s.segs {
		seg.f.Close()
	}
}

// Get returns the stored value for key, or (nil, false). The returned
// slice is a private copy. Values are CRC-verified on every read; a
// record that fails verification is dropped from the index, counted, and
// reported as a miss.
func (s *Store) Get(key Key) ([]byte, bool) {
	s.mu.RLock()
	if s.shut {
		s.mu.RUnlock()
		s.misses.Add(1)
		return nil, false
	}
	if p, ok := s.pending[key]; ok {
		v := append([]byte(nil), p.val...)
		s.mu.RUnlock()
		s.hits.Add(1)
		return v, true
	}
	r, ok := s.index[key]
	if !ok {
		s.mu.RUnlock()
		s.misses.Add(1)
		return nil, false
	}
	seg := s.segs[r.seg]
	buf := make([]byte, headerSize+int(r.plen))
	_, err := seg.f.ReadAt(buf, r.off)
	s.mu.RUnlock()
	if err != nil {
		s.ioErrors.Add(1)
		s.dropEntry(key, r)
		return nil, false
	}
	payload := buf[headerSize:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(buf[:4]) ||
		!keyMatches(payload, key) {
		s.corrupt.Add(1)
		s.dropEntry(key, r)
		return nil, false
	}
	s.hits.Add(1)
	return append([]byte(nil), payload[1+KeySize:]...), true
}

// Has reports whether a record for key exists (pending or indexed) without
// reading its value. It is a peek, not a read: no CRC verification, no
// hit/miss counting — a later Get can still miss if the record turns out
// corrupt. The DSE coordinator uses it to label store-answered evaluations
// in progress output.
func (s *Store) Has(key Key) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.shut {
		return false
	}
	if _, ok := s.pending[key]; ok {
		return true
	}
	_, ok := s.index[key]
	return ok
}

func keyMatches(payload []byte, key Key) bool {
	var k Key
	copy(k[:], payload[1:1+KeySize])
	return k == key
}

// dropEntry removes a bad index entry (if it still points at the same
// record) and counts the lookup as a miss.
func (s *Store) dropEntry(key Key, r ref) {
	s.mu.Lock()
	if cur, ok := s.index[key]; ok && cur == r {
		delete(s.index, key)
	}
	s.mu.Unlock()
	s.misses.Add(1)
}

// Put records val under key, write-behind: it returns once the value is
// queued and visible to Get, and the writer goroutine appends it to the
// log. Put on a closed store is a no-op.
func (s *Store) Put(kind byte, key Key, val []byte) {
	v := append([]byte(nil), val...)
	s.sendMu.Lock()
	if s.closed {
		s.sendMu.Unlock()
		return
	}
	s.seq++
	seq := s.seq
	s.mu.Lock()
	s.pending[key] = pendingVal{val: v, seq: seq}
	s.mu.Unlock()
	s.puts.Add(1)
	s.ops <- op{put: true, kind: kind, key: key, val: v, seq: seq}
	s.sendMu.Unlock()
}

// Flush blocks until every Put accepted before the call is durably in the
// log (appended and fsynced).
func (s *Store) Flush() {
	ack := make(chan struct{})
	s.sendMu.Lock()
	if s.closed {
		s.sendMu.Unlock()
		return
	}
	s.ops <- op{ack: ack}
	s.sendMu.Unlock()
	<-ack
}

// Compact rewrites the live entries into a single fresh segment (sorted by
// key for determinism), atomically renames it into place, and deletes the
// old segments. Reclaims space held by superseded and evicted records.
func (s *Store) Compact() error {
	reply := make(chan error, 1)
	s.sendMu.Lock()
	if s.closed {
		s.sendMu.Unlock()
		return fmt.Errorf("store: compact on closed store")
	}
	s.ops <- op{comp: reply}
	s.sendMu.Unlock()
	return <-reply
}

// Close drains pending writes, fsyncs, and closes every segment file.
// Safe to call twice.
func (s *Store) Close() error {
	s.sendMu.Lock()
	if s.closed {
		s.sendMu.Unlock()
		return nil
	}
	s.closed = true
	close(s.ops)
	s.sendMu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shut = true
	var firstErr error
	for _, id := range s.segIDs {
		seg := s.segs[id]
		if err := seg.f.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := seg.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	entries := len(s.index) + len(s.pending)
	segments := len(s.segIDs)
	s.mu.RUnlock()
	return Stats{
		Hits:            s.hits.Load(),
		Misses:          s.misses.Load(),
		Puts:            s.puts.Load(),
		Corrupt:         s.corrupt.Load(),
		EvictedSegments: s.evictSegs.Load(),
		EvictedBytes:    s.evictBytes.Load(),
		Errors:          s.ioErrors.Load(),
		Entries:         entries,
		Segments:        segments,
		Bytes:           s.totalBytes.Load(),
	}
}

// Dir returns the directory the store is rooted at.
func (s *Store) Dir() string { return s.dir }

// run is the writer goroutine: the only place segment files are appended,
// rotated, evicted, or compacted, so none of those need file-level locks.
func (s *Store) run() {
	defer s.wg.Done()
	for o := range s.ops {
		switch {
		case o.put:
			s.appendRecord(o)
		case o.comp != nil:
			o.comp <- s.compactNow()
		case o.ack != nil:
			if err := s.activeSeg().f.Sync(); err != nil {
				s.ioErrors.Add(1)
			}
			close(o.ack)
		}
	}
}

func encodeRecord(kind byte, key Key, val []byte) []byte {
	plen := 1 + KeySize + len(val)
	buf := make([]byte, headerSize+plen)
	payload := buf[headerSize:]
	payload[0] = kind
	copy(payload[1:], key[:])
	copy(payload[1+KeySize:], val)
	binary.LittleEndian.PutUint32(buf[:4], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(plen))
	return buf
}

// activeSeg snapshots the active-segment pointer under mu. Only the writer
// goroutine swaps it (rotate, compactNow), but Stats and Open share mu, so
// even the writer's own reads take the read lock.
func (s *Store) activeSeg() *segment {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.active
}

func (s *Store) appendRecord(o op) {
	seg := s.activeSeg()
	buf := encodeRecord(o.kind, o.key, o.val)
	off := seg.size
	if _, err := seg.f.WriteAt(buf, off); err != nil {
		// Disk trouble: drop the record (the pending entry too, so memory
		// does not grow unboundedly) and keep serving from what we have.
		s.ioErrors.Add(1)
		s.mu.Lock()
		if p, ok := s.pending[o.key]; ok && p.seq == o.seq {
			delete(s.pending, o.key)
		}
		s.mu.Unlock()
		return
	}
	seg.size += int64(len(buf))
	s.totalBytes.Add(int64(len(buf)))
	s.mu.Lock()
	s.index[o.key] = ref{seg: seg.id, off: off, plen: uint32(len(buf) - headerSize)}
	if p, ok := s.pending[o.key]; ok && p.seq == o.seq {
		delete(s.pending, o.key)
	}
	s.mu.Unlock()
	if seg.size >= s.opt.SegmentBytes {
		s.rotate()
	}
	s.evict()
}

func (s *Store) rotate() {
	seg := s.activeSeg()
	if err := seg.f.Sync(); err != nil {
		s.ioErrors.Add(1)
	}
	if err := s.addSegment(seg.id + 1); err != nil {
		// Could not create the next segment: keep appending to the
		// current one rather than losing data.
		s.ioErrors.Add(1)
	}
}

// evict drops whole segments, oldest first, while the log exceeds the byte
// budget. The active segment is never evicted.
func (s *Store) evict() {
	for s.totalBytes.Load() > s.opt.MaxBytes {
		s.mu.Lock()
		if len(s.segIDs) <= 1 {
			s.mu.Unlock()
			return
		}
		victimID := s.segIDs[0]
		victim := s.segs[victimID]
		s.segIDs = s.segIDs[1:]
		delete(s.segs, victimID)
		for k, r := range s.index {
			if r.seg == victimID {
				delete(s.index, k)
			}
		}
		s.mu.Unlock()
		victim.f.Close()
		if err := os.Remove(victim.path); err != nil {
			s.ioErrors.Add(1)
		}
		s.totalBytes.Add(-victim.size)
		s.evictSegs.Add(1)
		s.evictBytes.Add(victim.size)
	}
}

// compactNow runs on the writer goroutine, so it is serialized with every
// append that was enqueued before the Compact call; puts enqueued after it
// simply land in the fresh active segment. Live entries are collected,
// sorted by key bytes (map order must not leak into the file), written to
// a temp file, fsynced, and atomically renamed; only then are the old
// segments removed, so a crash at any point leaves either the old log or
// the new one fully intact.
func (s *Store) compactNow() error {
	type kv struct {
		key Key
		r   ref
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	live := make([]kv, 0, len(s.index))
	for k, r := range s.index {
		live = append(live, kv{key: k, r: r})
	}
	sort.Slice(live, func(i, j int) bool {
		return string(live[i].key[:]) < string(live[j].key[:])
	})

	nextID := s.segIDs[len(s.segIDs)-1] + 1
	path := segPath(s.dir, nextID)
	tmp := path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	newIndex := make(map[Key]ref, len(live))
	var off int64
	for _, e := range live {
		seg := s.segs[e.r.seg]
		buf := make([]byte, headerSize+int(e.r.plen))
		if _, err := seg.f.ReadAt(buf, e.r.off); err != nil {
			s.ioErrors.Add(1)
			continue
		}
		payload := buf[headerSize:]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(buf[:4]) {
			s.corrupt.Add(1)
			continue
		}
		if _, err := f.WriteAt(buf, off); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("store: compact write: %w", err)
		}
		newIndex[e.key] = ref{seg: nextID, off: off, plen: e.r.plen}
		off += int64(len(buf))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: compact sync: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: compact rename: %w", err)
	}

	old := s.segIDs
	for _, id := range old {
		seg := s.segs[id]
		seg.f.Close()
		if err := os.Remove(seg.path); err != nil {
			s.ioErrors.Add(1)
		}
		delete(s.segs, id)
	}
	newSeg := &segment{id: nextID, path: path, f: f, size: off}
	s.segs = map[uint64]*segment{nextID: newSeg}
	s.segIDs = []uint64{nextID}
	s.active = newSeg
	s.index = newIndex
	s.totalBytes.Store(off)
	return nil
}
