package store

import (
	"bytes"
	"math"
	"testing"

	"secureloop/internal/arch"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/workload"
)

// encLayer encodes a layer shape the way the mapper's persistent key does:
// every field that determines the search result, in declaration order.
func encLayer(e *Enc, l workload.Layer) *Enc {
	return e.Int(int64(l.C)).Int(int64(l.M)).Int(int64(l.R)).Int(int64(l.S)).
		Int(int64(l.P)).Int(int64(l.Q)).Int(int64(l.StrideH)).Int(int64(l.StrideW)).
		Int(int64(l.PadH)).Int(int64(l.PadW)).Int(int64(l.N)).
		Bool(l.Depthwise).Int(int64(l.WordBits))
}

func encArch(e *Enc, s arch.Spec) *Enc {
	return e.Int(int64(s.PEsX)).Int(int64(s.PEsY)).
		Int(int64(s.GlobalBufferBytes)).Int(int64(s.RegFileBytesPerPE)).
		Int(int64(s.WordBits)).Float(s.ClockHz).
		Int(int64(s.DRAM.BytesPerCycle)).Float(s.DRAM.EnergyPerBit)
}

func TestKeyCodecRoundTripRealSpecs(t *testing.T) {
	layer := workload.AlexNet().Layers[0]
	spec := arch.Base()
	eng := cryptoengine.Parallel()

	build := func() *Enc {
		e := NewEnc().String("test.request")
		encLayer(e, layer)
		encArch(e, spec)
		return e.Int(int64(eng.AES.Cycles)).Float(eng.AES.EnergyPJ).
			Float(eng.AES.AreaKGates).Int(int64(eng.GFMult.Cycles)).
			Bool(layer.Depthwise).Bytes([]byte{1, 2, 3})
	}
	e1, e2 := build(), build()
	if !bytes.Equal(e1.Encoding(), e2.Encoding()) {
		t.Fatal("encoding is not deterministic across independent encoders")
	}
	if e1.Key() != e2.Key() {
		t.Fatal("keys differ for identical field sequences")
	}

	d, err := NewDec(e1.Encoding())
	if err != nil {
		t.Fatal(err)
	}
	if s, err := d.String(); err != nil || s != "test.request" {
		t.Fatalf("prefix = %q, %v", s, err)
	}
	wantInts := []int64{
		int64(layer.C), int64(layer.M), int64(layer.R), int64(layer.S),
		int64(layer.P), int64(layer.Q), int64(layer.StrideH), int64(layer.StrideW),
		int64(layer.PadH), int64(layer.PadW), int64(layer.N),
	}
	for i, want := range wantInts {
		got, err := d.Int()
		if err != nil || got != want {
			t.Fatalf("layer int %d = %d, %v; want %d", i, got, err, want)
		}
	}
	if b, err := d.Bool(); err != nil || b != layer.Depthwise {
		t.Fatalf("depthwise = %v, %v", b, err)
	}
	if v, err := d.Int(); err != nil || v != int64(layer.WordBits) {
		t.Fatalf("wordbits = %d, %v", v, err)
	}
	// Drain the arch + engine fields and confirm completeness.
	for _, step := range []byte{tagInt, tagInt, tagInt, tagInt, tagInt, tagFloat, tagInt, tagFloat,
		tagInt, tagFloat, tagFloat, tagInt, tagBool, tagBytes} {
		var err error
		switch step {
		case tagInt:
			_, err = d.Int()
		case tagFloat:
			_, err = d.Float()
		case tagBool:
			_, err = d.Bool()
		case tagBytes:
			_, err = d.Bytes()
		}
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	}
	if err := d.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

// TestKeyDistinctPerturbations checks injectivity over real specs: changing
// any single field of the request must change the key.
func TestKeyDistinctPerturbations(t *testing.T) {
	base := workload.ResNet18().Layers[3]
	spec := arch.Base()
	enc := func(l workload.Layer, s arch.Spec, k int) Key {
		e := NewEnc().String("perturb")
		encLayer(e, l)
		encArch(e, s)
		return e.Int(int64(k)).Key()
	}
	ref := enc(base, spec, 6)
	seen := map[Key]string{}
	seen[ref] = "base"

	perturb := []struct {
		name string
		key  Key
	}{
		{"C+1", func() Key { l := base; l.C++; return enc(l, spec, 6) }()},
		{"M+1", func() Key { l := base; l.M++; return enc(l, spec, 6) }()},
		{"P+1", func() Key { l := base; l.P++; return enc(l, spec, 6) }()},
		{"Q+1", func() Key { l := base; l.Q++; return enc(l, spec, 6) }()},
		{"stride", func() Key { l := base; l.StrideH = 2; l.StrideW = 2; return enc(l, spec, 6) }()},
		{"depthwise", func() Key { l := base; l.Depthwise = !l.Depthwise; return enc(l, spec, 6) }()},
		{"pesx", func() Key { s := spec; s.PEsX++; return enc(base, s, 6) }()},
		{"glb", func() Key { s := spec; s.GlobalBufferBytes *= 2; return enc(base, s, 6) }()},
		{"clock", func() Key { s := spec; s.ClockHz *= 2; return enc(base, s, 6) }()},
		{"k", enc(base, spec, 7)},
	}
	for _, p := range perturb {
		if prev, dup := seen[p.key]; dup {
			t.Fatalf("perturbation %q collides with %q", p.name, prev)
		}
		seen[p.key] = p.name
	}
}

// TestStringFieldsDoNotAlias pins the injectivity property the length
// prefix exists for: ("ab","c") and ("a","bc") must encode differently.
func TestStringFieldsDoNotAlias(t *testing.T) {
	a := NewEnc().String("ab").String("c").Key()
	b := NewEnc().String("a").String("bc").Key()
	if a == b {
		t.Fatal("adjacent string fields alias")
	}
}

func TestDecRejectsWrongVersion(t *testing.T) {
	e := NewEnc().Int(1)
	raw := append([]byte(nil), e.Encoding()...)
	raw[0] = Version + 1
	if _, err := NewDec(raw); err == nil {
		t.Fatal("wrong version accepted")
	}
	if _, err := NewDec(nil); err == nil {
		t.Fatal("empty encoding accepted")
	}
}

func TestDecRejectsTrailingAndTruncated(t *testing.T) {
	e := NewEnc().Int(42).Bool(true)
	d, err := NewDec(e.Encoding())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Int(); err != nil {
		t.Fatal(err)
	}
	if err := d.Done(); err == nil {
		t.Fatal("Done accepted unread trailing field")
	}
	// Truncated stream: cut mid-field.
	raw := e.Encoding()[:5]
	d2, err := NewDec(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Int(); err == nil {
		t.Fatal("truncated int decoded")
	}
	// Wrong-tag read must not consume, so the right read still works.
	d3, _ := NewDec(e.Encoding())
	if _, err := d3.Bool(); err == nil {
		t.Fatal("tag mismatch accepted")
	}
	if v, err := d3.Int(); err != nil || v != 42 {
		t.Fatalf("recovery after tag mismatch: %d, %v", v, err)
	}
}

// FuzzKeyCodec fuzzes the canonical encoder end to end: round-trip
// decoding, determinism across independently built encoders, and
// distinctness (a single perturbed field must change both the encoding
// and the key). The corpus is seeded with field values from the real
// layer/arch/crypto specs the production keys are built from.
func FuzzKeyCodec(f *testing.F) {
	spec := arch.Base()
	for _, eng := range []cryptoengine.EngineArch{
		cryptoengine.Pipelined(), cryptoengine.Parallel(), cryptoengine.Serial(),
	} {
		f.Add(int64(eng.AES.Cycles), int64(eng.GFMult.Cycles), eng.AES.EnergyPJ,
			false, eng.Name, []byte{KindAuthBlock}, uint8(1))
	}
	for _, net := range []*workload.Network{workload.AlexNet(), workload.ResNet18()} {
		for _, l := range net.Layers[:3] {
			f.Add(int64(l.C), int64(l.M), spec.ClockHz, l.Depthwise, l.Name,
				[]byte{byte(l.P), byte(l.Q)}, uint8(l.WordBits))
		}
	}
	f.Add(int64(math.MaxInt64), int64(math.MinInt64), math.Inf(1), true, "", []byte(nil), uint8(0))
	f.Add(int64(0), int64(-1), math.NaN(), false, "\x00\xff", []byte{0}, uint8(255))

	f.Fuzz(func(t *testing.T, a, b int64, fl float64, bo bool, s string, raw []byte, n uint8) {
		build := func(a0 int64) *Enc {
			return NewEnc().Int(a0).Int(b).Float(fl).Bool(bo).String(s).Bytes(raw).Int(int64(n))
		}
		e1, e2 := build(a), build(a)
		if !bytes.Equal(e1.Encoding(), e2.Encoding()) {
			t.Fatal("determinism: independent encoders disagree")
		}
		if e1.Key() != e2.Key() {
			t.Fatal("determinism: keys disagree")
		}

		d, err := NewDec(e1.Encoding())
		if err != nil {
			t.Fatal(err)
		}
		ga, err := d.Int()
		if err != nil || ga != a {
			t.Fatalf("Int a: %d, %v", ga, err)
		}
		gb, err := d.Int()
		if err != nil || gb != b {
			t.Fatalf("Int b: %d, %v", gb, err)
		}
		gf, err := d.Float()
		if err != nil || math.Float64bits(gf) != math.Float64bits(fl) {
			t.Fatalf("Float: %v, %v", gf, err)
		}
		gbo, err := d.Bool()
		if err != nil || gbo != bo {
			t.Fatalf("Bool: %v, %v", gbo, err)
		}
		gs, err := d.String()
		if err != nil || gs != s {
			t.Fatalf("String: %q, %v", gs, err)
		}
		gr, err := d.Bytes()
		if err != nil || !bytes.Equal(gr, raw) {
			t.Fatalf("Bytes: %v, %v", gr, err)
		}
		gn, err := d.Int()
		if err != nil || gn != int64(n) {
			t.Fatalf("Int n: %d, %v", gn, err)
		}
		if err := d.Done(); err != nil {
			t.Fatalf("Done: %v", err)
		}

		// Distinctness: perturbing one field changes encoding and key.
		e3 := build(a + 1)
		if bytes.Equal(e1.Encoding(), e3.Encoding()) {
			t.Fatal("distinct inputs share an encoding")
		}
		if e1.Key() == e3.Key() {
			t.Fatal("distinct inputs share a key")
		}
	})
}

// FuzzDecoderRobust feeds arbitrary bytes to the decoder: every accessor
// must fail cleanly (no panic, no unbounded allocation), and tag
// mismatches must not consume input.
func FuzzDecoderRobust(f *testing.F) {
	f.Add([]byte{Version, tagInt, 0, 0, 0, 0, 0, 0, 0, 42})
	f.Add([]byte{Version, tagString, 0xFF, 0xFF, 0xFF, 0xFF, 'x'})
	f.Add([]byte{Version})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		d, err := NewDec(raw)
		if err != nil {
			return
		}
		for i := 0; i < len(raw)+2; i++ {
			if _, err := d.Int(); err == nil {
				continue
			}
			if _, err := d.Float(); err == nil {
				continue
			}
			if _, err := d.Bool(); err == nil {
				continue
			}
			if _, err := d.String(); err == nil {
				continue
			}
			if _, err := d.Bytes(); err == nil {
				continue
			}
			break
		}
		_ = d.Done()
	})
}
