package store

import (
	"bytes"
	"os"
	"os/exec"
	"testing"
	"time"
)

// The crash-recovery test re-executes the test binary as a child process
// that appends records in a tight loop, SIGKILLs it mid-write, then
// reopens the directory and verifies that the index rebuilds, that every
// recovered record is content-correct, and that recovery is
// prefix-consistent (puts are ordered, so a crash can only lose a suffix).

const crashEnv = "SECURELOOP_STORE_CRASH_DIR"

func crashKey(i int) Key {
	return NewEnc().String("crash").Int(int64(i)).Key()
}

func crashVal(i int) []byte {
	return bytes.Repeat([]byte{byte(i), byte(i >> 8), 0x5A}, 30+i%11)
}

// crashChild appends records forever; it only stops when the parent kills it.
func crashChild(dir string) {
	s, err := Open(dir, Options{SegmentBytes: 4096})
	if err != nil {
		os.Exit(1)
	}
	for i := 0; ; i++ {
		s.Put(KindMapper, crashKey(i), crashVal(i))
	}
}

func logBytes(dir string) int64 {
	ids, err := listSegments(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, id := range ids {
		if fi, err := os.Stat(segPath(dir, id)); err == nil {
			total += fi.Size()
		}
	}
	return total
}

func TestCrashRecovery(t *testing.T) {
	if dir := os.Getenv(crashEnv); dir != "" {
		crashChild(dir)
		return
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashRecovery$")
	cmd.Env = append(os.Environ(), crashEnv+"="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	// Let the child write a few segments' worth, then kill it mid-flight.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && logBytes(dir) < 16<<10 {
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill child: %v", err)
	}
	_ = cmd.Wait() // expected to report the kill

	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after crash must never fail: %v", err)
	}
	defer s.Close()

	n := 0
	for {
		got, ok := s.Get(crashKey(n))
		if !ok {
			break
		}
		if !bytes.Equal(got, crashVal(n)) {
			t.Fatalf("record %d recovered with wrong contents", n)
		}
		n++
	}
	if n == 0 {
		t.Fatal("no records recovered after crash")
	}
	// Prefix consistency: nothing beyond the first gap may exist.
	for i := n + 1; i < n+64; i++ {
		if _, ok := s.Get(crashKey(i)); ok {
			t.Fatalf("record %d present but %d missing: recovery is not prefix-consistent", i, n)
		}
	}
	t.Logf("recovered %d records after SIGKILL; stats %+v", n, s.Stats())
}
