package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testKey(i int) Key {
	return NewEnc().String("test").Int(int64(i)).Key()
}

func testVal(i int) []byte {
	return bytes.Repeat([]byte{byte(i), byte(i >> 8)}, 20+i%7)
}

func openT(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openT(t, t.TempDir(), Options{})
	defer s.Close()
	for i := 0; i < 10; i++ {
		s.Put(KindMapper, testKey(i), testVal(i))
	}
	for i := 0; i < 10; i++ {
		got, ok := s.Get(testKey(i))
		if !ok {
			t.Fatalf("key %d: miss", i)
		}
		if !bytes.Equal(got, testVal(i)) {
			t.Fatalf("key %d: value mismatch", i)
		}
	}
	if _, ok := s.Get(testKey(99)); ok {
		t.Fatalf("absent key: hit")
	}
	st := s.Stats()
	if st.Puts != 10 || st.Hits != 10 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 10 puts / 10 hits / 1 miss", st)
	}
}

func TestGetReturnsPrivateCopy(t *testing.T) {
	s := openT(t, t.TempDir(), Options{})
	defer s.Close()
	s.Put(KindMapper, testKey(1), []byte{1, 2, 3})
	got, ok := s.Get(testKey(1))
	if !ok {
		t.Fatal("miss")
	}
	got[0] = 0xFF
	again, _ := s.Get(testKey(1))
	if again[0] != 1 {
		t.Fatal("Get result aliases store memory")
	}
}

func TestOverwriteLatestWins(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	s.Put(KindMapper, testKey(1), []byte("old"))
	s.Put(KindMapper, testKey(1), []byte("new"))
	s.Flush()
	if got, ok := s.Get(testKey(1)); !ok || string(got) != "new" {
		t.Fatalf("got %q, %v; want new", got, ok)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2 := openT(t, dir, Options{})
	defer s2.Close()
	if got, ok := s2.Get(testKey(1)); !ok || string(got) != "new" {
		t.Fatalf("after reopen: got %q, %v; want new", got, ok)
	}
}

func TestReopenPersists(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	for i := 0; i < 25; i++ {
		s.Put(KindAuthBlock, testKey(i), testVal(i))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2 := openT(t, dir, Options{})
	defer s2.Close()
	for i := 0; i < 25; i++ {
		got, ok := s2.Get(testKey(i))
		if !ok || !bytes.Equal(got, testVal(i)) {
			t.Fatalf("key %d lost across reopen", i)
		}
	}
	st := s2.Stats()
	if st.Entries != 25 || st.Corrupt != 0 {
		t.Fatalf("stats after reopen = %+v", st)
	}
}

// lastSegment returns the path of the newest segment file in dir.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	ids, err := listSegments(dir)
	if err != nil || len(ids) == 0 {
		t.Fatalf("listSegments: %v (%d segments)", err, len(ids))
	}
	return segPath(dir, ids[len(ids)-1])
}

func TestCorruptTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	for i := 0; i < 5; i++ {
		s.Put(KindMapper, testKey(i), testVal(i))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	path := lastSegment(t, dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	clean := fi.Size()
	// Simulate a torn append: half a record's worth of garbage at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(bytes.Repeat([]byte{0xAB}, 13)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openT(t, dir, Options{})
	defer s2.Close()
	for i := 0; i < 5; i++ {
		if got, ok := s2.Get(testKey(i)); !ok || !bytes.Equal(got, testVal(i)) {
			t.Fatalf("key %d unreadable after torn tail", i)
		}
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", st.Corrupt)
	}
	fi, err = os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != clean {
		t.Fatalf("tail not truncated: size %d, want %d", fi.Size(), clean)
	}
}

func TestTornRecordDropped(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	for i := 0; i < 3; i++ {
		s.Put(KindMapper, testKey(i), testVal(i))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Flip one byte inside the last record's value region.
	path := lastSegment(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, Options{})
	defer s2.Close()
	for i := 0; i < 2; i++ {
		if got, ok := s2.Get(testKey(i)); !ok || !bytes.Equal(got, testVal(i)) {
			t.Fatalf("intact key %d unreadable", i)
		}
	}
	if _, ok := s2.Get(testKey(2)); ok {
		t.Fatal("CRC-invalid record served")
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", st.Corrupt)
	}
}

func TestCorruptLengthFieldBounded(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	s.Put(KindMapper, testKey(0), testVal(0))
	s.Put(KindMapper, testKey(1), testVal(1))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Overwrite the second record's length field with a huge value: the
	// scanner must reject it (bounds + sanity cap), not allocate wildly.
	path := lastSegment(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec1 := headerSize + payloadMin + len(testVal(0))
	raw[rec1+4] = 0xFF
	raw[rec1+5] = 0xFF
	raw[rec1+6] = 0xFF
	raw[rec1+7] = 0x7F
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, Options{})
	defer s2.Close()
	if got, ok := s2.Get(testKey(0)); !ok || !bytes.Equal(got, testVal(0)) {
		t.Fatal("intact first record unreadable")
	}
	if _, ok := s2.Get(testKey(1)); ok {
		t.Fatal("record behind corrupt length served")
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", st.Corrupt)
	}
}

func TestReadTimeCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	defer s.Close()
	s.Put(KindMapper, testKey(7), testVal(7))
	s.Flush() // drain pending so Get goes to disk
	// Flip a byte behind the store's back while it is open.
	path := lastSegment(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(testKey(7)); ok {
		t.Fatal("corrupt record served at read time")
	}
	st := s.Stats()
	if st.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", st.Corrupt)
	}
	// The bad entry is dropped: the next lookup is a plain miss.
	if _, ok := s.Get(testKey(7)); ok {
		t.Fatal("dropped entry resurrected")
	}
}

func TestEvictionByByteBudget(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{MaxBytes: 2048, SegmentBytes: 512})
	const n = 60
	for i := 0; i < n; i++ {
		s.Put(KindMapper, testKey(i), testVal(i))
	}
	s.Flush()
	st := s.Stats()
	if st.EvictedSegments == 0 || st.EvictedBytes == 0 {
		t.Fatalf("no eviction under budget pressure: %+v", st)
	}
	if st.Bytes > 2048+512 {
		t.Fatalf("log size %d far exceeds budget", st.Bytes)
	}
	// The newest record must have survived; the oldest must be gone.
	if _, ok := s.Get(testKey(n - 1)); !ok {
		t.Fatal("newest record evicted")
	}
	if _, ok := s.Get(testKey(0)); ok {
		t.Fatal("oldest record survived a full-budget eviction")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Reopen under the same budget: index rebuild honours what is on disk.
	s2 := openT(t, dir, Options{MaxBytes: 2048, SegmentBytes: 512})
	defer s2.Close()
	if _, ok := s2.Get(testKey(n - 1)); !ok {
		t.Fatal("newest record lost across reopen")
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{SegmentBytes: 512})
	for i := 0; i < 40; i++ {
		s.Put(KindMapper, testKey(i), testVal(i))
	}
	// Overwrites create garbage for compaction to reclaim.
	for i := 0; i < 40; i++ {
		s.Put(KindMapper, testKey(i), testVal(i+1))
	}
	s.Flush()
	before := s.Stats()
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := s.Stats()
	if after.Segments != 1 {
		t.Fatalf("Segments = %d after compact, want 1", after.Segments)
	}
	if after.Bytes >= before.Bytes {
		t.Fatalf("compaction reclaimed nothing: %d -> %d bytes", before.Bytes, after.Bytes)
	}
	for i := 0; i < 40; i++ {
		got, ok := s.Get(testKey(i))
		if !ok || !bytes.Equal(got, testVal(i+1)) {
			t.Fatalf("key %d wrong after compact", i)
		}
	}
	// Appends continue into the compacted log, and everything survives reopen.
	s.Put(KindMapper, testKey(100), testVal(3))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2 := openT(t, dir, Options{})
	defer s2.Close()
	for i := 0; i < 40; i++ {
		if got, ok := s2.Get(testKey(i)); !ok || !bytes.Equal(got, testVal(i+1)) {
			t.Fatalf("key %d lost after compact+reopen", i)
		}
	}
	if got, ok := s2.Get(testKey(100)); !ok || !bytes.Equal(got, testVal(3)) {
		t.Fatal("post-compact append lost")
	}
}

func TestCompactLeftoverTmpIgnored(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	s.Put(KindMapper, testKey(1), testVal(1))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Simulate a crash mid-compaction: a stray .tmp file next to the log.
	tmp := filepath.Join(dir, segPrefix+"00000000000000ff"+segSuffix+tmpSuffix)
	if err := os.WriteFile(tmp, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, Options{})
	defer s2.Close()
	if _, ok := s2.Get(testKey(1)); !ok {
		t.Fatal("record lost")
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("leftover tmp file not cleaned up")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := openT(t, t.TempDir(), Options{SegmentBytes: 4096})
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := g*100 + i
				s.Put(KindMapper, testKey(k), testVal(k%251))
				if got, ok := s.Get(testKey(k)); !ok || !bytes.Equal(got, testVal(k%251)) {
					t.Errorf("goroutine %d: key %d wrong", g, k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Entries != 400 {
		t.Fatalf("Entries = %d, want 400", st.Entries)
	}
}

func TestCloseIdempotentAndPutAfterClose(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	s.Put(KindMapper, testKey(1), testVal(1))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	s.Put(KindMapper, testKey(2), testVal(2)) // must not panic
	s.Flush()                                 // must not hang
	if _, ok := s.Get(testKey(1)); ok {
		t.Fatal("Get served from closed store")
	}
	if err := s.Compact(); err == nil {
		t.Fatal("Compact on closed store succeeded")
	}
}

func TestSegmentRotation(t *testing.T) {
	s := openT(t, t.TempDir(), Options{SegmentBytes: 256})
	defer s.Close()
	for i := 0; i < 20; i++ {
		s.Put(KindMapper, testKey(i), testVal(i))
	}
	s.Flush()
	if st := s.Stats(); st.Segments < 2 {
		t.Fatalf("Segments = %d, want rotation past 1", st.Segments)
	}
	for i := 0; i < 20; i++ {
		if _, ok := s.Get(testKey(i)); !ok {
			t.Fatalf("key %d lost across rotation", i)
		}
	}
}

func TestStatsString(t *testing.T) {
	// Keep fmt in the import set honest and pin the snapshot shape.
	st := Stats{Hits: 3, Misses: 1, Puts: 4}
	if s := fmt.Sprintf("%+v", st); s == "" {
		t.Fatal("unprintable stats")
	}
}
