package trace

import (
	"math/rand"
	"testing"

	"secureloop/internal/authblock"
)

func randGrids(rng *rand.Rand) (authblock.ProducerGrid, authblock.ConsumerGrid) {
	p := authblock.ProducerGrid{
		C: 1 + rng.Intn(8), H: 1 + rng.Intn(14), W: 1 + rng.Intn(14),
		WritesPerTile: 1 + int64(rng.Intn(2)),
	}
	p.TileC = 1 + rng.Intn(p.C)
	p.TileH = 1 + rng.Intn(p.H)
	p.TileW = 1 + rng.Intn(p.W)

	// Consumer: convolution-window reader with random stride/window/pad.
	stepH := 1 + rng.Intn(4)
	stepW := 1 + rng.Intn(4)
	winH := stepH + rng.Intn(3) // windows may exceed steps (halos)
	winW := stepW + rng.Intn(3)
	offH := -rng.Intn(2)
	offW := -rng.Intn(2)
	c := authblock.ConsumerGrid{
		TileC: 1 + rng.Intn(p.C),
		WinH:  winH, WinW: winW,
		StepH: stepH, StepW: stepW,
		OffH: offH, OffW: offW,
		FetchesPerTile: 1 + int64(rng.Intn(3)),
	}
	c.CountC = (p.C + c.TileC - 1) / c.TileC
	c.CountH = maxInt(1, (p.H-offH-winH)/stepH+1+rng.Intn(2))
	c.CountW = maxInt(1, (p.W-offW-winW)/stepW+1+rng.Intn(2))
	return p, c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestEvaluateCrossMatchesSimulation is the central cross-check of the
// repository: the analytic floor-sum counting of authblock.EvaluateCross
// must agree exactly with brute-force tile-trace simulation, for random
// producer tilings, consumer windows (with halos and padding) and AuthBlock
// assignments.
func TestEvaluateCrossMatchesSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	par := authblock.Params{WordBits: 8, HashBits: 64}
	for i := 0; i < 400; i++ {
		p, c := randGrids(rng)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		flat := p.TileC * p.TileH * p.TileW
		for trial := 0; trial < 4; trial++ {
			u := 1 + rng.Intn(flat+2)
			o := authblock.Orientations[rng.Intn(int(authblock.NumOrientations))]
			got := authblock.EvaluateCross(p, c, o, u, par)
			want := CrossCosts(p, c, o, u, par)
			if got != want {
				t.Fatalf("iter %d: p=%+v c=%+v o=%v u=%d:\n got %+v\nwant %+v", i, p, c, o, u, got, want)
			}
		}
	}
}

// TestTileBaselineDirectMatchesSimulation checks the baseline's direct
// (whole-tile fetch) arithmetic against enumeration.
func TestTileBaselineDirectMatchesSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	par := authblock.Params{WordBits: 8, HashBits: 64}
	for i := 0; i < 200; i++ {
		p, c := randGrids(rng)
		costs, rehashed := authblock.TileAsAuthBlock(p, c, par)
		if rehashed {
			if costs.RehashBits <= 0 {
				t.Fatalf("rehash chosen but RehashBits = %d", costs.RehashBits)
			}
			continue
		}
		// Direct path: simulate whole-producer-tile fetches.
		var hashReads, redundant int64
		eachConsumerRegion(p, c, func(c0, c1, r0, r1, w0, w1 int) {
			needed := int64(c1-c0) * int64(r1-r0) * int64(w1-w0)
			var covered int64
			forOverlaps(c0, c1, p.C, p.TileC, func(_, ctd, _, _ int) {
				forOverlaps(r0, r1, p.H, p.TileH, func(_, rtd, _, _ int) {
					forOverlaps(w0, w1, p.W, p.TileW, func(_, wtd, _, _ int) {
						hashReads++
						covered += int64(ctd) * int64(rtd) * int64(wtd)
					})
				})
			})
			redundant += covered - needed
		})
		want := authblock.Costs{
			HashWriteBits: p.NumTiles() * p.WritesPerTile * int64(par.HashBits),
			HashReadBits:  hashReads * c.FetchesPerTile * int64(par.HashBits),
			RedundantBits: redundant * c.FetchesPerTile * int64(par.WordBits),
		}
		if costs != want {
			t.Fatalf("iter %d: p=%+v c=%+v:\n got %+v\nwant %+v", i, p, c, costs, want)
		}
	}
}

// TestOptimalNeverWorseThanDirectBaseline: the searched assignment must
// never produce more extra traffic than the direct tile-as-an-AuthBlock
// strategy it generalises, because u = producer-tile size reproduces it
// exactly (one block per tile, edge tiles clipped). The baseline's *rehash*
// variant is a different mechanism the unified assignment deliberately
// avoids (Section 3.2.1) and can win on pathological synthetic overlaps, so
// it is not part of this invariant.
func TestOptimalNeverWorseThanDirectBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	par := authblock.Params{WordBits: 8, HashBits: 64}
	for i := 0; i < 120; i++ {
		p, c := randGrids(rng)
		opt := authblock.Optimal(p, c, par)
		direct := authblock.EvaluateCross(p, c, authblock.AlongQ, p.TileC*p.TileH*p.TileW, par)
		if opt.Costs.Total() > direct.Total() {
			t.Fatalf("iter %d: optimal %d > direct baseline %d (p=%+v c=%+v, a=%+v)",
				i, opt.Costs.Total(), direct.Total(), p, c, opt.Assignment)
		}
	}
}

// TestAlignedConsumerZeroRedundant: when the consumer reads exactly the
// producer's tiles, tile-sized AuthBlocks yield zero redundant reads.
func TestAlignedConsumerZeroRedundant(t *testing.T) {
	par := authblock.Params{WordBits: 8, HashBits: 64}
	p := authblock.ProducerGrid{C: 8, H: 12, W: 10, TileC: 4, TileH: 6, TileW: 5, WritesPerTile: 1}
	c := p.Aligned()
	costs := authblock.EvaluateCross(p, c, authblock.AlongQ, 4*6*5, par)
	if costs.RedundantBits != 0 {
		t.Fatalf("aligned consumer has redundant bits: %+v", costs)
	}
	if costs.HashReadBits != p.NumTiles()*int64(par.HashBits) {
		t.Fatalf("aligned consumer hash reads: %+v", costs)
	}
}
