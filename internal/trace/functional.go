package trace

import (
	"fmt"
	"slices"

	"secureloop/internal/aesgcm"
	"secureloop/internal/authblock"
	"secureloop/internal/num"
)

// SecureTensor is a functional simulation of a tensor stored in untrusted
// off-chip DRAM under an AuthBlock regime: every block is AES-GCM
// encrypted and tagged with a seed built from its version counter and
// address, exactly as the paper's Figure 2 engine interface prescribes.
// The producer writes tiles; the consumer reads arbitrary regions, fetching
// (and verifying) every AuthBlock it touches. Traffic counters record what
// crossed the simulated chip boundary so the analytic model can be checked
// against an actually-working secure data path.
type SecureTensor struct {
	grid   authblock.ProducerGrid
	orient authblock.Orientation
	u      int
	tag    int // tag bytes stored per block

	gcm *aesgcm.GCM
	iv  uint32

	// sealed holds ciphertext||tag per global block address; counters holds
	// each block's version.
	sealed   map[uint32][]byte
	counters map[uint32]uint32

	// Traffic counters (elements / tags that crossed off-chip).
	DataWriteElems int64
	TagWrites      int64
	DataReadElems  int64
	TagReads       int64
	RedundantElems int64
}

// NewSecureTensor builds a secure tensor under the given assignment.
func NewSecureTensor(grid authblock.ProducerGrid, a authblock.Assignment, key []byte, tagBytes int) (*SecureTensor, error) {
	if err := grid.Validate(); err != nil {
		return nil, err
	}
	if a.U < 1 {
		return nil, fmt.Errorf("trace: block size %d", a.U)
	}
	c, err := aesgcm.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return &SecureTensor{
		grid: grid, orient: a.Orientation, u: a.U, tag: tagBytes,
		gcm:      aesgcm.NewGCM(c),
		iv:       0x5ec10011,
		sealed:   map[uint32][]byte{},
		counters: map[uint32]uint32{},
	}, nil
}

// tileOf returns the tile index triple containing tensor coordinate
// (ch, row, col) and the tile's clipped dims and origin.
func (s *SecureTensor) tileInfo(ti, tj, tk int) (origin [3]int, dims [3]int) {
	origin = [3]int{
		num.MulInt(ti, s.grid.TileC),
		num.MulInt(tj, s.grid.TileH),
		num.MulInt(tk, s.grid.TileW),
	}
	dims = [3]int{
		min(s.grid.TileC, s.grid.C-origin[0]),
		min(s.grid.TileH, s.grid.H-origin[1]),
		min(s.grid.TileW, s.grid.W-origin[2]),
	}
	return origin, dims
}

// flatten maps tile-local (c, r, w) to the flat index under the tensor's
// orientation.
func flatten(dims [3]int, c, r, w int, o authblock.Orientation) int64 {
	switch o {
	case authblock.AlongQ:
		return (int64(c)*int64(dims[1])+int64(r))*int64(dims[2]) + int64(w)
	case authblock.AlongP:
		return (int64(c)*int64(dims[2])+int64(w))*int64(dims[1]) + int64(r)
	case authblock.AlongC:
		return (int64(r)*int64(dims[2])+int64(w))*int64(dims[0]) + int64(c)
	}
	panic("trace: bad orientation")
}

// unflatten is the inverse of flatten.
func unflatten(dims [3]int, flat int64, o authblock.Orientation) (c, r, w int) {
	var d1, d2 int64
	switch o {
	case authblock.AlongQ:
		d1, d2 = int64(dims[1]), int64(dims[2])
		c = int(flat / (d1 * d2))
		r = int(flat / d2 % d1)
		w = int(flat % d2)
	case authblock.AlongP:
		d1, d2 = int64(dims[2]), int64(dims[1])
		c = int(flat / (d1 * d2))
		w = int(flat / d2 % d1)
		r = int(flat % d2)
	case authblock.AlongC:
		d1, d2 = int64(dims[2]), int64(dims[0])
		r = int(flat / (d1 * d2))
		w = int(flat / d2 % d1)
		c = int(flat % d2)
	}
	return c, r, w
}

// blockAddr builds the unique off-chip address of block k of tile
// (ti, tj, tk).
func (s *SecureTensor) blockAddr(ti, tj, tk int, k int64) uint32 {
	nc, nh, nw := s.grid.Counts()
	_ = nc
	tile := uint32(num.MulInt(num.MulInt(ti, nh)+tj, nw) + tk)
	return tile<<16 | uint32(k)&0xffff
}

// WriteTile encrypts and stores one producer tile. data is tile-local,
// laid out channel-major (c, r, w), and must have exactly the clipped tile
// volume.
func (s *SecureTensor) WriteTile(ti, tj, tk int, data []byte) error {
	_, dims := s.tileInfo(ti, tj, tk)
	flat := int64(dims[0]) * int64(dims[1]) * int64(dims[2])
	if int64(len(data)) != flat {
		return fmt.Errorf("trace: tile data %d bytes, want %d", len(data), flat)
	}
	// Reorder into flattened orientation.
	buf := make([]byte, flat)
	for c := 0; c < dims[0]; c++ {
		for r := 0; r < dims[1]; r++ {
			for w := 0; w < dims[2]; w++ {
				buf[flatten(dims, c, r, w, s.orient)] = data[(c*dims[1]+r)*dims[2]+w]
			}
		}
	}
	nBlocks := num.CeilDiv64(flat, int64(s.u))
	for k := int64(0); k < nBlocks; k++ {
		lo := k * int64(s.u)
		hi := min64(lo+int64(s.u), flat)
		addr := s.blockAddr(ti, tj, tk, k)
		s.counters[addr]++
		seed := aesgcm.Seed(s.counters[addr], addr, s.iv)
		sealed, err := s.gcm.Seal(buf[lo:hi], seed[:], nil, s.tag)
		if err != nil {
			return err
		}
		s.sealed[addr] = sealed
		s.DataWriteElems += hi - lo
		s.TagWrites++
	}
	return nil
}

// ReadRegion fetches the clipped tensor region [c0,c1)x[r0,r1)x[w0,w1),
// fetching and authenticating every AuthBlock it touches, and returns the
// region channel-major. Every fetched element beyond the region counts as
// redundant traffic. Tag verification failure aborts the read.
func (s *SecureTensor) ReadRegion(c0, c1, r0, r1, w0, w1 int) ([]byte, error) {
	if c0 < 0 || r0 < 0 || w0 < 0 || c1 > s.grid.C || r1 > s.grid.H || w1 > s.grid.W ||
		c0 >= c1 || r0 >= r1 || w0 >= w1 {
		return nil, fmt.Errorf("trace: bad region [%d,%d)x[%d,%d)x[%d,%d)", c0, c1, r0, r1, w0, w1)
	}
	out := make([]byte, num.MulInt(num.MulInt(c1-c0, r1-r0), w1-w0))
	needed := int64(len(out))
	var fetched int64
	var readErr error

	// Enumerate overlapped producer tiles.
	forOverlaps(c0, c1, s.grid.C, s.grid.TileC, func(ct0, ctd, lc0, lc1 int) {
		forOverlaps(r0, r1, s.grid.H, s.grid.TileH, func(rt0, rtd, lr0, lr1 int) {
			forOverlaps(w0, w1, s.grid.W, s.grid.TileW, func(wt0, wtd, lw0, lw1 int) {
				dims := [3]int{ctd, rtd, wtd}
				ti, tj, tk := ct0/s.grid.TileC, rt0/s.grid.TileH, wt0/s.grid.TileW
				// Mark blocks touched by the local box.
				blocks := map[int64]bool{}
				for c := lc0; c < lc1; c++ {
					for r := lr0; r < lr1; r++ {
						for w := lw0; w < lw1; w++ {
							blocks[flatten(dims, c, r, w, s.orient)/int64(s.u)] = true
						}
					}
				}
				// Fetch in ascending block order: map iteration order must
				// not pick which authentication failure gets reported.
				keys := make([]int64, 0, len(blocks))
				for k := range blocks {
					keys = append(keys, k)
				}
				slices.Sort(keys)
				for _, k := range keys {
					addr := s.blockAddr(ti, tj, tk, k)
					sealed, ok := s.sealed[addr]
					if !ok {
						continue
					}
					seed := aesgcm.Seed(s.counters[addr], addr, s.iv)
					pt, err := s.gcm.Open(sealed, seed[:], nil, s.tag)
					if err != nil {
						if readErr == nil {
							readErr = fmt.Errorf("trace: authentication failed for block %#x: %w", addr, err)
						}
						continue
					}
					s.TagReads++
					fetched += int64(len(pt))
					// Scatter needed elements into the output.
					base := k * int64(s.u)
					for off := range pt {
						c, r, w := unflatten(dims, base+int64(off), s.orient)
						gc, gr, gw := ct0+c, rt0+r, wt0+w
						if gc >= c0 && gc < c1 && gr >= r0 && gr < r1 && gw >= w0 && gw < w1 {
							out[((gc-c0)*(r1-r0)+(gr-r0))*(w1-w0)+(gw-w0)] = pt[off]
						}
					}
				}
			})
		})
	})
	if readErr != nil {
		return nil, readErr
	}
	s.DataReadElems += fetched
	s.RedundantElems += fetched - needed
	return out, nil
}

// Tamper flips one bit of the stored ciphertext of some block, modelling an
// off-chip data-corruption attack. It reports whether any block existed to
// tamper with.
func (s *SecureTensor) Tamper() bool {
	// Corrupt the lowest stored address so the victim block does not depend
	// on map iteration order.
	var victim uint32
	found := false
	for addr := range s.sealed {
		if !found || addr < victim {
			//securelint:ignore mapdet min-fold over the keys; the selected minimum is order-independent
			victim, found = addr, true
		}
	}
	if !found {
		return false
	}
	s.sealed[victim][0] ^= 0x80
	return true
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
