package trace

import (
	"bytes"
	"math/rand"
	"testing"

	"secureloop/internal/authblock"
)

// writeAll fills the tensor with deterministic plaintext through the
// producer path and returns the reference tensor (channel-major).
func writeAll(t *testing.T, st *SecureTensor, p authblock.ProducerGrid) []byte {
	t.Helper()
	ref := make([]byte, p.C*p.H*p.W)
	for i := range ref {
		ref[i] = byte(i*37 + 11)
	}
	nc, nh, nw := p.Counts()
	for ti := 0; ti < nc; ti++ {
		for tj := 0; tj < nh; tj++ {
			for tk := 0; tk < nw; tk++ {
				origin, dims := st.tileInfo(ti, tj, tk)
				tile := make([]byte, dims[0]*dims[1]*dims[2])
				for c := 0; c < dims[0]; c++ {
					for r := 0; r < dims[1]; r++ {
						for w := 0; w < dims[2]; w++ {
							gc, gr, gw := origin[0]+c, origin[1]+r, origin[2]+w
							tile[(c*dims[1]+r)*dims[2]+w] = ref[(gc*p.H+gr)*p.W+gw]
						}
					}
				}
				if err := st.WriteTile(ti, tj, tk, tile); err != nil {
					t.Fatalf("WriteTile(%d,%d,%d): %v", ti, tj, tk, err)
				}
			}
		}
	}
	return ref
}

func TestSecureTensorRoundTrip(t *testing.T) {
	p := authblock.ProducerGrid{C: 4, H: 9, W: 11, TileC: 2, TileH: 4, TileW: 5, WritesPerTile: 1}
	key := bytes.Repeat([]byte{7}, 16)
	for _, o := range authblock.Orientations {
		for _, u := range []int{1, 3, 7, 16, 40} {
			st, err := NewSecureTensor(p, authblock.Assignment{Orientation: o, U: u}, key, 8)
			if err != nil {
				t.Fatal(err)
			}
			ref := writeAll(t, st, p)
			// Read several misaligned regions and verify contents.
			rng := rand.New(rand.NewSource(int64(u)))
			for trial := 0; trial < 20; trial++ {
				c0 := rng.Intn(p.C)
				c1 := c0 + 1 + rng.Intn(p.C-c0)
				r0 := rng.Intn(p.H)
				r1 := r0 + 1 + rng.Intn(p.H-r0)
				w0 := rng.Intn(p.W)
				w1 := w0 + 1 + rng.Intn(p.W-w0)
				got, err := st.ReadRegion(c0, c1, r0, r1, w0, w1)
				if err != nil {
					t.Fatalf("%v u=%d ReadRegion: %v", o, u, err)
				}
				for c := c0; c < c1; c++ {
					for r := r0; r < r1; r++ {
						for w := w0; w < w1; w++ {
							want := ref[(c*p.H+r)*p.W+w]
							gotb := got[((c-c0)*(r1-r0)+(r-r0))*(w1-w0)+(w-w0)]
							if gotb != want {
								t.Fatalf("%v u=%d: element (%d,%d,%d) = %d, want %d", o, u, c, r, w, gotb, want)
							}
						}
					}
				}
			}
		}
	}
}

// TestSecureTensorTrafficMatchesAnalytic drives the full functional path
// for a consumer grid and checks that the measured redundant elements and
// tag fetches equal the analytic EvaluateCross prediction bit for bit.
func TestSecureTensorTrafficMatchesAnalytic(t *testing.T) {
	par := authblock.Params{WordBits: 8, HashBits: 64}
	p := authblock.ProducerGrid{C: 3, H: 12, W: 10, TileC: 3, TileH: 4, TileW: 5, WritesPerTile: 1}
	c := authblock.ConsumerGrid{
		TileC: 2, WinH: 5, WinW: 4, StepH: 3, StepW: 3,
		OffH: -1, OffW: 0, CountC: 2, CountH: 4, CountW: 4,
		FetchesPerTile: 1,
	}
	key := make([]byte, 16)
	for _, o := range authblock.Orientations {
		for _, u := range []int{2, 5, 12, 20, 60} {
			want := authblock.EvaluateCross(p, c, authblock.Orientation(o), u, par)
			st, err := NewSecureTensor(p, authblock.Assignment{Orientation: o, U: u}, key, par.HashBits/8)
			if err != nil {
				t.Fatal(err)
			}
			writeAll(t, st, p)
			st.TagReads, st.RedundantElems = 0, 0
			eachConsumerRegion(p, c, func(c0, c1, r0, r1, w0, w1 int) {
				if _, err := st.ReadRegion(c0, c1, r0, r1, w0, w1); err != nil {
					t.Fatalf("%v u=%d: %v", o, u, err)
				}
			})
			if got := st.TagReads * int64(par.HashBits); got != want.HashReadBits {
				t.Fatalf("%v u=%d: tag read bits %d, want %d", o, u, got, want.HashReadBits)
			}
			if got := st.RedundantElems * int64(par.WordBits); got != want.RedundantBits {
				t.Fatalf("%v u=%d: redundant bits %d, want %d", o, u, got, want.RedundantBits)
			}
			if got := st.TagWrites * int64(par.HashBits); got != want.HashWriteBits {
				t.Fatalf("%v u=%d: tag write bits %d, want %d", o, u, got, want.HashWriteBits)
			}
		}
	}
}

func TestSecureTensorDetectsTampering(t *testing.T) {
	p := authblock.Whole(2, 6, 6)
	st, err := NewSecureTensor(p, authblock.Assignment{Orientation: authblock.AlongQ, U: 9}, make([]byte, 16), 8)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, st, p)
	if !st.Tamper() {
		t.Fatal("nothing to tamper with")
	}
	// Reading the whole tensor must hit the corrupted block.
	if _, err := st.ReadRegion(0, 2, 0, 6, 0, 6); err == nil {
		t.Fatal("tampered tensor read succeeded")
	}
}

func TestSecureTensorRejectsBadInputs(t *testing.T) {
	p := authblock.Whole(1, 4, 4)
	if _, err := NewSecureTensor(p, authblock.Assignment{U: 0}, make([]byte, 16), 8); err == nil {
		t.Error("accepted zero block size")
	}
	if _, err := NewSecureTensor(p, authblock.Assignment{U: 4}, make([]byte, 5), 8); err == nil {
		t.Error("accepted bad key size")
	}
	st, err := NewSecureTensor(p, authblock.Assignment{U: 4}, make([]byte, 16), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteTile(0, 0, 0, make([]byte, 3)); err == nil {
		t.Error("accepted short tile data")
	}
	if _, err := st.ReadRegion(0, 0, 0, 4, 0, 4); err == nil {
		t.Error("accepted empty region")
	}
	if _, err := st.ReadRegion(0, 2, 0, 4, 0, 4); err == nil {
		t.Error("accepted out-of-range region")
	}
}
