// Package trace is a tile-level off-chip traffic simulator used as the
// validation oracle for the authblock package's analytic counting: it
// enumerates every consumer tile fetch, marks every AuthBlock touched, and
// counts hash and redundant traffic by direct enumeration. Its functional
// mode goes further and actually encrypts/authenticates tile data with the
// from-scratch AES-GCM substrate, proving that the traffic the scheduler
// reasons about corresponds to a working secure data path.
package trace

import (
	"secureloop/internal/authblock"
	"secureloop/internal/num"
)

// CrossCosts simulates the producer/consumer handoff under an AuthBlock
// assignment and returns the same cost breakdown authblock.EvaluateCross
// computes analytically.
func CrossCosts(p authblock.ProducerGrid, c authblock.ConsumerGrid, o authblock.Orientation, u int, par authblock.Params) authblock.Costs {
	var hashWrites, hashReads, redundant int64

	// Producer side: tags per tile write.
	eachProducerTile(p, func(tc, th, tw int) {
		flat := int64(tc) * int64(th) * int64(tw)
		hashWrites += num.CeilDiv64(flat, int64(u))
	})
	hashWrites *= p.WritesPerTile

	// Consumer side: enumerate every tile fetch.
	eachConsumerRegion(p, c, func(c0, c1, r0, r1, w0, w1 int) {
		needed := int64(c1-c0) * int64(r1-r0) * int64(w1-w0)
		var covered int64
		var blocks int64
		// Split the region by producer tiles.
		forOverlaps(c0, c1, p.C, p.TileC, func(ct0, ctd, lc0, lc1 int) {
			forOverlaps(r0, r1, p.H, p.TileH, func(rt0, rtd, lr0, lr1 int) {
				forOverlaps(w0, w1, p.W, p.TileW, func(wt0, wtd, lw0, lw1 int) {
					b, cov := bruteBox(ctd, rtd, wtd,
						lc0, lc1, lr0, lr1, lw0, lw1, o, u)
					blocks += b
					covered += cov
				})
			})
		})
		hashReads += blocks
		redundant += covered - needed
	})

	return authblock.Costs{
		HashWriteBits: hashWrites * int64(par.HashBits),
		HashReadBits:  hashReads * c.FetchesPerTile * int64(par.HashBits),
		RedundantBits: redundant * c.FetchesPerTile * int64(par.WordBits),
	}
}

// eachProducerTile visits every producer tile with its clipped dims.
func eachProducerTile(p authblock.ProducerGrid, fn func(tc, th, tw int)) {
	for c0 := 0; c0 < p.C; c0 += p.TileC {
		tc := min(p.TileC, p.C-c0)
		for h0 := 0; h0 < p.H; h0 += p.TileH {
			th := min(p.TileH, p.H-h0)
			for w0 := 0; w0 < p.W; w0 += p.TileW {
				fn(tc, th, min(p.TileW, p.W-w0))
			}
		}
	}
}

// eachConsumerRegion visits every consumer tile's clipped tensor region.
func eachConsumerRegion(p authblock.ProducerGrid, c authblock.ConsumerGrid, fn func(c0, c1, r0, r1, w0, w1 int)) {
	for ic := 0; ic < c.CountC; ic++ {
		c0 := num.MulInt(ic, c.TileC)
		c1 := min(c0+c.TileC, p.C)
		if c0 >= c1 {
			continue
		}
		for ih := 0; ih < c.CountH; ih++ {
			r0 := c.OffH + num.MulInt(ih, c.StepH)
			r1 := min(r0+c.WinH, p.H)
			if r0 < 0 {
				r0 = 0
			}
			if r0 >= r1 {
				continue
			}
			for iw := 0; iw < c.CountW; iw++ {
				w0 := c.OffW + num.MulInt(iw, c.StepW)
				w1 := min(w0+c.WinW, p.W)
				if w0 < 0 {
					w0 = 0
				}
				if w0 >= w1 {
					continue
				}
				fn(c0, c1, r0, r1, w0, w1)
			}
		}
	}
}

// forOverlaps splits tensor interval [lo, hi) by tile boundaries of size
// tile within extent, yielding (tileOrigin, tileDim, localLo, localHi).
func forOverlaps(lo, hi, extent, tile int, fn func(t0, tdim, l0, l1 int)) {
	for x := lo; x < hi; {
		t0 := x - x%tile
		tdim := min(tile, extent-t0)
		segHi := min(hi, t0+tdim)
		fn(t0, tdim, x-t0, segHi-t0)
		x = segHi
	}
}

// bruteBox enumerates the box's elements in the flattened tile, marking
// touched blocks. It is an implementation independent of
// authblock.CountBoxBlocks (different traversal, explicit set), so the two
// cross-check each other.
func bruteBox(tc, th, tw, c0, c1, r0, r1, w0, w1 int, o authblock.Orientation, u int) (blocks, covered int64) {
	var d0, d1, d2 int
	idx := func(cc, rr, ww int) int64 { return 0 }
	switch o {
	case authblock.AlongQ:
		d0, d1, d2 = tc, th, tw
		idx = func(cc, rr, ww int) int64 { return (int64(cc)*int64(d1)+int64(rr))*int64(d2) + int64(ww) }
	case authblock.AlongP:
		d0, d1, d2 = tc, tw, th
		idx = func(cc, rr, ww int) int64 { return (int64(cc)*int64(d1)+int64(ww))*int64(d2) + int64(rr) }
	case authblock.AlongC:
		d0, d1, d2 = th, tw, tc
		idx = func(cc, rr, ww int) int64 { return (int64(rr)*int64(d1)+int64(ww))*int64(d2) + int64(cc) }
	}
	flat := int64(d0) * int64(d1) * int64(d2)
	touched := map[int64]bool{}
	for cc := c0; cc < c1; cc++ {
		for rr := r0; rr < r1; rr++ {
			for ww := w0; ww < w1; ww++ {
				touched[idx(cc, rr, ww)/int64(u)] = true
			}
		}
	}
	for k := range touched {
		blocks++
		end := (k + 1) * int64(u)
		if end > flat {
			end = flat
		}
		covered += end - k*int64(u)
	}
	return blocks, covered
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
