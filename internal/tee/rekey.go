package tee

import (
	"fmt"

	"secureloop/internal/workload"
)

// Counter exhaustion: every off-chip block write increments its version
// counter, and the AES-GCM seed construction (counter, address, IV) must
// never repeat under one key. When a counter would wrap, the context must
// re-key — re-encrypting the live working set under a fresh key. This file
// models how often that happens for a scheduled workload, completing the
// security-lifetime picture the paper's tree-less counter scheme implies.

// RekeyConfig parameterises the analysis.
type RekeyConfig struct {
	// CounterBits is the per-block version counter width in the seed.
	CounterBits int
	// WritesPerInference is the number of counter increments one inference
	// performs on the hottest block (at most one per ofmap tile write per
	// layer for feature-map blocks; weights are written once at entry).
	WritesPerInference int64
}

// Validate checks the configuration.
func (c RekeyConfig) Validate() error {
	if c.CounterBits <= 0 || c.CounterBits > 64 {
		return fmt.Errorf("tee: counter width %d out of (0,64]", c.CounterBits)
	}
	if c.WritesPerInference < 1 {
		return fmt.Errorf("tee: writes per inference must be >= 1")
	}
	return nil
}

// InferencesPerRekey returns how many inferences a context can serve before
// any block's counter wraps and a re-key is forced.
func (c RekeyConfig) InferencesPerRekey() int64 {
	max := int64(1) << uint(c.CounterBits)
	if c.CounterBits >= 63 {
		max = 1<<63 - 1
	}
	return max / c.WritesPerInference
}

// WritesPerInferenceFor estimates the per-inference counter pressure of a
// network: the maximum number of times any single tensor region is written
// per inference. With no partial-sum spilling this is 1 (each ofmap region
// written once); spilling mappings can raise it, so callers pass the
// maximum WritesPerTile their schedule produced.
func WritesPerInferenceFor(net *workload.Network, maxWritesPerTile int64) int64 {
	if maxWritesPerTile < 1 {
		maxWritesPerTile = 1
	}
	_ = net // the bound is per-region, not per-network-size
	return maxWritesPerTile
}

// RekeyOverheadPct returns the throughput overhead of periodic re-keying:
// each re-key re-encrypts the live footprint (weights + largest feature
// map), costing rekeySeconds, amortised over InferencesPerRekey inferences
// of inferenceSeconds each.
func (c RekeyConfig) RekeyOverheadPct(rekeySeconds, inferenceSeconds float64) float64 {
	n := c.InferencesPerRekey()
	if n <= 0 || inferenceSeconds <= 0 {
		return 100
	}
	work := inferenceSeconds * float64(n)
	return 100 * rekeySeconds / (rekeySeconds + work)
}
