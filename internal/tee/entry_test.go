package tee

import (
	"testing"

	"secureloop/internal/workload"
)

func TestWeightBytes(t *testing.T) {
	net := workload.AlexNet()
	var want int64
	for i := range net.Layers {
		want += net.Layers[i].VolumeBits(workload.Weight) / 8
	}
	got := WeightBytes(net)
	// Allow the per-layer rounding difference.
	if got < want || got > want+int64(net.NumLayers()) {
		t.Errorf("WeightBytes = %d, want ~%d", got, want)
	}
}

func TestEntryDominatedByWeights(t *testing.T) {
	// ResNet18 (11.7M params @16b = ~23 MB) over 4 GB/s: ~5.8 ms, far above
	// the 1 ms attestation.
	c := Default()
	net := workload.ResNet18()
	entry := c.EntrySeconds(net)
	transfer := float64(WeightBytes(net)) / c.HostLinkBytesPerSec
	if entry <= transfer {
		t.Error("entry must include attestation")
	}
	if transfer < 2*c.AttestationSeconds {
		t.Errorf("transfer %g s should dominate attestation for ResNet18", transfer)
	}
}

func TestAmortization(t *testing.T) {
	c := Default()
	net := workload.MobileNetV2()
	one := c.AmortizedOverheadPct(net, 20e-3, 1)
	many := c.AmortizedOverheadPct(net, 20e-3, 1000)
	if many >= one {
		t.Errorf("amortization failed: %g%% >= %g%%", many, one)
	}
	// The paper's conclusion: with sustained service the entry cost is
	// negligible (<1%).
	if many > 1 {
		t.Errorf("amortized overhead %g%% not negligible", many)
	}
	if got := c.AmortizedOverheadPct(net, 0, 10); got != 0 {
		t.Errorf("degenerate inference time: %g", got)
	}
}

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Default()
	bad.HostLinkBytesPerSec = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero link accepted")
	}
	bad = Default()
	bad.AttestationSeconds = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative attestation accepted")
	}
}

func TestEntrySimilarAcrossArchitectures(t *testing.T) {
	// Section 5.2: "this transfer latency might not vary significantly
	// across different accelerator architecture" — our model depends only
	// on the network and the host link, by construction. Assert the two
	// drivers behave as expected: bigger models take longer.
	c := Default()
	alex := c.EntrySeconds(workload.AlexNet())
	resnet := c.EntrySeconds(workload.ResNet18())
	mobil := c.EntrySeconds(workload.MobileNetV2())
	if resnet <= mobil {
		t.Error("ResNet18 (11.7M params) should enter slower than MobileNetV2 (3.5M)")
	}
	if alex <= mobil {
		t.Error("AlexNet conv layers (3.7M params) should enter slower than MobileNetV2")
	}
}

func TestRekeyModel(t *testing.T) {
	c := RekeyConfig{CounterBits: 32, WritesPerInference: 1}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.InferencesPerRekey(); got != 1<<32 {
		t.Errorf("InferencesPerRekey = %d", got)
	}
	// More writes per inference exhaust counters sooner.
	c4 := RekeyConfig{CounterBits: 32, WritesPerInference: 4}
	if c4.InferencesPerRekey() != (1<<32)/4 {
		t.Error("writes scaling")
	}
	// A 32-bit counter with 1 write/inference and 20 ms inferences re-keys
	// roughly every 2.7 years of sustained service: overhead negligible.
	if pct := c.RekeyOverheadPct(0.1, 20e-3); pct > 1e-6 {
		t.Errorf("rekey overhead %g%% not negligible", pct)
	}
	// Tiny counters are the failure mode the model exposes.
	tiny := RekeyConfig{CounterBits: 8, WritesPerInference: 4}
	if pct := tiny.RekeyOverheadPct(0.1, 20e-3); pct < 1 {
		t.Errorf("8-bit counters should hurt: %g%%", pct)
	}
	if err := (RekeyConfig{CounterBits: 0, WritesPerInference: 1}).Validate(); err == nil {
		t.Error("zero-width counter accepted")
	}
	if err := (RekeyConfig{CounterBits: 32, WritesPerInference: 0}).Validate(); err == nil {
		t.Error("zero writes accepted")
	}
	if WritesPerInferenceFor(workload.AlexNet(), 0) != 1 {
		t.Error("writes floor")
	}
	if WritesPerInferenceFor(workload.AlexNet(), 3) != 3 {
		t.Error("writes passthrough")
	}
	// 63+-bit counters saturate rather than overflow.
	big := RekeyConfig{CounterBits: 64, WritesPerInference: 1}
	if big.InferencesPerRekey() <= 0 {
		t.Error("64-bit counter overflowed the model")
	}
}
