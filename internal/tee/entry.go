// Package tee models the end-to-end cost of entering and exiting a trusted
// execution environment on the accelerator, per the paper's Section 5.2
// "Impact of TEE Entry/Exit": the dominant entry cost is the initial
// transfer of the (encrypted) DNN weights from the host into the
// accelerator context, which depends on the model size and the host link —
// not on the accelerator architecture — and amortises away when the same
// model serves many inference requests.
package tee

import (
	"fmt"

	"secureloop/internal/workload"
)

// EntryConfig parameterises the entry/exit model.
type EntryConfig struct {
	// HostLinkBytesPerSec is the host-to-accelerator transfer bandwidth
	// (PCIe-class by default).
	HostLinkBytesPerSec float64
	// AttestationSeconds is the fixed handshake/attestation latency.
	AttestationSeconds float64
	// ExitSeconds is the fixed teardown latency.
	ExitSeconds float64
}

// Default returns a PCIe 3.0 x4-class link (~4 GB/s) with millisecond-scale
// handshakes.
func Default() EntryConfig {
	return EntryConfig{
		HostLinkBytesPerSec: 4e9,
		AttestationSeconds:  1e-3,
		ExitSeconds:         0.2e-3,
	}
}

// Validate checks the configuration.
func (c EntryConfig) Validate() error {
	if c.HostLinkBytesPerSec <= 0 {
		return fmt.Errorf("tee: host link bandwidth must be positive")
	}
	if c.AttestationSeconds < 0 || c.ExitSeconds < 0 {
		return fmt.Errorf("tee: latencies must be non-negative")
	}
	return nil
}

// WeightBytes returns the total parameter footprint of a network.
func WeightBytes(net *workload.Network) int64 {
	var bits int64
	for i := range net.Layers {
		bits += net.Layers[i].VolumeBits(workload.Weight)
	}
	return bits / 8
}

// EntrySeconds returns the one-time TEE entry latency for a network: the
// weight transfer plus attestation.
func (c EntryConfig) EntrySeconds(net *workload.Network) float64 {
	return float64(WeightBytes(net))/c.HostLinkBytesPerSec + c.AttestationSeconds
}

// AmortizedOverheadPct returns the end-to-end overhead of entry/exit as a
// percentage of total service time when the entered context serves
// `inferences` requests each taking inferenceSeconds: the paper's argument
// that entry cost "can be negligible compared to the overall execution
// time" once requests are batched.
func (c EntryConfig) AmortizedOverheadPct(net *workload.Network, inferenceSeconds float64, inferences int) float64 {
	if inferences <= 0 || inferenceSeconds <= 0 {
		return 0
	}
	fixed := c.EntrySeconds(net) + c.ExitSeconds
	work := inferenceSeconds * float64(inferences)
	return 100 * fixed / (fixed + work)
}
