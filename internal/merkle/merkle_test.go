package merkle

import (
	"testing"
	"testing/quick"
)

func TestDefaultTreeValid(t *testing.T) {
	if err := DefaultTree().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []TreeConfig{
		{BlockBytes: 0, CounterBits: 64, Arity: 8, NodeBits: 512},
		{BlockBytes: 64, CounterBits: 64, Arity: 1, NodeBits: 512},
		{BlockBytes: 64, CounterBits: 64, Arity: 8, NodeBits: 512, MissRate: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestLevelsGrowWithFootprint(t *testing.T) {
	c := DefaultTree()
	prev := 0
	for _, fp := range []int64{1 << 12, 1 << 16, 1 << 20, 1 << 24, 1 << 28} {
		total, cached := c.Levels(fp)
		if total < prev {
			t.Errorf("levels shrank at footprint %d", fp)
		}
		if cached > total {
			t.Errorf("cached %d > total %d", cached, total)
		}
		prev = total
	}
}

func TestExtraTrafficScalesWithAccesses(t *testing.T) {
	c := DefaultTree()
	fp := int64(8 << 20)
	a := c.ExtraTrafficBits(1<<20, fp)
	b := c.ExtraTrafficBits(2<<20, fp)
	if b != 2*a {
		t.Errorf("traffic not linear in accesses: %d vs %d", a, b)
	}
	if c.ExtraTrafficBits(0, fp) != 0 {
		t.Error("zero accesses costs traffic")
	}
}

func TestLargerFootprintNeverCheaper(t *testing.T) {
	c := DefaultTree()
	f := func(a, b uint32) bool {
		fa, fb := int64(a)%(1<<28)+1, int64(b)%(1<<28)+1
		if fa > fb {
			fa, fb = fb, fa
		}
		access := int64(1 << 20)
		return c.ExtraTrafficBits(access, fa) <= c.ExtraTrafficBits(access, fb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTreelessBeatsTreeOnStreaming(t *testing.T) {
	// The Section 6 argument: for streaming DNN traffic over a multi-MB
	// footprint, the tree-less per-AuthBlock tag costs far less than a
	// Merkle walk per miss. Compare 16 MB of accesses over an 8 MB
	// footprint with 512-element (1 KiB) AuthBlocks.
	c := DefaultTree()
	access, fp := int64(16<<20), int64(8<<20)
	tree := c.ExtraTrafficBits(access, fp)
	flat := TreelessTrafficBits(access, 1024, 64)
	if flat*4 > tree {
		t.Errorf("tree-less (%d bits) not clearly cheaper than tree (%d bits)", flat, tree)
	}
}

func TestTreelessEdgeCases(t *testing.T) {
	if TreelessTrafficBits(0, 64, 64) != 0 {
		t.Error("zero access")
	}
	if TreelessTrafficBits(100, 0, 64) != 0 {
		t.Error("zero block")
	}
	// One partial block still pays one tag.
	if got := TreelessTrafficBits(1, 1024, 64); got != 64 {
		t.Errorf("partial block tag = %d", got)
	}
}
