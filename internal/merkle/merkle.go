// Package merkle models the off-chip traffic of a general-purpose TEE
// memory-protection scheme — counter-mode encryption with a Bonsai Merkle
// tree over the counters (Rogers et al., MICRO'07), the baseline the
// paper's related work contrasts with tree-less accelerator protection
// (Section 6, "Tree-less Verification for DNN Accelerators"). SecureLoop's
// accelerators compute counters from the schedule and never store them, so
// their integrity metadata is a flat tag per AuthBlock; a general-purpose
// TEE must instead fetch counters and verify a hash-tree path on every
// protected cache-line access that misses the on-chip metadata cache.
//
// The model is first-order and deliberately favourable to the tree (it
// assumes perfect caching of all tree levels that fit on chip); it exists
// to quantify the gap the tree-less design exploits, as an ablation
// experiment.
package merkle

import (
	"fmt"
	"math"

	"secureloop/internal/num"
)

// TreeConfig parameterises the protection scheme.
type TreeConfig struct {
	// BlockBytes is the protected block granularity (typ. a 64 B line).
	BlockBytes int
	// CounterBits is the per-block version counter size (64-bit major or
	// split counters; 64 by default).
	CounterBits int
	// Arity is the hash-tree fan-out (counters per tree node, typ. 8).
	Arity int
	// NodeBits is the size of one tree node (hash + embedded counters).
	NodeBits int
	// CacheBytes is the on-chip metadata cache holding counters and tree
	// nodes; the top of the tree is pinned there.
	CacheBytes int
	// MissRate is the fraction of data accesses whose counter misses the
	// metadata cache (streaming DNN traffic has near-zero temporal reuse of
	// counters, so this is high unless the footprint fits on chip).
	MissRate float64
}

// DefaultTree returns a Bonsai-style configuration: 64 B blocks, 64-bit
// counters, arity-8 tree of 64-byte nodes, and a 32 kB metadata cache.
func DefaultTree() TreeConfig {
	return TreeConfig{
		BlockBytes:  64,
		CounterBits: 64,
		Arity:       8,
		NodeBits:    512,
		CacheBytes:  32 * 1024,
		MissRate:    0.9,
	}
}

// Validate checks the configuration.
func (c TreeConfig) Validate() error {
	if c.BlockBytes <= 0 || c.CounterBits <= 0 || c.Arity < 2 || c.NodeBits <= 0 {
		return fmt.Errorf("merkle: invalid tree configuration %+v", c)
	}
	if c.MissRate < 0 || c.MissRate > 1 {
		return fmt.Errorf("merkle: miss rate %g out of [0,1]", c.MissRate)
	}
	return nil
}

// Levels returns the number of tree levels above the counters for a
// protected footprint, and how many of the top levels fit in the cache.
func (c TreeConfig) Levels(footprintBytes int64) (total, cached int) {
	counters := float64(footprintBytes) / float64(c.BlockBytes)
	if counters < 1 {
		counters = 1
	}
	total = int(math.Ceil(math.Log(counters) / math.Log(float64(c.Arity))))
	if total < 1 {
		total = 1
	}
	// Pin levels from the root down while they fit.
	budget := int64(c.CacheBytes)
	nodes := int64(1)
	for cached = 0; cached < total; cached++ {
		bytes := nodes * int64(c.NodeBits) / 8
		if bytes > budget {
			break
		}
		budget -= bytes
		nodes *= int64(c.Arity)
	}
	return total, cached
}

// ExtraTrafficBits returns the metadata traffic (bits) for accessBytes of
// protected data over a footprint of footprintBytes: per missing counter
// access, the counter line plus the uncached tree-path nodes travel
// off-chip. Writes additionally write the updated path back; the model
// folds that into the same per-access cost with the read/write mix folded
// into MissRate's calibration.
func (c TreeConfig) ExtraTrafficBits(accessBytes, footprintBytes int64) int64 {
	if accessBytes <= 0 {
		return 0
	}
	total, cached := c.Levels(footprintBytes)
	uncachedLevels := total - cached
	if uncachedLevels < 0 {
		uncachedLevels = 0
	}
	accesses := float64(accessBytes) / float64(c.BlockBytes)
	perMiss := float64(c.CounterBits) + float64(uncachedLevels)*float64(c.NodeBits)
	return int64(accesses * c.MissRate * perMiss)
}

// TreelessTrafficBits returns the metadata traffic of the accelerator-style
// tree-less scheme for comparison: one stored tag per AuthBlock of
// authBlockBytes, fetched alongside each access (counters are computed on
// chip and never travel).
func TreelessTrafficBits(accessBytes int64, authBlockBytes int, tagBits int) int64 {
	if accessBytes <= 0 || authBlockBytes <= 0 {
		return 0
	}
	blocks := num.CeilDiv64(accessBytes, int64(authBlockBytes))
	return blocks * int64(tagBits)
}
