package arch

import "testing"

func TestBaseMatchesPaper(t *testing.T) {
	b := Base()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.PEsX != 14 || b.PEsY != 12 {
		t.Errorf("base PEs %dx%d, want 14x12", b.PEsX, b.PEsY)
	}
	if b.NumPEs() != 168 {
		t.Errorf("NumPEs = %d", b.NumPEs())
	}
	if b.GlobalBufferBytes != 131*1024 {
		t.Errorf("GLB = %d", b.GlobalBufferBytes)
	}
	if b.DRAM != LPDDR4x64 {
		t.Errorf("DRAM = %v", b.DRAM)
	}
	if b.ClockHz != 100e6 {
		t.Errorf("clock = %g", b.ClockHz)
	}
}

func TestWithModifiers(t *testing.T) {
	b := Base()
	p := b.WithPEs(28, 24)
	if p.NumPEs() != 672 || b.NumPEs() != 168 {
		t.Error("WithPEs mutated receiver or returned wrong copy")
	}
	g := b.WithGlobalBuffer(16 * 1024)
	if g.GlobalBufferBytes != 16*1024 || b.GlobalBufferBytes != 131*1024 {
		t.Error("WithGlobalBuffer mutated receiver")
	}
	d := b.WithDRAM(HBM2x64)
	if d.DRAM.Name != "HBM2-64B" {
		t.Error("WithDRAM failed")
	}
	if p.Name == b.Name || g.Name == b.Name {
		t.Error("modifier names not distinguished")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	mutations := []func(*Spec){
		func(s *Spec) { s.PEsX = 0 },
		func(s *Spec) { s.GlobalBufferBytes = 0 },
		func(s *Spec) { s.RegFileBytesPerPE = -1 },
		func(s *Spec) { s.WordBits = 0 },
		func(s *Spec) { s.ClockHz = 0 },
		func(s *Spec) { s.DRAM.BytesPerCycle = 0 },
	}
	for i, mut := range mutations {
		s := Base()
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestDRAMTechs(t *testing.T) {
	techs := DRAMTechs()
	if len(techs) != 3 {
		t.Fatalf("%d DRAM techs", len(techs))
	}
	if LPDDR4x128.BytesPerCycle != 2*LPDDR4x64.BytesPerCycle {
		t.Error("LPDDR4-128B must double LPDDR4-64B bandwidth")
	}
	if HBM2x64.EnergyPerBit >= LPDDR4x64.EnergyPerBit {
		t.Error("HBM2 must be more energy efficient per bit than LPDDR4")
	}
	if HBM2x64.BytesPerCycle != LPDDR4x64.BytesPerCycle {
		t.Error("HBM2 config matches the 64B/cycle interface in the study")
	}
}

func TestSweepConfigs(t *testing.T) {
	if got := PEConfigs(); len(got) != 3 || got[0] != [2]int{14, 12} {
		t.Errorf("PEConfigs = %v", got)
	}
	if got := BufferConfigs(); len(got) != 3 || got[2] != 131*1024 {
		t.Errorf("BufferConfigs = %v", got)
	}
}

func TestCapacityAccessors(t *testing.T) {
	b := Base()
	if b.GlobalBufferBits() != int64(131*1024*8) {
		t.Error("GlobalBufferBits")
	}
	if b.RegFileBits() != 512*8 {
		t.Error("RegFileBits")
	}
	if b.PeakMACsPerCycle() != 168 {
		t.Error("PeakMACsPerCycle")
	}
}
