// Package arch describes the DNN accelerator architectures SecureLoop
// explores: a spatial array of processing elements (PEs), each with an ALU
// and a small local register file, backed by a shared on-chip global buffer
// (GLB) and off-chip DRAM (paper Section 5, "Base Architecture
// Configuration"). The package also carries the off-chip DRAM technology
// parameters used in the Section 5.2 DRAM study.
package arch

import (
	"fmt"
	"strings"

	"secureloop/internal/num"
)

// DRAMTech identifies an off-chip memory technology with its sustained
// bandwidth and access energy.
type DRAMTech struct {
	// Name labels the technology (e.g. "LPDDR4-64B").
	Name string
	// BytesPerCycle is the sustained off-chip bandwidth in bytes per
	// accelerator clock cycle.
	BytesPerCycle int
	// EnergyPerBit is the access energy in picojoules per bit transferred.
	EnergyPerBit float64
}

// The three DRAM configurations of the paper's Section 5.2 study. LPDDR4
// access energy follows the widely used ~4 pJ/bit estimate for mobile DRAM
// in the 40/45 nm-era methodology; HBM2 is roughly 2.5x more energy
// efficient per bit while (here) matching the 64 B/cycle interface.
var (
	LPDDR4x64  = DRAMTech{Name: "LPDDR4-64B", BytesPerCycle: 64, EnergyPerBit: 4.0}
	LPDDR4x128 = DRAMTech{Name: "LPDDR4-128B", BytesPerCycle: 128, EnergyPerBit: 4.0}
	HBM2x64    = DRAMTech{Name: "HBM2-64B", BytesPerCycle: 64, EnergyPerBit: 1.6}
)

// DRAMTechs lists the technologies in the paper's order.
func DRAMTechs() []DRAMTech { return []DRAMTech{LPDDR4x64, LPDDR4x128, HBM2x64} }

// Spec is a complete accelerator architecture description. The memory
// hierarchy is DRAM -> GlobalBuffer -> (spatial PE array) -> RegisterFile ->
// MAC, with the row-stationary dataflow of Eyeriss as the base
// configuration.
type Spec struct {
	// Name labels the design point.
	Name string

	// PEsX and PEsY give the PE-array shape (columns x rows).
	PEsX, PEsY int

	// GlobalBufferBytes is the shared on-chip SRAM capacity in bytes.
	GlobalBufferBytes int

	// RegFileBytesPerPE is the per-PE local storage in bytes (Eyeriss uses a
	// ~0.5 kB scratchpad per PE).
	RegFileBytesPerPE int

	// WordBits is the native datapath width in bits.
	WordBits int

	// ClockHz is the accelerator clock (the paper's roofline uses 100 MHz).
	ClockHz float64

	// DRAM is the off-chip memory technology.
	DRAM DRAMTech
}

// NumPEs returns the total PE count.
func (s *Spec) NumPEs() int { return num.MulInt(s.PEsX, s.PEsY) }

// GlobalBufferBits returns the GLB capacity in bits.
func (s *Spec) GlobalBufferBits() int64 {
	return int64(s.GlobalBufferBytes) * 8
}

// RegFileBits returns the per-PE register-file capacity in bits.
func (s *Spec) RegFileBits() int64 {
	return int64(s.RegFileBytesPerPE) * 8
}

// PeakMACsPerCycle is the compute roof: one MAC per PE per cycle.
func (s *Spec) PeakMACsPerCycle() float64 { return float64(s.NumPEs()) }

// Validate reports whether the specification is usable.
func (s *Spec) Validate() error {
	switch {
	case s.PEsX <= 0 || s.PEsY <= 0:
		return fmt.Errorf("arch: %s: PE array must be positive (%dx%d)", s.Name, s.PEsX, s.PEsY)
	case s.GlobalBufferBytes <= 0:
		return fmt.Errorf("arch: %s: global buffer must be positive", s.Name)
	case s.RegFileBytesPerPE <= 0:
		return fmt.Errorf("arch: %s: register file must be positive", s.Name)
	case s.WordBits <= 0:
		return fmt.Errorf("arch: %s: word width must be positive", s.Name)
	case s.ClockHz <= 0:
		return fmt.Errorf("arch: %s: clock must be positive", s.Name)
	case s.DRAM.BytesPerCycle <= 0:
		return fmt.Errorf("arch: %s: DRAM bandwidth must be positive", s.Name)
	}
	return nil
}

// WithPEs returns a copy of the spec with a different PE-array shape. The
// name gains (or replaces) a "-peXxY" token.
func (s Spec) WithPEs(x, y int) Spec {
	s.PEsX, s.PEsY = x, y
	s.Name = withToken(s.Name, "pe", fmt.Sprintf("pe%dx%d", x, y))
	return s
}

// WithGlobalBuffer returns a copy of the spec with a different GLB
// capacity. The name gains (or replaces) a "-glbNkB" token.
func (s Spec) WithGlobalBuffer(bytes int) Spec {
	s.GlobalBufferBytes = bytes
	s.Name = withToken(s.Name, "glb", fmt.Sprintf("glb%dkB", bytes/1024))
	return s
}

// WithDRAM returns a copy of the spec with a different DRAM technology.
func (s Spec) WithDRAM(t DRAMTech) Spec {
	s.DRAM = t
	return s
}

// withToken replaces the dash-separated token starting with prefix, or
// appends the token if absent, so chained modifiers compose.
func withToken(name, prefix, token string) string {
	parts := strings.Split(name, "-")
	out := parts[:0]
	for _, p := range parts {
		if !strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	return strings.Join(append(out, token), "-")
}

// Base returns the paper's base configuration: a row-stationary spatial
// accelerator derived from Eyeriss with 14x12 PEs, a 131 kB global buffer,
// LPDDR4 at 64 B/cycle and a 100 MHz clock (Sections 5 and 5.1).
func Base() Spec {
	return Spec{
		Name:              "eyeriss",
		PEsX:              14,
		PEsY:              12,
		GlobalBufferBytes: 131 * 1024,
		RegFileBytesPerPE: 512,
		WordBits:          16,
		ClockHz:           100e6,
		DRAM:              LPDDR4x64,
	}
}

// PEConfigs returns the PE-array shapes swept in Figure 14.
func PEConfigs() [][2]int { return [][2]int{{14, 12}, {14, 24}, {28, 24}} }

// BufferConfigs returns the GLB capacities (bytes) swept in Figure 15.
func BufferConfigs() []int { return []int{16 * 1024, 32 * 1024, 131 * 1024} }
