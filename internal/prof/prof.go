// Package prof wires Go's runtime profilers into the command-line tools.
// Both cmd/experiments and cmd/dse expose -cpuprofile/-memprofile flags
// backed by Start; scripts/profile.sh is the one-liner that drives them and
// opens the result in `go tool pprof`.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and returns a stop
// function that ends the CPU profile and writes a heap profile to memPath
// (if non-empty). The heap profile is taken after a GC so it reflects live
// objects rather than garbage awaiting collection. Call stop exactly once,
// at the end of a successful run; either path may be empty to skip that
// profile.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
			}
		}
	}, nil
}
