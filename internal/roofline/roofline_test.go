package roofline

import (
	"math"
	"testing"

	"secureloop/internal/arch"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/model"
)

func TestRoofsFromBaseArch(t *testing.T) {
	spec := arch.Base()
	m := FromArch(&spec)
	if m.PeakOpsPerSec != 168*100e6 {
		t.Errorf("peak = %g", m.PeakOpsPerSec)
	}
	if m.MemBytesPerSec != 64*100e6 {
		t.Errorf("mem roof = %g", m.MemBytesPerSec)
	}
	if m.CryptoBytesPerSec != 0 {
		t.Error("unsecure model has a crypto roof")
	}
}

func TestCryptoRoofThrottles(t *testing.T) {
	spec := arch.Base()
	cfg := cryptoengine.Config{Engine: cryptoengine.Parallel(), CountPerDatatype: 1}
	sec := FromSecureArch(&spec, cfg)
	uns := FromArch(&spec)
	// In the bandwidth-bound region the secure roof must sit below.
	for _, intensity := range []float64{0.5, 1, 2, 5, 10} {
		if sec.Attainable(intensity) >= uns.Attainable(intensity) {
			t.Errorf("intensity %g: secure %g >= unsecure %g",
				intensity, sec.Attainable(intensity), uns.Attainable(intensity))
		}
	}
	// At very high intensity both reach the compute roof.
	if sec.Attainable(1e6) != sec.PeakOpsPerSec {
		t.Error("compute roof not reached")
	}
}

func TestRidgeIntensity(t *testing.T) {
	spec := arch.Base()
	uns := FromArch(&spec)
	// Unsecure ridge: 168 MACs/cycle over 64 B/cycle = 2.625 ops/byte.
	if got := uns.RidgeIntensity(); math.Abs(got-2.625) > 1e-9 {
		t.Errorf("unsecure ridge = %g", got)
	}
	cfg := cryptoengine.Config{Engine: cryptoengine.Parallel(), CountPerDatatype: 1}
	sec := FromSecureArch(&spec, cfg)
	// The crypto roof moves the ridge right (more intensity needed).
	if sec.RidgeIntensity() <= uns.RidgeIntensity() {
		t.Error("crypto roof did not move the ridge right")
	}
	// At the ridge the two roofs intersect.
	r := sec.RidgeIntensity()
	if math.Abs(sec.Attainable(r)-sec.PeakOpsPerSec) > 1 {
		t.Errorf("attainable at ridge %g != peak %g", sec.Attainable(r), sec.PeakOpsPerSec)
	}
}

func TestAttainableMonotone(t *testing.T) {
	spec := arch.Base()
	m := FromSecureArch(&spec, cryptoengine.Config{Engine: cryptoengine.Serial(), CountPerDatatype: 1})
	prev := 0.0
	for i := 1; i <= 1000; i++ {
		v := m.Attainable(float64(i) * 0.5)
		if v < prev {
			t.Fatalf("attainable not monotone at %g", float64(i)*0.5)
		}
		prev = v
	}
}

func TestPointFor(t *testing.T) {
	stats := model.Stats{Cycles: 1000, OffchipBits: 8000 * 8}
	p := PointFor("w", 100000, stats, 100e6)
	if math.Abs(p.Intensity-100000.0/8000) > 1e-9 {
		t.Errorf("intensity = %g", p.Intensity)
	}
	// 100000 ops in 10us = 1e10 ops/sec.
	if math.Abs(p.OpsPerSec-1e10) > 1 {
		t.Errorf("ops/sec = %g", p.OpsPerSec)
	}
	// Degenerate inputs produce zeros, not NaNs.
	z := PointFor("z", 0, model.Stats{}, 100e6)
	if z.Intensity != 0 || z.OpsPerSec != 0 {
		t.Errorf("degenerate point %+v", z)
	}
}
