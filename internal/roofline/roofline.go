// Package roofline implements the roofline model of Figure 12: attainable
// performance as a function of operational intensity, bounded by the
// compute roof (PE count x clock), the off-chip memory roof, and — for
// secure accelerators — the effective crypto-engine roof that throttles
// off-chip data supply (Section 5.1, "Roofline Model").
package roofline

import (
	"secureloop/internal/arch"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/model"
)

// Model carries the three roofs in operations/sec and bytes/sec.
type Model struct {
	// PeakOpsPerSec is the compute roof (one MAC per PE per cycle).
	PeakOpsPerSec float64
	// MemBytesPerSec is the DRAM bandwidth roof.
	MemBytesPerSec float64
	// CryptoBytesPerSec is the effective crypto roof (0 when the design has
	// no cryptographic engines). Figure 12 draws this for a single engine
	// handling every transfer; per-datatype engine groups can do better.
	CryptoBytesPerSec float64
}

// FromArch builds the unsecure roofline of an architecture.
func FromArch(spec *arch.Spec) Model {
	return Model{
		PeakOpsPerSec:  spec.PeakMACsPerCycle() * spec.ClockHz,
		MemBytesPerSec: float64(spec.DRAM.BytesPerCycle) * spec.ClockHz,
	}
}

// FromSecureArch builds the roofline of a secure design: the crypto roof is
// the aggregate engine throughput.
func FromSecureArch(spec *arch.Spec, cfg cryptoengine.Config) Model {
	m := FromArch(spec)
	m.CryptoBytesPerSec = cfg.TotalBytesPerCycle() * spec.ClockHz
	return m
}

// Attainable returns the roofline-bounded performance (ops/sec) at the
// given operational intensity (ops per off-chip byte). The binding roof is
// the minimum of the compute roof and the bandwidth-limited slopes.
func (m Model) Attainable(intensity float64) float64 {
	perf := m.PeakOpsPerSec
	if mem := intensity * m.MemBytesPerSec; mem < perf {
		perf = mem
	}
	if m.CryptoBytesPerSec > 0 {
		if c := intensity * m.CryptoBytesPerSec; c < perf {
			perf = c
		}
	}
	return perf
}

// RidgeIntensity returns the operational intensity at which the design
// transitions from bandwidth-bound to compute-bound (using the tightest
// bandwidth roof).
func (m Model) RidgeIntensity() float64 {
	bw := m.MemBytesPerSec
	if m.CryptoBytesPerSec > 0 && m.CryptoBytesPerSec < bw {
		bw = m.CryptoBytesPerSec
	}
	if bw <= 0 {
		return 0
	}
	return m.PeakOpsPerSec / bw
}

// Point is one workload/schedule placed on the roofline.
type Point struct {
	// Name labels the point (workload + scheduler).
	Name string
	// Intensity is MACs per off-chip byte (including authentication
	// overhead traffic — extra traffic moves secure points left).
	Intensity float64
	// OpsPerSec is the achieved performance.
	OpsPerSec float64
}

// PointFor places a scheduled network on the roofline: intensity from total
// MACs over total off-chip bytes, performance from total MACs over wall
// time at the architecture clock.
func PointFor(name string, totalMACs int64, stats model.Stats, clockHz float64) Point {
	bytes := float64(stats.OffchipBits) / 8
	seconds := float64(stats.Cycles) / clockHz
	var p Point
	p.Name = name
	if bytes > 0 {
		p.Intensity = float64(totalMACs) / bytes
	}
	if seconds > 0 {
		p.OpsPerSec = float64(totalMACs) / seconds
	}
	return p
}
