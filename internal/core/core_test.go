package core

import (
	"strings"
	"testing"

	"secureloop/internal/anneal"
	"secureloop/internal/arch"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/workload"
)

func testScheduler() *Scheduler {
	s := New(arch.Base(), cryptoengine.Config{Engine: cryptoengine.Parallel(), CountPerDatatype: 1})
	s.Anneal = anneal.Options{Iterations: 120, TInit: 0.05, TFinal: 1e-4, Seed: 1}
	return s
}

func TestScheduleAlexNetAllAlgorithms(t *testing.T) {
	net := workload.AlexNet()
	s := testScheduler()
	base, err := s.ScheduleNetwork(net, Unsecure)
	if err != nil {
		t.Fatal(err)
	}
	if base.Total.Cycles <= 0 {
		t.Fatal("unsecure cycles not positive")
	}
	if base.Traffic.Total() != 0 {
		t.Error("unsecure run reports authentication traffic")
	}
	if len(base.Layers) != net.NumLayers() {
		t.Fatalf("%d layer results", len(base.Layers))
	}

	prev := base.Total.Cycles
	var tile, cross *NetworkResult
	for _, alg := range Algorithms() {
		res, err := s.ScheduleNetwork(net, alg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Total.Cycles < prev {
			t.Errorf("%v faster than unsecure baseline: %d < %d", alg, res.Total.Cycles, prev)
		}
		if res.Traffic.Total() <= 0 {
			t.Errorf("%v reports no authentication traffic", alg)
		}
		switch alg {
		case CryptTileSingle:
			tile = res
		case CryptOptCross:
			cross = res
		}
	}
	// The paper's central claim: the full engine never loses to the
	// tile-as-an-AuthBlock baseline.
	if cross.Total.Cycles > tile.Total.Cycles {
		t.Errorf("Crypt-Opt-Cross (%d) slower than Crypt-Tile-Single (%d)",
			cross.Total.Cycles, tile.Total.Cycles)
	}
}

func TestOptRemovesRehash(t *testing.T) {
	net := workload.MobileNetV2()
	s := testScheduler()
	tile, err := s.ScheduleNetwork(net, CryptTileSingle)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := s.ScheduleNetwork(net, CryptOptSingle)
	if err != nil {
		t.Fatal(err)
	}
	if tile.Traffic.RehashBits == 0 {
		t.Error("tile-as-AuthBlock baseline should rehash on MobileNetV2")
	}
	if opt.Traffic.RehashBits != 0 {
		t.Error("optimal assignment must avoid rehashing within segments")
	}
	if opt.Traffic.Total() >= tile.Traffic.Total() {
		t.Errorf("optimal assignment did not reduce overhead traffic: %d >= %d",
			opt.Traffic.Total(), tile.Traffic.Total())
	}
	if opt.Total.Cycles >= tile.Total.Cycles {
		t.Errorf("optimal assignment did not speed up MobileNetV2: %d >= %d",
			opt.Total.Cycles, tile.Total.Cycles)
	}
}

func TestSecureSlowdownOrdering(t *testing.T) {
	// A serial engine must slow the design at least as much as a pipelined
	// engine of the same count.
	net := workload.AlexNet()
	slow := New(arch.Base(), cryptoengine.Config{Engine: cryptoengine.Serial(), CountPerDatatype: 1})
	slow.Anneal.Iterations = 50
	fast := New(arch.Base(), cryptoengine.Config{Engine: cryptoengine.Pipelined(), CountPerDatatype: 1})
	fast.Anneal.Iterations = 50
	rSlow, err := slow.ScheduleNetwork(net, CryptOptSingle)
	if err != nil {
		t.Fatal(err)
	}
	rFast, err := fast.ScheduleNetwork(net, CryptOptSingle)
	if err != nil {
		t.Fatal(err)
	}
	if rSlow.Total.Cycles < rFast.Total.Cycles {
		t.Errorf("serial engine faster than pipelined: %d < %d", rSlow.Total.Cycles, rFast.Total.Cycles)
	}
}

func TestLayerResultsConsistency(t *testing.T) {
	net := workload.AlexNet()
	s := testScheduler()
	res, err := s.ScheduleNetwork(net, CryptOptSingle)
	if err != nil {
		t.Fatal(err)
	}
	var cycles int64
	var traffic Traffic
	for i, lr := range res.Layers {
		if lr.Index != i {
			t.Errorf("layer %d has index %d", i, lr.Index)
		}
		if lr.Mapping == nil {
			t.Fatalf("layer %d has no mapping", i)
		}
		if err := lr.Mapping.Validate(&net.Layers[i], s.Spec.PEsX, s.Spec.PEsY); err != nil {
			t.Errorf("layer %d mapping invalid: %v", i, err)
		}
		cycles += lr.Stats.Cycles
		traffic.Add(lr.Overhead)
	}
	if cycles != res.Total.Cycles {
		t.Errorf("total cycles %d != sum %d", res.Total.Cycles, cycles)
	}
	if traffic != res.Traffic {
		t.Errorf("traffic %+v != sum %+v", res.Traffic, traffic)
	}
}

func TestInSegmentProducersGetAssignments(t *testing.T) {
	net := workload.AlexNet() // segment {conv3, conv4, conv5}
	s := testScheduler()
	res, err := s.ScheduleNetwork(net, CryptOptSingle)
	if err != nil {
		t.Fatal(err)
	}
	// conv3 and conv4 produce in-segment tensors: they must carry an
	// AuthBlock assignment with positive block size.
	for _, i := range []int{2, 3} {
		if res.Layers[i].OfmapAssignment.U < 1 {
			t.Errorf("layer %d (%s) has no ofmap assignment", i, net.Layers[i].Name)
		}
	}
	// conv5 ends the segment: zero-value assignment.
	if res.Layers[4].OfmapAssignment.U != 0 {
		t.Errorf("segment-sink layer carries an assignment: %+v", res.Layers[4].OfmapAssignment)
	}
}

func TestAnnealingDeterministicPerSeed(t *testing.T) {
	net := workload.AlexNet()
	mk := func(seed int64) int64 {
		s := testScheduler()
		s.Anneal.Seed = seed
		res, err := s.ScheduleNetwork(net, CryptOptCross)
		if err != nil {
			t.Fatal(err)
		}
		return res.Total.Cycles
	}
	if mk(7) != mk(7) {
		t.Error("same seed produced different schedules")
	}
}

func TestCrossNeverWorseThanSingle(t *testing.T) {
	// Annealing starts from the all-top-1 state and returns the best state
	// observed, so Crypt-Opt-Cross can never lose to Crypt-Opt-Single.
	for _, net := range []*workload.Network{workload.AlexNet(), workload.ResNet18()} {
		s := testScheduler()
		single, err := s.ScheduleNetwork(net, CryptOptSingle)
		if err != nil {
			t.Fatal(err)
		}
		cross, err := s.ScheduleNetwork(net, CryptOptCross)
		if err != nil {
			t.Fatal(err)
		}
		if cross.Total.Cycles > single.Total.Cycles {
			t.Errorf("%s: cross (%d) > single (%d)", net.Name, cross.Total.Cycles, single.Total.Cycles)
		}
	}
}

func TestValidateRejectsBadConfig(t *testing.T) {
	s := testScheduler()
	s.TopK = 0
	if err := s.Validate(); err == nil {
		t.Error("TopK=0 accepted")
	}
	s = testScheduler()
	s.Crypto.CountPerDatatype = 0
	if err := s.Validate(); err == nil {
		t.Error("zero engines accepted")
	}
	s = testScheduler()
	s.Params.HashBits = 0
	if err := s.Validate(); err == nil {
		t.Error("zero hash bits accepted")
	}
	s = testScheduler()
	s.Spec.PEsX = 0
	if _, err := s.ScheduleNetwork(workload.AlexNet(), Unsecure); err == nil {
		t.Error("bad spec accepted")
	}
}

func TestAlgorithmNames(t *testing.T) {
	want := map[Algorithm]string{
		Unsecure:        "Unsecure",
		CryptTileSingle: "Crypt-Tile-Single",
		CryptOptSingle:  "Crypt-Opt-Single",
		CryptOptCross:   "Crypt-Opt-Cross",
	}
	for a, n := range want {
		if a.String() != n {
			t.Errorf("%d.String() = %q", int(a), a.String())
		}
	}
	if Algorithm(99).String() != "unknown" {
		t.Error("out-of-range algorithm name")
	}
}

func TestCustomJSONWorkloadEndToEnd(t *testing.T) {
	const custom = `{
	  "name": "custom-edge",
	  "layers": [
	    {"name": "stem", "c": 3, "m": 24, "r": 3, "s": 3, "p": 28, "q": 28, "stride": 2, "pad": 1},
	    {"name": "dw",   "c": 24, "m": 24, "r": 3, "s": 3, "p": 28, "q": 28, "pad": 1, "depthwise": true},
	    {"name": "pw",   "c": 24, "m": 48, "r": 1, "s": 1, "p": 28, "q": 28, "cut_after": true},
	    {"name": "head", "c": 48, "m": 96, "r": 3, "s": 3, "p": 14, "q": 14, "stride": 2, "pad": 1}
	  ]
	}`
	net, err := workload.ParseJSON(strings.NewReader(custom))
	if err != nil {
		t.Fatal(err)
	}
	s := testScheduler()
	base, err := s.ScheduleNetwork(net, Unsecure)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.ScheduleNetwork(net, CryptOptCross)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Cycles < base.Total.Cycles {
		t.Error("secure faster than unsecure on custom workload")
	}
	// The dw->pw pair is in-segment: the depthwise layer's ofmap must carry
	// an assignment.
	if res.Layers[1].OfmapAssignment.U < 1 {
		t.Error("depthwise producer missing AuthBlock assignment")
	}
}

func TestEDPObjective(t *testing.T) {
	net := workload.ResNet18()
	lat := testScheduler()
	latRes, err := lat.ScheduleNetwork(net, CryptOptCross)
	if err != nil {
		t.Fatal(err)
	}
	edp := testScheduler()
	edp.Objective = MinEDP
	edpRes, err := edp.ScheduleNetwork(net, CryptOptCross)
	if err != nil {
		t.Fatal(err)
	}
	single, err := edp.ScheduleNetwork(net, CryptOptSingle)
	if err != nil {
		t.Fatal(err)
	}
	// The EDP-objective annealer starts from the same top-1 state and keeps
	// the best observed, so per segment its EDP never regresses; summed
	// over segments the total cannot exceed the no-annealing result by more
	// than cross-segment interaction, which does not exist. Assert the
	// guaranteed direction.
	if edpRes.Total.EDP() > single.Total.EDP()*1.0001 {
		t.Errorf("EDP objective worsened EDP: %g > %g", edpRes.Total.EDP(), single.Total.EDP())
	}
	// And it should do no worse on EDP than the latency objective did.
	if edpRes.Total.EDP() > latRes.Total.EDP()*1.02 {
		t.Errorf("EDP objective lost to latency objective on EDP: %g vs %g",
			edpRes.Total.EDP(), latRes.Total.EDP())
	}
	if MinLatency.String() != "latency" || MinEDP.String() != "edp" || Objective(9).String() != "unknown" {
		t.Error("objective names")
	}
}

func TestRejectsBatchedWorkloads(t *testing.T) {
	net := workload.AlexNet()
	net.Layers[0].N = 4
	if _, err := testScheduler().ScheduleNetwork(net, Unsecure); err == nil {
		t.Error("batched workload accepted")
	}
}
