// Package core is the SecureLoop scheduling engine: it ties together the
// three steps of the paper's search (Figure 6) — cryptographic-engine-aware
// loopnest scheduling (Section 4.1), optimal AuthBlock assignment
// (Section 4.2) and cross-layer fine tuning with simulated annealing
// (Section 4.3) — and exposes the Table 1 scheduling algorithms used
// throughout the evaluation.
package core

import (
	"fmt"

	"secureloop/internal/anneal"
	"secureloop/internal/arch"
	"secureloop/internal/authblock"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/mapper"
	"secureloop/internal/mapping"
	"secureloop/internal/model"
	"secureloop/internal/obs"
	"secureloop/internal/store"
	"secureloop/internal/workload"
)

// Algorithm selects a scheduling algorithm (Table 1).
type Algorithm int

const (
	// Unsecure is the baseline accelerator without cryptographic engines;
	// secure latencies are normalised to it (Figure 11a).
	Unsecure Algorithm = iota
	// CryptTileSingle: crypto-aware loopnest scheduling with the
	// tile-as-an-AuthBlock assignment of prior work, no cross-layer search.
	CryptTileSingle
	// CryptOptSingle: adds the optimal AuthBlock assignment (step 2).
	CryptOptSingle
	// CryptOptCross: adds cross-layer fine tuning (step 3).
	CryptOptCross
)

// String names the algorithm as in Table 1.
func (a Algorithm) String() string {
	switch a {
	case Unsecure:
		return "Unsecure"
	case CryptTileSingle:
		return "Crypt-Tile-Single"
	case CryptOptSingle:
		return "Crypt-Opt-Single"
	case CryptOptCross:
		return "Crypt-Opt-Cross"
	}
	return "unknown"
}

// Algorithms lists the three secure algorithms in Table 1 order.
func Algorithms() []Algorithm {
	return []Algorithm{CryptTileSingle, CryptOptSingle, CryptOptCross}
}

// Objective selects what the cross-layer fine-tuning step minimises.
type Objective int

const (
	// MinLatency minimises total cycles (the paper's Algorithm 1 cost).
	MinLatency Objective = iota
	// MinEDP minimises the energy-delay product, trading some latency for
	// energy where the schedule space allows.
	MinEDP
)

// String names the objective.
func (o Objective) String() string {
	switch o {
	case MinLatency:
		return "latency"
	case MinEDP:
		return "edp"
	}
	return "unknown"
}

// Scheduler configures a SecureLoop run.
type Scheduler struct {
	// Spec is the accelerator architecture.
	Spec arch.Spec
	// Crypto is the cryptographic-engine configuration (unused by the
	// Unsecure algorithm).
	Crypto cryptoengine.Config
	// Params carries word and hash widths for the AuthBlock cost model.
	Params authblock.Params
	// TopK is the per-layer schedule count kept for the annealing neighbour
	// sets (the paper settles on k=6, Figure 10).
	TopK int
	// Anneal tunes the simulated-annealing step.
	Anneal anneal.Options
	// Objective selects the fine-tuning cost (default MinLatency,
	// Algorithm 1's PerfModel).
	Objective Objective
	// MaxParallel bounds the worker pool used for the per-layer scheduling
	// step (<= 0 means one worker per available CPU). Set to 1 to force the
	// serial path; results are identical either way.
	MaxParallel int
	// Mapper selects the per-layer loopnest search strategy (zero value:
	// exhaustive). Guided mode at the default Epsilon = 0 returns results
	// byte-identical to exhaustive at a fraction of the latency.
	Mapper mapper.Options
	// Observe receives progress events from every stage of the run (nil
	// means none). Event emission is wall-clock-free and happens outside
	// the random annealing trajectory, so an observed run returns results
	// byte-identical to an unobserved one.
	Observe obs.Observer
	// Store, when non-nil, is the persistent content-addressed result tier:
	// whole-network schedules, per-layer mapper searches and AuthBlock
	// optimal assignments read through to it and write behind into it, so
	// identical requests resolve across processes and restarts. A store hit
	// returns results byte-identical to the search it replaces.
	Store *store.Store
}

// New returns a scheduler with the paper's default knobs: k=6 and 1000
// annealing iterations.
func New(spec arch.Spec, crypto cryptoengine.Config) *Scheduler {
	return &Scheduler{
		Spec:   spec,
		Crypto: crypto,
		Params: authblock.DefaultParams(),
		TopK:   6,
		Anneal: anneal.DefaultOptions(),
	}
}

// LayerResult is the schedule and cost of one layer.
type LayerResult struct {
	// Index is the layer's position in the network.
	Index int
	// Choice is the index of the chosen schedule in the layer's top-k
	// candidate list (0 outside Crypt-Opt-Cross, where only top-1 is kept).
	Choice int
	// Mapping is the chosen loopnest schedule.
	Mapping *mapping.Mapping
	// Stats is the evaluated performance/energy.
	Stats model.Stats
	// Overhead is the authentication traffic charged to the layer.
	Overhead model.Overhead
	// OfmapAssignment is the AuthBlock regime of the layer's ofmap when it
	// feeds an in-segment consumer under an Opt algorithm (zero value
	// otherwise).
	OfmapAssignment authblock.Assignment
}

// Traffic is the network-level additional off-chip traffic breakdown of
// Figure 11b.
type Traffic struct {
	HashBits      int64
	RedundantBits int64
	RehashBits    int64
}

// Total returns all overhead bits.
func (t Traffic) Total() int64 { return t.HashBits + t.RedundantBits + t.RehashBits }

// Add accumulates an overhead into the breakdown.
func (t *Traffic) Add(ov model.Overhead) {
	for i := 0; i < 3; i++ {
		t.HashBits += ov.HashBits[i]
		t.RedundantBits += ov.RedundantBits[i]
	}
	t.RehashBits += ov.RehashBits
}

// NetworkResult is a scheduled network with totals.
type NetworkResult struct {
	Network   *workload.Network
	Algorithm Algorithm
	Layers    []LayerResult
	// Total accumulates per-layer stats (latency sums serially).
	Total model.Stats
	// Traffic is the authentication-overhead breakdown.
	Traffic Traffic
}

// Validate checks the scheduler configuration.
func (s *Scheduler) Validate() error {
	if err := s.Spec.Validate(); err != nil {
		return err
	}
	if s.Crypto.CountPerDatatype < 1 {
		return fmt.Errorf("core: crypto engine count must be >= 1")
	}
	if s.Params.WordBits <= 0 || s.Params.HashBits <= 0 {
		return fmt.Errorf("core: params must be positive")
	}
	if s.TopK < 1 {
		return fmt.Errorf("core: TopK must be >= 1")
	}
	return nil
}
