package core

import (
	"secureloop/internal/authblock"
	"secureloop/internal/mapping"
	"secureloop/internal/workload"
)

// producerGrid converts a layer's DRAM-level ofmap tiling into the
// authblock producer view of the shared tensor.
func producerGrid(l *workload.Layer, m *mapping.Mapping) authblock.ProducerGrid {
	ot := m.OfmapDRAMTiling(l)
	return authblock.ProducerGrid{
		C: ot.M, H: ot.P, W: ot.Q,
		TileC: ot.MTile, TileH: ot.PTile, TileW: ot.QTile,
		WritesPerTile: ot.WritesPerTile,
	}
}

// consumerGrid converts a layer's DRAM-level ifmap tiling into the
// authblock consumer view. The grid is interpreted against the *producer's*
// tensor extents during evaluation, which clips windows exactly as the
// accelerator does (zero padding is generated on chip and never fetched).
func consumerGrid(l *workload.Layer, m *mapping.Mapping) authblock.ConsumerGrid {
	it := m.IfmapDRAMTiling(l)
	return authblock.ConsumerGrid{
		TileC: it.ChTile,
		WinH:  it.HWin, WinW: it.WWin,
		StepH: it.HStep, StepW: it.WStep,
		OffH: it.OffH, OffW: it.OffW,
		CountC: it.ChCount, CountH: it.HCount, CountW: it.WCount,
		FetchesPerTile: it.FetchesPerTile,
	}
}

// sourceGrid builds the whole-tensor producer view for a segment-source
// ifmap (network input or post-processing output): the writer provisions
// AuthBlocks freely for the consumer, so the tensor is treated as one tile.
func sourceGrid(l *workload.Layer) authblock.ProducerGrid {
	ch := l.C
	if l.Depthwise {
		ch = l.M
	}
	return authblock.Whole(ch, l.InH(), l.InW())
}
