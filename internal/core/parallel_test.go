package core

import (
	"math/rand"
	"reflect"
	"testing"

	"secureloop/internal/authblock"
	"secureloop/internal/mapper"
	"secureloop/internal/workload"
)

// TestParallelMappingMatchesSerial: fanning the per-layer step-1 searches
// across a worker pool must not change any result — totals, per-layer
// stats, mappings and assignments are all identical to the serial path.
func TestParallelMappingMatchesSerial(t *testing.T) {
	net := workload.AlexNet()
	for _, alg := range []Algorithm{Unsecure, CryptOptSingle, CryptOptCross} {
		serial := testScheduler()
		serial.MaxParallel = 1
		rs, err := serial.ScheduleNetwork(net, alg)
		if err != nil {
			t.Fatal(err)
		}
		par := testScheduler()
		rp, err := par.ScheduleNetwork(net, alg)
		if err != nil {
			t.Fatal(err)
		}
		if rp.Total != rs.Total {
			t.Errorf("%v: parallel total %+v != serial %+v", alg, rp.Total, rs.Total)
		}
		if rp.Traffic != rs.Traffic {
			t.Errorf("%v: parallel traffic %+v != serial %+v", alg, rp.Traffic, rs.Traffic)
		}
		if !reflect.DeepEqual(rp.Layers, rs.Layers) {
			t.Errorf("%v: parallel per-layer results differ from serial", alg)
		}
	}
}

// testRun builds the annealing state for one segment of the network, as
// ScheduleNetwork does before step 3.
func testRun(t *testing.T, s *Scheduler, net *workload.Network) *run {
	t.Helper()
	r := &run{s: s, net: net, alg: CryptOptCross, pairCache: map[pairKey]authblock.Costs{}}
	effBW := s.Crypto.EffectiveBytesPerCycle(s.Spec.DRAM.BytesPerCycle)
	r.candidates = make([][]mapper.Candidate, net.NumLayers())
	for i := range net.Layers {
		r.candidates[i] = mapper.SearchCached(mapper.Request{
			Layer: &net.Layers[i],
			PEsX:  s.Spec.PEsX, PEsY: s.Spec.PEsY,
			GLBBits: s.Spec.GlobalBufferBits(), RFBits: s.Spec.RegFileBits(),
			EffectiveBytesPerCycle: effBW,
			TopK:                   s.TopK,
		})
		if len(r.candidates[i]) == 0 {
			t.Fatalf("no candidates for layer %d", i)
		}
	}
	return r
}

// TestDeltaCostMatchesFullRecomputation: for random choice vectors and
// random single-layer moves, the memoised DeltaCost path must equal a full
// recomputation on an independent, unmemoised problem instance — for both
// objectives.
func TestDeltaCostMatchesFullRecomputation(t *testing.T) {
	net := workload.AlexNet()
	for _, objective := range []Objective{MinLatency, MinEDP} {
		s := testScheduler()
		s.Objective = objective
		fast := testRun(t, s, net)
		slow := testRun(t, s, net)
		slow.memoOff = true

		seg := net.Segments[2] // the conv3-conv5 chain
		if len(seg) < 3 {
			t.Fatal("expected a multi-layer segment")
		}
		fastProb := &segmentProblem{run: fast, segment: seg, choices: make([]int, net.NumLayers())}
		slowProb := &segmentProblem{run: slow, segment: seg, choices: make([]int, net.NumLayers())}

		rng := rand.New(rand.NewSource(9))
		cur := make([]int, len(seg))
		for trial := 0; trial < 100; trial++ {
			for j, li := range seg {
				cur[j] = rng.Intn(len(fast.candidates[li]))
			}
			i := rng.Intn(len(seg))
			next := rng.Intn(len(fast.candidates[seg[i]]))

			if got, want := fastProb.Cost(cur), slowProb.Cost(cur); got != want {
				t.Fatalf("%v trial %d: memoised Cost %g != full recomputation %g",
					objective, trial, got, want)
			}
			mod := append([]int(nil), cur...)
			mod[i] = next
			if got, want := fastProb.DeltaCost(cur, i, next), slowProb.Cost(mod); got != want {
				t.Fatalf("%v trial %d: DeltaCost(%v,%d,%d) = %g, full recomputation %g",
					objective, trial, cur, i, next, got, want)
			}
		}
		if fast.layerEvals >= slow.layerEvals {
			t.Errorf("%v: memoised path evaluated %d layers, unmemoised %d — memo ineffective",
				objective, fast.layerEvals, slow.layerEvals)
		}
	}
}

// TestSegmentProblemImplementsIncremental guards the interface assertion
// the annealing fast path depends on.
func TestSegmentProblemImplementsIncremental(t *testing.T) {
	var p interface{} = &segmentProblem{}
	if _, ok := p.(interface {
		DeltaCost(choices []int, i, next int) float64
	}); !ok {
		t.Fatal("segmentProblem does not implement DeltaCost")
	}
}
