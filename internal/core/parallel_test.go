package core

import (
	"math/rand"
	"reflect"
	"testing"

	"secureloop/internal/mapper"
	"secureloop/internal/workload"
)

// TestParallelMappingMatchesSerial: fanning the per-layer step-1 searches
// across a worker pool must not change any result — totals, per-layer
// stats, mappings and assignments are all identical to the serial path.
func TestParallelMappingMatchesSerial(t *testing.T) {
	net := workload.AlexNet()
	for _, alg := range []Algorithm{Unsecure, CryptOptSingle, CryptOptCross} {
		serial := testScheduler()
		serial.MaxParallel = 1
		rs, err := serial.ScheduleNetwork(net, alg)
		if err != nil {
			t.Fatal(err)
		}
		par := testScheduler()
		rp, err := par.ScheduleNetwork(net, alg)
		if err != nil {
			t.Fatal(err)
		}
		if rp.Total != rs.Total {
			t.Errorf("%v: parallel total %+v != serial %+v", alg, rp.Total, rs.Total)
		}
		if rp.Traffic != rs.Traffic {
			t.Errorf("%v: parallel traffic %+v != serial %+v", alg, rp.Traffic, rs.Traffic)
		}
		if !reflect.DeepEqual(rp.Layers, rs.Layers) {
			t.Errorf("%v: parallel per-layer results differ from serial", alg)
		}
	}
}

// TestAnnealParallelMatchesSerial: step 3 anneals independent multi-layer
// segments concurrently; at any parallelism the choice vectors, cycles and
// energy must be identical to the serial run. ResNet18 has several
// multi-layer segments, so this actually exercises concurrent segments (and
// the concurrent pair-matrix precompute feeding them).
func TestAnnealParallelMatchesSerial(t *testing.T) {
	net := workload.ResNet18()
	if n := len(net.Segments); n < 3 {
		t.Fatalf("want a multi-segment network, got %d segments", n)
	}
	serial := testScheduler()
	serial.MaxParallel = 1
	rs, err := serial.ScheduleNetwork(net, CryptOptCross)
	if err != nil {
		t.Fatal(err)
	}
	par := testScheduler()
	par.MaxParallel = 8
	rp, err := par.ScheduleNetwork(net, CryptOptCross)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs.Layers {
		if rs.Layers[i].Choice != rp.Layers[i].Choice {
			t.Errorf("layer %d: serial choice %d != parallel choice %d",
				i, rs.Layers[i].Choice, rp.Layers[i].Choice)
		}
	}
	if rs.Total.Cycles != rp.Total.Cycles || rs.Total.EnergyPJ != rp.Total.EnergyPJ {
		t.Errorf("serial total %+v != parallel total %+v", rs.Total, rp.Total)
	}
	if !reflect.DeepEqual(rs.Layers, rp.Layers) {
		t.Error("parallel per-layer results differ from serial")
	}
}

// testRun builds the annealing state for one segment of the network, as
// ScheduleNetwork does before step 3.
func testRun(t *testing.T, s *Scheduler, net *workload.Network) *run {
	t.Helper()
	r := newRun(s, net, CryptOptCross)
	effBW := s.Crypto.EffectiveBytesPerCycle(s.Spec.DRAM.BytesPerCycle)
	for i := range net.Layers {
		r.candidates[i] = mapper.SearchCached(mapper.Request{
			Layer: &net.Layers[i],
			PEsX:  s.Spec.PEsX, PEsY: s.Spec.PEsY,
			GLBBits: s.Spec.GlobalBufferBits(), RFBits: s.Spec.RegFileBits(),
			EffectiveBytesPerCycle: effBW,
			TopK:                   s.TopK,
		})
		if len(r.candidates[i]) == 0 {
			t.Fatalf("no candidates for layer %d", i)
		}
	}
	return r
}

// TestDeltaCostMatchesFullRecomputation: for random choice vectors and
// random single-layer moves, the dense-memo DeltaCost path must equal a
// full recomputation on an independent, unmemoised problem instance — for
// both objectives.
func TestDeltaCostMatchesFullRecomputation(t *testing.T) {
	net := workload.AlexNet()
	for _, objective := range []Objective{MinLatency, MinEDP} {
		s := testScheduler()
		s.Objective = objective
		fast := testRun(t, s, net)
		slow := testRun(t, s, net)
		slow.memoOff = true

		seg := net.Segments[2] // the conv3-conv5 chain
		if len(seg) < 3 {
			t.Fatal("expected a multi-layer segment")
		}
		fast.precomputePairMatrices([][]int{seg}, 4)
		fast.prepareLayerMemos([][]int{seg})
		fastProb := &segmentProblem{run: fast, segment: seg}
		slowProb := &segmentProblem{run: slow, segment: seg}

		rng := rand.New(rand.NewSource(9))
		cur := make([]int, len(seg))
		for trial := 0; trial < 100; trial++ {
			for j, li := range seg {
				cur[j] = rng.Intn(len(fast.candidates[li]))
			}
			i := rng.Intn(len(seg))
			next := rng.Intn(len(fast.candidates[seg[i]]))

			if got, want := fastProb.Cost(cur), slowProb.Cost(cur); got != want {
				t.Fatalf("%v trial %d: memoised Cost %g != full recomputation %g",
					objective, trial, got, want)
			}
			mod := append([]int(nil), cur...)
			mod[i] = next
			if got, want := fastProb.DeltaCost(cur, i, next), slowProb.Cost(mod); got != want {
				t.Fatalf("%v trial %d: DeltaCost(%v,%d,%d) = %g, full recomputation %g",
					objective, trial, cur, i, next, got, want)
			}
		}
		if fast.layerEvals.Load() >= slow.layerEvals.Load() {
			t.Errorf("%v: memoised path evaluated %d layers, unmemoised %d — memo ineffective",
				objective, fast.layerEvals.Load(), slow.layerEvals.Load())
		}
	}
}

// TestPairMatrixPrecomputeMatchesLazy: the fanned-out precompute must fill
// exactly the entries the lazy serial path would, with identical costs and
// assignments.
func TestPairMatrixPrecomputeMatchesLazy(t *testing.T) {
	net := workload.AlexNet()
	s := testScheduler()
	pre := testRun(t, s, net)
	lazy := testRun(t, s, net)
	seg := net.Segments[2]
	pre.precomputePairMatrices([][]int{seg}, 8)
	for i := 0; i+1 < len(seg); i++ {
		a, b := seg[i], seg[i+1]
		for ca := range pre.candidates[a] {
			for cb := range pre.candidates[b] {
				gc, ga := pre.pairCosts(a, b, ca, cb)
				wc, wa := lazy.pairCosts(a, b, ca, cb)
				if gc != wc || ga != wa {
					t.Fatalf("pair (%d,%d) choices (%d,%d): precomputed (%+v,%+v) != lazy (%+v,%+v)",
						a, b, ca, cb, gc, ga, wc, wa)
				}
			}
		}
	}
}

// TestSegmentProblemImplementsIncremental guards the interface assertion
// the annealing fast path depends on.
func TestSegmentProblemImplementsIncremental(t *testing.T) {
	var p interface{} = &segmentProblem{}
	if _, ok := p.(interface {
		DeltaCost(choices []int, i, next int) float64
	}); !ok {
		t.Fatal("segmentProblem does not implement DeltaCost")
	}
}
