package core

import (
	"math/rand"
	"testing"

	"secureloop/internal/anneal"
	"secureloop/internal/arch"
	"secureloop/internal/authblock"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/mapper"
	"secureloop/internal/workload"
)

// benchSegmentNetwork is a five-layer single-segment chain (deeper than any
// paper segment) stressing the cross-layer annealing step.
func benchSegmentNetwork() *workload.Network {
	mk := func(name string, c, m int) workload.Layer {
		return workload.Layer{
			Name: name, C: c, M: m, R: 3, S: 3, P: 14, Q: 14,
			StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
			N: 1, WordBits: 16,
		}
	}
	return &workload.Network{
		Name: "bench-chain5",
		Layers: []workload.Layer{
			mk("l0", 64, 96),
			mk("l1", 96, 96),
			mk("l2", 96, 96),
			mk("l3", 96, 96),
			mk("l4", 96, 64),
		},
		Segments: [][]int{{0, 1, 2, 3, 4}},
	}
}

// benchRun assembles the step-1 candidates for the bench network so the
// benchmarks isolate the step-2/3 AuthBlock and annealing pipeline.
func benchRun(b *testing.B, net *workload.Network) *run {
	b.Helper()
	s := New(arch.Base(), cryptoengine.Config{Engine: cryptoengine.Pipelined(), CountPerDatatype: 1})
	r := newRun(s, net, CryptOptCross)
	effBW := s.Crypto.EffectiveBytesPerCycle(s.Spec.DRAM.BytesPerCycle)
	for i := range net.Layers {
		r.candidates[i] = mapper.SearchCached(mapper.Request{
			Layer: &net.Layers[i],
			PEsX:  s.Spec.PEsX, PEsY: s.Spec.PEsY,
			GLBBits: s.Spec.GlobalBufferBits(), RFBits: s.Spec.RegFileBits(),
			EffectiveBytesPerCycle: effBW,
			TopK:                   s.TopK,
		})
		if len(r.candidates[i]) == 0 {
			b.Fatalf("no candidates for layer %d", i)
		}
	}
	return r
}

// BenchmarkAnnealSegment measures the step-2/3 pipeline on a 5-layer
// segment with a cold AuthBlock cache: 500 annealing iterations over the
// per-layer top-k candidate sets, with every memo (global authblock caches,
// pair matrices, layer memos) dropped each iteration.
//
// The "reference" variant is the pre-batching hot path: every annealing
// move that misses the memo pays a full per-candidate AuthBlock search
// (retained authblock.OptimalReference) on demand. The "batched" variant
// precomputes the dense pair-cost matrices up front on the shared
// decomposition and anneals over pure array lookups.
func BenchmarkAnnealSegment(b *testing.B) {
	net := benchSegmentNetwork()
	opts := anneal.Options{Iterations: 500, TInit: 0.05, TFinal: 1e-4, Seed: 1}
	segs := net.Segments
	for _, mode := range []string{"reference", "batched"} {
		b.Run(mode, func(b *testing.B) {
			r := benchRun(b, net)
			r.useReference = mode == "reference"
			var evals int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				authblock.ResetCaches()
				r.pairMats = make([]*pairMatrix, net.NumLayers())
				r.layerMemos = make([]layerMemo, net.NumLayers())
				r.layerEvals.Store(0)
				b.StartTimer()
				if mode == "batched" {
					r.precomputePairMatrices(segs, 1)
				}
				r.prepareLayerMemos(segs)
				res := anneal.Minimize(&segmentProblem{run: r, segment: segs[0]}, opts)
				if res.Cost <= 0 {
					b.Fatal("non-positive segment cost")
				}
				evals += r.layerEvals.Load()
			}
			b.ReportMetric(float64(evals)/float64(int64(b.N)*int64(opts.Iterations)), "layer-evals/move")
		})
	}
}

// BenchmarkAnnealMove measures the steady-state annealing move: every pair
// matrix and layer-memo slot is warm, so DeltaCost must be pure array
// arithmetic — 0 allocs/op.
func BenchmarkAnnealMove(b *testing.B) {
	net := benchSegmentNetwork()
	r := benchRun(b, net)
	segs := net.Segments
	r.precomputePairMatrices(segs, 1)
	r.prepareLayerMemos(segs)
	prob := &segmentProblem{run: r, segment: segs[0]}
	// Warm every memo slot the move loop can touch.
	res := anneal.Minimize(prob, anneal.Options{Iterations: 2000, TInit: 0.05, TFinal: 1e-4, Seed: 1})
	if res.Cost <= 0 {
		b.Fatal("non-positive segment cost")
	}
	rng := rand.New(rand.NewSource(2))
	choices := make([]int, len(segs[0]))
	moves := make([][2]int, 1024)
	for i := range moves {
		li := rng.Intn(len(segs[0]))
		moves[i] = [2]int{li, rng.Intn(len(r.candidates[segs[0][li]]))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		m := moves[i%len(moves)]
		sink += prob.DeltaCost(choices, m[0], m[1])
	}
	if sink <= 0 {
		b.Fatal("non-positive accumulated cost")
	}
}

// BenchmarkPairMatrix measures the batched step-2 precomputation alone: the
// k x k AuthBlock pair-cost matrices of all adjacent layer pairs in the
// segment, from a cold cache.
func BenchmarkPairMatrix(b *testing.B) {
	net := benchSegmentNetwork()
	r := benchRun(b, net)
	segs := net.Segments
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		authblock.ResetCaches()
		r.pairMats = make([]*pairMatrix, net.NumLayers())
		b.StartTimer()
		r.precomputePairMatrices(segs, 1)
	}
}

// BenchmarkScheduleNetworkCross is the end-to-end Crypt-Opt-Cross schedule
// of AlexNet from a cold AuthBlock cache (the mapper cache stays warm, so
// the number isolates steps 2-3 plus assembly).
func BenchmarkScheduleNetworkCross(b *testing.B) {
	net := workload.AlexNet()
	s := New(arch.Base(), cryptoengine.Config{Engine: cryptoengine.Pipelined(), CountPerDatatype: 1})
	s.Anneal.Iterations = 500
	if _, err := s.ScheduleNetwork(net, CryptOptCross); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		authblock.ResetCaches()
		b.StartTimer()
		if _, err := s.ScheduleNetwork(net, CryptOptCross); err != nil {
			b.Fatal(err)
		}
	}
}
