package core

import (
	"testing"

	"secureloop/internal/anneal"
	"secureloop/internal/arch"
	"secureloop/internal/authblock"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/mapper"
	"secureloop/internal/workload"
)

// benchSegmentNetwork is a five-layer single-segment chain (deeper than any
// paper segment) stressing the cross-layer annealing step.
func benchSegmentNetwork() *workload.Network {
	mk := func(name string, c, m int) workload.Layer {
		return workload.Layer{
			Name: name, C: c, M: m, R: 3, S: 3, P: 14, Q: 14,
			StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
			N: 1, WordBits: 16,
		}
	}
	return &workload.Network{
		Name: "bench-chain5",
		Layers: []workload.Layer{
			mk("l0", 64, 96),
			mk("l1", 96, 96),
			mk("l2", 96, 96),
			mk("l3", 96, 96),
			mk("l4", 96, 64),
		},
		Segments: [][]int{{0, 1, 2, 3, 4}},
	}
}

// benchRun assembles the step-1 candidates for the bench network so the
// benchmark isolates the annealing step.
func benchRun(b *testing.B, net *workload.Network) *run {
	b.Helper()
	s := New(arch.Base(), cryptoengine.Config{Engine: cryptoengine.Pipelined(), CountPerDatatype: 1})
	r := &run{s: s, net: net, alg: CryptOptCross, pairCache: map[pairKey]authblock.Costs{}}
	effBW := s.Crypto.EffectiveBytesPerCycle(s.Spec.DRAM.BytesPerCycle)
	r.candidates = make([][]mapper.Candidate, net.NumLayers())
	for i := range net.Layers {
		r.candidates[i] = mapper.SearchCached(mapper.Request{
			Layer: &net.Layers[i],
			PEsX:  s.Spec.PEsX, PEsY: s.Spec.PEsY,
			GLBBits: s.Spec.GlobalBufferBits(), RFBits: s.Spec.RegFileBits(),
			EffectiveBytesPerCycle: effBW,
			TopK:                   s.TopK,
		})
		if len(r.candidates[i]) == 0 {
			b.Fatalf("no candidates for layer %d", i)
		}
	}
	return r
}

// fullOnlyProblem hides the Incremental interface, forcing the annealer
// onto the whole-segment recomputation path of the pre-optimisation code.
type fullOnlyProblem struct{ p anneal.Problem }

func (f fullOnlyProblem) NumLayers() int       { return f.p.NumLayers() }
func (f fullOnlyProblem) NumChoices(i int) int { return f.p.NumChoices(i) }
func (f fullOnlyProblem) Cost(c []int) float64 { return f.p.Cost(c) }

// BenchmarkAnnealSegment measures Algorithm 1 on a 5-layer segment: 500
// annealing iterations over the per-layer top-k candidate sets. The "full"
// variant recomputes the whole segment per move with no memo (the old hot
// path); "incremental" uses the layer memo plus DeltaCost. Both report
// fresh layer evaluations per move.
func BenchmarkAnnealSegment(b *testing.B) {
	net := benchSegmentNetwork()
	opts := anneal.Options{Iterations: 500, TInit: 0.05, TFinal: 1e-4, Seed: 1}
	for _, mode := range []string{"full", "incremental"} {
		b.Run(mode, func(b *testing.B) {
			r := benchRun(b, net)
			r.memoOff = mode == "full"
			choices := make([]int, net.NumLayers())
			var evals int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range choices {
					choices[j] = 0
				}
				r.layerEvals = 0
				r.layerMemo = nil
				var prob anneal.Problem = &segmentProblem{run: r, segment: net.Segments[0], choices: choices}
				if mode == "full" {
					prob = fullOnlyProblem{prob}
				}
				res := anneal.Minimize(prob, opts)
				if res.Cost <= 0 {
					b.Fatal("non-positive segment cost")
				}
				evals += r.layerEvals
			}
			b.ReportMetric(float64(evals)/float64(int64(b.N)*int64(opts.Iterations)), "layer-evals/move")
		})
	}
}
