package core

import (
	"context"
	"reflect"
	"testing"

	"secureloop/internal/arch"
	"secureloop/internal/authblock"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/mapper"
	"secureloop/internal/store"
	"secureloop/internal/workload"
)

func storeSched(st *store.Store) *Scheduler {
	s := New(arch.Base(), cryptoengine.Config{Engine: cryptoengine.Parallel(), CountPerDatatype: 1})
	s.Anneal.Iterations = 50
	s.Mapper = mapper.Options{Mode: mapper.Guided}
	s.Store = st
	return s
}

// TestScheduleNetworkStoreRoundTrip pins deep byte-identity through the
// persistent tier: a warm schedule decoded from the store — with every
// in-memory cache dropped in between, the moral equivalent of a fresh
// process — equals the cold schedule in every field, down to each mapping's
// tiling factors and loop permutations.
func TestScheduleNetworkStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	net := workload.AlexNet()

	mapper.ResetCache()
	mapper.ResetWarmStore()
	authblock.ResetCaches()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := storeSched(st).ScheduleNetworkCtx(context.Background(), net, CryptOptCross)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	mapper.ResetCache()
	mapper.ResetWarmStore()
	authblock.ResetCaches()
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := storeSched(st2).ScheduleNetworkCtx(context.Background(), net, CryptOptCross)
	if err != nil {
		t.Fatal(err)
	}
	hits := st2.Stats().Hits
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	if hits == 0 {
		t.Error("warm schedule never hit the store")
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("warm schedule differs from cold:\ncold %+v\nwarm %+v", cold.Total, warm.Total)
	}
}

// TestScheduleNetworkStoreCorruptRecordRecomputed pins the fallback
// contract: a store whose network-tier record is unreadable is a miss, not
// an error — the scheduler recomputes and returns the same result.
func TestScheduleNetworkStoreCorruptRecordRecomputed(t *testing.T) {
	net := workload.AlexNet()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := st.Close(); cerr != nil {
			t.Fatal(cerr)
		}
	}()
	s := storeSched(st)
	key := s.persistNetworkKey(net, CryptOptCross)
	// Poison the network tier with bytes no decoder accepts.
	st.Put(store.KindNetwork, key, []byte{0xff, 0xff, 0xff})

	res, err := s.ScheduleNetworkCtx(context.Background(), net, CryptOptCross)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Cycles <= 0 {
		t.Errorf("recomputed schedule has %d cycles", res.Total.Cycles)
	}
}
