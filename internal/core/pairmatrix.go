package core

import (
	"sync"
	"sync/atomic"

	"secureloop/internal/authblock"
	"secureloop/internal/num"
)

// pairEntry couples the AuthBlock costs of one (producer choice, consumer
// choice) combination with the assignment that produced them, so a cache
// hit can never pair costs with a mismatched assignment.
type pairEntry struct {
	ok     bool
	costs  authblock.Costs
	assign authblock.Assignment
}

// pairMatrix is the dense k_a x k_b AuthBlock cost matrix of the tensor one
// layer shares with its in-segment successor, indexed by
// (producerChoice * kb + consumerChoice).
type pairMatrix struct {
	kb      int
	entries []pairEntry
}

// matrixFor returns (allocating if needed) the pair matrix of layer a and
// its in-segment successor b. Callers on concurrent paths must have
// precomputed the matrix first; lazy allocation is for the serial
// single-assignment algorithms.
func (r *run) matrixFor(a, b int) *pairMatrix {
	m := r.pairMats[a]
	if m == nil {
		ka, kb := len(r.candidates[a]), len(r.candidates[b])
		m = &pairMatrix{kb: kb, entries: make([]pairEntry, num.MulInt(ka, kb))}
		r.pairMats[a] = m
	}
	return m
}

// pairCosts returns the AuthBlock costs and assignment of the shared tensor
// between in-segment layers a -> b under choices (ca, cb). During annealing
// every entry is precomputed, so the lookup is two array reads with no
// locking; the compute path only runs on serial callers.
func (r *run) pairCosts(a, b, ca, cb int) (authblock.Costs, authblock.Assignment) {
	m := r.matrixFor(a, b)
	e := &m.entries[ca*m.kb+cb]
	if !e.ok {
		e.costs, e.assign = r.computePair(a, b, ca, cb)
		e.ok = true
	}
	return e.costs, e.assign
}

// computePair evaluates the AuthBlock regime of the tensor between layers
// a -> b under explicit candidate choices.
func (r *run) computePair(a, b, ca, cb int) (authblock.Costs, authblock.Assignment) {
	la, lb := &r.net.Layers[a], &r.net.Layers[b]
	p := producerGrid(la, r.candidates[a][ca].Mapping)
	c := consumerGrid(lb, r.candidates[b][cb].Mapping)
	switch {
	case r.alg == CryptTileSingle:
		costs, _ := authblock.TileAsAuthBlockCached(p, c, r.s.Params)
		assign := authblock.Assignment{
			Orientation: authblock.AlongQ,
			U:           num.MulInt(num.MulInt(p.TileC, p.TileH), p.TileW),
		}
		return costs, assign
	case r.useReference:
		res := authblock.OptimalReference(p, c, r.s.Params)
		return res.Costs, res.Assignment
	default:
		res := authblock.OptimalCached(p, c, r.s.Params)
		return res.Costs, res.Assignment
	}
}

// precomputePairMatrices fills the dense pair-cost matrices of every
// adjacent layer pair in the given segments, fanning the independent
// optimal-assignment searches across a bounded worker pool. Each job writes
// one distinct matrix slot, so no synchronisation beyond the final barrier
// is needed, and the result is identical at any parallelism: every entry is
// a pure function of its (producer, consumer, choices) tuple.
func (r *run) precomputePairMatrices(segs [][]int, workers int) {
	type pairJob struct{ a, b, ca, cb int }
	var jobs []pairJob
	for _, seg := range segs {
		for i := 0; i+1 < len(seg); i++ {
			a, b := seg[i], seg[i+1]
			m := r.matrixFor(a, b)
			for ca := range r.candidates[a] {
				for cb := range r.candidates[b] {
					if !m.entries[ca*m.kb+cb].ok {
						jobs = append(jobs, pairJob{a: a, b: b, ca: ca, cb: cb})
					}
				}
			}
		}
	}
	if len(jobs) == 0 {
		return
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				m := r.pairMats[j.a]
				e := &m.entries[j.ca*m.kb+j.cb]
				e.costs, e.assign = r.computePair(j.a, j.b, j.ca, j.cb)
				e.ok = true
			}
		}()
	}
	wg.Wait()
}
