package core

import (
	"sync"
	"sync/atomic"

	"secureloop/internal/authblock"
	"secureloop/internal/num"
	"secureloop/internal/obs"
)

// pairEntry couples the AuthBlock costs of one (producer choice, consumer
// choice) combination with the assignment that produced them, so a cache
// hit can never pair costs with a mismatched assignment.
type pairEntry struct {
	ok     bool
	costs  authblock.Costs
	assign authblock.Assignment
}

// pairMatrix is the dense k_a x k_b AuthBlock cost matrix of the tensor one
// layer shares with its in-segment successor, indexed by
// (producerChoice * kb + consumerChoice).
type pairMatrix struct {
	kb      int
	entries []pairEntry
}

// matrixFor returns (allocating if needed) the pair matrix of layer a and
// its in-segment successor b. Callers on concurrent paths must have
// precomputed the matrix first; lazy allocation is for the serial
// single-assignment algorithms.
func (r *run) matrixFor(a, b int) *pairMatrix {
	m := r.pairMats[a]
	if m == nil {
		ka, kb := len(r.candidates[a]), len(r.candidates[b])
		m = &pairMatrix{kb: kb, entries: make([]pairEntry, num.MulInt(ka, kb))}
		r.pairMats[a] = m
	}
	return m
}

// pairCosts returns the AuthBlock costs and assignment of the shared tensor
// between in-segment layers a -> b under choices (ca, cb). During annealing
// every entry is precomputed, so the lookup is two array reads with no
// locking; the compute path only runs on serial callers.
func (r *run) pairCosts(a, b, ca, cb int) (authblock.Costs, authblock.Assignment) {
	m := r.matrixFor(a, b)
	e := &m.entries[ca*m.kb+cb]
	if !e.ok {
		costs, assign, err := r.computePair(a, b, ca, cb)
		if err != nil {
			// Cancelled mid-search: hand back the partial value WITHOUT
			// memoising it. The scheduler's per-layer boundary checks see
			// ctx.Err() and discard the whole run before the value can
			// reach a caller.
			return costs, assign
		}
		e.costs, e.assign = costs, assign
		e.ok = true
	}
	return e.costs, e.assign
}

// computePair evaluates the AuthBlock regime of the tensor between layers
// a -> b under explicit candidate choices, honouring the run's context.
func (r *run) computePair(a, b, ca, cb int) (authblock.Costs, authblock.Assignment, error) {
	la, lb := &r.net.Layers[a], &r.net.Layers[b]
	p := producerGrid(la, r.candidates[a][ca].Mapping)
	c := consumerGrid(lb, r.candidates[b][cb].Mapping)
	switch {
	case r.alg == CryptTileSingle:
		costs, _ := authblock.TileAsAuthBlockCached(p, c, r.s.Params)
		assign := authblock.Assignment{
			Orientation: authblock.AlongQ,
			U:           num.MulInt(num.MulInt(p.TileC, p.TileH), p.TileW),
		}
		return costs, assign, nil
	case r.useReference:
		res := authblock.OptimalReference(p, c, r.s.Params)
		return res.Costs, res.Assignment, nil
	default:
		res, err := authblock.OptimalStoredCtx(r.ctx, r.s.Store, p, c, r.s.Params)
		return res.Costs, res.Assignment, err
	}
}

// precomputePairMatrices fills the dense pair-cost matrices of every
// adjacent layer pair in the given segments, fanning the independent
// optimal-assignment searches across a bounded worker pool. Each job writes
// one distinct matrix slot, so no synchronisation beyond the final barrier
// is needed, and the result is identical at any parallelism: every entry is
// a pure function of its (producer, consumer, choices) tuple.
//
// The run's context is polled between jobs (each job is one whole optimal
// search — the natural batch boundary); on cancellation the workers stop
// claiming jobs, the partial matrices are left unmemoised past the filled
// entries, and r.ctx.Err() is returned. Worker bodies are guarded, so an
// invariant panic in the AuthBlock cost model fails the run, not the
// process.
func (r *run) precomputePairMatrices(segs [][]int, workers int) error {
	type pairJob struct{ a, b, ca, cb int }
	var jobs []pairJob
	for _, seg := range segs {
		for i := 0; i+1 < len(seg); i++ {
			a, b := seg[i], seg[i+1]
			m := r.matrixFor(a, b)
			for ca := range r.candidates[a] {
				for cb := range r.candidates[b] {
					if !m.entries[ca*m.kb+cb].ok {
						jobs = append(jobs, pairJob{a: a, b: b, ca: ca, cb: cb})
					}
				}
			}
		}
	}
	if len(jobs) == 0 {
		return r.ctx.Err()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	errs := make([]error, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = obs.Guard(func() error {
				for r.ctx.Err() == nil {
					i := int(next.Add(1)) - 1
					if i >= len(jobs) {
						return nil
					}
					j := jobs[i]
					m := r.pairMats[j.a]
					e := &m.entries[j.ca*m.kb+j.cb]
					costs, assign, err := r.computePair(j.a, j.b, j.ca, j.cb)
					if err != nil {
						return err
					}
					e.costs, e.assign = costs, assign
					e.ok = true
				}
				return nil
			})
		}(w)
	}
	wg.Wait()
	if err := r.ctx.Err(); err != nil {
		// Cancellation also surfaces through worker errors (the searches
		// return ctx.Err()); report it once, as the cause.
		return err
	}
	for _, werr := range errs {
		if werr != nil {
			return werr
		}
	}
	return nil
}
