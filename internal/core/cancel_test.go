package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"secureloop/internal/obs"
	"secureloop/internal/workload"
)

// hookObserver counts LayerScheduled events and exposes cancellation hooks;
// every method may be called from concurrent workers.
type hookObserver struct {
	obs.Nop
	layers       atomic.Int64
	onStageStart func(obs.StageEvent)
	onLayer      func(obs.LayerEvent)
	onAnneal     func(obs.AnnealEvent)
}

func (h *hookObserver) StageStart(e obs.StageEvent) {
	if h.onStageStart != nil {
		h.onStageStart(e)
	}
}

func (h *hookObserver) LayerScheduled(e obs.LayerEvent) {
	h.layers.Add(1)
	if h.onLayer != nil {
		h.onLayer(e)
	}
}

func (h *hookObserver) AnnealProgress(e obs.AnnealEvent) {
	if h.onAnneal != nil {
		h.onAnneal(e)
	}
}

func TestScheduleNetworkCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := testScheduler()
	ob := &hookObserver{}
	s.Observe = ob
	res, err := s.ScheduleNetworkCtx(ctx, workload.AlexNet(), CryptOptCross)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), string(obs.StageMapping)) {
		t.Errorf("error does not name the first stage: %v", err)
	}
	if res != nil {
		t.Error("pre-cancelled run returned a result")
	}
	if n := ob.layers.Load(); n != 0 {
		t.Errorf("pre-cancelled run scheduled %d layers", n)
	}
}

func TestScheduleNetworkCancelMidMapping(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := testScheduler()
	ob := &hookObserver{}
	// Cancel as the mapping stage opens, before any worker launches: the
	// fan-out loop must not start a single layer.
	ob.onStageStart = func(e obs.StageEvent) {
		if e.Stage == obs.StageMapping {
			cancel()
		}
	}
	s.Observe = ob
	res, err := s.ScheduleNetworkCtx(ctx, workload.MobileNetV2(), CryptOptCross)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), string(obs.StageMapping)) {
		t.Errorf("error does not name the mapping stage: %v", err)
	}
	if res != nil {
		t.Error("cancelled run returned a result")
	}
	if n := ob.layers.Load(); n != 0 {
		t.Errorf("%d layers scheduled after cancellation at stage start", n)
	}
}

func TestScheduleNetworkCancelMidAnneal(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := testScheduler()
	ob := &hookObserver{}
	ob.onAnneal = func(obs.AnnealEvent) { cancel() }
	s.Observe = ob
	res, err := s.ScheduleNetworkCtx(ctx, workload.MobileNetV2(), CryptOptCross)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), string(obs.StageAnneal)) {
		t.Errorf("error does not name the annealing stage: %v", err)
	}
	if res != nil {
		t.Error("cancelled run returned a result")
	}
}

func TestScheduleNetworkCancelNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		s := testScheduler()
		ob := &hookObserver{}
		// Cancel after the first layer completes: workers are in flight, and
		// every one of them must drain.
		ob.onLayer = func(obs.LayerEvent) { cancel() }
		s.Observe = ob
		if _, err := s.ScheduleNetworkCtx(ctx, workload.AlexNet(), CryptOptCross); !errors.Is(err, context.Canceled) {
			t.Fatalf("run %d: err = %v, want context.Canceled", i, err)
		}
		cancel()
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestScheduleNetworkObserverPanicBecomesError(t *testing.T) {
	s := testScheduler()
	ob := &hookObserver{}
	ob.onLayer = func(obs.LayerEvent) { panic("observer exploded") }
	s.Observe = ob
	res, err := s.ScheduleNetworkCtx(context.Background(), workload.AlexNet(), CryptOptCross)
	if err == nil {
		t.Fatal("observer panic did not surface as an error")
	}
	if !strings.Contains(err.Error(), "panic: observer exploded") {
		t.Errorf("error does not carry the panic message: %v", err)
	}
	if res != nil {
		t.Error("panicked run returned a result")
	}
}
