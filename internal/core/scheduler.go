package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"secureloop/internal/anneal"
	"secureloop/internal/authblock"
	"secureloop/internal/mapper"
	"secureloop/internal/model"
	"secureloop/internal/num"
	"secureloop/internal/obs"
	"secureloop/internal/store"
	"secureloop/internal/workload"
)

// ScheduleNetwork runs the selected algorithm over the network and returns
// per-layer schedules and totals. It is ScheduleNetworkCtx with a
// background context; results are byte-identical.
func (s *Scheduler) ScheduleNetwork(net *workload.Network, alg Algorithm) (*NetworkResult, error) {
	return s.ScheduleNetworkCtx(context.Background(), net, alg)
}

// ScheduleNetworkCtx runs the selected algorithm over the network,
// honouring the context: every stage polls it at work-item boundaries (per
// layer, per pair-matrix batch, per anneal move chunk), worker pools stop
// launching on cancellation and drain their in-flight items, and the
// returned error wraps ctx.Err() with the stage reached. No partial result
// escapes a cancelled run, no goroutine outlives the call, and a panic
// anywhere on the search path (the num.MulInt overflow guards, the
// AuthBlock coverage invariants) is recovered at this boundary and surfaced
// as an error.
func (s *Scheduler) ScheduleNetworkCtx(ctx context.Context, net *workload.Network, alg Algorithm) (res *NetworkResult, err error) {
	defer obs.CapturePanic(&err)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	for i := range net.Layers {
		// The loopnest model is batch-1 (all the paper's workloads are
		// inference at N=1); reject larger batches rather than silently
		// under-counting their traffic.
		if net.Layers[i].N != 1 {
			return nil, fmt.Errorf("core: layer %s has batch size %d; only N=1 is modeled",
				net.Layers[i].Name, net.Layers[i].N)
		}
	}
	if cerr := ctx.Err(); cerr != nil {
		// Pre-cancelled: schedule nothing at all.
		return nil, fmt.Errorf("core: %s: %w", obs.StageMapping, cerr)
	}

	// Network-level persistent tier: a whole prior run of this exact request
	// (any process, any machine) answers in one lookup. A record that fails
	// to decode is a miss, never an error. Stage events are not replayed for
	// a stored hit — there are no stages to observe.
	var netKey store.Key
	if s.Store != nil {
		netKey = s.persistNetworkKey(net, alg)
		if raw, ok := s.Store.Get(netKey); ok {
			if hit, derr := decodeNetworkResult(raw, net, alg); derr == nil {
				return hit, nil
			}
		}
	}

	run := newRun(s, net, alg)
	run.ctx = ctx
	run.ob = obs.OrNop(s.Observe)
	ob := run.ob

	// Step 1: crypto-aware loopnest scheduling (top-k per layer). Layers are
	// independent here, so the searches fan out across a bounded worker
	// pool; the mapper cache coalesces concurrent identical shapes onto a
	// single search, so repeated layers cost one search regardless of the
	// schedule the pool happens to pick.
	effBW := float64(s.Spec.DRAM.BytesPerCycle)
	if alg != Unsecure {
		effBW = s.Crypto.EffectiveBytesPerCycle(s.Spec.DRAM.BytesPerCycle)
	}
	topK := s.TopK
	if alg != CryptOptCross {
		topK = 1
	}
	workers := s.MaxParallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ob.StageStart(obs.StageEvent{Stage: obs.StageMapping, Units: net.NumLayers()})
	if err := run.scheduleLayers(workers, effBW, topK); err != nil {
		return nil, fmt.Errorf("core: %s: %w", obs.StageMapping, err)
	}
	ob.StageEnd(obs.StageEvent{Stage: obs.StageMapping, Units: net.NumLayers()})

	// Choice vector: index into each layer's candidate list.
	choices := make([]int, net.NumLayers())

	// Steps 2+3: batched AuthBlock assignment and cross-layer fine tuning.
	// The configured iteration count is a *global* budget (the paper's
	// default is 1000 for the whole network); it is divided across the
	// multi-layer segments in proportion to their size, with a floor so
	// small segments still explore.
	if alg == CryptOptCross {
		var tunable int
		var segs [][]int
		for _, seg := range net.Segments {
			if len(seg) >= 2 {
				tunable += len(seg)
				segs = append(segs, seg)
			}
		}
		if len(segs) > 0 {
			// Step 2, batched: every annealing move only ever consults the
			// k x k AuthBlock pair-cost matrices of adjacent layers, so all
			// matrices are computed up front, fanned out across the worker
			// pool (entries are independent searches on disjoint slots).
			ob.StageStart(obs.StageEvent{Stage: obs.StageAuthBlock, Units: len(segs)})
			if err := run.precomputePairMatrices(segs, workers); err != nil {
				return nil, fmt.Errorf("core: %s: %w", obs.StageAuthBlock, err)
			}
			// Dense per-layer evaluation memos make a move pure array
			// arithmetic; allocated before annealing so concurrent segments
			// only touch disjoint, pre-sized slices.
			run.prepareLayerMemos(segs)
			ob.StageEnd(obs.StageEvent{Stage: obs.StageAuthBlock, Units: len(segs)})

			// Step 3: independent segments anneal concurrently — their layer
			// sets are disjoint, each problem carries its own scratch, and
			// per-segment results land in disjoint slots of the choice
			// vector, so the outcome is identical at any parallelism.
			ob.StageStart(obs.StageEvent{Stage: obs.StageAnneal, Units: len(segs)})
			if err := run.annealSegments(segs, tunable, workers, choices); err != nil {
				return nil, fmt.Errorf("core: %s: %w", obs.StageAnneal, err)
			}
			ob.StageEnd(obs.StageEvent{Stage: obs.StageAnneal, Units: len(segs)})
		}
	}

	// Assemble results. The per-layer boundary check (plus the final one)
	// guarantees a lazily computed pair cost interrupted by cancellation can
	// never flow into a returned result.
	out := &NetworkResult{Network: net, Algorithm: alg}
	for i := range net.Layers {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("core: %s: %w", obs.StageAssemble, cerr)
		}
		lr := run.layerResult(i, choices)
		out.Layers = append(out.Layers, lr)
		out.Total.Add(lr.Stats)
		out.Traffic.Add(lr.Overhead)
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("core: %s: %w", obs.StageAssemble, cerr)
	}
	if s.Store != nil {
		// Write-behind: only a fully assembled, uncancelled result is
		// persisted, so the store can never serve a partial schedule.
		s.Store.Put(store.KindNetwork, netKey, encodeNetworkResult(out))
	}
	return out, nil
}

// scheduleLayers is step 1: the per-layer loopnest searches, fanned out
// across the worker pool. Cancellation stops further launches; in-flight
// searches stop at their own tiling-batch boundaries. Each worker body is
// guarded, so one malformed layer fails the run without killing the
// process.
func (r *run) scheduleLayers(workers int, effBW float64, topK int) error {
	s, net := r.s, r.net
	n := net.NumLayers()
	errs := make([]error, n)
	var done atomic.Int64
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range net.Layers {
		if r.ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = obs.Guard(func() error {
				cands, err := mapper.SearchCachedCtx(r.ctx, mapper.Request{
					Layer: &net.Layers[i],
					PEsX:  s.Spec.PEsX, PEsY: s.Spec.PEsY,
					GLBBits: s.Spec.GlobalBufferBits(), RFBits: s.Spec.RegFileBits(),
					EffectiveBytesPerCycle: effBW,
					TopK:                   topK,
					Opt:                    s.Mapper,
					Observe:                s.Observe,
					Store:                  s.Store,
				})
				if err != nil {
					return err
				}
				r.candidates[i] = cands
				r.ob.LayerScheduled(obs.LayerEvent{
					Stage: obs.StageMapping,
					Index: i, Name: net.Layers[i].Name,
					Done: int(done.Add(1)), Total: n,
				})
				return nil
			})
		}(i)
	}
	wg.Wait()
	for _, werr := range errs {
		if werr != nil {
			return werr
		}
	}
	if err := r.ctx.Err(); err != nil {
		return err
	}
	for i := range net.Layers {
		if len(r.candidates[i]) == 0 {
			return fmt.Errorf("no valid mapping for layer %s", net.Layers[i].Name)
		}
	}
	return nil
}

// annealSegments is step 3: concurrent per-segment annealing. Each segment
// observes the shared context through anneal.MinimizeCtx's move-chunk
// polling; a cancelled segment's partial best is discarded.
func (r *run) annealSegments(segs [][]int, tunable, workers int, choices []int) error {
	errs := make([]error, len(segs))
	var awg sync.WaitGroup
	asem := make(chan struct{}, workers)
	for si, seg := range segs {
		if r.ctx.Err() != nil {
			break
		}
		opts := r.s.Anneal
		opts.Iterations = int(num.MulInt64(int64(r.s.Anneal.Iterations), int64(len(seg))) / int64(tunable))
		if opts.Iterations < 30 {
			opts.Iterations = 30
		}
		opts.Observer = r.ob
		opts.Tag = seg[0]
		awg.Add(1)
		asem <- struct{}{}
		go func(si int, seg []int, opts anneal.Options) {
			defer awg.Done()
			defer func() { <-asem }()
			errs[si] = obs.Guard(func() error {
				res, err := anneal.MinimizeCtx(r.ctx, &segmentProblem{run: r, segment: seg}, opts)
				if err != nil {
					return err
				}
				for j, li := range seg {
					choices[li] = res.Choices[j]
				}
				return nil
			})
		}(si, seg, opts)
	}
	awg.Wait()
	for _, werr := range errs {
		if werr != nil {
			return werr
		}
	}
	return r.ctx.Err()
}

// run carries the per-invocation state: candidates, the dense AuthBlock
// pair-cost matrices and the dense per-layer evaluation memos.
type run struct {
	s          *Scheduler
	net        *workload.Network
	alg        Algorithm
	candidates [][]mapper.Candidate

	// ctx is the run's cancellation context and ob its progress observer;
	// newRun defaults them (background, no-op) so internal callers that
	// build a run directly need no ceremony, and ScheduleNetworkCtx
	// overrides both.
	ctx context.Context
	ob  obs.Observer

	// prevOf, nextOf are each layer's in-segment neighbours (-1 at segment
	// boundaries), precomputed so the hot path never rescans the segment
	// table.
	prevOf, nextOf []int

	// pairMats[a] is the dense (producer choice x consumer choice) matrix
	// of AuthBlock costs and assignments for the tensor layer a shares with
	// its in-segment successor; nil until first needed. Cross-layer runs
	// precompute every entry before annealing, making lookups lock-free;
	// other algorithms fill entries lazily on the serial path.
	pairMats []*pairMatrix

	// layerMemos[li] is the dense memo of layer li's scheduled cost indexed
	// by (choice, prevChoice, nextChoice); an empty entries slice means
	// unmemoised.
	layerMemos []layerMemo

	// layerEvals counts non-memoised layer evaluations (observability for
	// the annealing benchmarks); atomic because segments anneal in parallel.
	layerEvals atomic.Int64
	// memoOff disables the layer memo (benchmarks of the unmemoised path).
	memoOff bool
	// useReference routes pair evaluations through the retained
	// pre-batching authblock search (cold-cache benchmark baseline).
	useReference bool
}

// newRun precomputes the neighbour tables and allocates the per-layer state.
func newRun(s *Scheduler, net *workload.Network, alg Algorithm) *run {
	n := net.NumLayers()
	r := &run{
		s:          s,
		net:        net,
		alg:        alg,
		ctx:        context.Background(),
		ob:         obs.Nop{},
		candidates: make([][]mapper.Candidate, n),
		prevOf:     make([]int, n),
		nextOf:     make([]int, n),
		pairMats:   make([]*pairMatrix, n),
		layerMemos: make([]layerMemo, n),
	}
	for i := 0; i < n; i++ {
		r.prevOf[i], r.nextOf[i] = -1, -1
	}
	for _, seg := range net.Segments {
		for pos, li := range seg {
			if pos > 0 {
				r.prevOf[li] = seg[pos-1]
			}
			if pos+1 < len(seg) {
				r.nextOf[li] = seg[pos+1]
			}
		}
	}
	return r
}

// layerMemo is the dense per-layer evaluation memo. The full dependency set
// of one layer's scheduled cost is (choice, prevChoice, nextChoice) — a
// single-layer annealing move invalidates nothing and misses at most three
// slots — and the dense indexing replaces the former map[layerKey] with
// pure array arithmetic.
type layerMemo struct {
	// entries is the (choice, prevChoice+1, nextChoice+1) row-major memo;
	// cycles < 0 marks an empty slot.
	entries []layerCost
	// kp1, kn1 are the neighbour index strides (neighbour candidate count
	// plus one for the -1 boundary sentinel).
	kp1, kn1 int
}

// layerCost is the memoised evaluation result.
type layerCost struct {
	cycles   int64
	energyPJ float64
}

// prepareLayerMemos sizes the dense memos for every layer of the given
// segments (no-op when memoisation is disabled).
func (r *run) prepareLayerMemos(segs [][]int) {
	if r.memoOff {
		return
	}
	for _, seg := range segs {
		for _, li := range seg {
			ki := len(r.candidates[li])
			kp1, kn1 := 1, 1
			if p := r.prevOf[li]; p >= 0 {
				kp1 = len(r.candidates[p]) + 1
			}
			if n := r.nextOf[li]; n >= 0 {
				kn1 = len(r.candidates[n]) + 1
			}
			entries := make([]layerCost, num.MulInt(num.MulInt(ki, kp1), kn1))
			for i := range entries {
				entries[i].cycles = -1
			}
			r.layerMemos[li] = layerMemo{entries: entries, kp1: kp1, kn1: kn1}
		}
	}
}

// neighbors returns the segment neighbours of layer index li: the in-segment
// predecessor and successor, or -1.
func (r *run) neighbors(li int) (prev, next int) {
	return r.prevOf[li], r.nextOf[li]
}

// choicesAt resolves the choice vector into the explicit (choice,
// prevChoice, nextChoice) dependency triple of layer li.
func (r *run) choicesAt(li int, choices []int) (ci, cp, cn int) {
	prev, next := r.neighbors(li)
	ci, cp, cn = choices[li], -1, -1
	if prev >= 0 {
		cp = choices[prev]
	}
	if next >= 0 {
		cn = choices[next]
	}
	return ci, cp, cn
}

// layerOverheadAt assembles the authentication overhead charged to layer li
// with schedule choice ci, given in-segment neighbour choices cp and cn
// (-1 when the layer starts/ends its segment).
func (r *run) layerOverheadAt(li, ci, cp, cn int) (model.Overhead, authblock.Assignment) {
	var ov model.Overhead
	var ofmapAssign authblock.Assignment
	if r.alg == Unsecure {
		return ov, ofmapAssign
	}
	l := &r.net.Layers[li]
	m := r.candidates[li][ci].Mapping
	par := r.s.Params

	// Weights: tile-as-an-AuthBlock is optimal (no overlap, no consumer).
	wt := m.WeightDRAMTiling(l)
	wc := authblock.WeightCosts(wt.NumTiles, wt.FetchesPer, par)
	ov.HashBits[workload.Weight] += wc.HashReadBits + wc.HashWriteBits

	prev, next := r.neighbors(li)

	// Ifmap side.
	if cp < 0 {
		// Segment source: blocks provisioned to match this consumer.
		sc := authblock.SourceCosts(consumerGrid(l, m), par)
		ov.HashBits[workload.Ifmap] += sc.HashReadBits
	} else {
		costs, _ := r.pairCosts(prev, li, cp, ci)
		ov.HashBits[workload.Ifmap] += costs.HashReadBits
		ov.RedundantBits[workload.Ifmap] += costs.RedundantBits
		ov.RehashBits += costs.RehashBits
	}

	// Ofmap side.
	if cn < 0 {
		sk := authblock.SinkCosts(producerGrid(l, m), par)
		ov.HashBits[workload.Ofmap] += sk.HashWriteBits
	} else {
		costs, assign := r.pairCosts(li, next, ci, cn)
		ov.HashBits[workload.Ofmap] += costs.HashWriteBits
		ofmapAssign = assign
	}
	return ov, ofmapAssign
}

// layerResultAt evaluates layer li under explicit choices.
func (r *run) layerResultAt(li, ci, cp, cn int) LayerResult {
	l := &r.net.Layers[li]
	m := r.candidates[li][ci].Mapping
	ov, assign := r.layerOverheadAt(li, ci, cp, cn)
	var stats model.Stats
	if r.alg == Unsecure {
		stats = model.Evaluate(l, &r.s.Spec, m)
	} else {
		stats = model.EvaluateSecure(l, &r.s.Spec, m, r.s.Crypto, ov)
	}
	return LayerResult{
		Index:           li,
		Choice:          ci,
		Mapping:         m,
		Stats:           stats,
		Overhead:        ov,
		OfmapAssignment: assign,
	}
}

// layerResult evaluates layer li under the choice vector.
func (r *run) layerResult(li int, choices []int) LayerResult {
	ci, cp, cn := r.choicesAt(li, choices)
	return r.layerResultAt(li, ci, cp, cn)
}

// layerEval returns the scheduled cycles and energy of layer li under
// explicit choices, memoised densely on the layer's full dependency set. A
// hit is two array reads; concurrent segments only touch disjoint layers,
// so the memo needs no locks.
func (r *run) layerEval(li, ci, cp, cn int) layerCost {
	m := &r.layerMemos[li]
	if m.entries == nil {
		r.layerEvals.Add(1)
		lr := r.layerResultAt(li, ci, cp, cn)
		return layerCost{cycles: lr.Stats.Cycles, energyPJ: lr.Stats.EnergyPJ}
	}
	idx := num.MulInt(num.MulInt(ci, m.kp1)+cp+1, m.kn1) + cn + 1
	if v := m.entries[idx]; v.cycles >= 0 {
		return v
	}
	r.layerEvals.Add(1)
	lr := r.layerResultAt(li, ci, cp, cn)
	v := layerCost{cycles: lr.Stats.Cycles, energyPJ: lr.Stats.EnergyPJ}
	m.entries[idx] = v
	return v
}

// segmentProblem adapts one segment to the annealing interface. The cost is
// the total latency of the segment's layers (cycles), including
// authentication overhead, under the tentative choices. Each instance is
// self-contained, so independent segments can anneal concurrently.
type segmentProblem struct {
	run     *run
	segment []int
}

func (p *segmentProblem) NumLayers() int { return len(p.segment) }

func (p *segmentProblem) NumChoices(i int) int {
	return len(p.run.candidates[p.segment[i]])
}

func (p *segmentProblem) Cost(choices []int) float64 {
	return p.costWith(choices, -1, 0)
}

// DeltaCost implements anneal.Incremental: the cost of `choices` with
// component i moved to next. A single-layer move perturbs only that layer
// and its two in-segment neighbours, so at most three layers need a fresh
// evaluation — everything else is a dense-memo hit, and the steady-state
// move allocates nothing.
func (p *segmentProblem) DeltaCost(choices []int, i, next int) float64 {
	return p.costWith(choices, i, next)
}

// costWith evaluates the segment cost of `choices` with component i
// overridden to next (i < 0 means no override). Per-layer values come from
// the run's dense layer memo and are summed in segment order, so the result
// is bitwise identical however the same state is reached.
func (p *segmentProblem) costWith(choices []int, i, next int) float64 {
	seg := p.segment
	var cycles int64
	var energy float64
	for j, li := range seg {
		ci := choices[j]
		if j == i {
			ci = next
		}
		cp, cn := -1, -1
		if j > 0 {
			if cp = choices[j-1]; j-1 == i {
				cp = next
			}
		}
		if j+1 < len(seg) {
			if cn = choices[j+1]; j+1 == i {
				cn = next
			}
		}
		c := p.run.layerEval(li, ci, cp, cn)
		cycles += c.cycles
		energy += c.energyPJ
	}
	if p.run.s.Objective == MinEDP {
		return energy * float64(cycles)
	}
	return float64(cycles)
}
