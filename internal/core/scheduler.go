package core

import (
	"fmt"

	"secureloop/internal/anneal"
	"secureloop/internal/authblock"
	"secureloop/internal/mapper"
	"secureloop/internal/model"
	"secureloop/internal/workload"
)

// ScheduleNetwork runs the selected algorithm over the network and returns
// per-layer schedules and totals.
func (s *Scheduler) ScheduleNetwork(net *workload.Network, alg Algorithm) (*NetworkResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	for i := range net.Layers {
		// The loopnest model is batch-1 (all the paper's workloads are
		// inference at N=1); reject larger batches rather than silently
		// under-counting their traffic.
		if net.Layers[i].N != 1 {
			return nil, fmt.Errorf("core: layer %s has batch size %d; only N=1 is modeled",
				net.Layers[i].Name, net.Layers[i].N)
		}
	}

	run := &run{
		s:         s,
		net:       net,
		alg:       alg,
		pairCache: map[pairKey]authblock.Costs{},
	}

	// Step 1: crypto-aware loopnest scheduling (top-k per layer).
	effBW := float64(s.Spec.DRAM.BytesPerCycle)
	if alg != Unsecure {
		effBW = s.Crypto.EffectiveBytesPerCycle(s.Spec.DRAM.BytesPerCycle)
	}
	run.candidates = make([][]mapper.Candidate, net.NumLayers())
	for i := range net.Layers {
		topK := s.TopK
		if alg != CryptOptCross {
			topK = 1
		}
		run.candidates[i] = mapper.SearchCached(mapper.Request{
			Layer: &net.Layers[i],
			PEsX:  s.Spec.PEsX, PEsY: s.Spec.PEsY,
			GLBBits: s.Spec.GlobalBufferBits(), RFBits: s.Spec.RegFileBits(),
			EffectiveBytesPerCycle: effBW,
			TopK:                   topK,
		})
		if len(run.candidates[i]) == 0 {
			return nil, fmt.Errorf("core: no valid mapping for layer %s", net.Layers[i].Name)
		}
	}

	// Choice vector: index into each layer's candidate list.
	choices := make([]int, net.NumLayers())

	// Step 3: cross-layer fine tuning within each multi-layer segment. The
	// configured iteration count is a *global* budget (the paper's default
	// is 1000 for the whole network); it is divided across the multi-layer
	// segments in proportion to their size, with a floor so small segments
	// still explore.
	if alg == CryptOptCross {
		var tunable int
		for _, seg := range net.Segments {
			if len(seg) >= 2 {
				tunable += len(seg)
			}
		}
		for _, seg := range net.Segments {
			if len(seg) < 2 {
				continue
			}
			opts := s.Anneal
			opts.Iterations = s.Anneal.Iterations * len(seg) / tunable
			if opts.Iterations < 30 {
				opts.Iterations = 30
			}
			prob := &segmentProblem{run: run, segment: seg, choices: choices}
			res := anneal.Minimize(prob, opts)
			for j, li := range seg {
				choices[li] = res.Choices[j]
			}
		}
	}

	// Assemble results.
	out := &NetworkResult{Network: net, Algorithm: alg}
	for i := range net.Layers {
		lr := run.layerResult(i, choices)
		out.Layers = append(out.Layers, lr)
		out.Total.Add(lr.Stats)
		out.Traffic.Add(lr.Overhead)
	}
	return out, nil
}

// run carries the per-invocation state: candidates and the pair-cost cache.
type run struct {
	s          *Scheduler
	net        *workload.Network
	alg        Algorithm
	candidates [][]mapper.Candidate

	pairCache map[pairKey]authblock.Costs
	// pairAssign remembers the optimal assignment per pair for reporting.
	pairAssign map[pairKey]authblock.Assignment
}

type pairKey struct {
	producer, consumer             int
	producerChoice, consumerChoice int
}

// pairCosts evaluates (with memoisation) the AuthBlock costs of the shared
// tensor between in-segment layers a -> b under the current algorithm.
func (r *run) pairCosts(a, b, ca, cb int) (authblock.Costs, authblock.Assignment) {
	key := pairKey{producer: a, consumer: b, producerChoice: ca, consumerChoice: cb}
	if c, ok := r.pairCache[key]; ok {
		return c, r.assignFor(key)
	}
	la, lb := &r.net.Layers[a], &r.net.Layers[b]
	p := producerGrid(la, r.candidates[a][ca].Mapping)
	c := consumerGrid(lb, r.candidates[b][cb].Mapping)

	var costs authblock.Costs
	var assign authblock.Assignment
	if r.alg == CryptTileSingle {
		costs, _ = authblock.TileAsAuthBlockCached(p, c, r.s.Params)
		assign = authblock.Assignment{Orientation: authblock.AlongQ, U: p.TileC * p.TileH * p.TileW}
	} else {
		res := authblock.OptimalCached(p, c, r.s.Params)
		costs, assign = res.Costs, res.Assignment
	}
	r.pairCache[key] = costs
	if r.pairAssign == nil {
		r.pairAssign = map[pairKey]authblock.Assignment{}
	}
	r.pairAssign[key] = assign
	return costs, assign
}

func (r *run) assignFor(key pairKey) authblock.Assignment {
	if r.pairAssign == nil {
		return authblock.Assignment{}
	}
	return r.pairAssign[key]
}

// neighbors returns the segment neighbours of layer index li: the in-segment
// predecessor and successor, or -1.
func (r *run) neighbors(li int) (prev, next int) {
	prev, next = -1, -1
	seg, pos := r.net.SegmentOf(li)
	if seg < 0 {
		return prev, next
	}
	layers := r.net.Segments[seg]
	if pos > 0 {
		prev = layers[pos-1]
	}
	if pos+1 < len(layers) {
		next = layers[pos+1]
	}
	return prev, next
}

// layerOverhead assembles the authentication overhead charged to layer li
// under the current choice vector.
func (r *run) layerOverhead(li int, choices []int) (model.Overhead, authblock.Assignment) {
	var ov model.Overhead
	var ofmapAssign authblock.Assignment
	if r.alg == Unsecure {
		return ov, ofmapAssign
	}
	l := &r.net.Layers[li]
	m := r.candidates[li][choices[li]].Mapping
	par := r.s.Params

	// Weights: tile-as-an-AuthBlock is optimal (no overlap, no consumer).
	wt := m.WeightDRAMTiling(l)
	wc := authblock.WeightCosts(wt.NumTiles, wt.FetchesPer, par)
	ov.HashBits[workload.Weight] += wc.HashReadBits + wc.HashWriteBits

	prev, next := r.neighbors(li)

	// Ifmap side.
	if prev < 0 {
		// Segment source: blocks provisioned to match this consumer.
		sc := authblock.SourceCosts(consumerGrid(l, m), par)
		ov.HashBits[workload.Ifmap] += sc.HashReadBits
	} else {
		costs, _ := r.pairCosts(prev, li, choices[prev], choices[li])
		ov.HashBits[workload.Ifmap] += costs.HashReadBits
		ov.RedundantBits[workload.Ifmap] += costs.RedundantBits
		ov.RehashBits += costs.RehashBits
	}

	// Ofmap side.
	if next < 0 {
		sk := authblock.SinkCosts(producerGrid(l, m), par)
		ov.HashBits[workload.Ofmap] += sk.HashWriteBits
	} else {
		costs, assign := r.pairCosts(li, next, choices[li], choices[next])
		ov.HashBits[workload.Ofmap] += costs.HashWriteBits
		ofmapAssign = assign
	}
	return ov, ofmapAssign
}

// layerResult evaluates layer li under the choice vector.
func (r *run) layerResult(li int, choices []int) LayerResult {
	l := &r.net.Layers[li]
	m := r.candidates[li][choices[li]].Mapping
	ov, assign := r.layerOverhead(li, choices)
	var stats model.Stats
	if r.alg == Unsecure {
		stats = model.Evaluate(l, &r.s.Spec, m)
	} else {
		stats = model.EvaluateSecure(l, &r.s.Spec, m, r.s.Crypto, ov)
	}
	return LayerResult{
		Index:           li,
		Mapping:         m,
		Stats:           stats,
		Overhead:        ov,
		OfmapAssignment: assign,
	}
}

// segmentProblem adapts one segment to the annealing interface. The cost is
// the total latency of the segment's layers (cycles), including
// authentication overhead, under the tentative choices.
type segmentProblem struct {
	run     *run
	segment []int
	choices []int // full-network choice vector (shared scratch)
}

func (p *segmentProblem) NumLayers() int { return len(p.segment) }

func (p *segmentProblem) NumChoices(i int) int {
	return len(p.run.candidates[p.segment[i]])
}

func (p *segmentProblem) Cost(choices []int) float64 {
	for j, li := range p.segment {
		p.choices[li] = choices[j]
	}
	var cycles int64
	var energy float64
	for _, li := range p.segment {
		lr := p.run.layerResult(li, p.choices)
		cycles += lr.Stats.Cycles
		energy += lr.Stats.EnergyPJ
	}
	if p.run.s.Objective == MinEDP {
		return energy * float64(cycles)
	}
	return float64(cycles)
}
