package core

import (
	"fmt"
	"runtime"
	"sync"

	"secureloop/internal/anneal"
	"secureloop/internal/authblock"
	"secureloop/internal/mapper"
	"secureloop/internal/model"
	"secureloop/internal/num"
	"secureloop/internal/workload"
)

// ScheduleNetwork runs the selected algorithm over the network and returns
// per-layer schedules and totals.
func (s *Scheduler) ScheduleNetwork(net *workload.Network, alg Algorithm) (*NetworkResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	for i := range net.Layers {
		// The loopnest model is batch-1 (all the paper's workloads are
		// inference at N=1); reject larger batches rather than silently
		// under-counting their traffic.
		if net.Layers[i].N != 1 {
			return nil, fmt.Errorf("core: layer %s has batch size %d; only N=1 is modeled",
				net.Layers[i].Name, net.Layers[i].N)
		}
	}

	run := &run{
		s:         s,
		net:       net,
		alg:       alg,
		pairCache: map[pairKey]authblock.Costs{},
	}

	// Step 1: crypto-aware loopnest scheduling (top-k per layer). Layers are
	// independent here, so the searches fan out across a bounded worker
	// pool; the mapper cache coalesces concurrent identical shapes onto a
	// single search, so repeated layers cost one search regardless of the
	// schedule the pool happens to pick.
	effBW := float64(s.Spec.DRAM.BytesPerCycle)
	if alg != Unsecure {
		effBW = s.Crypto.EffectiveBytesPerCycle(s.Spec.DRAM.BytesPerCycle)
	}
	topK := s.TopK
	if alg != CryptOptCross {
		topK = 1
	}
	run.candidates = make([][]mapper.Candidate, net.NumLayers())
	workers := s.MaxParallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range net.Layers {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			run.candidates[i] = mapper.SearchCached(mapper.Request{
				Layer: &net.Layers[i],
				PEsX:  s.Spec.PEsX, PEsY: s.Spec.PEsY,
				GLBBits: s.Spec.GlobalBufferBits(), RFBits: s.Spec.RegFileBits(),
				EffectiveBytesPerCycle: effBW,
				TopK:                   topK,
			})
		}(i)
	}
	wg.Wait()
	for i := range net.Layers {
		if len(run.candidates[i]) == 0 {
			return nil, fmt.Errorf("core: no valid mapping for layer %s", net.Layers[i].Name)
		}
	}

	// Choice vector: index into each layer's candidate list.
	choices := make([]int, net.NumLayers())

	// Step 3: cross-layer fine tuning within each multi-layer segment. The
	// configured iteration count is a *global* budget (the paper's default
	// is 1000 for the whole network); it is divided across the multi-layer
	// segments in proportion to their size, with a floor so small segments
	// still explore.
	if alg == CryptOptCross {
		var tunable int
		for _, seg := range net.Segments {
			if len(seg) >= 2 {
				tunable += len(seg)
			}
		}
		for _, seg := range net.Segments {
			if len(seg) < 2 {
				continue
			}
			opts := s.Anneal
			opts.Iterations = int(num.MulInt64(int64(s.Anneal.Iterations), int64(len(seg))) / int64(tunable))
			if opts.Iterations < 30 {
				opts.Iterations = 30
			}
			prob := &segmentProblem{run: run, segment: seg, choices: choices}
			res := anneal.Minimize(prob, opts)
			for j, li := range seg {
				choices[li] = res.Choices[j]
			}
		}
	}

	// Assemble results.
	out := &NetworkResult{Network: net, Algorithm: alg}
	for i := range net.Layers {
		lr := run.layerResult(i, choices)
		out.Layers = append(out.Layers, lr)
		out.Total.Add(lr.Stats)
		out.Traffic.Add(lr.Overhead)
	}
	return out, nil
}

// run carries the per-invocation state: candidates, the pair-cost cache and
// the per-layer evaluation memo.
type run struct {
	s          *Scheduler
	net        *workload.Network
	alg        Algorithm
	candidates [][]mapper.Candidate

	pairCache map[pairKey]authblock.Costs
	// pairAssign remembers the optimal assignment per pair for reporting.
	pairAssign map[pairKey]authblock.Assignment

	// layerMemo memoises full layer evaluations on (layer, choice,
	// prevChoice, nextChoice) — the complete dependency set of one layer's
	// scheduled cost. A single-layer annealing move invalidates at most
	// three keys, so segment costs become O(1) fresh evaluations per move.
	layerMemo map[layerKey]layerCost
	// layerEvals counts non-memoised layer evaluations (observability for
	// the annealing benchmarks).
	layerEvals int64
	// memoOff disables layerMemo (benchmarks of the unmemoised path only).
	memoOff bool
}

// layerKey is the full dependency set of one layer's scheduled cost: its
// own schedule choice plus the choices of its in-segment neighbours (-1
// when the layer starts/ends its segment).
type layerKey struct {
	li, ci, cp, cn int
}

// layerCost is the memoised evaluation result.
type layerCost struct {
	cycles   int64
	energyPJ float64
}

type pairKey struct {
	producer, consumer             int
	producerChoice, consumerChoice int
}

// pairCosts evaluates (with memoisation) the AuthBlock costs of the shared
// tensor between in-segment layers a -> b under the current algorithm.
func (r *run) pairCosts(a, b, ca, cb int) (authblock.Costs, authblock.Assignment) {
	key := pairKey{producer: a, consumer: b, producerChoice: ca, consumerChoice: cb}
	if c, ok := r.pairCache[key]; ok {
		return c, r.assignFor(key)
	}
	la, lb := &r.net.Layers[a], &r.net.Layers[b]
	p := producerGrid(la, r.candidates[a][ca].Mapping)
	c := consumerGrid(lb, r.candidates[b][cb].Mapping)

	var costs authblock.Costs
	var assign authblock.Assignment
	if r.alg == CryptTileSingle {
		costs, _ = authblock.TileAsAuthBlockCached(p, c, r.s.Params)
		assign = authblock.Assignment{Orientation: authblock.AlongQ, U: num.MulInt(num.MulInt(p.TileC, p.TileH), p.TileW)}
	} else {
		res := authblock.OptimalCached(p, c, r.s.Params)
		costs, assign = res.Costs, res.Assignment
	}
	r.pairCache[key] = costs
	if r.pairAssign == nil {
		r.pairAssign = map[pairKey]authblock.Assignment{}
	}
	r.pairAssign[key] = assign
	return costs, assign
}

func (r *run) assignFor(key pairKey) authblock.Assignment {
	if r.pairAssign == nil {
		return authblock.Assignment{}
	}
	return r.pairAssign[key]
}

// neighbors returns the segment neighbours of layer index li: the in-segment
// predecessor and successor, or -1.
func (r *run) neighbors(li int) (prev, next int) {
	prev, next = -1, -1
	seg, pos := r.net.SegmentOf(li)
	if seg < 0 {
		return prev, next
	}
	layers := r.net.Segments[seg]
	if pos > 0 {
		prev = layers[pos-1]
	}
	if pos+1 < len(layers) {
		next = layers[pos+1]
	}
	return prev, next
}

// choicesAt resolves the choice vector into the explicit (choice,
// prevChoice, nextChoice) dependency triple of layer li.
func (r *run) choicesAt(li int, choices []int) (ci, cp, cn int) {
	prev, next := r.neighbors(li)
	ci, cp, cn = choices[li], -1, -1
	if prev >= 0 {
		cp = choices[prev]
	}
	if next >= 0 {
		cn = choices[next]
	}
	return ci, cp, cn
}

// layerOverheadAt assembles the authentication overhead charged to layer li
// with schedule choice ci, given in-segment neighbour choices cp and cn
// (-1 when the layer starts/ends its segment).
func (r *run) layerOverheadAt(li, ci, cp, cn int) (model.Overhead, authblock.Assignment) {
	var ov model.Overhead
	var ofmapAssign authblock.Assignment
	if r.alg == Unsecure {
		return ov, ofmapAssign
	}
	l := &r.net.Layers[li]
	m := r.candidates[li][ci].Mapping
	par := r.s.Params

	// Weights: tile-as-an-AuthBlock is optimal (no overlap, no consumer).
	wt := m.WeightDRAMTiling(l)
	wc := authblock.WeightCosts(wt.NumTiles, wt.FetchesPer, par)
	ov.HashBits[workload.Weight] += wc.HashReadBits + wc.HashWriteBits

	prev, next := r.neighbors(li)

	// Ifmap side.
	if cp < 0 {
		// Segment source: blocks provisioned to match this consumer.
		sc := authblock.SourceCosts(consumerGrid(l, m), par)
		ov.HashBits[workload.Ifmap] += sc.HashReadBits
	} else {
		costs, _ := r.pairCosts(prev, li, cp, ci)
		ov.HashBits[workload.Ifmap] += costs.HashReadBits
		ov.RedundantBits[workload.Ifmap] += costs.RedundantBits
		ov.RehashBits += costs.RehashBits
	}

	// Ofmap side.
	if cn < 0 {
		sk := authblock.SinkCosts(producerGrid(l, m), par)
		ov.HashBits[workload.Ofmap] += sk.HashWriteBits
	} else {
		costs, assign := r.pairCosts(li, next, ci, cn)
		ov.HashBits[workload.Ofmap] += costs.HashWriteBits
		ofmapAssign = assign
	}
	return ov, ofmapAssign
}

// layerResultAt evaluates layer li under explicit choices.
func (r *run) layerResultAt(li, ci, cp, cn int) LayerResult {
	l := &r.net.Layers[li]
	m := r.candidates[li][ci].Mapping
	ov, assign := r.layerOverheadAt(li, ci, cp, cn)
	var stats model.Stats
	if r.alg == Unsecure {
		stats = model.Evaluate(l, &r.s.Spec, m)
	} else {
		stats = model.EvaluateSecure(l, &r.s.Spec, m, r.s.Crypto, ov)
	}
	return LayerResult{
		Index:           li,
		Mapping:         m,
		Stats:           stats,
		Overhead:        ov,
		OfmapAssignment: assign,
	}
}

// layerResult evaluates layer li under the choice vector.
func (r *run) layerResult(li int, choices []int) LayerResult {
	ci, cp, cn := r.choicesAt(li, choices)
	return r.layerResultAt(li, ci, cp, cn)
}

// layerEval returns the scheduled cycles and energy of layer li under
// explicit choices, memoised on the layer's full dependency set.
func (r *run) layerEval(li, ci, cp, cn int) layerCost {
	key := layerKey{li: li, ci: ci, cp: cp, cn: cn}
	if !r.memoOff {
		if v, ok := r.layerMemo[key]; ok {
			return v
		}
	}
	r.layerEvals++
	lr := r.layerResultAt(li, ci, cp, cn)
	v := layerCost{cycles: lr.Stats.Cycles, energyPJ: lr.Stats.EnergyPJ}
	if !r.memoOff {
		if r.layerMemo == nil {
			r.layerMemo = map[layerKey]layerCost{}
		}
		r.layerMemo[key] = v
	}
	return v
}

// segmentProblem adapts one segment to the annealing interface. The cost is
// the total latency of the segment's layers (cycles), including
// authentication overhead, under the tentative choices.
type segmentProblem struct {
	run     *run
	segment []int
	choices []int // full-network choice vector (shared scratch)
}

func (p *segmentProblem) NumLayers() int { return len(p.segment) }

func (p *segmentProblem) NumChoices(i int) int {
	return len(p.run.candidates[p.segment[i]])
}

func (p *segmentProblem) Cost(choices []int) float64 {
	for j, li := range p.segment {
		p.choices[li] = choices[j]
	}
	return p.costWith(choices, -1, 0)
}

// DeltaCost implements anneal.Incremental: the cost of `choices` with
// component i moved to next. A single-layer move perturbs only that layer
// and its two in-segment neighbours, so at most three layers need a fresh
// evaluation — everything else is a memo hit.
func (p *segmentProblem) DeltaCost(choices []int, i, next int) float64 {
	return p.costWith(choices, i, next)
}

// costWith evaluates the segment cost of `choices` with component i
// overridden to next (i < 0 means no override). Per-layer values come from
// the run's layer memo and are summed in segment order, so the result is
// bitwise identical however the same state is reached.
func (p *segmentProblem) costWith(choices []int, i, next int) float64 {
	at := func(j int) int {
		if j < 0 || j >= len(p.segment) {
			return -1
		}
		if j == i {
			return next
		}
		return choices[j]
	}
	var cycles int64
	var energy float64
	for j, li := range p.segment {
		c := p.run.layerEval(li, at(j), at(j-1), at(j+1))
		cycles += c.cycles
		energy += c.energyPJ
	}
	if p.run.s.Objective == MinEDP {
		return energy * float64(cycles)
	}
	return float64(cycles)
}
