package core

import (
	"fmt"

	"secureloop/internal/authblock"
	"secureloop/internal/mapper"
	"secureloop/internal/model"
	"secureloop/internal/store"
	"secureloop/internal/workload"
)

// The network-level persistent tier: a whole ScheduleNetworkCtx result is
// content-addressed by everything that determines it — layer shapes and
// segment structure, architecture numerics, crypto-engine numerics,
// AuthBlock params, k, the objective, the annealing trajectory knobs
// (iterations, temperatures, seed) and the mapper search options. A warm
// run over a known network is a single index lookup; the mapper and
// authblock tiers below still serve partially overlapping requests
// (different k, different segment cuts) that miss here.
//
// Deliberately excluded from the key: every Name field (results are
// shape-keyed, names are labels), MaxParallel (parallel == serial is a
// proven invariant of this codebase) and Observe/Store themselves. Each
// exclusion is waived for the keydrift check, which otherwise requires
// every request field to reach a store.Enc call:
//
// storekey:exclude workload.Network.Name results are shape-keyed; the network name is a label
// storekey:exclude workload.Layer.Name results are shape-keyed; the layer name is a label
// storekey:exclude arch.Spec.Name architecture names are labels over the encoded numerics
// storekey:exclude arch.DRAMTech.Name DRAM technology names are labels over the encoded numerics
// storekey:exclude cryptoengine.EngineArch.Name engine names are labels over the encoded unit specs
// storekey:exclude anneal.Options.Observer observability only; values flow in, never back into results
// storekey:exclude anneal.Options.Tag progress-event label, not part of the search identity
// storekey:exclude core.Scheduler.MaxParallel parallel == serial is a proven invariant; worker count cannot change results
// storekey:exclude core.Scheduler.Observe observability only; values flow in, never back into results
// storekey:exclude core.Scheduler.Store the store is the cache itself, not part of the request identity

const netPrefix = "core.network"

// persistNetworkKey canonically encodes the full request identity.
func (s *Scheduler) persistNetworkKey(net *workload.Network, alg Algorithm) store.Key {
	e := store.NewEnc().String(netPrefix)
	s.EncodeRequest(e, net, alg)
	return e.Key()
}

// EncodeRequest appends the canonical encoding of the full request identity
// — algorithm, network shape, and every scheduler knob that can change the
// result — to e. It is the single definition of "identical request" shared
// by the network-tier store key above and the service layer's
// request-identity keys (singleflight coalescing, response caching), which
// prepend their own domain prefixes. Anything encoded here must determine
// the result; anything that determines the result must be encoded here.
func (s *Scheduler) EncodeRequest(e *store.Enc, net *workload.Network, alg Algorithm) {
	e.Int(int64(alg))
	encodeNetworkShape(e, net)

	spec := s.Spec
	e.Int(int64(spec.PEsX)).Int(int64(spec.PEsY)).
		Int(int64(spec.GlobalBufferBytes)).Int(int64(spec.RegFileBytesPerPE)).
		Int(int64(spec.WordBits)).Float(spec.ClockHz).
		Int(int64(spec.DRAM.BytesPerCycle)).Float(spec.DRAM.EnergyPerBit)

	eng := s.Crypto.Engine
	e.Int(int64(eng.AES.Cycles)).Float(eng.AES.AreaKGates).Float(eng.AES.EnergyPJ).
		Int(int64(eng.GFMult.Cycles)).Float(eng.GFMult.AreaKGates).Float(eng.GFMult.EnergyPJ).
		Int(int64(s.Crypto.CountPerDatatype))

	e.Int(int64(s.Params.WordBits)).Int(int64(s.Params.HashBits)).
		Int(int64(s.TopK)).Int(int64(s.Objective))
	e.Int(int64(s.Anneal.Iterations)).Float(s.Anneal.TInit).Float(s.Anneal.TFinal).Int(s.Anneal.Seed)
	e.Int(int64(s.Mapper.Mode)).Float(s.Mapper.Epsilon).Bool(s.Mapper.DisableWarmStart)
}

// encodeNetworkShape appends the network's full shape identity: every layer
// shape in order, then the segment structure.
func encodeNetworkShape(e *store.Enc, net *workload.Network) {
	e.Int(int64(len(net.Layers)))
	for i := range net.Layers {
		mapper.EncodeLayerShape(e, net.Layers[i])
	}
	e.Int(int64(len(net.Segments)))
	for _, seg := range net.Segments {
		e.Int(int64(len(seg)))
		for _, li := range seg {
			e.Int(int64(li))
		}
	}
}

// StoredNetwork reports whether the persistent store already holds a
// network-tier record for this exact request — the record
// ScheduleNetworkCtx would replay instead of searching. A peek only (no
// value read, no hit/miss counted): false when no store is attached, and a
// true can still fall back to a full search if the record fails
// verification at replay time.
func (s *Scheduler) StoredNetwork(net *workload.Network, alg Algorithm) bool {
	if s.Store == nil {
		return false
	}
	return s.Store.Has(s.persistNetworkKey(net, alg))
}

func encStats(e *store.Enc, st model.Stats) {
	e.Int(st.Cycles).Int(st.ComputeCycles).Int(st.DRAMCycles).Int(st.CryptoCycles).
		Float(st.EnergyPJ).Float(st.DRAMEnergyPJ).Float(st.CryptoEnergyPJ).Float(st.OnChipEnergyPJ).
		Int(st.OffchipBits).Int(st.BaseOffchipBits).Float(st.Utilization)
}

func decStats(d *store.Dec) (model.Stats, error) {
	var st model.Stats
	var err error
	for _, dst := range []*int64{&st.Cycles, &st.ComputeCycles, &st.DRAMCycles, &st.CryptoCycles} {
		if *dst, err = d.Int(); err != nil {
			return st, err
		}
	}
	for _, dst := range []*float64{&st.EnergyPJ, &st.DRAMEnergyPJ, &st.CryptoEnergyPJ, &st.OnChipEnergyPJ} {
		if *dst, err = d.Float(); err != nil {
			return st, err
		}
	}
	for _, dst := range []*int64{&st.OffchipBits, &st.BaseOffchipBits} {
		if *dst, err = d.Int(); err != nil {
			return st, err
		}
	}
	if st.Utilization, err = d.Float(); err != nil {
		return st, err
	}
	return st, nil
}

func encOverhead(e *store.Enc, ov model.Overhead) {
	for i := 0; i < 3; i++ {
		e.Int(ov.RedundantBits[i])
	}
	for i := 0; i < 3; i++ {
		e.Int(ov.HashBits[i])
	}
	e.Int(ov.RehashBits)
}

func decOverhead(d *store.Dec) (model.Overhead, error) {
	var ov model.Overhead
	var err error
	for i := 0; i < 3; i++ {
		if ov.RedundantBits[i], err = d.Int(); err != nil {
			return ov, err
		}
	}
	for i := 0; i < 3; i++ {
		if ov.HashBits[i], err = d.Int(); err != nil {
			return ov, err
		}
	}
	if ov.RehashBits, err = d.Int(); err != nil {
		return ov, err
	}
	return ov, nil
}

// encodeNetworkResult serialises the full result: every layer's schedule,
// stats, overhead and ofmap assignment, then the totals.
func encodeNetworkResult(res *NetworkResult) []byte {
	e := store.NewEnc().Int(int64(len(res.Layers)))
	for i := range res.Layers {
		lr := &res.Layers[i]
		e.Int(int64(lr.Index)).Int(int64(lr.Choice))
		mapper.EncodeMapping(e, lr.Mapping)
		encStats(e, lr.Stats)
		encOverhead(e, lr.Overhead)
		e.Int(int64(lr.OfmapAssignment.Orientation)).Int(int64(lr.OfmapAssignment.U))
	}
	encStats(e, res.Total)
	e.Int(res.Traffic.HashBits).Int(res.Traffic.RedundantBits).Int(res.Traffic.RehashBits)
	return e.Encoding()
}

// decodeNetworkResult is the inverse; net and alg (the request's own
// inputs) fill the fields the encoding omits. Any structural error fails
// the decode as a whole and the caller recomputes.
func decodeNetworkResult(raw []byte, net *workload.Network, alg Algorithm) (*NetworkResult, error) {
	d, err := store.NewDec(raw)
	if err != nil {
		return nil, err
	}
	n, err := d.Int()
	if err != nil {
		return nil, err
	}
	if n != int64(net.NumLayers()) {
		return nil, fmt.Errorf("core: stored result has %d layers, want %d", n, net.NumLayers())
	}
	out := &NetworkResult{Network: net, Algorithm: alg}
	for i := int64(0); i < n; i++ {
		var lr LayerResult
		idx, err := d.Int()
		if err != nil {
			return nil, err
		}
		if idx != i {
			return nil, fmt.Errorf("core: stored layer index %d at position %d", idx, i)
		}
		lr.Index = int(idx)
		choice, err := d.Int()
		if err != nil {
			return nil, err
		}
		if choice < 0 {
			return nil, fmt.Errorf("core: stored choice %d out of range", choice)
		}
		lr.Choice = int(choice)
		if lr.Mapping, err = mapper.DecodeMapping(d); err != nil {
			return nil, err
		}
		if lr.Stats, err = decStats(d); err != nil {
			return nil, err
		}
		if lr.Overhead, err = decOverhead(d); err != nil {
			return nil, err
		}
		o, err := d.Int()
		if err != nil {
			return nil, err
		}
		if o < 0 || o >= int64(authblock.NumOrientations) {
			return nil, fmt.Errorf("core: stored orientation %d out of range", o)
		}
		lr.OfmapAssignment.Orientation = authblock.Orientation(o)
		u, err := d.Int()
		if err != nil {
			return nil, err
		}
		if u < 0 {
			return nil, fmt.Errorf("core: stored block size %d out of range", u)
		}
		lr.OfmapAssignment.U = int(u)
		out.Layers = append(out.Layers, lr)
	}
	if out.Total, err = decStats(d); err != nil {
		return nil, err
	}
	for _, dst := range []*int64{&out.Traffic.HashBits, &out.Traffic.RedundantBits, &out.Traffic.RehashBits} {
		if *dst, err = d.Int(); err != nil {
			return nil, err
		}
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return out, nil
}
