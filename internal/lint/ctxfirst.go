package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerCtxFirst enforces the context-threading convention of the search
// pipeline (DESIGN.md "Cancellation, errors and observability"): an exported
// function in one of the scheduling packages that fans out goroutines or
// loops over per-layer / per-tiling work is long-running, so it must accept
// a context.Context as its first parameter for cancellation to reach it.
// Backward-compatible wrappers that merely delegate to a Ctx variant contain
// neither goroutines nor work loops and stay legal without a context.
var AnalyzerCtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc: "exported functions in the search packages that spawn goroutines or loop " +
		"over layer/tiling work must take a context.Context as their first parameter",
	Run: runCtxFirst,
}

// ctxfirstPackages are the import-path suffixes the check applies to: the
// packages on the cancellable search path.
var ctxfirstPackages = []string{
	"internal/core",
	"internal/mapper",
	"internal/authblock",
	"internal/dse",
	"internal/anneal",
	"internal/service",
	"internal/service/client",
}

// ctxfirstWorkTypes name the element types whose iteration marks a function
// as search work. DesignPoint is deliberately absent: post-processing over
// finished design points (Pareto marking, front extraction) is cheap and
// stays context-free.
var ctxfirstWorkTypes = map[string]bool{
	"Layer":     true,
	"Spec":      true,
	"Config":    true,
	"Candidate": true,
	// Seed covers the guided search's warm-start path: each seed applied is
	// a full tiling evaluation, so a loop over seeds is search work.
	"Seed": true,
}

// ctxfirstApplies scopes the check to the search packages; the fixture
// package matches by base name.
func ctxfirstApplies(path string) bool {
	if path == "ctxfirst" || strings.HasSuffix(path, "/ctxfirst") {
		return true
	}
	for _, p := range ctxfirstPackages {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

func runCtxFirst(pass *Pass) {
	if !ctxfirstApplies(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if fd.Recv != nil && !exportedRecv(fd.Recv) {
				// Methods on unexported types are internal machinery.
				continue
			}
			switch idx := ctxParamIndex(pass, fd.Type.Params); {
			case idx == 0:
				// Convention satisfied.
			case idx > 0:
				pass.Reportf(fd.Name.Pos(),
					"exported %s takes a context.Context but not as its first parameter",
					describeFunc(fd))
			default:
				if why := ctxfirstWork(pass, fd.Body); why != "" {
					pass.Reportf(fd.Name.Pos(),
						"exported %s %s but has no context.Context parameter; accept ctx first so cancellation reaches it",
						describeFunc(fd), why)
				}
			}
		}
	}
}

func describeFunc(fd *ast.FuncDecl) string {
	if fd.Recv != nil {
		return "method " + fd.Name.Name
	}
	return "function " + fd.Name.Name
}

// exportedRecv reports whether the receiver's base type name is exported.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

// ctxParamIndex returns the flattened position of the first context.Context
// parameter, or -1 if there is none.
func ctxParamIndex(pass *Pass, params *ast.FieldList) int {
	if params == nil {
		return -1
	}
	idx := 0
	for _, field := range params.List {
		if isContextType(pass, field.Type) {
			return idx
		}
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		idx += n
	}
	return -1
}

func isContextType(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// ctxfirstWork reports why a function body counts as search work: it spawns
// goroutines, or it ranges over a collection of work-typed elements.
func ctxfirstWork(pass *Pass, body *ast.BlockStmt) string {
	var reason string
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			reason = "spawns goroutines"
			return false
		case *ast.RangeStmt:
			if name := workElemName(pass, n.X); name != "" {
				reason = "ranges over " + name + " work"
				return false
			}
		}
		return true
	})
	return reason
}

// workElemName resolves the element type of a ranged slice/array/map,
// dereferences a pointer element, and returns the type name when it is one
// of the work types.
func workElemName(pass *Pass, x ast.Expr) string {
	t := pass.TypeOf(x)
	if t == nil {
		return ""
	}
	var elem types.Type
	switch u := t.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	case *types.Map:
		elem = u.Elem()
	default:
		return ""
	}
	if p, ok := elem.(*types.Pointer); ok {
		elem = p.Elem()
	}
	named, ok := elem.(*types.Named)
	if !ok {
		return ""
	}
	if ctxfirstWorkTypes[named.Obj().Name()] {
		return named.Obj().Name()
	}
	return ""
}
