package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerMapDet flags map iterations whose bodies are sensitive to Go's
// randomized map order. The scheduler's parallel == serial guarantee
// (internal/core, internal/dse: byte-identical results regardless of worker
// count, asserted by the determinism tests) only holds if no result ever
// flows through an unordered map walk. Commutative folds (x += ..., x++,
// bitwise op-assigns) are allowed; appends, plain assignments to outer
// variables, indexed/field writes and output or top-k feeding calls are
// flagged. The collect-then-sort idiom — appending keys and sorting the
// slice in a following statement — is recognised and allowed.
var AnalyzerMapDet = &Analyzer{
	Name: "mapdet",
	Doc: "flags order-sensitive operations (append, plain assignment, indexed writes, " +
		"output/top-k calls) inside for-range over a map; the parallel==serial determinism " +
		"guarantee depends on no result flowing through an unordered map walk",
	Run: runMapDet,
}

func runMapDet(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmts := stmtList(n)
			for i, s := range stmts {
				rng, ok := s.(*ast.RangeStmt)
				if !ok || !isMapType(pass.Info, rng.X) {
					continue
				}
				for _, fd := range mapRangeFindings(pass.Info, rng, stmts[i+1:]) {
					pass.Reportf(fd.pos, "%s", fd.msg)
				}
			}
			return true
		})
	}
}

// stmtList extracts the statement list of any node that carries one, so
// range statements are found with their trailing siblings (needed for the
// sort-after idiom) wherever they appear.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

func isMapType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// mapFinding is one order-sensitivity verdict on a map-range body.
type mapFinding struct {
	pos token.Pos
	msg string
}

// mapRangeFindings classifies the body of one for-range over a map and
// returns the order-sensitive operations found. It needs only the type info,
// not a Pass, so the interprocedural puredet check can run the same
// classification on functions reached through the call graph.
func mapRangeFindings(info *types.Info, rng *ast.RangeStmt, rest []ast.Stmt) []mapFinding {
	body := rng.Body
	var findings []mapFinding
	appended := map[string]token.Pos{} // outer slices appended to, name -> first pos

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				lhs = unparen(lhs)
				lhsStr := types.ExprString(lhs)
				// x = append(x, ...) is the collect idiom; defer judgement
				// until we know whether x is sorted afterwards.
				if n.Tok == token.ASSIGN && len(n.Rhs) == len(n.Lhs) &&
					isAppendTo(n.Rhs[i], lhsStr) && writesOutsideLoop(info, lhs, body) {
					if _, ok := appended[lhsStr]; !ok {
						appended[lhsStr] = n.Pos()
					}
					continue
				}
				switch l := lhs.(type) {
				case *ast.Ident:
					// := declares loop-locals; op-assigns (+=, *=, |=, ...)
					// are commutative folds: both allowed.
					if l.Name == "_" || !declaredOutside(info, l, body) {
						continue
					}
					if n.Tok == token.ASSIGN {
						findings = append(findings, mapFinding{n.Pos(),
							"assigns " + l.Name + " during map iteration; last-writer-wins depends on map order"})
					}
				case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr:
					// m[k] = v into a map with the key derived from the range
					// variables writes a distinct entry per iteration — order
					// cannot leak. Slice writes stay flagged: distinct indices
					// are not guaranteed and iteration order reaches memory.
					if ix, ok := l.(*ast.IndexExpr); ok &&
						isMapType(info, ix.X) && usesRangeVar(info, ix.Index, rng) {
						continue
					}
					if writesOutsideLoop(info, l, body) {
						findings = append(findings, mapFinding{n.Pos(),
							"writes " + lhsStr + " during map iteration; map order may leak into results"})
					}
				}
			}
		case *ast.CallExpr:
			if name, bad := orderSensitiveCall(n); bad {
				findings = append(findings, mapFinding{n.Pos(),
					"calls " + name + " during map iteration; output or top-k feed depends on map order"})
			}
		}
		return true
	})

	// The collect-then-sort idiom: every appended slice must be sorted (or
	// handed to sort.Slice/slices.Sort*) in a following sibling statement.
	names := make([]string, 0, len(appended))
	for name := range appended {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !sortedAfter(rest, name) {
			findings = append(findings, mapFinding{appended[name],
				"appends to " + name + " during map iteration without sorting it afterwards; " +
					"iterate sorted keys or sort the slice before use"})
		}
	}
	return findings
}

// usesRangeVar reports whether e references the key or value variable of
// the range statement.
func usesRangeVar(info *types.Info, e ast.Expr, rng *ast.RangeStmt) bool {
	vars := map[types.Object]bool{}
	for _, v := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.ObjectOf(id); obj != nil {
				vars[obj] = true
			}
		}
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && vars[info.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

// declaredOutside reports whether ident resolves to an object declared
// outside the loop body (package-level or in an enclosing scope).
func declaredOutside(info *types.Info, id *ast.Ident, body *ast.BlockStmt) bool {
	obj := info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() < body.Pos() || obj.Pos() > body.End()
}

// writesOutsideLoop reports whether the written lvalue is rooted at a
// variable declared outside the loop body.
func writesOutsideLoop(info *types.Info, e ast.Expr, body *ast.BlockStmt) bool {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return declaredOutside(info, x, body)
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

func isAppendTo(rhs ast.Expr, lhsStr string) bool {
	call, ok := unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || len(call.Args) == 0 {
		return false
	}
	return types.ExprString(unparen(call.Args[0])) == lhsStr
}

// orderSensitiveCall reports calls that publish data in iteration order:
// printing/writing helpers and top-k/accumulator feeds.
func orderSensitiveCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	switch {
	case strings.HasPrefix(name, "Print"), strings.HasPrefix(name, "Fprint"),
		strings.HasPrefix(name, "Write"):
		return types.ExprString(sel), true
	case name == "Insert" || name == "Push" || name == "Offer" || name == "Admit":
		return types.ExprString(sel), true
	}
	return "", false
}

// sortedAfter reports whether a following sibling statement sorts the named
// slice (sort.X(name, ...), slices.Sort*(name, ...)).
func sortedAfter(rest []ast.Stmt, name string) bool {
	for _, s := range rest {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := unparen(sel.X).(*ast.Ident)
			if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
				return true
			}
			for _, arg := range call.Args {
				if types.ExprString(unparen(arg)) == name {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
