package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerKeyDrift guards the persistent store's cache-key completeness: a
// result cached under a content-addressed key is poisoned the moment a field
// that can change the result stops being part of the key. For every persist
// function (name starting with "persist", returning store.Key), every field
// of its request types — the structs carried by its receiver and parameters,
// recursed through module-declared nested structs — must either be read
// inside the function's encode cluster (the persist function itself plus
// every function it reaches that takes a *store.Enc) or be explicitly waived
// with a
//
//	// storekey:exclude <pkg>.<Type>.<Field> <reason>
//
// directive in the persist function's package. The check is interprocedural:
// helpers like mapper.EncodeLayerShape count as coverage for the fields they
// read, in whichever package the persist function lives.
var AnalyzerKeyDrift = &Analyzer{
	Name: "keydrift",
	Doc: "every field of a persisted request type must be encoded into the store.Enc " +
		"key by its persist* function (or a helper it reaches) or waived with " +
		"// storekey:exclude <pkg>.<Type>.<Field> <reason>; an unencoded field silently " +
		"aliases distinct requests onto one store entry",
	RunModule: runKeyDrift,
}

// parseStorekeyDirective parses one comment's text. It returns ("", "", nil)
// when the comment is not a storekey:exclude directive, the waived field path
// and reason when well-formed, and an error when malformed (path not of the
// form pkg.Type.Field, or missing reason).
func parseStorekeyDirective(comment string) (path, reason string, err error) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if !strings.HasPrefix(text, storekeyDirective) {
		return "", "", nil
	}
	rest := text[len(storekeyDirective):]
	if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
		return "", "", nil
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", fmt.Errorf("malformed // %s directive: missing field path and reason", storekeyDirective)
	}
	path = fields[0]
	if strings.Count(path, ".") != 2 {
		return "", "", fmt.Errorf("// %s path %q must have the form pkg.Type.Field", storekeyDirective, path)
	}
	reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), path))
	if reason == "" {
		return "", "", fmt.Errorf("// %s %s has no reason; document why the field cannot change the result", storekeyDirective, path)
	}
	return path, reason, nil
}

func runKeyDrift(mp *ModulePass) {
	for _, pkg := range mp.Pkgs {
		runKeyDriftPkg(mp, pkg)
	}
}

func runKeyDriftPkg(mp *ModulePass, pkg *Package) {
	type persistFn struct {
		fd  *ast.FuncDecl
		obj *types.Func
	}
	var persists []persistFn
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !strings.HasPrefix(fd.Name.Name, "persist") {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok || !returnsStoreKey(obj) {
				continue
			}
			persists = append(persists, persistFn{fd, obj})
		}
	}
	waivers, waiverPaths := collectWaivers(mp, pkg)
	if len(persists) == 0 && len(waivers) == 0 {
		return
	}

	// seen accumulates every field path any of this package's persist
	// functions traversed, so waivers naming nothing real are caught below.
	seen := map[string]bool{}
	for _, p := range persists {
		checkPersistFunc(mp, pkg, p.fd, p.obj, waivers, seen)
	}
	for _, path := range waiverPaths {
		if !seen[path] {
			mp.Reportf(waivers[path],
				"// %s waives %s, which is not a field of any persisted request type in this package; fix the path or drop the directive",
				storekeyDirective, path)
		}
	}
}

// collectWaivers indexes the well-formed storekey:exclude directives of one
// package (path -> directive position) and reports the malformed ones. The
// returned paths are sorted for deterministic diagnostics.
func collectWaivers(mp *ModulePass, pkg *Package) (map[string]token.Pos, []string) {
	waivers := map[string]token.Pos{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				path, _, err := parseStorekeyDirective(c.Text)
				if err != nil {
					mp.Reportf(c.Pos(), "%s", err.Error())
					continue
				}
				if path == "" {
					continue
				}
				if _, dup := waivers[path]; !dup {
					waivers[path] = c.Pos()
				}
			}
		}
	}
	paths := make([]string, 0, len(waivers))
	for path := range waivers {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	return waivers, paths
}

// checkPersistFunc verifies one persist function: every field of its request
// types is either covered by the encode cluster or waived.
func checkPersistFunc(mp *ModulePass, pkg *Package, fd *ast.FuncDecl, obj *types.Func,
	waivers map[string]token.Pos, seen map[string]bool) {
	covered := coveredFields(mp, obj)
	sig := obj.Type().(*types.Signature)
	var reqs []*types.Named
	if recv := sig.Recv(); recv != nil {
		if n := moduleStruct(mp, recv.Type()); n != nil {
			reqs = append(reqs, n)
		}
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if n := moduleStruct(mp, params.At(i).Type()); n != nil {
			reqs = append(reqs, n)
		}
	}
	visited := map[*types.Named]bool{}
	for _, req := range reqs {
		walkRequestStruct(mp, fd, req, covered, waivers, seen, visited)
	}
}

// walkRequestStruct checks every field of one request struct and recurses
// into module-declared nested structs. Uncovered and waived fields are not
// descended into: one finding (or one waiver) per subtree, no cascade.
func walkRequestStruct(mp *ModulePass, fd *ast.FuncDecl, named *types.Named,
	covered map[*types.Var]bool, waivers map[string]token.Pos, seen map[string]bool,
	visited map[*types.Named]bool) {
	if visited[named] {
		return
	}
	visited[named] = true
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	typePath := named.Obj().Pkg().Name() + "." + named.Obj().Name()
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		path := typePath + "." + fld.Name()
		seen[path] = true
		if _, ok := waivers[path]; ok {
			continue
		}
		if !covered[fld] {
			mp.Reportf(fd.Name.Pos(),
				"%s does not encode %s into the store key; write it through store.Enc or waive it with '// storekey:exclude %s <reason>'",
				fd.Name.Name, path, path)
			continue
		}
		if nested := moduleStruct(mp, fld.Type()); nested != nil {
			walkRequestStruct(mp, fd, nested, covered, waivers, seen, visited)
		}
	}
}

// coveredFields collects every struct field read anywhere in the persist
// function's encode cluster: the persist function itself plus every function
// reachable from it in the call graph that handles a store.Enc.
func coveredFields(mp *ModulePass, persist *types.Func) map[*types.Var]bool {
	covered := map[*types.Var]bool{}
	reach := mp.Graph.ReachableFrom([]*types.Func{persist})
	fns := make([]*types.Func, 0, len(reach))
	for fn := range reach {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })
	for _, fn := range fns {
		node := mp.Graph.Nodes[fn]
		if node == nil {
			continue
		}
		if fn != persist && !handlesEnc(fn) {
			continue
		}
		info := node.Pkg.Info
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			se, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			sel, ok := info.Selections[se]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			if v, ok := sel.Obj().(*types.Var); ok {
				covered[v] = true
			}
			return true
		})
	}
	return covered
}

// handlesEnc reports whether the function's receiver or a parameter is a
// store.Enc (or *store.Enc) — membership test for the encode cluster.
func handlesEnc(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil && isStoreType(recv.Type(), "Enc") {
		return true
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isStoreType(params.At(i).Type(), "Enc") {
			return true
		}
	}
	return false
}

// returnsStoreKey reports whether fn's sole result is store.Key — the
// signature shape that marks a persist-key constructor.
func returnsStoreKey(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	return res.Len() == 1 && isStoreType(res.At(0).Type(), "Key")
}

// isStoreType reports whether t (pointers stripped) is the named type
// store.<name>, matching by package base name so fixtures importing the real
// store package behave like the shipped code.
func isStoreType(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Name() == "store"
}

// moduleStruct resolves t (through pointers, slices and arrays) to a named
// struct type declared in one of the loaded module packages, or nil. Maps,
// interfaces and function types are leaves: their contents cannot be
// field-checked meaningfully.
func moduleStruct(mp *ModulePass, t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		default:
			named, ok := t.(*types.Named)
			if !ok {
				return nil
			}
			if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
				return nil
			}
			tp := named.Obj().Pkg()
			if tp == nil {
				return nil
			}
			for _, pkg := range mp.Pkgs {
				if pkg.Types == tp {
					return named
				}
			}
			return nil
		}
	}
}
