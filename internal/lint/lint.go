// Package lint implements securelint, the repo-specific static-analysis
// suite behind cmd/securelint. It is built only on the standard library
// (go/parser, go/ast, go/types): packages are parsed and type-checked from
// source, a small analyzer framework runs repo-specific checks over them,
// and findings are reported with positions, a suppression directive and
// text or JSON output.
//
// The checks exist because the scheduler's performance work (PR 1/PR 2)
// leans on repo-wide invariants that ordinary tests cannot see eroding:
// byte-identical deterministic results under parallelism, int64-safe
// tile-volume arithmetic, centralised ceiling division, and lock discipline
// in the sharded caches. Each analyzer guards one of those invariants; see
// DESIGN.md ("Enforced invariants") for the full mapping.
//
// Suppression: a finding is suppressed by the directive
//
//	//securelint:ignore <check> <reason>
//
// placed either at the end of the offending line or on the line directly
// above it. The check name must match the analyzer (comma-separate several),
// and the reason is required documentation for the next reader, not parsed.
package lint

import (
	"context"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned for editors (file:line:col).
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Analyzer is one registered check. Per-package checks set Run; module-wide
// checks (which need the call graph and see every loaded package at once)
// set RunModule instead.
type Analyzer struct {
	// Name is the check name used on the command line and in the
	// //securelint:ignore directive.
	Name string
	// Doc is a one-paragraph description of the invariant the check guards.
	Doc string
	// Run reports findings on one type-checked package via pass.Reportf.
	Run func(pass *Pass)
	// RunModule reports findings over the whole loaded module via
	// mp.Reportf. Module analyzers see non-test files only.
	RunModule func(mp *ModulePass)
}

// Pass hands one type-checked package to one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	// Path is the package's import path (fixture packages use their
	// directory name).
	Path   string
	Pkg    *types.Package
	Info   *types.Info
	report func(pos token.Pos, msg string)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// ModulePass hands the full set of loaded packages, plus the call graph
// built over them, to one module-wide analyzer.
type ModulePass struct {
	Fset *token.FileSet
	// Pkgs are every loaded module package (roots plus transitive
	// module-local imports), sorted by import path, non-test files only.
	Pkgs []*Package
	// Graph is the module-wide call graph over Pkgs.
	Graph  *Graph
	report func(pos token.Pos, msg string)
}

// Reportf records a finding at pos.
func (mp *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	mp.report(pos, fmt.Sprintf(format, args...))
}

// PkgBySuffix returns the loaded package whose import path equals suffix or
// ends in "/"+suffix, or nil. Fixture packages match by their directory
// name.
func (mp *ModulePass) PkgBySuffix(suffix string) *Package {
	for _, pkg := range mp.Pkgs {
		if pkg.Path == suffix || strings.HasSuffix(pkg.Path, "/"+suffix) {
			return pkg
		}
	}
	return nil
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerCeilDiv,
		AnalyzerOverflowMul,
		AnalyzerMapDet,
		AnalyzerLockGuard,
		AnalyzerFloatEq,
		AnalyzerCtxFirst,
		AnalyzerKeyDrift,
		AnalyzerPureDet,
	}
}

// ByName resolves a comma-separated check list ("" or "all" selects every
// analyzer).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" || names == "all" {
		return Analyzers(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Config configures one lint run.
type Config struct {
	// Dir is the directory patterns are resolved against (default ".").
	Dir string
	// Patterns are package patterns: a directory, or a directory followed
	// by "/..." for a recursive walk (default "./...").
	Patterns []string
	// Checks selects a comma-separated subset of analyzers ("" = all).
	Checks string
	// IncludeTests also lints in-package _test.go files.
	IncludeTests bool
}

// Result is the outcome of a lint run.
type Result struct {
	// Diags are the unsuppressed findings, sorted by position.
	Diags []Diagnostic
	// Suppressed counts findings silenced by //securelint:ignore.
	Suppressed int
	// Packages counts the packages analyzed.
	Packages int
}

// Run loads the packages matching cfg and runs the selected analyzers. It is
// RunCtx with a background context.
func Run(cfg Config) (*Result, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx is the cancellable lint run: the context is polled between packages
// (each package's load-and-analyze is the natural batch), so a Ctrl-C on a
// module-wide run stops at the next package boundary and returns ctx.Err().
// Per-package analyzers run over each matched package in turn; module
// analyzers run once at the end over every loaded package plus the call
// graph built over them.
func RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	checks, err := ByName(cfg.Checks)
	if err != nil {
		return nil, err
	}
	ld, dirs, err := resolveLoad(cfg)
	if err != nil {
		return nil, err
	}
	var modChecks []*Analyzer
	for _, a := range checks {
		if a.RunModule != nil {
			modChecks = append(modChecks, a)
		}
	}
	res := &Result{}
	for _, d := range dirs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pkg, err := ld.loadRoot(d, cfg.IncludeTests)
		if err != nil {
			return nil, err
		}
		res.Packages++
		diags, suppressed := RunAnalyzers(pkg, checks)
		res.Diags = append(res.Diags, diags...)
		res.Suppressed += suppressed
	}
	if len(modChecks) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		diags, suppressed, err := runModuleAnalyzers(ld, dirs, modChecks)
		if err != nil {
			return nil, err
		}
		res.Diags = append(res.Diags, diags...)
		res.Suppressed += suppressed
	}
	sortDiags(res.Diags)
	return res, nil
}

// resolveLoad applies the Config defaults and resolves the package patterns.
func resolveLoad(cfg Config) (*loader, []string, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	patterns := cfg.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	ld, err := newLoader(dir)
	if err != nil {
		return nil, nil, err
	}
	dirs, err := expandPatterns(dir, patterns, cfg.IncludeTests)
	if err != nil {
		return nil, nil, err
	}
	return ld, dirs, nil
}

// runModuleAnalyzers builds the module set and call graph, then runs each
// module check over them. Directive diagnostics are NOT re-collected here —
// the per-package phase already reported them for every root.
func runModuleAnalyzers(ld *loader, dirs []string, checks []*Analyzer) ([]Diagnostic, int, error) {
	mpkgs, err := ld.modulePackages(dirs)
	if err != nil {
		return nil, 0, err
	}
	mp := &ModulePass{Fset: ld.fset, Pkgs: mpkgs, Graph: BuildGraph(mpkgs)}
	var files []*ast.File
	for _, pkg := range mpkgs {
		files = append(files, pkg.Files...)
	}
	ignores, _ := collectIgnores(ld.fset, files)
	var diags []Diagnostic
	suppressed := 0
	for _, a := range checks {
		name := a.Name
		mp.report = func(pos token.Pos, msg string) {
			p := ld.fset.Position(pos)
			if ignores.matches(name, p) {
				suppressed++
				return
			}
			diags = append(diags, Diagnostic{
				File: p.Filename, Line: p.Line, Col: p.Column,
				Check: name, Message: msg,
			})
		}
		a.RunModule(mp)
	}
	return diags, suppressed, nil
}

// GraphCtx loads the packages matching cfg (plus their transitive
// module-local imports) and returns the call graph over them — the
// `securelint -graph` debug surface, also the entry point future
// interprocedural checks can prototype against.
func GraphCtx(ctx context.Context, cfg Config) (*Graph, error) {
	ld, dirs, err := resolveLoad(cfg)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mpkgs, err := ld.modulePackages(dirs)
	if err != nil {
		return nil, err
	}
	return BuildGraph(mpkgs), nil
}

// RunAnalyzers runs the given per-package checks over one loaded package,
// applying the suppression directives found in its files. Malformed
// //securelint:ignore directives (unknown check name, missing reason) are
// reported as findings of the pseudo-check "ignore" — they suppress nothing,
// so a typo cannot silently rot. Module-wide checks in the list are skipped;
// RunCtx runs them separately over the whole module.
func RunAnalyzers(pkg *Package, checks []*Analyzer) (diags []Diagnostic, suppressed int) {
	ignores, dirDiags := collectIgnores(pkg.Fset, pkg.Files)
	diags = append(diags, dirDiags...)
	for _, a := range checks {
		if a.Run == nil {
			continue
		}
		pass := &Pass{
			Fset:  pkg.Fset,
			Files: pkg.Files,
			Path:  pkg.Path,
			Pkg:   pkg.Types,
			Info:  pkg.Info,
		}
		pass.report = func(pos token.Pos, msg string) {
			p := pkg.Fset.Position(pos)
			if ignores.matches(a.Name, p) {
				suppressed++
				return
			}
			diags = append(diags, Diagnostic{
				File: p.Filename, Line: p.Line, Col: p.Column,
				Check: a.Name, Message: msg,
			})
		}
		a.Run(pass)
	}
	sortDiags(diags)
	return diags, suppressed
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
}
