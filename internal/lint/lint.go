// Package lint implements securelint, the repo-specific static-analysis
// suite behind cmd/securelint. It is built only on the standard library
// (go/parser, go/ast, go/types): packages are parsed and type-checked from
// source, a small analyzer framework runs repo-specific checks over them,
// and findings are reported with positions, a suppression directive and
// text or JSON output.
//
// The checks exist because the scheduler's performance work (PR 1/PR 2)
// leans on repo-wide invariants that ordinary tests cannot see eroding:
// byte-identical deterministic results under parallelism, int64-safe
// tile-volume arithmetic, centralised ceiling division, and lock discipline
// in the sharded caches. Each analyzer guards one of those invariants; see
// DESIGN.md ("Enforced invariants") for the full mapping.
//
// Suppression: a finding is suppressed by the directive
//
//	//securelint:ignore <check> <reason>
//
// placed either at the end of the offending line or on the line directly
// above it. The check name must match the analyzer (comma-separate several),
// and the reason is required documentation for the next reader, not parsed.
package lint

import (
	"context"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned for editors (file:line:col).
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Analyzer is one registered check.
type Analyzer struct {
	// Name is the check name used on the command line and in the
	// //securelint:ignore directive.
	Name string
	// Doc is a one-paragraph description of the invariant the check guards.
	Doc string
	// Run reports findings on one type-checked package via pass.Reportf.
	Run func(pass *Pass)
}

// Pass hands one type-checked package to one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	// Path is the package's import path (fixture packages use their
	// directory name).
	Path   string
	Pkg    *types.Package
	Info   *types.Info
	report func(pos token.Pos, msg string)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerCeilDiv,
		AnalyzerOverflowMul,
		AnalyzerMapDet,
		AnalyzerLockGuard,
		AnalyzerFloatEq,
		AnalyzerCtxFirst,
	}
}

// ByName resolves a comma-separated check list ("" or "all" selects every
// analyzer).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" || names == "all" {
		return Analyzers(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Config configures one lint run.
type Config struct {
	// Dir is the directory patterns are resolved against (default ".").
	Dir string
	// Patterns are package patterns: a directory, or a directory followed
	// by "/..." for a recursive walk (default "./...").
	Patterns []string
	// Checks selects a comma-separated subset of analyzers ("" = all).
	Checks string
	// IncludeTests also lints in-package _test.go files.
	IncludeTests bool
}

// Result is the outcome of a lint run.
type Result struct {
	// Diags are the unsuppressed findings, sorted by position.
	Diags []Diagnostic
	// Suppressed counts findings silenced by //securelint:ignore.
	Suppressed int
	// Packages counts the packages analyzed.
	Packages int
}

// Run loads the packages matching cfg and runs the selected analyzers. It is
// RunCtx with a background context.
func Run(cfg Config) (*Result, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx is the cancellable lint run: the context is polled between packages
// (each package's load-and-analyze is the natural batch), so a Ctrl-C on a
// module-wide run stops at the next package boundary and returns ctx.Err().
func RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	checks, err := ByName(cfg.Checks)
	if err != nil {
		return nil, err
	}
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	patterns := cfg.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	ld, err := newLoader(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(dir, patterns, cfg.IncludeTests)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for _, d := range dirs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pkg, err := ld.loadRoot(d, cfg.IncludeTests)
		if err != nil {
			return nil, err
		}
		res.Packages++
		diags, suppressed := RunAnalyzers(pkg, checks)
		res.Diags = append(res.Diags, diags...)
		res.Suppressed += suppressed
	}
	sortDiags(res.Diags)
	return res, nil
}

// RunAnalyzers runs the given checks over one loaded package, applying the
// suppression directives found in its files.
func RunAnalyzers(pkg *Package, checks []*Analyzer) (diags []Diagnostic, suppressed int) {
	ignores := collectIgnores(pkg.Fset, pkg.Files)
	for _, a := range checks {
		pass := &Pass{
			Fset:  pkg.Fset,
			Files: pkg.Files,
			Path:  pkg.Path,
			Pkg:   pkg.Types,
			Info:  pkg.Info,
		}
		pass.report = func(pos token.Pos, msg string) {
			p := pkg.Fset.Position(pos)
			if ignores.matches(a.Name, p) {
				suppressed++
				return
			}
			diags = append(diags, Diagnostic{
				File: p.Filename, Line: p.Line, Col: p.Column,
				Check: a.Name, Message: msg,
			})
		}
		a.Run(pass)
	}
	sortDiags(diags)
	return diags, suppressed
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
}
