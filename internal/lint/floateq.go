package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerFloatEq flags == and != between floating-point expressions.
// Cost and energy values (EDP, pJ, effective bandwidth) are floats; exact
// equality on them makes annealing acceptance and top-k tie-breaks depend
// on rounding noise, which silently breaks the deterministic-result and
// monotone-pruning guarantees. Compare with an epsilon, or restructure the
// score to integers (as the mapper's cycles/bits ranking does). The x != x
// NaN test is recognised and allowed.
var AnalyzerFloatEq = &Analyzer{
	Name: "floateq",
	Doc: "flags ==/!= on floating-point operands in cost/energy code; exact float " +
		"equality makes annealing acceptance and tie-breaks depend on rounding noise",
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, cmp.X) && !isFloat(pass, cmp.Y) {
				return true
			}
			// x != x is the idiomatic NaN check.
			if cmp.Op == token.NEQ && types.ExprString(cmp.X) == types.ExprString(cmp.Y) {
				return true
			}
			pass.Reportf(cmp.Pos(),
				"float equality %s; compare with an epsilon or restructure the score to integers",
				types.ExprString(cmp))
			return true
		})
	}
}

func isFloat(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
