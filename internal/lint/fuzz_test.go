package lint

import (
	"strings"
	"testing"
)

// FuzzIgnoreDirectives hammers the two directive parsers with arbitrary
// comment text. Invariants: no panics; a parse error never co-exists with a
// parsed payload; well-formed results round-trip their own constraints
// (known check names only, non-empty reasons, three-segment waiver paths);
// and text without the directive marker never parses as a directive.
func FuzzIgnoreDirectives(f *testing.F) {
	f.Add("//securelint:ignore ceildiv reason text")
	f.Add("// securelint:ignore mapdet,puredet two checks, one reason")
	f.Add("//securelint:ignore all everything off")
	f.Add("//securelint:ignore nosuchcheck typo")
	f.Add("//securelint:ignore ceildiv")
	f.Add("//securelint:ignore")
	f.Add("//securelint:ignorex not the directive")
	f.Add("// just a comment")
	f.Add("// storekey:exclude mapper.cacheKey.opt reason")
	f.Add("// storekey:exclude bad.path only two segments... no, three dots")
	f.Add("// storekey:exclude a.b.c")
	f.Add("// storekey:exclude")
	f.Add("//securelint:ignore ceildiv,,floateq double comma")
	f.Add("//securelint:ignore , only commas")

	valid := map[string]bool{}
	for _, n := range knownCheckNames() {
		valid[n] = true
	}

	f.Fuzz(func(t *testing.T, comment string) {
		checks, reason, err := parseIgnoreDirective(comment)
		if err != nil && (len(checks) != 0 || reason != "") {
			t.Fatalf("parseIgnoreDirective(%q): error %v alongside payload %v %q", comment, err, checks, reason)
		}
		for _, c := range checks {
			if !valid[c] {
				t.Fatalf("parseIgnoreDirective(%q) accepted unknown check %q", comment, c)
			}
		}
		if len(checks) > 0 && reason == "" {
			t.Fatalf("parseIgnoreDirective(%q) accepted an empty reason", comment)
		}
		if !strings.Contains(comment, ignoreDirective) && (len(checks) != 0 || err != nil) {
			t.Fatalf("parseIgnoreDirective(%q) reacted to text without the marker", comment)
		}

		path, wreason, werr := parseStorekeyDirective(comment)
		if werr != nil && (path != "" || wreason != "") {
			t.Fatalf("parseStorekeyDirective(%q): error %v alongside payload %q %q", comment, werr, path, wreason)
		}
		if path != "" {
			if strings.Count(path, ".") != 2 {
				t.Fatalf("parseStorekeyDirective(%q) accepted path %q without three segments", comment, path)
			}
			if wreason == "" {
				t.Fatalf("parseStorekeyDirective(%q) accepted an empty reason", comment)
			}
		}
		if !strings.Contains(comment, storekeyDirective) && (path != "" || werr != nil) {
			t.Fatalf("parseStorekeyDirective(%q) reacted to text without the marker", comment)
		}
	})
}
