package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerPureDet guards the determinism of everything a cached entry point
// can reach. The persistent store (and the in-memory tiers above it) serve a
// result computed once to every later identical request — across processes,
// machines and restarts — so any wall-clock read, environment read, global
// randomness or order-escaping map walk on a cached path bakes one process's
// accident into everyone's answer. The check is interprocedural: the seed
// entry points below are closed over the call graph, and every reached
// module function is scanned. Known value-transparent sinks (the store
// itself, observability) are allowlisted and pruned from the traversal.
var AnalyzerPureDet = &Analyzer{
	Name: "puredet",
	Doc: "functions reachable from cached entry points (mapper.SearchCachedCtx, " +
		"authblock.OptimalCachedCtx/OptimalStoredCtx, core.ScheduleNetworkCtx) must not " +
		"call time.Now/time.Since, read the environment, use global or non-request-seeded " +
		"randomness, or leak map iteration order into results",
	RunModule: runPureDet,
}

// puredetSeeds names the cached entry points, by package path suffix and
// function name. A listed package missing the named function is a finding
// (the seed table must rot loudly, not silently); an absent package is
// skipped, so fixture runs and partial lints stay quiet.
var puredetSeeds = []struct{ pkg, fn string }{
	{"internal/mapper", "SearchCachedCtx"},
	{"internal/mapper", "SearchLowerBound"},
	{"internal/authblock", "OptimalCachedCtx"},
	{"internal/authblock", "OptimalStoredCtx"},
	{"internal/core", "ScheduleNetworkCtx"},
	{"internal/dse", "SweepFrontCtx"},
	{"internal/service", "ScheduleBody"},
	{"internal/service", "SweepBody"},
	{"internal/service", "AuthBlockBody"},
	{"testdata/src/puredet", "CachedEntry"},
}

// puredetAllow lists known-benign sinks pruned from the traversal: results
// never flow back out of these, so their internals (file mtimes in the
// store, logging in obs) cannot reach a cached answer. fn "*" allowlists the
// whole package.
var puredetAllow = []struct{ pkg, fn string }{
	{"internal/store", "*"}, // persistence below the computed result
	{"internal/obs", "*"},   // observability; values only flow in
	{"testdata/src/puredet", "allowedSink"},
}

func runPureDet(mp *ModulePass) {
	var seeds []*types.Func
	for _, s := range puredetSeeds {
		pkg := mp.PkgBySuffix(s.pkg)
		if pkg == nil {
			continue
		}
		fns := mp.Graph.FuncsNamed(pkg, s.fn)
		if len(fns) == 0 {
			mp.Reportf(pkg.Files[0].Name.Pos(),
				"puredet seed %s.%s not found; update the seed table in internal/lint/puredet.go", s.pkg, s.fn)
			continue
		}
		seeds = append(seeds, fns...)
	}
	witness := reachableSkipping(mp.Graph, seeds, puredetAllowed)
	fns := make([]*types.Func, 0, len(witness))
	for fn := range witness {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })
	for _, fn := range fns {
		if node := mp.Graph.Nodes[fn]; node != nil {
			checkPureFunc(mp, node, witness[fn])
		}
	}
}

// puredetAllowed reports whether fn is in the allowlist.
func puredetAllowed(fn *types.Func) bool {
	p := fn.Pkg()
	if p == nil {
		return false
	}
	for _, a := range puredetAllow {
		if p.Path() != a.pkg && !strings.HasSuffix(p.Path(), "/"+a.pkg) {
			continue
		}
		if a.fn == "*" || a.fn == fn.Name() {
			return true
		}
	}
	return false
}

// reachableSkipping is ReachableFrom with traversal pruned at functions the
// skip predicate accepts: they are neither scanned nor followed.
func reachableSkipping(g *Graph, seeds []*types.Func, skip func(*types.Func) bool) map[*types.Func]*types.Func {
	witness := map[*types.Func]*types.Func{}
	var queue []*types.Func
	for _, s := range seeds {
		if s == nil || skip(s) {
			continue
		}
		if _, ok := witness[s]; ok {
			continue
		}
		witness[s] = s
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := g.Nodes[fn]
		if node == nil {
			continue
		}
		for _, c := range node.Calls {
			if skip(c.Callee) {
				continue
			}
			if _, ok := witness[c.Callee]; ok {
				continue
			}
			witness[c.Callee] = witness[fn]
			queue = append(queue, c.Callee)
		}
	}
	return witness
}

// checkPureFunc scans one reached function for determinism violations,
// naming the seed whose closure reached it.
func checkPureFunc(mp *ModulePass, node *FuncNode, seed *types.Func) {
	from := seed.FullName()
	for _, c := range node.Calls {
		callee := c.Callee
		cp := callee.Pkg()
		if cp == nil {
			continue
		}
		sig, ok := callee.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			continue
		}
		name := callee.Name()
		switch cp.Path() {
		case "time":
			if name == "Now" || name == "Since" {
				mp.Reportf(c.Pos,
					"calls time.%s on a cached path (reachable from %s); cached results must not depend on wall-clock", name, from)
			}
		case "os":
			if name == "Getenv" || name == "LookupEnv" || name == "Environ" {
				mp.Reportf(c.Pos,
					"reads os.%s on a cached path (reachable from %s); the environment must not influence cached results", name, from)
			}
		case "math/rand", "math/rand/v2":
			if name != "New" && name != "NewSource" {
				mp.Reportf(c.Pos,
					"calls math/rand.%s (process-global source) on a cached path (reachable from %s); derive randomness from the request seed", name, from)
			}
		}
	}

	info := node.Pkg.Info
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok &&
			isRandNewSource(info, call) && len(call.Args) == 1 && nonRequestSeed(info, call.Args[0]) {
			mp.Reportf(call.Pos(),
				"seeds rand.NewSource from a non-request value on a cached path (reachable from %s); the seed must come from the request", from)
		}
		stmts := stmtList(n)
		for i, s := range stmts {
			rng, ok := s.(*ast.RangeStmt)
			if !ok || !isMapType(info, rng.X) {
				continue
			}
			for _, f := range mapRangeFindings(info, rng, stmts[i+1:]) {
				mp.Reportf(f.pos, "%s (on a cached path, reachable from %s)", f.msg, from)
			}
			for _, f := range floatFoldFindings(info, rng) {
				mp.Reportf(f.pos, "%s (on a cached path, reachable from %s)", f.msg, from)
			}
		}
		return true
	})
}

// isRandNewSource reports whether call invokes math/rand's NewSource.
func isRandNewSource(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "NewSource" || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == "math/rand" || path == "math/rand/v2"
}

// nonRequestSeed reports whether the seed expression draws on anything other
// than the request itself: a (non-conversion) call — time.Now().UnixNano()
// being the classic — or a package-level variable. Constants, parameters and
// fields of the request are fine.
func nonRequestSeed(info *types.Info, arg ast.Expr) bool {
	bad := false
	ast.Inspect(arg, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if tv, ok := info.Types[unparen(n.Fun)]; !ok || !tv.IsType() {
				bad = true
			}
		case *ast.Ident:
			if v, ok := info.Uses[n].(*types.Var); ok &&
				v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				bad = true
			}
		}
		return !bad
	})
	return bad
}

// floatFoldFindings flags floating-point op-assign accumulation inside a map
// range. mapdet accepts op-assign folds as commutative, which is true of
// integers; float addition and multiplication round per step, so the
// accumulated value depends on iteration order — exactly what a cached path
// must not.
func floatFoldFindings(info *types.Info, rng *ast.RangeStmt) []mapFinding {
	var out []mapFinding
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := unparen(lhs).(*ast.Ident)
			if !ok || !declaredOutside(info, id, rng.Body) {
				continue
			}
			t := info.TypeOf(id)
			if t == nil {
				continue
			}
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				out = append(out, mapFinding{as.Pos(),
					"accumulates float " + id.Name + " in map iteration order; per-step rounding makes the sum order-dependent"})
			}
		}
		return true
	})
	return out
}
