package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerOverflowMul flags products computed in raw int. The tile-volume
// and traffic arithmetic (internal/mapping, internal/authblock) multiplies
// dimension, tile and loop-count quantities; on a 32-bit int a product of
// two plausible layer dimensions silently wraps, corrupting the analytical
// counting SecureLoop substitutes for simulation. Products of such
// quantities must be widened to int64 first (or go through the checked
// num.MulInt64). Exempt:
//
//   - products with a constant operand (small fixed scalings);
//   - products inside a slice/array index — the indexed slice bounds-checks
//     the value at runtime, and the allocation that sized the slice is where
//     the volume math must be safe (that site is still flagged);
//   - products of two len/cap results, which count already-materialised
//     elements.
var AnalyzerOverflowMul = &Analyzer{
	Name: "overflowmul",
	Doc: "flags a*b performed in raw int with both operands non-constant; " +
		"widen to int64 (num.MulInt64) so dimension/tile/loop-count products cannot wrap on 32-bit int",
	Run: runOverflowMul,
}

func runOverflowMul(pass *Pass) {
	for _, f := range pass.Files {
		skip := indexedRanges(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			mul, ok := n.(*ast.BinaryExpr)
			if !ok || mul.Op != token.MUL {
				return true
			}
			if !isRawInt(pass, mul) || isConstExpr(pass, mul.X) || isConstExpr(pass, mul.Y) {
				return true
			}
			if skip.contains(mul.Pos()) || (isLenCap(pass, mul.X) && isLenCap(pass, mul.Y)) {
				return true
			}
			pass.Reportf(mul.Pos(),
				"int product %s may overflow 32-bit int; widen operands to int64 or use num.MulInt64",
				types.ExprString(mul))
			return true
		})
	}
}

// posRanges is a set of source ranges, used to exempt index subtrees.
type posRanges []struct{ lo, hi token.Pos }

func (r posRanges) contains(p token.Pos) bool {
	for _, rng := range r {
		if rng.lo <= p && p < rng.hi {
			return true
		}
	}
	return false
}

// indexedRanges collects the source ranges of slice/array index expressions.
func indexedRanges(pass *Pass, f *ast.File) posRanges {
	var out posRanges
	ast.Inspect(f, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		t := pass.TypeOf(ix.X)
		if t == nil {
			return true
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		switch t.Underlying().(type) {
		case *types.Slice, *types.Array:
			out = append(out, struct{ lo, hi token.Pos }{ix.Index.Pos(), ix.Index.End()})
		}
		return true
	})
	return out
}

// isLenCap reports whether e is a call to builtin len or cap.
func isLenCap(pass *Pass, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || (id.Name != "len" && id.Name != "cap") {
		return false
	}
	_, ok = pass.Info.Uses[id].(*types.Builtin)
	return ok
}

// isRawInt reports whether e's type is (a named alias of) plain int.
func isRawInt(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int
}

func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}
