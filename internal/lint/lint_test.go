package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the expectation patterns of one fixture line. Several
// quoted patterns may follow a single "want".
var wantRe = regexp.MustCompile(`// want ((?:"[^"]+"\s*)+)`)

// collectWants parses the `// want "pattern"` expectations of every .go file
// under dir, keyed by absolute file path and line.
func collectWants(t *testing.T, dir string) map[string]map[int][]string {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(abs)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[string]map[int][]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(abs, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			for _, p := range regexp.MustCompile(`"([^"]+)"`).FindAllStringSubmatch(m[1], -1) {
				if wants[path] == nil {
					wants[path] = map[int][]string{}
				}
				wants[path][line] = append(wants[path][line], p[1])
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return wants
}

// TestAnalyzersGolden runs each analyzer over its fixture package under
// testdata/src/<name> and checks the findings against the `// want`
// expectations: every want must be matched by a finding on its line, every
// finding must be covered by a want, and the fixture's suppression case must
// register in the suppressed count.
func TestAnalyzersGolden(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", a.Name)
			res, err := Run(Config{Dir: dir, Checks: a.Name})
			if err != nil {
				t.Fatal(err)
			}
			if res.Packages != 1 {
				t.Fatalf("analyzed %d packages, want 1", res.Packages)
			}
			wants := collectWants(t, dir)

			matched := map[string]map[int][]bool{}
			for path, byLine := range wants {
				matched[path] = map[int][]bool{}
				for line, ps := range byLine {
					matched[path][line] = make([]bool, len(ps))
				}
			}
			for _, d := range res.Diags {
				ps := wants[d.File][d.Line]
				hit := false
				for i, p := range ps {
					if matched[d.File][d.Line][i] {
						continue
					}
					ok, err := regexp.MatchString(p, d.Message)
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", p, err)
					}
					if ok {
						matched[d.File][d.Line][i] = true
						hit = true
						break
					}
				}
				if !hit {
					t.Errorf("unexpected finding: %s", d)
				}
			}
			for path, byLine := range matched {
				for line, hits := range byLine {
					for i, hit := range hits {
						if !hit {
							t.Errorf("%s:%d: want %q, no matching finding", path, line, wants[path][line][i])
						}
					}
				}
			}
			if res.Suppressed == 0 {
				t.Errorf("fixture has a //securelint:ignore case but nothing was suppressed")
			}
		})
	}
}

// TestByName exercises check-subset resolution.
func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(Analyzers()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v", len(all), err)
	}
	two, err := ByName("ceildiv, floateq")
	if err != nil || len(two) != 2 || two[0].Name != "ceildiv" || two[1].Name != "floateq" {
		t.Fatalf("ByName subset = %v, err %v", two, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) did not fail")
	}
}

// TestIgnoreDirectiveScope pins the directive's reach: its own line and the
// line directly below, for the named check only.
func TestIgnoreDirectiveScope(t *testing.T) {
	dir := t.TempDir()
	src := `package scratch

func a(x, y int) int {
	//securelint:ignore ceildiv scoped to the next line only
	p := (x + y - 1) / y
	q := (x + y - 1) / y
	return p + q
}

func b(x, y int) int {
	//securelint:ignore overflowmul wrong check name, ceildiv still fires
	return (x + y - 1) / y
}
`
	if err := os.WriteFile(filepath.Join(dir, "scratch.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Dir: dir, Checks: "ceildiv"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) != 2 {
		t.Fatalf("got %d findings, want 2 (line after the directive suppressed, rest kept):\n%s",
			len(res.Diags), diagsString(res.Diags))
	}
	if res.Suppressed != 1 {
		t.Fatalf("suppressed = %d, want 1", res.Suppressed)
	}
	if res.Diags[0].Line != 6 || res.Diags[1].Line != 12 {
		t.Fatalf("finding lines = %d, %d; want 6 and 12", res.Diags[0].Line, res.Diags[1].Line)
	}
}

// TestIgnoreDirectiveValidation pins the directive parser's strictness: an
// unknown check name or a missing reason is a finding of its own (check
// "ignore") and suppresses nothing.
func TestIgnoreDirectiveValidation(t *testing.T) {
	dir := t.TempDir()
	src := `package scratch

func a(x, y int) int {
	//securelint:ignore ceildvi typo'd check name suppresses nothing
	return (x + y - 1) / y
}

func b(x, y int) int {
	//securelint:ignore ceildiv
	return (x + y - 1) / y
}
`
	if err := os.WriteFile(filepath.Join(dir, "scratch.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Dir: dir, Checks: "ceildiv"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Suppressed != 0 {
		t.Fatalf("suppressed = %d, want 0 (malformed directives must not suppress)", res.Suppressed)
	}
	var ignoreDiags, ceildivDiags int
	for _, d := range res.Diags {
		switch d.Check {
		case "ignore":
			ignoreDiags++
		case "ceildiv":
			ceildivDiags++
		}
	}
	if ignoreDiags != 2 {
		t.Fatalf("got %d directive findings, want 2 (unknown check, missing reason):\n%s",
			ignoreDiags, diagsString(res.Diags))
	}
	if ceildivDiags != 2 {
		t.Fatalf("got %d ceildiv findings, want 2 (nothing suppressed):\n%s",
			ceildivDiags, diagsString(res.Diags))
	}
	for _, want := range []string{"unknown check \"ceildvi\"", "has no reason"} {
		if !strings.Contains(diagsString(res.Diags), want) {
			t.Errorf("diagnostics missing %q:\n%s", want, diagsString(res.Diags))
		}
	}
}

func diagsString(ds []Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		fmt.Fprintln(&b, d)
	}
	return b.String()
}
