package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
)

// The interprocedural layer: a module-wide static call graph over every
// loaded package, built from the same go/types information the per-package
// checks already use. Module-level analyzers (keydrift, puredet) run on top
// of it through ModulePass; `securelint -graph` dumps it for debugging new
// checks.
//
// Resolution strategy, from most to least precise:
//
//   - Static calls (plain functions, package-qualified functions, methods on
//     concrete types) resolve to exactly one callee.
//   - Interface method calls resolve to the abstract method plus every
//     concrete method of a module-declared type whose method set satisfies
//     the interface (class-hierarchy style over the module's named types).
//   - Calls through function-typed values (variables, parameters, struct
//     fields — the scheduler/mapper pipeline stores hooks this way) resolve
//     to every module function whose address is taken somewhere and whose
//     signature matches the call site.
//
// The last two are over-approximations: reachability never misses a real
// callee that the module's own source can name, at the cost of some extra
// edges. Function literals are not separate nodes — a closure's body belongs
// to the function that lexically encloses it, which is sound for
// reachability (the closure cannot run unless its creator was reached).
// Calls to functions outside the module (stdlib, GOROOT) appear as edges to
// leaf callees with no node of their own, so checks can still classify them
// (puredet's time.Now detection). Test files are never part of the graph:
// module analyses describe the shipped code, not its tests.

// Graph is the module-wide call graph.
type Graph struct {
	// Nodes maps every function declared (with a body) in the loaded
	// packages to its node. Callees outside the module have edges pointing
	// at them but no node.
	Nodes map[*types.Func]*FuncNode

	fset *token.FileSet
}

// FuncNode is one declared function or method and its outgoing calls.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls lists the resolved call sites in source order.
	Calls []Call
}

// Call is one resolved call edge.
type Call struct {
	// Callee is the resolved target; it may have no node when declared
	// outside the loaded packages (stdlib) or when it is an abstract
	// interface method.
	Callee *types.Func
	// Pos is the call site.
	Pos token.Pos
	// Dynamic marks edges found by approximation (interface method-set
	// resolution, address-taken function values) rather than direct naming.
	Dynamic bool
}

// BuildGraph constructs the call graph over the given packages. The packages
// must share one FileSet and one type-checking session (one loader), so
// types.Func objects are identical across package boundaries.
func BuildGraph(pkgs []*Package) *Graph {
	g := &Graph{Nodes: map[*types.Func]*FuncNode{}}
	if len(pkgs) == 0 {
		return g
	}
	g.fset = pkgs[0].Fset

	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.Nodes[obj] = &FuncNode{Obj: obj, Decl: fd, Pkg: pkg}
			}
		}
	}

	concrete := concreteNamedTypes(pkgs)
	taken := addressTakenFuncs(pkgs)

	for _, node := range g.Nodes {
		g.resolveCalls(node, concrete, taken)
		sort.Slice(node.Calls, func(i, j int) bool {
			a, b := node.Calls[i], node.Calls[j]
			if a.Pos != b.Pos {
				return a.Pos < b.Pos
			}
			return a.Callee.FullName() < b.Callee.FullName()
		})
	}
	return g
}

// concreteNamedTypes collects every non-interface named type declared at
// package level in the loaded packages, sorted by name for deterministic
// edge construction.
func concreteNamedTypes(pkgs []*Package) []*types.Named {
	var out []*types.Named
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			out = append(out, named)
		}
	}
	return out
}

// addressTakenFuncs collects module functions whose value escapes — referenced
// anywhere outside call position (assigned to a variable or struct field,
// passed as an argument, stored in a composite literal). These are the
// candidate targets of calls through function-typed values.
func addressTakenFuncs(pkgs []*Package) map[*types.Func]bool {
	taken := map[*types.Func]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			// First mark every expression that is the callee of a call, so
			// the second walk can tell a reference from an invocation.
			callPos := map[ast.Node]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fun := unparen(call.Fun)
				callPos[fun] = true
				if sel, ok := fun.(*ast.SelectorExpr); ok {
					callPos[sel.Sel] = true
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || callPos[id] {
					return true
				}
				if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
					taken[fn] = true
				}
				return true
			})
		}
	}
	return taken
}

// resolveCalls walks one function body (closures included) and records an
// edge per call site.
func (g *Graph) resolveCalls(node *FuncNode, concrete []*types.Named, taken map[*types.Func]bool) {
	info := node.Pkg.Info
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := unparen(call.Fun)
		if tv, ok := info.Types[fun]; ok && tv.IsType() {
			return true // conversion, not a call
		}
		switch f := fun.(type) {
		case *ast.Ident:
			switch obj := info.Uses[f].(type) {
			case *types.Func:
				node.addCall(obj, call.Pos(), false)
			case *types.Builtin, *types.TypeName, nil:
				// len/cap/append/...; conversions handled above.
			default:
				// Call through a function-typed variable or parameter.
				g.addDynamicCalls(node, call, taken)
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[f]; ok {
				switch sel.Kind() {
				case types.MethodVal, types.MethodExpr:
					m, ok := sel.Obj().(*types.Func)
					if !ok {
						return true
					}
					if isInterfaceMethod(m) {
						node.addCall(m, call.Pos(), false)
						for _, impl := range implementations(m, concrete) {
							node.addCall(impl, call.Pos(), true)
						}
					} else {
						node.addCall(m, call.Pos(), false)
					}
				case types.FieldVal:
					// Call through a function-typed struct field.
					g.addDynamicCalls(node, call, taken)
				}
				return true
			}
			if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
				// Package-qualified function (pkg.Fn) or method expression
				// on an imported type.
				node.addCall(fn, call.Pos(), false)
				return true
			}
			// Package-level variable of function type (pkg.Hook(...)).
			g.addDynamicCalls(node, call, taken)
		case *ast.FuncLit:
			// The literal's body is walked as part of this node; calling it
			// immediately adds nothing new.
		default:
			// Call of a call's result, an indexed function slice, etc.
			g.addDynamicCalls(node, call, taken)
		}
		return true
	})
}

func (n *FuncNode) addCall(callee *types.Func, pos token.Pos, dynamic bool) {
	n.Calls = append(n.Calls, Call{Callee: callee, Pos: pos, Dynamic: dynamic})
}

// addDynamicCalls resolves a call through a function-typed value to every
// address-taken module function with a matching signature.
func (g *Graph) addDynamicCalls(node *FuncNode, call *ast.CallExpr, taken map[*types.Func]bool) {
	t := node.Pkg.Info.TypeOf(call.Fun)
	if t == nil {
		return
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return
	}
	var cands []*types.Func
	for fn := range taken {
		if g.Nodes[fn] == nil {
			continue // only module functions can be analyzed anyway
		}
		if sigMatches(fn.Type().(*types.Signature), sig) {
			cands = append(cands, fn)
		}
	}
	// Map iteration above is unordered; sort before the edges are recorded
	// so the graph (and everything derived from it) is deterministic.
	sort.Slice(cands, func(i, j int) bool { return cands[i].FullName() < cands[j].FullName() })
	for _, fn := range cands {
		node.addCall(fn, call.Pos(), true)
	}
}

// sigMatches compares two signatures ignoring receivers (a method value's
// receiver is bound before the value is stored, so only the visible
// parameters and results identify it at a dynamic call site).
func sigMatches(a, b *types.Signature) bool {
	stripped := func(s *types.Signature) *types.Signature {
		if s.Recv() == nil {
			return s
		}
		return types.NewSignatureType(nil, nil, nil, s.Params(), s.Results(), s.Variadic())
	}
	return types.Identical(stripped(a), stripped(b))
}

func isInterfaceMethod(m *types.Func) bool {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// implementations resolves an interface method to the concrete methods of
// every module type that satisfies the interface.
func implementations(m *types.Func, concrete []*types.Named) []*types.Func {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, named := range concrete {
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			out = append(out, fn)
		}
	}
	return out
}

// FuncsNamed returns the functions declared in pkg with the given name (a
// package can declare one function and several same-named methods), sorted
// by position.
func (g *Graph) FuncsNamed(pkg *Package, name string) []*types.Func {
	var out []*types.Func
	for obj, node := range g.Nodes {
		if node.Pkg == pkg && obj.Name() == name {
			out = append(out, obj)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// ReachableFrom walks the graph breadth-first from the seed functions and
// returns, for every reachable function (seeds included, leaf callees
// included), the seed that first reached it — the witness named in
// diagnostics.
func (g *Graph) ReachableFrom(seeds []*types.Func) map[*types.Func]*types.Func {
	witness := map[*types.Func]*types.Func{}
	var queue []*types.Func
	for _, s := range seeds {
		if s == nil {
			continue
		}
		if _, ok := witness[s]; ok {
			continue
		}
		witness[s] = s
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := g.Nodes[fn]
		if node == nil {
			continue // leaf: external function or abstract method
		}
		for _, c := range node.Calls {
			if _, ok := witness[c.Callee]; ok {
				continue
			}
			witness[c.Callee] = witness[fn]
			queue = append(queue, c.Callee)
		}
	}
	return witness
}

// Dump writes a deterministic listing of the graph: every module function
// sorted by full name, each followed by its call sites in source order.
// Dynamic (approximated) edges are marked.
func (g *Graph) Dump(w io.Writer) {
	nodes := make([]*FuncNode, 0, len(g.Nodes))
	var sites int
	for _, n := range g.Nodes {
		nodes = append(nodes, n)
		sites += len(n.Calls)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Obj.FullName() < nodes[j].Obj.FullName() })
	fmt.Fprintf(w, "call graph: %d functions, %d call edges\n", len(nodes), sites)
	for _, n := range nodes {
		pos := g.fset.Position(n.Decl.Pos())
		fmt.Fprintf(w, "func %s (%s:%d)\n", n.Obj.FullName(), pos.Filename, pos.Line)
		for _, c := range n.Calls {
			mark := ""
			if c.Dynamic {
				mark = " [dynamic]"
			}
			fmt.Fprintf(w, "  -> %s (line %d)%s\n", c.Callee.FullName(), g.fset.Position(c.Pos).Line, mark)
		}
	}
}
