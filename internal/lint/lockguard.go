package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerLockGuard enforces the `// guarded by <mu>` field annotations used
// in the sharded mapper and authblock caches. A field carrying the
// annotation may only be accessed while the annotated mutex of the same
// struct value is held. The check is a statement-level abstract walk, not a
// full flow analysis: lock state is tracked per "base.mu" expression text,
// branches are merged by intersection, and a branch that terminates (early
// return after Unlock — the cache fast path) does not leak its lock state
// into the code after the branch. Deferred Unlocks hold to function exit.
// Function literals are scanned with an empty lock state, since they may
// run anywhere.
var AnalyzerLockGuard = &Analyzer{
	Name: "lockguard",
	Doc: "fields annotated `// guarded by <mu>` may only be accessed while the " +
		"annotated mutex of the same struct value is held on the same base expression",
	Run: runLockGuard,
}

// guardKey identifies an annotated field by struct type name and field name.
type guardKey struct {
	typeName string
	field    string
}

func runLockGuard(pass *Pass) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return
	}
	s := &guardScanner{pass: pass, guards: guards}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				s.scanStmts(fn.Body.List, lockSet{})
			}
		}
	}
}

// collectGuards scans struct declarations for `guarded by <mu>` comments on
// fields and returns (struct, field) -> mutex field name.
func collectGuards(pass *Pass) map[guardKey]string {
	guards := map[guardKey]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					guards[guardKey{ts.Name.Name, name.Name}] = mu
				}
			}
			return true
		})
	}
	return guards
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range [2]*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, ok := strings.CutPrefix(text, "guarded by "); ok {
				return strings.Fields(rest)[0]
			}
		}
	}
	return ""
}

// lockSet maps "base.mu" expression text to whether that mutex is held.
type lockSet map[string]bool

func (l lockSet) clone() lockSet {
	c := lockSet{}
	for k, v := range l {
		if v {
			c[k] = true
		}
	}
	return c
}

// intersect keeps only locks held in both sets.
func (l lockSet) intersect(other lockSet) {
	for k, v := range l {
		if v && !other[k] {
			delete(l, k)
		}
	}
}

func (l lockSet) replaceWith(other lockSet) {
	for k := range l {
		delete(l, k)
	}
	for k, v := range other {
		if v {
			l[k] = true
		}
	}
}

type guardScanner struct {
	pass   *Pass
	guards map[guardKey]string
}

func (s *guardScanner) scanStmts(stmts []ast.Stmt, held lockSet) {
	for _, st := range stmts {
		s.scanStmt(st, held)
	}
}

// scanStmt processes one statement, mutating held to the state after it.
func (s *guardScanner) scanStmt(st ast.Stmt, held lockSet) {
	switch st := st.(type) {
	case nil:
	case *ast.BlockStmt:
		s.scanStmts(st.List, held)
	case *ast.LabeledStmt:
		s.scanStmt(st.Stmt, held)
	case *ast.IfStmt:
		s.scanStmt(st.Init, held)
		s.scanNode(st.Cond, held)
		bodyHeld := held.clone()
		s.scanStmts(st.Body.List, bodyHeld)
		elseHeld := held.clone()
		elseTerm := false
		if st.Else != nil {
			s.scanStmt(st.Else, elseHeld)
			elseTerm = terminates(st.Else)
		}
		switch bodyTerm := terminates(st.Body); {
		case bodyTerm && elseTerm:
			// Both paths exit: code after the if is unreachable from here;
			// keep the pre-if state.
		case bodyTerm:
			held.replaceWith(elseHeld)
		case elseTerm:
			held.replaceWith(bodyHeld)
		default:
			bodyHeld.intersect(elseHeld)
			held.replaceWith(bodyHeld)
		}
	case *ast.ForStmt:
		s.scanStmt(st.Init, held)
		s.scanNode(st.Cond, held)
		bodyHeld := held.clone()
		s.scanStmts(st.Body.List, bodyHeld)
		s.scanStmt(st.Post, bodyHeld)
		held.intersect(bodyHeld)
	case *ast.RangeStmt:
		s.scanNode(st.X, held)
		bodyHeld := held.clone()
		s.scanStmts(st.Body.List, bodyHeld)
		held.intersect(bodyHeld)
	case *ast.SwitchStmt:
		s.scanStmt(st.Init, held)
		s.scanNode(st.Tag, held)
		s.scanClauses(st.Body, held)
	case *ast.TypeSwitchStmt:
		s.scanStmt(st.Init, held)
		s.scanStmt(st.Assign, held)
		s.scanClauses(st.Body, held)
	case *ast.SelectStmt:
		s.scanClauses(st.Body, held)
	case *ast.DeferStmt, *ast.GoStmt:
		// Arguments are evaluated now; a deferred/async Unlock does not
		// change the lexical lock state, and a function literal body runs at
		// an unknown time, so it is scanned with an empty state inside
		// scanNode. Lock/Unlock effects of the call itself are dropped.
		var call *ast.CallExpr
		if d, ok := st.(*ast.DeferStmt); ok {
			call = d.Call
		} else {
			call = st.(*ast.GoStmt).Call
		}
		for _, arg := range call.Args {
			s.scanNode(arg, held)
		}
		if fl, ok := unparen(call.Fun).(*ast.FuncLit); ok {
			s.scanStmts(fl.Body.List, lockSet{})
		}
	default:
		s.scanNode(st, held)
	}
}

// scanClauses merges case/comm clause states by intersection with the
// pre-switch state (a switch without a default may run no clause).
func (s *guardScanner) scanClauses(body *ast.BlockStmt, held lockSet) {
	merged := held.clone()
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm != nil {
				stmts = append([]ast.Stmt{cl.Comm}, cl.Body...)
			} else {
				stmts = cl.Body
			}
		}
		clauseHeld := held.clone()
		s.scanStmts(stmts, clauseHeld)
		if !stmtsTerminate(stmts) {
			merged.intersect(clauseHeld)
		}
	}
	held.replaceWith(merged)
}

// scanNode applies lock/unlock/access events found in a simple statement or
// expression, in position order. Function literal bodies are scanned
// separately with an empty lock state.
func (s *guardScanner) scanNode(n ast.Node, held lockSet) {
	if n == nil || isNilStmt(n) {
		return
	}
	type event struct {
		pos  token.Pos
		kind int // 0 lock, 1 unlock, 2 access
		id   string
		name string
	}
	var events []event
	ast.Inspect(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			s.scanStmts(node.Body.List, lockSet{})
			return false
		case *ast.CallExpr:
			sel, ok := node.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			var kind int
			switch sel.Sel.Name {
			case "Lock", "RLock":
				kind = 0
			case "Unlock", "RUnlock":
				kind = 1
			default:
				return true
			}
			muSel, ok := unparen(sel.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			events = append(events, event{
				pos: node.Pos(), kind: kind,
				id: types.ExprString(muSel.X) + "." + muSel.Sel.Name,
			})
		case *ast.SelectorExpr:
			key, ok := guardedField(s.pass, node, s.guards)
			if !ok {
				return true
			}
			events = append(events, event{
				pos: node.Pos(), kind: 2,
				id:   types.ExprString(node.X) + "." + s.guards[key],
				name: types.ExprString(node.X) + "." + key.field,
			})
		}
		return true
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	for _, ev := range events {
		switch ev.kind {
		case 0:
			held[ev.id] = true
		case 1:
			delete(held, ev.id)
		case 2:
			if !held[ev.id] {
				s.pass.Reportf(ev.pos, "%s is guarded but accessed without holding %s", ev.name, ev.id)
			}
		}
	}
}

func isNilStmt(n ast.Node) bool {
	switch n := n.(type) {
	case ast.Stmt:
		return n == nil
	case ast.Expr:
		return n == nil
	}
	return false
}

// terminates reports whether control cannot flow past the statement.
func terminates(st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return st.Tok == token.BREAK || st.Tok == token.CONTINUE || st.Tok == token.GOTO
	case *ast.BlockStmt:
		return stmtsTerminate(st.List)
	case *ast.LabeledStmt:
		return terminates(st.Stmt)
	case *ast.IfStmt:
		return st.Else != nil && terminates(st.Body) && terminates(st.Else)
	case *ast.ExprStmt:
		if call, ok := unparen(st.X).(*ast.CallExpr); ok {
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				return fun.Name == "panic"
			case *ast.SelectorExpr:
				name := types.ExprString(fun)
				return name == "os.Exit" || strings.HasPrefix(fun.Sel.Name, "Fatal")
			}
		}
	}
	return false
}

func stmtsTerminate(stmts []ast.Stmt) bool {
	return len(stmts) > 0 && terminates(stmts[len(stmts)-1])
}

// guardedField resolves sel to an annotated (struct, field) pair, if any.
func guardedField(pass *Pass, sel *ast.SelectorExpr, guards map[guardKey]string) (guardKey, bool) {
	t := pass.TypeOf(sel.X)
	if t == nil {
		return guardKey{}, false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return guardKey{}, false
	}
	key := guardKey{named.Obj().Name(), sel.Sel.Name}
	_, ok = guards[key]
	return key, ok
}
