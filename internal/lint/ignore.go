package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// ignoreDirective is the comment prefix that suppresses a finding.
const ignoreDirective = "securelint:ignore"

// storekeyDirective is the waiver prefix the keydrift check honours; it is
// recognised here only so a comment starting with it is never mistaken for a
// malformed ignore directive.
const storekeyDirective = "storekey:exclude"

// ignoreIndex records, per file and line, which checks are suppressed there.
// A directive suppresses findings on its own line (trailing comment) and on
// the line directly below it (directive placed above the statement).
type ignoreIndex map[string]map[int][]string

// knownCheckNames returns the valid directive targets: every analyzer name
// plus "all", sorted for stable error messages.
func knownCheckNames() []string {
	names := []string{"all"}
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}

// parseIgnoreDirective parses one comment's text. It returns (nil, "", nil)
// when the comment is not an ignore directive at all, the named checks and
// reason when well-formed, and an error when the directive is malformed — an
// unknown check name or a missing reason. A malformed directive suppresses
// nothing; surfacing it as a finding is what keeps a typo'd check name from
// silently rotting in place.
func parseIgnoreDirective(comment string) (checks []string, reason string, err error) {
	text := comment
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, ignoreDirective) {
		return nil, "", nil
	}
	rest := text[len(ignoreDirective):]
	if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
		return nil, "", nil // securelint:ignoreXYZ is some other word, not this directive
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, "", fmt.Errorf("malformed //%s directive: missing check name and reason", ignoreDirective)
	}
	valid := map[string]bool{}
	for _, n := range knownCheckNames() {
		valid[n] = true
	}
	for _, check := range strings.Split(fields[0], ",") {
		check = strings.TrimSpace(check)
		if check == "" {
			continue
		}
		if !valid[check] {
			return nil, "", fmt.Errorf("//%s names unknown check %q (known: %s); the directive suppresses nothing",
				ignoreDirective, check, strings.Join(knownCheckNames(), ", "))
		}
		checks = append(checks, check)
	}
	if len(checks) == 0 {
		return nil, "", fmt.Errorf("malformed //%s directive: no check named", ignoreDirective)
	}
	reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
	if reason == "" {
		return nil, "", fmt.Errorf("//%s %s has no reason; document why the finding is safe to suppress",
			ignoreDirective, fields[0])
	}
	return checks, reason, nil
}

// collectIgnores indexes the well-formed suppression directives of the given
// files and returns a diagnostic (check name "ignore") for every malformed
// one. Malformed directives never suppress.
func collectIgnores(fset *token.FileSet, files []*ast.File) (ignoreIndex, []Diagnostic) {
	idx := ignoreIndex{}
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				checks, _, err := parseIgnoreDirective(c.Text)
				pos := fset.Position(c.Pos())
				if err != nil {
					diags = append(diags, Diagnostic{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Check: "ignore", Message: err.Error(),
					})
					continue
				}
				if len(checks) == 0 {
					continue
				}
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					idx[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], checks...)
			}
		}
	}
	return idx, diags
}

// matches reports whether a finding of the named check at position p is
// suppressed by a directive on the same or the preceding line.
func (idx ignoreIndex) matches(check string, p token.Position) bool {
	byLine := idx[p.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, c := range byLine[line] {
			if c == check || c == "all" {
				return true
			}
		}
	}
	return false
}
