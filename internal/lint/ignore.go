package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is the comment prefix that suppresses a finding.
const ignoreDirective = "securelint:ignore"

// ignoreIndex records, per file and line, which checks are suppressed there.
// A directive suppresses findings on its own line (trailing comment) and on
// the line directly below it (directive placed above the statement).
type ignoreIndex map[string]map[int][]string

func collectIgnores(fset *token.FileSet, files []*ast.File) ignoreIndex {
	idx := ignoreIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, ignoreDirective))
				if len(fields) == 0 {
					continue // malformed: no check named
				}
				pos := fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					idx[pos.Filename] = byLine
				}
				for _, check := range strings.Split(fields[0], ",") {
					if check = strings.TrimSpace(check); check != "" {
						byLine[pos.Line] = append(byLine[pos.Line], check)
					}
				}
			}
		}
	}
	return idx
}

// matches reports whether a finding of the named check at position p is
// suppressed by a directive on the same or the preceding line.
func (idx ignoreIndex) matches(check string, p token.Position) bool {
	byLine := idx[p.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, c := range byLine[line] {
			if c == check || c == "all" {
				return true
			}
		}
	}
	return false
}
