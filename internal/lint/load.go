package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, ready for analysis.
type Package struct {
	// Path is the import path (or, for packages outside a module, the
	// directory name).
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// loader parses and type-checks packages from source. Module-local imports
// are resolved against the enclosing go.mod; everything else is handed to
// the standard library's source importer (which finds it in GOROOT), so the
// tool works with zero dependencies beyond the Go distribution itself.
type loader struct {
	fset       *token.FileSet
	moduleDir  string // "" when linting outside a module (fixtures)
	modulePath string
	std        types.Importer
	pkgs       map[string]*Package // memo for module-local imports (no test files)
	loading    map[string]bool     // import-cycle guard
}

func newLoader(dir string) (*loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir, modPath := findModule(abs)
	fset := token.NewFileSet()
	return &loader{
		fset:       fset,
		moduleDir:  modDir,
		modulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// findModule walks up from dir looking for a go.mod and returns the module
// root and module path ("", "" if none).
func findModule(dir string) (string, string) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest)
				}
			}
			return d, ""
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", ""
		}
		d = parent
	}
}

// importPathFor maps a directory to its import path within the module, or
// the base name when outside one (fixture packages).
func (l *loader) importPathFor(dir string) string {
	if l.moduleDir != "" {
		if rel, err := filepath.Rel(l.moduleDir, dir); err == nil && !strings.HasPrefix(rel, "..") {
			if rel == "." {
				return l.modulePath
			}
			return l.modulePath + "/" + filepath.ToSlash(rel)
		}
	}
	return filepath.Base(dir)
}

// Import implements types.Importer for the type-checker: module-local paths
// load recursively from source, the rest goes to the GOROOT source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.moduleDir != "" && (path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")) {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		pkg, err := l.load(filepath.Join(l.moduleDir, filepath.FromSlash(rel)), path, false)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// loadRoot loads a directory the user asked to lint.
func (l *loader) loadRoot(dir string, includeTests bool) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(abs, l.importPathFor(abs), includeTests)
}

func (l *loader) load(dir, path string, includeTests bool) (*Package, error) {
	// Imports never include test files, so the memo only serves those.
	if !includeTests {
		if pkg, ok := l.pkgs[path]; ok {
			return pkg, nil
		}
		if l.loading[path] {
			return nil, fmt.Errorf("lint: import cycle through %q", path)
		}
		l.loading[path] = true
		defer delete(l.loading, path)
	}

	names, err := goFileNames(dir, includeTests)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		// Skip external test packages (package foo_test): they are a
		// different package and would clash with the primary one.
		if strings.HasSuffix(f.Name.Name, "_test") {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no lintable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w (%d errors)", path, typeErrs[0], len(typeErrs))
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	if !includeTests {
		l.pkgs[path] = pkg
	}
	return pkg, nil
}

// modulePackages returns every package the run loaded without test files —
// the root directories plus all transitive module-local imports — sorted by
// import path. This is the package set module-wide analyses (and the call
// graph) operate on: non-test loads are memoised in l.pkgs, so types.Func
// identity holds across all of them. Roots containing only test files are
// skipped; they have no shipped code for a module analysis to see.
func (l *loader) modulePackages(dirs []string) ([]*Package, error) {
	for _, d := range dirs {
		abs, err := filepath.Abs(d)
		if err != nil {
			return nil, err
		}
		names, err := goFileNames(abs, false)
		if err != nil {
			return nil, err
		}
		if len(names) == 0 {
			continue
		}
		if _, err := l.load(abs, l.importPathFor(abs), false); err != nil {
			return nil, err
		}
	}
	pkgs := make([]*Package, 0, len(l.pkgs))
	for _, pkg := range l.pkgs {
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// goFileNames lists the .go files of dir, sorted, excluding _test.go files
// unless includeTests.
func goFileNames(dir string, includeTests bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// expandPatterns resolves package patterns ("dir" or "dir/...") into the
// sorted list of package directories to lint. Walks skip testdata, vendor,
// hidden and underscore directories, matching the go tool's conventions.
func expandPatterns(base string, patterns []string, includeTests bool) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	join := func(p string) string {
		if filepath.IsAbs(p) {
			return filepath.Clean(p)
		}
		return filepath.Join(base, p)
	}
	add := func(dir string) error {
		ok, err := hasGoFiles(dir, includeTests)
		if err != nil {
			return err
		}
		if ok && !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	}
	for _, p := range patterns {
		if rest, ok := strings.CutSuffix(p, "..."); ok {
			root := join(filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			if rest == "" {
				root = base
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				return add(path)
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		if err := add(join(filepath.FromSlash(p))); err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string, includeTests bool) (bool, error) {
	if _, err := os.Stat(dir); err != nil {
		return false, err
	}
	names, err := goFileNames(dir, includeTests)
	if err != nil {
		return false, err
	}
	return len(names) > 0, nil
}
