package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerCeilDiv flags hand-rolled ceiling division. The repo once carried
// four private ceilDiv copies with diverging degenerate-divisor behaviour
// (one returned the dividend for b <= 0, the rest returned 0); the analytical
// AuthBlock and traffic counting depends on every ceiling division agreeing,
// so the only allowed implementation lives in internal/num.
var AnalyzerCeilDiv = &Analyzer{
	Name: "ceildiv",
	Doc: "flags hand-rolled (a+b-1)/b ceiling division outside internal/num; " +
		"use num.CeilDiv / num.CeilDiv64 so the degenerate-divisor policy stays uniform",
	Run: runCeilDiv,
}

func runCeilDiv(pass *Pass) {
	// internal/num is the one place allowed to spell the idiom out.
	if strings.HasSuffix(pass.Path, "internal/num") {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			div, ok := n.(*ast.BinaryExpr)
			if !ok || div.Op != token.QUO {
				return true
			}
			den := types.ExprString(unparen(div.Y))
			for _, cand := range ceilDivAddends(unparen(div.X)) {
				if types.ExprString(cand) == den {
					pass.Reportf(div.Pos(),
						"hand-rolled ceiling division (a + %s - 1) / %s; use num.CeilDiv or num.CeilDiv64",
						den, den)
					return true
				}
			}
			return true
		})
	}
}

// ceilDivAddends returns the candidate divisor sub-expressions b of a
// numerator shaped like a+b-1 (also matching a+(b-1) and (b-1)+a).
func ceilDivAddends(num ast.Expr) []ast.Expr {
	var out []ast.Expr
	switch e := num.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.SUB:
			// a + b - 1: rightmost addend of the left ADD chain is b.
			if isIntLit(e.Y, "1") {
				if add, ok := unparen(e.X).(*ast.BinaryExpr); ok && add.Op == token.ADD {
					out = append(out, unparen(add.Y))
				}
			}
		case token.ADD:
			// a + (b - 1) or (b - 1) + a.
			for _, side := range [2]ast.Expr{e.X, e.Y} {
				if sub, ok := unparen(side).(*ast.BinaryExpr); ok && sub.Op == token.SUB && isIntLit(sub.Y, "1") {
					out = append(out, unparen(sub.X))
				}
			}
		}
	}
	return out
}

func isIntLit(e ast.Expr, lit string) bool {
	bl, ok := unparen(e).(*ast.BasicLit)
	return ok && bl.Kind == token.INT && bl.Value == lit
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
