// Package puredet is the golden fixture for the puredet check: a cached
// entry point (CachedEntry, seeded in the check's table) reaching
// determinism violations through static calls, a function-typed field, and
// an interface method set — plus unreachable and allowlisted functions that
// must stay clean, and a suppressed case.
package puredet

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

// request carries the cached request's own seed: randomness derived from it
// is deterministic per request and allowed.
type request struct {
	Seed  int64
	Items map[string]int
}

// hooks stores a function-typed field; calls through it resolve to every
// address-taken function with a matching signature.
type hooks struct {
	eval func(int) int
}

// CachedEntry is the fixture's cached entry point (the check's seed).
func CachedEntry(r request) int {
	h := hooks{eval: scale}
	total := h.eval(stamp())
	total += seededRand(r)
	total += leakOrder(r.Items)
	total += viaInterface(worker{})
	total += suppressed()
	allowedSink(total)
	return total
}

// stamp is reached by a static call.
func stamp() int {
	t := time.Now() // want "calls time.Now on a cached path .reachable from .*CachedEntry"
	return int(t.Unix())
}

// scale is reachable only through the function-typed hooks.eval field.
func scale(x int) int {
	if os.Getenv("PUREDET_DEBUG") != "" { // want "reads os.Getenv on a cached path"
		return 0
	}
	return 2 * x
}

// seededRand contrasts request-derived randomness (allowed) with wall-clock
// seeding and the process-global source (both flagged).
func seededRand(r request) int {
	rng := rand.New(rand.NewSource(r.Seed))
	bad := rand.New(rand.NewSource(time.Now().UnixNano())) // want "seeds rand.NewSource from a non-request value" "calls time.Now on a cached path"
	n := rand.Intn(3)                                      // want "calls math/rand.Intn .process-global source. on a cached path"
	return rng.Intn(10) + bad.Intn(10) + n
}

// leakOrder shows the allowed collect-then-sort idiom next to a
// last-writer-wins assignment that leaks map order.
func leakOrder(items map[string]int) int {
	var names []string
	for name := range items {
		names = append(names, name)
	}
	sort.Strings(names)
	out := 0
	for _, name := range names {
		out += items[name]
	}
	var first string
	for name := range items {
		first = name // want "assigns first during map iteration"
	}
	_ = first
	return out
}

// runner reaches worker.run through the interface method set.
type runner interface{ run() int }

type worker struct{}

func (w worker) run() int {
	var total float64
	m := map[int]float64{1: 1.5, 2: 2.5}
	for _, v := range m {
		total += v // want "accumulates float total in map iteration order"
	}
	return int(total)
}

func viaInterface(r runner) int { return r.run() }

// allowedSink is allowlisted in the check's sink table: its wall-clock use
// is never reported and nothing past it is traversed.
func allowedSink(total int) {
	_ = time.Now().Add(time.Duration(total))
}

// suppressed is the golden suppression case.
func suppressed() int {
	//securelint:ignore puredet fixture: suppression case for the golden test
	return int(time.Now().Unix())
}

// notReachable is never called from the seed: despite the wall-clock read it
// must produce no finding, pinning the reachability boundary.
func notReachable() int64 {
	return time.Now().Unix()
}
