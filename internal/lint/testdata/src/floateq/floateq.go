// Package floateq is the golden fixture for the floateq analyzer.
package floateq

// Eq compares floats exactly and must be flagged.
func Eq(a, b float64) bool {
	return a == b // want "float equality"
}

// Neq compares floats exactly and must be flagged.
func Neq(a, b float32) bool {
	return a != b // want "float equality"
}

// IsNaN is the idiomatic NaN test and must not be flagged.
func IsNaN(x float64) bool {
	return x != x
}

// Ints compares integers and must not be flagged.
func Ints(a, b int) bool {
	return a == b
}

// Ordered float comparisons are fine.
func Less(a, b float64) bool {
	return a < b
}

// Suppressed carries the documented-false-positive directive.
func Suppressed(a, b float64) bool {
	return a == b //securelint:ignore floateq fixture: comparing stored sentinel values, no computed noise
}
