// Package lockguard is the golden fixture for the lockguard analyzer.
package lockguard

import "sync"

type shard struct {
	mu      sync.Mutex
	entries map[string]int // guarded by mu
	hits    int64          // guarded by mu
}

// Locked accesses the guarded field under the annotated mutex and must not
// be flagged.
func Locked(s *shard, k string) int {
	s.mu.Lock()
	v := s.entries[k]
	s.mu.Unlock()
	return v
}

// Unlocked must be flagged.
func Unlocked(s *shard, k string) int {
	return s.entries[k] // want "accessed without holding"
}

// AfterUnlock must be flagged: the lock was already released.
func AfterUnlock(s *shard) int64 {
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	return s.hits // want "accessed without holding"
}

// EarlyReturn is the cache fast path: the branch unlocks and returns, so the
// fall-through still holds the lock and must not be flagged.
func EarlyReturn(s *shard, k string) (int, bool) {
	s.mu.Lock()
	if v, ok := s.entries[k]; ok {
		s.mu.Unlock()
		return v, true
	}
	s.entries[k] = 1
	s.mu.Unlock()
	return 0, false
}

// Deferred unlock holds to function exit and must not be flagged.
func Deferred(s *shard, k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entries[k]
}

// OtherShard locks a different value's mutex and must be flagged.
func OtherShard(a, b *shard, k string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return b.entries[k] // want "accessed without holding"
}

// Suppressed carries the documented-false-positive directive.
func Suppressed(s *shard) int {
	//securelint:ignore lockguard fixture: single-goroutine setup phase, no concurrent access yet
	return len(s.entries)
}
