// Package ceildiv is the golden fixture for the ceildiv analyzer: every
// line carrying a want expectation must produce a matching finding, every
// other line must stay silent.
package ceildiv

// SubForm is the (a + b - 1) / b spelling.
func SubForm(a, b int) int {
	return (a + b - 1) / b // want "hand-rolled ceiling division"
}

// AddForm is the (a + (b - 1)) / b spelling.
func AddForm(a, b int64) int64 {
	x := (a + (b - 1)) / b // want "hand-rolled ceiling division"
	return x
}

// PlainDiv is ordinary flooring division and must not be flagged.
func PlainDiv(a, b int) int {
	return a / b
}

// DifferentDivisor adds c-1 but divides by b, which is not a ceiling
// division, and must not be flagged.
func DifferentDivisor(a, b, c int) int {
	return (a + c - 1) / b
}

// Suppressed carries the documented-false-positive directive.
func Suppressed(a, b int) int {
	//securelint:ignore ceildiv fixture: suppression case for the golden test
	return (a + b - 1) / b
}
