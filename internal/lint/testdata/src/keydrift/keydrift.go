// Package keydrift is the golden fixture for the keydrift check: persist*
// functions returning store.Key whose request-type fields are variously
// encoded, missed, waived, and suppressed. The `// want` comments are
// bidirectional expectations for the golden test.
package keydrift

import "secureloop/internal/store"

// request is a fully-covered persisted request type.
type request struct {
	a      int
	b      int
	mode   string
	nested sub
	label  string // waived below: a display label, not part of the identity
}

// sub is a nested request struct reached through request.nested.
type sub struct {
	x int
	y float64
}

// storekey:exclude keydrift.request.label display label; results do not depend on it

// persistGoodKey encodes every non-waived field, the nested struct through a
// helper in the encode cluster: complete coverage, no findings.
func persistGoodKey(r request) store.Key {
	e := store.NewEnc().String("fixture.good")
	e.Int(int64(r.a)).Int(int64(r.b)).String(r.mode)
	encodeSub(e, r.nested)
	return e.Key()
}

// encodeSub takes a *store.Enc, so the fields it reads count as covered for
// any persist function that reaches it.
func encodeSub(e *store.Enc, s sub) {
	e.Int(int64(s.x)).Float(s.y)
}

// partial drops one scalar and one whole nested struct from its key.
type partial struct {
	a      int
	b      int
	nested sub
}

func persistPartialKey(p partial) store.Key { // want "persistPartialKey does not encode keydrift.partial.b" "persistPartialKey does not encode keydrift.partial.nested"
	e := store.NewEnc().String("fixture.partial")
	e.Int(int64(p.a))
	return e.Key()
}

// deep covers its nested field itself but misses a field inside it: the
// finding names the inner type, and only the missed leaf is reported.
type deep struct {
	head  int
	inner leaf
}

type leaf struct {
	v    int
	skew float64
}

func persistDeepKey(d deep) store.Key { // want "persistDeepKey does not encode keydrift.leaf.skew"
	e := store.NewEnc().String("fixture.deep")
	e.Int(int64(d.head)).Int(int64(d.inner.v))
	return e.Key()
}

// scratch is the suppression case: the finding on the declaration line is
// silenced by the directive above it.
type scratch struct {
	q int
}

//securelint:ignore keydrift fixture: suppression case for the golden test
func persistScratchKey(s scratch) store.Key {
	return store.NewEnc().String("fixture.scratch").Key()
}

// A waiver naming a field that exists nowhere is itself a finding — typos
// must not silently waive nothing.
// storekey:exclude keydrift.request.nosuch typo in the field name // want "keydrift.request.nosuch, which is not a field of any persisted request type"

// A waiver whose path is not pkg.Type.Field is malformed.
// storekey:exclude request.label missing the package segment // want "must have the form pkg.Type.Field"
