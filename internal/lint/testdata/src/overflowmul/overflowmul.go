// Package overflowmul is the golden fixture for the overflowmul analyzer.
package overflowmul

// Volume multiplies two non-constant ints and must be flagged.
func Volume(a, b int) int {
	return a * b // want "int product"
}

// NamedInt products are still raw int underneath and must be flagged.
type count int

func NamedVolume(a, b count) count {
	return a * b // want "int product"
}

// ConstScale has a constant operand and must not be flagged.
func ConstScale(a int) int {
	return a * 8
}

// Widened multiplies in int64 and must not be flagged.
func Widened(a, b int64) int64 {
	return a * b
}

// Indexed products live inside a slice index: the slice bounds-checks the
// value at runtime, so they must not be flagged.
func Indexed(xs []int, i, j int) int {
	return xs[i*j]
}

// Lens multiplies two len results, which count already-materialised
// elements, and must not be flagged.
func Lens(xs, ys []int) int {
	return len(xs) * len(ys)
}

// Suppressed carries the documented-false-positive directive.
func Suppressed(a, b int) int {
	return a * b //securelint:ignore overflowmul fixture: suppression case for the golden test
}
