// Package ctxfirst is the golden fixture for the ctxfirst analyzer.
package ctxfirst

import "context"

// Layer, Config, Candidate and Seed stand in for the search packages' work
// types; DesignPoint stands in for the post-processing type the check
// exempts.
type Layer struct{ Name string }
type Config struct{ N int }
type Candidate struct{ Score float64 }
type Seed struct{ Tiles [4]int32 }
type DesignPoint struct{ Cycles int64 }

// SpawnNoCtx fans out goroutines without a context and must be flagged.
func SpawnNoCtx(n int) { // want "spawns goroutines"
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func() { done <- struct{}{} }()
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

// RangeLayersNoCtx loops over per-layer work without a context and must be
// flagged.
func RangeLayersNoCtx(layers []Layer) int { // want "ranges over Layer work"
	total := 0
	for _, l := range layers {
		total += len(l.Name)
	}
	return total
}

// RangePtrCandidates ranges over pointer elements; the pointer is
// dereferenced before the name check, so it must be flagged too.
func RangePtrCandidates(cs []*Candidate) float64 { // want "ranges over Candidate work"
	var best float64
	for _, c := range cs {
		if c.Score > best {
			best = c.Score
		}
	}
	return best
}

// ConfigMap ranges over a map of Config values and must be flagged.
func ConfigMap(m map[string]Config) int { // want "ranges over Config work"
	n := 0
	for _, c := range m {
		n += c.N
	}
	return n
}

// ApplySeeds evaluates warm-start seeds — each application is a full tiling
// evaluation on the search path — without a context, and must be flagged.
func ApplySeeds(seeds []Seed) int { // want "ranges over Seed work"
	n := 0
	for _, sd := range seeds {
		n += int(sd.Tiles[0])
	}
	return n
}

// ApplySeedsCtx is the convention for the same work. Must not be flagged.
func ApplySeedsCtx(ctx context.Context, seeds []Seed) int {
	n := 0
	for _, sd := range seeds {
		if ctx.Err() != nil {
			break
		}
		n += int(sd.Tiles[0])
	}
	return n
}

// CtxSecond does take a context, but not in first position, and must be
// flagged.
func CtxSecond(layers []Layer, ctx context.Context) { // want "not as its first parameter"
	for range layers {
		if ctx.Err() != nil {
			return
		}
	}
}

// Pool carries per-layer work; exported methods are held to the same
// convention as functions.
type Pool struct{ layers []Layer }

// Drain consumes the pool's layers and must be flagged despite being a
// method.
func (p *Pool) Drain() int { // want "ranges over Layer work"
	n := 0
	for _, l := range p.layers {
		n += len(l.Name)
	}
	return n
}

// CtxFirst is the convention: ctx comes first and cancellation reaches the
// loop. Must not be flagged.
func CtxFirst(ctx context.Context, layers []Layer) int {
	n := 0
	for _, l := range layers {
		if ctx.Err() != nil {
			break
		}
		n += len(l.Name)
	}
	return n
}

// Wrapper delegates to the Ctx variant with no loops or goroutines of its
// own — the backward-compatible wrapper pattern. Must not be flagged.
func Wrapper(layers []Layer) int {
	return CtxFirst(context.Background(), layers)
}

// ParetoScan ranges over DesignPoint values; post-processing of finished
// points is deliberately outside the convention. Must not be flagged.
func ParetoScan(points []DesignPoint) int64 {
	best := int64(1<<62 - 1)
	for _, p := range points {
		if p.Cycles < best {
			best = p.Cycles
		}
	}
	return best
}

// spawnHelper is unexported machinery and outside the convention.
func spawnHelper() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

// scratch is an unexported receiver type; its exported method is internal
// machinery and must not be flagged.
type scratch struct{ layers []Layer }

func (s *scratch) Sum() int {
	n := 0
	for _, l := range s.layers {
		n += len(l.Name)
	}
	return n
}

// SeedTable builds a lookup table from Config values at init time, never on
// the search path; the suppression documents the exception.
//
//securelint:ignore ctxfirst fixture: init-time table build, never on the search path
func SeedTable(cfgs []Config) int {
	n := 0
	for _, c := range cfgs {
		n += c.N
	}
	return n
}
