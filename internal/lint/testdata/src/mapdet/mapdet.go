// Package mapdet is the golden fixture for the mapdet analyzer.
package mapdet

import (
	"fmt"
	"sort"
)

// AppendNoSort collects keys without sorting them and must be flagged.
func AppendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "appends to keys"
	}
	return keys
}

// CollectThenSort is the allowed idiom: the appended slice is sorted in a
// following sibling statement.
func CollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// LastWriter leaks map order through a plain assignment and must be flagged.
func LastWriter(m map[string]int) string {
	var last string
	for k := range m {
		last = k // want "assigns last"
	}
	return last
}

// Commutative folds (op-assigns) are order-independent and must not be
// flagged.
func Commutative(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// PerKeyWrite stores into a map entry keyed by the range variable — a
// distinct entry per iteration — and must not be flagged.
func PerKeyWrite(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// SliceWrite indexes an outer slice with a value from the map and must be
// flagged: distinct indices are not guaranteed.
func SliceWrite(m map[int]int, out []int) {
	for k, v := range m {
		out[v] = k // want "writes out"
	}
}

// Printer publishes keys in iteration order and must be flagged.
func Printer(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want "calls fmt.Println"
	}
}

// SuppressedMinFold carries the documented-false-positive directive: a
// min-fold is order-independent but spelled as a plain assignment.
func SuppressedMinFold(m map[uint32]bool) uint32 {
	var minKey uint32
	found := false
	for k := range m {
		if !found || k < minKey {
			//securelint:ignore mapdet fixture: min-fold selects an order-independent extremum
			minKey, found = k, true
		}
	}
	return minKey
}
