// Package model is the analytical performance and energy model — the
// Timeloop-equivalent evaluation core. Given a layer, an architecture and a
// mapping it derives per-level access counts, the latency under the paper's
// pipelining assumption (every component double-buffered, so the slowest of
// compute, DRAM and cryptographic engines bounds throughput), and an energy
// roll-up using the accelergy tables.
package model

import (
	"math"

	"secureloop/internal/accelergy"
	"secureloop/internal/arch"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/mapping"
	"secureloop/internal/num"
	"secureloop/internal/workload"
)

// Stats is the evaluation result for one layer under one mapping.
type Stats struct {
	// Cycles is the layer latency: max(Compute, DRAM, Crypto).
	Cycles int64
	// ComputeCycles is the PE-array busy time.
	ComputeCycles int64
	// DRAMCycles is the off-chip transfer time (including authentication
	// overhead traffic when present).
	DRAMCycles int64
	// CryptoCycles is the busiest datatype engine group's processing time
	// (0 for unsecure designs).
	CryptoCycles int64

	// EnergyPJ is the total energy.
	EnergyPJ float64
	// DRAMEnergyPJ, CryptoEnergyPJ, OnChipEnergyPJ break the total down.
	DRAMEnergyPJ   float64
	CryptoEnergyPJ float64
	OnChipEnergyPJ float64

	// OffchipBits is the total off-chip traffic including overhead bits.
	OffchipBits int64
	// BaseOffchipBits is the data-only traffic (no hashes, no redundancy).
	BaseOffchipBits int64

	// Utilization is active PEs over total PEs.
	Utilization float64
}

// EDP returns the energy-delay product in pJ*cycles.
func (s Stats) EDP() float64 { return s.EnergyPJ * float64(s.Cycles) }

// Add accumulates another layer's stats (latencies add serially; traffic and
// energy add).
func (s *Stats) Add(o Stats) {
	s.Cycles += o.Cycles
	s.ComputeCycles += o.ComputeCycles
	s.DRAMCycles += o.DRAMCycles
	s.CryptoCycles += o.CryptoCycles
	s.EnergyPJ += o.EnergyPJ
	s.DRAMEnergyPJ += o.DRAMEnergyPJ
	s.CryptoEnergyPJ += o.CryptoEnergyPJ
	s.OnChipEnergyPJ += o.OnChipEnergyPJ
	s.OffchipBits += o.OffchipBits
	s.BaseOffchipBits += o.BaseOffchipBits
}

// Overhead is per-datatype extra off-chip traffic in bits caused by
// authentication: hash fetches/stores and redundant data reads. It is
// produced by the authblock package and charged to both the DRAM interface
// and the datatype's crypto engine group (redundant data must still be
// decrypted and hashed; hashes transit the DRAM bus but are produced or
// checked by the GF multiplier whose time the engine interval already
// covers, so only their bus time is charged).
type Overhead struct {
	// RedundantBits is per-datatype redundant data read bits.
	RedundantBits [3]int64
	// HashBits is per-datatype hash (tag) traffic bits.
	HashBits [3]int64
	// RehashBits is additional traffic from rehash operations (whole-tensor
	// read + write plus tags) that precede this layer's consumption of its
	// ifmap, charged to the ifmap datatype's stream.
	RehashBits int64
}

// Total returns all overhead bits.
func (o Overhead) Total() int64 {
	var t int64
	for i := 0; i < 3; i++ {
		t += o.RedundantBits[i] + o.HashBits[i]
	}
	return t + o.RehashBits
}

// DatatypeExtraBits returns the overhead bits attributable to a datatype's
// traffic stream.
func (o Overhead) DatatypeExtraBits(dt workload.Datatype) int64 {
	e := o.RedundantBits[dt] + o.HashBits[dt]
	if dt == workload.Ifmap {
		e += o.RehashBits
	}
	return e
}

// Evaluate computes unsecure-baseline stats: no crypto engines, full DRAM
// bandwidth.
func Evaluate(layer *workload.Layer, spec *arch.Spec, m *mapping.Mapping) Stats {
	return evaluate(layer, spec, m, nil, Overhead{})
}

// EvaluateSecure computes stats for a secure accelerator with the given
// crypto configuration and authentication overhead traffic.
func EvaluateSecure(layer *workload.Layer, spec *arch.Spec, m *mapping.Mapping, cfg cryptoengine.Config, ov Overhead) Stats {
	return evaluate(layer, spec, m, &cfg, ov)
}

func evaluate(layer *workload.Layer, spec *arch.Spec, m *mapping.Mapping, cfg *cryptoengine.Config, ov Overhead) Stats {
	var s Stats

	// Compute.
	s.ComputeCycles = m.TemporalIterations(layer)
	s.Utilization = float64(m.ActivePEs()) / float64(spec.NumPEs())

	// Off-chip traffic.
	off := m.Offchip(layer)
	wordBits := int64(layer.WordBits)
	s.BaseOffchipBits = off.TotalElems() * wordBits
	s.OffchipBits = s.BaseOffchipBits + ov.Total()

	totalBytes := (s.OffchipBits + 7) / 8
	s.DRAMCycles = num.CeilDiv64(totalBytes, int64(spec.DRAM.BytesPerCycle))

	// Crypto: each datatype's engine group processes that datatype's data
	// stream (including redundant reads and rehash traffic).
	if cfg != nil {
		var worst int64
		for _, dt := range workload.Datatypes {
			bits := off.DatatypeElems(dt)*wordBits + ov.RedundantBits[dt]
			if dt == workload.Ifmap {
				bits += ov.RehashBits
			}
			c := cfg.CyclesForBytes((bits + 7) / 8)
			if c > worst {
				worst = c
			}
		}
		s.CryptoCycles = worst
	}

	s.Cycles = s.ComputeCycles
	if s.DRAMCycles > s.Cycles {
		s.Cycles = s.DRAMCycles
	}
	if s.CryptoCycles > s.Cycles {
		s.Cycles = s.CryptoCycles
	}

	// Energy.
	macs := float64(layer.MACs())
	onchip := macs * accelergy.MACEnergyPJ
	onchip += 4 * macs * accelergy.RFEnergyPJ // wt read, if read, psum r/w
	glb := m.GLB(layer)
	onchip += float64(glb.Total()) * accelergy.GLBEnergyPJ(spec.GlobalBufferBytes)
	s.OnChipEnergyPJ = onchip

	s.DRAMEnergyPJ = float64(s.OffchipBits) * spec.DRAM.EnergyPerBit
	if cfg != nil {
		var bytes int64
		for _, dt := range workload.Datatypes {
			bits := off.DatatypeElems(dt)*wordBits + ov.DatatypeExtraBits(dt)
			bytes += (bits + 7) / 8
		}
		s.CryptoEnergyPJ = cfg.EnergyForBytesPJ(bytes)
	}
	s.EnergyPJ = s.OnChipEnergyPJ + s.DRAMEnergyPJ + s.CryptoEnergyPJ
	return s
}

// SchedulingCycles is the cost function the step-1 mapper minimises: the
// latency under an *effective* off-chip bandwidth (bytes/cycle), which per
// Section 4.1 is min(DRAM, crypto) for secure designs and the plain DRAM
// bandwidth otherwise. Authentication overhead is unknown at this stage and
// excluded.
func SchedulingCycles(layer *workload.Layer, m *mapping.Mapping, effectiveBytesPerCycle float64) int64 {
	compute := m.TemporalIterations(layer)
	bits := m.Offchip(layer).TotalElems() * int64(layer.WordBits)
	return SchedulingCyclesFor(compute, bits, effectiveBytesPerCycle)
}

// SchedulingCyclesFor is the permutation-dependent half of SchedulingCycles:
// given the (tiling-invariant) compute cycles and the off-chip traffic of one
// loop order, it applies the effective-bandwidth bottleneck. The mapper's
// hot path derives both inputs from a mapping.TilingAnalysis so that the
// permutation heuristics share one tiling walk; the arithmetic here is
// bit-identical to SchedulingCycles.
func SchedulingCyclesFor(computeCycles, offchipBits int64, effectiveBytesPerCycle float64) int64 {
	bytes := float64(offchipBits) / 8
	dram := int64(math.Ceil(bytes / effectiveBytesPerCycle))
	if dram > computeCycles {
		return dram
	}
	return computeCycles
}
