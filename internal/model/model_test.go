package model

import (
	"testing"

	"secureloop/internal/arch"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/mapping"
	"secureloop/internal/workload"
)

func testLayer() *workload.Layer {
	return &workload.Layer{
		Name: "t", C: 16, M: 32, R: 3, S: 3, P: 14, Q: 14,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, N: 1, WordBits: 16,
	}
}

func testMapping() *mapping.Mapping {
	m := mapping.New()
	m.SetFactor(mapping.RF, mapping.DimR, 3)
	m.SetFactor(mapping.RF, mapping.DimS, 3)
	m.SetFactor(mapping.SpatialX, mapping.DimQ, 14)
	m.SetFactor(mapping.SpatialY, mapping.DimM, 8)
	m.SetFactor(mapping.GLB, mapping.DimP, 7)
	m.SetFactor(mapping.GLB, mapping.DimC, 4)
	m.PermDRAM = []mapping.Dim{mapping.DimM, mapping.DimP, mapping.DimQ, mapping.DimC, mapping.DimR, mapping.DimS}
	return m
}

func TestEvaluateUnsecure(t *testing.T) {
	l, m := testLayer(), testMapping()
	spec := arch.Base()
	s := Evaluate(l, &spec, m)
	if s.CryptoCycles != 0 || s.CryptoEnergyPJ != 0 {
		t.Error("unsecure evaluation has crypto components")
	}
	if s.Cycles < s.ComputeCycles || s.Cycles < s.DRAMCycles {
		t.Error("latency below component bound")
	}
	if s.OffchipBits != s.BaseOffchipBits {
		t.Error("unsecure off-chip bits include overhead")
	}
	if s.EnergyPJ <= 0 || s.Utilization <= 0 || s.Utilization > 1 {
		t.Errorf("stats out of range: %+v", s)
	}
}

func TestEvaluateSecureAddsOverhead(t *testing.T) {
	l, m := testLayer(), testMapping()
	spec := arch.Base()
	cfg := cryptoengine.Config{Engine: cryptoengine.Parallel(), CountPerDatatype: 1}

	plain := EvaluateSecure(l, &spec, m, cfg, Overhead{})
	if plain.CryptoCycles == 0 {
		t.Error("secure evaluation has no crypto cycles")
	}
	var ov Overhead
	ov.HashBits[workload.Ifmap] = 1 << 20
	ov.RedundantBits[workload.Ifmap] = 1 << 22
	ov.RehashBits = 1 << 23
	loaded := EvaluateSecure(l, &spec, m, cfg, ov)
	if loaded.OffchipBits != plain.OffchipBits+ov.Total() {
		t.Errorf("overhead bits not added: %d vs %d", loaded.OffchipBits, plain.OffchipBits)
	}
	if loaded.CryptoCycles <= plain.CryptoCycles {
		t.Error("ifmap overhead did not slow the ifmap engine group")
	}
	if loaded.EnergyPJ <= plain.EnergyPJ {
		t.Error("overhead did not cost energy")
	}
}

func TestSecureLatencyIsCryptoBoundWithSerialEngine(t *testing.T) {
	l, m := testLayer(), testMapping()
	spec := arch.Base()
	cfg := cryptoengine.Config{Engine: cryptoengine.Serial(), CountPerDatatype: 1}
	s := EvaluateSecure(l, &spec, m, cfg, Overhead{})
	if s.Cycles != s.CryptoCycles {
		t.Errorf("serial engine should bound latency: cycles=%d crypto=%d", s.Cycles, s.CryptoCycles)
	}
	if s.Cycles <= s.ComputeCycles {
		t.Error("serial engine should be slower than compute")
	}
}

func TestHigherBandwidthNeverSlower(t *testing.T) {
	l, m := testLayer(), testMapping()
	fast := arch.Base().WithDRAM(arch.LPDDR4x128)
	slow := arch.Base()
	sFast := Evaluate(l, &fast, m)
	sSlow := Evaluate(l, &slow, m)
	if sFast.Cycles > sSlow.Cycles {
		t.Error("doubling DRAM bandwidth slowed the design")
	}
}

func TestHBM2SavesDRAMEnergy(t *testing.T) {
	// The Section 5.2 claim: HBM2 lowers energy, not latency (same BW).
	l, m := testLayer(), testMapping()
	lp := arch.Base()
	hbm := arch.Base().WithDRAM(arch.HBM2x64)
	sLP := Evaluate(l, &lp, m)
	sHBM := Evaluate(l, &hbm, m)
	if sHBM.Cycles != sLP.Cycles {
		t.Error("HBM2 at equal bandwidth changed latency")
	}
	if sHBM.DRAMEnergyPJ >= sLP.DRAMEnergyPJ {
		t.Error("HBM2 did not save DRAM energy")
	}
}

func TestOverheadAccounting(t *testing.T) {
	var ov Overhead
	ov.HashBits[workload.Weight] = 10
	ov.RedundantBits[workload.Ifmap] = 20
	ov.RehashBits = 30
	if ov.Total() != 60 {
		t.Errorf("Total = %d", ov.Total())
	}
	if ov.DatatypeExtraBits(workload.Weight) != 10 {
		t.Error("weight extra")
	}
	if ov.DatatypeExtraBits(workload.Ifmap) != 50 {
		t.Error("ifmap extra should include rehash")
	}
	if ov.DatatypeExtraBits(workload.Ofmap) != 0 {
		t.Error("ofmap extra")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Cycles: 10, EnergyPJ: 5, OffchipBits: 100, ComputeCycles: 3}
	b := Stats{Cycles: 20, EnergyPJ: 7, OffchipBits: 50, ComputeCycles: 9}
	a.Add(b)
	if a.Cycles != 30 || a.EnergyPJ != 12 || a.OffchipBits != 150 || a.ComputeCycles != 12 {
		t.Errorf("Add: %+v", a)
	}
	if a.EDP() != 12*30 {
		t.Errorf("EDP = %g", a.EDP())
	}
}

func TestSchedulingCyclesBandwidthSensitivity(t *testing.T) {
	l, m := testLayer(), testMapping()
	full := SchedulingCycles(l, m, 64)
	tiny := SchedulingCycles(l, m, 0.5)
	if tiny <= full {
		t.Error("restricting effective bandwidth must increase scheduling cost")
	}
	// At generous bandwidth the cost is compute-bound.
	if full != m.TemporalIterations(l) {
		t.Errorf("expected compute-bound: %d vs %d", full, m.TemporalIterations(l))
	}
}
