package service

import (
	"encoding/json"

	"secureloop/internal/authblock"
	"secureloop/internal/core"
	"secureloop/internal/dse"
	"secureloop/internal/model"
	"secureloop/internal/workload"
)

// Response bodies are canonical JSON: struct-typed all the way down (no
// maps, so no iteration-order leaks), built from the deterministic results
// of the core pipeline, marshalled once by the leader and shared verbatim
// with every coalesced follower. A warm repeat of an identical request
// against a mounted store therefore returns a byte-identical body;
// per-serving accounting (store hit, coalescing) travels in HTTP headers,
// never in the body.

// StatsBody is model.Stats on the wire.
type StatsBody struct {
	Cycles          int64   `json:"cycles"`
	ComputeCycles   int64   `json:"compute_cycles"`
	DRAMCycles      int64   `json:"dram_cycles"`
	CryptoCycles    int64   `json:"crypto_cycles"`
	EnergyPJ        float64 `json:"energy_pj"`
	DRAMEnergyPJ    float64 `json:"dram_energy_pj"`
	CryptoEnergyPJ  float64 `json:"crypto_energy_pj"`
	OnChipEnergyPJ  float64 `json:"onchip_energy_pj"`
	OffchipBits     int64   `json:"offchip_bits"`
	BaseOffchipBits int64   `json:"base_offchip_bits"`
	Utilization     float64 `json:"utilization"`
}

func statsBody(st model.Stats) StatsBody {
	return StatsBody{
		Cycles:          st.Cycles,
		ComputeCycles:   st.ComputeCycles,
		DRAMCycles:      st.DRAMCycles,
		CryptoCycles:    st.CryptoCycles,
		EnergyPJ:        st.EnergyPJ,
		DRAMEnergyPJ:    st.DRAMEnergyPJ,
		CryptoEnergyPJ:  st.CryptoEnergyPJ,
		OnChipEnergyPJ:  st.OnChipEnergyPJ,
		OffchipBits:     st.OffchipBits,
		BaseOffchipBits: st.BaseOffchipBits,
		Utilization:     st.Utilization,
	}
}

// AssignmentBody is one AuthBlock assignment on the wire.
type AssignmentBody struct {
	Orientation string `json:"orientation"`
	U           int    `json:"u"`
}

func assignmentBody(a authblock.Assignment) AssignmentBody {
	return AssignmentBody{Orientation: a.Orientation.String(), U: a.U}
}

// CostsBody is an AuthBlock cost breakdown on the wire.
type CostsBody struct {
	HashWriteBits int64 `json:"hash_write_bits"`
	HashReadBits  int64 `json:"hash_read_bits"`
	RedundantBits int64 `json:"redundant_bits"`
	RehashBits    int64 `json:"rehash_bits"`
	TotalBits     int64 `json:"total_bits"`
}

func costsBody(c authblock.Costs) CostsBody {
	return CostsBody{
		HashWriteBits: c.HashWriteBits,
		HashReadBits:  c.HashReadBits,
		RedundantBits: c.RedundantBits,
		RehashBits:    c.RehashBits,
		TotalBits:     c.Total(),
	}
}

// LayerBody is one scheduled layer on the wire.
type LayerBody struct {
	Index          int            `json:"index"`
	Name           string         `json:"name"`
	Choice         int            `json:"choice"`
	Stats          StatsBody      `json:"stats"`
	OfmapAuthBlock AssignmentBody `json:"ofmap_authblock"`
}

// TrafficBody is the network-total authentication overhead on the wire.
type TrafficBody struct {
	HashBits      int64 `json:"hash_bits"`
	RedundantBits int64 `json:"redundant_bits"`
	RehashBits    int64 `json:"rehash_bits"`
}

// ScheduleResponse is the /v1/schedule result.
type ScheduleResponse struct {
	Network   string      `json:"network"`
	Algorithm string      `json:"algorithm"`
	Arch      string      `json:"arch"`
	Crypto    string      `json:"crypto"`
	Total     StatsBody   `json:"total"`
	Traffic   TrafficBody `json:"traffic"`
	Layers    []LayerBody `json:"layers"`
}

func scheduleResponse(req *ScheduleRequest, res *core.NetworkResult) *ScheduleResponse {
	out := &ScheduleResponse{
		Network:   networkLabel(req.Network),
		Algorithm: req.Algorithm.String(),
		Arch:      req.Spec.Name,
		Crypto:    req.Crypto.String(),
		Total:     statsBody(res.Total),
		Traffic: TrafficBody{
			HashBits:      res.Traffic.HashBits,
			RedundantBits: res.Traffic.RedundantBits,
			RehashBits:    res.Traffic.RehashBits,
		},
		Layers: make([]LayerBody, 0, len(res.Layers)),
	}
	for i := range res.Layers {
		lr := &res.Layers[i]
		out.Layers = append(out.Layers, LayerBody{
			Index:          lr.Index,
			Name:           req.Network.Layers[lr.Index].Name,
			Choice:         lr.Choice,
			Stats:          statsBody(lr.Stats),
			OfmapAuthBlock: assignmentBody(lr.OfmapAssignment),
		})
	}
	return out
}

// PointBody is one design point on the wire.
type PointBody struct {
	Label                 string  `json:"label"`
	Arch                  string  `json:"arch"`
	Crypto                string  `json:"crypto"`
	AreaMM2               float64 `json:"area_mm2"`
	CryptoAreaOverheadPct float64 `json:"crypto_area_overhead_pct"`
	Cycles                int64   `json:"cycles"`
	EnergyPJ              float64 `json:"energy_pj"`
	UnsecureCycles        int64   `json:"unsecure_cycles"`
	Slowdown              float64 `json:"slowdown"`
	Pareto                bool    `json:"pareto"`
}

func pointBody(d dse.DesignPoint) PointBody {
	return PointBody{
		Label:                 d.Label(),
		Arch:                  d.Spec.Name,
		Crypto:                d.Crypto.String(),
		AreaMM2:               d.AreaMM2,
		CryptoAreaOverheadPct: d.CryptoAreaOverheadPct,
		Cycles:                d.Cycles,
		EnergyPJ:              d.EnergyPJ,
		UnsecureCycles:        d.UnsecureCycles,
		Slowdown:              d.Slowdown(),
		Pareto:                d.Pareto,
	}
}

// SweepResponse is the /v1/sweep result. FrontOnly mirrors the request's
// Front flag: when set, Points holds only the Pareto front.
type SweepResponse struct {
	Network   string      `json:"network"`
	Algorithm string      `json:"algorithm"`
	FrontOnly bool        `json:"front_only"`
	Points    []PointBody `json:"points"`
}

// AuthBlockResponse is the /v1/authblock result.
type AuthBlockResponse struct {
	Optimal  AssignmentBody `json:"optimal"`
	Costs    CostsBody      `json:"costs"`
	Baseline CostsBody      `json:"tile_baseline"`
	// BaselineRehash reports whether the tile-as-an-AuthBlock baseline had
	// to fall back to an explicit rehash pass.
	BaselineRehash bool `json:"tile_baseline_rehash"`
	// Sweep is the optional u = 1..MaxU cost curve (request MaxU > 0).
	Sweep []SweepEntryBody `json:"sweep,omitempty"`
	// SweepOrientation names the orientation Sweep was taken along.
	SweepOrientation string `json:"sweep_orientation,omitempty"`
}

// SweepEntryBody is one block size's cost on the wire.
type SweepEntryBody struct {
	U     int       `json:"u"`
	Costs CostsBody `json:"costs"`
}

// encodeBody marshals a response into its canonical transport bytes: one
// JSON document with a trailing newline. Responses are struct-typed (no
// maps), so the encoding is deterministic — the byte-identity contract of
// warm repeats rests on this function.
func encodeBody(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// networkLabel names a network for responses; parsed inline networks may
// carry no name.
func networkLabel(net *workload.Network) string {
	if net.Name != "" {
		return net.Name
	}
	return "custom"
}
