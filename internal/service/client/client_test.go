package client

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"secureloop/internal/obs"
	"secureloop/internal/service"
)

// TestStreamParsing: the SSE consumer reassembles progress events, the
// accounting frame, and the result bytes (canonical newline restored) from
// a canned stream.
func TestStreamParsing(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Accept") != "text/event-stream" {
			t.Errorf("Accept = %q, want text/event-stream", r.Header.Get("Accept"))
		}
		w.Header().Set("Content-Type", "text/event-stream")
		_, _ = w.Write([]byte(
			"event: progress\ndata: {\"seq\":1,\"kind\":\"stage_start\",\"stage_event\":{\"stage\":\"s\",\"units\":2}}\n\n" +
				"event: progress\ndata: {\"seq\":2,\"kind\":\"layer\",\"layer_event\":{\"stage\":\"s\",\"index\":0,\"name\":\"l0\",\"done\":1,\"total\":2}}\n\n" +
				"event: accounting\ndata: {\"store\":\"hit\",\"coalesced\":true}\n\n" +
				"event: result\ndata: {\"network\":\"tiny\"}\n\n"))
	}))
	defer srv.Close()

	var events []obs.Event
	body, acct, err := New(srv.URL).ScheduleStream(context.Background(), &service.ScheduleWire{}, func(ev obs.Event) {
		events = append(events, ev)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, []byte("{\"network\":\"tiny\"}\n")) {
		t.Errorf("result = %q, want canonical newline-terminated body", body)
	}
	if !acct.StoreHit || !acct.Coalesced {
		t.Errorf("accounting = %+v, want store hit + coalesced", acct)
	}
	if len(events) != 2 || events[0].Kind != obs.EventStageStart || events[1].Kind != obs.EventLayer {
		t.Fatalf("events = %+v, want stage_start then layer", events)
	}
	if events[1].Layer == nil || events[1].Layer.Name != "l0" {
		t.Errorf("layer payload = %+v, want name l0", events[1].Layer)
	}
}

// TestStreamError: an error frame surfaces as an APIError.
func TestStreamError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		_, _ = w.Write([]byte("event: error\ndata: {\"error\":\"deadline exceeded\"}\n\n"))
	}))
	defer srv.Close()
	_, _, err := New(srv.URL).ScheduleStream(context.Background(), &service.ScheduleWire{}, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Message != "deadline exceeded" {
		t.Fatalf("err = %v, want APIError with the frame's message", err)
	}
}

// TestStreamTruncated: a stream ending without a result frame is an error,
// never a silent empty body.
func TestStreamTruncated(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		_, _ = w.Write([]byte("event: progress\ndata: {\"seq\":1,\"kind\":\"stage_start\"}\n\n"))
	}))
	defer srv.Close()
	if _, _, err := New(srv.URL).ScheduleStream(context.Background(), &service.ScheduleWire{}, nil); err == nil {
		t.Fatal("truncated stream returned no error")
	}
}

// TestErrorStatusMapping: non-2xx responses map to APIError with the
// envelope message, the status, and the Retry-After hint.
func TestErrorStatusMapping(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":"queue full"}`))
	}))
	defer srv.Close()
	_, _, err := New(srv.URL).ScheduleBytes(context.Background(), &service.ScheduleWire{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want APIError", err)
	}
	if apiErr.StatusCode != http.StatusTooManyRequests || apiErr.Message != "queue full" {
		t.Errorf("APIError = %+v", apiErr)
	}
	if apiErr.Accounting.RetryAfterSeconds != 7 {
		t.Errorf("RetryAfterSeconds = %d, want 7", apiErr.Accounting.RetryAfterSeconds)
	}
	if !apiErr.IsRetryable() {
		t.Error("429 not retryable")
	}
}
