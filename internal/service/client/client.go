// Package client is the typed HTTP client for cmd/secured: one method per
// endpoint, raw-bytes variants for byte-identity assertions, and an SSE
// consumer for progress streaming. Stdlib only, context-first throughout.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"secureloop/internal/obs"
	"secureloop/internal/service"
)

// Client talks to one secured daemon.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP overrides the transport (default http.DefaultClient).
	HTTP *http.Client
}

// New builds a client for the daemon at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Accounting is the per-serving metadata the daemon reports in headers
// (never in the body, which stays canonical).
type Accounting struct {
	// StoreHit reports the request was answered from the persistent store
	// without evaluation.
	StoreHit bool
	// Coalesced reports the request joined an identical in-flight request.
	Coalesced bool
	// RetryAfterSeconds carries the Retry-After hint of a 429 rejection.
	RetryAfterSeconds int
}

// APIError is a non-2xx response.
type APIError struct {
	StatusCode int
	Message    string
	Accounting Accounting
}

func (e *APIError) Error() string {
	return fmt.Sprintf("secured: HTTP %d: %s", e.StatusCode, e.Message)
}

// IsRetryable reports the request was shed by load or timed out against
// its deadline — worth retrying after Accounting.RetryAfterSeconds (shed)
// or with a longer deadline (504).
func (e *APIError) IsRetryable() bool {
	return e.StatusCode == http.StatusTooManyRequests ||
		e.StatusCode == http.StatusServiceUnavailable ||
		e.StatusCode == http.StatusGatewayTimeout
}

func accountingFrom(hdr http.Header) Accounting {
	var a Accounting
	a.StoreHit = hdr.Get("X-Secured-Store") == "hit"
	a.Coalesced = hdr.Get("X-Secured-Coalesced") == "1"
	if ra := hdr.Get("Retry-After"); ra != "" {
		if n, err := strconv.Atoi(ra); err == nil {
			a.RetryAfterSeconds = n
		}
	}
	return a
}

// post sends one JSON request and returns the raw canonical body.
func (c *Client) post(ctx context.Context, path string, in any) ([]byte, Accounting, error) {
	payload, err := json.Marshal(in)
	if err != nil {
		return nil, Accounting{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(payload))
	if err != nil {
		return nil, Accounting{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, Accounting{}, err
	}
	defer resp.Body.Close()
	acct := accountingFrom(resp.Header)
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, acct, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, acct, &APIError{StatusCode: resp.StatusCode, Message: errorMessage(body), Accounting: acct}
	}
	return body, acct, nil
}

func errorMessage(body []byte) string {
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &eb); err == nil && eb.Error != "" {
		return eb.Error
	}
	return strings.TrimSpace(string(body))
}

// ScheduleBytes runs one schedule request and returns the canonical
// response bytes — the form to compare for warm-repeat byte-identity.
func (c *Client) ScheduleBytes(ctx context.Context, req *service.ScheduleWire) ([]byte, Accounting, error) {
	return c.post(ctx, "/v1/schedule", req)
}

// Schedule runs one schedule request and decodes the typed response.
func (c *Client) Schedule(ctx context.Context, req *service.ScheduleWire) (*service.ScheduleResponse, Accounting, error) {
	body, acct, err := c.ScheduleBytes(ctx, req)
	if err != nil {
		return nil, acct, err
	}
	var out service.ScheduleResponse
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, acct, err
	}
	return &out, acct, nil
}

// SweepBytes runs one sweep request and returns the canonical bytes.
func (c *Client) SweepBytes(ctx context.Context, req *service.SweepWire) ([]byte, Accounting, error) {
	return c.post(ctx, "/v1/sweep", req)
}

// Sweep runs one sweep request and decodes the typed response.
func (c *Client) Sweep(ctx context.Context, req *service.SweepWire) (*service.SweepResponse, Accounting, error) {
	body, acct, err := c.SweepBytes(ctx, req)
	if err != nil {
		return nil, acct, err
	}
	var out service.SweepResponse
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, acct, err
	}
	return &out, acct, nil
}

// AuthBlockBytes runs one authblock request and returns the canonical
// bytes.
func (c *Client) AuthBlockBytes(ctx context.Context, req *service.AuthBlockWire) ([]byte, Accounting, error) {
	return c.post(ctx, "/v1/authblock", req)
}

// AuthBlock runs one authblock request and decodes the typed response.
func (c *Client) AuthBlock(ctx context.Context, req *service.AuthBlockWire) (*service.AuthBlockResponse, Accounting, error) {
	body, acct, err := c.AuthBlockBytes(ctx, req)
	if err != nil {
		return nil, acct, err
	}
	var out service.AuthBlockResponse
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, acct, err
	}
	return &out, acct, nil
}

// ScheduleStream runs one schedule request with SSE progress streaming:
// onEvent (when non-nil) receives every progress event in order, then the
// canonical result bytes return. The stream shares the connection, so
// cancelling ctx aborts both the stream and the computation (unless other
// clients coalesced onto it).
func (c *Client) ScheduleStream(ctx context.Context, req *service.ScheduleWire, onEvent func(obs.Event)) ([]byte, Accounting, error) {
	return c.stream(ctx, "/v1/schedule", req, onEvent)
}

// SweepStream is ScheduleStream for /v1/sweep.
func (c *Client) SweepStream(ctx context.Context, req *service.SweepWire, onEvent func(obs.Event)) ([]byte, Accounting, error) {
	return c.stream(ctx, "/v1/sweep", req, onEvent)
}

// stream posts one request with Accept: text/event-stream and consumes the
// SSE frames: progress events feed onEvent, the accounting frame fills the
// Accounting, the result frame (with its canonical trailing newline
// restored) or error frame terminates.
func (c *Client) stream(ctx context.Context, path string, in any, onEvent func(obs.Event)) ([]byte, Accounting, error) {
	payload, err := json.Marshal(in)
	if err != nil {
		return nil, Accounting{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(payload))
	if err != nil {
		return nil, Accounting{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, Accounting{}, err
	}
	defer resp.Body.Close()
	acct := accountingFrom(resp.Header)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return nil, acct, &APIError{StatusCode: resp.StatusCode, Message: errorMessage(body), Accounting: acct}
	}
	var event string
	var data bytes.Buffer
	var result []byte
	var apiErr *APIError
	flush := func() error {
		if event == "" && data.Len() == 0 {
			return nil
		}
		switch event {
		case "progress":
			if onEvent != nil {
				var ev obs.Event
				if err := json.Unmarshal(data.Bytes(), &ev); err == nil {
					onEvent(ev)
				}
			}
		case "accounting":
			var a struct {
				Store     string `json:"store"`
				Coalesced bool   `json:"coalesced"`
			}
			if err := json.Unmarshal(data.Bytes(), &a); err == nil {
				acct.StoreHit = a.Store == "hit"
				acct.Coalesced = a.Coalesced
			}
		case "result":
			result = append(append([]byte{}, data.Bytes()...), '\n')
		case "error":
			apiErr = &APIError{StatusCode: http.StatusInternalServerError, Message: errorMessage(data.Bytes()), Accounting: acct}
		}
		event = ""
		data.Reset()
		return nil
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return nil, acct, err
			}
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data.WriteString(strings.TrimPrefix(line, "data: "))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, acct, err
	}
	_ = flush()
	if apiErr != nil {
		return nil, acct, apiErr
	}
	if result == nil {
		return nil, acct, fmt.Errorf("secured: stream ended without a result")
	}
	return result, acct, nil
}

// Health fetches /v1/health. A draining daemon answers 503; the decoded
// body returns either way alongside the APIError.
func (c *Client) Health(ctx context.Context) (status string, draining bool, err error) {
	body, code, err := c.get(ctx, "/v1/health")
	if err != nil && body == nil {
		return "", false, err
	}
	var hb struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}
	if jerr := json.Unmarshal(body, &hb); jerr != nil {
		return "", false, jerr
	}
	if code != http.StatusOK && code != http.StatusServiceUnavailable {
		return hb.Status, hb.Draining, err
	}
	return hb.Status, hb.Draining, nil
}

// Stats fetches /v1/stats.
func (c *Client) Stats(ctx context.Context) (*service.Stats, error) {
	body, code, err := c.get(ctx, "/v1/stats")
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, &APIError{StatusCode: code, Message: errorMessage(body)}
	}
	var st service.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

func (c *Client) get(ctx context.Context, path string) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.StatusCode, err
	}
	return body, resp.StatusCode, nil
}
