package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestAdmitFastPath: an idle gate admits immediately, and release frees the
// slot for the next request.
func TestAdmitFastPath(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1})
	release, err := a.Admit(context.Background(), 0)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	running, queued, _, _ := a.Load()
	if running != 1 || queued != 0 {
		t.Fatalf("load = (%d running, %d queued), want (1, 0)", running, queued)
	}
	release()
	release() // idempotent
	running, _, _, _ = a.Load()
	if running != 0 {
		t.Fatalf("running after release = %d, want 0", running)
	}
	if _, err := a.Admit(context.Background(), 0); err != nil {
		t.Fatalf("Admit after release: %v", err)
	}
}

// TestAdmitQueueFull: arrivals beyond MaxConcurrent+MaxQueue are shed with
// ErrQueueFull while earlier arrivals keep waiting.
func TestAdmitQueueFull(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 1})
	release, err := a.Admit(context.Background(), 0)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	// Occupy the single queue slot.
	waiterErr := make(chan error, 1)
	go func() {
		rel, err := a.Admit(context.Background(), 0)
		if err == nil {
			rel()
		}
		waiterErr <- err
	}()
	waitForQueued(t, a, 1)
	// The queue is full: the next arrival is shed immediately.
	if _, err := a.Admit(context.Background(), 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Admit with full queue = %v, want ErrQueueFull", err)
	}
	if ra := a.RetryAfterSeconds(); ra < 1 {
		t.Fatalf("RetryAfterSeconds = %d, want >= 1", ra)
	}
	release()
	if err := <-waiterErr; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
}

// TestAdmitContextCancelWhileQueued: a queued waiter that gives up leaves
// the queue count consistent.
func TestAdmitContextCancelWhileQueued(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 4})
	release, err := a.Admit(context.Background(), 0)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, err := a.Admit(ctx, 0)
		waiterErr <- err
	}()
	waitForQueued(t, a, 1)
	cancel()
	if err := <-waiterErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter = %v, want context.Canceled", err)
	}
	_, queued, _, _ := a.Load()
	if queued != 0 {
		t.Fatalf("queued after cancel = %d, want 0", queued)
	}
	release()
}

// TestAdmitMemoryBudget: a request that cannot fit right now queues until
// memory frees; one that can never fit is rejected outright.
func TestAdmitMemoryBudget(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 4, MaxQueue: 4, MemoryBudgetBytes: 100})
	if _, err := a.Admit(context.Background(), 101); !errors.Is(err, ErrRequestTooLarge) {
		t.Fatalf("oversized request = %v, want ErrRequestTooLarge", err)
	}
	release, err := a.Admit(context.Background(), 80)
	if err != nil {
		t.Fatalf("Admit(80): %v", err)
	}
	got := make(chan error, 1)
	go func() {
		rel, err := a.Admit(context.Background(), 40)
		if err == nil {
			defer rel()
			_, _, mem, _ := a.Load()
			if mem != 40 {
				err = errors.New("memory accounting off after admit")
			}
		}
		got <- err
	}()
	waitForQueued(t, a, 1)
	release()
	if err := <-got; err != nil {
		t.Fatalf("queued-for-memory waiter: %v", err)
	}
}

// TestDrainWaitsForInFlight: Drain rejects new arrivals at once, fails
// queued waiters, and returns only after running requests release.
func TestDrainWaitsForInFlight(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 4})
	release, err := a.Admit(context.Background(), 0)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	queuedErr := make(chan error, 1)
	go func() {
		_, err := a.Admit(context.Background(), 0)
		queuedErr <- err
	}()
	waitForQueued(t, a, 1)

	drained := make(chan error, 1)
	go func() { drained <- a.Drain(context.Background()) }()
	if err := <-queuedErr; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued waiter during drain = %v, want ErrDraining", err)
	}
	if _, err := a.Admit(context.Background(), 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("new arrival during drain = %v, want ErrDraining", err)
	}
	select {
	case err := <-drained:
		t.Fatalf("Drain returned before release: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	release()
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// Idempotent: draining an empty gate returns immediately.
	if err := a.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}

// TestDrainContext: Drain honours its context when a request never
// releases.
func TestDrainContext(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1})
	if _, err := a.Admit(context.Background(), 0); err != nil {
		t.Fatalf("Admit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := a.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with stuck request = %v, want DeadlineExceeded", err)
	}
}

// TestAdmitConcurrencyBound: under contention the gate never runs more than
// MaxConcurrent at once.
func TestAdmitConcurrencyBound(t *testing.T) {
	const maxC, n = 3, 20
	a := newAdmission(AdmissionConfig{MaxConcurrent: maxC, MaxQueue: n})
	var mu sync.Mutex
	cur, peak := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := a.Admit(context.Background(), 0)
			if err != nil {
				t.Errorf("Admit: %v", err)
				return
			}
			mu.Lock()
			cur++
			if cur > peak {
				peak = cur
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
			release()
		}()
	}
	wg.Wait()
	if peak > maxC {
		t.Fatalf("peak concurrency %d exceeds bound %d", peak, maxC)
	}
}

// TestDeadlineResolution pins the deadline defaulting and clamping.
func TestDeadlineResolution(t *testing.T) {
	var c AdmissionConfig
	if d := c.Deadline(0); d != 5*time.Minute {
		t.Fatalf("default deadline = %v, want 5m", d)
	}
	if d := c.Deadline(time.Hour); d != 30*time.Minute {
		t.Fatalf("clamped deadline = %v, want 30m", d)
	}
	c = AdmissionConfig{DefaultDeadline: time.Second, MaxDeadline: 2 * time.Second}
	if d := c.Deadline(0); d != time.Second {
		t.Fatalf("configured default = %v, want 1s", d)
	}
	if d := c.Deadline(5 * time.Second); d != 2*time.Second {
		t.Fatalf("configured clamp = %v, want 2s", d)
	}
	if d := c.Deadline(1500 * time.Millisecond); d != 1500*time.Millisecond {
		t.Fatalf("in-range deadline = %v, want 1.5s", d)
	}
}

// waitForQueued spins until the gate reports n queued waiters.
func waitForQueued(t *testing.T, a *admission, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, queued, _, _ := a.Load()
		if queued == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d queued (have %d)", n, queued)
		}
		time.Sleep(time.Millisecond)
	}
}
