package service

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"secureloop/internal/arch"
	"secureloop/internal/authblock"
	"secureloop/internal/core"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/mapper"
	"secureloop/internal/obs"
	"secureloop/internal/store"
	"secureloop/internal/workload"
)

// tinyNetwork is a deliberately small two-layer chain: large enough to
// exercise the full pipeline (mapping, AuthBlock, annealing), small enough
// to schedule in milliseconds.
func tinyNetwork() *workload.Network {
	mk := func(name string, c, m int) workload.Layer {
		return workload.Layer{
			Name: name, C: c, M: m, R: 3, S: 3, P: 7, Q: 7,
			StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
			N: 1, WordBits: 16,
		}
	}
	return &workload.Network{
		Name:     "tiny2",
		Layers:   []workload.Layer{mk("l0", 8, 16), mk("l1", 16, 8)},
		Segments: [][]int{{0, 1}},
	}
}

func tinyScheduleRequest() *ScheduleRequest {
	return &ScheduleRequest{
		Network:          tinyNetwork(),
		Spec:             arch.Base(),
		Crypto:           cryptoengine.Config{Engine: cryptoengine.Pipelined(), CountPerDatatype: 1},
		Algorithm:        core.CryptOptCross,
		AnnealIterations: 40,
	}
}

// TestScheduleKeyTiers: every result-bearing request knob changes the
// canonical key; pure labels do not.
func TestScheduleKeyTiers(t *testing.T) {
	base := persistScheduleKey(tinyScheduleRequest())
	mutate := func(name string, f func(*ScheduleRequest), want bool) {
		req := tinyScheduleRequest()
		f(req)
		changed := persistScheduleKey(req) != base
		if changed != want {
			t.Errorf("%s: key changed = %v, want %v", name, changed, want)
		}
	}
	mutate("algorithm", func(r *ScheduleRequest) { r.Algorithm = core.CryptTileSingle }, true)
	mutate("objective", func(r *ScheduleRequest) { r.Objective = core.MinEDP }, true)
	mutate("topk", func(r *ScheduleRequest) { r.TopK = 3 }, true)
	mutate("anneal", func(r *ScheduleRequest) { r.AnnealIterations = 41 }, true)
	mutate("mapper mode", func(r *ScheduleRequest) { r.Mapper.Mode = mapper.Guided }, true)
	mutate("mapper epsilon", func(r *ScheduleRequest) { r.Mapper.Epsilon = 0.25 }, true)
	mutate("mapper warmstart", func(r *ScheduleRequest) { r.Mapper.DisableWarmStart = true }, true)
	mutate("pes", func(r *ScheduleRequest) { r.Spec.PEsX = 16 }, true)
	mutate("glb", func(r *ScheduleRequest) { r.Spec.GlobalBufferBytes *= 2 }, true)
	mutate("dram", func(r *ScheduleRequest) { r.Spec.DRAM = arch.HBM2x64 }, true)
	mutate("crypto count", func(r *ScheduleRequest) { r.Crypto.CountPerDatatype = 2 }, true)
	mutate("layer shape", func(r *ScheduleRequest) { r.Network.Layers[0].C = 12 }, true)
	mutate("segments", func(r *ScheduleRequest) { r.Network.Segments = [][]int{{0}, {1}} }, true)
	mutate("network name", func(r *ScheduleRequest) { r.Network.Name = "renamed" }, false)
	mutate("layer name", func(r *ScheduleRequest) { r.Network.Layers[0].Name = "renamed" }, false)
	mutate("arch name", func(r *ScheduleRequest) { r.Spec.Name = "renamed" }, false)
}

// TestSweepKeyNeutralKnobs: the dispatch-shaping knobs (Shards, BoundSlack)
// are excluded from the sweep identity; the result-bearing ones are not.
func TestSweepKeyNeutralKnobs(t *testing.T) {
	mk := func() *SweepRequest {
		d := (&SweepRequest{
			Network:          tinyNetwork(),
			Algorithm:        core.CryptOptCross,
			AnnealIterations: 40,
		}).Defaulted()
		return &d
	}
	base := persistSweepKey(mk())
	neutral := mk()
	neutral.Shards = 7
	neutral.BoundSlack = 0.5
	if persistSweepKey(neutral) != base {
		t.Error("Shards/BoundSlack changed the sweep key; they are result-neutral")
	}
	front := mk()
	front.Front = true
	if persistSweepKey(front) == base {
		t.Error("Front did not change the sweep key")
	}
	alg := mk()
	alg.Algorithm = core.Unsecure
	if persistSweepKey(alg) == base {
		t.Error("Algorithm did not change the sweep key")
	}
	space := mk()
	space.Specs = space.Specs[:4]
	if persistSweepKey(space) == base {
		t.Error("design space did not change the sweep key")
	}
}

// countingObserver counts StageStart calls.
type countingObserver struct {
	obs.Nop
	stages atomic.Int64
}

func (c *countingObserver) StageStart(obs.StageEvent) { c.stages.Add(1) }

// TestScheduleWarmByteIdentical: with a persistent store mounted, the warm
// repeat of an identical request returns byte-identical canonical bytes and
// does zero scheduling work (no stage even starts, no AuthBlock runs).
func TestScheduleWarmByteIdentical(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var count countingObserver
	svc := New(Config{Store: st, Observe: &count})

	cold, coldBody, err := svc.Schedule(context.Background(), tinyScheduleRequest(), SubmitOptions{})
	if err != nil {
		t.Fatalf("cold schedule: %v", err)
	}
	if count.stages.Load() == 0 {
		t.Fatal("cold schedule started no stages")
	}
	if cold.Total.Cycles <= 0 {
		t.Fatalf("cold schedule cycles = %d, want > 0", cold.Total.Cycles)
	}

	count.stages.Store(0)
	runsBefore := authblock.OptimalRuns()
	p, err := svc.BeginSchedule(context.Background(), tinyScheduleRequest(), SubmitOptions{})
	if err != nil {
		t.Fatalf("warm begin: %v", err)
	}
	warmBody, _, storeHit, _, err := p.Result()
	if err != nil {
		t.Fatalf("warm schedule: %v", err)
	}
	if !storeHit {
		t.Error("warm repeat did not report a store hit")
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Errorf("warm body differs from cold body:\ncold: %s\nwarm: %s", coldBody, warmBody)
	}
	if n := count.stages.Load(); n != 0 {
		t.Errorf("warm repeat started %d stages, want 0", n)
	}
	if d := authblock.OptimalRuns() - runsBefore; d != 0 {
		t.Errorf("warm repeat ran %d AuthBlock optimisations, want 0", d)
	}
	c := svc.Stats().Service
	if c.StoreHits != 1 || c.Completed != 2 {
		t.Errorf("counters = %+v, want 2 completed with 1 store hit", c)
	}
}

// gateObserver blocks the first StageStart until released, signalling when
// the leader reaches it.
type gateObserver struct {
	obs.Nop
	once    sync.Once
	entered chan struct{}
	release chan struct{}
}

func newGateObserver() *gateObserver {
	return &gateObserver{entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gateObserver) StageStart(obs.StageEvent) {
	g.once.Do(func() {
		close(g.entered)
		<-g.release
	})
}

// TestCoalescing: a second identical request arriving while the first
// computes joins the same flight — one admission, one computation, shared
// byte-identical bodies.
func TestCoalescing(t *testing.T) {
	gate := newGateObserver()
	svc := New(Config{Observe: gate})
	req := tinyScheduleRequest()

	p1, err := svc.BeginSchedule(context.Background(), req, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-gate.entered // the leader is mid-compute, flight registered

	p2, err := svc.BeginSchedule(context.Background(), tinyScheduleRequest(), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitForCounter(t, &svc.coalesced, 1)
	close(gate.release)

	b1, _, _, co1, err1 := p1.Result()
	b2, _, _, co2, err2 := p2.Result()
	if err1 != nil || err2 != nil {
		t.Fatalf("results: %v / %v", err1, err2)
	}
	if co1 {
		t.Error("leader reported itself coalesced")
	}
	if !co2 {
		t.Error("follower did not report coalescing")
	}
	if !bytes.Equal(b1, b2) {
		t.Error("coalesced bodies differ")
	}
	c := svc.Stats().Service
	if c.Admitted != 1 || c.Coalesced != 1 || c.Completed != 1 {
		t.Errorf("counters = %+v, want 1 admitted, 1 coalesced, 1 completed", c)
	}
}

// TestLeaderCancelFollowerRetry: when the leader's client gives up
// mid-compute, a patient follower retries the flight as its new leader and
// still gets a result — one client's cancellation never poisons another's
// request.
func TestLeaderCancelFollowerRetry(t *testing.T) {
	gate := newGateObserver()
	svc := New(Config{Observe: gate})

	lctx, lcancel := context.WithCancel(context.Background())
	p1, err := svc.BeginSchedule(lctx, tinyScheduleRequest(), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-gate.entered

	p2, err := svc.BeginSchedule(context.Background(), tinyScheduleRequest(), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitForCounter(t, &svc.coalesced, 1)

	lcancel()           // the leader's client disconnects…
	close(gate.release) // …and its compute unblocks into a dead context
	_, _, _, _, err1 := p1.Result()
	if !errors.Is(err1, context.Canceled) {
		t.Fatalf("cancelled leader result = %v, want context.Canceled", err1)
	}
	b2, _, _, _, err2 := p2.Result()
	if err2 != nil {
		t.Fatalf("follower after leader cancel: %v", err2)
	}
	if len(b2) == 0 {
		t.Fatal("follower got an empty body")
	}
}

// TestPreCancelledDoesZeroWork: a request whose context is already dead
// performs no scheduling work at all.
func TestPreCancelledDoesZeroWork(t *testing.T) {
	var count countingObserver
	svc := New(Config{Observe: &count})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	runsBefore := authblock.OptimalRuns()
	_, _, err := svc.Schedule(ctx, tinyScheduleRequest(), SubmitOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled schedule = %v, want context.Canceled", err)
	}
	if n := count.stages.Load(); n != 0 {
		t.Errorf("pre-cancelled request started %d stages, want 0", n)
	}
	if d := authblock.OptimalRuns() - runsBefore; d != 0 {
		t.Errorf("pre-cancelled request ran %d AuthBlock optimisations, want 0", d)
	}
	c := svc.Stats().Service
	if c.Cancelled != 1 {
		t.Errorf("cancelled counter = %d, want 1", c.Cancelled)
	}
}

// TestScheduleEvents: a Pending with events requested streams an ordered
// progress sequence that ends before the result resolves.
func TestScheduleEvents(t *testing.T) {
	svc := New(Config{})
	p, err := svc.BeginSchedule(context.Background(), tinyScheduleRequest(), SubmitOptions{Events: true})
	if err != nil {
		t.Fatal(err)
	}
	var events []obs.Event
	for ev := range p.Events() {
		events = append(events, ev)
	}
	body, _, _, _, err := p.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(body) == 0 {
		t.Fatal("empty body")
	}
	if len(events) == 0 {
		t.Fatal("no progress events streamed")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("event %d out of order: seq %d after %d", i, events[i].Seq, events[i-1].Seq)
		}
	}
	sawStage := false
	for _, ev := range events {
		if ev.Kind == obs.EventStageStart {
			sawStage = true
		}
	}
	if !sawStage {
		t.Error("no stage_start event in the stream")
	}
}

// TestLeaderEventsLive: a leader's progress events reach Pending.Events
// while compute is still running — not only after the result is ready.
// The gate blocks compute inside the first stage (after the fanout has
// already published the stage_start), so a live event must arrive while
// the result is provably unresolved.
func TestLeaderEventsLive(t *testing.T) {
	gate := newGateObserver()
	svc := New(Config{Observe: gate})
	p, err := svc.BeginSchedule(context.Background(), tinyScheduleRequest(), SubmitOptions{Events: true})
	if err != nil {
		t.Fatal(err)
	}
	<-gate.entered // compute is blocked mid-stage; the result cannot be ready
	select {
	case _, ok := <-p.Events():
		if !ok {
			t.Fatal("events closed while compute was still gated")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no live event within 5s while compute was blocked")
	}
	select {
	case <-p.Done():
		t.Fatal("result resolved while compute was gated")
	default:
	}
	close(gate.release)
	for range p.Events() {
	}
	if _, _, _, _, err := p.Result(); err != nil {
		t.Fatal(err)
	}
}

// TestAuthBlockWarmStoreHit: with a persistent store mounted, a repeated
// authblock request reports a store hit (header accounting and the service
// StoreHits counter) and runs no optimal search.
func TestAuthBlockWarmStoreHit(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	svc := New(Config{Store: st})
	req := &AuthBlockRequest{
		Producer: authblock.ProducerGrid{C: 4, H: 20, W: 20, TileC: 4, TileH: 5, TileW: 5, WritesPerTile: 1},
		Consumer: authblock.ConsumerGrid{TileC: 4, WinH: 7, WinW: 7, StepH: 5, StepW: 5, CountC: 1, CountH: 3, CountW: 3, FetchesPerTile: 1},
		Params:   authblock.DefaultParams(),
	}
	begin := func() (storeHit bool) {
		p, err := svc.BeginAuthBlock(context.Background(), req, SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		_, _, storeHit, _, err = p.Result()
		if err != nil {
			t.Fatal(err)
		}
		return storeHit
	}
	if begin() {
		t.Error("cold authblock request reported a store hit")
	}
	runsBefore := authblock.OptimalRuns()
	if !begin() {
		t.Error("warm authblock repeat did not report a store hit")
	}
	if d := authblock.OptimalRuns() - runsBefore; d != 0 {
		t.Errorf("warm repeat ran %d optimal searches, want 0", d)
	}
	if c := svc.Stats().Service; c.StoreHits != 1 {
		t.Errorf("store_hits = %d, want 1", c.StoreHits)
	}
}

// TestAuthBlockRoundTrip: the authblock path agrees with calling the
// optimiser directly, including the optional sweep curve.
func TestAuthBlockRoundTrip(t *testing.T) {
	svc := New(Config{})
	req := &AuthBlockRequest{
		Producer: authblock.ProducerGrid{C: 8, H: 16, W: 16, TileC: 8, TileH: 4, TileW: 4, WritesPerTile: 1},
		Consumer: authblock.ConsumerGrid{TileC: 8, WinH: 6, WinW: 6, StepH: 4, StepW: 4, CountC: 1, CountH: 3, CountW: 3, FetchesPerTile: 1},
		Params:   authblock.DefaultParams(),
		MaxU:     4,
	}
	resp, body, err := svc.AuthBlock(context.Background(), req, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(body) == 0 || body[len(body)-1] != '\n' {
		t.Fatal("canonical body must be newline-terminated")
	}
	want, err := authblock.OptimalCachedCtx(context.Background(), req.Producer, req.Consumer, req.Params)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Optimal.U != want.Assignment.U || resp.Optimal.Orientation != want.Assignment.Orientation.String() {
		t.Errorf("optimal = %+v, want %+v", resp.Optimal, want.Assignment)
	}
	if resp.Costs.TotalBits != want.Costs.Total() {
		t.Errorf("total bits = %d, want %d", resp.Costs.TotalBits, want.Costs.Total())
	}
	if len(resp.Sweep) != 4 {
		t.Errorf("sweep entries = %d, want 4", len(resp.Sweep))
	}
	if resp.SweepOrientation != "horizontal" {
		t.Errorf("sweep orientation = %q, want horizontal", resp.SweepOrientation)
	}
}

// TestSweepSmall: a 2x1 design space sweeps end to end and marks a front.
func TestSweepSmall(t *testing.T) {
	svc := New(Config{})
	base := arch.Base()
	req := &SweepRequest{
		Network:          tinyNetwork(),
		Specs:            []arch.Spec{base, base.WithPEs(16, 14)},
		Cryptos:          []cryptoengine.Config{{Engine: cryptoengine.Pipelined(), CountPerDatatype: 1}},
		Algorithm:        core.CryptOptCross,
		AnnealIterations: 20,
	}
	resp, _, err := svc.Sweep(context.Background(), req, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(resp.Points))
	}
	pareto := 0
	for _, p := range resp.Points {
		if p.Cycles <= 0 {
			t.Errorf("point %s has cycles %d", p.Label, p.Cycles)
		}
		if p.Pareto {
			pareto++
		}
	}
	if pareto == 0 {
		t.Error("no Pareto point marked")
	}
}

// TestDrainingRejects: once draining, new submissions fail with ErrDraining
// and the counter records them.
func TestDrainingRejects(t *testing.T) {
	svc := New(Config{})
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, _, err := svc.Schedule(context.Background(), tinyScheduleRequest(), SubmitOptions{})
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("schedule while draining = %v, want ErrDraining", err)
	}
	if c := svc.Stats().Service; c.RejectedDraining != 1 {
		t.Errorf("rejected_draining = %d, want 1", c.RejectedDraining)
	}
}

// TestValidationErrors: malformed requests fail before admission.
func TestValidationErrors(t *testing.T) {
	svc := New(Config{})
	if _, err := svc.BeginSchedule(context.Background(), &ScheduleRequest{}, SubmitOptions{}); err == nil {
		t.Error("nil network accepted")
	}
	req := tinyScheduleRequest()
	req.Algorithm = 99
	if _, err := svc.BeginSchedule(context.Background(), req, SubmitOptions{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if c := svc.Stats().Service; c.Admitted != 0 {
		t.Errorf("admitted = %d after only invalid requests, want 0", c.Admitted)
	}
}

func waitForCounter(t *testing.T, c *atomic.Int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for counter to reach %d (have %d)", want, c.Load())
		}
		time.Sleep(time.Millisecond)
	}
}
