package service

import (
	"secureloop/internal/authblock"
	"secureloop/internal/dse"
	"secureloop/internal/mapper"
	"secureloop/internal/store"
)

// Stats is the /v1/stats snapshot: the same counters the experiments
// binary prints with -cachestats, as structured JSON, plus the service's
// own request counters and the admission gate's instantaneous load.
type Stats struct {
	Service Counters  `json:"service"`
	Queue   QueueLoad `json:"queue"`

	MapperSearch  RatioStats      `json:"mapper_search_cache"`
	MapperTile    RatioStats      `json:"mapper_tile_cache"`
	MapperWarm    RatioStats      `json:"mapper_warm_store"`
	GuidedSearch  GuidedStatsBody `json:"guided_search"`
	AuthOptimal   RatioStats      `json:"authblock_optimal"`
	AuthTileBlock RatioStats      `json:"authblock_tile_block"`
	AuthDecomp    RatioStats      `json:"authblock_decomp"`
	AuthSizes     RatioStats      `json:"authblock_sizes"`
	SweepPrune    PruneStatsBody  `json:"sweep_prune"`
	Store         *StoreStatsBody `json:"store,omitempty"`
}

// QueueLoad is the admission gate's instantaneous state.
type QueueLoad struct {
	Running  int   `json:"running"`
	Queued   int   `json:"queued"`
	MemInUse int64 `json:"mem_in_use_bytes"`
	Draining bool  `json:"draining"`
}

// RatioStats is the common hit/miss cache shape. Fields a given cache does
// not track stay zero.
type RatioStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Shared    int64 `json:"shared,omitempty"`
	Stores    int64 `json:"stores,omitempty"`
	Evictions int64 `json:"evictions,omitempty"`
	Runs      int64 `json:"runs,omitempty"`
	Entries   int64 `json:"entries"`
}

// GuidedStatsBody is the guided mapper search's counters on the wire.
type GuidedStatsBody struct {
	Searches  int64 `json:"searches"`
	Evaluated int64 `json:"evaluated"`
	Pruned    int64 `json:"pruned"`
	Skipped   int64 `json:"skipped"`
	WarmSeeds int64 `json:"warm_seeds"`
}

// PruneStatsBody is the sweep coordinator's counters on the wire.
type PruneStatsBody struct {
	Bounded     int64 `json:"bounded"`
	Pruned      int64 `json:"pruned"`
	Deferred    int64 `json:"deferred"`
	Reevaluated int64 `json:"reevaluated"`
	FullEvals   int64 `json:"full_evals"`
	StoreHits   int64 `json:"store_hits"`
}

// StoreStatsBody is the persistent store's counters on the wire.
type StoreStatsBody struct {
	Hits            int64 `json:"hits"`
	Misses          int64 `json:"misses"`
	Puts            int64 `json:"puts"`
	Corrupt         int64 `json:"corrupt"`
	EvictedSegments int64 `json:"evicted_segments"`
	Entries         int   `json:"entries"`
	Bytes           int64 `json:"bytes"`
}

// Stats snapshots every counter the service can observe.
func (s *Service) Stats() Stats {
	out := Stats{Service: s.counters()}
	out.Queue.Running, out.Queue.Queued, out.Queue.MemInUse, out.Queue.Draining = s.adm.Load()

	ms := mapper.CacheStats()
	out.MapperSearch = RatioStats{Hits: ms.Hits, Misses: ms.Misses, Shared: ms.Shared, Entries: ms.Entries}
	ts := mapper.TileCacheStats()
	out.MapperTile = RatioStats{Hits: ts.Hits, Misses: ts.Misses, Evictions: ts.Evictions, Entries: ts.Entries}
	ws := mapper.WarmStartStats()
	out.MapperWarm = RatioStats{Hits: ws.Hits, Misses: ws.Misses, Stores: ws.Stores, Evictions: ws.Evictions, Entries: ws.Entries}
	gs := mapper.GuidedSearchStats()
	out.GuidedSearch = GuidedStatsBody{Searches: gs.Searches, Evaluated: gs.Evaluated, Pruned: gs.Pruned, Skipped: gs.Skipped, WarmSeeds: gs.WarmSeeds}
	opt, tile := authblock.CacheStats()
	out.AuthOptimal = RatioStats{Hits: opt.Hits, Misses: opt.Misses, Runs: opt.Runs, Entries: opt.Entries}
	out.AuthTileBlock = RatioStats{Hits: tile.Hits, Misses: tile.Misses, Entries: tile.Entries}
	dc, sc := authblock.DecompCacheStats()
	out.AuthDecomp = RatioStats{Hits: dc.Hits, Misses: dc.Misses, Evictions: dc.Evictions, Entries: dc.Entries}
	out.AuthSizes = RatioStats{Hits: sc.Hits, Misses: sc.Misses, Evictions: sc.Evictions, Entries: sc.Entries}
	ps := dse.PruneStats()
	out.SweepPrune = PruneStatsBody{Bounded: ps.Bounded, Pruned: ps.Pruned, Deferred: ps.Deferred, Reevaluated: ps.Reevaluated, FullEvals: ps.FullEvals, StoreHits: ps.StoreHits}
	if st := s.cfg.Store; st != nil {
		out.Store = storeStatsBody(st.Stats())
	}
	return out
}

func storeStatsBody(ss store.Stats) *StoreStatsBody {
	return &StoreStatsBody{
		Hits:            ss.Hits,
		Misses:          ss.Misses,
		Puts:            ss.Puts,
		Corrupt:         ss.Corrupt,
		EvictedSegments: ss.EvictedSegments,
		Entries:         ss.Entries,
		Bytes:           ss.Bytes,
	}
}

func (s *Service) counters() Counters {
	return Counters{
		Admitted:          s.admitted.Load(),
		Coalesced:         s.coalesced.Load(),
		RejectedQueueFull: s.rejQueue.Load(),
		RejectedTooLarge:  s.rejLarge.Load(),
		RejectedDraining:  s.rejDraining.Load(),
		Completed:         s.completed.Load(),
		Failed:            s.failed.Load(),
		Cancelled:         s.cancelled.Load(),
		StoreHits:         s.storeHits.Load(),
	}
}
