package service

import (
	"secureloop/internal/arch"
	"secureloop/internal/core"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/dse"
	"secureloop/internal/mapper"
	"secureloop/internal/store"
	"secureloop/internal/workload"
)

// Request identity: every service request is content-addressed with the
// store's canonical key codec, and that key is the singleflight coalescing
// identity — two requests share one flight exactly when their canonical
// encodings agree. The schedule key delegates to the scheduler's own
// EncodeRequest, so "identical service request" and "identical network-tier
// store request" are the same relation by construction.
//
// Deliberately excluded from every key (same rationale as internal/core's
// network tier): Name fields are labels over encoded numerics, and the
// sweep's dispatch-shaping knobs are proven result-neutral.
//
// storekey:exclude workload.Network.Name results are shape-keyed; the network name is a label
// storekey:exclude workload.Layer.Name results are shape-keyed; the layer name is a label
// storekey:exclude arch.Spec.Name architecture names are labels over the encoded numerics
// storekey:exclude arch.DRAMTech.Name DRAM technology names are labels over the encoded numerics
// storekey:exclude cryptoengine.EngineArch.Name engine names are labels over the encoded unit specs
// storekey:exclude service.SweepRequest.Shards sharding never changes the result; it shapes dispatch only
// storekey:exclude service.SweepRequest.BoundSlack slack only converts prunes into evaluations; the front is identical

// Key prefixes namespace the three request kinds within one store.
const (
	schedulePrefix  = "service.schedule"
	sweepPrefix     = "service.sweep"
	authBlockPrefix = "service.authblock"
)

// persistScheduleKey canonically encodes the schedule request identity.
func persistScheduleKey(req *ScheduleRequest) store.Key {
	e := store.NewEnc().String(schedulePrefix)
	req.schedulerEnc(e)
	return e.Key()
}

// schedulerEnc materialises the core.Scheduler the request describes and,
// when e is non-nil, appends the request's canonical identity encoding. One
// function does both on purpose: the executed configuration and the encoded
// identity read exactly the same request fields, so a new knob that changes
// scheduling cannot ship without joining the key (the keydrift check pins
// the field set here).
func (req *ScheduleRequest) schedulerEnc(e *store.Enc) *core.Scheduler {
	sch := core.New(req.Spec, req.Crypto)
	sch.Objective = req.Objective
	if req.TopK > 0 {
		sch.TopK = req.TopK
	}
	if req.AnnealIterations > 0 {
		sch.Anneal.Iterations = req.AnnealIterations
	}
	sch.Mapper = req.Mapper
	if e != nil {
		sch.EncodeRequest(e, req.Network, req.Algorithm)
	}
	return sch
}

// persistSweepKey canonically encodes the sweep request identity.
func persistSweepKey(req *SweepRequest) store.Key {
	e := store.NewEnc().String(sweepPrefix)
	req.optionsEnc(e)
	return e.Key()
}

// optionsEnc materialises the dse.Options the request describes and, when e
// is non-nil, appends the request's canonical identity encoding — the same
// single-definition pattern as schedulerEnc. Shards and BoundSlack flow
// into the options but not the encoding: both are waived above as proven
// result-neutral.
func (req *SweepRequest) optionsEnc(e *store.Enc) dse.Options {
	opt := dse.Options{
		AnnealIterations: req.AnnealIterations,
		Mapper:           req.Mapper,
		Shards:           req.Shards,
		Prune:            req.Front,
		BoundSlack:       req.BoundSlack,
	}
	if e != nil {
		e.Int(int64(req.Algorithm)).Bool(req.Front)
		encodeNetwork(e, req.Network)
		e.Int(int64(len(req.Specs)))
		for i := range req.Specs {
			encodeSpec(e, &req.Specs[i])
		}
		e.Int(int64(len(req.Cryptos)))
		for i := range req.Cryptos {
			encodeCrypto(e, &req.Cryptos[i])
		}
		e.Int(int64(req.AnnealIterations))
		e.Int(int64(req.Mapper.Mode)).Float(req.Mapper.Epsilon).Bool(req.Mapper.DisableWarmStart)
	}
	return opt
}

// persistAuthBlockKey canonically encodes the authblock request identity.
func persistAuthBlockKey(req *AuthBlockRequest) store.Key {
	e := store.NewEnc().String(authBlockPrefix)
	encodeAuthBlockRequest(e, req)
	return e.Key()
}

// encodeAuthBlockRequest appends every field of the grids, the params and
// the sweep selection — the full dependency set of the response.
func encodeAuthBlockRequest(e *store.Enc, req *AuthBlockRequest) {
	p, c := req.Producer, req.Consumer
	e.Int(int64(p.C)).Int(int64(p.H)).Int(int64(p.W)).
		Int(int64(p.TileC)).Int(int64(p.TileH)).Int(int64(p.TileW)).
		Int(p.WritesPerTile)
	e.Int(int64(c.TileC)).
		Int(int64(c.WinH)).Int(int64(c.WinW)).
		Int(int64(c.StepH)).Int(int64(c.StepW)).
		Int(int64(c.OffH)).Int(int64(c.OffW)).
		Int(int64(c.CountC)).Int(int64(c.CountH)).Int(int64(c.CountW)).
		Int(c.FetchesPerTile)
	e.Int(int64(req.Params.WordBits)).Int(int64(req.Params.HashBits))
	e.Int(int64(req.Orientation)).Int(int64(req.MaxU))
}

// encodeNetwork appends the network's shape identity: every layer shape in
// order, then the segment structure (the same field set as the core network
// key's shape section).
func encodeNetwork(e *store.Enc, net *workload.Network) {
	e.Int(int64(len(net.Layers)))
	for i := range net.Layers {
		mapper.EncodeLayerShape(e, net.Layers[i])
	}
	e.Int(int64(len(net.Segments)))
	for _, seg := range net.Segments {
		e.Int(int64(len(seg)))
		for _, li := range seg {
			e.Int(int64(li))
		}
	}
}

// encodeSpec appends the architecture numerics (names are labels, waived).
func encodeSpec(e *store.Enc, spec *arch.Spec) {
	e.Int(int64(spec.PEsX)).Int(int64(spec.PEsY)).
		Int(int64(spec.GlobalBufferBytes)).Int(int64(spec.RegFileBytesPerPE)).
		Int(int64(spec.WordBits)).Float(spec.ClockHz).
		Int(int64(spec.DRAM.BytesPerCycle)).Float(spec.DRAM.EnergyPerBit)
}

// encodeCrypto appends the crypto-engine numerics.
func encodeCrypto(e *store.Enc, c *cryptoengine.Config) {
	eng := c.Engine
	e.Int(int64(eng.AES.Cycles)).Float(eng.AES.AreaKGates).Float(eng.AES.EnergyPJ).
		Int(int64(eng.GFMult.Cycles)).Float(eng.GFMult.AreaKGates).Float(eng.GFMult.EnergyPJ).
		Int(int64(c.CountPerDatatype))
}
