package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"secureloop/internal/arch"
	"secureloop/internal/authblock"
	"secureloop/internal/core"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/mapper"
	"secureloop/internal/workload"
)

// Wire DTOs: the JSON request shapes cmd/secured accepts and
// internal/service/client sends. Decoding resolves them into the typed
// requests of this package; every named thing (network, DRAM tech, crypto
// engine, algorithm, objective, mapper mode, orientation) is looked up
// against the corresponding registry so typos fail loudly at the edge.

// ScheduleWire is the /v1/schedule request body.
type ScheduleWire struct {
	// Network is either a JSON string naming a built-in network ("alexnet",
	// "resnet18", "mobilenetv2", "vgg16") or an inline network object in the
	// workload JSON format.
	Network json.RawMessage `json:"network"`
	// Arch overrides the base Eyeriss-like architecture field by field.
	Arch *ArchWire `json:"arch,omitempty"`
	// Crypto selects the cryptographic engine (default: pipelined x 1).
	Crypto *CryptoWire `json:"crypto,omitempty"`
	// Algorithm names the Table 1 algorithm (default "Crypt-Opt-Cross").
	Algorithm string `json:"algorithm,omitempty"`
	// Objective is "latency" (default) or "edp".
	Objective string `json:"objective,omitempty"`
	// TopK / AnnealIterations override the scheduler knobs when positive.
	TopK             int `json:"top_k,omitempty"`
	AnnealIterations int `json:"anneal_iterations,omitempty"`
	// Mapper selects the loopnest search strategy.
	Mapper *MapperWire `json:"mapper,omitempty"`
	// DeadlineMS bounds the compute time in milliseconds (0: server default).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// ArchWire overrides arch.Base() field by field; zero fields keep the base
// value.
type ArchWire struct {
	Name              string  `json:"name,omitempty"`
	PEsX              int     `json:"pes_x,omitempty"`
	PEsY              int     `json:"pes_y,omitempty"`
	GlobalBufferBytes int     `json:"global_buffer_bytes,omitempty"`
	RegFileBytesPerPE int     `json:"regfile_bytes_per_pe,omitempty"`
	WordBits          int     `json:"word_bits,omitempty"`
	ClockHz           float64 `json:"clock_hz,omitempty"`
	// DRAM names a known DRAM technology: "LPDDR4-64B", "LPDDR4-128B",
	// "HBM2-64B".
	DRAM string `json:"dram,omitempty"`
}

// CryptoWire selects a crypto engine by name and replication count.
type CryptoWire struct {
	// Engine is "pipelined", "parallel" or "serial".
	Engine string `json:"engine"`
	// Count is the engine count per datatype (default 1).
	Count int `json:"count,omitempty"`
}

// MapperWire selects the loopnest search strategy.
type MapperWire struct {
	// Mode is "exhaustive" (default) or "guided".
	Mode string `json:"mode,omitempty"`
	// Epsilon is the guided search's exploration margin.
	Epsilon float64 `json:"epsilon,omitempty"`
	// DisableWarmStart turns off cross-request warm starts.
	DisableWarmStart bool `json:"disable_warm_start,omitempty"`
}

// SweepWire is the /v1/sweep request body.
type SweepWire struct {
	// Network: as in ScheduleWire.
	Network json.RawMessage `json:"network"`
	// Specs and Cryptos span the design space; both empty means the paper's
	// Figure 16 space over the base architecture.
	Specs   []ArchWire   `json:"specs,omitempty"`
	Cryptos []CryptoWire `json:"cryptos,omitempty"`
	// Algorithm names the Table 1 algorithm (default "Crypt-Opt-Cross").
	Algorithm string `json:"algorithm,omitempty"`
	// AnnealIterations overrides the per-point annealing budget.
	AnnealIterations int `json:"anneal_iterations,omitempty"`
	// Mapper selects the per-layer search strategy for every point.
	Mapper *MapperWire `json:"mapper,omitempty"`
	// Front requests the dominance-pruned front-only sweep.
	Front bool `json:"front,omitempty"`
	// Shards / BoundSlack tune the coordinator (result-neutral).
	Shards     int     `json:"shards,omitempty"`
	BoundSlack float64 `json:"bound_slack,omitempty"`
	// DeadlineMS bounds the compute time in milliseconds (0: server default).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// AuthBlockWire is the /v1/authblock request body.
type AuthBlockWire struct {
	Producer ProducerWire `json:"producer"`
	Consumer ConsumerWire `json:"consumer"`
	// WordBits / HashBits override authblock.DefaultParams when positive.
	WordBits int `json:"word_bits,omitempty"`
	HashBits int `json:"hash_bits,omitempty"`
	// Orientation ("horizontal", "vertical", "channel") and MaxU select the
	// optional block-size sweep curve.
	Orientation string `json:"orientation,omitempty"`
	MaxU        int    `json:"max_u,omitempty"`
	// DeadlineMS bounds the compute time in milliseconds (0: server default).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// ProducerWire mirrors authblock.ProducerGrid.
type ProducerWire struct {
	C             int   `json:"c"`
	H             int   `json:"h"`
	W             int   `json:"w"`
	TileC         int   `json:"tile_c"`
	TileH         int   `json:"tile_h"`
	TileW         int   `json:"tile_w"`
	WritesPerTile int64 `json:"writes_per_tile,omitempty"`
}

// ConsumerWire mirrors authblock.ConsumerGrid.
type ConsumerWire struct {
	TileC          int   `json:"tile_c"`
	WinH           int   `json:"win_h"`
	WinW           int   `json:"win_w"`
	StepH          int   `json:"step_h"`
	StepW          int   `json:"step_w"`
	OffH           int   `json:"off_h,omitempty"`
	OffW           int   `json:"off_w,omitempty"`
	CountC         int   `json:"count_c"`
	CountH         int   `json:"count_h"`
	CountW         int   `json:"count_w"`
	FetchesPerTile int64 `json:"fetches_per_tile,omitempty"`
}

// Resolve turns the wire form into a typed ScheduleRequest.
func (w *ScheduleWire) Resolve() (*ScheduleRequest, error) {
	net, err := resolveNetwork(w.Network)
	if err != nil {
		return nil, err
	}
	spec, err := resolveArch(w.Arch)
	if err != nil {
		return nil, err
	}
	crypto, err := resolveCrypto(w.Crypto)
	if err != nil {
		return nil, err
	}
	alg, err := ResolveAlgorithm(w.Algorithm)
	if err != nil {
		return nil, err
	}
	obj, err := resolveObjective(w.Objective)
	if err != nil {
		return nil, err
	}
	mo, err := resolveMapper(w.Mapper)
	if err != nil {
		return nil, err
	}
	return &ScheduleRequest{
		Network:          net,
		Spec:             spec,
		Crypto:           crypto,
		Algorithm:        alg,
		Objective:        obj,
		TopK:             w.TopK,
		AnnealIterations: w.AnnealIterations,
		Mapper:           mo,
	}, nil
}

// Resolve turns the wire form into a typed SweepRequest.
func (w *SweepWire) Resolve() (*SweepRequest, error) {
	net, err := resolveNetwork(w.Network)
	if err != nil {
		return nil, err
	}
	alg, err := ResolveAlgorithm(w.Algorithm)
	if err != nil {
		return nil, err
	}
	mo, err := resolveMapper(w.Mapper)
	if err != nil {
		return nil, err
	}
	req := &SweepRequest{
		Network:          net,
		Algorithm:        alg,
		AnnealIterations: w.AnnealIterations,
		Mapper:           mo,
		Front:            w.Front,
		Shards:           w.Shards,
		BoundSlack:       w.BoundSlack,
	}
	for i := range w.Specs {
		spec, err := resolveArch(&w.Specs[i])
		if err != nil {
			return nil, err
		}
		req.Specs = append(req.Specs, spec)
	}
	for i := range w.Cryptos {
		crypto, err := resolveCrypto(&w.Cryptos[i])
		if err != nil {
			return nil, err
		}
		req.Cryptos = append(req.Cryptos, crypto)
	}
	if (len(req.Specs) == 0) != (len(req.Cryptos) == 0) {
		return nil, fmt.Errorf("service: specs and cryptos must both be given or both omitted")
	}
	return req, nil
}

// Resolve turns the wire form into a typed AuthBlockRequest.
func (w *AuthBlockWire) Resolve() (*AuthBlockRequest, error) {
	par := authblock.DefaultParams()
	if w.WordBits > 0 {
		par.WordBits = w.WordBits
	}
	if w.HashBits > 0 {
		par.HashBits = w.HashBits
	}
	o, err := resolveOrientation(w.Orientation)
	if err != nil {
		return nil, err
	}
	p := authblock.ProducerGrid{
		C: w.Producer.C, H: w.Producer.H, W: w.Producer.W,
		TileC: w.Producer.TileC, TileH: w.Producer.TileH, TileW: w.Producer.TileW,
		WritesPerTile: w.Producer.WritesPerTile,
	}
	c := authblock.ConsumerGrid{
		TileC: w.Consumer.TileC,
		WinH:  w.Consumer.WinH, WinW: w.Consumer.WinW,
		StepH: w.Consumer.StepH, StepW: w.Consumer.StepW,
		OffH: w.Consumer.OffH, OffW: w.Consumer.OffW,
		CountC: w.Consumer.CountC, CountH: w.Consumer.CountH, CountW: w.Consumer.CountW,
		FetchesPerTile: w.Consumer.FetchesPerTile,
	}
	return &AuthBlockRequest{
		Producer:    p,
		Consumer:    c,
		Params:      par,
		Orientation: o,
		MaxU:        w.MaxU,
	}, nil
}

// resolveNetwork accepts either a quoted built-in network name or an inline
// workload JSON object.
func resolveNetwork(raw json.RawMessage) (*workload.Network, error) {
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("service: request has no network")
	}
	if trimmed[0] == '"' {
		var name string
		if err := json.Unmarshal(trimmed, &name); err != nil {
			return nil, fmt.Errorf("service: network name: %w", err)
		}
		return workload.ByName(name)
	}
	return workload.ParseJSON(bytes.NewReader(trimmed))
}

// resolveArch overlays the wire fields on arch.Base().
func resolveArch(w *ArchWire) (arch.Spec, error) {
	spec := arch.Base()
	if w == nil {
		return spec, nil
	}
	if w.Name != "" {
		spec.Name = w.Name
	}
	if w.PEsX > 0 {
		spec.PEsX = w.PEsX
	}
	if w.PEsY > 0 {
		spec.PEsY = w.PEsY
	}
	if w.GlobalBufferBytes > 0 {
		spec.GlobalBufferBytes = w.GlobalBufferBytes
	}
	if w.RegFileBytesPerPE > 0 {
		spec.RegFileBytesPerPE = w.RegFileBytesPerPE
	}
	if w.WordBits > 0 {
		spec.WordBits = w.WordBits
	}
	if w.ClockHz > 0 {
		spec.ClockHz = w.ClockHz
	}
	if w.DRAM != "" {
		found := false
		for _, t := range arch.DRAMTechs() {
			if strings.EqualFold(t.Name, w.DRAM) {
				spec.DRAM = t
				found = true
				break
			}
		}
		if !found {
			return arch.Spec{}, fmt.Errorf("service: unknown DRAM technology %q", w.DRAM)
		}
	}
	return spec, nil
}

// resolveCrypto looks up the engine by name (default pipelined x 1).
func resolveCrypto(w *CryptoWire) (cryptoengine.Config, error) {
	name, count := "pipelined", 1
	if w != nil {
		if w.Engine != "" {
			name = w.Engine
		}
		if w.Count > 0 {
			count = w.Count
		}
	}
	eng, err := cryptoengine.ByName(name)
	if err != nil {
		return cryptoengine.Config{}, err
	}
	return cryptoengine.Config{Engine: eng, CountPerDatatype: count}, nil
}

// ResolveAlgorithm parses a Table 1 algorithm name (empty: Crypt-Opt-Cross,
// the paper's full algorithm). Matching is case-insensitive.
func ResolveAlgorithm(name string) (core.Algorithm, error) {
	if name == "" {
		return core.CryptOptCross, nil
	}
	for alg := core.Unsecure; alg <= core.CryptOptCross; alg++ {
		if strings.EqualFold(alg.String(), name) {
			return alg, nil
		}
	}
	return 0, fmt.Errorf("service: unknown algorithm %q", name)
}

// resolveObjective parses "latency" (default) or "edp".
func resolveObjective(name string) (core.Objective, error) {
	switch strings.ToLower(name) {
	case "", "latency":
		return core.MinLatency, nil
	case "edp":
		return core.MinEDP, nil
	}
	return 0, fmt.Errorf("service: unknown objective %q", name)
}

// resolveMapper parses the mapper mode ("exhaustive" default, "guided").
func resolveMapper(w *MapperWire) (mapper.Options, error) {
	var opt mapper.Options
	if w == nil {
		return opt, nil
	}
	switch strings.ToLower(w.Mode) {
	case "", "exhaustive":
		opt.Mode = mapper.Exhaustive
	case "guided":
		opt.Mode = mapper.Guided
	default:
		return opt, fmt.Errorf("service: unknown mapper mode %q", w.Mode)
	}
	opt.Epsilon = w.Epsilon
	opt.DisableWarmStart = w.DisableWarmStart
	return opt, nil
}

// resolveOrientation parses an orientation name (empty: horizontal).
func resolveOrientation(name string) (authblock.Orientation, error) {
	if name == "" {
		return authblock.AlongQ, nil
	}
	for o := authblock.Orientation(0); o < authblock.NumOrientations; o++ {
		if strings.EqualFold(o.String(), name) {
			return o, nil
		}
	}
	return 0, fmt.Errorf("service: unknown orientation %q", name)
}
