package service

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"secureloop/internal/authblock"
	"secureloop/internal/dse"
	"secureloop/internal/obs"
	"secureloop/internal/store"
)

// Config assembles a Service.
type Config struct {
	// Admission bounds concurrent load (zero value: documented defaults).
	Admission AdmissionConfig
	// Store, when non-nil, is the persistent content-addressed result tier
	// mounted under every request: identical repeats replay byte-identical
	// results without re-evaluating anything.
	Store *store.Store
	// MaxParallel bounds each request's internal worker pool (<= 0: one
	// worker per CPU). Results are identical at any setting.
	MaxParallel int
	// Observe additionally receives every request's progress events (for
	// the daemon's -progress log); per-request subscribers attach through
	// the flight fanout regardless.
	Observe obs.Observer
	// EventBuffer is the per-subscriber progress buffer (default 256).
	// When a subscriber falls behind, events are dropped for it alone —
	// see obs.Fanout's drop policy.
	EventBuffer int
}

func (c Config) eventBuffer() int {
	if c.EventBuffer > 0 {
		return c.EventBuffer
	}
	return 256
}

// Counters are the service's monotonic request counters (JSON-ready for
// the stats endpoint).
type Counters struct {
	// Admitted counts flight leaders that took an admission slot.
	Admitted int64 `json:"admitted"`
	// Coalesced counts requests served by joining an identical in-flight
	// request instead of taking a slot.
	Coalesced int64 `json:"coalesced"`
	// RejectedQueueFull / RejectedTooLarge / RejectedDraining count shed
	// requests by reason.
	RejectedQueueFull int64 `json:"rejected_queue_full"`
	RejectedTooLarge  int64 `json:"rejected_too_large"`
	RejectedDraining  int64 `json:"rejected_draining"`
	// Completed / Failed / Cancelled count finished flights by outcome
	// (Cancelled is the subset of Failed whose error is the context's).
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	// StoreHits counts completed flights answered by the persistent store
	// without evaluation.
	StoreHits int64 `json:"store_hits"`
}

// Service is the scheduling service: admission → coalesce → compute →
// stream. It is safe for concurrent use.
type Service struct {
	cfg Config
	adm *admission

	mu      sync.Mutex
	flights map[store.Key]*flight // guarded by mu

	admitted, coalesced  atomic.Int64
	rejQueue, rejLarge   atomic.Int64
	rejDraining          atomic.Int64
	completed, failed    atomic.Int64
	cancelled, storeHits atomic.Int64
}

// New assembles a Service from the config.
func New(cfg Config) *Service {
	return &Service{
		cfg:     cfg,
		adm:     newAdmission(cfg.Admission),
		flights: make(map[store.Key]*flight),
	}
}

// Store exposes the mounted persistent store (nil when none).
func (s *Service) Store() *store.Store { return s.cfg.Store }

// Drain stops admitting new requests and blocks until every in-flight
// request has finished, or until ctx expires.
func (s *Service) Drain(ctx context.Context) error {
	return s.adm.Drain(ctx)
}

// RetryAfterSeconds is the Retry-After hint for shed requests.
func (s *Service) RetryAfterSeconds() int { return s.adm.RetryAfterSeconds() }

// flight is one in-progress computation of a request identity. All
// concurrent requests with the same canonical key share one flight: the
// first becomes the leader (admitted, computes under its own context),
// the rest are followers (subscribe to the fanout, wait on done).
type flight struct {
	fan  *obs.Fanout
	done chan struct{}

	// Results, valid after done closes.
	body     []byte
	value    any
	storeHit bool
	err      error
}

// SubmitOptions tunes one submission.
type SubmitOptions struct {
	// Deadline bounds the compute time (0: the admission default; clamped
	// to the admission maximum). The deadline applies to the flight this
	// request leads; a follower's wait is bounded by its own context.
	Deadline time.Duration
	// MemoryEstimate is the request's admission memory estimate in bytes
	// (0: a small default). Estimates gate admission against the
	// memory budget; they are not enforced allocations.
	MemoryEstimate int64
	// Events, when true, attaches a progress subscription to the returned
	// Pending. Leaders subscribe before compute starts (no events missed);
	// followers join mid-stream.
	Events bool
}

// Pending is one submitted request: an optional ordered progress stream
// plus the eventual result. The caller must consume Events (if requested)
// until closed, or call Cancel, before abandoning the Pending.
type Pending struct {
	events chan obs.Event
	done   chan struct{}
	cancel context.CancelFunc

	body      []byte
	value     any
	storeHit  bool
	coalesced bool
	err       error
}

// Events is the ordered progress stream (nil unless requested). It closes
// when the result is ready.
func (p *Pending) Events() <-chan obs.Event { return p.events }

// Done closes when the result is ready.
func (p *Pending) Done() <-chan struct{} { return p.done }

// Cancel abandons the submission from this caller's side. The underlying
// flight keeps running if other callers still wait on it.
func (p *Pending) Cancel() { p.cancel() }

// Result blocks until the flight finishes and returns the canonical
// response body, the typed response value, and the serving accounting.
func (p *Pending) Result() (body []byte, value any, storeHit, coalesced bool, err error) {
	<-p.done
	return p.body, p.value, p.storeHit, p.coalesced, p.err
}

// runFunc computes one response under a context, emitting progress through
// ob: it returns the typed response, its canonical body, and whether the
// persistent store answered without evaluation.
type runFunc func(ctx context.Context, ob obs.Observer) (value any, body []byte, storeHit bool, err error)

// submit runs the coalesce → admit → compute pipeline for one request
// identity. The returned Pending's goroutine drives the singleflight retry
// loop: a follower whose leader died of the *leader's* context failure
// retries (and may lead the next flight), mirroring the mapper cache's
// in-flight protocol, so one impatient client can never poison the result
// for the patient ones.
func (s *Service) submit(ctx context.Context, key store.Key, opts SubmitOptions, run runFunc) *Pending {
	cctx, cancel := context.WithCancel(ctx)
	p := &Pending{
		done:   make(chan struct{}),
		cancel: cancel,
	}
	if opts.Events {
		p.events = make(chan obs.Event, s.cfg.eventBuffer())
	}
	go func() {
		defer close(p.done)
		defer cancel()
		if p.events != nil {
			defer close(p.events)
		}
		p.body, p.value, p.storeHit, p.coalesced, p.err = s.drive(cctx, key, opts, p.events, run)
	}()
	return p
}

// drive is the submit goroutine body: join or lead flights until one
// resolves, forwarding its events into out (when non-nil). The leader's
// compute runs in its own goroutine so this one can keep draining the
// subscription while it works — events reach out live, and a subscriber
// can never fill the fanout buffer unread during compute.
func (s *Service) drive(ctx context.Context, key store.Key, opts SubmitOptions, out chan obs.Event, run runFunc) (body []byte, value any, storeHit, coalesced bool, err error) {
	everCoalesced := false
	for {
		fl, leader := s.joinOrLead(key)
		if !leader {
			everCoalesced = true
			s.coalesced.Add(1)
		}
		var sub *obs.Subscription
		if out != nil {
			sub = fl.fan.Subscribe(s.cfg.eventBuffer())
		}
		if leader {
			go s.lead(ctx, key, fl, opts, run)
		}
		forward(ctx, fl, sub, out)
		if leader {
			// The flight is bound to our context, so it always finishes:
			// wait for it rather than racing ctx.Done, keeping the result
			// fields and counters settled before the Pending resolves.
			<-fl.done
		} else {
			select {
			case <-fl.done:
			case <-ctx.Done():
				if sub != nil {
					sub.Unsubscribe()
				}
				return nil, nil, false, everCoalesced, ctx.Err()
			}
		}
		if fl.err == nil || leader || ctx.Err() != nil || !isCtxErr(fl.err) {
			return fl.body, fl.value, fl.storeHit, everCoalesced, fl.err
		}
		// The flight died of a context failure that is not ours: its leader
		// gave up. Retry — the next round may make us the leader. (A leader
		// returns its own flight's outcome above — including its deadline
		// expiry — and never retries.)
	}
}

// joinOrLead returns the live flight for key (follower) or registers a new
// one (leader).
func (s *Service) joinOrLead(key store.Key) (*flight, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fl, ok := s.flights[key]; ok {
		return fl, false
	}
	fl := &flight{fan: obs.NewFanout(), done: make(chan struct{})}
	s.flights[key] = fl
	return fl, true
}

// lead runs the leader's side of one flight: admission, deadline, compute,
// publish, retire. It runs in its own goroutine (the driving goroutine
// forwards events concurrently); the flight's lifetime is the leader's
// context.
func (s *Service) lead(ctx context.Context, key store.Key, fl *flight, opts SubmitOptions, run runFunc) {
	finish := func(value any, body []byte, storeHit bool, err error) {
		s.mu.Lock()
		delete(s.flights, key)
		s.mu.Unlock()
		fl.value, fl.body, fl.storeHit, fl.err = value, body, storeHit, err
		s.account(storeHit, err)
		close(fl.done)
		fl.fan.Close()
	}

	release, err := s.adm.Admit(ctx, opts.MemoryEstimate)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			s.rejQueue.Add(1)
		case errors.Is(err, ErrRequestTooLarge):
			s.rejLarge.Add(1)
		case errors.Is(err, ErrDraining):
			s.rejDraining.Add(1)
		}
		finish(nil, nil, false, err)
		return
	}
	s.admitted.Add(1)
	rctx, rcancel := context.WithTimeout(ctx, s.adm.cfg.Deadline(opts.Deadline))
	value, body, storeHit, err := run(rctx, obs.Multi(fl.fan, s.cfg.Observe))
	rcancel()
	release()
	finish(value, body, storeHit, err)
}

// account tallies one finished flight.
func (s *Service) account(storeHit bool, err error) {
	switch {
	case err == nil:
		s.completed.Add(1)
		if storeHit {
			s.storeHits.Add(1)
		}
	default:
		s.failed.Add(1)
		if isCtxErr(err) {
			s.cancelled.Add(1)
		}
	}
}

// forward drains sub into out without blocking the flight: it copies events
// as they arrive until the flight finishes or the caller's context ends.
// Runs inline in the driving goroutine for followers and leaders alike,
// concurrently with the compute (lead runs in its own goroutine), so events
// stream into out live; the leader subscribes before compute starts, so it
// misses none.
func forward(ctx context.Context, fl *flight, sub *obs.Subscription, out chan obs.Event) {
	if sub == nil {
		return
	}
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				return
			}
			select {
			case out <- ev:
			default:
				// The caller's buffer is full: drop, matching the fanout's
				// own policy. Seq gaps make the drop detectable.
			}
		case <-ctx.Done():
			sub.Unsubscribe()
			return
		case <-fl.done:
			// Drain what is buffered, then stop.
			for {
				select {
				case ev, ok := <-sub.Events():
					if !ok {
						return
					}
					select {
					case out <- ev:
					default:
					}
				default:
					sub.Unsubscribe()
					return
				}
			}
		}
	}
}

// isCtxErr reports whether err stems from context cancellation or timeout.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Schedule computes (or coalesces onto, or replays from the store) one
// network schedule. Blocking; for progress streaming use BeginSchedule.
func (s *Service) Schedule(ctx context.Context, req *ScheduleRequest, opts SubmitOptions) (*ScheduleResponse, []byte, error) {
	p, err := s.BeginSchedule(ctx, req, opts)
	if err != nil {
		return nil, nil, err
	}
	body, value, _, _, err := p.Result()
	if err != nil {
		return nil, nil, err
	}
	return value.(*ScheduleResponse), body, nil
}

// BeginSchedule validates and submits a schedule request, returning its
// Pending handle.
func (s *Service) BeginSchedule(ctx context.Context, req *ScheduleRequest, opts SubmitOptions) (*Pending, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if opts.MemoryEstimate == 0 {
		opts.MemoryEstimate = scheduleMemEstimate(req)
	}
	return s.submit(ctx, persistScheduleKey(req), opts, func(ctx context.Context, ob obs.Observer) (any, []byte, bool, error) {
		return s.ScheduleBody(ctx, req, ob)
	}), nil
}

// ScheduleBody is the pure compute path of one schedule request: given a
// context and an observer it produces the typed response and its canonical
// body. It is a securelint puredet seed — nothing it reaches may read
// wall-clock time, the environment, or leak map order into the result.
func (s *Service) ScheduleBody(ctx context.Context, req *ScheduleRequest, ob obs.Observer) (*ScheduleResponse, []byte, bool, error) {
	sch := req.scheduler()
	sch.MaxParallel = s.cfg.MaxParallel
	sch.Observe = obs.OrNop(ob)
	sch.Store = s.cfg.Store
	storeHit := sch.StoredNetwork(req.Network, req.Algorithm)
	res, err := sch.ScheduleNetworkCtx(ctx, req.Network, req.Algorithm)
	if err != nil {
		return nil, nil, false, err
	}
	value := scheduleResponse(req, res)
	body, err := encodeBody(value)
	if err != nil {
		return nil, nil, false, err
	}
	return value, body, storeHit, nil
}

// Sweep computes (or coalesces onto) one design-space sweep. Blocking; for
// progress streaming use BeginSweep.
func (s *Service) Sweep(ctx context.Context, req *SweepRequest, opts SubmitOptions) (*SweepResponse, []byte, error) {
	p, err := s.BeginSweep(ctx, req, opts)
	if err != nil {
		return nil, nil, err
	}
	body, value, _, _, err := p.Result()
	if err != nil {
		return nil, nil, err
	}
	return value.(*SweepResponse), body, nil
}

// BeginSweep validates and submits a sweep request, returning its Pending
// handle.
func (s *Service) BeginSweep(ctx context.Context, req *SweepRequest, opts SubmitOptions) (*Pending, error) {
	d := req.Defaulted()
	req = &d
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if opts.MemoryEstimate == 0 {
		opts.MemoryEstimate = s.sweepMemEstimate(req)
	}
	return s.submit(ctx, persistSweepKey(req), opts, func(ctx context.Context, ob obs.Observer) (any, []byte, bool, error) {
		return s.SweepBody(ctx, req, ob)
	}), nil
}

// SweepBody is the pure compute path of one sweep request (a securelint
// puredet seed; see ScheduleBody).
func (s *Service) SweepBody(ctx context.Context, req *SweepRequest, ob obs.Observer) (*SweepResponse, []byte, bool, error) {
	opt := req.optionsEnc(nil)
	opt.Observe = obs.OrNop(ob)
	opt.MaxParallel = s.cfg.MaxParallel
	opt.Store = s.cfg.Store

	value := &SweepResponse{
		Network:   networkLabel(req.Network),
		Algorithm: req.Algorithm.String(),
		FrontOnly: req.Front,
	}
	var points []dse.DesignPoint
	if req.Front {
		res, err := dse.SweepFrontCtx(ctx, req.Network, req.Specs, req.Cryptos, req.Algorithm, opt)
		if err != nil {
			return nil, nil, false, err
		}
		points = res.Front
	} else {
		all, err := dse.SweepOptsCtx(ctx, req.Network, req.Specs, req.Cryptos, req.Algorithm, opt)
		if err != nil {
			return nil, nil, false, err
		}
		dse.MarkPareto(all)
		points = all
	}
	value.Points = make([]PointBody, 0, len(points))
	for _, d := range points {
		value.Points = append(value.Points, pointBody(d))
	}
	body, err := encodeBody(value)
	if err != nil {
		return nil, nil, false, err
	}
	return value, body, false, nil
}

// AuthBlock computes (or coalesces onto) one AuthBlock analysis. Blocking;
// for progress streaming use BeginAuthBlock.
func (s *Service) AuthBlock(ctx context.Context, req *AuthBlockRequest, opts SubmitOptions) (*AuthBlockResponse, []byte, error) {
	p, err := s.BeginAuthBlock(ctx, req, opts)
	if err != nil {
		return nil, nil, err
	}
	body, value, _, _, err := p.Result()
	if err != nil {
		return nil, nil, err
	}
	return value.(*AuthBlockResponse), body, nil
}

// BeginAuthBlock validates and submits an authblock request, returning its
// Pending handle.
func (s *Service) BeginAuthBlock(ctx context.Context, req *AuthBlockRequest, opts SubmitOptions) (*Pending, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if opts.MemoryEstimate == 0 {
		opts.MemoryEstimate = 1 << 20
	}
	return s.submit(ctx, persistAuthBlockKey(req), opts, func(ctx context.Context, ob obs.Observer) (any, []byte, bool, error) {
		return s.AuthBlockBody(ctx, req, ob)
	}), nil
}

// AuthBlockBody is the pure compute path of one authblock request (a
// securelint puredet seed; see ScheduleBody).
func (s *Service) AuthBlockBody(ctx context.Context, req *AuthBlockRequest, ob obs.Observer) (*AuthBlockResponse, []byte, bool, error) {
	var opt authblock.Result
	var err error
	storeHit := false
	if st := s.cfg.Store; st != nil {
		storeHit = authblock.StoredOptimal(st, req.Producer, req.Consumer, req.Params)
		opt, err = authblock.OptimalStoredCtx(ctx, st, req.Producer, req.Consumer, req.Params)
	} else {
		opt, err = authblock.OptimalCachedCtx(ctx, req.Producer, req.Consumer, req.Params)
	}
	if err != nil {
		return nil, nil, false, err
	}
	base, rehashed := authblock.TileAsAuthBlock(req.Producer, req.Consumer, req.Params)
	value := &AuthBlockResponse{
		Optimal:        assignmentBody(opt.Assignment),
		Costs:          costsBody(opt.Costs),
		Baseline:       costsBody(base),
		BaselineRehash: rehashed,
	}
	if req.MaxU > 0 {
		sweep, err := authblock.SweepCtx(ctx, req.Producer, req.Consumer, req.Orientation, req.MaxU, req.Params)
		if err != nil {
			return nil, nil, false, err
		}
		value.SweepOrientation = req.Orientation.String()
		value.Sweep = make([]SweepEntryBody, 0, len(sweep))
		for _, r := range sweep {
			value.Sweep = append(value.Sweep, SweepEntryBody{U: r.Assignment.U, Costs: costsBody(r.Costs)})
		}
	}
	body, err := encodeBody(value)
	if err != nil {
		return nil, nil, false, err
	}
	return value, body, storeHit, nil
}

// scheduleMemEstimate is the admission memory estimate of a schedule
// request: a base plus a per-layer allowance for candidate lists and pair
// matrices (TopK^2 per adjacent pair, but the coarse layer term dominates).
func scheduleMemEstimate(req *ScheduleRequest) int64 {
	const base, perLayer = 8 << 20, 1 << 20
	return base + int64(len(req.Network.Layers))*perLayer
}

// sweepMemEstimate scales the schedule estimate by this service's
// per-request worker-pool breadth: at most MaxParallel (default one per
// CPU) design points evaluate at once within one sweep.
func (s *Service) sweepMemEstimate(req *SweepRequest) int64 {
	per := scheduleMemEstimate(&ScheduleRequest{Network: req.Network})
	breadth := s.cfg.MaxParallel
	if breadth <= 0 {
		breadth = runtime.GOMAXPROCS(0)
	}
	return per * int64(breadth)
}
