// Package httpapi exposes the scheduling service over HTTP/JSON: the three
// compute endpoints (/v1/schedule, /v1/sweep, /v1/authblock) with optional
// server-sent-event progress streaming, plus /v1/health and /v1/stats.
//
// The request path is admission → coalesce → schedule → stream: every
// request is validated and content-addressed, joins an identical in-flight
// request when one exists, otherwise takes a bounded admission slot and
// computes under a per-request deadline. The request's context is the
// HTTP request context, so a client disconnect cancels the scheduling work
// (unless coalesced followers still wait on it).
//
// Response bodies are canonical: a warm repeat of an identical request is
// byte-identical. Per-serving accounting travels in headers only —
// X-Secured-Store (hit|miss) and X-Secured-Coalesced (1 when the request
// joined an in-flight computation).
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"secureloop/internal/service"
)

// statusClientClosedRequest is nginx's convention for a request whose
// client went away before the response; net/http has no constant for it.
const statusClientClosedRequest = 499

// Options tunes the handler.
type Options struct {
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
}

func (o Options) maxBody() int64 {
	if o.MaxBodyBytes > 0 {
		return o.MaxBodyBytes
	}
	return 8 << 20
}

type handler struct {
	svc  *service.Service
	opts Options
}

// NewHandler builds the HTTP handler over a service.
func NewHandler(svc *service.Service, opts Options) http.Handler {
	h := &handler{svc: svc, opts: opts}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/schedule", h.schedule)
	mux.HandleFunc("POST /v1/sweep", h.sweep)
	mux.HandleFunc("POST /v1/authblock", h.authblock)
	mux.HandleFunc("GET /v1/health", h.health)
	mux.HandleFunc("GET /v1/stats", h.stats)
	return mux
}

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func (h *handler) writeError(w http.ResponseWriter, r *http.Request, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, service.ErrQueueFull):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", strconv.Itoa(h.svc.RetryAfterSeconds()))
	case errors.Is(err, service.ErrDraining):
		status = http.StatusServiceUnavailable
	case errors.Is(err, service.ErrRequestTooLarge):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, context.DeadlineExceeded):
		// The per-request deadline expired — a designed admission-control
		// outcome, not a server fault; retryable with a longer deadline.
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = statusClientClosedRequest
	case isClientError(err):
		status = http.StatusBadRequest
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

// isClientError reports whether err is the requester's fault: every
// validation and wire-resolution error carries the package's "service:"
// prefix or arises before any computation starts.
func isClientError(err error) bool {
	var syn *json.SyntaxError
	var typ *json.UnmarshalTypeError
	if errors.As(err, &syn) || errors.As(err, &typ) {
		return true
	}
	msg := err.Error()
	return strings.HasPrefix(msg, "service:") ||
		strings.HasPrefix(msg, "workload:") ||
		strings.HasPrefix(msg, "arch:") ||
		strings.HasPrefix(msg, "core:") ||
		strings.HasPrefix(msg, "cryptoengine:") ||
		strings.HasPrefix(msg, "authblock:")
}

// decode reads one JSON request body with the size cap applied.
func (h *handler) decode(w http.ResponseWriter, r *http.Request, into any) error {
	r.Body = http.MaxBytesReader(w, r.Body, h.opts.maxBody())
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return service.ErrRequestTooLarge
		}
		return fmt.Errorf("service: bad request body: %w", err)
	}
	return nil
}

func wantsSSE(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// begin submits one decoded request and serves the pending result as plain
// JSON or as an SSE stream.
func (h *handler) begin(w http.ResponseWriter, r *http.Request, deadlineMS int64, start func(opts service.SubmitOptions) (*service.Pending, error)) {
	sse := wantsSSE(r)
	opts := service.SubmitOptions{
		Deadline: time.Duration(deadlineMS) * time.Millisecond,
		Events:   sse,
	}
	p, err := start(opts)
	if err != nil {
		h.writeError(w, r, err)
		return
	}
	if sse {
		h.serveSSE(w, r, p)
		return
	}
	body, _, storeHit, coalesced, err := p.Result()
	if err != nil {
		h.writeError(w, r, err)
		return
	}
	setAccounting(w.Header(), storeHit, coalesced)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	_, _ = w.Write(body)
}

func setAccounting(hdr http.Header, storeHit, coalesced bool) {
	if storeHit {
		hdr.Set("X-Secured-Store", "hit")
	} else {
		hdr.Set("X-Secured-Store", "miss")
	}
	if coalesced {
		hdr.Set("X-Secured-Coalesced", "1")
	}
}

// serveSSE streams progress events and then the result (or the error) as
// server-sent events: `event: progress` frames carry obs.Event JSON,
// one final `event: result` frame carries the canonical response body, or
// one `event: error` frame carries the error envelope. Accounting headers
// cannot travel after the body starts, so the result frame is preceded by
// an `event: accounting` frame with the same fields as the headers.
func (h *handler) serveSSE(w http.ResponseWriter, r *http.Request, p *service.Pending) {
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	if canFlush {
		fl.Flush()
	}
	writeFrame := func(event string, data []byte) {
		_, _ = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		if canFlush {
			fl.Flush()
		}
	}
	for ev := range p.Events() {
		raw, err := json.Marshal(ev)
		if err != nil {
			continue
		}
		writeFrame("progress", raw)
	}
	body, _, storeHit, coalesced, err := p.Result()
	if err != nil {
		raw, _ := json.Marshal(errorBody{Error: err.Error()})
		writeFrame("error", raw)
		return
	}
	acct, _ := json.Marshal(struct {
		Store     string `json:"store"`
		Coalesced bool   `json:"coalesced"`
	}{Store: hitOrMiss(storeHit), Coalesced: coalesced})
	writeFrame("accounting", acct)
	// The canonical body ends in a newline; trim it so the frame stays a
	// single data line (the client re-appends it).
	writeFrame("result", trimNewline(body))
}

func hitOrMiss(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

func trimNewline(b []byte) []byte {
	for len(b) > 0 && (b[len(b)-1] == '\n' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}

func (h *handler) schedule(w http.ResponseWriter, r *http.Request) {
	var wire service.ScheduleWire
	if err := h.decode(w, r, &wire); err != nil {
		h.writeError(w, r, err)
		return
	}
	req, err := wire.Resolve()
	if err != nil {
		h.writeError(w, r, err)
		return
	}
	h.begin(w, r, wire.DeadlineMS, func(opts service.SubmitOptions) (*service.Pending, error) {
		return h.svc.BeginSchedule(r.Context(), req, opts)
	})
}

func (h *handler) sweep(w http.ResponseWriter, r *http.Request) {
	var wire service.SweepWire
	if err := h.decode(w, r, &wire); err != nil {
		h.writeError(w, r, err)
		return
	}
	req, err := wire.Resolve()
	if err != nil {
		h.writeError(w, r, err)
		return
	}
	h.begin(w, r, wire.DeadlineMS, func(opts service.SubmitOptions) (*service.Pending, error) {
		return h.svc.BeginSweep(r.Context(), req, opts)
	})
}

func (h *handler) authblock(w http.ResponseWriter, r *http.Request) {
	var wire service.AuthBlockWire
	if err := h.decode(w, r, &wire); err != nil {
		h.writeError(w, r, err)
		return
	}
	req, err := wire.Resolve()
	if err != nil {
		h.writeError(w, r, err)
		return
	}
	h.begin(w, r, wire.DeadlineMS, func(opts service.SubmitOptions) (*service.Pending, error) {
		return h.svc.BeginAuthBlock(r.Context(), req, opts)
	})
}

// healthBody is the /v1/health response.
type healthBody struct {
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
	Running  int    `json:"running"`
	Queued   int    `json:"queued"`
}

func (h *handler) health(w http.ResponseWriter, r *http.Request) {
	st := h.svc.Stats()
	body := healthBody{
		Status:   "ok",
		Draining: st.Queue.Draining,
		Running:  st.Queue.Running,
		Queued:   st.Queue.Queued,
	}
	status := http.StatusOK
	if st.Queue.Draining {
		body.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func (h *handler) stats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(h.svc.Stats())
}
