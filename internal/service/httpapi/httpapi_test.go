package httpapi_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"secureloop/internal/obs"
	"secureloop/internal/service"
	"secureloop/internal/service/client"
	"secureloop/internal/service/httpapi"
	"secureloop/internal/store"
)

// tinyWire is a small inline-network schedule request; annealIters
// perturbs the identity so tests can mint distinct requests at will.
func tinyWire(annealIters int) *service.ScheduleWire {
	net := `{
		"name": "tiny2",
		"layers": [
			{"name": "l0", "c": 8, "m": 16, "r": 3, "s": 3, "p": 7, "q": 7,
			 "stride_h": 1, "stride_w": 1, "pad_h": 1, "pad_w": 1, "n": 1, "word_bits": 16},
			{"name": "l1", "c": 16, "m": 8, "r": 3, "s": 3, "p": 7, "q": 7,
			 "stride_h": 1, "stride_w": 1, "pad_h": 1, "pad_w": 1, "n": 1, "word_bits": 16}
		],
		"segments": [[0, 1]]
	}`
	return &service.ScheduleWire{
		Network:          json.RawMessage(net),
		AnnealIterations: annealIters,
	}
}

func newServer(t *testing.T, cfg service.Config) (*service.Service, *client.Client) {
	t.Helper()
	svc := service.New(cfg)
	srv := httptest.NewServer(httpapi.NewHandler(svc, httpapi.Options{}))
	t.Cleanup(srv.Close)
	return svc, client.New(srv.URL)
}

// TestScheduleWarmRepeatByteIdentical: against a mounted store, the warm
// repeat of an identical request over HTTP is byte-identical, reports a
// store hit in the header, and performs zero mapper or AuthBlock work.
func TestScheduleWarmRepeatByteIdentical(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, c := newServer(t, service.Config{Store: st})

	cold, coldAcct, err := c.ScheduleBytes(context.Background(), tinyWire(40))
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	if coldAcct.StoreHit {
		t.Error("cold request reported a store hit")
	}
	statsAfterCold, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	warm, warmAcct, err := c.ScheduleBytes(context.Background(), tinyWire(40))
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if !warmAcct.StoreHit {
		t.Error("warm repeat did not report X-Secured-Store: hit")
	}
	if !bytes.Equal(cold, warm) {
		t.Errorf("warm body differs from cold:\ncold: %s\nwarm: %s", cold, warm)
	}
	statsAfterWarm, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Evaluation-free: no new AuthBlock optimisation runs, no new mapper
	// search cache activity.
	if d := statsAfterWarm.AuthOptimal.Runs - statsAfterCold.AuthOptimal.Runs; d != 0 {
		t.Errorf("warm repeat ran %d AuthBlock optimisations, want 0", d)
	}
	cold2 := statsAfterCold.MapperSearch.Hits + statsAfterCold.MapperSearch.Misses
	warm2 := statsAfterWarm.MapperSearch.Hits + statsAfterWarm.MapperSearch.Misses
	if warm2 != cold2 {
		t.Errorf("warm repeat touched the mapper search cache (%d -> %d lookups)", cold2, warm2)
	}
	if statsAfterWarm.Service.StoreHits != 1 {
		t.Errorf("service store_hits = %d, want 1", statsAfterWarm.Service.StoreHits)
	}
	// A typed decode of the same body round-trips.
	typed, _, err := c.Schedule(context.Background(), tinyWire(40))
	if err != nil {
		t.Fatal(err)
	}
	if typed.Network != "tiny2" || len(typed.Layers) != 2 || typed.Total.Cycles <= 0 {
		t.Errorf("typed response malformed: %+v", typed)
	}
}

// gateObserver blocks the first StageStart until released.
type gateObserver struct {
	obs.Nop
	once    sync.Once
	entered chan struct{}
	release chan struct{}
}

func newGateObserver() *gateObserver {
	return &gateObserver{entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gateObserver) StageStart(obs.StageEvent) {
	g.once.Do(func() {
		close(g.entered)
		<-g.release
	})
}

// TestQueueFullReturns429: with one compute slot and a one-deep queue, a
// third distinct request is shed with 429 and a Retry-After hint while the
// first two eventually complete.
func TestQueueFullReturns429(t *testing.T) {
	gate := newGateObserver()
	_, c := newServer(t, service.Config{
		Observe:   gate,
		Admission: service.AdmissionConfig{MaxConcurrent: 1, MaxQueue: 1},
	})

	type result struct {
		body []byte
		err  error
	}
	results := make(chan result, 2)
	go func() {
		b, _, err := c.ScheduleBytes(context.Background(), tinyWire(40))
		results <- result{b, err}
	}()
	<-gate.entered // leader holds the only slot
	go func() {
		b, _, err := c.ScheduleBytes(context.Background(), tinyWire(41))
		results <- result{b, err}
	}()
	// Wait until the second request occupies the queue slot.
	waitFor(t, func() bool {
		st, err := c.Stats(context.Background())
		return err == nil && st.Queue.Queued == 1
	})

	_, _, err := c.ScheduleBytes(context.Background(), tinyWire(42))
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request = %v, want HTTP 429", err)
	}
	if apiErr.Accounting.RetryAfterSeconds < 1 {
		t.Errorf("Retry-After = %d, want >= 1", apiErr.Accounting.RetryAfterSeconds)
	}
	if !apiErr.IsRetryable() {
		t.Error("429 not reported retryable")
	}

	close(gate.release)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Errorf("in-flight request %d failed: %v", i, r.err)
		}
	}
}

// TestDeadlineReturns504: a request that outlives its own deadline maps to
// 504 Gateway Timeout — a designed admission-control outcome, retryable
// with a longer deadline — not a 500.
func TestDeadlineReturns504(t *testing.T) {
	gate := newGateObserver()
	_, c := newServer(t, service.Config{Observe: gate})
	wire := tinyWire(40)
	wire.DeadlineMS = 50
	errCh := make(chan error, 1)
	go func() {
		_, _, err := c.ScheduleBytes(context.Background(), wire)
		errCh <- err
	}()
	<-gate.entered                     // compute is underway…
	time.Sleep(100 * time.Millisecond) // …and its 50ms deadline lapses
	close(gate.release)                // compute unblocks into the expired context
	err := <-errCh
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline expiry = %v, want HTTP 504", err)
	}
	if !apiErr.IsRetryable() {
		t.Error("504 not reported retryable")
	}
}

// TestDisconnectCancelsCompute: a client that abandons its request cancels
// the scheduling context server-side. The handler is wrapped so the test
// can hold the compute (via the gate) until the server has demonstrably
// cancelled the request context — otherwise a cache-warm compute could win
// the race against connection-close detection.
func TestDisconnectCancelsCompute(t *testing.T) {
	gate := newGateObserver()
	svc := service.New(service.Config{Observe: gate})
	inner := httpapi.NewHandler(svc, httpapi.Options{})
	sawCancel := make(chan struct{})
	var sawOnce sync.Once
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/schedule" {
			inner.ServeHTTP(w, r)
			return
		}
		// Substitute a context we cancel ourselves when the connection
		// context dies, and signal only after that cancellation has
		// propagated through the whole service context tree.
		reqCtx, reqCancel := context.WithCancel(context.Background())
		defer reqCancel()
		go func() {
			<-r.Context().Done()
			reqCancel()
			sawOnce.Do(func() { close(sawCancel) })
		}()
		inner.ServeHTTP(w, r.WithContext(reqCtx))
	}))
	t.Cleanup(srv.Close)
	c := client.New(srv.URL)

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := c.ScheduleBytes(ctx, tinyWire(40))
		errCh <- err
	}()
	<-gate.entered // compute is underway
	cancel()       // the client disconnects
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("client saw %v, want context.Canceled", err)
	}
	<-sawCancel         // the server has cancelled the scheduling context
	close(gate.release) // compute unblocks into a definitively dead context
	waitFor(t, func() bool { return svc.Stats().Service.Cancelled == 1 })
	if got := svc.Stats().Service; got.Completed != 0 {
		t.Errorf("completed = %d after disconnect, want 0", got.Completed)
	}
}

// TestSSEStream: the SSE path streams ordered progress events and ends
// with result bytes identical to the plain-JSON serving of the same
// request.
func TestSSEStream(t *testing.T) {
	_, c := newServer(t, service.Config{})
	var events []obs.Event
	streamed, _, err := c.ScheduleStream(context.Background(), tinyWire(40), func(ev obs.Event) {
		events = append(events, ev)
	})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("event %d out of order (seq %d after %d)", i, events[i].Seq, events[i-1].Seq)
		}
	}
	plain, _, err := c.ScheduleBytes(context.Background(), tinyWire(40))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed, plain) {
		t.Errorf("streamed result differs from plain serving:\nsse:   %s\nplain: %s", streamed, plain)
	}
}

// TestCoalescedHeader: an identical request joining an in-flight one is
// marked X-Secured-Coalesced; the leader is not.
func TestCoalescedHeader(t *testing.T) {
	gate := newGateObserver()
	_, c := newServer(t, service.Config{Observe: gate})
	type res struct {
		acct client.Accounting
		err  error
	}
	first := make(chan res, 1)
	go func() {
		_, a, err := c.ScheduleBytes(context.Background(), tinyWire(40))
		first <- res{a, err}
	}()
	<-gate.entered
	second := make(chan res, 1)
	go func() {
		_, a, err := c.ScheduleBytes(context.Background(), tinyWire(40))
		second <- res{a, err}
	}()
	waitFor(t, func() bool {
		st, err := c.Stats(context.Background())
		return err == nil && st.Service.Coalesced >= 1
	})
	close(gate.release)
	r1, r2 := <-first, <-second
	if r1.err != nil || r2.err != nil {
		t.Fatalf("results: %v / %v", r1.err, r2.err)
	}
	if r1.acct.Coalesced {
		t.Error("leader marked coalesced")
	}
	if !r2.acct.Coalesced {
		t.Error("follower not marked X-Secured-Coalesced")
	}
}

// TestHealthAndDrain: health reports ok, flips to draining (503) after
// Drain, and a draining service sheds with 503.
func TestHealthAndDrain(t *testing.T) {
	svc, c := newServer(t, service.Config{})
	status, draining, err := c.Health(context.Background())
	if err != nil || status != "ok" || draining {
		t.Fatalf("health = (%q, %v, %v), want (ok, false, nil)", status, draining, err)
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	status, draining, err = c.Health(context.Background())
	if err != nil || status != "draining" || !draining {
		t.Fatalf("health after drain = (%q, %v, %v), want (draining, true, nil)", status, draining, err)
	}
	_, _, err = c.ScheduleBytes(context.Background(), tinyWire(40))
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("schedule while draining = %v, want HTTP 503", err)
	}
}

// TestBadRequests: malformed bodies and unknown names answer 400 with a
// JSON error envelope.
func TestBadRequests(t *testing.T) {
	_, c := newServer(t, service.Config{})
	cases := []struct {
		name string
		wire *service.ScheduleWire
	}{
		{"no network", &service.ScheduleWire{}},
		{"unknown network", &service.ScheduleWire{Network: json.RawMessage(`"nonexistent-net"`)}},
		{"unknown algorithm", func() *service.ScheduleWire {
			w := tinyWire(40)
			w.Algorithm = "Crypt-Bogus"
			return w
		}()},
		{"unknown dram", func() *service.ScheduleWire {
			w := tinyWire(40)
			w.Arch = &service.ArchWire{DRAM: "DDR9"}
			return w
		}()},
	}
	for _, tc := range cases {
		_, _, err := c.ScheduleBytes(context.Background(), tc.wire)
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: err = %v, want HTTP 400", tc.name, err)
		} else if apiErr.Message == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}
	// Syntactically broken JSON straight at the endpoint.
	resp, err := http.Post(c.BaseURL+"/v1/schedule", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("broken JSON = HTTP %d, want 400", resp.StatusCode)
	}
}

// TestAuthBlockEndpoint: the authblock endpoint round-trips through wire
// resolution.
func TestAuthBlockEndpoint(t *testing.T) {
	_, c := newServer(t, service.Config{})
	resp, _, err := c.AuthBlock(context.Background(), &service.AuthBlockWire{
		Producer: service.ProducerWire{C: 8, H: 16, W: 16, TileC: 8, TileH: 4, TileW: 4, WritesPerTile: 1},
		Consumer: service.ConsumerWire{TileC: 8, WinH: 6, WinW: 6, StepH: 4, StepW: 4, CountC: 1, CountH: 3, CountW: 3, FetchesPerTile: 1},
		MaxU:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Optimal.U < 1 || resp.Costs.TotalBits <= 0 {
		t.Errorf("authblock response malformed: %+v", resp)
	}
	if len(resp.Sweep) != 3 || resp.SweepOrientation != "horizontal" {
		t.Errorf("sweep curve malformed: %d entries along %q", len(resp.Sweep), resp.SweepOrientation)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for condition")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
