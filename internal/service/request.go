// Package service is the scheduling-as-a-service layer: a typed
// request/response model over the core scheduler, the DSE sweep and the
// AuthBlock optimiser, with a bounded load-shedding admission queue,
// singleflight coalescing of identical in-flight requests, per-request
// deadlines, an ordered progress-event stream per request, and an optional
// persistent result store mounted underneath. cmd/secured exposes it over
// HTTP/JSON; internal/service/client is the matching typed client.
//
// Request identity reuses the store's canonical key codec (store.Enc): two
// requests coalesce onto one flight, and warm-hit byte-identically against
// the store, exactly when their canonical encodings agree.
package service

import (
	"errors"

	"secureloop/internal/arch"
	"secureloop/internal/authblock"
	"secureloop/internal/core"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/dse"
	"secureloop/internal/mapper"
	"secureloop/internal/workload"
)

// ScheduleRequest asks for one full network schedule: the workload, the
// architecture and crypto configuration, the algorithm, and the scheduler
// knobs that can change the result. Every field here is part of the request
// identity (see persist.go) unless explicitly waived there.
type ScheduleRequest struct {
	// Network is the workload to schedule.
	Network *workload.Network
	// Spec is the accelerator architecture.
	Spec arch.Spec
	// Crypto is the cryptographic-engine configuration.
	Crypto cryptoengine.Config
	// Algorithm selects the Table 1 scheduling algorithm.
	Algorithm core.Algorithm
	// Objective selects the fine-tuning cost (default MinLatency).
	Objective core.Objective
	// TopK overrides the per-layer candidate count when positive (default
	// 6, the paper's k).
	TopK int
	// AnnealIterations overrides the global annealing budget when positive
	// (default 1000).
	AnnealIterations int
	// Mapper selects the per-layer loopnest search strategy.
	Mapper mapper.Options
}

// Validate reports whether the request is well-formed enough to admit.
func (req *ScheduleRequest) Validate() error {
	if req.Network == nil {
		return errors.New("service: schedule request has no network")
	}
	if err := req.Network.Validate(); err != nil {
		return err
	}
	if req.Algorithm < core.Unsecure || req.Algorithm > core.CryptOptCross {
		return errors.New("service: unknown algorithm")
	}
	return req.scheduler().Validate()
}

// scheduler materialises the core.Scheduler this request describes. The
// request-to-scheduler mapping lives in schedulerEnc (persist.go) so the
// executed configuration and the encoded request identity can never drift
// apart.
func (req *ScheduleRequest) scheduler() *core.Scheduler {
	return req.schedulerEnc(nil)
}

// SweepRequest asks for a design-space sweep of the network across the
// given (spec, crypto) cross product.
type SweepRequest struct {
	// Network is the workload every design point schedules.
	Network *workload.Network
	// Specs and Cryptos span the design space (their cross product is the
	// point set). Empty means the paper's Figure 16 space over arch.Base().
	Specs   []arch.Spec
	Cryptos []cryptoengine.Config
	// Algorithm selects the scheduling algorithm per point.
	Algorithm core.Algorithm
	// AnnealIterations overrides the per-point annealing budget when
	// positive.
	AnnealIterations int
	// Mapper selects the per-layer search strategy for every point.
	Mapper mapper.Options
	// Front, when set, runs the dominance-pruned coordinator sweep and
	// returns only the area/latency Pareto front; otherwise every design
	// point is evaluated and returned (front members marked).
	Front bool
	// Shards partitions the coordinator sweep's dispatch (identity-neutral:
	// sharding never changes the result).
	Shards int
	// BoundSlack widens the coordinator's prune margin (identity-neutral:
	// slack only converts prunes into evaluations, never changes the front).
	BoundSlack float64
}

// Validate reports whether the request is well-formed enough to admit.
// Defaulting of an empty design space happens here, not at run time, so the
// request identity always encodes the concrete point set.
//
//securelint:ignore ctxfirst validation is O(len(specs)) field checks, not cancellable search work
func (req *SweepRequest) Validate() error {
	if req.Network == nil {
		return errors.New("service: sweep request has no network")
	}
	if err := req.Network.Validate(); err != nil {
		return err
	}
	if req.Algorithm < core.Unsecure || req.Algorithm > core.CryptOptCross {
		return errors.New("service: unknown algorithm")
	}
	if len(req.Specs) == 0 || len(req.Cryptos) == 0 {
		return errors.New("service: sweep request has an empty design space")
	}
	for i := range req.Specs {
		if err := req.Specs[i].Validate(); err != nil {
			return err
		}
	}
	for i := range req.Cryptos {
		if req.Cryptos[i].CountPerDatatype < 1 {
			return errors.New("service: sweep crypto config has no engines")
		}
	}
	return nil
}

// Defaulted returns the request with an empty design space replaced by the
// paper's Figure 16 space over arch.Base().
func (req SweepRequest) Defaulted() SweepRequest {
	if len(req.Specs) == 0 && len(req.Cryptos) == 0 {
		req.Specs, req.Cryptos = dse.Figure16Space(arch.Base())
	}
	return req
}

// AuthBlockRequest asks for the optimal AuthBlock assignment of one
// producer/consumer tiling mismatch, optionally with the cost curve of one
// orientation's block-size sweep (the paper's Figure 9 analysis).
type AuthBlockRequest struct {
	Producer authblock.ProducerGrid
	Consumer authblock.ConsumerGrid
	Params   authblock.Params
	// Orientation and MaxU select the optional sweep curve: when MaxU is
	// positive the response carries the u = 1..MaxU sweep for Orientation.
	Orientation authblock.Orientation
	MaxU        int
}

// Validate reports whether the request is well-formed enough to admit.
func (req *AuthBlockRequest) Validate() error {
	if err := req.Producer.Validate(); err != nil {
		return err
	}
	if err := req.Consumer.Validate(); err != nil {
		return err
	}
	if req.Params.WordBits <= 0 || req.Params.HashBits <= 0 {
		return errors.New("service: authblock params must be positive")
	}
	if req.Orientation < 0 || req.Orientation >= authblock.NumOrientations {
		return errors.New("service: unknown orientation")
	}
	if req.MaxU < 0 {
		return errors.New("service: negative sweep bound")
	}
	return nil
}
