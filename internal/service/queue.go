package service

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"
)

// Admission errors, mapped to HTTP statuses by internal/service/httpapi
// (429 + Retry-After, 503, 413).
var (
	// ErrQueueFull rejects a request when the waiting queue is at capacity —
	// load shedding in preference to unbounded latency.
	ErrQueueFull = errors.New("service: admission queue full")
	// ErrDraining rejects new requests while the service drains for
	// shutdown; in-flight requests run to completion.
	ErrDraining = errors.New("service: draining")
	// ErrRequestTooLarge rejects a request whose estimated memory footprint
	// exceeds the whole budget — it could never be admitted.
	ErrRequestTooLarge = errors.New("service: request exceeds memory budget")
)

// AdmissionConfig bounds what the service accepts concurrently. The zero
// value of each field selects the documented default.
type AdmissionConfig struct {
	// MaxConcurrent bounds requests computing at once (default: GOMAXPROCS).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a slot beyond MaxConcurrent
	// (default 64); arrivals past it are shed with ErrQueueFull.
	MaxQueue int
	// MemoryBudgetBytes bounds the summed memory estimates of admitted
	// requests (default 4 GiB). A request estimated above the whole budget
	// is rejected with ErrRequestTooLarge; one that merely doesn't fit right
	// now waits in the queue.
	MemoryBudgetBytes int64
	// DefaultDeadline applies to requests that specify none (default 5m).
	DefaultDeadline time.Duration
	// MaxDeadline clamps requested deadlines (default 30m).
	MaxDeadline time.Duration
}

func (c AdmissionConfig) maxConcurrent() int {
	if c.MaxConcurrent > 0 {
		return c.MaxConcurrent
	}
	return runtime.GOMAXPROCS(0)
}

func (c AdmissionConfig) maxQueue() int {
	if c.MaxQueue > 0 {
		return c.MaxQueue
	}
	return 64
}

func (c AdmissionConfig) memoryBudget() int64 {
	if c.MemoryBudgetBytes > 0 {
		return c.MemoryBudgetBytes
	}
	return 4 << 30
}

// Deadline resolves a requested deadline against the defaults: zero means
// DefaultDeadline, anything above MaxDeadline is clamped to it.
func (c AdmissionConfig) Deadline(requested time.Duration) time.Duration {
	d := requested
	if d <= 0 {
		if c.DefaultDeadline > 0 {
			d = c.DefaultDeadline
		} else {
			d = 5 * time.Minute
		}
	}
	maxD := c.MaxDeadline
	if maxD <= 0 {
		maxD = 30 * time.Minute
	}
	if d > maxD {
		d = maxD
	}
	return d
}

// admission is the bounded load-shedding gate in front of the compute path:
// at most maxConcurrent requests run, at most maxQueue more wait, admitted
// memory estimates never exceed the budget, and waiting is always
// interruptible by the request's context.
type admission struct {
	cfg AdmissionConfig

	mu       sync.Mutex
	running  int   // guarded by mu
	queued   int   // guarded by mu
	memInUse int64 // guarded by mu
	draining bool  // guarded by mu
	// wake is closed and replaced on every state change that could unblock
	// a waiter (a release, a drain). Waiters snapshot it under mu and select
	// on it against their context.
	wake chan struct{} // guarded by mu
}

func newAdmission(cfg AdmissionConfig) *admission {
	return &admission{
		cfg:  cfg,
		wake: make(chan struct{}),
	}
}

// Admit blocks until the request (with the given memory estimate) holds a
// compute slot, then returns its release function. It fails fast with
// ErrQueueFull when the wait queue is at capacity, ErrDraining once Drain
// has begun, ErrRequestTooLarge when the estimate can never fit, and the
// context's error when the caller gives up while queued. A nil error means
// the caller MUST call release exactly once.
func (a *admission) Admit(ctx context.Context, memBytes int64) (release func(), err error) {
	if memBytes < 0 {
		memBytes = 0
	}
	if memBytes > a.cfg.memoryBudget() {
		return nil, ErrRequestTooLarge
	}
	queued := false
	a.mu.Lock()
	for {
		if a.draining {
			if queued {
				a.queued--
			}
			a.mu.Unlock()
			return nil, ErrDraining
		}
		if a.running < a.cfg.maxConcurrent() && a.memInUse+memBytes <= a.cfg.memoryBudget() {
			a.running++
			a.memInUse += memBytes
			if queued {
				a.queued--
			}
			a.mu.Unlock()
			return a.releaseFunc(memBytes), nil
		}
		if !queued {
			// The slot check above ran first, so an idle service admits even
			// at MaxQueue = 0.
			if a.queued >= a.cfg.maxQueue() {
				a.mu.Unlock()
				return nil, ErrQueueFull
			}
			a.queued++
			queued = true
		}
		wake := a.wake
		a.mu.Unlock()
		select {
		case <-ctx.Done():
			a.mu.Lock()
			a.queued--
			a.mu.Unlock()
			return nil, ctx.Err()
		case <-wake:
		}
		a.mu.Lock()
	}
}

// releaseFunc returns the idempotent slot release for one admitted request.
func (a *admission) releaseFunc(memBytes int64) func() {
	released := false
	return func() {
		a.mu.Lock()
		defer a.mu.Unlock()
		if released {
			return
		}
		released = true
		a.running--
		a.memInUse -= memBytes
		close(a.wake)
		a.wake = make(chan struct{})
	}
}

// Drain stops admitting (queued waiters fail with ErrDraining immediately)
// and blocks until every running request has released its slot, or until
// ctx expires. Idempotent; concurrent calls all wait.
func (a *admission) Drain(ctx context.Context) error {
	a.mu.Lock()
	if !a.draining {
		a.draining = true
		close(a.wake)
		a.wake = make(chan struct{})
	}
	for a.running > 0 {
		wake := a.wake
		a.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-wake:
		}
		a.mu.Lock()
	}
	a.mu.Unlock()
	return nil
}

// Load reports the gate's instantaneous state.
func (a *admission) Load() (running, queued int, memInUse int64, draining bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.running, a.queued, a.memInUse, a.draining
}

// RetryAfterSeconds estimates when a shed request is worth retrying: one
// second per queued request ahead of it, at least one. Deliberately
// clock-free — it is a hint derived from queue depth, not a promise.
func (a *admission) RetryAfterSeconds() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.queued < 1 {
		return 1
	}
	return a.queued
}
