// Package cryptoengine models the on-chip AES-GCM cryptographic engines of a
// secure DNN accelerator: their throughput (cycles per 128-bit block), area
// (equivalent kGates, normalised to 40 nm) and energy (pJ per block), as
// well as derived quantities SecureLoop needs — the effective off-chip
// bandwidth min(memory, crypto) of paper Section 4.1 and the per-block
// encryption/authentication energy folded into off-chip access cost.
//
// The three engine microarchitectures of the paper's Table 2 (fully
// pipelined, round-parallel, bit-serial) are provided as constructors, and
// the catalog of published AES implementations behind Figure 3 is exported
// for the design-space study.
package cryptoengine

import (
	"fmt"

	"secureloop/internal/num"
)

// BlockBytes is the AES block size the engines operate on.
const BlockBytes = 16

// BlockBits is the AES block size in bits.
const BlockBits = 128

// UnitSpec describes one datapath unit (an AES core or a Galois-field
// multiplier) as in the paper's Table 2.
type UnitSpec struct {
	// Cycles is the number of cycles the unit needs per 128-bit block. For a
	// fully pipelined unit this is the initiation interval (1), not the
	// fill latency.
	Cycles int
	// AreaKGates is the equivalent gate count in thousands, normalised to
	// 40 nm technology.
	AreaKGates float64
	// EnergyPJ is the energy per 128-bit block in picojoules.
	EnergyPJ float64
}

// EngineArch is a complete AES-GCM engine: an AES core (producing the
// one-time pad for CTR-mode encryption) plus a Galois-field multiplier
// (computing the GHASH authentication tag).
type EngineArch struct {
	Name   string
	AES    UnitSpec
	GFMult UnitSpec
}

// CyclesPerBlock is the steady-state initiation interval of the engine: one
// 128-bit block is encrypted (or decrypted) and absorbed into the hash every
// CyclesPerBlock cycles. The AES core and the GF multiplier operate on
// consecutive blocks concurrently, so the slower unit sets the interval.
func (e EngineArch) CyclesPerBlock() int {
	if e.AES.Cycles > e.GFMult.Cycles {
		return e.AES.Cycles
	}
	return e.GFMult.Cycles
}

// BytesPerCycle is the engine's sustained throughput.
func (e EngineArch) BytesPerCycle() float64 {
	return float64(BlockBytes) / float64(e.CyclesPerBlock())
}

// AreaKGates is the total engine area.
func (e EngineArch) AreaKGates() float64 { return e.AES.AreaKGates + e.GFMult.AreaKGates }

// EnergyPerBlockPJ is the energy to encrypt-and-authenticate one block.
func (e EngineArch) EnergyPerBlockPJ() float64 { return e.AES.EnergyPJ + e.GFMult.EnergyPJ }

// EnergyPerBitPJ is the crypto energy per data bit moved off-chip.
func (e EngineArch) EnergyPerBitPJ() float64 { return e.EnergyPerBlockPJ() / BlockBits }

// The paper's Table 2 engine architectures.
//
// Pipelined: a fully-pipelined AES engine with a single-cycle Galois-field
// multiplier — high throughput, large area.
// Parallel: a round-parallel AES (one round per cycle, 11 cycles for
// AES-128) with an 8-cycle GF multiplier — the area-efficient parallel
// implementation of Banerjee et al. used as the default engine in
// Section 5.1.
// Serial: a bit-serial datapath — smallest area, lowest throughput.
func Pipelined() EngineArch {
	return EngineArch{
		Name:   "pipelined",
		AES:    UnitSpec{Cycles: 1, AreaKGates: 78.8, EnergyPJ: 165.1},
		GFMult: UnitSpec{Cycles: 1, AreaKGates: 60.1, EnergyPJ: 57.7},
	}
}

func Parallel() EngineArch {
	return EngineArch{
		Name:   "parallel",
		AES:    UnitSpec{Cycles: 11, AreaKGates: 9.2, EnergyPJ: 194.6},
		GFMult: UnitSpec{Cycles: 8, AreaKGates: 9.7, EnergyPJ: 82.4},
	}
}

func Serial() EngineArch {
	return EngineArch{
		Name:   "serial",
		AES:    UnitSpec{Cycles: 336, AreaKGates: 3.0, EnergyPJ: 768},
		GFMult: UnitSpec{Cycles: 128, AreaKGates: 3.3, EnergyPJ: 345.6},
	}
}

// Architectures returns the Table 2 engines in the paper's order.
func Architectures() []EngineArch {
	return []EngineArch{Pipelined(), Parallel(), Serial()}
}

// ByName returns the named Table 2 engine.
func ByName(name string) (EngineArch, error) {
	for _, e := range Architectures() {
		if e.Name == name {
			return e, nil
		}
	}
	return EngineArch{}, fmt.Errorf("cryptoengine: unknown engine %q (want pipelined, parallel or serial)", name)
}

// Config is a deployed cryptographic-engine configuration: CountPerDatatype
// identical engines are dedicated to each of the three datatypes (weight,
// ifmap, ofmap), following the per-datatype engine organisation of prior
// work the paper adopts (Section 3.1).
type Config struct {
	Engine           EngineArch
	CountPerDatatype int
}

// NewConfig builds a configuration, validating the count.
func NewConfig(e EngineArch, countPerDatatype int) (Config, error) {
	if countPerDatatype <= 0 {
		return Config{}, fmt.Errorf("cryptoengine: engine count must be positive, got %d", countPerDatatype)
	}
	return Config{Engine: e, CountPerDatatype: countPerDatatype}, nil
}

// String labels the configuration the way the paper's Figure 13 does.
func (c Config) String() string {
	return fmt.Sprintf("%s x %d", c.Engine.Name, c.CountPerDatatype)
}

// DatatypeBytesPerCycle is the sustained crypto throughput available to one
// datatype's traffic stream.
func (c Config) DatatypeBytesPerCycle() float64 {
	return float64(c.CountPerDatatype) * c.Engine.BytesPerCycle()
}

// TotalBytesPerCycle is the aggregate crypto throughput across the three
// datatype-dedicated engine groups.
func (c Config) TotalBytesPerCycle() float64 {
	return 3 * c.DatatypeBytesPerCycle()
}

// TotalAreaKGates is the total silicon area of all engines.
func (c Config) TotalAreaKGates() float64 {
	return 3 * float64(c.CountPerDatatype) * c.Engine.AreaKGates()
}

// CyclesForBytes returns the cycles one datatype's engine group needs to
// process n bytes of off-chip traffic (whole blocks; partial blocks round
// up, since GCM pads the final block).
func (c Config) CyclesForBytes(n int64) int64 {
	if n <= 0 {
		return 0
	}
	blocks := num.CeilDiv64(n, BlockBytes)
	perEngine := num.CeilDiv64(blocks, int64(c.CountPerDatatype))
	return perEngine * int64(c.Engine.CyclesPerBlock())
}

// EnergyForBytesPJ returns the crypto energy to process n bytes.
func (c Config) EnergyForBytesPJ(n int64) float64 {
	if n <= 0 {
		return 0
	}
	blocks := num.CeilDiv64(n, BlockBytes)
	return float64(blocks) * c.Engine.EnergyPerBlockPJ()
}

// EffectiveBytesPerCycle implements the paper's Section 4.1 model: every
// off-chip access traverses both the DRAM interface and the cryptographic
// engine, so the slower of the two limits the effective off-chip bandwidth
// the loopnest scheduler may assume.
func (c Config) EffectiveBytesPerCycle(dramBytesPerCycle int) float64 {
	crypt := c.TotalBytesPerCycle()
	if crypt < float64(dramBytesPerCycle) {
		return crypt
	}
	return float64(dramBytesPerCycle)
}

// Figure13Configs returns the engine configurations swept in Figure 13.
func Figure13Configs() []Config {
	return []Config{
		{Engine: Parallel(), CountPerDatatype: 1},
		{Engine: Parallel(), CountPerDatatype: 5},
		{Engine: Pipelined(), CountPerDatatype: 1},
		{Engine: Parallel(), CountPerDatatype: 10},
		{Engine: Serial(), CountPerDatatype: 30},
		{Engine: Pipelined(), CountPerDatatype: 2},
	}
}
