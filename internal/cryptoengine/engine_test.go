package cryptoengine

import (
	"math"
	"testing"
)

func TestTable2Specs(t *testing.T) {
	// The Table 2 values are data the rest of the model depends on; pin
	// them.
	p := Pipelined()
	if p.AES.Cycles != 1 || p.GFMult.Cycles != 1 {
		t.Error("pipelined cycles")
	}
	if p.AreaKGates() != 78.8+60.1 {
		t.Errorf("pipelined area = %g", p.AreaKGates())
	}
	par := Parallel()
	if par.AES.Cycles != 11 || par.GFMult.Cycles != 8 {
		t.Error("parallel cycles")
	}
	if par.CyclesPerBlock() != 11 {
		t.Errorf("parallel interval = %d", par.CyclesPerBlock())
	}
	s := Serial()
	if s.CyclesPerBlock() != 336 {
		t.Errorf("serial interval = %d", s.CyclesPerBlock())
	}
	if math.Abs(s.EnergyPerBlockPJ()-(768+345.6)) > 1e-9 {
		t.Errorf("serial energy = %g", s.EnergyPerBlockPJ())
	}
}

func TestSection31AreaClaim(t *testing.T) {
	// Section 3.1: one pipelined AES-GCM engine per datatype costs
	// 416.7 kGates.
	cfg := Config{Engine: Pipelined(), CountPerDatatype: 1}
	if got := cfg.TotalAreaKGates(); math.Abs(got-416.7) > 0.01 {
		t.Errorf("3x pipelined area = %g kGates, want 416.7", got)
	}
}

func TestSection52Equivalence(t *testing.T) {
	// Section 5.2: 30 serial engines have throughput similar to 1 parallel
	// engine at ~10x the area.
	serial := Config{Engine: Serial(), CountPerDatatype: 30}
	parallel := Config{Engine: Parallel(), CountPerDatatype: 1}
	st := serial.DatatypeBytesPerCycle()
	pt := parallel.DatatypeBytesPerCycle()
	if math.Abs(st-pt)/pt > 0.05 {
		t.Errorf("throughputs differ: serial*30=%g, parallel=%g", st, pt)
	}
	ratio := serial.TotalAreaKGates() / parallel.TotalAreaKGates()
	if ratio < 9 || ratio > 11 {
		t.Errorf("area ratio = %g, want ~10x", ratio)
	}
}

func TestEffectiveBandwidth(t *testing.T) {
	// A single parallel engine group is far slower than LPDDR4: crypto
	// limits.
	cfg := Config{Engine: Parallel(), CountPerDatatype: 1}
	eff := cfg.EffectiveBytesPerCycle(64)
	if eff >= 64 {
		t.Errorf("effective bandwidth %g not crypto-limited", eff)
	}
	if want := 3 * 16.0 / 11; math.Abs(eff-want) > 1e-9 {
		t.Errorf("effective = %g, want %g", eff, want)
	}
	// Enough pipelined engines saturate the DRAM instead.
	big := Config{Engine: Pipelined(), CountPerDatatype: 4}
	if eff := big.EffectiveBytesPerCycle(64); eff != 64 {
		t.Errorf("effective = %g, want DRAM-limited 64", eff)
	}
}

func TestCyclesForBytes(t *testing.T) {
	cfg := Config{Engine: Parallel(), CountPerDatatype: 2}
	if got := cfg.CyclesForBytes(0); got != 0 {
		t.Errorf("zero bytes: %d", got)
	}
	// 33 bytes -> 3 blocks -> 2 per engine (ceil) -> 22 cycles.
	if got := cfg.CyclesForBytes(33); got != 22 {
		t.Errorf("33 bytes = %d cycles, want 22", got)
	}
	// Partial blocks round up.
	if got := cfg.CyclesForBytes(1); got != 11 {
		t.Errorf("1 byte = %d cycles, want 11", got)
	}
}

func TestEnergyForBytes(t *testing.T) {
	cfg := Config{Engine: Pipelined(), CountPerDatatype: 1}
	if got := cfg.EnergyForBytesPJ(32); math.Abs(got-2*(165.1+57.7)) > 1e-9 {
		t.Errorf("32 bytes energy = %g", got)
	}
	if cfg.EnergyForBytesPJ(0) != 0 {
		t.Error("zero bytes costs energy")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"pipelined", "parallel", "serial"} {
		e, err := ByName(name)
		if err != nil || e.Name != name {
			t.Errorf("ByName(%q): %v %v", name, e.Name, err)
		}
	}
	if _, err := ByName("quantum"); err == nil {
		t.Error("ByName accepted unknown engine")
	}
}

func TestNewConfigValidation(t *testing.T) {
	if _, err := NewConfig(Parallel(), 0); err == nil {
		t.Error("accepted zero count")
	}
	c, err := NewConfig(Serial(), 30)
	if err != nil || c.CountPerDatatype != 30 {
		t.Errorf("NewConfig: %v", err)
	}
	if c.String() != "serial x 30" {
		t.Errorf("String = %q", c.String())
	}
}

func TestFigure13Configs(t *testing.T) {
	cfgs := Figure13Configs()
	if len(cfgs) != 6 {
		t.Fatalf("%d configs, want 6", len(cfgs))
	}
	// Throughput ordering: pipelined x2 is the fastest, parallel x1 slowest.
	if cfgs[0].DatatypeBytesPerCycle() >= cfgs[5].DatatypeBytesPerCycle() {
		t.Error("parallel x1 should be slower than pipelined x2")
	}
}

func TestFigure3CatalogTradeoff(t *testing.T) {
	cat := Figure3Catalog()
	if len(cat) != 10 {
		t.Fatalf("%d catalog entries, want 10", len(cat))
	}
	// The overall trade-off: the largest design is the fastest, the
	// smallest designs are slow.
	var minArea, maxArea CatalogEntry
	minArea, maxArea = cat[0], cat[0]
	for _, e := range cat {
		if e.AreaKGates < minArea.AreaKGates {
			minArea = e
		}
		if e.AreaKGates > maxArea.AreaKGates {
			maxArea = e
		}
	}
	if maxArea.AvgCyclesPerBlock > minArea.AvgCyclesPerBlock {
		t.Errorf("trade-off inverted: %+v vs %+v", minArea, maxArea)
	}
	if maxArea.AvgCyclesPerBlock != 1 {
		t.Errorf("largest design should be fully pipelined, got %g cycles", maxArea.AvgCyclesPerBlock)
	}
}
