package cryptoengine

// CatalogEntry is one published AES hardware implementation from the
// circuits literature surveyed in the paper's Figure 3 (2001-2018). Area is
// in equivalent kGates (technology-normalised); AvgCyclesPerBlock is the
// average latency to encrypt or decrypt one 128-bit block. The values are
// reconstructed from the cited publications and the figure; they preserve
// the clear area-vs-performance trade-off the figure demonstrates.
type CatalogEntry struct {
	Name              string
	Year              int
	AreaKGates        float64
	AvgCyclesPerBlock float64
}

// Figure3Catalog returns the ten AES design points of Figure 3, ordered by
// area. The trade-off is monotone in aggregate: small serial cores
// (Hamalainen, Banerjee serial) pay hundreds of cycles per block, while
// large pipelined datapaths (Mathew, Banerjee pipeline) approach one block
// per cycle.
func Figure3Catalog() []CatalogEntry {
	return []CatalogEntry{
		{Name: "Hamalainen-2006-Area", Year: 2006, AreaKGates: 3.1, AvgCyclesPerBlock: 160},
		{Name: "Hamalainen-2006-Power", Year: 2006, AreaKGates: 3.2, AvgCyclesPerBlock: 160},
		{Name: "Banerjee-2019", Year: 2019, AreaKGates: 3.0, AvgCyclesPerBlock: 336},
		{Name: "Hamalainen-2006-Speed", Year: 2006, AreaKGates: 3.9, AvgCyclesPerBlock: 44},
		{Name: "Satoh-2001", Year: 2001, AreaKGates: 5.4, AvgCyclesPerBlock: 54},
		{Name: "Banerjee-2017-Parallel", Year: 2017, AreaKGates: 9.2, AvgCyclesPerBlock: 11},
		{Name: "Zhang-2016", Year: 2016, AreaKGates: 12.0, AvgCyclesPerBlock: 10},
		{Name: "Mathew-2011", Year: 2011, AreaKGates: 35.0, AvgCyclesPerBlock: 5},
		{Name: "Mathew-2015", Year: 2015, AreaKGates: 42.0, AvgCyclesPerBlock: 2},
		{Name: "Banerjee-2017-Pipeline", Year: 2017, AreaKGates: 78.8, AvgCyclesPerBlock: 1},
	}
}
