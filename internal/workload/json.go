package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// jsonNetwork is the on-disk schema for custom workloads. Segment indices
// are optional: when omitted, consecutive layers form one chain cut
// wherever `cut_after` is set (pooling, residual adds and other
// rehash-forcing post-processing).
type jsonNetwork struct {
	Name   string      `json:"name"`
	Layers []jsonLayer `json:"layers"`
	// Segments optionally overrides the derived segment structure.
	Segments [][]int `json:"segments,omitempty"`
}

type jsonLayer struct {
	Name      string `json:"name"`
	C         int    `json:"c"`
	M         int    `json:"m"`
	R         int    `json:"r"`
	S         int    `json:"s"`
	P         int    `json:"p"`
	Q         int    `json:"q"`
	Stride    int    `json:"stride,omitempty"`
	StrideH   int    `json:"stride_h,omitempty"`
	StrideW   int    `json:"stride_w,omitempty"`
	Pad       int    `json:"pad,omitempty"`
	PadH      int    `json:"pad_h,omitempty"`
	PadW      int    `json:"pad_w,omitempty"`
	N         int    `json:"n,omitempty"`
	Depthwise bool   `json:"depthwise,omitempty"`
	WordBits  int    `json:"word_bits,omitempty"`
	// CutAfter marks a segment boundary after this layer (a pooling or
	// residual-add style post-processing step follows).
	CutAfter bool `json:"cut_after,omitempty"`
}

// ParseJSON decodes a network description. Defaults: stride 1, pad 0,
// batch 1, 16-bit words. The result is validated.
func ParseJSON(r io.Reader) (*Network, error) {
	var jn jsonNetwork
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jn); err != nil {
		return nil, fmt.Errorf("workload: parsing network JSON: %w", err)
	}
	if jn.Name == "" {
		jn.Name = "custom"
	}
	n := &Network{Name: jn.Name}
	for i, jl := range jn.Layers {
		l := Layer{
			Name: jl.Name, C: jl.C, M: jl.M, R: jl.R, S: jl.S, P: jl.P, Q: jl.Q,
			StrideH:   pick(jl.StrideH, jl.Stride, 1),
			StrideW:   pick(jl.StrideW, jl.Stride, 1),
			PadH:      pick(jl.PadH, jl.Pad, 0),
			PadW:      pick(jl.PadW, jl.Pad, 0),
			N:         pick(jl.N, 0, 1),
			WordBits:  pick(jl.WordBits, 0, defaultWordBits),
			Depthwise: jl.Depthwise,
		}
		if l.Name == "" {
			l.Name = fmt.Sprintf("layer%d", i)
		}
		n.Layers = append(n.Layers, l)
	}
	if len(jn.Segments) > 0 {
		n.Segments = jn.Segments
	} else {
		var chain []int
		for i, jl := range jn.Layers {
			chain = append(chain, i)
			if jl.CutAfter || i == len(jn.Layers)-1 {
				n.Segments = append(n.Segments, chain)
				chain = nil
			}
		}
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// LoadJSON reads a network description from a file.
func LoadJSON(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	return ParseJSON(f)
}

// MarshalJSON renders a network in the ParseJSON schema (layers with
// explicit segments), so built-in networks can be exported, edited and
// reloaded.
func (n *Network) MarshalJSON() ([]byte, error) {
	jn := jsonNetwork{Name: n.Name, Segments: n.Segments}
	for i := range n.Layers {
		l := &n.Layers[i]
		jn.Layers = append(jn.Layers, jsonLayer{
			Name: l.Name, C: l.C, M: l.M, R: l.R, S: l.S, P: l.P, Q: l.Q,
			StrideH: l.StrideH, StrideW: l.StrideW,
			PadH: l.PadH, PadW: l.PadW,
			N: l.N, Depthwise: l.Depthwise, WordBits: l.WordBits,
		})
	}
	return json.MarshalIndent(jn, "", "  ")
}

func pick(specific, generic, def int) int {
	if specific > 0 {
		return specific
	}
	if generic > 0 {
		return generic
	}
	return def
}
