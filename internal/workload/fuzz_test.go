package workload

import (
	"strings"
	"testing"
)

// FuzzParseJSON asserts ParseJSON never panics and that anything it accepts
// validates and survives a marshal/parse round trip.
func FuzzParseJSON(f *testing.F) {
	f.Add(sampleJSON)
	f.Add(`{"layers":[{"c":1,"m":1,"r":1,"s":1,"p":1,"q":1}]}`)
	f.Add(`{"name":"x","segments":[[0]],"layers":[{"c":2,"m":3,"r":1,"s":1,"p":2,"q":2}]}`)
	f.Add(`{}`)
	f.Add(`[`)
	f.Add(`{"layers":[{"c":-1,"m":0,"r":0,"s":0,"p":0,"q":0}]}`)
	f.Fuzz(func(t *testing.T, in string) {
		n, err := ParseJSON(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("accepted network fails validation: %v", err)
		}
		data, err := n.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		back, err := ParseJSON(strings.NewReader(string(data)))
		if err != nil {
			t.Fatalf("round trip parse: %v", err)
		}
		if back.NumLayers() != n.NumLayers() {
			t.Fatalf("round trip changed layer count")
		}
	})
}
