package workload

import (
	"fmt"

	"secureloop/internal/num"
)

// Network is an ordered set of layers plus the segment structure SecureLoop
// schedules over. A segment is a maximal chain of layers in which each
// layer's ofmap is consumed directly (after at most on-the-fly
// post-processing such as BatchNorm, ReLU or zero-padding) as the next
// layer's ifmap. Segment boundaries occur where a separate post-processing
// computation (pooling, residual addition) intervenes; such boundaries
// inevitably trigger rehashing (paper Section 4.3), so cross-layer AuthBlock
// optimisation applies only within a segment.
type Network struct {
	Name   string
	Layers []Layer

	// Segments lists layer indices; within a segment, layer Segments[s][i]
	// produces the ifmap of Segments[s][i+1]. Every layer appears in exactly
	// one segment. Singleton segments have no in-segment cross-layer pairs.
	Segments [][]int
}

// Layer returns the i-th layer.
func (n *Network) Layer(i int) *Layer { return &n.Layers[i] }

// NumLayers returns the layer count.
func (n *Network) NumLayers() int { return len(n.Layers) }

// TotalMACs sums MACs over all layers.
func (n *Network) TotalMACs() int64 {
	var t int64
	for i := range n.Layers {
		t += n.Layers[i].MACs()
	}
	return t
}

// CrossLayerPairs returns all (producer, consumer) layer-index pairs that
// share a tensor within a segment: the producer's ofmap is the consumer's
// ifmap with no intervening rehash-forcing operation.
func (n *Network) CrossLayerPairs() [][2]int {
	var pairs [][2]int
	for _, seg := range n.Segments {
		for i := 0; i+1 < len(seg); i++ {
			pairs = append(pairs, [2]int{seg[i], seg[i+1]})
		}
	}
	return pairs
}

// SegmentOf returns the index of the segment containing layer i, and the
// position of the layer within that segment. It returns (-1, -1) if the
// layer is not found.
func (n *Network) SegmentOf(i int) (seg, pos int) {
	for s, layers := range n.Segments {
		for p, li := range layers {
			if li == i {
				return s, p
			}
		}
	}
	return -1, -1
}

// Validate checks every layer, the segment cover, and the in-segment shape
// compatibility (producer ofmap channel/extent must match consumer ifmap).
func (n *Network) Validate() error {
	if len(n.Layers) == 0 {
		return fmt.Errorf("workload: network %s has no layers", n.Name)
	}
	for i := range n.Layers {
		if err := n.Layers[i].Validate(); err != nil {
			return fmt.Errorf("workload: network %s: %w", n.Name, err)
		}
	}
	seen := make([]bool, len(n.Layers))
	for _, seg := range n.Segments {
		if len(seg) == 0 {
			return fmt.Errorf("workload: network %s has an empty segment", n.Name)
		}
		for _, li := range seg {
			if li < 0 || li >= len(n.Layers) {
				return fmt.Errorf("workload: network %s: segment references layer %d out of range", n.Name, li)
			}
			if seen[li] {
				return fmt.Errorf("workload: network %s: layer %d appears in more than one segment", n.Name, li)
			}
			seen[li] = true
		}
		for i := 0; i+1 < len(seg); i++ {
			p, c := &n.Layers[seg[i]], &n.Layers[seg[i+1]]
			if p.M != c.C {
				return fmt.Errorf("workload: network %s: %s ofmap channels (%d) != %s ifmap channels (%d)",
					n.Name, p.Name, p.M, c.Name, c.C)
			}
			// With stride > 1 the output extent floors, so the consumer's
			// implied input extent may undershoot the producer's ofmap by up
			// to stride-1 rows/cols (the trailing rows are simply unread).
			if p.P < c.InH() || p.P >= c.InH()+c.StrideH || p.Q < c.InW() || p.Q >= c.InW()+c.StrideW {
				return fmt.Errorf("workload: network %s: %s ofmap %dx%d incompatible with %s ifmap %dx%d",
					n.Name, p.Name, p.P, p.Q, c.Name, c.InH(), c.InW())
			}
		}
	}
	for i, s := range seen {
		if !s {
			return fmt.Errorf("workload: network %s: layer %d (%s) is not in any segment", n.Name, i, n.Layers[i].Name)
		}
	}
	return nil
}

// defaultWordBits matches the Eyeriss-class 16-bit fixed-point datapath of
// the paper's base architecture.
const defaultWordBits = 16

func conv(name string, c, m, r, s, p, q, stride, pad int) Layer {
	return Layer{
		Name: name, C: c, M: m, R: r, S: s, P: p, Q: q,
		StrideH: stride, StrideW: stride, PadH: pad, PadW: pad,
		N: 1, WordBits: defaultWordBits,
	}
}

func dwconv(name string, c, r, s, p, q, stride, pad int) Layer {
	l := conv(name, c, c, r, s, p, q, stride, pad)
	l.Depthwise = true
	return l
}

// AlexNet returns the first five (convolutional) layers of AlexNet
// (torchvision channel counts), the subset the paper evaluates
// ("we only consider first 5 layers of AlexNet that are convolutional").
// Max-pooling follows conv1, conv2 and conv5, cutting segments there.
func AlexNet() *Network {
	n := &Network{
		Name: "AlexNet",
		Layers: []Layer{
			conv("conv1", 3, 64, 11, 11, 55, 55, 4, 0),
			conv("conv2", 64, 192, 5, 5, 27, 27, 1, 2),
			conv("conv3", 192, 384, 3, 3, 13, 13, 1, 1),
			conv("conv4", 384, 256, 3, 3, 13, 13, 1, 1),
			conv("conv5", 256, 256, 3, 3, 13, 13, 1, 1),
		},
		// Pooling after conv1 and conv2 cuts segments; conv3-5 chain.
		Segments: [][]int{{0}, {1}, {2, 3, 4}},
	}
	return n
}

// ResNet18 returns the 20 convolutional layers plus the final
// fully-connected layer of ResNet-18 for 224x224 inputs. Residual additions
// and the stem max-pool cut segments; downsample (projection shortcut)
// convolutions form singleton segments because their ofmaps feed residual
// adds directly.
func ResNet18() *Network {
	var layers []Layer
	var segments [][]int
	add := func(l Layer) int {
		layers = append(layers, l)
		return len(layers) - 1
	}

	// Stem: 7x7 stride-2 conv followed by 3x3 stride-2 max-pool (cut).
	stem := add(conv("conv1", 3, 64, 7, 7, 112, 112, 2, 3))
	segments = append(segments, []int{stem})

	type stage struct {
		ch, out, stride int
		downsample      bool
	}
	stages := []stage{
		{ch: 64, out: 56, stride: 1, downsample: false},
		{ch: 128, out: 28, stride: 2, downsample: true},
		{ch: 256, out: 14, stride: 2, downsample: true},
		{ch: 512, out: 7, stride: 2, downsample: true},
	}
	inCh := 64
	for si, st := range stages {
		for b := 0; b < 2; b++ {
			stride := 1
			cIn := st.ch
			if b == 0 {
				stride = st.stride
				cIn = inCh
			}
			name := fmt.Sprintf("layer%d.%d", si+1, b)
			a := add(conv(name+".conv1", cIn, st.ch, 3, 3, st.out, st.out, stride, 1))
			c := add(conv(name+".conv2", st.ch, st.ch, 3, 3, st.out, st.out, 1, 1))
			// conv2's ofmap feeds the residual add: cut after it.
			segments = append(segments, []int{a, c})
			if b == 0 && st.downsample {
				d := add(conv(name+".downsample", cIn, st.ch, 1, 1, st.out, st.out, st.stride, 0))
				segments = append(segments, []int{d})
			}
		}
		inCh = st.ch
	}

	// Final classifier as a 1x1 "convolution" over the pooled 1x1 map.
	fc := add(conv("fc", 512, 1000, 1, 1, 1, 1, 1, 0))
	segments = append(segments, []int{fc})

	return &Network{Name: "ResNet18", Layers: layers, Segments: segments}
}

// MobileNetV2 returns the 52 convolutional layers of MobileNetV2 for 224x224
// inputs: the stem conv, 17 inverted-residual blocks (expand 1x1, depthwise
// 3x3, project 1x1; the first block omits the expansion), and the final 1x1
// conv. Blocks whose input and output shapes match (stride 1, equal
// channels) end with a residual addition, cutting the segment; otherwise the
// chain continues into the next block, producing the long segments that make
// cross-layer fine-tuning most valuable on this network (paper Section 5.1).
func MobileNetV2() *Network {
	var layers []Layer
	var segments [][]int
	var chain []int
	add := func(l Layer) int {
		layers = append(layers, l)
		return len(layers) - 1
	}
	cut := func() {
		if len(chain) > 0 {
			segments = append(segments, chain)
			chain = nil
		}
	}

	// Stem.
	chain = append(chain, add(conv("conv0", 3, 32, 3, 3, 112, 112, 2, 1)))

	type blockCfg struct{ t, c, n, s int }
	cfgs := []blockCfg{
		{1, 16, 1, 1},
		{6, 24, 2, 2},
		{6, 32, 3, 2},
		{6, 64, 4, 2},
		{6, 96, 3, 1},
		{6, 160, 3, 2},
		{6, 320, 1, 1},
	}
	inCh, spatial := 32, 112
	blk := 0
	for _, cfg := range cfgs {
		for r := 0; r < cfg.n; r++ {
			stride := 1
			if r == 0 {
				stride = cfg.s
			}
			outSpatial := spatial
			if stride == 2 {
				outSpatial = spatial / 2
			}
			hidden := num.MulInt(inCh, cfg.t)
			name := fmt.Sprintf("block%d", blk)
			residual := stride == 1 && inCh == cfg.c

			if residual {
				// The block input is also an operand of the trailing
				// residual add, so the chain feeding this block must end
				// before the block starts.
				cut()
			}
			if cfg.t != 1 {
				chain = append(chain, add(conv(name+".expand", inCh, hidden, 1, 1, spatial, spatial, 1, 0)))
			}
			chain = append(chain, add(dwconv(name+".dw", hidden, 3, 3, outSpatial, outSpatial, stride, 1)))
			chain = append(chain, add(conv(name+".project", hidden, cfg.c, 1, 1, outSpatial, outSpatial, 1, 0)))
			if residual {
				// The projection ofmap feeds the residual add.
				cut()
			}
			inCh, spatial = cfg.c, outSpatial
			blk++
		}
	}
	chain = append(chain, add(conv("conv_last", 320, 1280, 1, 1, 7, 7, 1, 0)))
	cut()

	return &Network{Name: "MobileNetV2", Layers: layers, Segments: segments}
}

// VGG16 returns the 13 convolutional layers plus the three classifier
// layers of VGG-16 for 224x224 inputs — an extension beyond the paper's
// three evaluation workloads, useful for stressing the scheduler with very
// large weight tensors. Max-pooling after each block cuts segments.
func VGG16() *Network {
	var layers []Layer
	var segments [][]int
	var chain []int
	add := func(l Layer) {
		layers = append(layers, l)
		chain = append(chain, len(layers)-1)
	}
	cut := func() {
		segments = append(segments, chain)
		chain = nil
	}
	type blk struct{ n, ch, out int }
	in := 3
	spatial := 224
	for bi, b := range []blk{{2, 64, 224}, {2, 128, 112}, {3, 256, 56}, {3, 512, 28}, {3, 512, 14}} {
		spatial = b.out
		for i := 0; i < b.n; i++ {
			c := in
			if i > 0 {
				c = b.ch
			}
			add(conv(fmt.Sprintf("conv%d_%d", bi+1, i+1), c, b.ch, 3, 3, spatial, spatial, 1, 1))
		}
		cut() // max-pool
		in = b.ch
	}
	// Classifier: fc6/fc7/fc8 as 1x1 "convolutions" over pooled features.
	add(conv("fc6", 512*7*7, 4096, 1, 1, 1, 1, 1, 0))
	cut()
	add(conv("fc7", 4096, 4096, 1, 1, 1, 1, 1, 0))
	add(conv("fc8", 4096, 1000, 1, 1, 1, 1, 1, 0))
	cut()
	return &Network{Name: "VGG16", Layers: layers, Segments: segments}
}

// Networks returns the three evaluation workloads of the paper in its order.
func Networks() []*Network {
	return []*Network{AlexNet(), ResNet18(), MobileNetV2()}
}

// ByName returns the named network ("alexnet", "resnet18", "mobilenetv2",
// case-sensitive lower-case) or an error.
func ByName(name string) (*Network, error) {
	switch name {
	case "alexnet":
		return AlexNet(), nil
	case "resnet18":
		return ResNet18(), nil
	case "mobilenetv2":
		return MobileNetV2(), nil
	case "vgg16":
		return VGG16(), nil
	}
	return nil, fmt.Errorf("workload: unknown network %q (want alexnet, resnet18, mobilenetv2 or vgg16)", name)
}
