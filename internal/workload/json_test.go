package workload

import (
	"bytes"
	"strings"
	"testing"
)

const sampleJSON = `{
  "name": "tiny",
  "layers": [
    {"name": "c1", "c": 3, "m": 16, "r": 3, "s": 3, "p": 14, "q": 14, "stride": 1, "pad": 1, "cut_after": true},
    {"name": "c2", "c": 16, "m": 32, "r": 3, "s": 3, "p": 14, "q": 14, "pad": 1},
    {"name": "c3", "c": 32, "m": 32, "r": 3, "s": 3, "p": 14, "q": 14, "pad": 1}
  ]
}`

func TestParseJSON(t *testing.T) {
	n, err := ParseJSON(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "tiny" || n.NumLayers() != 3 {
		t.Fatalf("parsed %s/%d", n.Name, n.NumLayers())
	}
	// cut_after on c1 -> segments {0}, {1,2}.
	if len(n.Segments) != 2 || len(n.Segments[1]) != 2 {
		t.Fatalf("segments = %v", n.Segments)
	}
	if n.Layers[0].StrideH != 1 || n.Layers[0].PadH != 1 || n.Layers[0].N != 1 {
		t.Error("defaults not applied")
	}
	if n.Layers[1].WordBits != defaultWordBits {
		t.Error("word bits default")
	}
}

func TestParseJSONExplicitSegments(t *testing.T) {
	in := strings.Replace(sampleJSON, `"layers"`, `"segments": [[0],[1],[2]], "layers"`, 1)
	n, err := ParseJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Segments) != 3 {
		t.Fatalf("segments = %v", n.Segments)
	}
}

func TestParseJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		`{"layers": []}`, // no layers
		`{"layers": [{"c": 0, "m": 1, "r": 1, "s": 1, "p": 1, "q": 1}]}`,         // bad shape
		`{"layers": [{"c": 1, "m": 1, "r": 1, "s": 1, "p": 1, "q": 1}], "x": 1}`, // unknown field
		`{"layers": [
		   {"c": 3, "m": 8, "r": 1, "s": 1, "p": 4, "q": 4},
		   {"c": 9, "m": 8, "r": 1, "s": 1, "p": 4, "q": 4}]}`, // channel mismatch in chain
		`not json`,
	}
	for i, in := range cases {
		if _, err := ParseJSON(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, orig := range Networks() {
		data, err := orig.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseJSON(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", orig.Name, err)
		}
		if back.NumLayers() != orig.NumLayers() {
			t.Fatalf("%s: %d layers after round trip", orig.Name, back.NumLayers())
		}
		for i := range orig.Layers {
			if orig.Layers[i] != back.Layers[i] {
				t.Fatalf("%s layer %d: %+v != %+v", orig.Name, i, orig.Layers[i], back.Layers[i])
			}
		}
		if len(back.Segments) != len(orig.Segments) {
			t.Fatalf("%s: segments differ", orig.Name)
		}
	}
}

func TestLoadJSONMissingFile(t *testing.T) {
	if _, err := LoadJSON("/nonexistent/net.json"); err == nil {
		t.Error("missing file accepted")
	}
}
