// Package workload describes DNN workloads as sequences of convolutional
// (and fully-connected, expressed as 1x1 convolution) layers, together with
// the producer/consumer topology that SecureLoop's cross-layer AuthBlock
// assignment needs.
package workload

import "secureloop/internal/num"

// Layer is one convolutional layer.
//
// A layer follows the paper's seven-dimensional nested-loop nomenclature
// (Section 2.1): an ifmap of shape P' x Q' x C is convolved with M filters of
// shape R x S x C to produce an ofmap of shape P x Q x M, where
//
//	P = (P' - R + 2*pad) / stride + 1
//
// and Q is derived identically. Fully-connected layers set P=Q=R=S=1.
type Layer struct {
	// Name identifies the layer within its network (e.g. "conv2_1a").
	Name string

	// C is the number of input channels.
	C int
	// M is the number of output channels (filters).
	M int
	// R and S are the filter height and width.
	R, S int
	// P and Q are the output feature-map height and width.
	P, Q int
	// StrideH and StrideW are the convolution strides.
	StrideH, StrideW int
	// PadH and PadW are the zero-padding amounts applied to each border of
	// the input feature map.
	PadH, PadW int
	// N is the batch size.
	N int

	// Depthwise marks a depthwise convolution: each output channel m reads
	// only input channel m (C must equal M), and the weight tensor collapses
	// to C x R x S.
	Depthwise bool

	// WordBits is the datatype width in bits for all tensors of this layer.
	WordBits int
}

// Datatype enumerates the three tensors a convolutional layer touches.
type Datatype int

const (
	// Weight is the filter tensor (M x C x R x S, or C x R x S if depthwise).
	Weight Datatype = iota
	// Ifmap is the input feature map (N x C x InH x InW).
	Ifmap
	// Ofmap is the output feature map (N x M x P x Q).
	Ofmap
)

// Datatypes lists all datatypes in canonical order.
var Datatypes = [3]Datatype{Weight, Ifmap, Ofmap}

// String returns the conventional lower-case name of the datatype.
func (d Datatype) String() string {
	switch d {
	case Weight:
		return "weight"
	case Ifmap:
		return "ifmap"
	case Ofmap:
		return "ofmap"
	}
	return "unknown"
}

// InH returns the input feature-map height implied by the output shape,
// filter size, stride and padding (without the padding itself).
func (l *Layer) InH() int { return num.MulInt(l.P-1, l.StrideH) + l.R - 2*l.PadH }

// InW returns the input feature-map width implied by the output shape.
func (l *Layer) InW() int { return num.MulInt(l.Q-1, l.StrideW) + l.S - 2*l.PadW }

// PaddedInH returns the input height including zero padding. Tiling
// arithmetic operates on the padded extent because the accelerator addresses
// the padded tensor.
func (l *Layer) PaddedInH() int { return num.MulInt(l.P-1, l.StrideH) + l.R }

// PaddedInW returns the input width including zero padding.
func (l *Layer) PaddedInW() int { return num.MulInt(l.Q-1, l.StrideW) + l.S }

// MACs returns the number of multiply-accumulate operations the layer
// performs. Depthwise layers perform C*P*Q*R*S MACs; dense layers
// N*M*C*P*Q*R*S.
func (l *Layer) MACs() int64 {
	macs := int64(l.N) * int64(l.P) * int64(l.Q) * int64(l.R) * int64(l.S) * int64(l.M)
	if !l.Depthwise {
		macs *= int64(l.C)
	}
	return macs
}

// Volume returns the number of elements of the given datatype.
func (l *Layer) Volume(d Datatype) int64 {
	switch d {
	case Weight:
		v := int64(l.M) * int64(l.R) * int64(l.S)
		if !l.Depthwise {
			v *= int64(l.C)
		}
		return v
	case Ifmap:
		return int64(l.N) * int64(l.C) * int64(l.InH()) * int64(l.InW())
	case Ofmap:
		return int64(l.N) * int64(l.M) * int64(l.P) * int64(l.Q)
	}
	return 0
}

// VolumeBits returns the size in bits of the given datatype's tensor.
func (l *Layer) VolumeBits(d Datatype) int64 {
	return l.Volume(d) * int64(l.WordBits)
}

// TotalVolume returns the element count summed over all three datatypes.
func (l *Layer) TotalVolume() int64 {
	return l.Volume(Weight) + l.Volume(Ifmap) + l.Volume(Ofmap)
}

// Validate reports whether the layer dimensions are internally consistent.
func (l *Layer) Validate() error {
	switch {
	case l.C <= 0 || l.M <= 0 || l.R <= 0 || l.S <= 0 || l.P <= 0 || l.Q <= 0:
		return &ShapeError{Layer: l.Name, Reason: "all of C,M,R,S,P,Q must be positive"}
	case l.StrideH <= 0 || l.StrideW <= 0:
		return &ShapeError{Layer: l.Name, Reason: "strides must be positive"}
	case l.PadH < 0 || l.PadW < 0:
		return &ShapeError{Layer: l.Name, Reason: "padding must be non-negative"}
	case l.N <= 0:
		return &ShapeError{Layer: l.Name, Reason: "batch size must be positive"}
	case l.WordBits <= 0:
		return &ShapeError{Layer: l.Name, Reason: "word width must be positive"}
	case l.Depthwise && l.C != l.M:
		return &ShapeError{Layer: l.Name, Reason: "depthwise layer requires C == M"}
	case l.InH() <= 0 || l.InW() <= 0:
		return &ShapeError{Layer: l.Name, Reason: "implied input extent is non-positive"}
	}
	return nil
}

// ShapeError reports an inconsistent layer specification.
type ShapeError struct {
	Layer  string
	Reason string
}

func (e *ShapeError) Error() string {
	return "workload: layer " + e.Layer + ": " + e.Reason
}
