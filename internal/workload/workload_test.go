package workload

import (
	"testing"
	"testing/quick"
)

func TestAllNetworksValidate(t *testing.T) {
	for _, n := range Networks() {
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
	}
}

func TestNetworkShapes(t *testing.T) {
	cases := []struct {
		name      string
		layers    int
		segments  int
		macsLow   int64
		macsHigh  int64
		pairssMin int
	}{
		{"alexnet", 5, 3, 6e8, 7e8, 2},
		{"resnet18", 21, 12, 1.8e9, 1.9e9, 8},
		{"mobilenetv2", 52, 16, 2.9e8, 3.2e8, 20},
	}
	for _, c := range cases {
		n, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if got := n.NumLayers(); got != c.layers {
			t.Errorf("%s: %d layers, want %d", c.name, got, c.layers)
		}
		if got := len(n.Segments); got < c.segments {
			t.Errorf("%s: %d segments, want >= %d", c.name, got, c.segments)
		}
		if macs := n.TotalMACs(); macs < c.macsLow || macs > c.macsHigh {
			t.Errorf("%s: %d MACs, want within [%g, %g]", c.name, macs, float64(c.macsLow), float64(c.macsHigh))
		}
		if got := len(n.CrossLayerPairs()); got < c.pairssMin {
			t.Errorf("%s: %d cross-layer pairs, want >= %d", c.name, got, c.pairssMin)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("lenet5"); err == nil {
		t.Fatal("ByName accepted unknown network")
	}
}

func TestAlexNetConv1Shape(t *testing.T) {
	l := AlexNet().Layer(0)
	if l.InH() != 227 || l.InW() != 227 {
		t.Errorf("conv1 input %dx%d, want 227x227", l.InH(), l.InW())
	}
	if got := l.MACs(); got != int64(55*55*64*3*11*11) {
		t.Errorf("conv1 MACs = %d", got)
	}
	if got := l.Volume(Weight); got != int64(64*3*11*11) {
		t.Errorf("conv1 weights = %d", got)
	}
}

func TestDepthwiseSemantics(t *testing.T) {
	n := MobileNetV2()
	var dw *Layer
	for i := range n.Layers {
		if n.Layers[i].Depthwise {
			dw = &n.Layers[i]
			break
		}
	}
	if dw == nil {
		t.Fatal("MobileNetV2 has no depthwise layer")
	}
	if dw.C != dw.M {
		t.Fatalf("depthwise C=%d M=%d", dw.C, dw.M)
	}
	if got, want := dw.MACs(), int64(dw.M)*int64(dw.P)*int64(dw.Q)*int64(dw.R)*int64(dw.S); got != want {
		t.Errorf("depthwise MACs = %d, want %d", got, want)
	}
	if got, want := dw.Volume(Weight), int64(dw.M)*int64(dw.R)*int64(dw.S); got != want {
		t.Errorf("depthwise weights = %d, want %d", got, want)
	}
}

func TestSegmentOf(t *testing.T) {
	n := AlexNet()
	for s, seg := range n.Segments {
		for p, li := range seg {
			gs, gp := n.SegmentOf(li)
			if gs != s || gp != p {
				t.Errorf("SegmentOf(%d) = (%d,%d), want (%d,%d)", li, gs, gp, s, p)
			}
		}
	}
	if s, p := n.SegmentOf(99); s != -1 || p != -1 {
		t.Errorf("SegmentOf(99) = (%d,%d)", s, p)
	}
}

func TestCrossLayerPairsShareShapes(t *testing.T) {
	for _, n := range Networks() {
		for _, pr := range n.CrossLayerPairs() {
			p, c := n.Layer(pr[0]), n.Layer(pr[1])
			if p.M != c.C && !(c.Depthwise && p.M == c.M) {
				t.Errorf("%s: pair %s->%s channel mismatch", n.Name, p.Name, c.Name)
			}
		}
	}
}

func TestLayerValidateRejectsBadShapes(t *testing.T) {
	good := Layer{Name: "l", C: 3, M: 8, R: 3, S: 3, P: 5, Q: 5, StrideH: 1, StrideW: 1, N: 1, WordBits: 16}
	if err := good.Validate(); err != nil {
		t.Fatalf("good layer rejected: %v", err)
	}
	mutations := []func(*Layer){
		func(l *Layer) { l.C = 0 },
		func(l *Layer) { l.M = -1 },
		func(l *Layer) { l.StrideH = 0 },
		func(l *Layer) { l.PadH = -1 },
		func(l *Layer) { l.N = 0 },
		func(l *Layer) { l.WordBits = 0 },
		func(l *Layer) { l.Depthwise = true }, // C != M
	}
	for i, mut := range mutations {
		l := good
		mut(&l)
		if err := l.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// Property: for any valid stride/pad/filter combination, the implied input
// extent reproduces P under the convolution output formula.
func TestInputOutputRoundTrip(t *testing.T) {
	f := func(p, r, stride, pad uint8) bool {
		P := int(p%60) + 1
		R := int(r%7) + 1
		S := int(stride%3) + 1
		Pad := int(pad % 3)
		l := Layer{Name: "t", C: 1, M: 1, R: R, S: R, P: P, Q: P,
			StrideH: S, StrideW: S, PadH: Pad, PadW: Pad, N: 1, WordBits: 16}
		if l.InH() <= 0 {
			return true // degenerate; Validate would reject
		}
		// Standard conv arithmetic: out = floor((in + 2*pad - R)/stride) + 1.
		out := (l.InH()+2*Pad-R)/S + 1
		return out == P
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVolumeBits(t *testing.T) {
	l := AlexNet().Layer(1)
	if got, want := l.VolumeBits(Ofmap), l.Volume(Ofmap)*int64(l.WordBits); got != want {
		t.Errorf("VolumeBits = %d, want %d", got, want)
	}
	if l.TotalVolume() != l.Volume(Weight)+l.Volume(Ifmap)+l.Volume(Ofmap) {
		t.Error("TotalVolume mismatch")
	}
}

func TestDatatypeString(t *testing.T) {
	if Weight.String() != "weight" || Ifmap.String() != "ifmap" || Ofmap.String() != "ofmap" {
		t.Error("datatype names wrong")
	}
	if Datatype(9).String() != "unknown" {
		t.Error("out-of-range datatype name")
	}
}

func TestVGG16(t *testing.T) {
	n := VGG16()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.NumLayers() != 16 {
		t.Errorf("%d layers, want 16", n.NumLayers())
	}
	// ~15.3 GMACs for the standard 224x224 VGG-16.
	if macs := n.TotalMACs(); macs < 15.0e9 || macs > 15.8e9 {
		t.Errorf("MACs = %g, want ~15.5e9", float64(macs))
	}
	// fc6 segment is the classifier boundary; conv blocks chain.
	if len(n.Segments) != 7 {
		t.Errorf("%d segments, want 7", len(n.Segments))
	}
	if got, _ := ByName("vgg16"); got == nil || got.Name != "VGG16" {
		t.Error("ByName(vgg16) failed")
	}
}
