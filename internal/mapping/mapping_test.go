package mapping

import (
	"math/rand"
	"strings"
	"testing"

	"secureloop/internal/workload"
)

func testLayer() *workload.Layer {
	return &workload.Layer{
		Name: "t", C: 16, M: 32, R: 3, S: 3, P: 14, Q: 14,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, N: 1, WordBits: 16,
	}
}

// rsMapping builds a row-stationary-style mapping for the test layer.
func rsMapping() *Mapping {
	m := New()
	m.SetFactor(RF, DimR, 3)
	m.SetFactor(RF, DimS, 3)
	m.SetFactor(SpatialX, DimQ, 14)
	m.SetFactor(SpatialY, DimM, 8)
	m.SetFactor(GLB, DimP, 7)
	m.SetFactor(GLB, DimC, 4)
	return m
}

func TestBounds(t *testing.T) {
	l := testLayer()
	if Bound(l, DimC) != 16 || Bound(l, DimM) != 32 || Bound(l, DimP) != 14 || Bound(l, DimR) != 3 {
		t.Error("bounds wrong")
	}
	dw := &workload.Layer{Name: "dw", C: 8, M: 8, R: 3, S: 3, P: 4, Q: 4,
		StrideH: 1, StrideW: 1, N: 1, WordBits: 16, Depthwise: true}
	if Bound(dw, DimC) != 1 {
		t.Error("depthwise C bound should collapse to 1")
	}
}

func TestRelevance(t *testing.T) {
	l := testLayer()
	// Weight is indexed by M, C, R, S but not P, Q.
	if !Relevant(l, workload.Weight, DimM) || Relevant(l, workload.Weight, DimP) {
		t.Error("weight relevance")
	}
	// Ifmap: C, P, Q, R, S but not M.
	if !Relevant(l, workload.Ifmap, DimP) || Relevant(l, workload.Ifmap, DimM) {
		t.Error("ifmap relevance")
	}
	// Ofmap: M, P, Q only.
	if !Relevant(l, workload.Ofmap, DimM) || Relevant(l, workload.Ofmap, DimC) {
		t.Error("ofmap relevance")
	}
	// Depthwise: the channel loop (M) indexes everything.
	dw := &workload.Layer{Name: "dw", C: 8, M: 8, R: 3, S: 3, P: 4, Q: 4,
		StrideH: 1, StrideW: 1, N: 1, WordBits: 16, Depthwise: true}
	if !Relevant(dw, workload.Ifmap, DimM) || !Relevant(dw, workload.Weight, DimM) {
		t.Error("depthwise relevance")
	}
	if Relevant(dw, workload.Weight, DimC) {
		t.Error("depthwise weight should not depend on C")
	}
}

func TestIsReduction(t *testing.T) {
	l := testLayer()
	if !IsReduction(l, DimC) || !IsReduction(l, DimR) || IsReduction(l, DimM) || IsReduction(l, DimP) {
		t.Error("reduction dims wrong")
	}
	dw := &workload.Layer{Depthwise: true}
	if IsReduction(dw, DimC) {
		t.Error("depthwise C is not a reduction")
	}
}

func TestTileShapes(t *testing.T) {
	l := testLayer()
	m := rsMapping()
	// GLB weight tile: M(8) x C(4) x R(3) x S(3).
	if got := m.GLBTileElems(l, workload.Weight); got != 8*4*3*3 {
		t.Errorf("weight tile = %d", got)
	}
	// GLB ofmap tile: M(8) x P(7) x Q(14).
	if got := m.GLBTileElems(l, workload.Ofmap); got != 8*7*14 {
		t.Errorf("ofmap tile = %d", got)
	}
	// GLB ifmap tile: C(4) x H((7-1)*1+3=9) x W((14-1)*1+3=16).
	if got := m.GLBTileElems(l, workload.Ifmap); got != 4*9*16 {
		t.Errorf("ifmap tile = %d", got)
	}
}

func TestTemporalIterations(t *testing.T) {
	l := testLayer()
	m := rsMapping()
	// Temporal per GLB tile: RF(9) * GLB(7*4); DRAM counts: C:16/4=4,
	// M:32/8=4, P:14/7=2 -> iterations = 9*28*32 = 8064.
	if got := m.TemporalIterations(l); got != 9*28*32 {
		t.Errorf("iterations = %d", got)
	}
	// MACs / activePEs must equal iterations when the spatial mapping is
	// perfect (all factors divide).
	active := int64(m.ActivePEs())
	if got := m.TemporalIterations(l) * active; got != l.MACs() {
		t.Errorf("iterations*active = %d, MACs = %d", got, l.MACs())
	}
}

func TestOffchipStationarity(t *testing.T) {
	l := testLayer()
	m := rsMapping()

	// Ofmap-stationary order: reduction (C) innermost -> ofmap written once.
	m.PermDRAM = []Dim{DimM, DimP, DimQ, DimC, DimR, DimS}
	off := m.Offchip(l)
	if off.ReadElems[workload.Ofmap] != 0 {
		t.Errorf("ofmap re-reads with reduction innermost: %d", off.ReadElems[workload.Ofmap])
	}
	wantOfmap := int64(32 * 14 * 14)
	if off.WriteElems != wantOfmap {
		t.Errorf("ofmap writes = %d, want %d", off.WriteElems, wantOfmap)
	}
	// Weight fetched once per (C, M) tile, revisited for each P tile if P is
	// outside... here P is outside C, so weights refetch per P? No: order is
	// M P Q C; the innermost weight-relevant loop is C (last), so weights
	// are fetched visits(C)=4*2*1*4 = M*P*C times their tile.
	wantWeight := int64(4*2*4) * int64(8*4*3*3)
	if off.ReadElems[workload.Weight] != wantWeight {
		t.Errorf("weight reads = %d, want %d", off.ReadElems[workload.Weight], wantWeight)
	}

	// Reduction-outermost order: ofmap partial sums spill.
	m.PermDRAM = []Dim{DimC, DimM, DimP, DimQ, DimR, DimS}
	off = m.Offchip(l)
	if off.ReadElems[workload.Ofmap] == 0 {
		t.Error("expected partial-sum re-reads with C outermost")
	}
	// Writes = 4 visits per tile; re-reads = 3 per tile.
	if off.WriteElems != 4*wantOfmap {
		t.Errorf("ofmap writes = %d, want %d", off.WriteElems, 4*wantOfmap)
	}
	if off.ReadElems[workload.Ofmap] != 3*wantOfmap {
		t.Errorf("ofmap re-reads = %d, want %d", off.ReadElems[workload.Ofmap], 3*wantOfmap)
	}
}

func TestOffchipLowerBound(t *testing.T) {
	// Any mapping must move at least one tile per distinct region: reads of
	// weight and ifmap are at least the (clipped) tensor volume when every
	// element is touched.
	l := testLayer()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		m := randomMapping(rng, l)
		off := m.Offchip(l)
		if off.ReadElems[workload.Weight] < l.Volume(workload.Weight) {
			t.Fatalf("weight reads %d < volume %d (map %v)", off.ReadElems[workload.Weight], l.Volume(workload.Weight), m)
		}
		if off.WriteElems < l.Volume(workload.Ofmap) {
			t.Fatalf("ofmap writes %d < volume %d", off.WriteElems, l.Volume(workload.Ofmap))
		}
	}
}

func randomMapping(rng *rand.Rand, l *workload.Layer) *Mapping {
	m := New()
	m.SetFactor(RF, DimR, 3)
	m.SetFactor(RF, DimS, 3)
	pick := func(b int) int {
		opts := []int{1, 2, 4, 7, b}
		v := opts[rng.Intn(len(opts))]
		if v > b {
			v = b
		}
		return v
	}
	m.SetFactor(GLB, DimC, pick(l.C))
	m.SetFactor(GLB, DimM, pick(l.M))
	m.SetFactor(GLB, DimP, pick(l.P))
	m.SetFactor(GLB, DimQ, pick(l.Q))
	perm := append([]Dim(nil), Dims[:]...)
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	m.PermDRAM = perm
	return m
}

func TestValidateMapping(t *testing.T) {
	l := testLayer()
	m := rsMapping()
	if err := m.Validate(l, 14, 12); err != nil {
		t.Fatalf("valid mapping rejected: %v", err)
	}
	// Exceeding the PE array fails.
	bad := rsMapping()
	bad.SetFactor(SpatialY, DimM, 16)
	if err := bad.Validate(l, 14, 12); err == nil {
		t.Error("oversized spatial accepted")
	}
	// Tiling R at DRAM fails.
	bad2 := New()
	bad2.SetFactor(RF, DimR, 1)
	bad2.SetFactor(GLB, DimS, 3)
	// R stays 1 per level while bound is 3 -> DRAM-tiled.
	if err := bad2.Validate(l, 14, 12); err == nil {
		t.Error("DRAM-tiled R accepted")
	}
	// Broken permutation fails.
	bad3 := rsMapping()
	bad3.PermDRAM = []Dim{DimC, DimC}
	if err := bad3.Validate(l, 14, 12); err == nil {
		t.Error("repeated dim in permutation accepted")
	}
}

func TestGLBAccessesMulticast(t *testing.T) {
	l := testLayer()
	m := rsMapping()
	g := m.GLB(l)
	// Every datatype must be read at least its tensor volume from GLB.
	if g.ReadElems[workload.Weight] < l.Volume(workload.Weight) {
		t.Error("weight GLB reads below volume")
	}
	if g.WriteElems < l.Volume(workload.Ofmap) {
		t.Error("ofmap GLB writes below volume")
	}
	// Weights are multicast along Q (spatial X, irrelevant to weights): GLB
	// weight reads must not scale with the 14 Q-columns.
	perPE := g.ReadElems[workload.Weight]
	mNoSpatial := rsMapping()
	mNoSpatial.SetFactor(SpatialX, DimQ, 1)
	mNoSpatial.SetFactor(GLB, DimQ, 14)
	g2 := mNoSpatial.GLB(l)
	if perPE > 2*g2.ReadElems[workload.Weight] {
		t.Errorf("weight reads scale with multicast width: %d vs %d", perPE, g2.ReadElems[workload.Weight])
	}
}

func TestOfmapTilingExtraction(t *testing.T) {
	l := testLayer()
	m := rsMapping()
	ot := m.OfmapDRAMTiling(l)
	if ot.MTile != 8 || ot.PTile != 7 || ot.QTile != 14 {
		t.Errorf("ofmap tile %dx%dx%d", ot.MTile, ot.PTile, ot.QTile)
	}
	if ot.MCount != 4 || ot.PCount != 2 || ot.QCount != 1 {
		t.Errorf("ofmap counts %dx%dx%d", ot.MCount, ot.PCount, ot.QCount)
	}
	if ot.NumTiles() != 8 || ot.TileElems() != 8*7*14 {
		t.Error("ofmap tiling totals")
	}
}

func TestIfmapTilingExtraction(t *testing.T) {
	l := testLayer()
	m := rsMapping()
	it := m.IfmapDRAMTiling(l)
	if it.ChTile != 4 || it.HWin != 9 || it.WWin != 16 {
		t.Errorf("ifmap tiling %d/%d/%d", it.ChTile, it.HWin, it.WWin)
	}
	if it.HStep != 7 || it.OffH != -1 {
		t.Errorf("ifmap step/off %d/%d", it.HStep, it.OffH)
	}
	// Halo: window (9) exceeds step (7) by R-stride = 2.
	if it.HWin-it.HStep != 2 {
		t.Error("halo extent wrong")
	}
	lo, hi := it.TileRowRange(0)
	if lo != 0 || hi != 8 {
		t.Errorf("first row range [%d,%d)", lo, hi)
	}
	lo, hi = it.TileRowRange(1)
	if lo != 6 || hi != 14 {
		t.Errorf("second row range [%d,%d)", lo, hi)
	}
}

func TestWeightTilingExtraction(t *testing.T) {
	l := testLayer()
	m := rsMapping()
	wt := m.WeightDRAMTiling(l)
	if wt.TileElems != 8*4*3*3 {
		t.Errorf("weight tile elems = %d", wt.TileElems)
	}
	if wt.NumTiles != 4*4 {
		t.Errorf("weight tiles = %d", wt.NumTiles)
	}
}

func TestMappingString(t *testing.T) {
	m := rsMapping()
	s := m.String()
	for _, frag := range []string{"GLB[", "spX[Q:14]", "spY[M:8]", "RF[R:3 S:3]"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := rsMapping()
	c := m.Clone()
	c.SetFactor(GLB, DimC, 99)
	c.PermDRAM[0] = DimS
	if m.Factor(GLB, DimC) == 99 || m.PermDRAM[0] == DimS {
		t.Error("Clone shares state")
	}
}

func TestBufferOccupancy(t *testing.T) {
	l := testLayer()
	m := rsMapping()
	want := 2 * (m.GLBTileElems(l, workload.Weight) +
		m.GLBTileElems(l, workload.Ifmap) +
		m.GLBTileElems(l, workload.Ofmap)) * int64(l.WordBits)
	if got := m.GLBBitsUsed(l); got != want {
		t.Errorf("GLB bits = %d, want %d", got, want)
	}
}
