package mapping

import (
	"secureloop/internal/workload"
)

// OffchipTraffic summarises the DRAM-side data movement a mapping induces
// for one layer, in elements (multiply by the layer's WordBits for bits).
// Hash and redundant traffic from authentication is *not* included here; it
// is computed by the authblock package on top of these tile fetch counts.
type OffchipTraffic struct {
	// ReadElems is the number of elements read from DRAM per datatype
	// (Weight, Ifmap, Ofmap). Ofmap reads are partial-sum re-reads.
	ReadElems [3]int64
	// WriteElems is the number of ofmap (and partial-sum) elements written
	// to DRAM.
	WriteElems int64
	// TileFetches is the number of tile-granularity off-chip transactions
	// per datatype: how many times a GLB tile of that datatype crosses the
	// chip boundary (reads; for ofmap, writes). AuthBlock overheads are
	// charged per fetch.
	TileFetches [3]int64
}

// TotalElems returns reads plus writes.
func (t OffchipTraffic) TotalElems() int64 {
	return t.ReadElems[0] + t.ReadElems[1] + t.ReadElems[2] + t.WriteElems
}

// DatatypeElems returns the off-chip elements moved for one datatype
// (reads, plus writes for ofmap).
func (t OffchipTraffic) DatatypeElems(dt workload.Datatype) int64 {
	e := t.ReadElems[dt]
	if dt == workload.Ofmap {
		e += t.WriteElems
	}
	return e
}

// loop is one temporal loop with its trip count and per-datatype relevance.
type loop struct {
	dim   Dim
	count int
}

// dramLoops returns the DRAM-level loops in permutation order (outermost
// first) with their trip counts; loops with count 1 are dropped.
func (m *Mapping) dramLoops(layer *workload.Layer) []loop {
	return m.levelLoops(layer, m.PermDRAM, func(d Dim) int {
		return m.OuterCount(layer, GLB, d)
	})
}

// glbLoops returns the GLB-level loops in permutation order.
func (m *Mapping) glbLoops(layer *workload.Layer) []loop {
	return m.levelLoops(layer, m.PermGLB, func(d Dim) int {
		return m.Factor(GLB, d)
	})
}

func (m *Mapping) levelLoops(layer *workload.Layer, perm []Dim, count func(Dim) int) []loop {
	var out []loop
	var inPerm [NumDims]bool
	for _, d := range perm {
		inPerm[d] = true
		if c := count(d); c > 1 {
			out = append(out, loop{dim: d, count: c})
		}
	}
	// Dimensions missing from the permutation count as outermost.
	var missing []loop
	for _, d := range Dims {
		if !inPerm[d] {
			if c := count(d); c > 1 {
				missing = append(missing, loop{dim: d, count: c})
			}
		}
	}
	return append(missing, out...)
}

// visits computes how many times the tile of a datatype is (re)fetched while
// executing the given ordered loops: the product of trip counts from the
// outermost loop through the innermost loop relevant to the datatype. A
// loop irrelevant to the datatype that sits outside a relevant loop forces a
// refetch (the buffer holds a single live tile per datatype, double-buffered
// for overlap); irrelevant loops inside the innermost relevant loop reuse
// the tile. If no loop is relevant the tile is fetched exactly once.
func visits(layer *workload.Layer, dt workload.Datatype, loops []loop) int64 {
	last := -1
	for i, lp := range loops {
		if Relevant(layer, dt, lp.dim) {
			last = i
		}
	}
	v := int64(1)
	for i := 0; i <= last; i++ {
		v *= int64(loops[i].count)
	}
	return v
}

// distinctTiles counts the distinct tiles of a datatype the loops iterate
// over: the product of relevant trip counts.
func distinctTiles(layer *workload.Layer, dt workload.Datatype, loops []loop) int64 {
	n := int64(1)
	for _, lp := range loops {
		if Relevant(layer, dt, lp.dim) {
			n *= int64(lp.count)
		}
	}
	return n
}

// Offchip computes the DRAM traffic of the mapping for the layer.
//
// Weights and ifmaps are read once per visit of their GLB tile. The ofmap
// tile is written back once per visit; when reduction loops (C, R, S) run
// outside the innermost ofmap-relevant DRAM loop the same output tile is
// visited multiple times, and every visit after the first must first re-read
// the partial sums it continues accumulating into.
func (m *Mapping) Offchip(layer *workload.Layer) OffchipTraffic {
	loops := m.dramLoops(layer)
	var t OffchipTraffic

	for _, dt := range []workload.Datatype{workload.Weight, workload.Ifmap} {
		v := visits(layer, dt, loops)
		tile := m.GLBTileElems(layer, dt)
		t.ReadElems[dt] = v * tile
		t.TileFetches[dt] = v
	}

	vOf := visits(layer, workload.Ofmap, loops)
	nOf := distinctTiles(layer, workload.Ofmap, loops)
	tileOf := m.GLBTileElems(layer, workload.Ofmap)
	t.WriteElems = vOf * tileOf
	if vOf > nOf {
		t.ReadElems[workload.Ofmap] = (vOf - nOf) * tileOf
	}
	t.TileFetches[workload.Ofmap] = vOf
	return t
}

// GLBAccesses summarises GLB-port traffic (elements) for energy estimation:
// reads feeding the PE array and ofmap read-modify-write updates.
type GLBAccesses struct {
	ReadElems  [3]int64
	WriteElems int64
}

// Total returns all GLB accesses.
func (g GLBAccesses) Total() int64 {
	return g.ReadElems[0] + g.ReadElems[1] + g.ReadElems[2] + g.WriteElems
}

// GLB computes the on-chip global-buffer traffic: the loops above the
// register file are the DRAM loops followed by the GLB loops, and a datum
// multicast to several PEs along an irrelevant spatial dimension is read
// from the GLB once.
func (m *Mapping) GLB(layer *workload.Layer) GLBAccesses {
	loops := append(m.dramLoops(layer), m.glbLoops(layer)...)
	var g GLBAccesses
	for _, dt := range []workload.Datatype{workload.Weight, workload.Ifmap} {
		v := visits(layer, dt, loops)
		g.ReadElems[dt] = v * m.RFTileElems(layer, dt) * m.spatialInstances(layer, dt)
	}
	vOf := visits(layer, workload.Ofmap, loops)
	nOf := distinctTiles(layer, workload.Ofmap, loops)
	tile := m.RFTileElems(layer, workload.Ofmap) * m.spatialInstances(layer, workload.Ofmap)
	g.WriteElems = vOf * tile
	if vOf > nOf {
		g.ReadElems[workload.Ofmap] = (vOf - nOf) * tile
	}
	return g
}

// spatialInstances counts how many PE-array positions hold distinct slices
// of the datatype: the product of spatial factors over relevant dimensions.
func (m *Mapping) spatialInstances(layer *workload.Layer, dt workload.Datatype) int64 {
	n := int64(1)
	for _, d := range Dims {
		if Relevant(layer, dt, d) {
			n *= int64(m.Factor(SpatialX, d)) * int64(m.Factor(SpatialY, d))
		}
	}
	return n
}
