package mapping

import (
	"math/rand"
	"testing"

	"secureloop/internal/workload"
)

// simulateOffchip is an enumeration oracle for Mapping.Offchip: it walks
// the DRAM-level loop nest literally, holding one live tile per datatype
// (the double-buffered single-tile semantics of the model), and counts
// fetch events and ofmap write/reread events whenever the tile identity
// changes.
func simulateOffchip(m *Mapping, l *workload.Layer) OffchipTraffic {
	loops := m.dramLoops(l)
	n := len(loops)
	idx := make([]int, n)

	tileID := func(dt workload.Datatype) int64 {
		var id int64 = 1
		for i, lp := range loops {
			if Relevant(l, dt, lp.dim) {
				id = id*int64(lp.count+1) + int64(idx[i])
			}
		}
		return id
	}

	var t OffchipTraffic
	cur := map[workload.Datatype]int64{}
	seenOfmap := map[int64]bool{}
	var steps int64
	total := int64(1)
	for _, lp := range loops {
		total *= int64(lp.count)
	}

	for step := int64(0); step < total; step++ {
		for _, dt := range []workload.Datatype{workload.Weight, workload.Ifmap} {
			id := tileID(dt)
			if cur[dt] != id {
				cur[dt] = id
				t.TileFetches[dt]++
				t.ReadElems[dt] += m.GLBTileElems(l, dt)
			}
		}
		ofID := tileID(workload.Ofmap)
		if cur[workload.Ofmap] != ofID {
			// The previous resident ofmap tile is written back on eviction;
			// model that as one write per residency interval.
			cur[workload.Ofmap] = ofID
			t.TileFetches[workload.Ofmap]++
			t.WriteElems += m.GLBTileElems(l, workload.Ofmap)
			if seenOfmap[ofID] {
				// Revisit: partial sums must be re-read first.
				t.ReadElems[workload.Ofmap] += m.GLBTileElems(l, workload.Ofmap)
			}
			seenOfmap[ofID] = true
		}
		steps++
		// Advance the innermost loop (odometer).
		for i := n - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < loops[i].count {
				break
			}
			idx[i] = 0
		}
	}
	if n == 0 {
		// Single iteration: each datatype fetched once, ofmap written once.
		for _, dt := range []workload.Datatype{workload.Weight, workload.Ifmap} {
			t.TileFetches[dt] = 1
			t.ReadElems[dt] = m.GLBTileElems(l, dt)
		}
		t.TileFetches[workload.Ofmap] = 1
		t.WriteElems = m.GLBTileElems(l, workload.Ofmap)
	}
	return t
}

// TestOffchipMatchesLoopNestSimulation cross-checks the stationarity-based
// access counting against literal loop-nest enumeration on random mappings
// of a small layer.
func TestOffchipMatchesLoopNestSimulation(t *testing.T) {
	l := &workload.Layer{
		Name: "sim", C: 8, M: 12, R: 3, S: 3, P: 10, Q: 10,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, N: 1, WordBits: 16,
	}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 300; i++ {
		m := New()
		m.SetFactor(RF, DimR, 3)
		m.SetFactor(RF, DimS, 3)
		pickTile := func(d Dim, b int) {
			opts := []int{1, 2, 5, b}
			v := opts[rng.Intn(len(opts))]
			if v > b {
				v = b
			}
			m.SetFactor(GLB, d, v)
		}
		pickTile(DimC, l.C)
		pickTile(DimM, l.M)
		pickTile(DimP, l.P)
		pickTile(DimQ, l.Q)
		perm := append([]Dim(nil), Dims[:]...)
		rng.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		m.PermDRAM = perm

		got := m.Offchip(l)
		want := simulateOffchip(m, l)
		if got != want {
			t.Fatalf("iter %d map %v:\n got %+v\nwant %+v", i, m, got, want)
		}
	}
}

// TestOffchipDepthwiseMatchesSimulation repeats the oracle check for a
// depthwise layer, whose relevance sets differ.
func TestOffchipDepthwiseMatchesSimulation(t *testing.T) {
	l := &workload.Layer{
		Name: "dw", C: 12, M: 12, R: 3, S: 3, P: 8, Q: 8,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, N: 1, WordBits: 16,
		Depthwise: true,
	}
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 200; i++ {
		m := New()
		m.SetFactor(RF, DimR, 3)
		m.SetFactor(RF, DimS, 3)
		for _, d := range []Dim{DimM, DimP, DimQ} {
			opts := []int{1, 2, 4, Bound(l, d)}
			v := opts[rng.Intn(len(opts))]
			if v > Bound(l, d) {
				v = Bound(l, d)
			}
			m.SetFactor(GLB, d, v)
		}
		perm := append([]Dim(nil), Dims[:]...)
		rng.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		m.PermDRAM = perm

		got := m.Offchip(l)
		want := simulateOffchip(m, l)
		if got != want {
			t.Fatalf("iter %d map %v:\n got %+v\nwant %+v", i, m, got, want)
		}
	}
}
