package mapping

import (
	"secureloop/internal/num"
	"secureloop/internal/workload"
)

// TilingAnalysis caches everything about one tiling's DRAM-level behaviour
// that the loop permutation cannot change: per-dimension DRAM trip counts,
// per-datatype GLB tile volumes, datatype relevance, and the (also
// permutation-independent) compute cycles. The mapper's step-1 inner loop
// scores several loop orders per tiling; deriving these terms once and
// evaluating OffchipElems per order avoids re-walking the mapping for every
// permutation and allocates nothing.
//
// Soundness: Offchip() depends on the permutation only through the ordered
// DRAM loop list, whose per-dimension trip counts are OuterCount(GLB, d);
// tile volumes and TemporalIterations read factors only. OffchipElems
// rebuilds the identical loop list per order, so for any permutation
//
//	a.OffchipElems(perm) == m'.Offchip(layer).TotalElems()
//
// where m' is the analysed mapping with PermDRAM = perm (asserted by
// TestAnalysisMatchesOffchip and the mapper's search-equivalence test).
type TilingAnalysis struct {
	// Compute is TemporalIterations: the PE-array busy cycles.
	Compute int64
	// MinOffchipElems lower-bounds OffchipElems over every permutation:
	// each datatype's distinct DRAM tiles cross the chip boundary at least
	// once (a tile's visit count is a product over a superset of the loops
	// its distinct-tile count multiplies, and every trip count is >= 1).
	MinOffchipElems int64

	// outer[d] is the DRAM-level trip count of dimension d.
	outer [NumDims]int
	// tileElems[dt] is the element count of datatype dt's GLB tile.
	tileElems [3]int64
	// relevant[dt][d] mirrors Relevant(layer, dt, d).
	relevant [3][NumDims]bool
}

// Analyze derives the permutation-independent tiling terms for the layer.
func (m *Mapping) Analyze(layer *workload.Layer) TilingAnalysis {
	var a TilingAnalysis
	a.Compute = m.TemporalIterations(layer)
	for _, d := range Dims {
		a.outer[d] = m.OuterCount(layer, GLB, d)
	}
	for _, dt := range workload.Datatypes {
		a.tileElems[dt] = m.GLBTileElems(layer, dt)
		for _, d := range Dims {
			a.relevant[dt][d] = Relevant(layer, dt, d)
		}
	}
	for _, dt := range workload.Datatypes {
		nTiles := int64(1)
		for _, d := range Dims {
			if a.relevant[dt][d] {
				nTiles = num.MulInt64(nTiles, int64(a.outer[d]))
			}
		}
		a.MinOffchipElems += num.MulInt64(nTiles, a.tileElems[dt])
	}
	return a
}

// OffchipElems returns the total off-chip element traffic (reads plus
// writes) the analysed tiling induces under the given DRAM loop order,
// outermost first — exactly Offchip(layer).TotalElems() of the same mapping
// with PermDRAM = perm, without touching the heap.
func (a *TilingAnalysis) OffchipElems(perm []Dim) int64 {
	// Rebuild the DRAM loop list the way dramLoops does: dimensions missing
	// from the permutation count as outermost, loops with trip count 1 drop.
	var loops [NumDims]loop
	n := 0
	var inPerm [NumDims]bool
	for _, d := range perm {
		inPerm[d] = true
	}
	for _, d := range Dims {
		if !inPerm[d] && a.outer[d] > 1 {
			loops[n] = loop{dim: d, count: a.outer[d]}
			n++
		}
	}
	for _, d := range perm {
		if a.outer[d] > 1 {
			loops[n] = loop{dim: d, count: a.outer[d]}
			n++
		}
	}

	var total int64
	for _, dt := range []workload.Datatype{workload.Weight, workload.Ifmap} {
		total += num.MulInt64(a.visits(dt, loops[:n]), a.tileElems[dt])
	}
	vOf := a.visits(workload.Ofmap, loops[:n])
	nOf := int64(1)
	for i := 0; i < n; i++ {
		if a.relevant[workload.Ofmap][loops[i].dim] {
			nOf *= int64(loops[i].count)
		}
	}
	tileOf := a.tileElems[workload.Ofmap]
	total += num.MulInt64(vOf, tileOf) // writes
	if vOf > nOf {
		total += num.MulInt64(vOf-nOf, tileOf) // partial-sum re-reads
	}
	return total
}

// visits mirrors the package-level visits over precomputed relevance.
func (a *TilingAnalysis) visits(dt workload.Datatype, loops []loop) int64 {
	last := -1
	for i, lp := range loops {
		if a.relevant[dt][lp.dim] {
			last = i
		}
	}
	v := int64(1)
	for i := 0; i <= last; i++ {
		v *= int64(loops[i].count)
	}
	return v
}
