// Package mapping defines the loopnest intermediate representation a
// schedule ("mapping") of one DNN layer onto a spatial accelerator: the
// per-memory-level tiling factors, the loop permutations that determine data
// reuse, and the spatial mapping onto the PE array. It mirrors the loopnest
// abstraction of Timeloop that the paper builds its first scheduling step
// upon (Section 2.1, Figure 1c).
package mapping

import "secureloop/internal/workload"

// Dim is one of the six convolution loop dimensions (batch N is fixed to 1
// in this model, matching the paper's inference workloads).
type Dim int

const (
	// DimC indexes input channels.
	DimC Dim = iota
	// DimM indexes output channels (filters).
	DimM
	// DimP indexes output rows.
	DimP
	// DimQ indexes output columns.
	DimQ
	// DimR indexes filter rows.
	DimR
	// DimS indexes filter columns.
	DimS

	// NumDims is the dimension count.
	NumDims
)

// Dims lists all dimensions in canonical order.
var Dims = [NumDims]Dim{DimC, DimM, DimP, DimQ, DimR, DimS}

var dimNames = [NumDims]string{"C", "M", "P", "Q", "R", "S"}

// String returns the single-letter dimension name.
func (d Dim) String() string {
	if d < 0 || d >= NumDims {
		return "?"
	}
	return dimNames[d]
}

// Bound returns the layer's loop bound for the dimension.
func Bound(l *workload.Layer, d Dim) int {
	switch d {
	case DimC:
		if l.Depthwise {
			// The depthwise channel loop is carried by M; C collapses.
			return 1
		}
		return l.C
	case DimM:
		return l.M
	case DimP:
		return l.P
	case DimQ:
		return l.Q
	case DimR:
		return l.R
	case DimS:
		return l.S
	}
	return 1
}

// Relevant reports whether dimension d indexes the given datatype's tensor,
// i.e. whether advancing a loop over d changes which elements of the tensor
// are touched. Dimensions irrelevant to a tensor provide temporal reuse for
// it. For depthwise layers the channel loop (carried by M) indexes all
// three tensors.
func Relevant(l *workload.Layer, d workload.Datatype, dim Dim) bool {
	switch d {
	case workload.Weight:
		switch dim {
		case DimM, DimR, DimS:
			return true
		case DimC:
			return !l.Depthwise
		}
		return false
	case workload.Ifmap:
		switch dim {
		case DimC, DimP, DimQ, DimR, DimS:
			return true
		case DimM:
			return l.Depthwise
		}
		return false
	case workload.Ofmap:
		switch dim {
		case DimM, DimP, DimQ:
			return true
		}
		return false
	}
	return false
}

// IsReduction reports whether the dimension is a reduction dimension for the
// ofmap (advancing it accumulates into the same output elements).
func IsReduction(l *workload.Layer, dim Dim) bool {
	switch dim {
	case DimC:
		return !l.Depthwise
	case DimR, DimS:
		return true
	}
	return false
}
