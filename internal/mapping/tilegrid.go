package mapping

import (
	"secureloop/internal/num"
	"secureloop/internal/workload"
)

// OfmapTiling describes how a producer mapping partitions its ofmap tensor
// (M x P x Q, channel-major) into DRAM-level tiles. AuthBlock assignment
// lays authentication blocks over these producer tiles as the hashes are
// computed while the ofmap is generated (paper Section 4.2).
type OfmapTiling struct {
	// M, P, Q are the tensor extents (channels, rows, cols).
	M, P, Q int
	// MTile, PTile, QTile are the tile extents.
	MTile, PTile, QTile int
	// MCount, PCount, QCount are the tile counts per dimension.
	MCount, PCount, QCount int
	// WritesPerTile is how many times each tile region crosses off-chip
	// while being produced (1 unless partial sums spill).
	WritesPerTile int64
}

// NumTiles returns the total tile count.
func (o OfmapTiling) NumTiles() int { return num.MulInt(num.MulInt(o.MCount, o.PCount), o.QCount) }

// TileElems returns the element count of one (full) tile.
func (o OfmapTiling) TileElems() int { return num.MulInt(num.MulInt(o.MTile, o.PTile), o.QTile) }

// OfmapDRAMTiling extracts the producer-side tile organisation from a
// mapping.
func (m *Mapping) OfmapDRAMTiling(layer *workload.Layer) OfmapTiling {
	mt := min(m.TileDim(GLB, DimM), layer.M)
	pt := min(m.TileDim(GLB, DimP), layer.P)
	qt := min(m.TileDim(GLB, DimQ), layer.Q)
	loops := m.dramLoops(layer)
	v := visits(layer, workload.Ofmap, loops)
	n := distinctTiles(layer, workload.Ofmap, loops)
	w := int64(1)
	if n > 0 {
		w = v / n
		if w < 1 {
			w = 1
		}
	}
	return OfmapTiling{
		M: layer.M, P: layer.P, Q: layer.Q,
		MTile: mt, PTile: pt, QTile: qt,
		MCount:        num.CeilDiv(layer.M, mt),
		PCount:        num.CeilDiv(layer.P, pt),
		QCount:        num.CeilDiv(layer.Q, qt),
		WritesPerTile: w,
	}
}

// IfmapTiling describes how a consumer mapping reads a tensor — the
// producer's ofmap — as its ifmap, in the *tensor's* coordinate space
// (channels x rows x cols). Consecutive spatial tiles are convolution
// windows: they step by Step but extend over Win, so they overlap whenever
// Win > Step; the overlap is the halo of Section 3.2.2. Tiles are clipped
// to the tensor extents (zero padding is materialised on the fly and never
// read from DRAM).
type IfmapTiling struct {
	// Ch, H, W are the tensor extents (channels, rows, cols). For a
	// consumer of a producer's ofmap, Ch = producer M, H = producer P,
	// W = producer Q.
	Ch, H, W int
	// ChTile is the channels per tile; ChCount the channel-tile count.
	ChTile, ChCount int
	// HWin/WWin are the spatial window extents of a tile.
	HWin, WWin int
	// HStep/WStep are the distances between consecutive tile origins.
	HStep, WStep int
	// OffH/OffW locate the first tile origin (negative when padding
	// precedes the tensor).
	OffH, OffW int
	// HCount/WCount are the spatial tile counts.
	HCount, WCount int
	// FetchesPerTile is how many times each tile is re-read from DRAM
	// (temporal revisits under irrelevant outer loops).
	FetchesPerTile int64
}

// NumTiles returns the total tile count.
func (i IfmapTiling) NumTiles() int { return num.MulInt(num.MulInt(i.ChCount, i.HCount), i.WCount) }

// TileRowRange returns the clipped tensor row interval [lo, hi) of the
// spatial tile with row index ti.
func (i IfmapTiling) TileRowRange(ti int) (lo, hi int) {
	lo = i.OffH + num.MulInt(ti, i.HStep)
	hi = lo + i.HWin
	if lo < 0 {
		lo = 0
	}
	if hi > i.H {
		hi = i.H
	}
	return lo, hi
}

// TileColRange returns the clipped tensor column interval [lo, hi) of the
// spatial tile with column index tj.
func (i IfmapTiling) TileColRange(tj int) (lo, hi int) {
	lo = i.OffW + num.MulInt(tj, i.WStep)
	hi = lo + i.WWin
	if lo < 0 {
		lo = 0
	}
	if hi > i.W {
		hi = i.W
	}
	return lo, hi
}

// IfmapDRAMTiling extracts the consumer-side view of its ifmap tensor from
// a mapping.
func (m *Mapping) IfmapDRAMTiling(layer *workload.Layer) IfmapTiling {
	ch := DimC
	if layer.Depthwise {
		ch = DimM
	}
	chTile := min(m.TileDim(GLB, ch), Bound(layer, ch))
	pt := min(m.TileDim(GLB, DimP), layer.P)
	qt := min(m.TileDim(GLB, DimQ), layer.Q)
	loops := m.dramLoops(layer)
	v := visits(layer, workload.Ifmap, loops)
	n := distinctTiles(layer, workload.Ifmap, loops)
	f := int64(1)
	if n > 0 {
		f = v / n
		if f < 1 {
			f = 1
		}
	}
	return IfmapTiling{
		Ch: Bound(layer, ch), H: layer.InH(), W: layer.InW(),
		ChTile:         chTile,
		ChCount:        num.CeilDiv(Bound(layer, ch), chTile),
		HWin:           num.MulInt(pt-1, layer.StrideH) + layer.R,
		WWin:           num.MulInt(qt-1, layer.StrideW) + layer.S,
		HStep:          num.MulInt(pt, layer.StrideH),
		WStep:          num.MulInt(qt, layer.StrideW),
		OffH:           -layer.PadH,
		OffW:           -layer.PadW,
		HCount:         num.CeilDiv(layer.P, pt),
		WCount:         num.CeilDiv(layer.Q, qt),
		FetchesPerTile: f,
	}
}

// WeightTiling describes the weight tensor's DRAM tile organisation. Weight
// tiles never overlap and have no cross-layer consumer, so
// tile-as-an-AuthBlock is optimal up to hash granularity; the authblock
// package only needs the tile size and fetch count.
type WeightTiling struct {
	TileElems  int64
	NumTiles   int64
	FetchesPer int64
}

// WeightDRAMTiling extracts the weight tile organisation from a mapping.
func (m *Mapping) WeightDRAMTiling(layer *workload.Layer) WeightTiling {
	loops := m.dramLoops(layer)
	v := visits(layer, workload.Weight, loops)
	n := distinctTiles(layer, workload.Weight, loops)
	f := int64(1)
	if n > 0 {
		f = v / n
		if f < 1 {
			f = 1
		}
	}
	return WeightTiling{
		TileElems:  m.GLBTileElems(layer, workload.Weight),
		NumTiles:   n,
		FetchesPer: f,
	}
}
