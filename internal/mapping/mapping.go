package mapping

import (
	"fmt"
	"strings"

	"secureloop/internal/num"
	"secureloop/internal/workload"
)

// Level identifies a storage level of the modeled hierarchy, innermost
// first. SpatialX and SpatialY are not storage but the spatial spreading of
// loops across the PE array columns and rows.
type Level int

const (
	// RF is the per-PE register file (innermost temporal loops).
	RF Level = iota
	// SpatialX spreads loops across PE-array columns.
	SpatialX
	// SpatialY spreads loops across PE-array rows.
	SpatialY
	// GLB is the shared global buffer (middle temporal loops).
	GLB
	// DRAM is off-chip memory (outermost temporal loops).
	DRAM

	// NumLevels is the level count.
	NumLevels
)

var levelNames = [NumLevels]string{"RF", "SpatialX", "SpatialY", "GLB", "DRAM"}

// String returns the level name.
func (l Level) String() string {
	if l < 0 || l >= NumLevels {
		return "?"
	}
	return levelNames[l]
}

// Factors holds one tiling factor per dimension.
type Factors [NumDims]int

// Product multiplies all factors.
func (f Factors) Product() int64 {
	p := int64(1)
	for _, v := range f {
		p *= int64(v)
	}
	return p
}

// normalized returns the factors with zeros replaced by ones.
func (f Factors) normalized() Factors {
	for i, v := range f {
		if v <= 0 {
			f[i] = 1
		}
	}
	return f
}

// Mapping is a complete schedule of one layer: per-level tiling factors and
// the temporal loop permutations at the two levels whose ordering changes
// off-chip and on-chip reuse. Loop bounds that a level does not tile have
// factor 1. Factor products per dimension must cover the layer bound
// (imperfect factorizations round the outermost count up, modelling the
// padding a real mapper applies).
//
// The loopnest reads, outermost to innermost:
//
//	for (PermDRAM order, bounds Factor(DRAM, d))      — DRAM-resident loops
//	  for (PermGLB order, bounds Factor(GLB, d))      — GLB-resident loops
//	    par-for (bounds Factor(SpatialY/X, d))         — PE array
//	      for (canonical order, bounds Factor(RF, d)) — per-PE loops
//	        MAC
type Mapping struct {
	factors [NumLevels]Factors

	// PermDRAM orders the DRAM-level temporal loops, outermost first. Only
	// dimensions with factor > 1 matter; others may be omitted.
	PermDRAM []Dim
	// PermGLB orders the GLB-level temporal loops, outermost first.
	PermGLB []Dim
}

// New returns a mapping with all factors 1 and default permutations.
func New() *Mapping {
	m := &Mapping{}
	for l := Level(0); l < NumLevels; l++ {
		for d := range m.factors[l] {
			m.factors[l][d] = 1
		}
	}
	m.PermDRAM = append([]Dim(nil), Dims[:]...)
	m.PermGLB = append([]Dim(nil), Dims[:]...)
	return m
}

// Clone deep-copies the mapping.
func (m *Mapping) Clone() *Mapping {
	c := *m
	c.PermDRAM = append([]Dim(nil), m.PermDRAM...)
	c.PermGLB = append([]Dim(nil), m.PermGLB...)
	return &c
}

// Factor returns the tiling factor of dimension d at level l.
func (m *Mapping) Factor(l Level, d Dim) int {
	f := m.factors[l][d]
	if f <= 0 {
		return 1
	}
	return f
}

// SetFactor sets the tiling factor of dimension d at level l.
func (m *Mapping) SetFactor(l Level, d Dim, v int) {
	if v <= 0 {
		v = 1
	}
	m.factors[l][d] = v
}

// TileDim returns the number of iterations of dimension d covered by one
// tile at level l, i.e. the product of factors at l and below.
func (m *Mapping) TileDim(l Level, d Dim) int {
	t := 1
	for lv := Level(0); lv <= l; lv++ {
		t *= m.Factor(lv, d)
	}
	return t
}

// OuterCount returns how many tiles of dimension d the levels above l
// iterate over, using ceiling division against the layer bound (imperfect
// factorization support).
func (m *Mapping) OuterCount(layer *workload.Layer, l Level, d Dim) int {
	t := m.TileDim(l, d)
	b := Bound(layer, d)
	if t >= b {
		return 1
	}
	return num.CeilDiv(b, t)
}

// PaddedBound returns the effective (possibly padded) loop bound of
// dimension d: the factor product across all levels, at least the layer
// bound.
func (m *Mapping) PaddedBound(layer *workload.Layer, d Dim) int {
	p := 1
	for l := Level(0); l < NumLevels; l++ {
		p *= m.Factor(l, d)
	}
	if b := Bound(layer, d); p < b {
		return b
	}
	return p
}

// SpatialPEs returns the number of PE columns and rows the mapping uses.
func (m *Mapping) SpatialPEs() (x, y int) {
	x, y = 1, 1
	for d := Dim(0); d < NumDims; d++ {
		x *= m.Factor(SpatialX, d)
		y *= m.Factor(SpatialY, d)
	}
	return x, y
}

// ActivePEs returns the number of PEs doing useful work.
func (m *Mapping) ActivePEs() int {
	x, y := m.SpatialPEs()
	return num.MulInt(x, y)
}

// TemporalIterations returns the number of sequential MAC steps: the product
// of all temporal factors (RF, GLB, DRAM) over all dimensions, using padded
// bounds so partial tiles cost full iterations. All products run through the
// checked int64 helpers: factor products across dimensions can exceed the
// 32-bit int range long before the model itself is out of domain.
func (m *Mapping) TemporalIterations(layer *workload.Layer) int64 {
	iters := int64(1)
	for d := Dim(0); d < NumDims; d++ {
		perStep := num.MulInt64(int64(m.Factor(RF, d)), int64(m.Factor(GLB, d)))
		spatial := num.MulInt64(int64(m.Factor(SpatialX, d)), int64(m.Factor(SpatialY, d)))
		// DRAM-level count via ceiling so padded bounds are honoured.
		tile := num.MulInt64(perStep, spatial)
		b := int64(Bound(layer, d))
		outer := int64(1)
		if tile < b {
			outer = num.CeilDiv64(b, tile)
		}
		iters = num.MulInt64(iters, num.MulInt64(perStep, outer))
	}
	return iters
}

// tileElems returns the element count of datatype dt's tile at level l,
// accounting for the ifmap sliding window (halo) along P/Q.
func (m *Mapping) tileElems(layer *workload.Layer, l Level, dt workload.Datatype) int64 {
	elems := int64(1)
	switch dt {
	case workload.Weight:
		for _, d := range []Dim{DimM, DimC, DimR, DimS} {
			if Relevant(layer, dt, d) {
				elems = num.MulInt64(elems, int64(min(m.TileDim(l, d), Bound(layer, d))))
			}
		}
	case workload.Ofmap:
		for _, d := range []Dim{DimM, DimP, DimQ} {
			elems = num.MulInt64(elems, int64(min(m.TileDim(l, d), Bound(layer, d))))
		}
	case workload.Ifmap:
		// Channels: C for dense, M for depthwise.
		ch := DimC
		if layer.Depthwise {
			ch = DimM
		}
		elems = num.MulInt64(elems, int64(min(m.TileDim(l, ch), Bound(layer, ch))))
		// Sliding window: covering Pt outputs with Rt filter rows needs
		// (Pt-1)*stride + Rt input rows. The halo products are widened to
		// int64 before multiplying so large tiles never overflow 32-bit int.
		pt := min(m.TileDim(l, DimP), layer.P)
		rt := min(m.TileDim(l, DimR), layer.R)
		qt := min(m.TileDim(l, DimQ), layer.Q)
		st := min(m.TileDim(l, DimS), layer.S)
		h := num.MulInt64(int64(pt-1), int64(layer.StrideH)) + int64(rt)
		w := num.MulInt64(int64(qt-1), int64(layer.StrideW)) + int64(st)
		elems = num.MulInt64(elems, num.MulInt64(h, w))
	}
	return elems
}

// GLBTileElems returns the element count of datatype dt's GLB-resident tile.
func (m *Mapping) GLBTileElems(layer *workload.Layer, dt workload.Datatype) int64 {
	return m.tileElems(layer, GLB, dt)
}

// RFTileElems returns the element count of datatype dt's per-PE tile.
func (m *Mapping) RFTileElems(layer *workload.Layer, dt workload.Datatype) int64 {
	return m.tileElems(layer, RF, dt)
}

// GLBBitsUsed returns the GLB occupancy in bits with double buffering (two
// live tiles per datatype, the pipelining assumption of Section 4.1).
func (m *Mapping) GLBBitsUsed(layer *workload.Layer) int64 {
	var bits int64
	for _, dt := range workload.Datatypes {
		bits += 2 * m.GLBTileElems(layer, dt) * int64(layer.WordBits)
	}
	return bits
}

// RFBitsUsed returns the per-PE register-file occupancy in bits.
func (m *Mapping) RFBitsUsed(layer *workload.Layer) int64 {
	var bits int64
	for _, dt := range workload.Datatypes {
		bits += m.RFTileElems(layer, dt) * int64(layer.WordBits)
	}
	return bits
}

// Validate checks structural invariants of the mapping against a layer and
// the PE-array shape: spatial factors must fit the array, every factor must
// be positive, permutations must be permutations of the dims, and R/S must
// not be tiled at the DRAM level (filters stay on-chip once fetched; this
// keeps the ifmap halo geometry well-defined, see DESIGN.md).
func (m *Mapping) Validate(layer *workload.Layer, pesX, pesY int) error {
	x, y := m.SpatialPEs()
	if x > pesX || y > pesY {
		return fmt.Errorf("mapping: spatial %dx%d exceeds PE array %dx%d", x, y, pesX, pesY)
	}
	for l := Level(0); l < NumLevels; l++ {
		for d := Dim(0); d < NumDims; d++ {
			if m.factors[l][d] < 0 {
				return fmt.Errorf("mapping: negative factor at %v/%v", l, d)
			}
		}
	}
	for _, d := range []Dim{DimR, DimS} {
		if m.OuterCount(layer, GLB, d) > 1 {
			return fmt.Errorf("mapping: dimension %v tiled at DRAM level", d)
		}
	}
	if err := checkPerm(m.PermDRAM); err != nil {
		return fmt.Errorf("mapping: PermDRAM: %w", err)
	}
	if err := checkPerm(m.PermGLB); err != nil {
		return fmt.Errorf("mapping: PermGLB: %w", err)
	}
	for d := Dim(0); d < NumDims; d++ {
		if m.PaddedBound(layer, d) < Bound(layer, d) {
			return fmt.Errorf("mapping: dimension %v under-covered (%d < %d)",
				d, m.PaddedBound(layer, d), Bound(layer, d))
		}
	}
	return nil
}

func checkPerm(p []Dim) error {
	var seen [NumDims]bool
	for _, d := range p {
		if d < 0 || d >= NumDims {
			return fmt.Errorf("dimension %d out of range", int(d))
		}
		if seen[d] {
			return fmt.Errorf("dimension %v repeated", d)
		}
		seen[d] = true
	}
	return nil
}

// String renders the loopnest compactly, e.g.
// "DRAM[M:4 P:2 | M P C Q R S] GLB[C:8 | ...] spX[Q:13] spY[M:12] RF[C:4]".
func (m *Mapping) String() string {
	var b strings.Builder
	writeLevel := func(name string, l Level, perm []Dim) {
		b.WriteString(name)
		b.WriteByte('[')
		first := true
		for _, d := range Dims {
			if f := m.Factor(l, d); f > 1 {
				if !first {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%v:%d", d, f)
				first = false
			}
		}
		if perm != nil {
			b.WriteString(" |")
			for _, d := range perm {
				if m.Factor(l, d) > 1 {
					fmt.Fprintf(&b, " %v", d)
				}
			}
		}
		b.WriteString("] ")
	}
	writeLevel("DRAM", DRAM, m.PermDRAM)
	writeLevel("GLB", GLB, m.PermGLB)
	writeLevel("spX", SpatialX, nil)
	writeLevel("spY", SpatialY, nil)
	writeLevel("RF", RF, nil)
	return strings.TrimSpace(b.String())
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
