// Package report renders scheduling results as human-readable tables and
// CSV, mirroring the per-design stats files the original artifact emits.
package report

import (
	"fmt"
	"io"
	"strings"

	"secureloop/internal/core"
)

// Summary writes the network-level result: totals, bottleneck breakdown and
// authentication traffic.
func Summary(w io.Writer, res *core.NetworkResult, clockHz float64) {
	t := res.Total
	fmt.Fprintf(w, "workload:   %s\n", res.Network.Name)
	fmt.Fprintf(w, "algorithm:  %s\n", res.Algorithm)
	fmt.Fprintf(w, "layers:     %d (%d segments)\n", res.Network.NumLayers(), len(res.Network.Segments))
	fmt.Fprintf(w, "latency:    %d cycles (%.3f ms @ %.0f MHz)\n",
		t.Cycles, float64(t.Cycles)/clockHz*1e3, clockHz/1e6)
	fmt.Fprintf(w, "  compute:  %d cycles\n", t.ComputeCycles)
	fmt.Fprintf(w, "  dram:     %d cycles\n", t.DRAMCycles)
	if t.CryptoCycles > 0 {
		fmt.Fprintf(w, "  crypto:   %d cycles\n", t.CryptoCycles)
	}
	fmt.Fprintf(w, "energy:     %.3f uJ (dram %.3f, crypto %.3f, on-chip %.3f)\n",
		t.EnergyPJ/1e6, t.DRAMEnergyPJ/1e6, t.CryptoEnergyPJ/1e6, t.OnChipEnergyPJ/1e6)
	fmt.Fprintf(w, "EDP:        %.4g pJ*cycles\n", t.EDP())
	fmt.Fprintf(w, "off-chip:   %.4g Mbit (%.4g Mbit data)\n",
		float64(t.OffchipBits)/1e6, float64(t.BaseOffchipBits)/1e6)
	if res.Algorithm != core.Unsecure {
		tr := res.Traffic
		fmt.Fprintf(w, "auth traffic: %.4g Mbit (hash %.4g, redundant %.4g, rehash %.4g)\n",
			float64(tr.Total())/1e6, float64(tr.HashBits)/1e6,
			float64(tr.RedundantBits)/1e6, float64(tr.RehashBits)/1e6)
	}
}

// layerColumns builds the per-layer table cells.
func layerColumns(res *core.NetworkResult) (header []string, rows [][]string) {
	header = []string{"layer", "cycles", "compute", "dram", "crypto",
		"util", "offchip_bits", "auth_bits", "authblock", "mapping"}
	for _, lr := range res.Layers {
		l := res.Network.Layer(lr.Index)
		assign := "-"
		if lr.OfmapAssignment.U > 0 {
			assign = fmt.Sprintf("%s/u=%d", lr.OfmapAssignment.Orientation, lr.OfmapAssignment.U)
		}
		rows = append(rows, []string{
			l.Name,
			fmt.Sprintf("%d", lr.Stats.Cycles),
			fmt.Sprintf("%d", lr.Stats.ComputeCycles),
			fmt.Sprintf("%d", lr.Stats.DRAMCycles),
			fmt.Sprintf("%d", lr.Stats.CryptoCycles),
			fmt.Sprintf("%.2f", lr.Stats.Utilization),
			fmt.Sprintf("%d", lr.Stats.OffchipBits),
			fmt.Sprintf("%d", lr.Overhead.Total()),
			assign,
			lr.Mapping.String(),
		})
	}
	return header, rows
}

// Layers writes a per-layer aligned table.
func Layers(w io.Writer, res *core.NetworkResult) {
	header, rows := layerColumns(res)
	// Skip the verbose mapping column in the aligned view.
	header = header[:len(header)-1]
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i := range header {
			if len(r[i]) > widths[i] {
				widths[i] = len(r[i])
			}
		}
	}
	line := func(cells []string) {
		for i := range header {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], cells[i])
		}
		fmt.Fprintln(w)
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
}

// CSV writes the per-layer results as comma-separated values including the
// full loopnest description.
func CSV(w io.Writer, res *core.NetworkResult) {
	header, rows := layerColumns(res)
	fmt.Fprintln(w, strings.Join(header, ","))
	for _, r := range rows {
		// The mapping string contains spaces but no commas; quote it anyway.
		r[len(r)-1] = `"` + r[len(r)-1] + `"`
		fmt.Fprintln(w, strings.Join(r, ","))
	}
}
