package report

import (
	"strings"
	"testing"

	"secureloop/internal/arch"
	"secureloop/internal/core"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/workload"
)

func schedule(t *testing.T, alg core.Algorithm) (*core.NetworkResult, float64) {
	t.Helper()
	spec := arch.Base()
	s := core.New(spec, cryptoengine.Config{Engine: cryptoengine.Parallel(), CountPerDatatype: 1})
	s.Anneal.Iterations = 30
	res, err := s.ScheduleNetwork(workload.AlexNet(), alg)
	if err != nil {
		t.Fatal(err)
	}
	return res, spec.ClockHz
}

func TestSummaryContents(t *testing.T) {
	res, clock := schedule(t, core.CryptOptSingle)
	var b strings.Builder
	Summary(&b, res, clock)
	out := b.String()
	for _, frag := range []string{"AlexNet", "Crypt-Opt-Single", "latency:", "energy:", "auth traffic:", "EDP:"} {
		if !strings.Contains(out, frag) {
			t.Errorf("summary missing %q:\n%s", frag, out)
		}
	}
}

func TestSummaryUnsecureOmitsAuth(t *testing.T) {
	res, clock := schedule(t, core.Unsecure)
	var b strings.Builder
	Summary(&b, res, clock)
	if strings.Contains(b.String(), "auth traffic") {
		t.Error("unsecure summary mentions auth traffic")
	}
}

func TestLayersTable(t *testing.T) {
	res, _ := schedule(t, core.CryptOptSingle)
	var b strings.Builder
	Layers(&b, res)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 1+res.Network.NumLayers() {
		t.Fatalf("%d lines, want header + %d layers", len(lines), res.Network.NumLayers())
	}
	if !strings.Contains(lines[1], "conv1") {
		t.Error("first row should be conv1")
	}
}

func TestCSVShape(t *testing.T) {
	res, _ := schedule(t, core.CryptOptSingle)
	var b strings.Builder
	CSV(&b, res)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 1+res.Network.NumLayers() {
		t.Fatalf("%d CSV lines", len(lines))
	}
	cols := len(strings.Split(lines[0], ","))
	for i, line := range lines[1:] {
		if got := len(strings.Split(line, ",")); got != cols {
			t.Errorf("row %d has %d columns, want %d", i, got, cols)
		}
	}
	if !strings.Contains(lines[1], `"`) {
		t.Error("mapping column not quoted")
	}
}
