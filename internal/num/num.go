// Package num holds tiny shared integer helpers used across the model,
// mapper and authblock packages. Centralising them fixes a historical
// inconsistency: the repo once carried four private ceilDiv copies, one of
// which returned the dividend for a non-positive divisor while the others
// returned 0.
package num

// CeilDiv returns ceil(a/b) for positive b and 0 for b <= 0 (a degenerate
// divisor means "no tiles", never "all of a").
func CeilDiv(a, b int) int {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// CeilDiv64 is CeilDiv for int64.
func CeilDiv64(a, b int64) int64 {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
