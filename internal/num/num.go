// Package num holds tiny shared integer helpers used across the model,
// mapper and authblock packages. Centralising them fixes a historical
// inconsistency: the repo once carried four private ceilDiv copies, one of
// which returned the dividend for a non-positive divisor while the others
// returned 0.
package num

import "math/bits"

// CeilDiv returns ceil(a/b) for positive b and 0 for b <= 0 (a degenerate
// divisor means "no tiles", never "all of a").
func CeilDiv(a, b int) int {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// CeilDiv64 is CeilDiv for int64.
func CeilDiv64(a, b int64) int64 {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// MulInt64 returns a*b, panicking if the product does not fit in int64 or if
// either operand is negative.
//
// Policy: panic, never saturate. Every caller multiplies counts — tile
// volumes, trip counts, traffic bits — whose values the analytical AuthBlock
// and traffic model requires to be exact; a saturated product would silently
// corrupt the counting the paper's "analytical instead of simulation" claim
// rests on, while a panic turns an impossible model state (or a workload far
// beyond the model's domain) into a loud failure at the offending site.
// Restricting operands to non-negative values keeps the overflow check to a
// single widening multiply (bits.Mul64) plus one compare, cheap enough for
// the mapper's inner loop.
func MulInt64(a, b int64) int64 {
	if a < 0 || b < 0 {
		panic("num: MulInt64 operands must be non-negative")
	}
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	if hi != 0 || lo > 1<<63-1 {
		panic("num: MulInt64 overflows int64")
	}
	return int64(lo)
}

// MulInt is MulInt64 for values that must stay in the int domain (tile
// extents, coordinates, element counts used as loop bounds or allocation
// sizes). The product is computed in int64 and must round-trip through int,
// so coordinate arithmetic that silently wraps on a 32-bit int panics
// instead. Same policy as MulInt64: panic, never saturate.
func MulInt(a, b int) int {
	v := MulInt64(int64(a), int64(b))
	if int64(int(v)) != v {
		panic("num: MulInt overflows int")
	}
	return int(v)
}
