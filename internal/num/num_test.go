package num

import (
	"math"
	"testing"
)

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 1, 0},
		{1, 1, 1},
		{5, 2, 3},
		{6, 2, 3},
		{7, 2, 4},
		{27, 14, 2},
		{1, 1000, 1},
		// Degenerate divisors: every caller treats b <= 0 as "no tiles".
		{5, 0, 0},
		{5, -3, 0},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := CeilDiv64(int64(c.a), int64(c.b)); got != int64(c.want) {
			t.Errorf("CeilDiv64(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMulInt64(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0},
		{0, math.MaxInt64, 0},
		{1, math.MaxInt64, math.MaxInt64},
		{math.MaxInt64, 1, math.MaxInt64},
		{3, 7, 21},
		{1 << 31, 1 << 31, 1 << 62},
		// Largest factor pairs that still fit.
		{math.MaxInt64 / 2, 2, math.MaxInt64 - 1},
		{3037000499, 3037000499, 3037000499 * 3037000499}, // floor(sqrt(MaxInt64))^2
	}
	for _, c := range cases {
		if got := MulInt64(c.a, c.b); got != c.want {
			t.Errorf("MulInt64(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMulInt(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{3, 7, 21},
		{1, math.MaxInt, math.MaxInt},
		{math.MaxInt / 2, 2, math.MaxInt - 1},
	}
	for _, c := range cases {
		if got := MulInt(c.a, c.b); got != c.want {
			t.Errorf("MulInt(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	mustPanic := func(name string, a, b int) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: MulInt(%d, %d) did not panic", name, a, b)
			}
		}()
		MulInt(a, b)
	}
	mustPanic("overflow", math.MaxInt, 2)
	mustPanic("negative a", -1, 3)
}

func TestMulInt64Panics(t *testing.T) {
	mustPanic := func(name string, a, b int64) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: MulInt64(%d, %d) did not panic", name, a, b)
			}
		}()
		MulInt64(a, b)
	}
	mustPanic("overflow", math.MaxInt64, 2)
	mustPanic("overflow by one bit", 1<<32, 1<<31)
	mustPanic("just past MaxInt64", math.MaxInt64/2+1, 2)
	mustPanic("negative a", -1, 3)
	mustPanic("negative b", 3, -1)
}
