package num

import "testing"

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 1, 0},
		{1, 1, 1},
		{5, 2, 3},
		{6, 2, 3},
		{7, 2, 4},
		{27, 14, 2},
		{1, 1000, 1},
		// Degenerate divisors: every caller treats b <= 0 as "no tiles".
		{5, 0, 0},
		{5, -3, 0},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := CeilDiv64(int64(c.a), int64(c.b)); got != int64(c.want) {
			t.Errorf("CeilDiv64(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
