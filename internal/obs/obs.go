// Package obs is the observability seam of the search pipeline: a small
// Observer interface the scheduler, DSE sweep and annealer emit progress
// events through, plus the panic-recovery helpers that keep invariant
// panics (num.MulInt overflow guards and the like) from escaping a stage
// boundary as anything but an error.
//
// Event payloads are deliberately wall-clock-free — counts and indices
// only — so emitting them never perturbs determinism and observers can be
// exercised in tests without time-dependent output.
package obs

import (
	"fmt"
	"io"
	"runtime/debug"
	"sync"

	"secureloop/internal/prof"
)

// Stage names one phase of the scheduling pipeline. The constants double as
// the stage context wrapped around ctx.Err() on cancellation, so an
// interrupted run reports exactly how far it got.
type Stage string

const (
	// StageMapping is step 1: crypto-aware per-layer loopnest scheduling.
	StageMapping Stage = "step 1 loopnest scheduling"
	// StageAuthBlock is step 2: batched AuthBlock pair-matrix assignment.
	StageAuthBlock Stage = "step 2 authblock assignment"
	// StageAnneal is step 3: cross-layer fine tuning.
	StageAnneal Stage = "step 3 cross-layer annealing"
	// StageAssemble is the final per-layer result assembly.
	StageAssemble Stage = "result assembly"
	// StageSweep is a DSE design-space sweep over (spec, crypto) points.
	StageSweep Stage = "design-space sweep"
)

// StageEvent marks a stage starting or ending. Units is the number of work
// items the stage will process (layers, design points, segments). The JSON
// tags here (and on the other event payloads) fix the wire names of the
// serialized progress stream (Event in event.go); renaming a tag is a wire
// format change for every cmd/secured client.
type StageEvent struct {
	Stage Stage `json:"stage"`
	Units int   `json:"units"`
}

// LayerEvent reports one completed work item within a stage: layer Index
// (or design-point index for sweeps), its Name, and the Done/Total progress
// counters. Done is a completion count, not an ordering guarantee — items
// finish in pool order.
type LayerEvent struct {
	Stage Stage  `json:"stage"`
	Index int    `json:"index"`
	Name  string `json:"name"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

// AnnealEvent reports annealing progress for one segment. Tag identifies
// the segment (its first layer index); Iteration counts from 0 to
// Iterations; Best is the lowest cost observed so far.
type AnnealEvent struct {
	Tag        int     `json:"tag"`
	Iteration  int     `json:"iteration"`
	Iterations int     `json:"iterations"`
	Accepted   int     `json:"accepted"`
	Best       float64 `json:"best"`
}

// MapperSearchEvent accounts for one guided mapper search: how many tilings
// were fully scored versus disposed of cheaply. Evaluated counts tilings
// scored through the full permutation fold (warm-start seeds included);
// Pruned counts capacity-feasible tilings whose analytical lower bound
// exceeded the pruning threshold, so they were never scored; Skipped counts
// tilings inside spatial choices discarded wholesale by their part-level
// bound. WarmSeeds is how many warm-start seeds were applied.
type MapperSearchEvent struct {
	Layer     string `json:"layer"`
	Evaluated int64  `json:"evaluated"`
	Pruned    int64  `json:"pruned"`
	Skipped   int64  `json:"skipped"`
	WarmSeeds int    `json:"warm_seeds"`
}

// SweepOutcome names how a sweep disposed of one design point without a
// fresh full evaluation.
type SweepOutcome string

const (
	// SweepPruned: the point's bound was strictly dominated by an evaluated
	// point, so it was skipped for good.
	SweepPruned SweepOutcome = "pruned"
	// SweepDeferred: the bound tied the front (or fell within the slack
	// band); the point is resolved later in the exact pass.
	SweepDeferred SweepOutcome = "deferred"
	// SweepStoreHit: the persistent store's network tier answered the
	// evaluation, so the point cost a replay, not a search.
	SweepStoreHit SweepOutcome = "store-hit"
)

// SweepPointEvent reports a design point a sweep disposed of without a
// fresh full evaluation — pruned, deferred, or replayed from the store.
// Together with LayerScheduled events for fully evaluated points, Done
// advances monotonically to Total (deferred points report the current Done
// unchanged and advance it when the exact pass resolves them).
type SweepPointEvent struct {
	Index   int          `json:"index"`
	Label   string       `json:"label"`
	Outcome SweepOutcome `json:"outcome"`
	Done    int          `json:"done"`
	Total   int          `json:"total"`
}

// Observer receives progress events from the search pipeline. Methods may
// be called concurrently from worker goroutines; implementations must be
// safe for concurrent use. Implementations must not mutate shared search
// state — the pipeline treats them as pure sinks.
type Observer interface {
	StageStart(e StageEvent)
	StageEnd(e StageEvent)
	LayerScheduled(e LayerEvent)
	AnnealProgress(e AnnealEvent)
	MapperSearch(e MapperSearchEvent)
	SweepPoint(e SweepPointEvent)
}

// Nop is the no-op Observer; the zero value is ready to use.
type Nop struct{}

func (Nop) StageStart(StageEvent)          {}
func (Nop) StageEnd(StageEvent)            {}
func (Nop) LayerScheduled(LayerEvent)      {}
func (Nop) AnnealProgress(AnnealEvent)     {}
func (Nop) MapperSearch(MapperSearchEvent) {}
func (Nop) SweepPoint(SweepPointEvent)     {}

// OrNop returns o, or the no-op observer when o is nil, so pipeline code
// never branches on nil.
func OrNop(o Observer) Observer {
	if o == nil {
		return Nop{}
	}
	return o
}

// PanicError converts a recovered panic value into an error carrying the
// panic message and stack.
func PanicError(r any) error {
	return fmt.Errorf("panic: %v\n%s", r, debug.Stack())
}

// CapturePanic is a deferred stage-boundary guard: it converts an in-flight
// panic into an error stored at *errp (unless an error is already set).
// Invariant panics deep in the cost model (num.MulInt overflow and the
// AuthBlock coverage checks) fail the one request that tripped them instead
// of the process.
func CapturePanic(errp *error) {
	if r := recover(); r != nil && *errp == nil {
		*errp = PanicError(r)
	}
}

// Guard runs fn, converting a panic into a returned error. Worker-pool
// goroutine bodies are wrapped in Guard so a panicking worker surfaces as a
// stage error rather than killing the process.
func Guard(fn func() error) (err error) {
	defer CapturePanic(&err)
	return fn()
}

// Options bundles the run-scoped instrumentation hooks the cmd binaries
// expose: a progress Observer and the internal/prof profile paths.
type Options struct {
	// Observer receives progress events; nil means none.
	Observer Observer
	// CPUProfile and MemProfile are prof.Start paths (empty to skip).
	CPUProfile, MemProfile string
}

// Start begins the configured profiles and returns the stop function
// (always non-nil). It delegates to prof.Start.
func (o Options) Start() (stop func(), err error) {
	return prof.Start(o.CPUProfile, o.MemProfile)
}

// Logger is an Observer that renders events as plain text lines, one per
// event (annealing progress is thinned to quartile steps per segment). It
// serialises concurrent emitters with a mutex, so output lines never
// interleave. Suitable for the cmd binaries' -progress flag.
type Logger struct {
	mu      sync.Mutex
	w       io.Writer
	annealQ map[int]int // per-segment-tag last reported quartile
}

// NewLogger returns a Logger writing to w.
func NewLogger(w io.Writer) *Logger {
	return &Logger{w: w, annealQ: make(map[int]int)}
}

func (l *Logger) StageStart(e StageEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, "[%s] start: %d unit(s)\n", e.Stage, e.Units)
}

func (l *Logger) StageEnd(e StageEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, "[%s] done\n", e.Stage)
}

func (l *Logger) LayerScheduled(e LayerEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, "[%s] %d/%d %s\n", e.Stage, e.Done, e.Total, e.Name)
}

func (l *Logger) SweepPoint(e SweepPointEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, "[%s] %d/%d %s (%s)\n", StageSweep, e.Done, e.Total, e.Label, e.Outcome)
}

func (l *Logger) MapperSearch(e MapperSearchEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, "[%s] %s guided: evaluated=%d pruned=%d skipped=%d warm-seeds=%d\n",
		StageMapping, e.Layer, e.Evaluated, e.Pruned, e.Skipped, e.WarmSeeds)
}

func (l *Logger) AnnealProgress(e AnnealEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e.Iterations <= 0 {
		return
	}
	q := 4 * e.Iteration / e.Iterations
	if last, seen := l.annealQ[e.Tag]; seen && q <= last {
		return
	}
	l.annealQ[e.Tag] = q
	fmt.Fprintf(l.w, "[%s] segment@%d %d/%d accepted=%d best=%g\n",
		StageAnneal, e.Tag, e.Iteration, e.Iterations, e.Accepted, e.Best)
}
