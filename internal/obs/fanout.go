package obs

import (
	"sync"
	"sync/atomic"
)

// Fanout is an Observer that multiplexes one pipeline's progress events to
// any number of concurrent subscribers — the seam that lets a single
// scheduling run stream progress to several SSE clients (coalesced
// requests share one flight, so they share one Fanout) without the
// scheduler ever knowing how many are listening.
//
// Delivery contract:
//
//   - Ordered: events carry a per-fanout sequence number assigned under one
//     lock, and every subscriber observes its events in strictly increasing
//     Seq order.
//   - Non-blocking (the drop policy): a subscriber is a bounded buffer; when
//     it is full the event is dropped for that subscriber only — newest
//     dropped, never the emitter blocked — and the subscriber's Dropped
//     counter advances. A stalled SSE client therefore costs its own stream
//     gaps (detectable as Seq jumps), never scheduler throughput.
//   - Late subscribers see only events emitted after Subscribe; coalesced
//     followers attaching mid-flight start mid-stream by design.
//
// The zero value is not ready to use; call NewFanout.
type Fanout struct {
	mu   sync.Mutex
	seq  uint64          // guarded by mu
	subs []*Subscription // guarded by mu
}

// NewFanout returns an empty fanout; it is a valid (event-discarding)
// Observer even before the first Subscribe.
func NewFanout() *Fanout {
	return &Fanout{}
}

// Subscription is one subscriber's bounded, ordered view of a fanout's
// event stream.
type Subscription struct {
	f       *Fanout
	ch      chan Event
	dropped atomic.Int64
	closed  bool // guarded by f.mu
}

// Subscribe registers a new subscriber with the given buffer capacity
// (minimum 1). Events emitted while the buffer is full are dropped for this
// subscriber and counted.
func (f *Fanout) Subscribe(buffer int) *Subscription {
	if buffer < 1 {
		buffer = 1
	}
	s := &Subscription{f: f, ch: make(chan Event, buffer)}
	f.mu.Lock()
	f.subs = append(f.subs, s)
	f.mu.Unlock()
	return s
}

// Events is the subscriber's ordered event channel. It is closed by
// Unsubscribe and by the fanout's Close.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Dropped reports how many events the drop policy discarded for this
// subscriber so far.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Unsubscribe detaches the subscriber and closes its channel. Safe to call
// more than once; pending buffered events remain readable until the channel
// drains. The close happens under f.mu — the same lock emit sends under —
// so no send can race the close.
func (s *Subscription) Unsubscribe() {
	s.f.mu.Lock()
	defer s.f.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for i, sub := range s.f.subs {
		if sub == s {
			s.f.subs = append(s.f.subs[:i], s.f.subs[i+1:]...)
			break
		}
	}
	close(s.ch)
}

// Close closes every remaining subscription; emitting after Close silently
// discards (the run outliving its last listener is not an error).
func (f *Fanout) Close() {
	f.mu.Lock()
	subs := f.subs
	f.subs = nil
	f.mu.Unlock()
	for _, s := range subs {
		s.Unsubscribe()
	}
}

// Seq reports how many events have been emitted so far (the last assigned
// sequence number).
func (f *Fanout) Seq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// emit assigns the next sequence number and offers the event to every
// subscriber. The single lock both orders sequence numbers and serialises
// sends, so per-subscriber ordering matches Seq order; the non-blocking
// send is the drop policy.
func (f *Fanout) emit(ev Event) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	ev.Seq = f.seq
	for _, s := range f.subs {
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
		}
	}
}

func (f *Fanout) StageStart(e StageEvent) {
	f.emit(Event{Kind: EventStageStart, Stage: &e})
}

func (f *Fanout) StageEnd(e StageEvent) {
	f.emit(Event{Kind: EventStageEnd, Stage: &e})
}

func (f *Fanout) LayerScheduled(e LayerEvent) {
	f.emit(Event{Kind: EventLayer, Layer: &e})
}

func (f *Fanout) AnnealProgress(e AnnealEvent) {
	f.emit(Event{Kind: EventAnneal, Anneal: &e})
}

func (f *Fanout) MapperSearch(e MapperSearchEvent) {
	f.emit(Event{Kind: EventMapperSearch, Mapper: &e})
}

func (f *Fanout) SweepPoint(e SweepPointEvent) {
	f.emit(Event{Kind: EventSweepPoint, Sweep: &e})
}
