package obs

// The serialized event stream: every Observer callback has an Event
// envelope carrying a sequence number and exactly one payload, so progress
// can cross a process boundary (the cmd/secured SSE stream) as one ordered,
// self-describing JSON stream instead of six parallel callback channels.
//
// Sequence numbers are assigned by the Fanout observer (fanout.go) at emit
// time, strictly increasing per fanout, so a consumer can both order events
// and detect gaps left by its own drop policy.

// EventKind names the payload an Event carries.
type EventKind string

const (
	// EventStageStart / EventStageEnd wrap StageEvent.
	EventStageStart EventKind = "stage_start"
	EventStageEnd   EventKind = "stage_end"
	// EventLayer wraps LayerEvent (one completed work item).
	EventLayer EventKind = "layer"
	// EventAnneal wraps AnnealEvent.
	EventAnneal EventKind = "anneal"
	// EventMapperSearch wraps MapperSearchEvent.
	EventMapperSearch EventKind = "mapper_search"
	// EventSweepPoint wraps SweepPointEvent.
	EventSweepPoint EventKind = "sweep_point"
)

// Event is the serialized envelope of one Observer callback: Seq orders it,
// Kind names the payload, and exactly one of the payload pointers is set
// (the others marshal away under omitempty). Payloads are wall-clock-free
// by the Observer contract, so a serialized stream is as deterministic as
// the run that emitted it.
type Event struct {
	Seq    uint64             `json:"seq"`
	Kind   EventKind          `json:"kind"`
	Stage  *StageEvent        `json:"stage_event,omitempty"`
	Layer  *LayerEvent        `json:"layer_event,omitempty"`
	Anneal *AnnealEvent       `json:"anneal_event,omitempty"`
	Mapper *MapperSearchEvent `json:"mapper_event,omitempty"`
	Sweep  *SweepPointEvent   `json:"sweep_event,omitempty"`
}

// Multi returns an Observer that forwards every event to each of obs in
// order. Nil entries are skipped; with no non-nil entries it is Nop.
func Multi(observers ...Observer) Observer {
	var live []Observer
	for _, o := range observers {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return Nop{}
	case 1:
		return live[0]
	}
	return multi(live)
}

type multi []Observer

func (m multi) StageStart(e StageEvent) {
	for _, o := range m {
		o.StageStart(e)
	}
}

func (m multi) StageEnd(e StageEvent) {
	for _, o := range m {
		o.StageEnd(e)
	}
}

func (m multi) LayerScheduled(e LayerEvent) {
	for _, o := range m {
		o.LayerScheduled(e)
	}
}

func (m multi) AnnealProgress(e AnnealEvent) {
	for _, o := range m {
		o.AnnealProgress(e)
	}
}

func (m multi) MapperSearch(e MapperSearchEvent) {
	for _, o := range m {
		o.MapperSearch(e)
	}
}

func (m multi) SweepPoint(e SweepPointEvent) {
	for _, o := range m {
		o.SweepPoint(e)
	}
}
