package obs

import (
	"errors"
	"strings"
	"testing"
)

// TestGuardRecoversPanic: a panicking worker body becomes an error, not a
// process kill.
func TestGuardRecoversPanic(t *testing.T) {
	err := Guard(func() error { panic("num: MulInt overflow") })
	if err == nil || !strings.Contains(err.Error(), "MulInt overflow") {
		t.Fatalf("Guard did not surface the panic: %v", err)
	}
}

// TestGuardPassesError: Guard must not mask a returned error.
func TestGuardPassesError(t *testing.T) {
	want := errors.New("boom")
	if err := Guard(func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("Guard error = %v, want %v", err, want)
	}
}

// TestCapturePanicKeepsExistingError: a panic during unwinding must not
// overwrite an error already decided.
func TestCapturePanicKeepsExistingError(t *testing.T) {
	want := errors.New("first")
	err := func() (err error) {
		defer CapturePanic(&err)
		err = want
		panic("second")
	}()
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want the pre-panic error", err)
	}
}

// TestOrNop: nil becomes the no-op observer; non-nil passes through.
func TestOrNop(t *testing.T) {
	if _, ok := OrNop(nil).(Nop); !ok {
		t.Fatal("OrNop(nil) is not Nop")
	}
	l := NewLogger(&strings.Builder{})
	if OrNop(l) != Observer(l) {
		t.Fatal("OrNop did not pass through a non-nil observer")
	}
}

// TestLoggerRendersEvents: the -progress renderer emits one line per event
// and thins annealing progress to quartiles.
func TestLoggerRendersEvents(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb)
	l.StageStart(StageEvent{Stage: StageMapping, Units: 3})
	l.LayerScheduled(LayerEvent{Stage: StageMapping, Index: 0, Name: "conv1", Done: 1, Total: 3})
	for it := 0; it < 1000; it += 64 {
		l.AnnealProgress(AnnealEvent{Tag: 7, Iteration: it, Iterations: 1000, Best: 42})
	}
	l.StageEnd(StageEvent{Stage: StageMapping})
	out := sb.String()
	for _, want := range []string{"step 1 loopnest scheduling] start: 3", "1/3 conv1", "segment@7", "done"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "segment@7"); n > 4 {
		t.Errorf("anneal progress not thinned: %d lines", n)
	}
}
