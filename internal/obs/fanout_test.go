package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

// TestFanoutOrdering: every subscriber sees its events in strictly
// increasing Seq order, whatever mix of payloads concurrent emitters
// produce.
func TestFanoutOrdering(t *testing.T) {
	f := NewFanout()
	sub := f.Subscribe(10_000)

	const emitters, perEmitter = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perEmitter; i++ {
				switch i % 3 {
				case 0:
					f.StageStart(StageEvent{Stage: StageMapping, Units: i})
				case 1:
					f.LayerScheduled(LayerEvent{Stage: StageMapping, Index: i, Done: i, Total: perEmitter})
				default:
					f.AnnealProgress(AnnealEvent{Tag: g, Iteration: i})
				}
			}
		}(g)
	}
	wg.Wait()
	f.Close()

	var last uint64
	var got int
	for ev := range sub.Events() {
		if ev.Seq <= last {
			t.Fatalf("seq went %d -> %d; events must be strictly ordered", last, ev.Seq)
		}
		last = ev.Seq
		got++
	}
	if want := emitters * perEmitter; got != want {
		t.Fatalf("received %d events, want %d (buffer was large enough for all)", got, want)
	}
	if sub.Dropped() != 0 {
		t.Fatalf("dropped %d events despite a large buffer", sub.Dropped())
	}
}

// TestFanoutStalledSubscriberNeverBlocks is the scheduler-safety contract:
// a subscriber that never reads (a stalled SSE client) costs itself dropped
// events, not the emitter a blocked send. The emit loop runs synchronously
// on this goroutine — if a full buffer blocked, this test would deadlock
// rather than fail.
func TestFanoutStalledSubscriberNeverBlocks(t *testing.T) {
	f := NewFanout()
	stalled := f.Subscribe(1) // never read from
	live := f.Subscribe(1000)

	const n = 500
	for i := 0; i < n; i++ {
		f.LayerScheduled(LayerEvent{Index: i, Done: i + 1, Total: n})
	}
	f.Close()

	if d := stalled.Dropped(); d != n-1 {
		t.Fatalf("stalled subscriber dropped %d events, want %d (buffer 1)", d, n-1)
	}
	// The live subscriber got everything, in order, with detectable Seq
	// continuity.
	want := uint64(0)
	for ev := range live.Events() {
		want++
		if ev.Seq != want {
			t.Fatalf("live subscriber saw seq %d, want %d", ev.Seq, want)
		}
	}
	if want != n {
		t.Fatalf("live subscriber received %d events, want %d", want, n)
	}
	// The stalled subscriber's single buffered event is still readable and
	// is the earliest emitted (drop-newest policy keeps the oldest).
	ev, ok := <-stalled.Events()
	if !ok || ev.Seq != 1 {
		t.Fatalf("stalled subscriber's buffered event = %+v ok=%v, want seq 1", ev, ok)
	}
}

// TestFanoutLateSubscribe: a subscriber attached mid-stream starts at the
// current sequence position (coalesced followers join mid-flight).
func TestFanoutLateSubscribe(t *testing.T) {
	f := NewFanout()
	f.StageStart(StageEvent{Stage: StageMapping, Units: 1})
	f.StageEnd(StageEvent{Stage: StageMapping, Units: 1})

	late := f.Subscribe(4)
	f.StageStart(StageEvent{Stage: StageAnneal, Units: 2})
	f.Close()

	ev, ok := <-late.Events()
	if !ok {
		t.Fatal("late subscriber saw no events")
	}
	if ev.Seq != 3 || ev.Kind != EventStageStart || ev.Stage.Stage != StageAnneal {
		t.Fatalf("late subscriber's first event = %+v, want seq 3 stage_start anneal", ev)
	}
	if _, ok := <-late.Events(); ok {
		t.Fatal("expected channel closed after Close")
	}
}

// TestEventJSONRoundTrip pins the wire shape: one payload pointer set, the
// rest omitted, kind and seq always present.
func TestEventJSONRoundTrip(t *testing.T) {
	f := NewFanout()
	sub := f.Subscribe(2)
	f.LayerScheduled(LayerEvent{Stage: StageMapping, Index: 3, Name: "conv1", Done: 4, Total: 8})
	f.Close()

	ev := <-sub.Events()
	raw, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["kind"] != string(EventLayer) || m["seq"] != float64(1) {
		t.Fatalf("marshalled envelope %s missing kind/seq", raw)
	}
	if _, ok := m["layer_event"]; !ok {
		t.Fatalf("marshalled envelope %s missing layer_event payload", raw)
	}
	for _, absent := range []string{"stage_event", "anneal_event", "mapper_event", "sweep_event"} {
		if _, ok := m[absent]; ok {
			t.Fatalf("marshalled envelope %s carries unexpected payload %s", raw, absent)
		}
	}
	var back Event
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Layer == nil || *back.Layer != *ev.Layer || back.Seq != ev.Seq || back.Kind != ev.Kind {
		t.Fatalf("round trip %+v != %+v", back, ev)
	}
}

// TestMulti: events reach every non-nil observer; nil entries collapse.
func TestMulti(t *testing.T) {
	a, b := NewFanout(), NewFanout()
	sa, sb := a.Subscribe(2), b.Subscribe(2)
	m := Multi(nil, a, nil, b)
	m.StageStart(StageEvent{Stage: StageSweep, Units: 7})
	a.Close()
	b.Close()
	ea, oka := <-sa.Events()
	eb, okb := <-sb.Events()
	if !oka || !okb || ea.Stage.Units != 7 || eb.Stage.Units != 7 {
		t.Fatalf("multi delivery failed: %+v/%v %+v/%v", ea, oka, eb, okb)
	}
	if _, ok := Multi(nil, nil).(Nop); !ok {
		t.Fatal("Multi of nils should be Nop")
	}
	if got := Multi(nil, a); got != Observer(a) {
		t.Fatal("Multi of one observer should return it unwrapped")
	}
}
