// Package accelergy provides architecture-level energy and area estimation
// for the accelerator components, standing in for the Accelergy tool the
// paper uses ("Accelergy is used to estimate energy and area of each
// component on the DNN accelerator, assuming 40/45nm technology it
// supports", Section 5.1). The tables are seeded with per-access energies
// and component areas representative of that technology class; as with the
// paper, only the relative magnitudes drive the design-space conclusions.
package accelergy

import "math"

// Energy table, picojoules, 40/45 nm class, 8-bit datapath.
const (
	// MACEnergyPJ is one 8-bit multiply-accumulate.
	MACEnergyPJ = 0.2
	// RFEnergyPJ is one 8-bit register-file access (512 B scratchpad).
	RFEnergyPJ = 0.12
	// glbEnergyBasePJ and glbEnergyScalePJ parameterise SRAM access energy
	// as base + scale*sqrt(capacity/16kB): larger arrays have longer
	// bitlines and heavier decoders.
	glbEnergyBasePJ  = 0.6
	glbEnergyScalePJ = 1.5
)

// GLBEnergyPJ returns the energy of one 8-bit global-buffer access for a
// buffer of the given capacity.
func GLBEnergyPJ(capacityBytes int) float64 {
	ratio := float64(capacityBytes) / (16 * 1024)
	if ratio < 0 {
		ratio = 0
	}
	return glbEnergyBasePJ + glbEnergyScalePJ*math.Sqrt(ratio)
}

// Area model (mm^2, 40 nm class).
const (
	// PEAreaMM2 is one processing element including its register file.
	PEAreaMM2 = 0.004
	// SRAMAreaMM2PerKB is on-chip SRAM density.
	SRAMAreaMM2PerKB = 0.003
	// MM2PerKGate converts equivalent-gate counts (crypto engines) to area.
	MM2PerKGate = 0.0012
	// FixedAreaMM2 covers the NoC, control and I/O that every design pays.
	FixedAreaMM2 = 1.2

	// PELogicKGates is the logic-gate count of one PE, used for the
	// gate-count-relative crypto area overhead of Figure 13 (the paper's
	// Section 3.1 reports a 3x pipelined AES-GCM config at 416.7 kGates,
	// "approximately 35% of the logic gates in Eyeriss"; with 168 PEs at 7
	// kGates each that ratio is reproduced exactly).
	PELogicKGates = 7.0
)

// AcceleratorAreaMM2 returns the die area of an accelerator with the given
// PE count and global-buffer capacity, excluding cryptographic engines.
func AcceleratorAreaMM2(numPEs int, glbBytes int) float64 {
	return FixedAreaMM2 +
		float64(numPEs)*PEAreaMM2 +
		float64(glbBytes)/1024*SRAMAreaMM2PerKB
}

// CryptoAreaMM2 converts a crypto-engine gate count to area.
func CryptoAreaMM2(totalKGates float64) float64 {
	return totalKGates * MM2PerKGate
}

// TotalAreaMM2 returns the complete secure-accelerator area.
func TotalAreaMM2(numPEs, glbBytes int, cryptoKGates float64) float64 {
	return AcceleratorAreaMM2(numPEs, glbBytes) + CryptoAreaMM2(cryptoKGates)
}

// CryptoAreaOverheadPercent returns the Figure 13 metric: crypto-engine
// gates relative to the accelerator's logic gates.
func CryptoAreaOverheadPercent(cryptoKGates float64, numPEs int) float64 {
	logic := float64(numPEs) * PELogicKGates
	if logic <= 0 {
		return 0
	}
	return 100 * cryptoKGates / logic
}
