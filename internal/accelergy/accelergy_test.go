package accelergy

import (
	"math"
	"testing"
)

func TestGLBEnergyMonotone(t *testing.T) {
	sizes := []int{16 * 1024, 32 * 1024, 131 * 1024, 512 * 1024}
	prev := 0.0
	for _, s := range sizes {
		e := GLBEnergyPJ(s)
		if e <= prev {
			t.Errorf("GLB energy not increasing at %d bytes: %g <= %g", s, e, prev)
		}
		prev = e
	}
	if GLBEnergyPJ(16*1024) != glbEnergyBasePJ+glbEnergyScalePJ {
		t.Error("16kB anchor wrong")
	}
}

func TestAreaComposition(t *testing.T) {
	a := AcceleratorAreaMM2(168, 131*1024)
	want := FixedAreaMM2 + 168*PEAreaMM2 + 131*SRAMAreaMM2PerKB
	if math.Abs(a-want) > 1e-9 {
		t.Errorf("area = %g, want %g", a, want)
	}
	total := TotalAreaMM2(168, 131*1024, 416.7)
	if math.Abs(total-(a+416.7*MM2PerKGate)) > 1e-9 {
		t.Errorf("total = %g", total)
	}
}

func TestFigure16AreaRange(t *testing.T) {
	// The design points of Figure 16 span roughly 2-5.5 mm^2; our area
	// model must place the smallest and largest swept designs in that
	// range.
	small := TotalAreaMM2(168, 16*1024, 3*(9.2+9.7))      // 14x12, 16kB, parallel x1
	large := TotalAreaMM2(672, 131*1024, 2*3*(78.8+60.1)) // 28x24, 131kB, pipelined x2
	if small < 1.5 || small > 3 {
		t.Errorf("small design area %g out of plausible range", small)
	}
	if large < 4 || large > 7 {
		t.Errorf("large design area %g out of plausible range", large)
	}
	if large <= small {
		t.Error("area ordering inverted")
	}
}

func TestSection31AreaOverhead(t *testing.T) {
	// Section 3.1: 416.7 kGates of pipelined AES-GCM is ~35% of the logic
	// gates of an Eyeriss-class (168 PE) accelerator.
	got := CryptoAreaOverheadPercent(416.7, 168)
	if math.Abs(got-35.4) > 0.5 {
		t.Errorf("overhead = %g%%, want ~35%%", got)
	}
	if CryptoAreaOverheadPercent(100, 0) != 0 {
		t.Error("zero PEs should report zero overhead")
	}
}

func TestEnergyOrdering(t *testing.T) {
	// Hierarchy sanity: RF < GLB access energy, MAC is cheap.
	if RFEnergyPJ >= GLBEnergyPJ(16*1024) {
		t.Error("RF access should be cheaper than GLB access")
	}
	if MACEnergyPJ >= GLBEnergyPJ(131*1024) {
		t.Error("MAC should be cheaper than a large-GLB access")
	}
}
