// The Executor seam between the sweep coordinator and the workers that
// evaluate design points. LocalExecutor runs jobs on an in-process worker
// pool (today's behaviour); the interface is deliberately narrow — a shard
// of self-describing jobs in, per-job callbacks out — so a remote executor
// speaking the cmd/secured API (ROADMAP items 1 and 4) can slot in without
// touching the coordinator: the persistent store is already the shared memo
// that keeps distributed workers from repeating evaluations.

package dse

import (
	"context"
	"runtime"
	"sync"

	"secureloop/internal/obs"
)

// PointJob is one design point handed to an Executor: its canonical index
// in the specs-major sweep order, its (spec, crypto) coordinates, and the
// pre-pass bound the worker re-checks against the live front before paying
// for a full evaluation.
type PointJob struct {
	// Index is the point's position in the canonical specs-major output
	// order (SpecIdx*len(cryptos) + CryptoIdx).
	Index int
	// SpecIdx and CryptoIdx index the sweep's spec and crypto slices.
	SpecIdx, CryptoIdx int
	// Bound is the pre-pass estimate (exact area, cycle lower bound).
	Bound PointBound
}

// Shard is a canonical partition of the sweep's jobs. Shard membership is a
// pure function of the job bounds (best-bound-first round-robin), so every
// execution — serial, parallel, distributed — sees identical shards.
type Shard struct {
	// ID numbers the shard within its sweep.
	ID int
	// Jobs are the shard's design points, best bound first.
	Jobs []PointJob
}

// Executor dispatches one shard's design-point evaluations. eval is
// supplied by the coordinator and is safe for concurrent calls; it returns
// nil for points disposed of without work (already resolved, pruned,
// deferred). ExecuteShard returns the first eval error, or ctx.Err() when
// the shard's context expires first — the coordinator treats a deadline
// expiry as a straggler and re-dispatches the shard's unresolved jobs.
// Implementations must not retain jobs or call eval after returning.
type Executor interface {
	ExecuteShard(ctx context.Context, shard Shard, eval func(ctx context.Context, job PointJob) error) error
}

// LocalExecutor runs shard jobs on an in-process worker pool. The pool is
// shared across concurrent ExecuteShard calls, so total parallelism stays
// bounded by Workers however many shards are in flight. The zero value is
// ready to use.
type LocalExecutor struct {
	// Workers bounds the pool (<= 0: one worker per available CPU).
	Workers int

	once sync.Once
	sem  chan struct{} // initialised once by any ExecuteShard call
}

// ExecuteShard evaluates the shard's jobs on the pool. Job launches stop on
// cancellation; each worker body is guarded, so a panic evaluating one
// design point surfaces as that job's error rather than killing the
// process.
func (e *LocalExecutor) ExecuteShard(ctx context.Context, shard Shard, eval func(ctx context.Context, job PointJob) error) error {
	e.once.Do(func() {
		w := e.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		e.sem = make(chan struct{}, w)
	})
	errs := make([]error, len(shard.Jobs))
	var wg sync.WaitGroup
	for i := range shard.Jobs {
		if ctx.Err() != nil {
			break
		}
		select {
		case e.sem <- struct{}{}:
			// Acquired: always launch, so the slot is always released.
		case <-ctx.Done():
			continue // the loop header sees ctx.Err() and stops
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-e.sem }()
			errs[i] = obs.Guard(func() error { return eval(ctx, shard.Jobs[i]) })
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}
