// The sweep coordinator: dominance-pruned, sharded cold sweeps. A cheap
// pre-pass (bounds.go) gives every design point an exact area and a sound
// cycle lower bound; the coordinator partitions the points into canonical
// shards, orders work best-bound-first, and dispatches shards to an
// Executor (executor.go) while maintaining a streaming Pareto front
// (pareto.go) under a mutex. Before a worker pays for the full
// mapper+authblock+anneal pipeline, it re-checks the point's
// (area, cycle-LB) against the live front and skips points whose bound is
// already strictly dominated — sound because a lower bound below the true
// cycles can only under-prune, never drop a front member. Points whose
// bound is dominated only by a tie (or sits within Options.BoundSlack of
// the front) are deferred and resolved in a final exact pass against the
// finished front, so the returned front is byte-identical to the unpruned
// sweep's (TestCoordinatorFrontMatchesUnpruned pins this, the same way
// parallel-vs-serial is pinned).

package dse

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"secureloop/internal/arch"
	"secureloop/internal/core"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/num"
	"secureloop/internal/obs"
	"secureloop/internal/workload"
)

// Per-job lifecycle states. A job is terminal once evaluated or pruned;
// deferred jobs are resolved (to one or the other) by the exact pass.
const (
	statePending uint32 = iota
	stateEvaluated
	statePruned
	stateDeferred
)

// defaultShardAttempts bounds straggler re-dispatches per shard; the final
// attempt runs without a shard deadline so the sweep always completes.
const defaultShardAttempts = 3

// FrontStats is one SweepFrontCtx run's work accounting.
type FrontStats struct {
	// Points is the design-point count of the sweep.
	Points int
	// Shards is how many canonical shards the points were partitioned into.
	Shards int
	// Bounded counts points given a pre-pass cycle lower bound (all of them
	// when pruning is on, 0 otherwise).
	Bounded int
	// Pruned counts points skipped by dominance without a full evaluation
	// (exact-pass prunes of deferred points included).
	Pruned int
	// Deferred counts points whose bound tied the front (or fell within
	// BoundSlack) and were resolved in the exact pass.
	Deferred int
	// Reevaluated counts deferred points that survived the exact pass and
	// were fully evaluated there.
	Reevaluated int
	// FullEvals counts full scheduler evaluations (Reevaluated included).
	FullEvals int
	// StoreHits counts evaluations the persistent store's network tier
	// answered (cheap replays, reported as "store-hit" skip events).
	StoreHits int
	// Redispatches counts straggler shard re-dispatches after a shard
	// deadline expired.
	Redispatches int
}

// SweepFrontResult is a dominance-pruned sweep's outcome: the Pareto front
// (ascending area, Pareto marked, byte-identical to ParetoFront over the
// unpruned sweep) and the run's work accounting.
type SweepFrontResult struct {
	Front []DesignPoint
	Stats FrontStats
}

// SweepFront is SweepFrontCtx with a background context.
func SweepFront(net *workload.Network, specs []arch.Spec, cryptos []cryptoengine.Config, alg core.Algorithm, opt Options) (SweepFrontResult, error) {
	return SweepFrontCtx(context.Background(), net, specs, cryptos, alg, opt)
}

// SweepFrontCtx runs the coordinator sweep: bound pre-pass, canonical
// best-bound-first shards, dominance pruning against the streaming front,
// straggler re-dispatch, and the final exact pass. With Options.Prune off
// it evaluates every point (still through the Executor seam) and returns
// the same front. Cancellation stops shard dispatch and in-flight points at
// their stage boundaries; the error is ctx.Err() wrapped with the sweep
// stage.
func SweepFrontCtx(ctx context.Context, net *workload.Network, specs []arch.Spec, cryptos []cryptoengine.Config, alg core.Algorithm, opt Options) (res SweepFrontResult, err error) {
	defer obs.CapturePanic(&err)
	jobs := num.MulInt(len(specs), len(cryptos))
	if jobs == 0 {
		return SweepFrontResult{}, nil
	}
	if cerr := ctx.Err(); cerr != nil {
		return SweepFrontResult{}, fmt.Errorf("dse: %s: %w", obs.StageSweep, cerr)
	}
	c := &coordinator{
		net: net, specs: specs, cryptos: cryptos, alg: alg, opt: opt,
		ob:      obs.OrNop(opt.Observe),
		jobs:    make([]PointJob, jobs),
		state:   make([]atomic.Uint32, jobs),
		results: make([]DesignPoint, jobs),
		bases:   make([]specBaseline, len(specs)),
	}
	c.ob.StageStart(obs.StageEvent{Stage: obs.StageSweep, Units: jobs})
	c.computeBounds()
	if err := c.run(ctx); err != nil {
		return SweepFrontResult{}, err
	}
	front := ParetoFront(c.evaluatedPoints())
	c.ob.StageEnd(obs.StageEvent{Stage: obs.StageSweep, Units: jobs})
	return SweepFrontResult{Front: front, Stats: c.frontStats()}, nil
}

// specBaseline memoises one spec's unsecure baseline. Unlike a sync.Once, a
// context error is not latched: a baseline interrupted by a shard deadline
// is recomputed by the re-dispatched attempt.
type specBaseline struct {
	mu     sync.Mutex
	done   bool  // guarded by mu
	cycles int64 // guarded by mu
}

// coordinator carries one SweepFrontCtx run's state.
type coordinator struct {
	net     *workload.Network
	specs   []arch.Spec
	cryptos []cryptoengine.Config
	alg     core.Algorithm
	opt     Options
	ob      obs.Observer

	jobs    []PointJob      // canonical specs-major order, bounds filled
	state   []atomic.Uint32 // per-job lifecycle, indexed like jobs
	results []DesignPoint   // evaluated points only, indexed like jobs
	bases   []specBaseline  // per-spec unsecure baselines
	front   frontTracker
	done    atomic.Int64 // terminal dispositions, for monotone progress

	shardCount   int
	pruned       atomic.Int64
	deferred     atomic.Int64
	reevaluated  atomic.Int64
	fullEvals    atomic.Int64
	storeHits    atomic.Int64
	redispatches atomic.Int64
}

// computeBounds is the pre-pass: exact area always; the cycle lower bound
// only when pruning is on (it is the only part that costs anything). The
// bound depends on the crypto config only through the effective bandwidth,
// so it is memoised per (spec, effBW) — a sweep's crypto axis mostly
// collapses onto a few distinct bandwidths.
func (c *coordinator) computeBounds() {
	type effKey struct {
		si int
		bw float64
	}
	var memo map[effKey]int64
	if c.opt.Prune {
		memo = make(map[effKey]int64)
		sweepBounded.Add(int64(len(c.jobs)))
	}
	for si := range c.specs {
		for ci := range c.cryptos {
			idx := num.MulInt(si, len(c.cryptos)) + ci
			b := PointBound{AreaMM2: pointArea(c.specs[si], c.cryptos[ci])}
			if c.opt.Prune {
				key := effKey{si: si, bw: effectiveBW(c.specs[si], c.cryptos[ci], c.alg)}
				lb, ok := memo[key]
				if !ok {
					lb = networkCycleLB(c.net, c.specs[si], c.cryptos[ci], c.alg)
					memo[key] = lb
				}
				b.CycleLB = lb
			}
			c.jobs[idx] = PointJob{Index: idx, SpecIdx: si, CryptoIdx: ci, Bound: b}
		}
	}
}

// makeShards partitions the jobs into canonical best-bound-first shards:
// jobs sorted by (CycleLB, AreaMM2, Index) are dealt round-robin, so every
// shard leads with its most promising points and shard membership is a pure
// function of the bounds — identical across serial, parallel and
// distributed execution.
func (c *coordinator) makeShards() []Shard {
	order := make([]int, len(c.jobs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ja, jb := c.jobs[order[a]], c.jobs[order[b]]
		if ja.Bound.CycleLB != jb.Bound.CycleLB {
			return ja.Bound.CycleLB < jb.Bound.CycleLB
		}
		//securelint:ignore floateq lexicographic sort key over stored area values; ties fall through to the index comparison, so the order is total and deterministic
		if ja.Bound.AreaMM2 != jb.Bound.AreaMM2 {
			return ja.Bound.AreaMM2 < jb.Bound.AreaMM2
		}
		return ja.Index < jb.Index
	})
	n := c.opt.Shards
	if n <= 0 {
		n = 1
	}
	if n > len(c.jobs) {
		n = len(c.jobs)
	}
	shards := make([]Shard, n)
	for i := range shards {
		shards[i].ID = i
	}
	for k, idx := range order {
		s := &shards[k%n]
		s.Jobs = append(s.Jobs, c.jobs[idx])
	}
	return shards
}

// run dispatches every shard concurrently (total worker parallelism stays
// bounded by the Executor), then resolves deferred points in the exact
// pass.
func (c *coordinator) run(ctx context.Context) error {
	exec := c.opt.Executor
	if exec == nil {
		exec = &LocalExecutor{Workers: c.opt.MaxParallel}
	}
	shards := c.makeShards()
	c.shardCount = len(shards)
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = obs.Guard(func() error { return c.runShard(ctx, exec, shards[i]) })
		}(i)
	}
	wg.Wait()
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("dse: %s: %w", obs.StageSweep, cerr)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return c.exactPass(ctx)
}

// runShard drives one shard to completion: dispatch the still-pending jobs,
// and on a shard-deadline expiry (a straggler) re-dispatch whatever is left.
// All attempts but the last run under Options.ShardTimeout; the last runs
// without a shard deadline so the sweep always completes.
func (c *coordinator) runShard(ctx context.Context, exec Executor, sh Shard) error {
	attempts := c.opt.MaxShardAttempts
	if attempts <= 0 {
		attempts = defaultShardAttempts
	}
	for attempt := 1; ; attempt++ {
		pending := c.pendingJobs(sh)
		if len(pending) == 0 {
			return nil
		}
		if attempt > 1 {
			c.redispatches.Add(1)
		}
		runCtx, cancel := ctx, func() {}
		if c.opt.ShardTimeout > 0 && attempt < attempts {
			runCtx, cancel = context.WithTimeout(ctx, c.opt.ShardTimeout)
		}
		err := exec.ExecuteShard(runCtx, Shard{ID: sh.ID, Jobs: pending}, c.evalJob)
		cancel()
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("dse: %s: %w", obs.StageSweep, cerr)
		}
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err // a real evaluation failure, already point-wrapped
		}
		if err == nil && len(c.pendingJobs(sh)) == len(pending) {
			// A completed dispatch that resolved nothing would loop forever;
			// the Executor contract forbids it, so fail loudly.
			return fmt.Errorf("dse: shard %d: executor completed without resolving any job", sh.ID)
		}
		if err != nil && attempt >= attempts {
			// Unreachable with the stock executors (the last attempt has no
			// shard deadline), but a custom Executor may surface deadline
			// errors of its own; bail rather than spin.
			return fmt.Errorf("dse: shard %d: %w", sh.ID, err)
		}
	}
}

// pendingJobs returns the shard's not-yet-resolved jobs, preserving the
// shard's best-bound-first order.
func (c *coordinator) pendingJobs(sh Shard) []PointJob {
	var out []PointJob
	for _, job := range sh.Jobs {
		if c.state[job.Index].Load() == statePending {
			out = append(out, job)
		}
	}
	return out
}

// evalJob is the Executor callback: re-check the point's bound against the
// live front, then prune, defer, or fully evaluate.
func (c *coordinator) evalJob(ctx context.Context, job PointJob) error {
	st := &c.state[job.Index]
	if st.Load() != statePending {
		return nil // resolved by an earlier attempt
	}
	if c.opt.Prune {
		switch c.front.check(job.Bound.AreaMM2, job.Bound.CycleLB, c.opt.BoundSlack) {
		case boundPrune:
			if st.CompareAndSwap(statePending, statePruned) {
				c.pruned.Add(1)
				sweepPruned.Add(1)
				c.emitSkip(job, obs.SweepPruned, true)
			}
			return nil
		case boundDefer:
			if st.CompareAndSwap(statePending, stateDeferred) {
				c.deferred.Add(1)
				sweepDeferred.Add(1)
				c.emitSkip(job, obs.SweepDeferred, false)
			}
			return nil
		}
	}
	return c.evaluateJob(ctx, job, statePending)
}

// evaluateJob runs the full scheduler pipeline for one point and folds the
// exact result into the streaming front. from is the lifecycle state the
// job resolves out of (pending on the sweep path, deferred on the exact
// pass).
func (c *coordinator) evaluateJob(ctx context.Context, job PointJob, from uint32) error {
	si, ci := job.SpecIdx, job.CryptoIdx
	base, err := c.baseline(ctx, si, ci)
	if err != nil {
		return c.pointErr(job, err)
	}
	storeHit := false
	if c.opt.Store != nil {
		storeHit = newScheduler(c.specs[si], c.cryptos[ci], c.opt).StoredNetwork(c.net, c.alg)
	}
	dp, err := evaluateWithBaseline(ctx, c.net, c.specs[si], c.cryptos[ci], c.alg, base, c.opt)
	if err != nil {
		return c.pointErr(job, err)
	}
	// Shards partition the jobs and attempts within a shard are sequential,
	// so no job is ever evaluated concurrently with itself; the CAS guards
	// the counters against a contract-violating double dispatch.
	c.results[job.Index] = dp
	if !c.state[job.Index].CompareAndSwap(from, stateEvaluated) {
		return nil
	}
	c.front.add(dp.AreaMM2, dp.Cycles)
	c.fullEvals.Add(1)
	sweepFullEvals.Add(1)
	if storeHit {
		c.storeHits.Add(1)
		sweepStoreSkips.Add(1)
		c.ob.SweepPoint(obs.SweepPointEvent{
			Index: job.Index, Label: dp.Label(), Outcome: obs.SweepStoreHit,
			Done: int(c.done.Add(1)), Total: len(c.jobs),
		})
		return nil
	}
	c.ob.LayerScheduled(obs.LayerEvent{
		Stage: obs.StageSweep,
		Index: job.Index, Name: dp.Label(),
		Done: int(c.done.Add(1)), Total: len(c.jobs),
	})
	return nil
}

// baseline memoises the unsecure schedule per spec (not per point). Errors
// are returned but never latched, so a deadline-interrupted baseline does
// not poison later attempts.
func (c *coordinator) baseline(ctx context.Context, si, ci int) (int64, error) {
	b := &c.bases[si]
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.done {
		return b.cycles, nil
	}
	cycles, err := unsecureCycles(ctx, c.net, c.specs[si], c.cryptos[ci], c.opt)
	if err != nil {
		return 0, err
	}
	b.cycles, b.done = cycles, true
	return cycles, nil
}

// exactPass resolves deferred points against the finished front, in
// canonical index order: strictly dominated bounds are pruned for good,
// everything else is evaluated exactly — so a bound tie can never cost a
// front member, only a re-evaluation.
func (c *coordinator) exactPass(ctx context.Context) error {
	for idx := range c.jobs {
		if c.state[idx].Load() != stateDeferred {
			continue
		}
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("dse: %s: %w", obs.StageSweep, cerr)
		}
		job := c.jobs[idx]
		if c.front.check(job.Bound.AreaMM2, job.Bound.CycleLB, 0) == boundPrune {
			c.state[idx].Store(statePruned)
			c.pruned.Add(1)
			sweepPruned.Add(1)
			c.emitSkip(job, obs.SweepPruned, true)
			continue
		}
		c.reevaluated.Add(1)
		sweepReevaluated.Add(1)
		if err := c.evaluateJob(ctx, job, stateDeferred); err != nil {
			return err
		}
	}
	return nil
}

// evaluatedPoints collects the evaluated design points in canonical order —
// the input ParetoFront sorts, so tie order matches the unpruned sweep's.
func (c *coordinator) evaluatedPoints() []DesignPoint {
	var out []DesignPoint
	for idx := range c.jobs {
		if c.state[idx].Load() == stateEvaluated {
			out = append(out, c.results[idx])
		}
	}
	return out
}

// emitSkip reports a point disposed of without a full evaluation. Terminal
// dispositions (prunes) advance the Done counter; deferrals do not — they
// advance it when the exact pass resolves them — so progress stays monotone
// and ends at Total.
func (c *coordinator) emitSkip(job PointJob, outcome obs.SweepOutcome, terminal bool) {
	done := int(c.done.Load())
	if terminal {
		done = int(c.done.Add(1))
	}
	c.ob.SweepPoint(obs.SweepPointEvent{
		Index: job.Index, Label: c.label(job), Outcome: outcome,
		Done: done, Total: len(c.jobs),
	})
}

// label names a point without evaluating it (prune/defer events).
func (c *coordinator) label(job PointJob) string {
	return DesignPoint{Spec: c.specs[job.SpecIdx], Crypto: c.cryptos[job.CryptoIdx]}.Label()
}

// pointErr wraps an evaluation failure with the point's identity, matching
// SweepOptsCtx's error shape.
func (c *coordinator) pointErr(job PointJob, err error) error {
	return fmt.Errorf("dse: %s %s: %w", c.specs[job.SpecIdx].Name, c.cryptos[job.CryptoIdx], err)
}

// frontStats snapshots the run's counters.
func (c *coordinator) frontStats() FrontStats {
	bounded := 0
	if c.opt.Prune {
		bounded = len(c.jobs)
	}
	return FrontStats{
		Points:       len(c.jobs),
		Shards:       c.shardCount,
		Bounded:      bounded,
		Pruned:       int(c.pruned.Load()),
		Deferred:     int(c.deferred.Load()),
		Reevaluated:  int(c.reevaluated.Load()),
		FullEvals:    int(c.fullEvals.Load()),
		StoreHits:    int(c.storeHits.Load()),
		Redispatches: int(c.redispatches.Load()),
	}
}

// Process-wide pruning counters (PruneStats): how much work the dominance
// pre-pass disposed of across every sweep in the process, reported by
// `experiments -cachestats` next to the cache tiers' hit ratios.
var (
	sweepBounded     atomic.Int64
	sweepPruned      atomic.Int64
	sweepDeferred    atomic.Int64
	sweepReevaluated atomic.Int64
	sweepFullEvals   atomic.Int64
	sweepStoreSkips  atomic.Int64
)

// SweepPruneStats aggregates the coordinator's pruning work across the
// process.
type SweepPruneStats struct {
	// Bounded counts design points given a pre-pass cycle lower bound.
	Bounded int64
	// Pruned counts points skipped by dominance without a full evaluation.
	Pruned int64
	// Deferred counts points sent to the exact pass by a bound tie or the
	// slack band.
	Deferred int64
	// Reevaluated counts deferred points fully evaluated in the exact pass.
	Reevaluated int64
	// FullEvals counts full scheduler evaluations run by coordinator sweeps.
	FullEvals int64
	// StoreHits counts evaluations answered by the persistent store's
	// network tier.
	StoreHits int64
}

// PruneStats snapshots the coordinator's pruning counters.
func PruneStats() SweepPruneStats {
	return SweepPruneStats{
		Bounded:     sweepBounded.Load(),
		Pruned:      sweepPruned.Load(),
		Deferred:    sweepDeferred.Load(),
		Reevaluated: sweepReevaluated.Load(),
		FullEvals:   sweepFullEvals.Load(),
		StoreHits:   sweepStoreSkips.Load(),
	}
}

// ResetPruneStats zeroes the pruning counters.
func ResetPruneStats() {
	sweepBounded.Store(0)
	sweepPruned.Store(0)
	sweepDeferred.Store(0)
	sweepReevaluated.Store(0)
	sweepFullEvals.Store(0)
	sweepStoreSkips.Store(0)
}
