package dse

import (
	"testing"

	"secureloop/internal/arch"
	"secureloop/internal/core"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/workload"
)

// benchSpace is a 3-spec x 2-crypto slice of the Figure 16 design space,
// large enough to exercise the sweep scheduling but small enough to iterate.
func benchSpace() ([]arch.Spec, []cryptoengine.Config) {
	specs := []arch.Spec{
		arch.Base(),
		arch.Base().WithGlobalBuffer(32 * 1024),
		arch.Base().WithPEs(28, 24),
	}
	cryptos := []cryptoengine.Config{
		{Engine: cryptoengine.Pipelined(), CountPerDatatype: 1},
		{Engine: cryptoengine.Parallel(), CountPerDatatype: 1},
	}
	return specs, cryptos
}

// BenchmarkSweepParallel measures the design-space sweep over a slice of the
// Figure 16 space with the full Crypt-Opt-Cross scheduler per point.
func BenchmarkSweepParallel(b *testing.B) {
	net := workload.AlexNet()
	specs, cryptos := benchSpace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := Sweep(net, specs, cryptos, core.CryptOptCross)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != len(specs)*len(cryptos) {
			b.Fatalf("%d points", len(points))
		}
	}
}
