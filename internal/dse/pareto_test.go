package dse

import (
	"math/rand"
	"reflect"
	"testing"
)

// pts builds design points from (area, cycles) pairs.
func pts(pairs ...[2]int64) []DesignPoint {
	out := make([]DesignPoint, len(pairs))
	for i, p := range pairs {
		out[i] = DesignPoint{AreaMM2: float64(p[0]), Cycles: p[1]}
	}
	return out
}

func paretoFlags(points []DesignPoint) []bool {
	out := make([]bool, len(points))
	for i, p := range points {
		out[i] = p.Pareto
	}
	return out
}

// markParetoNaive is the O(n^2) dominance reference: p is on the front iff
// no q has area <= and cycles <= with at least one strict.
func markParetoNaive(points []DesignPoint) {
	for i := range points {
		dominated := false
		for j := range points {
			if i == j {
				continue
			}
			q, p := points[j], points[i]
			if q.AreaMM2 <= p.AreaMM2 && q.Cycles <= p.Cycles &&
				(q.AreaMM2 < p.AreaMM2 || q.Cycles < p.Cycles) {
				dominated = true
				break
			}
		}
		points[i].Pareto = !dominated
	}
}

func TestMarkParetoEmpty(t *testing.T) {
	MarkPareto(nil)
	MarkPareto([]DesignPoint{})
	if got := ParetoFront(nil); len(got) != 0 {
		t.Fatalf("front of empty input: %v", got)
	}
}

func TestMarkParetoSinglePoint(t *testing.T) {
	p := pts([2]int64{5, 100})
	MarkPareto(p)
	if !p[0].Pareto {
		t.Fatal("a lone point must be on the front")
	}
}

// TestMarkParetoExactTies: points tied in both coordinates do not dominate
// each other, so every copy is marked — and the marking must not depend on
// which copy the sort visits first.
func TestMarkParetoExactTies(t *testing.T) {
	p := pts([2]int64{5, 100}, [2]int64{5, 100}, [2]int64{5, 100}, [2]int64{7, 50})
	MarkPareto(p)
	want := []bool{true, true, true, true}
	if got := paretoFlags(p); !reflect.DeepEqual(got, want) {
		t.Fatalf("flags %v, want %v", got, want)
	}
	// A same-area cheaper point dominates all three ties strictly.
	p = append(p, DesignPoint{AreaMM2: 5, Cycles: 99})
	MarkPareto(p)
	want = []bool{false, false, false, true, true}
	if got := paretoFlags(p); !reflect.DeepEqual(got, want) {
		t.Fatalf("flags %v, want %v", got, want)
	}
	front := ParetoFront(p)
	if len(front) != 2 {
		t.Fatalf("front size %d, want 2", len(front))
	}
}

func TestMarkParetoAllDominated(t *testing.T) {
	p := pts([2]int64{1, 10}, [2]int64{2, 11}, [2]int64{3, 12}, [2]int64{4, 10})
	MarkPareto(p)
	want := []bool{true, false, false, false}
	if got := paretoFlags(p); !reflect.DeepEqual(got, want) {
		t.Fatalf("flags %v, want %v", got, want)
	}
}

// TestMarkParetoMatchesNaive is the property test: on random point sets —
// with deliberately heavy area and cycle collisions so ties are common —
// the staircase marking must agree with the O(n^2) dominance definition,
// and must be invariant under input order.
func TestMarkParetoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9)) // fixed seed: reproducible failures
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		points := make([]DesignPoint, n)
		for i := range points {
			points[i] = DesignPoint{
				AreaMM2: float64(1 + rng.Intn(8)),
				Cycles:  int64(1 + rng.Intn(8)),
			}
		}
		got := append([]DesignPoint(nil), points...)
		MarkPareto(got)
		want := append([]DesignPoint(nil), points...)
		markParetoNaive(want)
		if !reflect.DeepEqual(paretoFlags(got), paretoFlags(want)) {
			t.Fatalf("trial %d: staircase %v != naive %v on %v",
				trial, paretoFlags(got), paretoFlags(want), points)
		}
		// Shuffle and re-mark: flags must follow the points, not the order.
		perm := rng.Perm(n)
		shuffled := make([]DesignPoint, n)
		for i, j := range perm {
			shuffled[i] = points[j]
		}
		MarkPareto(shuffled)
		for i, j := range perm {
			if shuffled[i].Pareto != got[j].Pareto {
				t.Fatalf("trial %d: marking depends on input order", trial)
			}
		}
	}
}

// TestPruneTrackerVerdicts unit-tests the streaming front's staircase and
// its three dispositions.
func TestPruneTrackerVerdicts(t *testing.T) {
	var tr frontTracker
	if v := tr.check(5, 100, 0); v != boundEvaluate {
		t.Fatalf("empty front must evaluate, got %v", v)
	}
	tr.add(5, 100)
	cases := []struct {
		name  string
		area  float64
		lb    int64
		slack float64
		want  boundVerdict
	}{
		{"smaller area always evaluates", 4, 1000, 0, boundEvaluate},
		{"bound below the stair evaluates", 6, 99, 0, boundEvaluate},
		{"strictly dominated prunes", 6, 100, 0, boundPrune},
		{"worse both ways prunes", 6, 101, 0, boundPrune},
		{"full tie defers", 5, 100, 0, boundDefer},
		{"equal area, worse cycles prunes", 5, 101, 0, boundPrune},
		{"slack band defers", 6, 104, 0.05, boundDefer},
		{"outside slack band prunes", 6, 106, 0.05, boundPrune},
	}
	for _, c := range cases {
		if got := tr.check(c.area, c.lb, c.slack); got != c.want {
			t.Errorf("%s: check(%g, %d, %g) = %v, want %v", c.name, c.area, c.lb, c.slack, got, c.want)
		}
	}
}

// TestPruneTrackerStaircase pins the staircase maintenance: weakly
// dominated insertions are dropped, dominating insertions evict, equal-area
// improvements replace.
func TestPruneTrackerStaircase(t *testing.T) {
	var tr frontTracker
	tr.add(5, 100)
	tr.add(10, 50)
	tr.add(7, 120) // weakly dominated by (5,100): dropped
	if got := tr.snapshot(); !reflect.DeepEqual(got, []frontPoint{{5, 100}, {10, 50}}) {
		t.Fatalf("stair %v", got)
	}
	tr.add(5, 80) // equal-area improvement: replaces (5,100)
	if got := tr.snapshot(); !reflect.DeepEqual(got, []frontPoint{{5, 80}, {10, 50}}) {
		t.Fatalf("stair %v", got)
	}
	tr.add(4, 40) // dominates everything: stair collapses to it
	if got := tr.snapshot(); !reflect.DeepEqual(got, []frontPoint{{4, 40}}) {
		t.Fatalf("stair %v", got)
	}
	tr.add(6, 30)
	tr.add(8, 20)
	tr.add(5, 25) // evicts (6,30) and (8,20)? no — only entries with cycles >= 25 to its right
	if got := tr.snapshot(); !reflect.DeepEqual(got, []frontPoint{{4, 40}, {5, 25}, {8, 20}}) {
		t.Fatalf("stair %v", got)
	}
}
