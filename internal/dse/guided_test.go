package dse

import (
	"context"
	"testing"

	"secureloop/internal/arch"
	"secureloop/internal/core"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/mapper"
	"secureloop/internal/workload"
)

// warmSweepSpace is a miniature Figure 16-style space: the GLB axis varies
// (the warm-start key deliberately ignores buffer capacity, so every layer
// shape recurs at each design point) under two crypto bandwidths.
func warmSweepSpace() ([]arch.Spec, []cryptoengine.Config) {
	base := arch.Base()
	specs := []arch.Spec{
		base.WithGlobalBuffer(16 * 1024),
		base.WithGlobalBuffer(32 * 1024),
		base.WithGlobalBuffer(131 * 1024),
	}
	cryptos := []cryptoengine.Config{
		{Engine: cryptoengine.Parallel(), CountPerDatatype: 1},
		{Engine: cryptoengine.Pipelined(), CountPerDatatype: 1},
	}
	return specs, cryptos
}

// runGuidedSweep runs the miniature sweep serially from fully reset mapper
// state and snapshots the guided-search work counters.
func runGuidedSweep(t *testing.T, warm bool) ([]DesignPoint, mapper.GuidedStats, mapper.WarmStats) {
	t.Helper()
	mapper.ResetCache()
	mapper.ResetWarmStore()
	mapper.ResetGuidedStats()
	specs, cryptos := warmSweepSpace()
	pts, err := SweepOptsCtx(context.Background(), workload.AlexNet(), specs, cryptos,
		core.CryptOptSingle, Options{
			Mapper:      mapper.Options{Mode: mapper.Guided, DisableWarmStart: !warm},
			MaxParallel: 1,
		})
	if err != nil {
		t.Fatal(err)
	}
	return pts, mapper.GuidedSearchStats(), mapper.WarmStartStats()
}

// TestSweepGuidedWarmStart is the acceptance test of the warm-start layer:
// on a serial sweep whose design points share layer shapes, the
// warm-started run must (a) hit the store, (b) evaluate measurably fewer
// tilings than the cold run — the seeds tighten the top-k threshold before
// scanning, so the bound prunes and skips more — and (c) return design
// points identical to the cold run (at Epsilon = 0 seeding provably cannot
// change the result).
func TestSweepGuidedWarmStart(t *testing.T) {
	coldPts, cold, _ := runGuidedSweep(t, false)
	warmPts, warm, warmStats := runGuidedSweep(t, true)
	defer mapper.ResetWarmStore()

	if warmStats.Hits == 0 {
		t.Error("warm-started sweep never hit the warm store")
	}
	if warm.WarmSeeds == 0 {
		t.Error("warm-started sweep applied no seeds")
	}
	if warm.Searches != cold.Searches {
		t.Errorf("search counts differ: warm %d, cold %d", warm.Searches, cold.Searches)
	}
	if warm.Evaluated >= cold.Evaluated {
		t.Errorf("warm sweep evaluated %d tilings, cold evaluated %d — warm starts saved nothing",
			warm.Evaluated, cold.Evaluated)
	}
	t.Logf("evaluated: cold %d, warm %d (%.1f%% saved); warm pruned %d, skipped %d, seeds %d, store hits %d",
		cold.Evaluated, warm.Evaluated,
		100*float64(cold.Evaluated-warm.Evaluated)/float64(cold.Evaluated),
		warm.Pruned, warm.Skipped, warm.WarmSeeds, warmStats.Hits)

	if len(warmPts) != len(coldPts) {
		t.Fatalf("point counts differ: warm %d, cold %d", len(warmPts), len(coldPts))
	}
	for i := range warmPts {
		w, c := warmPts[i], coldPts[i]
		if w.Cycles != c.Cycles || w.EnergyPJ != c.EnergyPJ || w.UnsecureCycles != c.UnsecureCycles {
			t.Errorf("point %s: warm (%d cyc, %g pJ, %d base) != cold (%d cyc, %g pJ, %d base)",
				w.Label(), w.Cycles, w.EnergyPJ, w.UnsecureCycles, c.Cycles, c.EnergyPJ, c.UnsecureCycles)
		}
	}
}

// TestSweepGuidedMatchesExhaustive pins the end-to-end contract the flag
// exposes: a guided sweep's design points are identical to the exhaustive
// sweep's.
func TestSweepGuidedMatchesExhaustive(t *testing.T) {
	mapper.ResetWarmStore()
	defer mapper.ResetWarmStore()
	specs, cryptos := warmSweepSpace()
	specs, cryptos = specs[:2], cryptos[:1]
	net := workload.AlexNet()
	ex, err := SweepOptsCtx(context.Background(), net, specs, cryptos, core.CryptOptSingle,
		Options{MaxParallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	mapper.ResetCache()
	gd, err := SweepOptsCtx(context.Background(), net, specs, cryptos, core.CryptOptSingle,
		Options{Mapper: mapper.Options{Mode: mapper.Guided}, MaxParallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(gd) != len(ex) {
		t.Fatalf("point counts differ: guided %d, exhaustive %d", len(gd), len(ex))
	}
	for i := range gd {
		if gd[i].Cycles != ex[i].Cycles || gd[i].EnergyPJ != ex[i].EnergyPJ {
			t.Errorf("point %s: guided (%d cyc, %g pJ) != exhaustive (%d cyc, %g pJ)",
				gd[i].Label(), gd[i].Cycles, gd[i].EnergyPJ, ex[i].Cycles, ex[i].EnergyPJ)
		}
	}
}
