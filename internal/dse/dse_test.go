package dse

import (
	"reflect"
	"testing"

	"secureloop/internal/arch"
	"secureloop/internal/core"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/workload"
)

func TestMarkParetoSimple(t *testing.T) {
	pts := []DesignPoint{
		{AreaMM2: 1.0, Cycles: 100}, // dominated by none: smallest area
		{AreaMM2: 2.0, Cycles: 50},  // front
		{AreaMM2: 2.5, Cycles: 60},  // dominated by (2.0, 50)
		{AreaMM2: 3.0, Cycles: 40},  // front
		{AreaMM2: 3.5, Cycles: 40},  // dominated (same cycles, more area)
	}
	MarkPareto(pts)
	want := []bool{true, true, false, true, false}
	for i, w := range want {
		if pts[i].Pareto != w {
			t.Errorf("point %d: pareto = %v, want %v", i, pts[i].Pareto, w)
		}
	}
}

func TestParetoFrontSortedAndMinimal(t *testing.T) {
	pts := []DesignPoint{
		{AreaMM2: 3, Cycles: 10},
		{AreaMM2: 1, Cycles: 30},
		{AreaMM2: 2, Cycles: 20},
		{AreaMM2: 2.5, Cycles: 25}, // dominated
	}
	front := ParetoFront(pts)
	if len(front) != 3 {
		t.Fatalf("front size %d", len(front))
	}
	for i := 1; i < len(front); i++ {
		if front[i].AreaMM2 < front[i-1].AreaMM2 {
			t.Error("front not sorted by area")
		}
		if front[i].Cycles >= front[i-1].Cycles {
			t.Error("front cycles not strictly decreasing")
		}
	}
}

func TestSlowdownAndLabel(t *testing.T) {
	p := DesignPoint{
		Spec:           arch.Base(),
		Crypto:         cryptoengine.Config{Engine: cryptoengine.Parallel(), CountPerDatatype: 2},
		Cycles:         200,
		UnsecureCycles: 100,
	}
	if p.Slowdown() != 2 {
		t.Errorf("slowdown = %g", p.Slowdown())
	}
	if p.Label() != "pe14x12/glb131kB/parallel x 2" {
		t.Errorf("label = %q", p.Label())
	}
	if (DesignPoint{}).Slowdown() != 0 {
		t.Error("zero-baseline slowdown")
	}
}

func TestFigure16Space(t *testing.T) {
	specs, cryptos := Figure16Space(arch.Base())
	if len(specs) != 9 {
		t.Errorf("%d specs, want 9 (3 PE arrays x 3 buffers)", len(specs))
	}
	if len(cryptos) != 3 {
		t.Errorf("%d crypto configs, want 3", len(cryptos))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate spec name %s", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestEvaluateOnePoint(t *testing.T) {
	if testing.Short() {
		t.Skip("scheduling run")
	}
	net := workload.AlexNet()
	dp, err := Evaluate(net, arch.Base(),
		cryptoengine.Config{Engine: cryptoengine.Pipelined(), CountPerDatatype: 1},
		core.CryptOptSingle)
	if err != nil {
		t.Fatal(err)
	}
	if dp.AreaMM2 <= 0 || dp.Cycles <= 0 || dp.UnsecureCycles <= 0 {
		t.Errorf("bad design point: %+v", dp)
	}
	if dp.Slowdown() < 1 {
		t.Errorf("secure design faster than unsecure: %g", dp.Slowdown())
	}
	if dp.CryptoAreaOverheadPct < 30 || dp.CryptoAreaOverheadPct > 40 {
		t.Errorf("pipelined overhead %g%%, want ~35%%", dp.CryptoAreaOverheadPct)
	}
}

// TestSweepParallelMatchesSerial: the pooled sweep must return exactly the
// serial cross-product evaluation — same points, same order, including the
// per-spec memoised unsecure baselines (which must not depend on which
// crypto config triggered their computation).
func TestSweepParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("scheduling runs")
	}
	net := workload.AlexNet()
	specs := []arch.Spec{arch.Base(), arch.Base().WithGlobalBuffer(32 * 1024)}
	cryptos := []cryptoengine.Config{
		{Engine: cryptoengine.Serial(), CountPerDatatype: 8},
		{Engine: cryptoengine.Pipelined(), CountPerDatatype: 1},
	}
	for _, alg := range []core.Algorithm{core.CryptOptSingle, core.CryptOptCross} {
		parallel, err := Sweep(net, specs, cryptos, alg)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := sweepSerial(net, specs, cryptos, alg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(parallel, serial) {
			t.Errorf("%v: parallel sweep diverged from serial:\nparallel: %+v\nserial:   %+v",
				alg, parallel, serial)
		}
	}
}

func TestSweepEmptySpace(t *testing.T) {
	if pts, err := Sweep(workload.AlexNet(), nil, nil, core.CryptOptSingle); err != nil || pts != nil {
		t.Errorf("empty sweep = (%v, %v)", pts, err)
	}
}

func TestSweepSmallSpace(t *testing.T) {
	if testing.Short() {
		t.Skip("scheduling runs")
	}
	net := workload.AlexNet()
	specs := []arch.Spec{arch.Base(), arch.Base().WithGlobalBuffer(32 * 1024)}
	cryptos := []cryptoengine.Config{
		{Engine: cryptoengine.Parallel(), CountPerDatatype: 1},
		{Engine: cryptoengine.Pipelined(), CountPerDatatype: 1},
	}
	points, err := Sweep(net, specs, cryptos, core.CryptOptSingle)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("%d points", len(points))
	}
	MarkPareto(points)
	var onFront int
	for _, p := range points {
		if p.Cycles <= 0 || p.AreaMM2 <= 0 {
			t.Errorf("bad point %+v", p)
		}
		if p.Pareto {
			onFront++
		}
	}
	if onFront == 0 {
		t.Error("no Pareto points")
	}
	// The pipelined design must be at least as fast as the parallel one on
	// the same architecture.
	if points[0].Cycles < points[1].Cycles {
		t.Error("parallel engine outran pipelined")
	}
}
