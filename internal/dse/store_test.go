package dse

import (
	"context"
	"testing"

	"secureloop/internal/arch"
	"secureloop/internal/authblock"
	"secureloop/internal/core"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/mapper"
	"secureloop/internal/store"
	"secureloop/internal/workload"
)

// resetInMemoryCaches drops every process-wide memo, so a subsequent run can
// be answered only by recomputation or the persistent store — the moral
// equivalent of starting a fresh process against the same store directory.
func resetInMemoryCaches() {
	mapper.ResetCache()
	mapper.ResetWarmStore()
	mapper.ResetGuidedStats()
	authblock.ResetCaches()
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func closeStore(t *testing.T, st *store.Store) {
	t.Helper()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// runStoreSweep runs a serial guided sweep against the given store.
func runStoreSweep(t *testing.T, net *workload.Network, specs []arch.Spec, cryptos []cryptoengine.Config, st *store.Store, iters int) []DesignPoint {
	t.Helper()
	pts, err := SweepOptsCtx(context.Background(), net, specs, cryptos, core.CryptOptSingle, Options{
		AnnealIterations: iters,
		Mapper:           mapper.Options{Mode: mapper.Guided},
		MaxParallel:      1,
		Store:            st,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

// TestSweepStoreWarmEquivalence is the acceptance test of the persistent
// tier: across a workload x architecture x crypto matrix, a warm sweep
// reading the store a cold sweep wrote — with every in-memory cache dropped
// in between — returns byte-identical design points while hitting the store.
func TestSweepStoreWarmEquivalence(t *testing.T) {
	specs, cryptos := warmSweepSpace()
	for _, net := range []*workload.Network{workload.AlexNet(), workload.ResNet18()} {
		t.Run(net.Name, func(t *testing.T) {
			sp, cr := specs, cryptos
			if net.NumLayers() > 10 {
				// The deeper network pins cross-workload coverage; one design
				// point keeps the matrix fast.
				sp, cr = sp[:1], cr[:1]
			}
			dir := t.TempDir()
			resetInMemoryCaches()
			cold := openStore(t, dir)
			coldPts := runStoreSweep(t, net, sp, cr, cold, 40)
			closeStore(t, cold)

			resetInMemoryCaches()
			warm := openStore(t, dir)
			warmPts := runStoreSweep(t, net, sp, cr, warm, 40)
			hits := warm.Stats().Hits
			closeStore(t, warm)
			resetInMemoryCaches()

			if hits == 0 {
				t.Error("warm sweep never hit the persistent store")
			}
			if len(warmPts) != len(coldPts) {
				t.Fatalf("point counts differ: warm %d, cold %d", len(warmPts), len(coldPts))
			}
			for i := range warmPts {
				// DesignPoint is comparable; == is full byte identity.
				if warmPts[i] != coldPts[i] {
					t.Errorf("point %s: warm %+v != cold %+v", coldPts[i].Label(), warmPts[i], coldPts[i])
				}
			}
		})
	}
}

// TestSweepStoreWarmFewerEvals pins the work-avoidance claim: a warm sweep
// answered by the per-layer store tiers performs at least 10x fewer mapper
// tiling evaluations and AuthBlock optimal searches than the cold sweep that
// populated the store. The warm sweep uses a different annealing iteration
// count so the whole-network tier misses and the mapper and AuthBlock tiers
// must answer — exercising the layered fallback, not just the top tier.
func TestSweepStoreWarmFewerEvals(t *testing.T) {
	specs, cryptos := warmSweepSpace()
	dir := t.TempDir()
	net := workload.AlexNet()

	resetInMemoryCaches()
	cold := openStore(t, dir)
	runStoreSweep(t, net, specs, cryptos, cold, 40)
	coldEvals := mapper.GuidedSearchStats().Evaluated
	coldRuns := authblock.OptimalRuns()
	closeStore(t, cold)
	if coldEvals == 0 || coldRuns == 0 {
		t.Fatalf("cold sweep did no work (evaluated %d, optimal runs %d)", coldEvals, coldRuns)
	}

	resetInMemoryCaches()
	warm := openStore(t, dir)
	runStoreSweep(t, net, specs, cryptos, warm, 50)
	warmEvals := mapper.GuidedSearchStats().Evaluated
	warmRuns := authblock.OptimalRuns()
	closeStore(t, warm)
	resetInMemoryCaches()

	if warmEvals*10 > coldEvals {
		t.Errorf("warm sweep evaluated %d tilings, cold %d — want >= 10x fewer", warmEvals, coldEvals)
	}
	if warmRuns*10 > coldRuns {
		t.Errorf("warm sweep ran %d optimal searches, cold %d — want >= 10x fewer", warmRuns, coldRuns)
	}
	t.Logf("evaluations: cold %d, warm %d; optimal runs: cold %d, warm %d",
		coldEvals, warmEvals, coldRuns, warmRuns)
}

// BenchmarkSweepStoreCold is the cold baseline for BenchmarkSweepStoreWarm:
// the identical sweep against a fresh, empty store each iteration with all
// in-memory caches dropped, so every schedule is computed from scratch and
// written behind. scripts/bench.sh reports the warm sweep's speedup over
// this number.
func BenchmarkSweepStoreCold(b *testing.B) {
	net := workload.AlexNet()
	specs, cryptos := warmSweepSpace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		resetInMemoryCaches()
		st, err := store.Open(b.TempDir(), store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		_, err = SweepOptsCtx(context.Background(), net, specs, cryptos, core.CryptOptSingle, Options{
			AnnealIterations: 40,
			Mapper:           mapper.Options{Mode: mapper.Guided},
			MaxParallel:      1,
			Store:            st,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.StopTimer()
	resetInMemoryCaches()
}

// BenchmarkSweepStoreWarm measures a warm sweep: every schedule is answered
// by the store written during setup, with all in-memory caches dropped
// before each iteration so the disk tier does the work. The cold-evals and
// warm-evals/op metrics count mapper tiling evaluations plus AuthBlock
// optimal searches; scripts/bench.sh derives the eval-reduction ratio from
// them for BENCH_PR7.json.
func BenchmarkSweepStoreWarm(b *testing.B) {
	dir := b.TempDir()
	net := workload.AlexNet()
	specs, cryptos := warmSweepSpace()
	run := func(st *store.Store) {
		_, err := SweepOptsCtx(context.Background(), net, specs, cryptos, core.CryptOptSingle, Options{
			AnnealIterations: 40,
			Mapper:           mapper.Options{Mode: mapper.Guided},
			MaxParallel:      1,
			Store:            st,
		})
		if err != nil {
			b.Fatal(err)
		}
	}

	resetInMemoryCaches()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		if cerr := st.Close(); cerr != nil {
			b.Fatal(cerr)
		}
	}()
	run(st)
	coldEvals := mapper.GuidedSearchStats().Evaluated + authblock.OptimalRuns()

	var warmEvals int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		resetInMemoryCaches()
		b.StartTimer()
		run(st)
		warmEvals += mapper.GuidedSearchStats().Evaluated + authblock.OptimalRuns()
	}
	b.StopTimer()
	b.ReportMetric(float64(coldEvals), "cold-evals")
	b.ReportMetric(float64(warmEvals)/float64(b.N), "warm-evals/op")
	resetInMemoryCaches()
}
