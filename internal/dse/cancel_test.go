package dse

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"secureloop/internal/arch"
	"secureloop/internal/core"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/obs"
	"secureloop/internal/workload"
)

// sweepObserver counts completed design points and can cancel at sweep
// start; methods are called from concurrent workers.
type sweepObserver struct {
	obs.Nop
	points       atomic.Int64
	onStageStart func(obs.StageEvent)
}

func (s *sweepObserver) StageStart(e obs.StageEvent) {
	if s.onStageStart != nil {
		s.onStageStart(e)
	}
}

func (s *sweepObserver) LayerScheduled(obs.LayerEvent) { s.points.Add(1) }

func cancelSweepSpace() ([]arch.Spec, []cryptoengine.Config) {
	base := arch.Base()
	specs := []arch.Spec{base, base.WithPEs(14, 24)}
	cryptos := []cryptoengine.Config{{Engine: cryptoengine.Parallel(), CountPerDatatype: 1}}
	return specs, cryptos
}

func TestSweepCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	specs, cryptos := cancelSweepSpace()
	ob := &sweepObserver{}
	points, err := SweepOptsCtx(ctx, workload.AlexNet(), specs, cryptos, core.CryptOptCross,
		Options{AnnealIterations: 20, Observe: ob})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), string(obs.StageSweep)) {
		t.Errorf("error does not name the sweep stage: %v", err)
	}
	if points != nil {
		t.Errorf("pre-cancelled sweep returned %d points", len(points))
	}
	if n := ob.points.Load(); n != 0 {
		t.Errorf("pre-cancelled sweep evaluated %d design points", n)
	}
}

func TestSweepCancelMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	specs, cryptos := cancelSweepSpace()
	ob := &sweepObserver{}
	// Cancel as the sweep opens: the launch loop must not start a single
	// design point.
	ob.onStageStart = func(e obs.StageEvent) {
		if e.Stage == obs.StageSweep {
			cancel()
		}
	}
	points, err := SweepOptsCtx(ctx, workload.AlexNet(), specs, cryptos, core.CryptOptCross,
		Options{AnnealIterations: 20, Observe: ob})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if points != nil {
		t.Error("cancelled sweep returned points")
	}
	if n := ob.points.Load(); n != 0 {
		t.Errorf("%d design points completed after cancellation at sweep start", n)
	}
}

func TestEvaluateCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	crypto := cryptoengine.Config{Engine: cryptoengine.Parallel(), CountPerDatatype: 1}
	_, err := EvaluateCtx(ctx, workload.AlexNet(), arch.Base(), crypto, core.CryptOptCross)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
