// Pareto-front machinery: the batch MarkPareto/ParetoFront post-processing
// of a finished sweep, and the streaming frontTracker the coordinator's
// dominance pruning (coordinator.go) checks design-point lower bounds
// against while the sweep is still running.

package dse

import (
	"sort"
	"sync"
)

// MarkPareto sets Pareto on every point not dominated in (AreaMM2, Cycles):
// a point is on the front if no other point has both smaller-or-equal area
// and smaller-or-equal latency (with at least one strict). Points with
// exactly equal area and cycles do not dominate each other, so full ties
// are all marked — the marking is a pure function of the multiset of
// points, independent of their order.
func MarkPareto(points []DesignPoint) {
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		pa, pb := points[idx[a]], points[idx[b]]
		//securelint:ignore floateq lexicographic sort key over stored area values; ties fall through to the cycle comparison, so exact equality is the intended semantics and no computed noise is involved
		if pa.AreaMM2 != pb.AreaMM2 {
			return pa.AreaMM2 < pb.AreaMM2
		}
		return pa.Cycles < pb.Cycles
	})
	// Walk equal-area groups in ascending area order. Within a group only
	// the minimum-cycle points can survive (a cheaper same-area point
	// dominates strictly on cycles); they survive iff no strictly smaller
	// area has already reached their cycle count (dominance with area
	// strict). best tracks the minimum cycles over all strictly smaller
	// areas.
	best := int64(1<<62 - 1)
	for g := 0; g < len(idx); {
		h := g + 1
		//securelint:ignore floateq equal-area group boundary over stored values, matching the sort key above
		for h < len(idx) && points[idx[h]].AreaMM2 == points[idx[g]].AreaMM2 {
			h++
		}
		groupMin := points[idx[g]].Cycles // sorted: first of the group is minimal
		for _, i := range idx[g:h] {
			p := &points[i]
			p.Pareto = p.Cycles == groupMin && groupMin < best
		}
		if groupMin < best {
			best = groupMin
		}
		g = h
	}
}

// ParetoFront returns the Pareto-optimal points sorted by ascending area
// (full-tie duplicates preserve their input order).
func ParetoFront(points []DesignPoint) []DesignPoint {
	cp := append([]DesignPoint(nil), points...)
	MarkPareto(cp)
	var out []DesignPoint
	for _, p := range cp {
		if p.Pareto {
			out = append(out, p)
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		//securelint:ignore floateq lexicographic sort key over stored area values, same semantics as MarkPareto's
		if out[a].AreaMM2 != out[b].AreaMM2 {
			return out[a].AreaMM2 < out[b].AreaMM2
		}
		return out[a].Cycles < out[b].Cycles
	})
	return out
}

// frontPoint is one evaluated (area, cycles) pair on the streaming front.
type frontPoint struct {
	area   float64
	cycles int64
}

// boundVerdict is frontTracker.check's disposition for one design point.
type boundVerdict int

const (
	// boundEvaluate: the bound does not prove dominance; run the full
	// evaluation.
	boundEvaluate boundVerdict = iota
	// boundDefer: the bound is dominated only non-strictly (an exact tie) or
	// sits inside the configured slack band; decide in the final exact pass
	// against the finished front.
	boundDefer
	// boundPrune: some already-evaluated point strictly dominates the bound,
	// so it strictly dominates the point's true cost too — skip it for good.
	boundPrune
)

// frontTracker is the coordinator's streaming Pareto front: the lower-left
// staircase of every exactly-evaluated point so far, shared by all workers
// under a mutex. It answers dominance queries against design-point lower
// bounds.
//
// Pruning against it is sound regardless of insertion order or timing: a
// staircase entry is an exact evaluation, so if it strictly dominates
// (area, lb) it strictly dominates (area, trueCycles >= lb), and removing a
// dominated point from a point set never changes which other points are
// Pareto-optimal. Races only make pruning weaker (a front not yet tightened
// lets more points through to full evaluation), never wrong.
type frontTracker struct {
	mu sync.Mutex
	// stair is sorted by strictly ascending area with strictly decreasing
	// cycles; entries weakly dominated by another evaluation are dropped, as
	// they add no pruning power. // guarded by mu
	stair []frontPoint
}

// add folds one exact evaluation into the staircase.
func (t *frontTracker) add(area float64, cycles int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.stair)
	hi := sort.Search(n, func(k int) bool { return t.stair[k].area > area })
	if hi > 0 && t.stair[hi-1].cycles <= cycles {
		// Weakly dominated by an existing entry (area <=, cycles <=): every
		// bound it could prune, that entry already prunes.
		return
	}
	lo := hi
	//securelint:ignore floateq exact equal-area replacement of a worse same-area entry; both values are stored evaluation results, not computed noise
	if hi > 0 && t.stair[hi-1].area == area {
		lo = hi - 1
	}
	for hi < n && t.stair[hi].cycles >= cycles {
		hi++ // larger area, >= cycles: weakly dominated by the new entry
	}
	t.stair = append(t.stair[:lo], append([]frontPoint{{area: area, cycles: cycles}}, t.stair[hi:]...)...)
}

// check decides a design point's fate from its exact area and cycle lower
// bound. slack >= 0 widens the defer band: a bound within (1+slack)x of the
// dominating cycles is deferred to the exact pass instead of pruned, which
// only ever converts prunes into evaluations.
func (t *frontTracker) check(area float64, lb int64, slack float64) boundVerdict {
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := sort.Search(len(t.stair), func(k int) bool { return t.stair[k].area > area })
	if idx == 0 {
		return boundEvaluate // nothing evaluated at this area or below
	}
	q := t.stair[idx-1] // minimum cycles among evaluated areas <= area
	if q.cycles > lb {
		return boundEvaluate
	}
	// q weakly dominates the bound. Prune only on strict dominance: a full
	// tie in both coordinates would mark both points Pareto, so the tied
	// point must survive to the exact pass.
	if q.cycles == lb && !(q.area < area) {
		return boundDefer
	}
	if slack > 0 && float64(lb) <= float64(q.cycles)*(1+slack) {
		return boundDefer
	}
	return boundPrune
}

// snapshot returns a copy of the staircase (tests and the exact pass).
func (t *frontTracker) snapshot() []frontPoint {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]frontPoint(nil), t.stair...)
}
