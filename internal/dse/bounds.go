// The coordinator's cheap pre-pass: for every design point, the exact die
// area and a sound lower bound on the scheduled workload cycles, computed
// without running the full scheduler — no tiling search, no AuthBlock
// assignment, no annealing. Area reuses the accelergy model expression of
// evaluateWithBaseline verbatim, so it is byte-identical to the evaluated
// point's. The cycle bound combines the roofline compute roof with the
// mapper's per-layer search floor (mapper.SearchLowerBound, built from the
// guided search's per-dimension traffic/compute tables); DESIGN.md §14
// gives the soundness argument.

package dse

import (
	"secureloop/internal/accelergy"
	"secureloop/internal/arch"
	"secureloop/internal/core"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/mapper"
	"secureloop/internal/obs"
	"secureloop/internal/roofline"
	"secureloop/internal/workload"
)

// PointBound is the pre-pass estimate for one design point: the exact area
// (identical to the evaluated DesignPoint's AreaMM2) and a sound lower
// bound on the scheduled total cycles. CycleLB == 0 means "no usable
// bound" — such a point is never pruned.
type PointBound struct {
	AreaMM2 float64
	CycleLB int64
}

// pointArea is the exact die area of a design point — the same accelergy
// expression evaluateWithBaseline stores, so a bound-only point and an
// evaluated point report bit-identical areas.
func pointArea(spec arch.Spec, crypto cryptoengine.Config) float64 {
	return accelergy.TotalAreaMM2(spec.NumPEs(), spec.GlobalBufferBytes, crypto.TotalAreaKGates())
}

// effectiveBW replicates ScheduleNetworkCtx's step-1 effective-bandwidth
// derivation: DRAM bandwidth for the unsecure algorithm, min(DRAM, crypto
// aggregate) otherwise. The cycle bound depends on the crypto config only
// through this number, which is what makes bounds memoisable per
// (spec, effBW) pair.
func effectiveBW(spec arch.Spec, crypto cryptoengine.Config, alg core.Algorithm) float64 {
	if alg == core.Unsecure {
		return float64(spec.DRAM.BytesPerCycle)
	}
	return crypto.EffectiveBytesPerCycle(spec.DRAM.BytesPerCycle)
}

// networkCycleLB returns a sound lower bound on Total.Cycles of any
// schedule of net on the design (per-layer Stats.Cycles sum over layers;
// each layer's Stats.Cycles is bounded below by its mapper search floor and
// by the roofline compute roof). It returns 0 — never prune — when the
// bound arithmetic panics on a pathological layer shape (the mapper's
// checked multiplies), mirroring how the full search surfaces such layers
// as per-point errors rather than process deaths.
func networkCycleLB(net *workload.Network, spec arch.Spec, crypto cryptoengine.Config, alg core.Algorithm) int64 {
	var total int64
	err := obs.Guard(func() error {
		// Compute roof in MACs/cycle, via the roofline model so the bound
		// and Figure 12 share one definition of the roof.
		rl := roofline.FromSecureArch(&spec, crypto)
		peakMACs := rl.PeakOpsPerSec / spec.ClockHz
		effBW := effectiveBW(spec, crypto, alg)
		for i := range net.Layers {
			l := &net.Layers[i]
			lb := mapper.SearchLowerBound(mapper.Request{
				Layer: l,
				PEsX:  spec.PEsX, PEsY: spec.PEsY,
				GLBBits: spec.GlobalBufferBits(), RFBits: spec.RegFileBits(),
				EffectiveBytesPerCycle: effBW,
				TopK:                   1,
			})
			// Roofline compute roof: any mapping's temporal trip count is at
			// least MACs over the PE count (truncated, so rounding can only
			// weaken the bound).
			if peakMACs > 0 {
				if computeLB := int64(float64(l.MACs()) / peakMACs); computeLB > lb {
					lb = computeLB
				}
			}
			total = addSat64(total, lb)
		}
		return nil
	})
	if err != nil {
		return 0
	}
	return total
}

// addSat64 adds non-negative cycle counts, saturating at MaxInt64 instead
// of wrapping (a wrapped bound could over-prune; a saturated one cannot,
// since any schedule reaching it would overflow the scheduler's own checked
// arithmetic first).
func addSat64(a, b int64) int64 {
	if s := a + b; s >= a {
		return s
	}
	return 1<<63 - 1
}
