package dse

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"secureloop/internal/arch"
	"secureloop/internal/core"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/mapper"
	"secureloop/internal/obs"
	"secureloop/internal/workload"
)

// pruneSweepSpace is a space the dominance pruner has traction on: the area
// axis spreads widely (PE and GLB sizes) while the serial x1 crypto config
// is so bandwidth-starved that big-area serial points are provably worse
// than already-evaluated small fast ones.
func pruneSweepSpace() ([]arch.Spec, []cryptoengine.Config) {
	base := arch.Base()
	specs := []arch.Spec{
		base.WithGlobalBuffer(16 * 1024),
		base.WithGlobalBuffer(131 * 1024),
		base.WithPEs(28, 24).WithGlobalBuffer(131 * 1024),
	}
	cryptos := []cryptoengine.Config{
		{Engine: cryptoengine.Parallel(), CountPerDatatype: 1},
		{Engine: cryptoengine.Serial(), CountPerDatatype: 1},
	}
	return specs, cryptos
}

// coordOpts are fast, deterministic sweep options shared by the
// coordinator tests.
func coordOpts() Options {
	return Options{
		AnnealIterations: 20,
		Mapper:           mapper.Options{Mode: mapper.Guided},
	}
}

// TestCoordinatorFrontMatchesUnpruned is the tentpole acceptance test: the
// pruned, sharded coordinator sweep must return a Pareto front
// byte-identical to ParetoFront over the full unpruned sweep — and on the
// prune-friendly space it must actually skip work.
func TestCoordinatorFrontMatchesUnpruned(t *testing.T) {
	cases := []struct {
		name      string
		net       *workload.Network
		wantPrune bool
	}{
		{"alexnet", workload.AlexNet(), true},
		{"resnet18", workload.ResNet18(), false}, // pruning is workload-dependent; identity must hold regardless
	}
	specs, cryptos := pruneSweepSpace()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			all, err := SweepOptsCtx(context.Background(), tc.net, specs, cryptos,
				core.CryptOptSingle, coordOpts())
			if err != nil {
				t.Fatal(err)
			}
			want := ParetoFront(all)

			opt := coordOpts()
			opt.Prune = true
			opt.Shards = 3
			res, err := SweepFrontCtx(context.Background(), tc.net, specs, cryptos,
				core.CryptOptSingle, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Front, want) {
				t.Fatalf("pruned front differs from unpruned:\n got %+v\nwant %+v", res.Front, want)
			}
			s := res.Stats
			t.Logf("%s: %d points, %d full evals, %d pruned, %d deferred, %d re-evaluated",
				tc.name, s.Points, s.FullEvals, s.Pruned, s.Deferred, s.Reevaluated)
			if s.Points != len(specs)*len(cryptos) || s.Bounded != s.Points {
				t.Errorf("accounting: %+v", s)
			}
			if s.FullEvals+s.Pruned != s.Points {
				t.Errorf("evals %d + pruned %d != points %d", s.FullEvals, s.Pruned, s.Points)
			}
			if tc.wantPrune && s.Pruned == 0 {
				t.Errorf("prune-friendly space pruned nothing")
			}
		})
	}
}

// TestCoordinatorShardInvariance: the front is byte-identical across shard
// counts and worker-pool widths — sharding shapes dispatch, never results.
func TestCoordinatorShardInvariance(t *testing.T) {
	specs, cryptos := pruneSweepSpace()
	net := workload.AlexNet()
	var want SweepFrontResult
	configs := []struct{ shards, workers int }{
		{1, 1}, // canonical serial reference
		{3, 4},
		{7, 2},
		{100, 4}, // more shards than points: clamped
	}
	for i, cfg := range configs {
		opt := coordOpts()
		opt.Prune = true
		opt.Shards = cfg.shards
		opt.MaxParallel = cfg.workers
		res, err := SweepFrontCtx(context.Background(), net, specs, cryptos, core.CryptOptSingle, opt)
		if err != nil {
			t.Fatalf("shards=%d workers=%d: %v", cfg.shards, cfg.workers, err)
		}
		if i == 0 {
			want = res
			continue
		}
		if !reflect.DeepEqual(res.Front, want.Front) {
			t.Errorf("shards=%d workers=%d: front differs from serial reference", cfg.shards, cfg.workers)
		}
	}
}

// TestCoordinatorUnprunedMode: with Prune off the coordinator evaluates
// every point and still returns the reference front.
func TestCoordinatorUnprunedMode(t *testing.T) {
	specs, cryptos := pruneSweepSpace()
	specs = specs[:2]
	net := workload.AlexNet()
	all, err := SweepOptsCtx(context.Background(), net, specs, cryptos, core.CryptOptSingle, coordOpts())
	if err != nil {
		t.Fatal(err)
	}
	opt := coordOpts()
	opt.Shards = 2
	res, err := SweepFrontCtx(context.Background(), net, specs, cryptos, core.CryptOptSingle, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Front, ParetoFront(all)) {
		t.Fatal("unpruned coordinator front differs from reference")
	}
	if res.Stats.FullEvals != len(specs)*len(cryptos) || res.Stats.Pruned != 0 || res.Stats.Bounded != 0 {
		t.Errorf("unpruned accounting: %+v", res.Stats)
	}
}

// flakyExecutor fails each shard's first dispatch with a deadline expiry
// after resolving only its first job — the straggler shape the coordinator
// must recover from by re-dispatching the remainder.
type flakyExecutor struct {
	inner LocalExecutor
	mu    sync.Mutex
	seen  map[int]bool // guarded by mu
}

func (f *flakyExecutor) ExecuteShard(ctx context.Context, shard Shard, eval func(ctx context.Context, job PointJob) error) error {
	f.mu.Lock()
	first := !f.seen[shard.ID]
	f.seen[shard.ID] = true
	f.mu.Unlock()
	if first {
		if len(shard.Jobs) > 0 {
			if err := eval(ctx, shard.Jobs[0]); err != nil {
				return err
			}
		}
		return context.DeadlineExceeded
	}
	return f.inner.ExecuteShard(ctx, shard, eval)
}

// TestCoordinatorShardRetry: a straggling shard's unresolved jobs are
// re-dispatched and the sweep still completes with the reference front.
func TestCoordinatorShardRetry(t *testing.T) {
	specs, cryptos := pruneSweepSpace()
	specs = specs[:2]
	net := workload.AlexNet()
	all, err := SweepOptsCtx(context.Background(), net, specs, cryptos, core.CryptOptSingle, coordOpts())
	if err != nil {
		t.Fatal(err)
	}
	opt := coordOpts()
	opt.Prune = true
	opt.Shards = 2
	opt.Executor = &flakyExecutor{seen: map[int]bool{}}
	res, err := SweepFrontCtx(context.Background(), net, specs, cryptos, core.CryptOptSingle, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Front, ParetoFront(all)) {
		t.Fatal("front after shard retry differs from reference")
	}
	if res.Stats.Redispatches == 0 {
		t.Error("flaky shards recorded no re-dispatches")
	}
}

// stuckExecutor claims success without resolving anything; the coordinator
// must fail loudly instead of spinning.
type stuckExecutor struct{}

func (stuckExecutor) ExecuteShard(context.Context, Shard, func(context.Context, PointJob) error) error {
	return nil
}

func TestCoordinatorStuckExecutorFails(t *testing.T) {
	specs, cryptos := pruneSweepSpace()
	opt := coordOpts()
	opt.Executor = stuckExecutor{}
	_, err := SweepFrontCtx(context.Background(), workload.AlexNet(), specs[:1], cryptos[:1],
		core.CryptOptSingle, opt)
	if err == nil || !strings.Contains(err.Error(), "without resolving") {
		t.Fatalf("want a no-progress error, got %v", err)
	}
}

func TestCoordinatorCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	specs, cryptos := pruneSweepSpace()
	_, err := SweepFrontCtx(ctx, workload.AlexNet(), specs, cryptos, core.CryptOptSingle, coordOpts())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if !strings.Contains(err.Error(), string(obs.StageSweep)) {
		t.Errorf("error does not name the sweep stage: %v", err)
	}
}

func TestCoordinatorEmptySpace(t *testing.T) {
	res, err := SweepFrontCtx(context.Background(), workload.AlexNet(), nil, nil, core.CryptOptSingle, Options{})
	if err != nil || len(res.Front) != 0 {
		t.Fatalf("empty space: %v %v", res, err)
	}
}

// TestShardPartitionCanonical pins the sharding function: best-bound-first
// round-robin over (CycleLB, AreaMM2, Index), a pure function of the
// bounds.
func TestShardPartitionCanonical(t *testing.T) {
	mk := func(idx int, area float64, lb int64) PointJob {
		return PointJob{Index: idx, Bound: PointBound{AreaMM2: area, CycleLB: lb}}
	}
	jobs := []PointJob{
		mk(0, 3, 50), mk(1, 1, 10), mk(2, 2, 10), mk(3, 1, 99), mk(4, 1, 10),
	}
	c := &coordinator{opt: Options{Shards: 2}, jobs: jobs}
	got := c.makeShards()
	// Sorted order: 1 (lb10,a1), 4 (lb10,a1,idx4), 2 (lb10,a2), 0 (lb50), 3 (lb99);
	// round-robin over 2 shards.
	want := []Shard{
		{ID: 0, Jobs: []PointJob{jobs[1], jobs[2], jobs[3]}},
		{ID: 1, Jobs: []PointJob{jobs[4], jobs[0]}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("shards:\n got %+v\nwant %+v", got, want)
	}
	if again := c.makeShards(); !reflect.DeepEqual(again, got) {
		t.Fatal("sharding is not deterministic")
	}
	// Clamp: more shards than jobs.
	c2 := &coordinator{opt: Options{Shards: 10}, jobs: jobs[:2]}
	if got := c2.makeShards(); len(got) != 2 {
		t.Fatalf("shard clamp: %d shards for 2 jobs", len(got))
	}
}

// TestPruneBoundSound: the pre-pass bound is below the evaluated cycles and
// the pre-pass area is bit-identical to the evaluated area, across the
// sweep matrix — the pair of properties the pruning correctness argument
// needs.
func TestPruneBoundSound(t *testing.T) {
	specs, cryptos := pruneSweepSpace()
	net := workload.AlexNet()
	opt := coordOpts()
	for _, spec := range specs {
		for _, crypto := range cryptos {
			lb := networkCycleLB(net, spec, crypto, core.CryptOptSingle)
			area := pointArea(spec, crypto)
			base, err := unsecureCycles(context.Background(), net, spec, crypto, opt)
			if err != nil {
				t.Fatal(err)
			}
			dp, err := evaluateWithBaseline(context.Background(), net, spec, crypto,
				core.CryptOptSingle, base, opt)
			if err != nil {
				t.Fatal(err)
			}
			if lb > dp.Cycles {
				t.Errorf("%s: bound %d exceeds evaluated cycles %d", dp.Label(), lb, dp.Cycles)
			}
			if area != dp.AreaMM2 {
				t.Errorf("%s: pre-pass area %g != evaluated %g", dp.Label(), area, dp.AreaMM2)
			}
		}
	}
}

// sweepPointRecorder counts coordinator progress events and checks Done
// monotonicity across both event kinds.
type sweepPointRecorder struct {
	obs.Nop
	mu      sync.Mutex
	maxDone int // guarded by mu
	broke   bool
	skips   map[obs.SweepOutcome]int // guarded by mu
	final   int
}

func (r *sweepPointRecorder) observe(done int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if done < r.maxDone-1 {
		// Concurrent workers may deliver adjacent events out of order; a
		// drop of more than one step means the counter itself regressed.
		r.broke = true
	}
	if done > r.maxDone {
		r.maxDone = done
	}
	r.final = r.maxDone
}

func (r *sweepPointRecorder) LayerScheduled(e obs.LayerEvent) { r.observe(e.Done) }

func (r *sweepPointRecorder) SweepPoint(e obs.SweepPointEvent) {
	r.observe(e.Done)
	r.mu.Lock()
	r.skips[e.Outcome]++
	r.mu.Unlock()
}

// TestCoordinatorProgressEvents: every point ends in exactly one terminal
// event, skipped points surface as SweepPoint events, and the Done counter
// reaches Total.
func TestCoordinatorProgressEvents(t *testing.T) {
	specs, cryptos := pruneSweepSpace()
	net := workload.AlexNet()
	rec := &sweepPointRecorder{skips: map[obs.SweepOutcome]int{}}
	opt := coordOpts()
	opt.Prune = true
	opt.Shards = 2
	opt.MaxParallel = 1
	opt.Observe = rec
	res, err := SweepFrontCtx(context.Background(), net, specs, cryptos, core.CryptOptSingle, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rec.broke {
		t.Error("Done counter regressed")
	}
	if rec.final != res.Stats.Points {
		t.Errorf("final Done %d != Total %d", rec.final, res.Stats.Points)
	}
	if got := rec.skips[obs.SweepPruned]; got != res.Stats.Pruned {
		t.Errorf("pruned events %d != stats %d", got, res.Stats.Pruned)
	}
}
