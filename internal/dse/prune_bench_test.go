package dse

import (
	"context"
	"testing"

	"secureloop/internal/core"
	"secureloop/internal/mapper"
	"secureloop/internal/workload"
)

// pruneBenchOpts are the shared settings of the pruned-vs-unpruned cold
// sweep pair: serial and guided, so the two benchmarks differ only in the
// coordinator's dominance pruning.
func pruneBenchOpts() Options {
	return Options{
		AnnealIterations: 40,
		Mapper:           mapper.Options{Mode: mapper.Guided},
		MaxParallel:      1,
	}
}

// BenchmarkSweepColdUnpruned is the baseline: a cold sweep (all in-memory
// caches dropped per iteration) that fully evaluates every design point of
// the prune-friendly space.
func BenchmarkSweepColdUnpruned(b *testing.B) {
	net := workload.AlexNet()
	specs, cryptos := pruneSweepSpace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		resetInMemoryCaches()
		b.StartTimer()
		pts, err := SweepOptsCtx(context.Background(), net, specs, cryptos, core.CryptOptSingle, pruneBenchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != len(specs)*len(cryptos) {
			b.Fatalf("%d points", len(pts))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(specs)*len(cryptos)), "full-evals/op")
	b.ReportMetric(0, "pruned/op")
	resetInMemoryCaches()
}

// BenchmarkSweepColdPruned is the same cold sweep through the dominance-
// pruned coordinator: the bound pre-pass plus the streaming front skip the
// design points that cannot reach the Pareto front, so both wall time and
// full evaluations drop against BenchmarkSweepColdUnpruned while the
// returned front stays byte-identical (pinned by
// TestCoordinatorFrontMatchesUnpruned).
func BenchmarkSweepColdPruned(b *testing.B) {
	net := workload.AlexNet()
	specs, cryptos := pruneSweepSpace()
	var evals, pruned int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		resetInMemoryCaches()
		b.StartTimer()
		opt := pruneBenchOpts()
		opt.Prune = true
		opt.Shards = 2
		res, err := SweepFrontCtx(context.Background(), net, specs, cryptos, core.CryptOptSingle, opt)
		if err != nil {
			b.Fatal(err)
		}
		evals += int64(res.Stats.FullEvals)
		pruned += int64(res.Stats.Pruned)
	}
	b.StopTimer()
	b.ReportMetric(float64(evals)/float64(b.N), "full-evals/op")
	b.ReportMetric(float64(pruned)/float64(b.N), "pruned/op")
	resetInMemoryCaches()
}

// BenchmarkSweepBoundsPrepass isolates the coordinator's pre-pass: the
// per-point exact area and cycle lower bound over the same space, nothing
// else. Its ns/op is what every pruned sweep pays before any pruning can
// happen; scripts/bench.sh asserts it stays a small fraction of the cold
// sweep.
func BenchmarkSweepBoundsPrepass(b *testing.B) {
	net := workload.AlexNet()
	specs, cryptos := pruneSweepSpace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := &coordinator{
			net: net, specs: specs, cryptos: cryptos, alg: core.CryptOptSingle,
			opt:  Options{Prune: true},
			jobs: make([]PointJob, len(specs)*len(cryptos)),
		}
		c.computeBounds()
		for _, j := range c.jobs {
			if j.Bound.AreaMM2 <= 0 {
				b.Fatal("missing bound")
			}
		}
	}
}
