// Package dse drives the design-space exploration of Section 5.2-5.3:
// sweeps over cryptographic-engine configurations, PE-array shapes and
// global-buffer sizes, evaluation of each design point with the SecureLoop
// scheduler, and Pareto-front extraction for the area-vs-performance
// trade-off of Figure 16.
package dse

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"secureloop/internal/accelergy"
	"secureloop/internal/arch"
	"secureloop/internal/core"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/mapper"
	"secureloop/internal/num"
	"secureloop/internal/obs"
	"secureloop/internal/store"
	"secureloop/internal/workload"
)

// DesignPoint is one evaluated secure-accelerator design.
type DesignPoint struct {
	// Spec and Crypto identify the design.
	Spec   arch.Spec
	Crypto cryptoengine.Config
	// AreaMM2 is the total die area (accelerator + crypto engines).
	AreaMM2 float64
	// CryptoAreaOverheadPct is the Figure 13 gate-relative overhead.
	CryptoAreaOverheadPct float64
	// Cycles and EnergyPJ are the scheduled workload totals.
	Cycles   int64
	EnergyPJ float64
	// UnsecureCycles is the same architecture without crypto engines.
	UnsecureCycles int64
	// Pareto marks membership of the area/latency Pareto front (set by
	// MarkPareto).
	Pareto bool
}

// Slowdown returns cycles over the unsecure baseline's cycles.
func (d DesignPoint) Slowdown() float64 {
	if d.UnsecureCycles == 0 {
		return 0
	}
	return float64(d.Cycles) / float64(d.UnsecureCycles)
}

// Label names the design point compactly.
func (d DesignPoint) Label() string {
	return fmt.Sprintf("pe%dx%d/glb%dkB/%s",
		d.Spec.PEsX, d.Spec.PEsY, d.Spec.GlobalBufferBytes/1024, d.Crypto)
}

// Options tunes a sweep. The zero value uses the scheduler defaults.
type Options struct {
	// AnnealIterations overrides the cross-layer annealing iteration count
	// when positive.
	AnnealIterations int
	// Observe receives sweep-level progress events: one LayerScheduled per
	// completed design point under obs.StageSweep (nil means none). The
	// observer is deliberately not forwarded into the per-point schedulers —
	// dozens of concurrent runs interleaving their stage events would drown
	// the sweep-level signal.
	Observe obs.Observer
	// Mapper selects the per-layer loopnest search strategy for every design
	// point (zero value: exhaustive). Guided mode pays off most here: a sweep
	// revisits near-identical layer shapes at neighbouring design points, so
	// the warm-start store seeds almost every search after the first spec.
	Mapper mapper.Options
	// MaxParallel bounds the sweep's design-point worker pool (<= 0 means one
	// worker per available CPU). Set to 1 for a deterministic serial visit
	// order — results are identical either way, but warm-start hit counts
	// become reproducible.
	MaxParallel int
	// Store, when non-nil, persists every design point's schedules into the
	// content-addressed result store, so re-running the same sweep — in this
	// process or a later one — replays byte-identical results from disk
	// instead of recomputing the searches.
	Store *store.Store

	// The remaining fields tune the coordinator sweep (SweepFrontCtx) only;
	// SweepOptsCtx ignores them.

	// Shards partitions the sweep's design points into this many canonical
	// best-bound-first shards (<= 0 means 1). Sharding never changes the
	// result — it shapes dispatch for straggler re-dispatch and, through the
	// Executor seam, distribution.
	Shards int
	// Prune enables dominance pruning: design points whose pre-pass
	// (area, cycle lower bound) is strictly dominated by an already-evaluated
	// point are skipped without a full evaluation. The returned front is
	// byte-identical to the unpruned sweep's.
	Prune bool
	// BoundSlack widens the prune margin: a bound within (1+BoundSlack)x of
	// the dominating cycles is deferred to the final exact pass instead of
	// pruned. Zero is safe (exact ties are always deferred); positive values
	// only convert prunes into evaluations.
	BoundSlack float64
	// ShardTimeout, when positive, bounds each shard dispatch attempt; an
	// expired shard's unresolved jobs are re-dispatched (straggler recovery).
	// The final attempt always runs without a deadline.
	ShardTimeout time.Duration
	// MaxShardAttempts caps dispatch attempts per shard (<= 0 means 3).
	MaxShardAttempts int
	// Executor dispatches shard evaluations (nil: an in-process
	// LocalExecutor bounded by MaxParallel).
	Executor Executor
}

func newScheduler(spec arch.Spec, crypto cryptoengine.Config, opt Options) *core.Scheduler {
	s := core.New(spec, crypto)
	if opt.AnnealIterations > 0 {
		s.Anneal.Iterations = opt.AnnealIterations
	}
	s.Mapper = opt.Mapper
	s.Store = opt.Store
	return s
}

// unsecureCycles schedules the network on one architecture without crypto
// engines. The result does not depend on the crypto config (the Unsecure
// algorithm never reads it); one is still needed to build a valid
// scheduler.
func unsecureCycles(ctx context.Context, net *workload.Network, spec arch.Spec, crypto cryptoengine.Config, opt Options) (int64, error) {
	s := newScheduler(spec, crypto, opt)
	base, err := s.ScheduleNetworkCtx(ctx, net, core.Unsecure)
	if err != nil {
		return 0, err
	}
	return base.Total.Cycles, nil
}

// evaluateWithBaseline schedules the secure design and assembles the design
// point around a precomputed unsecure baseline.
func evaluateWithBaseline(ctx context.Context, net *workload.Network, spec arch.Spec, crypto cryptoengine.Config, alg core.Algorithm, baseCycles int64, opt Options) (DesignPoint, error) {
	s := newScheduler(spec, crypto, opt)
	res, err := s.ScheduleNetworkCtx(ctx, net, alg)
	if err != nil {
		return DesignPoint{}, err
	}
	return DesignPoint{
		Spec:   spec,
		Crypto: crypto,
		AreaMM2: accelergy.TotalAreaMM2(
			spec.NumPEs(), spec.GlobalBufferBytes, crypto.TotalAreaKGates()),
		CryptoAreaOverheadPct: accelergy.CryptoAreaOverheadPercent(
			crypto.TotalAreaKGates(), spec.NumPEs()),
		Cycles:         res.Total.Cycles,
		EnergyPJ:       res.Total.EnergyPJ,
		UnsecureCycles: baseCycles,
	}, nil
}

// Evaluate schedules the network on one design with the given algorithm and
// fills in area and performance. It is EvaluateCtx with a background
// context.
func Evaluate(net *workload.Network, spec arch.Spec, crypto cryptoengine.Config, alg core.Algorithm) (DesignPoint, error) {
	return EvaluateCtx(context.Background(), net, spec, crypto, alg)
}

// EvaluateCtx is the cancellable single-point evaluation; cancellation
// propagates into both the unsecure baseline and the secure schedule, and
// the error carries the stage the run reached.
func EvaluateCtx(ctx context.Context, net *workload.Network, spec arch.Spec, crypto cryptoengine.Config, alg core.Algorithm) (DesignPoint, error) {
	base, err := unsecureCycles(ctx, net, spec, crypto, Options{})
	if err != nil {
		return DesignPoint{}, err
	}
	return evaluateWithBaseline(ctx, net, spec, crypto, alg, base, Options{})
}

// Sweep evaluates the cross product of architectures and crypto configs on
// one workload. Design points are evaluated concurrently on a worker pool
// bounded by the CPU count; the unsecure baseline of each architecture is
// scheduled once per spec (not once per spec-crypto pair — a 3x redundancy
// in the Figure 16 space), and the output order is the deterministic
// specs-major cross product, identical to a serial evaluation.
func Sweep(net *workload.Network, specs []arch.Spec, cryptos []cryptoengine.Config, alg core.Algorithm) ([]DesignPoint, error) {
	return SweepOpts(net, specs, cryptos, alg, Options{})
}

// SweepOpts is Sweep with explicit tuning options; it is SweepOptsCtx with
// a background context.
func SweepOpts(net *workload.Network, specs []arch.Spec, cryptos []cryptoengine.Config, alg core.Algorithm, opt Options) ([]DesignPoint, error) {
	return SweepOptsCtx(context.Background(), net, specs, cryptos, alg, opt)
}

// SweepOptsCtx is the cancellable sweep: the worker pool stops launching
// design points on cancellation, in-flight points stop at their own stage
// boundaries, and the error is ctx.Err() wrapped with the sweep stage. A
// pre-cancelled context evaluates no design point. Worker bodies are
// guarded, so a panic evaluating one design fails the sweep, not the
// process.
func SweepOptsCtx(ctx context.Context, net *workload.Network, specs []arch.Spec, cryptos []cryptoengine.Config, alg core.Algorithm, opt Options) (points []DesignPoint, err error) {
	defer obs.CapturePanic(&err)
	jobs := len(specs) * len(cryptos)
	if jobs == 0 {
		return nil, nil
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("dse: %s: %w", obs.StageSweep, cerr)
	}
	ob := obs.OrNop(opt.Observe)
	ob.StageStart(obs.StageEvent{Stage: obs.StageSweep, Units: jobs})
	out := make([]DesignPoint, jobs)
	errs := make([]error, jobs)

	// baseline memoises the unsecure schedule per spec: whichever worker
	// needs it first computes it, the rest wait on the sync.Once.
	type baseline struct {
		once   sync.Once
		cycles int64
		err    error
	}
	bases := make([]baseline, len(specs))

	workers := opt.MaxParallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jobs {
		workers = jobs
	}
	var done atomic.Int64
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
launch:
	for si := range specs {
		for ci := range cryptos {
			if ctx.Err() != nil {
				break launch
			}
			idx := num.MulInt(si, len(cryptos)) + ci
			wg.Add(1)
			sem <- struct{}{}
			go func(si, ci, idx int) {
				defer wg.Done()
				defer func() { <-sem }()
				errs[idx] = obs.Guard(func() error {
					b := &bases[si]
					b.once.Do(func() {
						b.cycles, b.err = unsecureCycles(ctx, net, specs[si], cryptos[ci], opt)
					})
					if b.err != nil {
						return b.err
					}
					var perr error
					out[idx], perr = evaluateWithBaseline(ctx, net, specs[si], cryptos[ci], alg, b.cycles, opt)
					if perr != nil {
						return perr
					}
					ob.LayerScheduled(obs.LayerEvent{
						Stage: obs.StageSweep,
						Index: idx, Name: out[idx].Label(),
						Done: int(done.Add(1)), Total: jobs,
					})
					return nil
				})
			}(si, ci, idx)
		}
	}
	wg.Wait()
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("dse: %s: %w", obs.StageSweep, cerr)
	}
	for idx, perr := range errs {
		if perr != nil {
			// Report the first failing point in sweep order, as the serial
			// path did.
			si, ci := idx/len(cryptos), idx%len(cryptos)
			return nil, fmt.Errorf("dse: %s %s: %w", specs[si].Name, cryptos[ci], perr)
		}
	}
	ob.StageEnd(obs.StageEvent{Stage: obs.StageSweep, Units: jobs})
	return out, nil
}

// sweepSerial is the reference single-threaded sweep; the parallel Sweep
// must return exactly its output (asserted by tests).
func sweepSerial(net *workload.Network, specs []arch.Spec, cryptos []cryptoengine.Config, alg core.Algorithm) ([]DesignPoint, error) {
	var out []DesignPoint
	for _, spec := range specs {
		for _, c := range cryptos {
			dp, err := Evaluate(net, spec, c, alg)
			if err != nil {
				return nil, fmt.Errorf("dse: %s %s: %w", spec.Name, c, err)
			}
			out = append(out, dp)
		}
	}
	return out, nil
}

// Figure16Space returns the design space of the paper's final trade-off
// study: PE arrays {14x12, 14x24, 28x24} x GLB {16, 32, 131 kB} x crypto
// engines {pipelined x1, parallel x1, serial x30}.
func Figure16Space(base arch.Spec) ([]arch.Spec, []cryptoengine.Config) {
	var specs []arch.Spec
	for _, pe := range arch.PEConfigs() {
		for _, glb := range arch.BufferConfigs() {
			specs = append(specs, base.WithPEs(pe[0], pe[1]).WithGlobalBuffer(glb))
		}
	}
	cryptos := []cryptoengine.Config{
		{Engine: cryptoengine.Pipelined(), CountPerDatatype: 1},
		{Engine: cryptoengine.Parallel(), CountPerDatatype: 1},
		{Engine: cryptoengine.Serial(), CountPerDatatype: 30},
	}
	return specs, cryptos
}
