// Package dse drives the design-space exploration of Section 5.2-5.3:
// sweeps over cryptographic-engine configurations, PE-array shapes and
// global-buffer sizes, evaluation of each design point with the SecureLoop
// scheduler, and Pareto-front extraction for the area-vs-performance
// trade-off of Figure 16.
package dse

import (
	"fmt"
	"sort"

	"secureloop/internal/accelergy"
	"secureloop/internal/arch"
	"secureloop/internal/core"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/workload"
)

// DesignPoint is one evaluated secure-accelerator design.
type DesignPoint struct {
	// Spec and Crypto identify the design.
	Spec   arch.Spec
	Crypto cryptoengine.Config
	// AreaMM2 is the total die area (accelerator + crypto engines).
	AreaMM2 float64
	// CryptoAreaOverheadPct is the Figure 13 gate-relative overhead.
	CryptoAreaOverheadPct float64
	// Cycles and EnergyPJ are the scheduled workload totals.
	Cycles   int64
	EnergyPJ float64
	// UnsecureCycles is the same architecture without crypto engines.
	UnsecureCycles int64
	// Pareto marks membership of the area/latency Pareto front (set by
	// MarkPareto).
	Pareto bool
}

// Slowdown returns cycles over the unsecure baseline's cycles.
func (d DesignPoint) Slowdown() float64 {
	if d.UnsecureCycles == 0 {
		return 0
	}
	return float64(d.Cycles) / float64(d.UnsecureCycles)
}

// Label names the design point compactly.
func (d DesignPoint) Label() string {
	return fmt.Sprintf("pe%dx%d/glb%dkB/%s",
		d.Spec.PEsX, d.Spec.PEsY, d.Spec.GlobalBufferBytes/1024, d.Crypto)
}

// Evaluate schedules the network on one design with the given algorithm and
// fills in area and performance.
func Evaluate(net *workload.Network, spec arch.Spec, crypto cryptoengine.Config, alg core.Algorithm) (DesignPoint, error) {
	s := core.New(spec, crypto)
	res, err := s.ScheduleNetwork(net, alg)
	if err != nil {
		return DesignPoint{}, err
	}
	base, err := s.ScheduleNetwork(net, core.Unsecure)
	if err != nil {
		return DesignPoint{}, err
	}
	return DesignPoint{
		Spec:   spec,
		Crypto: crypto,
		AreaMM2: accelergy.TotalAreaMM2(
			spec.NumPEs(), spec.GlobalBufferBytes, crypto.TotalAreaKGates()),
		CryptoAreaOverheadPct: accelergy.CryptoAreaOverheadPercent(
			crypto.TotalAreaKGates(), spec.NumPEs()),
		Cycles:         res.Total.Cycles,
		EnergyPJ:       res.Total.EnergyPJ,
		UnsecureCycles: base.Total.Cycles,
	}, nil
}

// Sweep evaluates the cross product of architectures and crypto configs on
// one workload.
func Sweep(net *workload.Network, specs []arch.Spec, cryptos []cryptoengine.Config, alg core.Algorithm) ([]DesignPoint, error) {
	var out []DesignPoint
	for _, spec := range specs {
		for _, c := range cryptos {
			dp, err := Evaluate(net, spec, c, alg)
			if err != nil {
				return nil, fmt.Errorf("dse: %s %s: %w", spec.Name, c, err)
			}
			out = append(out, dp)
		}
	}
	return out, nil
}

// Figure16Space returns the design space of the paper's final trade-off
// study: PE arrays {14x12, 14x24, 28x24} x GLB {16, 32, 131 kB} x crypto
// engines {pipelined x1, parallel x1, serial x30}.
func Figure16Space(base arch.Spec) ([]arch.Spec, []cryptoengine.Config) {
	var specs []arch.Spec
	for _, pe := range arch.PEConfigs() {
		for _, glb := range arch.BufferConfigs() {
			specs = append(specs, base.WithPEs(pe[0], pe[1]).WithGlobalBuffer(glb))
		}
	}
	cryptos := []cryptoengine.Config{
		{Engine: cryptoengine.Pipelined(), CountPerDatatype: 1},
		{Engine: cryptoengine.Parallel(), CountPerDatatype: 1},
		{Engine: cryptoengine.Serial(), CountPerDatatype: 30},
	}
	return specs, cryptos
}

// MarkPareto sets Pareto on every point not dominated in (AreaMM2, Cycles):
// a point is on the front if no other point has both smaller-or-equal area
// and smaller-or-equal latency (with at least one strict).
func MarkPareto(points []DesignPoint) {
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := points[idx[a]], points[idx[b]]
		if pa.AreaMM2 != pb.AreaMM2 {
			return pa.AreaMM2 < pb.AreaMM2
		}
		return pa.Cycles < pb.Cycles
	})
	best := int64(1<<62 - 1)
	for _, i := range idx {
		p := &points[i]
		p.Pareto = p.Cycles < best
		if p.Cycles < best {
			best = p.Cycles
		}
	}
}

// ParetoFront returns the Pareto-optimal points sorted by area.
func ParetoFront(points []DesignPoint) []DesignPoint {
	cp := append([]DesignPoint(nil), points...)
	MarkPareto(cp)
	var out []DesignPoint
	for _, p := range cp {
		if p.Pareto {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].AreaMM2 < out[b].AreaMM2 })
	return out
}
