// Package aesgcm is a from-scratch implementation of AES-128 and the Galois
// Counter Mode (GCM) of operation — the authenticated-encryption protocol
// the paper's cryptographic engines implement (Section 2.2, Figure 2). It
// exists as the functional substrate behind the engine *timing* models in
// package cryptoengine: the trace-level simulator uses it to actually
// encrypt tiles, compute authentication tags over AuthBlocks and verify
// them, so the data path the scheduler reasons about is exercised for real.
//
// The implementation is deliberately structured like the hardware the paper
// models: an AES core generating one-time pads from encryption seeds
// (counter + address + IV), XOR combination with plaintext/ciphertext, and a
// GF(2^128) multiplier absorbing ciphertext blocks into the GHASH tag.
// Correctness is validated against the Go standard library in the tests.
package aesgcm

import (
	"encoding/binary"
	"errors"
)

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// KeySize is the AES-128 key size in bytes.
const KeySize = 16

const rounds = 10 // AES-128

// sbox and invSbox are generated at init time from the GF(2^8)
// multiplicative inverse followed by the AES affine transform, rather than
// being pasted as opaque tables.
var sbox, invSbox [256]byte

func init() {
	// Build log/antilog tables for GF(2^8) with the AES polynomial x^8 + x^4
	// + x^3 + x + 1 (0x11b), using generator 3.
	var exp [256]byte
	var log [256]byte
	x := byte(1)
	for i := 0; i < 255; i++ {
		exp[i] = x
		log[x] = byte(i)
		// multiply x by 3 = x*2 ^ x
		x2 := x << 1
		if x&0x80 != 0 {
			x2 ^= 0x1b
		}
		x = x2 ^ x
	}
	inv := func(b byte) byte {
		if b == 0 {
			return 0
		}
		// The multiplicative group has order 255, so b^-1 = g^(255 - log b)
		// with the exponent taken mod 255 (log 1 == 0 must map to exp[0]).
		return exp[(255-int(log[b]))%255]
	}
	rotl := func(b byte, n uint) byte { return b<<n | b>>(8-n) }
	for i := 0; i < 256; i++ {
		v := inv(byte(i))
		s := v ^ rotl(v, 1) ^ rotl(v, 2) ^ rotl(v, 3) ^ rotl(v, 4) ^ 0x63
		sbox[i] = s
		invSbox[s] = byte(i)
	}
}

// Cipher is an expanded AES-128 key schedule.
type Cipher struct {
	enc [4 * (rounds + 1)]uint32
	dec [4 * (rounds + 1)]uint32
}

// ErrKeySize is returned by NewCipher for keys that are not 16 bytes.
var ErrKeySize = errors.New("aesgcm: key must be 16 bytes (AES-128)")

// NewCipher expands the given 128-bit key.
func NewCipher(key []byte) (*Cipher, error) {
	if len(key) != KeySize {
		return nil, ErrKeySize
	}
	c := &Cipher{}
	c.expandKey(key)
	return c, nil
}

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 | uint32(sbox[w&0xff])
}

func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

// xtime multiplies a GF(2^8) element by x (i.e. by 2).
func xtime(b byte) byte {
	if b&0x80 != 0 {
		return b<<1 ^ 0x1b
	}
	return b << 1
}

// gmul multiplies two GF(2^8) elements.
func gmul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		a = xtime(a)
		b >>= 1
	}
	return p
}

func (c *Cipher) expandKey(key []byte) {
	n := KeySize / 4
	for i := 0; i < n; i++ {
		c.enc[i] = binary.BigEndian.Uint32(key[4*i:])
	}
	rcon := uint32(1) << 24
	for i := n; i < len(c.enc); i++ {
		t := c.enc[i-1]
		if i%n == 0 {
			t = subWord(rotWord(t)) ^ rcon
			// rcon doubles in GF(2^8) each round.
			hi := byte(rcon >> 24)
			rcon = uint32(xtime(hi)) << 24
		}
		c.enc[i] = c.enc[i-n] ^ t
	}
	// Equivalent inverse cipher key schedule: reverse round order and apply
	// InvMixColumns to the middle round keys.
	for i := 0; i < len(c.dec); i += 4 {
		src := len(c.enc) - i - 4
		for j := 0; j < 4; j++ {
			w := c.enc[src+j]
			if i > 0 && i < len(c.dec)-4 {
				w = invMixColumnWord(w)
			}
			c.dec[i+j] = w
		}
	}
}

func invMixColumnWord(w uint32) uint32 {
	var col [4]byte
	binary.BigEndian.PutUint32(col[:], w)
	var out [4]byte
	for i := 0; i < 4; i++ {
		out[i] = gmul(col[i], 0x0e) ^ gmul(col[(i+1)%4], 0x0b) ^
			gmul(col[(i+2)%4], 0x0d) ^ gmul(col[(i+3)%4], 0x09)
	}
	return binary.BigEndian.Uint32(out[:])
}

// Encrypt encrypts one 16-byte block from src into dst (which may alias).
func (c *Cipher) Encrypt(dst, src []byte) {
	var s [4][4]byte // state: s[row][col]
	for col := 0; col < 4; col++ {
		for row := 0; row < 4; row++ {
			s[row][col] = src[4*col+row]
		}
	}
	addRoundKey(&s, c.enc[0:4])
	for r := 1; r < rounds; r++ {
		subBytes(&s)
		shiftRows(&s)
		mixColumns(&s)
		addRoundKey(&s, c.enc[4*r:4*r+4])
	}
	subBytes(&s)
	shiftRows(&s)
	addRoundKey(&s, c.enc[4*rounds:4*rounds+4])
	for col := 0; col < 4; col++ {
		for row := 0; row < 4; row++ {
			dst[4*col+row] = s[row][col]
		}
	}
}

// Decrypt decrypts one 16-byte block from src into dst (which may alias).
func (c *Cipher) Decrypt(dst, src []byte) {
	var s [4][4]byte
	for col := 0; col < 4; col++ {
		for row := 0; row < 4; row++ {
			s[row][col] = src[4*col+row]
		}
	}
	addRoundKey(&s, c.dec[0:4])
	for r := 1; r < rounds; r++ {
		invSubBytes(&s)
		invShiftRows(&s)
		invMixColumns(&s)
		addRoundKey(&s, c.dec[4*r:4*r+4])
	}
	invSubBytes(&s)
	invShiftRows(&s)
	addRoundKey(&s, c.dec[4*rounds:4*rounds+4])
	for col := 0; col < 4; col++ {
		for row := 0; row < 4; row++ {
			dst[4*col+row] = s[row][col]
		}
	}
}

func addRoundKey(s *[4][4]byte, rk []uint32) {
	for col := 0; col < 4; col++ {
		w := rk[col]
		s[0][col] ^= byte(w >> 24)
		s[1][col] ^= byte(w >> 16)
		s[2][col] ^= byte(w >> 8)
		s[3][col] ^= byte(w)
	}
}

func subBytes(s *[4][4]byte) {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s[r][c] = sbox[s[r][c]]
		}
	}
}

func invSubBytes(s *[4][4]byte) {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s[r][c] = invSbox[s[r][c]]
		}
	}
}

func shiftRows(s *[4][4]byte) {
	for r := 1; r < 4; r++ {
		var tmp [4]byte
		for c := 0; c < 4; c++ {
			tmp[c] = s[r][(c+r)%4]
		}
		s[r] = tmp
	}
}

func invShiftRows(s *[4][4]byte) {
	for r := 1; r < 4; r++ {
		var tmp [4]byte
		for c := 0; c < 4; c++ {
			tmp[(c+r)%4] = s[r][c]
		}
		s[r] = tmp
	}
}

func mixColumns(s *[4][4]byte) {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[0][c], s[1][c], s[2][c], s[3][c]
		s[0][c] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3
		s[1][c] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3
		s[2][c] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3)
		s[3][c] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3)
	}
}

func invMixColumns(s *[4][4]byte) {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[0][c], s[1][c], s[2][c], s[3][c]
		s[0][c] = gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d) ^ gmul(a3, 0x09)
		s[1][c] = gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b) ^ gmul(a3, 0x0d)
		s[2][c] = gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e) ^ gmul(a3, 0x0b)
		s[3][c] = gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09) ^ gmul(a3, 0x0e)
	}
}
