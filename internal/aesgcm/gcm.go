package aesgcm

import (
	"encoding/binary"
	"errors"
)

// NonceSize is the standard GCM nonce (IV) length in bytes.
const NonceSize = 12

// TagSize is the full GCM authentication-tag length in bytes. Secure
// accelerators commonly truncate tags (the AuthBlock analysis in this repo
// defaults to 64-bit stored hashes); Open accepts truncated tags down to
// MinTagSize.
const TagSize = 16

// MinTagSize is the smallest tag length Open accepts.
const MinTagSize = 8

// ErrAuthentication is returned when tag verification fails — the event a
// data-corruption or RowHammer attack on the off-chip DRAM would trigger.
var ErrAuthentication = errors.New("aesgcm: message authentication failed")

// fieldElement is an element of GF(2^128) in GCM's bit-reflected
// representation, split into two 64-bit halves (hi holds bits 0-63 of the
// GCM polynomial ordering).
type fieldElement struct {
	hi, lo uint64
}

// gcmMul multiplies two GF(2^128) elements using the GCM polynomial
// x^128 + x^7 + x^2 + x + 1. This is the bit-serial schoolbook algorithm —
// the direct software analogue of the hardware Galois-field multiplier in
// the paper's Figure 2.
func gcmMul(x, y fieldElement) fieldElement {
	var z fieldElement
	v := x
	for i := 0; i < 128; i++ {
		// Bit i of y in GCM bit order: MSB-first within hi then lo.
		var bit uint64
		if i < 64 {
			bit = y.hi >> (63 - uint(i)) & 1
		} else {
			bit = y.lo >> (127 - uint(i)) & 1
		}
		if bit == 1 {
			z.hi ^= v.hi
			z.lo ^= v.lo
		}
		// v = v * x (shift right in the reflected representation), reducing
		// by the field polynomial when a bit falls off.
		carry := v.lo & 1
		v.lo = v.lo>>1 | v.hi<<63
		v.hi >>= 1
		if carry == 1 {
			v.hi ^= 0xe100000000000000
		}
	}
	return z
}

func feFromBytes(b []byte) fieldElement {
	return fieldElement{
		hi: binary.BigEndian.Uint64(b[0:8]),
		lo: binary.BigEndian.Uint64(b[8:16]),
	}
}

func (f fieldElement) bytes() [16]byte {
	var out [16]byte
	binary.BigEndian.PutUint64(out[0:8], f.hi)
	binary.BigEndian.PutUint64(out[8:16], f.lo)
	return out
}

// GCM is an AES-128-GCM authenticated-encryption instance.
type GCM struct {
	cipher *Cipher
	h      fieldElement // hash subkey H = AES_K(0^128)
}

// NewGCM constructs a GCM instance over the given cipher.
func NewGCM(c *Cipher) *GCM {
	var zero, h [16]byte
	c.Encrypt(h[:], zero[:])
	return &GCM{cipher: c, h: feFromBytes(h[:])}
}

// ghash absorbs data (zero-padded to a block multiple) plus the standard
// length block into the GHASH state and returns the result.
func (g *GCM) ghash(additional, ciphertext []byte) fieldElement {
	var y fieldElement
	absorb := func(data []byte) {
		for len(data) > 0 {
			var block [16]byte
			n := copy(block[:], data)
			data = data[n:]
			x := feFromBytes(block[:])
			y.hi ^= x.hi
			y.lo ^= x.lo
			y = gcmMul(y, g.h)
		}
	}
	absorb(additional)
	absorb(ciphertext)
	var lengths [16]byte
	binary.BigEndian.PutUint64(lengths[0:8], uint64(len(additional))*8)
	binary.BigEndian.PutUint64(lengths[8:16], uint64(len(ciphertext))*8)
	x := feFromBytes(lengths[:])
	y.hi ^= x.hi
	y.lo ^= x.lo
	return gcmMul(y, g.h)
}

// counterBlock builds the J0-derived counter block for counter value ctr.
func counterBlock(nonce []byte, ctr uint32) [16]byte {
	var b [16]byte
	copy(b[:12], nonce)
	binary.BigEndian.PutUint32(b[12:], ctr)
	return b
}

// ctrXOR applies AES-CTR keystream starting at counter ctr to src into dst.
func (g *GCM) ctrXOR(dst, src []byte, nonce []byte, ctr uint32) {
	var pad [16]byte
	for i := 0; i < len(src); i += 16 {
		block := counterBlock(nonce, ctr)
		g.cipher.Encrypt(pad[:], block[:])
		n := len(src) - i
		if n > 16 {
			n = 16
		}
		for j := 0; j < n; j++ {
			dst[i+j] = src[i+j] ^ pad[j]
		}
		ctr++
	}
}

// Seal encrypts plaintext and returns ciphertext||tag. The nonce must be 12
// bytes; in the accelerator it is the encryption seed composed of the data's
// version counter, address and initialisation vector (paper Figure 2).
// tagSize selects the stored tag length (MinTagSize..TagSize bytes).
func (g *GCM) Seal(plaintext, nonce, additional []byte, tagSize int) ([]byte, error) {
	if len(nonce) != NonceSize {
		return nil, errors.New("aesgcm: nonce must be 12 bytes")
	}
	if tagSize < MinTagSize || tagSize > TagSize {
		return nil, errors.New("aesgcm: tag size out of range")
	}
	out := make([]byte, len(plaintext)+tagSize)
	g.ctrXOR(out[:len(plaintext)], plaintext, nonce, 2)
	tag := g.tag(out[:len(plaintext)], nonce, additional)
	copy(out[len(plaintext):], tag[:tagSize])
	return out, nil
}

// Open verifies the trailing tag of ciphertext||tag and returns the
// plaintext, or ErrAuthentication if the tag does not match.
func (g *GCM) Open(sealed, nonce, additional []byte, tagSize int) ([]byte, error) {
	if len(nonce) != NonceSize {
		return nil, errors.New("aesgcm: nonce must be 12 bytes")
	}
	if tagSize < MinTagSize || tagSize > TagSize {
		return nil, errors.New("aesgcm: tag size out of range")
	}
	if len(sealed) < tagSize {
		return nil, ErrAuthentication
	}
	ct := sealed[:len(sealed)-tagSize]
	want := sealed[len(sealed)-tagSize:]
	tag := g.tag(ct, nonce, additional)
	var diff byte
	for i := 0; i < tagSize; i++ {
		diff |= tag[i] ^ want[i]
	}
	if diff != 0 {
		return nil, ErrAuthentication
	}
	out := make([]byte, len(ct))
	g.ctrXOR(out, ct, nonce, 2)
	return out, nil
}

// tag computes the full 16-byte GCM tag for the ciphertext.
func (g *GCM) tag(ciphertext, nonce, additional []byte) [16]byte {
	s := g.ghash(additional, ciphertext)
	j0 := counterBlock(nonce, 1)
	var ek [16]byte
	g.cipher.Encrypt(ek[:], j0[:])
	sb := s.bytes()
	var tag [16]byte
	for i := 0; i < 16; i++ {
		tag[i] = sb[i] ^ ek[i]
	}
	return tag
}

// Seed builds the 12-byte encryption seed (nonce) from the accelerator's
// version counter, the data's base address and a per-context initialisation
// vector, mirroring the seed composition of the paper's Figure 2. Because
// the accelerator's data orchestration is explicit, counters are computable
// on chip and never stored off-chip (the tree-less organisation of prior
// work the paper builds on).
func Seed(counter uint32, address uint32, iv uint32) [NonceSize]byte {
	var n [NonceSize]byte
	binary.BigEndian.PutUint32(n[0:4], counter)
	binary.BigEndian.PutUint32(n[4:8], address)
	binary.BigEndian.PutUint32(n[8:12], iv)
	return n
}
