package aesgcm

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSBoxKnownValues(t *testing.T) {
	// Spot checks against the FIPS-197 S-box.
	cases := map[byte]byte{
		0x00: 0x63, 0x01: 0x7c, 0x53: 0xed, 0xff: 0x16, 0x9a: 0xb8, 0xc2: 0x25,
	}
	for in, want := range cases {
		if got := sbox[in]; got != want {
			t.Errorf("sbox[%#02x] = %#02x, want %#02x", in, got, want)
		}
	}
}

func TestSBoxInverse(t *testing.T) {
	for i := 0; i < 256; i++ {
		if got := invSbox[sbox[i]]; got != byte(i) {
			t.Fatalf("invSbox[sbox[%#02x]] = %#02x", i, got)
		}
	}
	// The S-box must be a permutation.
	var seen [256]bool
	for i := 0; i < 256; i++ {
		if seen[sbox[i]] {
			t.Fatalf("sbox value %#02x repeated", sbox[i])
		}
		seen[sbox[i]] = true
	}
}

func TestAESFIPS197Vector(t *testing.T) {
	// FIPS-197 Appendix B example vector.
	key, _ := hex.DecodeString("2b7e151628aed2a6abf7158809cf4f3c")
	pt, _ := hex.DecodeString("3243f6a8885a308d313198a2e0370734")
	want, _ := hex.DecodeString("3925841d02dc09fbdc118597196a0b32")
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	c.Encrypt(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("encrypt = %x, want %x", got, want)
	}
	dec := make([]byte, 16)
	c.Decrypt(dec, got)
	if !bytes.Equal(dec, pt) {
		t.Fatalf("decrypt = %x, want %x", dec, pt)
	}
}

func TestAESMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		key := make([]byte, 16)
		pt := make([]byte, 16)
		rng.Read(key)
		rng.Read(pt)
		ours, err := NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := aes.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 16)
		want := make([]byte, 16)
		ours.Encrypt(got, pt)
		ref.Encrypt(want, pt)
		if !bytes.Equal(got, want) {
			t.Fatalf("key=%x pt=%x: encrypt = %x, want %x", key, pt, got, want)
		}
		back := make([]byte, 16)
		ours.Decrypt(back, got)
		if !bytes.Equal(back, pt) {
			t.Fatalf("key=%x: decrypt round trip failed", key)
		}
	}
}

func TestNewCipherRejectsBadKey(t *testing.T) {
	for _, n := range []int{0, 8, 15, 17, 24, 32} {
		if _, err := NewCipher(make([]byte, n)); err == nil {
			t.Errorf("NewCipher accepted %d-byte key", n)
		}
	}
}

func TestGCMMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		key := make([]byte, 16)
		nonce := make([]byte, 12)
		rng.Read(key)
		rng.Read(nonce)
		pt := make([]byte, rng.Intn(200))
		rng.Read(pt)
		ad := make([]byte, rng.Intn(40))
		rng.Read(ad)

		c, err := NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		g := NewGCM(c)
		got, err := g.Seal(pt, nonce, ad, TagSize)
		if err != nil {
			t.Fatal(err)
		}

		ref, err := aes.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		refGCM, err := cipher.NewGCM(ref)
		if err != nil {
			t.Fatal(err)
		}
		want := refGCM.Seal(nil, nonce, pt, ad)
		if !bytes.Equal(got, want) {
			t.Fatalf("iter %d: Seal = %x, want %x", i, got, want)
		}
	}
}

func TestGCMRoundTripAndTamperDetection(t *testing.T) {
	key := bytes.Repeat([]byte{0x42}, 16)
	c, _ := NewCipher(key)
	g := NewGCM(c)
	nonce := Seed(7, 0x1000, 0xdeadbeef)
	pt := []byte("ofmap tile contents: 0123456789abcdef")

	for _, tagSize := range []int{8, 12, 16} {
		sealed, err := g.Seal(pt, nonce[:], nil, tagSize)
		if err != nil {
			t.Fatal(err)
		}
		back, err := g.Open(sealed, nonce[:], nil, tagSize)
		if err != nil {
			t.Fatalf("tagSize %d: %v", tagSize, err)
		}
		if !bytes.Equal(back, pt) {
			t.Fatalf("tagSize %d: round trip mismatch", tagSize)
		}
		// Flip each byte in turn: every tampering must be detected.
		for i := range sealed {
			tampered := append([]byte(nil), sealed...)
			tampered[i] ^= 0x01
			if _, err := g.Open(tampered, nonce[:], nil, tagSize); err == nil {
				t.Fatalf("tagSize %d: tampering byte %d not detected", tagSize, i)
			}
		}
	}
}

func TestGCMWrongNonceFails(t *testing.T) {
	key := make([]byte, 16)
	c, _ := NewCipher(key)
	g := NewGCM(c)
	n1 := Seed(1, 0, 0)
	n2 := Seed(2, 0, 0) // different version counter
	sealed, err := g.Seal([]byte("data"), n1[:], nil, TagSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Open(sealed, n2[:], nil, TagSize); err == nil {
		t.Fatal("replay under a different counter was accepted")
	}
}

func TestGCMRejectsBadParameters(t *testing.T) {
	key := make([]byte, 16)
	c, _ := NewCipher(key)
	g := NewGCM(c)
	if _, err := g.Seal([]byte("x"), make([]byte, 11), nil, 16); err == nil {
		t.Error("Seal accepted 11-byte nonce")
	}
	if _, err := g.Seal([]byte("x"), make([]byte, 12), nil, 4); err == nil {
		t.Error("Seal accepted 4-byte tag")
	}
	if _, err := g.Open([]byte("short"), make([]byte, 12), nil, 16); err == nil {
		t.Error("Open accepted ciphertext shorter than tag")
	}
	if _, err := g.Open(make([]byte, 32), make([]byte, 12), nil, 20); err == nil {
		t.Error("Open accepted oversized tag length")
	}
}

func TestGCMMulProperties(t *testing.T) {
	// Multiplication in GF(2^128) must be commutative and distribute over
	// XOR (field addition).
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	fe := func(hi, lo uint64) fieldElement { return fieldElement{hi: hi, lo: lo} }
	comm := func(ah, al, bh, bl uint64) bool {
		a, b := fe(ah, al), fe(bh, bl)
		return gcmMul(a, b) == gcmMul(b, a)
	}
	if err := quick.Check(comm, cfg); err != nil {
		t.Errorf("commutativity: %v", err)
	}
	dist := func(ah, al, bh, bl, ch, cl uint64) bool {
		a, b, c := fe(ah, al), fe(bh, bl), fe(ch, cl)
		bc := fieldElement{hi: b.hi ^ c.hi, lo: b.lo ^ c.lo}
		left := gcmMul(a, bc)
		ab, ac := gcmMul(a, b), gcmMul(a, c)
		right := fieldElement{hi: ab.hi ^ ac.hi, lo: ab.lo ^ ac.lo}
		return left == right
	}
	if err := quick.Check(dist, cfg); err != nil {
		t.Errorf("distributivity: %v", err)
	}
	assoc := func(ah, al, bh, bl, ch, cl uint64) bool {
		a, b, c := fe(ah, al), fe(bh, bl), fe(ch, cl)
		return gcmMul(gcmMul(a, b), c) == gcmMul(a, gcmMul(b, c))
	}
	if err := quick.Check(assoc, cfg); err != nil {
		t.Errorf("associativity: %v", err)
	}
}

func TestSeedComposition(t *testing.T) {
	n := Seed(0x01020304, 0x0a0b0c0d, 0x11223344)
	want := []byte{1, 2, 3, 4, 0x0a, 0x0b, 0x0c, 0x0d, 0x11, 0x22, 0x33, 0x44}
	if !bytes.Equal(n[:], want) {
		t.Fatalf("Seed = %x, want %x", n, want)
	}
}

func BenchmarkAESEncryptBlock(b *testing.B) {
	c, _ := NewCipher(make([]byte, 16))
	src := make([]byte, 16)
	dst := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Encrypt(dst, src)
	}
}

func BenchmarkGCMSeal1KiB(b *testing.B) {
	c, _ := NewCipher(make([]byte, 16))
	g := NewGCM(c)
	nonce := make([]byte, 12)
	pt := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		if _, err := g.Seal(pt, nonce, nil, TagSize); err != nil {
			b.Fatal(err)
		}
	}
}
