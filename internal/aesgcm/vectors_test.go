package aesgcm

import (
	"bytes"
	"encoding/hex"
	"testing"
)

// NIST GCM reference vectors (McGrew & Viega, "The Galois/Counter Mode of
// Operation", test cases 1-4 for AES-128). These validate the
// implementation against the specification directly, independent of the
// standard-library cross-check.
func TestNISTGCMVectors(t *testing.T) {
	cases := []struct {
		name             string
		key, iv, pt, aad string
		wantCT, wantTag  string
	}{
		{
			name:    "case1-empty",
			key:     "00000000000000000000000000000000",
			iv:      "000000000000000000000000",
			wantTag: "58e2fccefa7e3061367f1d57a4e7455a",
		},
		{
			name:    "case2-one-zero-block",
			key:     "00000000000000000000000000000000",
			iv:      "000000000000000000000000",
			pt:      "00000000000000000000000000000000",
			wantCT:  "0388dace60b6a392f328c2b971b2fe78",
			wantTag: "ab6e47d42cec13bdf53a67b21257bddf",
		},
		{
			name: "case3-four-blocks",
			key:  "feffe9928665731c6d6a8f9467308308",
			iv:   "cafebabefacedbaddecaf888",
			pt: "d9313225f88406e5a55909c5aff5269a" +
				"86a7a9531534f7da2e4c303d8a318a72" +
				"1c3c0c95956809532fcf0e2449a6b525" +
				"b16aedf5aa0de657ba637b391aafd255",
			wantCT: "42831ec2217774244b7221b784d0d49c" +
				"e3aa212f2c02a4e035c17e2329aca12e" +
				"21d514b25466931c7d8f6a5aac84aa05" +
				"1ba30b396a0aac973d58e091473f5985",
			wantTag: "4d5c2af327cd64a62cf35abd2ba6fab4",
		},
		{
			name: "case4-with-aad",
			key:  "feffe9928665731c6d6a8f9467308308",
			iv:   "cafebabefacedbaddecaf888",
			pt: "d9313225f88406e5a55909c5aff5269a" +
				"86a7a9531534f7da2e4c303d8a318a72" +
				"1c3c0c95956809532fcf0e2449a6b525" +
				"b16aedf5aa0de657ba637b39",
			aad: "feedfacedeadbeeffeedfacedeadbeefabaddad2",
			wantCT: "42831ec2217774244b7221b784d0d49c" +
				"e3aa212f2c02a4e035c17e2329aca12e" +
				"21d514b25466931c7d8f6a5aac84aa05" +
				"1ba30b396a0aac973d58e091",
			wantTag: "5bc94fbc3221a5db94fae95ae7121a47",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			key := mustHex(t, tc.key)
			iv := mustHex(t, tc.iv)
			pt := mustHex(t, tc.pt)
			aad := mustHex(t, tc.aad)
			wantCT := mustHex(t, tc.wantCT)
			wantTag := mustHex(t, tc.wantTag)

			c, err := NewCipher(key)
			if err != nil {
				t.Fatal(err)
			}
			g := NewGCM(c)
			sealed, err := g.Seal(pt, iv, aad, TagSize)
			if err != nil {
				t.Fatal(err)
			}
			ct := sealed[:len(sealed)-TagSize]
			tag := sealed[len(sealed)-TagSize:]
			if !bytes.Equal(ct, wantCT) {
				t.Errorf("ciphertext = %x, want %x", ct, wantCT)
			}
			if !bytes.Equal(tag, wantTag) {
				t.Errorf("tag = %x, want %x", tag, wantTag)
			}
			back, err := g.Open(sealed, iv, aad, TagSize)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back, pt) {
				t.Error("Open round trip mismatch")
			}
		})
	}
}

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	if s == "" {
		return nil
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
