package experiments

import (
	"context"
	"fmt"
	"math"

	"secureloop/internal/arch"
	"secureloop/internal/core"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/roofline"
	"secureloop/internal/workload"
)

// baseCrypto is the Section 5.1 engine: one area-efficient parallel AES-GCM
// engine per datatype.
func baseCrypto() cryptoengine.Config {
	return cryptoengine.Config{Engine: cryptoengine.Parallel(), CountPerDatatype: 1}
}

// newScheduler builds a scheduler carrying the experiment's observer, so
// every schedule an experiment runs reports progress through the same hook,
// and its persistent store, so warm reruns replay schedules from disk.
func (o Options) newScheduler(spec arch.Spec, crypto cryptoengine.Config) *core.Scheduler {
	s := core.New(spec, crypto)
	s.Observe = o.Observe
	s.Mapper = o.Mapper
	s.Store = o.Store
	return s
}

// Fig10 reproduces Figure 10: speedup (%) of cross-layer annealing over the
// top-1-per-layer schedule for k = 1..10, at 1000 and 5000 iterations, on
// MobileNetV2 with the base architecture and a parallel AES-GCM engine.
func Fig10(ctx context.Context, opts Options) (Table, error) {
	t := Table{
		Name:   "fig10",
		Title:  "annealing speedup vs k (MobileNetV2, parallel AES-GCM)",
		Header: []string{"k", "speedup_pct_1000iter", "speedup_pct_5000iter"},
	}
	net := workload.MobileNetV2()
	spec := arch.Base()

	s := opts.newScheduler(spec, baseCrypto())
	baseRes, err := s.ScheduleNetworkCtx(ctx, net, core.CryptOptSingle)
	if err != nil {
		return Table{}, fmt.Errorf("fig10: %w", err)
	}
	baseline := baseRes.Total.Cycles

	ks := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if opts.Quick {
		ks = []int{1, 2, 4, 6, 10}
	}
	for _, k := range ks {
		row := []interface{}{k}
		for _, iters := range []int{1000, 5000} {
			s := opts.newScheduler(spec, baseCrypto())
			s.TopK = k
			s.Anneal.Iterations = opts.annealIters(iters)
			res, err := s.ScheduleNetworkCtx(ctx, net, core.CryptOptCross)
			if err != nil {
				return Table{}, fmt.Errorf("fig10: %w", err)
			}
			speedup := 100 * (1 - float64(res.Total.Cycles)/float64(baseline))
			row = append(row, speedup)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig11Result holds one workload's Figure 11 numbers.
type Fig11Result struct {
	Workload string
	// NormLatency maps algorithm -> cycles normalised to the unsecure
	// baseline (Figure 11a).
	NormLatency map[core.Algorithm]float64
	// Traffic maps algorithm -> overhead breakdown (Figure 11b).
	Traffic map[core.Algorithm]core.Traffic
	// EDPImprovementPct is the Crypt-Opt-Cross EDP gain over
	// Crypt-Tile-Single (the paper's headline 50.2%).
	EDPImprovementPct float64
	// SpeedupPct is the Crypt-Opt-Cross latency gain over Crypt-Tile-Single
	// (the paper's headline 33.2%).
	SpeedupPct float64
}

// Fig11 runs the scheduling-algorithm comparison of Figure 11 on the three
// workloads. For MobileNetV2 the paper reports the mean of 5 annealing
// seeds; opts.Quick reduces that to 1.
func Fig11(ctx context.Context, opts Options) (latency, traffic Table, results []Fig11Result, err error) {
	latency = Table{
		Name:   "fig11a",
		Title:  "normalized latency vs unsecure baseline",
		Header: []string{"workload", "crypt-tile-single", "crypt-opt-single", "crypt-opt-cross", "speedup_pct", "edp_gain_pct"},
	}
	traffic = Table{
		Name:   "fig11b",
		Title:  "additional off-chip traffic (bits): rehash / redundant / hash",
		Header: []string{"workload", "algorithm", "rehash_bits", "redundant_bits", "hash_bits", "total_bits"},
	}
	spec := arch.Base()
	for _, net := range workload.Networks() {
		s := opts.newScheduler(spec, baseCrypto())
		s.Anneal.Iterations = opts.annealIters(1000)
		base, err := s.ScheduleNetworkCtx(ctx, net, core.Unsecure)
		if err != nil {
			return Table{}, Table{}, nil, fmt.Errorf("fig11 %s: %w", net.Name, err)
		}
		r := Fig11Result{
			Workload:    net.Name,
			NormLatency: map[core.Algorithm]float64{},
			Traffic:     map[core.Algorithm]core.Traffic{},
		}
		var edp = map[core.Algorithm]float64{}
		for _, alg := range core.Algorithms() {
			seeds := 1
			if alg == core.CryptOptCross && net.Name == "MobileNetV2" {
				seeds = opts.seeds(5)
			}
			var cycles, edpSum float64
			var tr core.Traffic
			for seed := 0; seed < seeds; seed++ {
				s.Anneal.Seed = int64(seed + 1)
				res, err := s.ScheduleNetworkCtx(ctx, net, alg)
				if err != nil {
					return Table{}, Table{}, nil, fmt.Errorf("fig11 %s %s: %w", net.Name, alg, err)
				}
				cycles += float64(res.Total.Cycles)
				edpSum += res.Total.EDP()
				tr = res.Traffic
			}
			cycles /= float64(seeds)
			edp[alg] = edpSum / float64(seeds)
			r.NormLatency[alg] = cycles / float64(base.Total.Cycles)
			r.Traffic[alg] = tr
			traffic.AddRow(net.Name, alg.String(),
				tr.RehashBits, tr.RedundantBits, tr.HashBits, tr.Total())
		}
		r.SpeedupPct = 100 * (1 - r.NormLatency[core.CryptOptCross]/r.NormLatency[core.CryptTileSingle])
		r.EDPImprovementPct = 100 * (1 - edp[core.CryptOptCross]/edp[core.CryptTileSingle])
		latency.AddRow(net.Name,
			r.NormLatency[core.CryptTileSingle],
			r.NormLatency[core.CryptOptSingle],
			r.NormLatency[core.CryptOptCross],
			r.SpeedupPct, r.EDPImprovementPct)
		results = append(results, r)
	}
	return latency, traffic, results, nil
}

// Fig12 reproduces Figure 12: roofline placements of the three workloads
// under the unsecure baseline and the three secure scheduling algorithms,
// plus the roofline's roofs (compute, memory, crypto).
func Fig12(ctx context.Context, opts Options) (Table, error) {
	t := Table{
		Name:   "fig12",
		Title:  "roofline: operational intensity vs performance (GFLOPS at 100 MHz)",
		Header: []string{"point", "intensity_ops_per_byte", "gops", "bound"},
	}
	spec := arch.Base()
	rl := roofline.FromSecureArch(&spec, baseCrypto())
	t.AddRow("roof:compute", math.Inf(1), rl.PeakOpsPerSec/1e9, "peak")
	t.AddRow("roof:memory_ridge", rl.PeakOpsPerSec/rl.MemBytesPerSec, rl.PeakOpsPerSec/1e9, "memory")
	t.AddRow("roof:crypto_ridge", rl.RidgeIntensity(), rl.Attainable(rl.RidgeIntensity())/1e9, "crypto")

	algs := []core.Algorithm{core.Unsecure, core.CryptTileSingle, core.CryptOptSingle, core.CryptOptCross}
	for _, net := range workload.Networks() {
		s := opts.newScheduler(spec, baseCrypto())
		s.Anneal.Iterations = opts.annealIters(1000)
		for _, alg := range algs {
			res, err := s.ScheduleNetworkCtx(ctx, net, alg)
			if err != nil {
				return Table{}, fmt.Errorf("fig12 %s %s: %w", net.Name, alg, err)
			}
			p := roofline.PointFor(fmt.Sprintf("%s/%s", net.Name, alg), net.TotalMACs(), res.Total, spec.ClockHz)
			bound := "compute"
			if res.Total.Cycles == res.Total.CryptoCycles && alg != core.Unsecure {
				bound = "crypto"
			} else if res.Total.Cycles == res.Total.DRAMCycles {
				bound = "memory"
			}
			t.AddRow(p.Name, p.Intensity, p.OpsPerSec/1e9, bound)
		}
	}
	return t, nil
}
