// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) as data tables: the same rows and series the paper
// plots, produced by this repository's models and schedulers. The
// cmd/experiments binary renders them as aligned text and CSV; the root
// benchmark suite runs one benchmark per experiment.
package experiments

import (
	"fmt"
	"strings"

	"secureloop/internal/mapper"
	"secureloop/internal/obs"
	"secureloop/internal/store"
)

// Table is one experiment's output: a header and rows of formatted cells.
type Table struct {
	// Name is the experiment id (e.g. "fig11a").
	Name string
	// Title describes what the paper's figure shows.
	Title string
	// Header labels the columns.
	Header []string
	// Rows hold formatted cells.
	Rows [][]string
}

// AddRow appends a row, formatting each value (%v for strings/ints, %.4g
// for floats).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Text renders the table with aligned columns for terminal output.
func (t *Table) Text() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n", t.Name, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Options tunes experiment fidelity.
type Options struct {
	// Quick trades fidelity for speed: fewer annealing iterations, fewer
	// seeds, subsampled sweeps. Paper-scale runs use Quick=false.
	Quick bool
	// Observe receives progress events from the schedulers each experiment
	// runs (nil means none); cmd/experiments wires its -progress flag here.
	Observe obs.Observer
	// Mapper selects the loopnest search strategy of every scheduler an
	// experiment builds (zero value: exhaustive); cmd/experiments wires its
	// -guided flag here.
	Mapper mapper.Options
	// Store, when non-nil, is the persistent result tier shared by every
	// scheduler an experiment builds; cmd/experiments wires its -store flag
	// here. Warm reruns of a figure replay schedules from disk.
	Store *store.Store
}

func (o Options) annealIters(full int) int {
	if o.Quick {
		return full / 10
	}
	return full
}

func (o Options) seeds(full int) int {
	if o.Quick {
		return 1
	}
	return full
}
