package experiments

import (
	"secureloop/internal/authblock"
	"secureloop/internal/cryptoengine"
)

// Fig3 reproduces Figure 3: the area vs average-cycles-per-block trade-off
// of published AES hardware implementations.
func Fig3() Table {
	t := Table{
		Name:   "fig3",
		Title:  "AES implementation trade-off space (area vs cycles per 128b block)",
		Header: []string{"design", "year", "area_kgates", "avg_cycles_per_block"},
	}
	for _, e := range cryptoengine.Figure3Catalog() {
		t.AddRow(e.Name, e.Year, e.AreaKGates, e.AvgCyclesPerBlock)
	}
	return t
}

// Table2 reproduces Table 2: the AES and GF-multiplier unit specifications
// of the three engine microarchitectures.
func Table2() Table {
	t := Table{
		Name:  "table2",
		Title: "AES-GCM engine specifications (cycles / kGates / pJ per unit)",
		Header: []string{"architecture",
			"aes_cycles", "aes_kgates", "aes_pj",
			"gf_cycles", "gf_kgates", "gf_pj",
			"interval_cycles", "bytes_per_cycle"},
	}
	for _, e := range cryptoengine.Architectures() {
		t.AddRow(e.Name,
			e.AES.Cycles, e.AES.AreaKGates, e.AES.EnergyPJ,
			e.GFMult.Cycles, e.GFMult.AreaKGates, e.GFMult.EnergyPJ,
			e.CyclesPerBlock(), e.BytesPerCycle())
	}
	return t
}

// fig9Setup returns the Figure 8/9 example geometry: a 30x30 tensor that is
// one producer tile (h=30, wi=30), read by a misaligned consumer tile_j of
// width wj=20 (the rightmost 20 columns).
func fig9Setup() (authblock.ProducerGrid, authblock.ConsumerGrid, authblock.Params) {
	p := authblock.Whole(1, 30, 30)
	c := authblock.ConsumerGrid{
		TileC: 1,
		WinH:  30, WinW: 20,
		StepH: 30, StepW: 20,
		OffH: 0, OffW: 10, // tile_j starts at column wi-wj = 10
		CountC: 1, CountH: 1, CountW: 1,
		FetchesPerTile: 1,
	}
	// The paper's y-axis is bits with 16-bit elements and 64-bit hashes.
	return p, c, authblock.Params{WordBits: 16, HashBits: 64}
}

// Fig9 reproduces Figure 9: off-chip traffic (redundant, tag, total) when
// accessing the misaligned tile_j, sweeping the AuthBlock size for
// horizontal (u in [1,30]) and vertical (u in [1,900]) orientations.
func Fig9() (horizontal, vertical Table) {
	p, c, par := fig9Setup()
	build := func(name string, o authblock.Orientation, maxU int) Table {
		t := Table{
			Name:   name,
			Title:  "off-chip traffic vs AuthBlock size (" + o.String() + ")",
			Header: []string{"u", "redundant_bits", "tag_bits", "total_bits"},
		}
		for _, r := range authblock.Sweep(p, c, o, maxU, par) {
			// The figure counts traffic for *accessing tile_j*: tag reads
			// plus redundant reads (hash writes on the producer side are
			// not part of the access).
			tag := r.Costs.HashReadBits
			red := r.Costs.RedundantBits
			t.AddRow(r.Assignment.U, red, tag, red+tag)
		}
		return t
	}
	return build("fig9-horizontal", authblock.AlongQ, 30),
		build("fig9-vertical", authblock.AlongP, 900)
}
