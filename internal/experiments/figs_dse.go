package experiments

import (
	"context"
	"fmt"

	"secureloop/internal/accelergy"
	"secureloop/internal/arch"
	"secureloop/internal/core"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/dse"
	"secureloop/internal/workload"
)

// sweepScheduler builds a scheduler tuned for design-space sweeps: the
// Crypt-Opt-Cross algorithm with a reduced annealing budget (the
// cross-layer gain is a few percent and stable, so sweeps spend their time
// on the space, not the tail of each point). Like newScheduler it carries
// the experiment's observer.
func sweepScheduler(spec arch.Spec, crypto cryptoengine.Config, opts Options) *core.Scheduler {
	s := opts.newScheduler(spec, crypto)
	s.Anneal.Iterations = opts.annealIters(200)
	return s
}

// Fig13 reproduces Figure 13: slowdown over the unsecure baseline and
// crypto area overhead for six engine configurations, per workload.
func Fig13(ctx context.Context, opts Options) (Table, error) {
	t := Table{
		Name:   "fig13",
		Title:  "slowdown and area overhead vs crypto engine configuration",
		Header: []string{"workload", "config", "slowdown", "area_overhead_pct", "crypto_kgates"},
	}
	spec := arch.Base()
	for _, net := range workload.Networks() {
		base, err := opts.newScheduler(spec, baseCrypto()).ScheduleNetworkCtx(ctx, net, core.Unsecure)
		if err != nil {
			return Table{}, fmt.Errorf("fig13 %s: %w", net.Name, err)
		}
		for _, cfg := range cryptoengine.Figure13Configs() {
			s := sweepScheduler(spec, cfg, opts)
			res, err := s.ScheduleNetworkCtx(ctx, net, core.CryptOptCross)
			if err != nil {
				return Table{}, fmt.Errorf("fig13 %s %s: %w", net.Name, cfg, err)
			}
			dp := dse.DesignPoint{Spec: spec, Crypto: cfg,
				Cycles: res.Total.Cycles, UnsecureCycles: base.Total.Cycles}
			t.AddRow(net.Name, cfg.String(), dp.Slowdown(),
				accelergy.CryptoAreaOverheadPercent(cfg.TotalAreaKGates(), spec.NumPEs()),
				cfg.TotalAreaKGates())
		}
	}
	return t, nil
}

// Fig14 reproduces Figure 14: latency for PE arrays 14x12 / 14x24 / 28x24
// under the unsecure baseline, a pipelined AES-GCM and a parallel AES-GCM.
func Fig14(ctx context.Context, opts Options) (Table, error) {
	t := Table{
		Name:   "fig14",
		Title:  "latency (cycles) vs PE array size",
		Header: []string{"workload", "pe_array", "unsecure", "pipelined", "parallel"},
	}
	for _, net := range workload.Networks() {
		for _, pe := range arch.PEConfigs() {
			spec := arch.Base().WithPEs(pe[0], pe[1])
			row := []interface{}{net.Name, label2(pe[0], pe[1])}
			base, err := opts.newScheduler(spec, baseCrypto()).ScheduleNetworkCtx(ctx, net, core.Unsecure)
			if err != nil {
				return Table{}, fmt.Errorf("fig14 %s %s: %w", net.Name, label2(pe[0], pe[1]), err)
			}
			row = append(row, base.Total.Cycles)
			for _, engine := range []cryptoengine.EngineArch{cryptoengine.Pipelined(), cryptoengine.Parallel()} {
				cfg := cryptoengine.Config{Engine: engine, CountPerDatatype: 1}
				res, err := sweepScheduler(spec, cfg, opts).ScheduleNetworkCtx(ctx, net, core.CryptOptCross)
				if err != nil {
					return Table{}, fmt.Errorf("fig14 %s %s: %w", net.Name, cfg, err)
				}
				row = append(row, res.Total.Cycles)
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Fig15 reproduces Figure 15: latency for global-buffer sizes 16/32/131 kB.
func Fig15(ctx context.Context, opts Options) (Table, error) {
	t := Table{
		Name:   "fig15",
		Title:  "latency (cycles) vs on-chip buffer size",
		Header: []string{"workload", "glb", "unsecure", "pipelined", "parallel"},
	}
	for _, net := range workload.Networks() {
		for _, glb := range arch.BufferConfigs() {
			spec := arch.Base().WithGlobalBuffer(glb)
			row := []interface{}{net.Name, labelKB(glb)}
			base, err := opts.newScheduler(spec, baseCrypto()).ScheduleNetworkCtx(ctx, net, core.Unsecure)
			if err != nil {
				return Table{}, fmt.Errorf("fig15 %s %s: %w", net.Name, labelKB(glb), err)
			}
			row = append(row, base.Total.Cycles)
			for _, engine := range []cryptoengine.EngineArch{cryptoengine.Pipelined(), cryptoengine.Parallel()} {
				cfg := cryptoengine.Config{Engine: engine, CountPerDatatype: 1}
				res, err := sweepScheduler(spec, cfg, opts).ScheduleNetworkCtx(ctx, net, core.CryptOptCross)
				if err != nil {
					return Table{}, fmt.Errorf("fig15 %s %s: %w", net.Name, cfg, err)
				}
				row = append(row, res.Total.Cycles)
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// DRAMStudy reproduces the Section 5.2 "Different DRAM Technologies"
// experiment on AlexNet: latency and energy under LPDDR4-64B, LPDDR4-128B
// and HBM2-64B, secure (parallel engine) and unsecure.
func DRAMStudy(ctx context.Context, opts Options) (Table, error) {
	t := Table{
		Name:   "dram",
		Title:  "DRAM technology study (AlexNet): latency and energy",
		Header: []string{"dram", "unsecure_cycles", "unsecure_uj", "secure_cycles", "secure_uj"},
	}
	net := workload.AlexNet()
	for _, tech := range arch.DRAMTechs() {
		spec := arch.Base().WithDRAM(tech)
		base, err := opts.newScheduler(spec, baseCrypto()).ScheduleNetworkCtx(ctx, net, core.Unsecure)
		if err != nil {
			return Table{}, fmt.Errorf("dram %s: %w", tech.Name, err)
		}
		res, err := sweepScheduler(spec, baseCrypto(), opts).ScheduleNetworkCtx(ctx, net, core.CryptOptCross)
		if err != nil {
			return Table{}, fmt.Errorf("dram %s: %w", tech.Name, err)
		}
		t.AddRow(tech.Name,
			base.Total.Cycles, base.Total.EnergyPJ/1e6,
			res.Total.Cycles, res.Total.EnergyPJ/1e6)
	}
	return t, nil
}

// Fig16 reproduces Figure 16: the area-vs-latency scatter over the
// {PE array} x {GLB} x {crypto engine} space on AlexNet, with the Pareto
// front marked.
func Fig16(ctx context.Context, opts Options) (Table, []dse.DesignPoint, error) {
	t := Table{
		Name:   "fig16",
		Title:  "area vs performance trade-off (AlexNet) with Pareto front",
		Header: []string{"design", "area_mm2", "cycles", "slowdown", "pareto"},
	}
	net := workload.AlexNet()
	specs, cryptos := dse.Figure16Space(arch.Base())
	var points []dse.DesignPoint
	for _, spec := range specs {
		for _, cfg := range cryptos {
			s := sweepScheduler(spec, cfg, opts)
			res, err := s.ScheduleNetworkCtx(ctx, net, core.CryptOptCross)
			if err != nil {
				return Table{}, nil, fmt.Errorf("fig16 %s %s: %w", spec.Name, cfg, err)
			}
			base, err := opts.newScheduler(spec, cfg).ScheduleNetworkCtx(ctx, net, core.Unsecure)
			if err != nil {
				return Table{}, nil, fmt.Errorf("fig16 %s %s: %w", spec.Name, cfg, err)
			}
			points = append(points, dse.DesignPoint{
				Spec: spec, Crypto: cfg,
				AreaMM2:        accelergy.TotalAreaMM2(spec.NumPEs(), spec.GlobalBufferBytes, cfg.TotalAreaKGates()),
				Cycles:         res.Total.Cycles,
				EnergyPJ:       res.Total.EnergyPJ,
				UnsecureCycles: base.Total.Cycles,
			})
		}
	}
	dse.MarkPareto(points)
	for _, p := range points {
		t.AddRow(p.Label(), p.AreaMM2, p.Cycles, p.Slowdown(), p.Pareto)
	}
	return t, points, nil
}

func label2(x, y int) string { return itoa(x) + "x" + itoa(y) }
func labelKB(b int) string   { return itoa(b/1024) + "kB" }
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
