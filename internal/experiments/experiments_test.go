package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

func TestFig3Table(t *testing.T) {
	tab := Fig3()
	if len(tab.Rows) != 10 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if !strings.Contains(tab.CSV(), "Banerjee-2017-Pipeline") {
		t.Error("catalog entry missing from CSV")
	}
}

func TestTable2Table(t *testing.T) {
	tab := Table2()
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if tab.Rows[0][0] != "pipelined" {
		t.Errorf("first engine %q", tab.Rows[0][0])
	}
}

func TestFig9OptimaMatchPaper(t *testing.T) {
	h, v := Fig9()
	if len(h.Rows) != 30 || len(v.Rows) != 900 {
		t.Fatalf("sweep sizes %d/%d", len(h.Rows), len(v.Rows))
	}
	best := func(tab Table) (u int, total int64) {
		total = 1 << 62
		for _, r := range tab.Rows {
			uu, _ := strconv.Atoi(r[0])
			tt, _ := strconv.ParseInt(r[3], 10, 64)
			if tt < total {
				u, total = uu, tt
			}
		}
		return u, total
	}
	// Section 4.2: "the optimal assignment choice is to set u = 10" for the
	// horizontal orientation, and "the optimal AuthBlock size is 300" for
	// the vertical one.
	if u, _ := best(h); u != 10 {
		t.Errorf("horizontal optimum u = %d, paper says 10", u)
	}
	if u, _ := best(v); u != 300 {
		t.Errorf("vertical optimum u = %d, paper says 300", u)
	}
	// Vertical redundant reads vanish whenever u divides 300.
	for _, r := range v.Rows {
		u, _ := strconv.Atoi(r[0])
		red, _ := strconv.ParseInt(r[1], 10, 64)
		if u <= 300 && 300%u == 0 && red != 0 {
			t.Errorf("u=%d divides 300 but redundant = %d", u, red)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Name: "x", Title: "T", Header: []string{"a", "bb"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("z", 3.25)
	csv := tab.CSV()
	if csv != "a,bb\n1,2.5\nz,3.25\n" {
		t.Errorf("CSV = %q", csv)
	}
	txt := tab.Text()
	if !strings.Contains(txt, "## x — T") {
		t.Errorf("Text missing title: %q", txt)
	}
}

func TestOptionsScaling(t *testing.T) {
	full := Options{}
	if full.annealIters(1000) != 1000 || full.seeds(5) != 5 {
		t.Error("full options scaled")
	}
	quick := Options{Quick: true}
	if quick.annealIters(1000) != 100 || quick.seeds(5) != 1 {
		t.Error("quick options not scaled")
	}
}

// TestFig12QuickShape runs the roofline experiment in quick mode and checks
// the paper's qualitative claims: every workload is compute-bound on the
// unsecure baseline, and MobileNetV2 becomes crypto-bound when secured.
func TestFig12QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tab, err := Fig12(context.Background(), Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	bounds := map[string]string{}
	for _, r := range tab.Rows {
		bounds[r[0]] = r[3]
	}
	for _, w := range []string{"AlexNet", "ResNet18", "MobileNetV2"} {
		if got := bounds[w+"/Unsecure"]; got != "compute" {
			t.Errorf("%s unsecure bound = %q, want compute", w, got)
		}
	}
	if got := bounds["MobileNetV2/Crypt-Tile-Single"]; got != "crypto" {
		t.Errorf("secured MobileNetV2 bound = %q, want crypto", got)
	}
}

// TestDSEFiguresQuick exercises the design-space experiments end to end in
// quick mode, checking the paper's qualitative claims rather than numbers.
func TestDSEFiguresQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiments")
	}
	opts := Options{Quick: true}
	ctx := context.Background()

	dram, err := DRAMStudy(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(dram.Rows) != 3 {
		t.Fatalf("dram rows %d", len(dram.Rows))
	}
	// Same secure latency for all three technologies (crypto-bound).
	if dram.Rows[0][3] != dram.Rows[1][3] || dram.Rows[0][3] != dram.Rows[2][3] {
		t.Errorf("secure latency varies with DRAM tech: %v", dram.Rows)
	}

	fig16, points, err := Fig16(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig16.Rows) != 27 || len(points) != 27 {
		t.Fatalf("fig16 has %d points", len(points))
	}
	var front, pipelinedFront int
	for _, p := range points {
		if p.Pareto {
			front++
			if p.Crypto.Engine.Name == "pipelined" {
				pipelinedFront++
			}
		}
		// Section 5.3: big arrays with slow engines are dominated.
		if p.Pareto && p.Spec.NumPEs() >= 672 && p.Crypto.Engine.Name == "serial" {
			t.Errorf("dominated design on the front: %s", p.Label())
		}
	}
	if front == 0 || pipelinedFront == 0 {
		t.Errorf("front %d (pipelined %d)", front, pipelinedFront)
	}
}
