package experiments

import (
	"context"
	"fmt"

	"secureloop/internal/arch"
	"secureloop/internal/core"
	"secureloop/internal/workload"
)

// HashSizeStudy is an extension beyond the paper: sweep the stored
// authentication-tag width (the paper fixes one hash size; deployments
// choose between truncated 32/64-bit tags and full 128-bit GCM tags, a
// security/traffic trade-off). Reports latency and authentication traffic
// on MobileNetV2 under Crypt-Opt-Cross for each tag width: larger tags cost
// more hash traffic, and the optimal AuthBlock size shifts larger to
// amortise them.
func HashSizeStudy(ctx context.Context, opts Options) (Table, error) {
	t := Table{
		Name:   "hashsize",
		Title:  "tag-width sensitivity (MobileNetV2, parallel AES-GCM, Crypt-Opt-Cross)",
		Header: []string{"hash_bits", "cycles", "norm_latency", "hash_Mbit", "redundant_Mbit", "total_auth_Mbit"},
	}
	net := workload.MobileNetV2()
	spec := arch.Base()
	base, err := opts.newScheduler(spec, baseCrypto()).ScheduleNetworkCtx(ctx, net, core.Unsecure)
	if err != nil {
		return Table{}, fmt.Errorf("hashsize: %w", err)
	}
	for _, hashBits := range []int{32, 64, 128} {
		s := opts.newScheduler(spec, baseCrypto())
		s.Anneal.Iterations = opts.annealIters(400)
		s.Params.HashBits = hashBits
		res, err := s.ScheduleNetworkCtx(ctx, net, core.CryptOptCross)
		if err != nil {
			return Table{}, fmt.Errorf("hashsize %d-bit: %w", hashBits, err)
		}
		t.AddRow(hashBits,
			res.Total.Cycles,
			float64(res.Total.Cycles)/float64(base.Total.Cycles),
			float64(res.Traffic.HashBits)/1e6,
			float64(res.Traffic.RedundantBits)/1e6,
			float64(res.Traffic.Total())/1e6)
	}
	return t, nil
}
