package authblock

import (
	"sort"

	"secureloop/internal/num"
)

// The consumer-class decomposition of a (producer, consumer) grid pair —
// every distinct (channel, row, column) overlap box with its multiplicity —
// depends only on the pair, not on the AuthBlock orientation or size under
// evaluation. The optimal-assignment search evaluates hundreds of
// (orientation, size) candidates per pair, so the decomposition is computed
// once per pair, flattened into a sorted slice, and shared by EvaluateCross,
// Sweep, the optimal search and the tile baselines. evaluateCrossReference
// (reference.go) retains the per-candidate recomputation as the equivalence
// oracle.

// pairClass is one flattened consumer class: an overlap box inside a
// producer tile of shape (tc, tp, tq), occurring mult times across the
// consumer's tiles.
type pairClass struct {
	box        Box
	tc, tp, tq int
	// vol is box.Volume(), precomputed for the per-size lower bound.
	vol int64
	// mult is how many consumer tiles produce this exact class.
	mult int64
}

// pairDecomposition is the complete consumer-class decomposition of one
// (producer, consumer) pair, in deterministic sorted order.
type pairDecomposition struct {
	classes []pairClass
}

// newPairDecomposition intersects the consumer's windows with the producer's
// tile boundaries on each axis and flattens the cross product of the per-axis
// classes into one sorted slice.
func newPairDecomposition(p ProducerGrid, c ConsumerGrid) *pairDecomposition {
	ch, rows, cols := consumerClasses(p, c)
	flatten := func(m map[axisClass]int64) []struct {
		axisClass
		n int64
	} {
		out := make([]struct {
			axisClass
			n int64
		}, 0, len(m))
		for cls, n := range m {
			out = append(out, struct {
				axisClass
				n int64
			}{cls, n})
		}
		sort.Slice(out, func(i, j int) bool {
			a, b := out[i].axisClass, out[j].axisClass
			if a.tdim != b.tdim {
				return a.tdim < b.tdim
			}
			if a.lo != b.lo {
				return a.lo < b.lo
			}
			return a.hi < b.hi
		})
		return out
	}
	chs, rcs, wcs := flatten(ch), flatten(rows), flatten(cols)
	d := &pairDecomposition{classes: make([]pairClass, 0, num.MulInt(num.MulInt(len(chs), len(rcs)), len(wcs)))}
	for _, cc := range chs {
		for _, rc := range rcs {
			for _, wc := range wcs {
				box := Box{C0: cc.lo, C1: cc.hi, P0: rc.lo, P1: rc.hi, Q0: wc.lo, Q1: wc.hi}
				d.classes = append(d.classes, pairClass{
					box: box,
					tc:  cc.tdim, tp: rc.tdim, tq: wc.tdim,
					vol:  box.Volume(),
					mult: cc.n * rc.n * wc.n,
				})
			}
		}
	}
	return d
}

// evaluate computes the cross-layer costs of (orientation o, size u) on the
// shared decomposition. hashWrite is the producer-side tag traffic at size u
// (hoisted out so the search computes it once per size, not once per
// orientation).
func (d *pairDecomposition) evaluate(o Orientation, u int, hashWrite, fetches int64, par Params) Costs {
	var hashReads, redundant int64
	for i := range d.classes {
		cl := &d.classes[i]
		blocks, covered := CountBoxBlocks(cl.tc, cl.tp, cl.tq, cl.box, o, u)
		hashReads += cl.mult * blocks
		redundant += cl.mult * (covered - cl.vol)
	}
	return Costs{
		HashWriteBits: hashWrite,
		HashReadBits:  hashReads * fetches * int64(par.HashBits),
		RedundantBits: redundant * fetches * int64(par.WordBits),
	}
}

// lowerBound returns a bound no candidate of size u can beat, valid for
// every orientation: each consumer box of volume v touches at least
// ceil(v/u) blocks (blocks*u >= covered >= v), and redundant reads are
// non-negative, so total >= hashWrite(u) + sum(mult*ceil(vol/u))*tag bits.
// The search skips a size outright when this bound exceeds the best total
// found so far; since every actual total at that size then strictly exceeds
// the best, skipping cannot change the selected assignment.
func (d *pairDecomposition) lowerBound(u int, hashWrite, fetches int64, par Params) int64 {
	u64 := int64(u)
	var minBlocks int64
	for i := range d.classes {
		cl := &d.classes[i]
		minBlocks += cl.mult * num.CeilDiv64(cl.vol, u64)
	}
	return hashWrite + minBlocks*fetches*int64(par.HashBits)
}

// tileDirect evaluates the tile-as-an-AuthBlock direct baseline on the
// shared decomposition: each consumer box fetches its whole producer tile.
func (d *pairDecomposition) tileDirect(p ProducerGrid, fetches int64, par Params) Costs {
	var hashReads, redundant int64
	for i := range d.classes {
		cl := &d.classes[i]
		tileVol := int64(cl.tc) * int64(cl.tp) * int64(cl.tq)
		hashReads += cl.mult
		redundant += cl.mult * (tileVol - cl.vol)
	}
	return Costs{
		HashWriteBits: p.NumTiles() * p.WritesPerTile * int64(par.HashBits),
		HashReadBits:  hashReads * fetches * int64(par.HashBits),
		RedundantBits: redundant * fetches * int64(par.WordBits),
	}
}

// decompKey identifies a (producer, consumer) pair in the decomposition memo.
type decompKey struct {
	p ProducerGrid
	c ConsumerGrid
}

// decompCache memoises decompositions process-wide: the same grid pairs
// recur across candidate sizes, annealing moves and design-space sweeps.
// Bounded and FIFO-sharded (see fifocache.go) so a long sweep over generated
// networks cannot grow it without limit.
var decompCache = &fifoCache[decompKey, *pairDecomposition]{hash: hashDecompKey}

func hashDecompKey(k decompKey) uint64 {
	return fnvMix(
		int64(k.p.C), int64(k.p.H), int64(k.p.W),
		int64(k.p.TileC), int64(k.p.TileH), int64(k.p.TileW), k.p.WritesPerTile,
		int64(k.c.TileC), int64(k.c.WinH), int64(k.c.WinW),
		int64(k.c.StepH), int64(k.c.StepW), int64(k.c.OffH), int64(k.c.OffW),
		int64(k.c.CountC), int64(k.c.CountH), int64(k.c.CountW), k.c.FetchesPerTile,
	)
}

// decompositionFor returns the memoised decomposition of the pair.
func decompositionFor(p ProducerGrid, c ConsumerGrid) *pairDecomposition {
	key := decompKey{p: p, c: c}
	if v, ok := decompCache.get(key); ok {
		return v
	}
	return decompCache.put(key, newPairDecomposition(p, c))
}

// sizeKey captures the only fields CandidateSizes reads.
type sizeKey struct {
	tileC, tileH, tileW int
	winH, winW          int
	stepH, stepW        int
}

// sizeCache memoises the deduplicated candidate-size lists; callers must
// treat the returned slice as read-only. Bounded like decompCache.
var sizeCache = &fifoCache[sizeKey, []int]{hash: hashSizeKey}

func hashSizeKey(k sizeKey) uint64 {
	return fnvMix(
		int64(k.tileC), int64(k.tileH), int64(k.tileW),
		int64(k.winH), int64(k.winW), int64(k.stepH), int64(k.stepW),
	)
}

// DecompCacheStats snapshots the decomposition and candidate-size memo
// counters (cmd/experiments -cachestats).
func DecompCacheStats() (decomp, size Stats) {
	return decompCache.stats(), sizeCache.stats()
}

// clearDecompCaches drops the decomposition and candidate-size memos
// (ResetCaches calls this alongside the result memos).
func clearDecompCaches() {
	decompCache.reset()
	sizeCache.reset()
}
