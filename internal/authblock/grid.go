package authblock

import (
	"fmt"

	"secureloop/internal/num"
)

// ProducerGrid describes how a shared tensor (one layer's ofmap) is
// partitioned into the producer's DRAM tiles. AuthBlocks are laid within
// these tiles, because hashes are computed as each tile is written off-chip
// (Section 4.2: "if tile_i is the ofmap tile, this will be a natural
// scenario as hashes will be computed as the ofmap is generated").
type ProducerGrid struct {
	// C, H, W are the tensor extents: channels (the producer's M), rows
	// (P), columns (Q).
	C, H, W int
	// TileC, TileH, TileW are the tile extents; edge tiles clip.
	TileC, TileH, TileW int
	// WritesPerTile is how many times each tile crosses off-chip while
	// being produced (partial-sum spills).
	WritesPerTile int64
}

// Whole returns a producer grid with a single tile covering the tensor —
// the organisation used for segment-source tensors (network inputs,
// pooling outputs) whose AuthBlocks the host provisions freely.
func Whole(c, h, w int) ProducerGrid {
	return ProducerGrid{C: c, H: h, W: w, TileC: c, TileH: h, TileW: w, WritesPerTile: 1}
}

// Counts returns the tile counts per axis.
func (p ProducerGrid) Counts() (nc, nh, nw int) {
	return num.CeilDiv(p.C, p.TileC), num.CeilDiv(p.H, p.TileH), num.CeilDiv(p.W, p.TileW)
}

// NumTiles returns the total tile count.
func (p ProducerGrid) NumTiles() int64 {
	nc, nh, nw := p.Counts()
	return int64(nc) * int64(nh) * int64(nw)
}

// Validate reports whether the grid is well-formed.
func (p ProducerGrid) Validate() error {
	if p.C <= 0 || p.H <= 0 || p.W <= 0 {
		return fmt.Errorf("authblock: producer tensor %dx%dx%d must be positive", p.C, p.H, p.W)
	}
	if p.TileC <= 0 || p.TileH <= 0 || p.TileW <= 0 {
		return fmt.Errorf("authblock: producer tile %dx%dx%d must be positive", p.TileC, p.TileH, p.TileW)
	}
	if p.WritesPerTile < 1 {
		return fmt.Errorf("authblock: WritesPerTile must be >= 1")
	}
	return nil
}

// ConsumerGrid describes how the next layer's mapping reads the shared
// tensor as its ifmap: channel tiles plus spatial convolution windows that
// step by Step but extend over Win (overlapping when Win > Step — the halo
// case), clipped to the tensor (padding is generated on chip).
type ConsumerGrid struct {
	// TileC is the channels per consumer tile.
	TileC int
	// WinH, WinW are the window extents; StepH, StepW the strides between
	// window origins; OffH, OffW the origin of window (0,0) (negative when
	// the consumer pads).
	WinH, WinW   int
	StepH, StepW int
	OffH, OffW   int
	// CountC, CountH, CountW are the tile counts per axis.
	CountC, CountH, CountW int
	// FetchesPerTile is how many times each tile is re-read from DRAM.
	FetchesPerTile int64
}

// NumTiles returns the total consumer tile count.
func (c ConsumerGrid) NumTiles() int64 {
	return int64(c.CountC) * int64(c.CountH) * int64(c.CountW)
}

// Aligned returns a consumer grid that reads the producer's tiles exactly
// (used for segment-sink tensors consumed sequentially downstream).
func (p ProducerGrid) Aligned() ConsumerGrid {
	nc, nh, nw := p.Counts()
	return ConsumerGrid{
		TileC: p.TileC,
		WinH:  p.TileH, WinW: p.TileW,
		StepH: p.TileH, StepW: p.TileW,
		CountC: nc, CountH: nh, CountW: nw,
		FetchesPerTile: 1,
	}
}

// Validate reports whether the grid is well-formed.
func (c ConsumerGrid) Validate() error {
	if c.TileC <= 0 || c.WinH <= 0 || c.WinW <= 0 {
		return fmt.Errorf("authblock: consumer tile %dx%dx%d must be positive", c.TileC, c.WinH, c.WinW)
	}
	if c.StepH <= 0 || c.StepW <= 0 {
		return fmt.Errorf("authblock: consumer steps must be positive")
	}
	if c.CountC <= 0 || c.CountH <= 0 || c.CountW <= 0 {
		return fmt.Errorf("authblock: consumer counts must be positive")
	}
	if c.FetchesPerTile < 1 {
		return fmt.Errorf("authblock: FetchesPerTile must be >= 1")
	}
	return nil
}

// Params carries the datatype widths of the cost model.
type Params struct {
	// WordBits is the element width.
	WordBits int
	// HashBits is the stored authentication-tag width (the paper's hashes;
	// 64-bit truncated GCM tags by default).
	HashBits int
}

// DefaultParams returns 8-bit words with 64-bit tags.
func DefaultParams() Params { return Params{WordBits: 8, HashBits: 64} }

// Costs is the extra off-chip traffic of an AuthBlock regime, in bits,
// matching the Figure 11b breakdown.
type Costs struct {
	// HashWriteBits: tags written when the producer generates the tensor.
	HashWriteBits int64
	// HashReadBits: tags fetched alongside consumer reads.
	HashReadBits int64
	// RedundantBits: data fetched only because it shares an AuthBlock with
	// needed data.
	RedundantBits int64
	// RehashBits: traffic of explicit rehash passes (read + decrypt +
	// re-hash + write), including their tag traffic.
	RehashBits int64
}

// Total returns all extra bits.
func (c Costs) Total() int64 {
	return c.HashWriteBits + c.HashReadBits + c.RedundantBits + c.RehashBits
}

// HashBitsTotal returns hash reads plus writes.
func (c Costs) HashBitsTotal() int64 { return c.HashWriteBits + c.HashReadBits }

// Add accumulates.
func (c *Costs) Add(o Costs) {
	c.HashWriteBits += o.HashWriteBits
	c.HashReadBits += o.HashReadBits
	c.RedundantBits += o.RedundantBits
	c.RehashBits += o.RehashBits
}

// axisClass is a per-axis overlap segment: the local interval [lo, hi)
// within a producer tile whose extent on this axis is tdim.
type axisClass struct {
	lo, hi, tdim int
}

// axisDecompose intersects every consumer interval on one axis with the
// producer tile boundaries, returning the distinct local segments and their
// multiplicities. interval i is [start(i), start(i)+win) clipped to
// [0, extent); producer tiles cut at multiples of tile.
func axisDecompose(count, off, step, win, extent, tile int) map[axisClass]int64 {
	out := make(map[axisClass]int64)
	for i := 0; i < count; i++ {
		lo := off + num.MulInt(i, step)
		hi := lo + win
		if lo < 0 {
			lo = 0
		}
		if hi > extent {
			hi = extent
		}
		if lo >= hi {
			continue
		}
		for x := lo; x < hi; {
			tIdx := x / tile
			tLo := num.MulInt(tIdx, tile)
			tHi := tLo + tile
			if tHi > extent {
				tHi = extent
			}
			segHi := hi
			if segHi > tHi {
				segHi = tHi
			}
			out[axisClass{lo: x - tLo, hi: segHi - tLo, tdim: tHi - tLo}]++
			x = segHi
		}
	}
	return out
}

// consumerClasses decomposes the consumer grid against the producer grid
// into per-axis class maps (channels, rows, columns).
func consumerClasses(p ProducerGrid, c ConsumerGrid) (ch, rows, cols map[axisClass]int64) {
	ch = axisDecompose(c.CountC, 0, c.TileC, c.TileC, p.C, p.TileC)
	rows = axisDecompose(c.CountH, c.OffH, c.StepH, c.WinH, p.H, p.TileH)
	cols = axisDecompose(c.CountW, c.OffW, c.StepW, c.WinW, p.W, p.TileW)
	return ch, rows, cols
}

// HashWriteBits returns the producer-side tag traffic for blocks of u
// elements: every tile stores ceil(tileElems/u) tags each time it is
// written.
func (p ProducerGrid) HashWriteBits(u int, par Params) int64 {
	var blocks int64
	forEachTileClass(p, func(tc, th, tw int, mult int64) {
		flat := int64(tc) * int64(th) * int64(tw)
		blocks += mult * num.CeilDiv64(flat, int64(u))
	})
	return blocks * p.WritesPerTile * int64(par.HashBits)
}

// forEachTileClass enumerates the distinct producer tile shapes (interior
// and clipped edge tiles) with multiplicities.
func forEachTileClass(p ProducerGrid, fn func(tc, th, tw int, mult int64)) {
	axis := func(extent, tile int) [][2]int { // (dim, count)
		full := extent / tile
		out := [][2]int{}
		if full > 0 {
			out = append(out, [2]int{tile, full})
		}
		if rem := extent % tile; rem > 0 {
			out = append(out, [2]int{rem, 1})
		}
		return out
	}
	for _, ac := range axis(p.C, p.TileC) {
		for _, ah := range axis(p.H, p.TileH) {
			for _, aw := range axis(p.W, p.TileW) {
				fn(ac[0], ah[0], aw[0], int64(ac[1])*int64(ah[1])*int64(aw[1]))
			}
		}
	}
}

// EvaluateCross computes the extra off-chip traffic when AuthBlocks of
// (orientation o, size u) are laid over the producer tiles and the consumer
// reads the tensor with its own tiling. This is the workhorse behind both
// the Figure 9 sweep and the optimal-assignment search. The consumer-class
// decomposition depends only on the pair, so it is fetched from the shared
// memo and reused across every (orientation, size) candidate; the result is
// bitwise-identical to evaluateCrossReference (equiv_test.go).
func EvaluateCross(p ProducerGrid, c ConsumerGrid, o Orientation, u int, par Params) Costs {
	d := decompositionFor(p, c)
	return d.evaluate(o, u, p.HashWriteBits(u, par), c.FetchesPerTile, par)
}

// TensorBits returns the tensor size in data bits.
func (p ProducerGrid) TensorBits(par Params) int64 {
	return int64(p.C) * int64(p.H) * int64(p.W) * int64(par.WordBits)
}

// consumerFootprintBits returns the total bits of all consumer tiles
// including halo duplication (overlapping windows counted repeatedly).
func consumerFootprintBits(p ProducerGrid, c ConsumerGrid, par Params) int64 {
	rowSum := clippedSpanSum(c.CountH, c.OffH, c.StepH, c.WinH, p.H)
	colSum := clippedSpanSum(c.CountW, c.OffW, c.StepW, c.WinW, p.W)
	chSum := clippedSpanSum(c.CountC, 0, c.TileC, c.TileC, p.C)
	// Tile volumes factor per axis, so the sum over all tiles is the
	// product of the per-axis clipped-length sums.
	return chSum * rowSum * colSum * int64(par.WordBits)
}

// clippedSpanSum sums the clipped interval lengths of an axis's windows.
func clippedSpanSum(count, off, step, win, extent int) int64 {
	var s int64
	for i := 0; i < count; i++ {
		lo := off + num.MulInt(i, step)
		hi := lo + win
		if lo < 0 {
			lo = 0
		}
		if hi > extent {
			hi = extent
		}
		if hi > lo {
			s += int64(hi - lo)
		}
	}
	return s
}
