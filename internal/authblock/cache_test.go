package authblock

import (
	"sync"
	"testing"
)

func cacheFixtures() (ProducerGrid, ConsumerGrid, Params) {
	p := ProducerGrid{C: 4, H: 12, W: 10, TileC: 2, TileH: 6, TileW: 5, WritesPerTile: 1}
	c := ConsumerGrid{
		TileC: 2, WinH: 7, WinW: 6, StepH: 6, StepW: 5,
		OffH: -1, OffW: 0, CountC: 2, CountH: 2, CountW: 2,
		FetchesPerTile: 1,
	}
	return p, c, Params{WordBits: 8, HashBits: 64}
}

func TestOptimalCachedMatchesUncached(t *testing.T) {
	p, c, par := cacheFixtures()
	want := Optimal(p, c, par)
	got := OptimalCached(p, c, par)
	if got != want {
		t.Fatalf("cached %+v != uncached %+v", got, want)
	}
	// Second call hits the cache and must be identical.
	if again := OptimalCached(p, c, par); again != want {
		t.Fatal("cache returned different result")
	}
}

func TestTileAsAuthBlockCachedMatchesUncached(t *testing.T) {
	p, c, par := cacheFixtures()
	wantCosts, wantRehash := TileAsAuthBlock(p, c, par)
	gotCosts, gotRehash := TileAsAuthBlockCached(p, c, par)
	if gotCosts != wantCosts || gotRehash != wantRehash {
		t.Fatalf("cached (%+v,%v) != uncached (%+v,%v)", gotCosts, gotRehash, wantCosts, wantRehash)
	}
}

func TestCacheStatsCountHitsAndMisses(t *testing.T) {
	ResetCaches()
	p, c, par := cacheFixtures()
	OptimalCached(p, c, par)
	OptimalCached(p, c, par)
	OptimalCached(p, c, par)
	TileAsAuthBlockCached(p, c, par)
	TileAsAuthBlockCached(p, c, par)
	opt, tile := CacheStats()
	if opt.Misses != 1 || opt.Hits != 2 || opt.Entries != 1 {
		t.Errorf("optimal stats = %+v", opt)
	}
	if tile.Misses != 1 || tile.Hits != 1 || tile.Entries != 1 {
		t.Errorf("tile stats = %+v", tile)
	}
	ResetCaches()
	opt, tile = CacheStats()
	if opt != (Stats{}) || tile != (Stats{}) {
		t.Errorf("stats after reset: opt=%+v tile=%+v", opt, tile)
	}
}

func TestCachesAreConcurrencySafe(t *testing.T) {
	p, c, par := cacheFixtures()
	want := Optimal(p, c, par)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Vary params slightly so goroutines mix hits and misses.
			pp := p
			pp.TileW = 1 + i%5
			OptimalCached(pp, c, par)
			TileAsAuthBlockCached(pp, c, par)
			if got := OptimalCached(p, c, par); got != want {
				t.Errorf("concurrent cached result differs")
			}
		}(i)
	}
	wg.Wait()
}
