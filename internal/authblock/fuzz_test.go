package authblock

import "testing"

// FuzzCountBoxBlocks cross-checks the analytic congruence counter against
// the enumeration oracle on fuzzer-chosen geometries.
func FuzzCountBoxBlocks(f *testing.F) {
	f.Add(uint8(1), uint8(30), uint8(30), uint8(0), uint8(30), uint8(10), uint8(30), uint8(0), uint8(10))
	f.Add(uint8(4), uint8(7), uint8(9), uint8(1), uint8(5), uint8(2), uint8(8), uint8(1), uint8(37))
	f.Fuzz(func(t *testing.T, tc, tp, tq, p0, p1, q0, q1, orient, u uint8) {
		tC := int(tc)%6 + 1
		tP := int(tp)%16 + 1
		tQ := int(tq)%16 + 1
		b := Box{
			C0: 0, C1: tC,
			P0: int(p0) % tP, Q0: int(q0) % tQ,
		}
		b.P1 = b.P0 + 1 + int(p1)%(tP-b.P0)
		b.Q1 = b.Q0 + 1 + int(q1)%(tQ-b.Q0)
		o := Orientations[int(orient)%int(NumOrientations)]
		uu := int(u)%(tC*tP*tQ+4) + 1

		gb, gc := CountBoxBlocks(tC, tP, tQ, b, o, uu)
		wb, wc := countBoxBlocksBrute(tC, tP, tQ, b, o, uu)
		if gb != wb || gc != wc {
			t.Fatalf("tile %dx%dx%d box %+v %v u=%d: got (%d,%d) want (%d,%d)",
				tC, tP, tQ, b, o, uu, gb, gc, wb, wc)
		}
	})
}
