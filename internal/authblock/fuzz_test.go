package authblock

import "testing"

// FuzzEvaluateCrossEquivalence cross-checks the shared-decomposition fast
// path against the retained per-candidate reference on fuzzer-generated
// grid pairs: the cost breakdown must match bit for bit for every
// orientation, and the bound-pruned optimal search must agree with the
// exhaustive reference search.
func FuzzEvaluateCrossEquivalence(f *testing.F) {
	f.Add(uint8(4), uint8(10), uint8(10), uint8(2), uint8(4), uint8(3),
		uint8(3), uint8(3), uint8(5), uint8(2), uint8(4), uint8(1), uint8(0), uint8(7))
	f.Add(uint8(1), uint8(6), uint8(12), uint8(1), uint8(1), uint8(12),
		uint8(1), uint8(2), uint8(6), uint8(1), uint8(6), uint8(0), uint8(1), uint8(33))
	f.Fuzz(func(t *testing.T, pc, ph, pw, tc, th, tw, cc, wh, ww, sh, sw, offh, offw, u uint8) {
		p := ProducerGrid{
			C: int(pc)%6 + 1, H: int(ph)%12 + 2, W: int(pw)%12 + 2,
			WritesPerTile: 1 + int64(tc)%2,
		}
		p.TileC = int(tc)%p.C + 1
		p.TileH = int(th)%p.H + 1
		p.TileW = int(tw)%p.W + 1
		c := ConsumerGrid{
			TileC: int(cc)%p.C + 1,
			WinH:  int(wh)%p.H + 1, WinW: int(ww)%p.W + 1,
			StepH: int(sh)%4 + 1, StepW: int(sw)%4 + 1,
			OffH: -(int(offh) % 2), OffW: -(int(offw) % 2),
			CountC: int(cc)%3 + 1, CountH: int(wh)%5 + 1, CountW: int(ww)%5 + 1,
			FetchesPerTile: 1 + int64(sh)%3,
		}
		if p.Validate() != nil || c.Validate() != nil {
			t.Skip()
		}
		flat := p.TileC * p.TileH * p.TileW
		uu := int(u)%(flat+4) + 1
		par := DefaultParams()
		for _, o := range Orientations {
			got := EvaluateCross(p, c, o, uu, par)
			want := evaluateCrossReference(p, c, o, uu, par)
			if got != want {
				t.Fatalf("p=%+v c=%+v %v u=%d: fast %+v != reference %+v", p, c, o, uu, got, want)
			}
		}
		if got, want := Optimal(p, c, par), OptimalReference(p, c, par); got != want {
			t.Fatalf("p=%+v c=%+v: Optimal %+v != reference %+v", p, c, got, want)
		}
	})
}

// FuzzCountBoxBlocks cross-checks the analytic congruence counter against
// the enumeration oracle on fuzzer-chosen geometries.
func FuzzCountBoxBlocks(f *testing.F) {
	f.Add(uint8(1), uint8(30), uint8(30), uint8(0), uint8(30), uint8(10), uint8(30), uint8(0), uint8(10))
	f.Add(uint8(4), uint8(7), uint8(9), uint8(1), uint8(5), uint8(2), uint8(8), uint8(1), uint8(37))
	f.Fuzz(func(t *testing.T, tc, tp, tq, p0, p1, q0, q1, orient, u uint8) {
		tC := int(tc)%6 + 1
		tP := int(tp)%16 + 1
		tQ := int(tq)%16 + 1
		b := Box{
			C0: 0, C1: tC,
			P0: int(p0) % tP, Q0: int(q0) % tQ,
		}
		b.P1 = b.P0 + 1 + int(p1)%(tP-b.P0)
		b.Q1 = b.Q0 + 1 + int(q1)%(tQ-b.Q0)
		o := Orientations[int(orient)%int(NumOrientations)]
		uu := int(u)%(tC*tP*tQ+4) + 1

		gb, gc := CountBoxBlocks(tC, tP, tQ, b, o, uu)
		wb, wc := countBoxBlocksBrute(tC, tP, tQ, b, o, uu)
		if gb != wb || gc != wc {
			t.Fatalf("tile %dx%dx%d box %+v %v u=%d: got (%d,%d) want (%d,%d)",
				tC, tP, tQ, b, o, uu, gb, gc, wb, wc)
		}
	})
}
