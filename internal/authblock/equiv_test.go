package authblock

import (
	"math/rand"
	"testing"
)

// equivGrids returns a deterministic matrix of producer/consumer pair
// geometries: hand-picked shapes covering aligned, halo, strided, clipped
// and degenerate axes, plus randomised pairs.
func equivGrids(t testing.TB) []struct {
	p ProducerGrid
	c ConsumerGrid
} {
	t.Helper()
	out := []struct {
		p ProducerGrid
		c ConsumerGrid
	}{
		{ // aligned, single tile
			p: Whole(4, 9, 7),
			c: Whole(4, 9, 7).Aligned(),
		},
		{ // paper-style halo consumer over row-tiled producer
			p: ProducerGrid{C: 64, H: 56, W: 56, TileC: 16, TileH: 14, TileW: 56, WritesPerTile: 1},
			c: ConsumerGrid{
				TileC: 16, WinH: 16, WinW: 58, StepH: 14, StepW: 56,
				OffH: -1, OffW: -1, CountC: 4, CountH: 4, CountW: 1,
				FetchesPerTile: 1,
			},
		},
		{ // clipped edge tiles, repeated fetches and spills
			p: ProducerGrid{C: 5, H: 10, W: 10, TileC: 2, TileH: 4, TileW: 3, WritesPerTile: 2},
			c: ConsumerGrid{
				TileC: 3, WinH: 3, WinW: 5, StepH: 2, StepW: 4,
				OffH: -1, OffW: 0, CountC: 2, CountH: 5, CountW: 3,
				FetchesPerTile: 3,
			},
		},
		{ // unit-height tiles (orientation degeneracy)
			p: ProducerGrid{C: 3, H: 6, W: 12, TileC: 1, TileH: 1, TileW: 12, WritesPerTile: 1},
			c: ConsumerGrid{
				TileC: 1, WinH: 2, WinW: 6, StepH: 1, StepW: 6,
				CountC: 3, CountH: 5, CountW: 2,
				FetchesPerTile: 1,
			},
		},
	}
	rng := rand.New(rand.NewSource(404))
	for i := 0; i < 20; i++ {
		p := ProducerGrid{
			C: 1 + rng.Intn(6), H: 2 + rng.Intn(12), W: 2 + rng.Intn(12),
			WritesPerTile: 1 + int64(rng.Intn(2)),
		}
		p.TileC, p.TileH, p.TileW = 1+rng.Intn(p.C), 1+rng.Intn(p.H), 1+rng.Intn(p.W)
		c := ConsumerGrid{
			TileC: 1 + rng.Intn(p.C), WinH: 1 + rng.Intn(p.H), WinW: 1 + rng.Intn(p.W),
			StepH: 1 + rng.Intn(4), StepW: 1 + rng.Intn(4),
			OffH: -rng.Intn(2), OffW: -rng.Intn(2),
			CountC: 1 + rng.Intn(3), CountH: 1 + rng.Intn(5), CountW: 1 + rng.Intn(5),
			FetchesPerTile: 1 + int64(rng.Intn(3)),
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		out = append(out, struct {
			p ProducerGrid
			c ConsumerGrid
		}{p, c})
	}
	return out
}

// TestEvaluateCrossEquivalence is the decomposition-reuse proof obligation:
// the shared-decomposition EvaluateCross must return byte-identical Costs to
// the retained per-candidate reference across a grid x orientation x size
// matrix.
func TestEvaluateCrossEquivalence(t *testing.T) {
	par := DefaultParams()
	for gi, g := range equivGrids(t) {
		flat := g.p.TileC * g.p.TileH * g.p.TileW
		sizes := append([]int{}, CandidateSizes(g.p, g.c)...)
		for u := 1; u <= flat+3; u += 1 + flat/17 {
			sizes = append(sizes, u)
		}
		for _, o := range Orientations {
			for _, u := range sizes {
				got := EvaluateCross(g.p, g.c, o, u, par)
				want := evaluateCrossReference(g.p, g.c, o, u, par)
				if got != want {
					t.Fatalf("grid %d %v u=%d: fast %+v != reference %+v", gi, o, u, got, want)
				}
			}
		}
	}
}

// TestOptimalMatchesReference: the reordered, seeded, bound-pruned search
// must select the identical assignment with identical costs as the original
// orientation-outer exhaustive search.
func TestOptimalMatchesReference(t *testing.T) {
	par := DefaultParams()
	for gi, g := range equivGrids(t) {
		got := Optimal(g.p, g.c, par)
		want := OptimalReference(g.p, g.c, par)
		if got != want {
			t.Fatalf("grid %d: fast %+v != reference %+v (p=%+v c=%+v)", gi, got, want, g.p, g.c)
		}
	}
}

// TestTileBaselineMatchesReference: the decomposition-backed direct tile
// baseline must match the retained map-ranging reference bit for bit.
func TestTileBaselineMatchesReference(t *testing.T) {
	par := DefaultParams()
	for gi, g := range equivGrids(t) {
		got := tileBaselineDirect(g.p, g.c, par)
		want := tileBaselineDirectReference(g.p, g.c, par)
		if got != want {
			t.Fatalf("grid %d: fast %+v != reference %+v", gi, got, want)
		}
	}
}

// TestCandidateSizesMemoised: the memoised list must equal the unmemoised
// computation and be returned identically (same backing array) on repeat
// lookups.
func TestCandidateSizesMemoised(t *testing.T) {
	p := ProducerGrid{C: 8, H: 14, W: 14, TileC: 4, TileH: 7, TileW: 14, WritesPerTile: 1}
	c := p.Aligned()
	a := CandidateSizes(p, c)
	b := CandidateSizes(p, c)
	if &a[0] != &b[0] {
		t.Error("repeat CandidateSizes lookup rebuilt the list")
	}
	want := candidateSizes(p, c)
	if len(a) != len(want) {
		t.Fatalf("memoised %d sizes, want %d", len(a), len(want))
	}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("size %d: %d != %d", i, a[i], want[i])
		}
	}
}

// BenchmarkAuthBlockOptimal measures one cold-cache optimal-assignment
// search (decomposition, size and result memos all dropped each iteration)
// for a realistic cross-layer pair geometry; the Reference variant measures
// the retained pre-batching search on the same geometry.
func BenchmarkAuthBlockOptimal(b *testing.B) {
	p := ProducerGrid{C: 64, H: 56, W: 56, TileC: 16, TileH: 14, TileW: 56, WritesPerTile: 1}
	c := ConsumerGrid{
		TileC: 16, WinH: 16, WinW: 58, StepH: 14, StepW: 56,
		OffH: -1, OffW: -1, CountC: 4, CountH: 4, CountW: 1,
		FetchesPerTile: 1,
	}
	par := DefaultParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ResetCaches()
		Optimal(p, c, par)
	}
}

func BenchmarkAuthBlockOptimalReference(b *testing.B) {
	p := ProducerGrid{C: 64, H: 56, W: 56, TileC: 16, TileH: 14, TileW: 56, WritesPerTile: 1}
	c := ConsumerGrid{
		TileC: 16, WinH: 16, WinW: 58, StepH: 14, StepW: 56,
		OffH: -1, OffW: -1, CountC: 4, CountH: 4, CountW: 1,
		FetchesPerTile: 1,
	}
	par := DefaultParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		OptimalReference(p, c, par)
	}
}
