package authblock

import (
	"fmt"

	"secureloop/internal/num"
)

// Orientation selects which tile dimension the flattened AuthBlock runs
// along fastest. For the paper's 2-D illustrations, AlongQ is "horizontal"
// (blocks run along tensor columns) and AlongP is "vertical" (blocks run
// along tensor rows). AlongC slices along the channel dimension.
type Orientation int

const (
	// AlongQ flattens (channel, row, column): horizontal blocks.
	AlongQ Orientation = iota
	// AlongP flattens (channel, column, row): vertical blocks.
	AlongP
	// AlongC flattens (row, column, channel): channel-direction blocks.
	AlongC

	// NumOrientations counts the orientations.
	NumOrientations
)

// Orientations lists all orientations.
var Orientations = [NumOrientations]Orientation{AlongQ, AlongP, AlongC}

// String names the orientation as in the paper's figures.
func (o Orientation) String() string {
	switch o {
	case AlongQ:
		return "horizontal"
	case AlongP:
		return "vertical"
	case AlongC:
		return "channel"
	}
	return "unknown"
}

// Box is an axis-aligned region inside a producer tile, in the tile's local
// coordinates: channels [C0,C1), rows [P0,P1), columns [Q0,Q1).
type Box struct {
	C0, C1 int
	P0, P1 int
	Q0, Q1 int
}

// Volume returns the element count of the box.
func (b Box) Volume() int64 {
	return int64(b.C1-b.C0) * int64(b.P1-b.P0) * int64(b.Q1-b.Q0)
}

// valid reports whether the box is non-empty and inside the tile.
func (b Box) valid(tc, tp, tq int) bool {
	return b.C0 >= 0 && b.C0 < b.C1 && b.C1 <= tc &&
		b.P0 >= 0 && b.P0 < b.P1 && b.P1 <= tp &&
		b.Q0 >= 0 && b.Q0 < b.Q1 && b.Q1 <= tq
}

// permute maps (tile dims, box) into flattening order (d0 slowest, d2
// fastest) for the orientation.
func permute(tileC, tileP, tileQ int, b Box, o Orientation) (dims [3]int, lo, hi [3]int) {
	switch o {
	case AlongQ:
		dims = [3]int{tileC, tileP, tileQ}
		lo = [3]int{b.C0, b.P0, b.Q0}
		hi = [3]int{b.C1, b.P1, b.Q1}
	case AlongP:
		dims = [3]int{tileC, tileQ, tileP}
		lo = [3]int{b.C0, b.Q0, b.P0}
		hi = [3]int{b.C1, b.Q1, b.P1}
	case AlongC:
		dims = [3]int{tileP, tileQ, tileC}
		lo = [3]int{b.P0, b.Q0, b.C0}
		hi = [3]int{b.P1, b.Q1, b.C1}
	default:
		panic(fmt.Sprintf("authblock: bad orientation %d", int(o)))
	}
	return dims, lo, hi
}

// CountBoxBlocks returns, for AuthBlocks of u elements laid over a producer
// tile of dims (tileC, tileP, tileQ) flattened in orientation o, the number
// of distinct blocks the box touches and the number of elements those
// blocks cover (clipping the tile's final partial block to the tile end).
// The box elements themselves are a subset of the covered elements, so the
// redundant-read count for fetching this box is covered - box.Volume().
//
// The computation runs the paper's congruence formulation: the box's rows
// in flattened space form nested arithmetic progressions of equal-length
// runs; block-boundary crossings are counted with floor-sums and the
// duplicate-block corrections with residue-window counting. Slab
// contributions repeat with period u/gcd(slabStride, u), so the cost is
// O(min(slabs, period) * log) rather than element enumeration.
func CountBoxBlocks(tileC, tileP, tileQ int, b Box, o Orientation, u int) (blocks, covered int64) {
	if u <= 0 {
		panic("authblock: block size must be positive")
	}
	if !b.valid(tileC, tileP, tileQ) {
		panic(fmt.Sprintf("authblock: box %+v invalid for tile %dx%dx%d", b, tileC, tileP, tileQ))
	}
	dims, lo, hi := permute(tileC, tileP, tileQ, b, o)
	d1, d2 := int64(dims[1]), int64(dims[2])
	flatLen := int64(dims[0]) * d1 * d2
	u64 := int64(u)

	runLen := int64(hi[2] - lo[2])
	j1 := int64(hi[1] - lo[1]) // runs per slab
	step := d1 * d2            // flat distance between consecutive slab bases
	n0 := int64(hi[0] - lo[0]) // slab count
	base0 := (int64(lo[0])*d1+int64(lo[1]))*d2 + int64(lo[2])
	// Flat offset of the box's last element, in the original dims (computed
	// before canonicalisation below rewrites the slab/run shape).
	maxFlat := (int64(hi[0]-1)*d1+int64(hi[1]-1))*d2 + int64(hi[2]) - 1

	// Canonicalise: a "slab" is any group of runs whose starts form one
	// arithmetic progression, and the whole box collapses to a single slab
	// whenever the per-slab progressions concatenate into one.
	if runLen == d2 {
		// Full fastest axis: each slab's runs are contiguous, so the slab is
		// one run of length j1*d2.
		runLen = j1 * d2
		j1 = 1
	}
	if j1 == 1 {
		// One run per slab: the slab bases are themselves a progression of
		// stride step.
		j1, d2, n0 = n0, step, 1
	} else if j1 == d1 {
		// Full middle axis: run starts are base0 + (j + k*d1)*d2 with
		// j + k*d1 contiguous in [0, n0*d1), one progression of stride d2.
		j1, n0 = n0*j1, 1
	}

	// The first slab has no predecessor inside the box, so no cross-slab
	// dedup applies.
	total := slabBlockCount(base0, u64, d2, runLen, j1, step, false)

	// Every later slab's contribution (including its dedup against the
	// previous slab) depends only on base mod u: floorSum and
	// countResiduesBelow shift by exactly n per +u in b, which cancels in
	// the differences, and both sides of the dedup equality grow by one per
	// +u in base. Bases advance by step per slab, so contributions repeat
	// with period p = u / gcd(step, u); when the box spans more slabs than
	// one period, one period of slab evaluations determines the whole sum.
	if rest := n0 - 1; rest > 0 {
		if p := u64 / gcd(step%u64, u64); p < rest {
			rem := rest % p
			var cycle, prefix int64
			for k := int64(1); k <= p; k++ {
				c := slabBlockCount(base0+k*step, u64, d2, runLen, j1, step, true)
				cycle += c
				if k <= rem {
					prefix += c
				}
			}
			total += (rest/p)*cycle + prefix
		} else {
			for k := int64(1); k <= rest; k++ {
				total += slabBlockCount(base0+k*step, u64, d2, runLen, j1, step, true)
			}
		}
	}

	covered = total * u64
	// The tile's final block may be partial; if the box touches it, the
	// coverage is clipped to the tile end.
	if rem := flatLen % u64; rem != 0 {
		lastBlock := flatLen / u64 // index of the partial block
		if maxFlat >= lastBlock*u64 {
			covered -= u64 - rem
		}
	}
	return total, covered
}

// slabBlockCount returns the number of distinct blocks one slab of the box
// contributes: the blocks its runs touch, minus (when dedup is set) the
// boundary block it may share with the preceding slab at base-step.
func slabBlockCount(base, u64, d2, runLen, j1, step int64, dedup bool) int64 {
	// Within the slab: runs start at base + j*d2, j in [0, j1), each of
	// length runLen. Distinct blocks touched by the slab:
	//   sum_j (floor((s_j+runLen-1)/u) - floor(s_j/u) + 1) - duplicates
	// where duplicates counts consecutive runs whose block ranges share
	// their boundary block. Ranges can overlap by at most one block
	// because runs are disjoint and ordered.
	sumLast := floorSum(j1, u64, d2, base+runLen-1)
	sumFirst := floorSum(j1, u64, d2, base)
	blocks := sumLast - sumFirst + j1

	// Duplicate j/j+1 boundary blocks: no multiple of u in
	// (s_j+runLen-1, s_j+d2], i.e. (s_j+runLen-1) mod u < u - g with
	// g = d2 - runLen + 1.
	g := d2 - runLen + 1
	if g <= u64 && j1 > 1 {
		blocks -= countResiduesBelow(j1-1, u64, d2, base+runLen-1, u64-g)
	}

	// Cross-slab duplicate: this slab's first block vs the last block of the
	// preceding slab, whose final element sits at base-step+(j1-1)*d2+runLen-1
	// (floor((x-1)/u) == ceil(x/u)-1 for x > 0).
	if dedup && base/u64 == num.CeilDiv64(base-step+(j1-1)*d2+runLen, u64)-1 {
		blocks--
	}
	return blocks
}

// countBoxBlocksBrute is the enumeration oracle for CountBoxBlocks: it
// marks every touched block directly. Exported to the tests via
// export_test.go.
func countBoxBlocksBrute(tileC, tileP, tileQ int, b Box, o Orientation, u int) (blocks, covered int64) {
	dims, lo, hi := permute(tileC, tileP, tileQ, b, o)
	flatLen := int64(dims[0]) * int64(dims[1]) * int64(dims[2])
	touched := map[int64]bool{}
	for i0 := lo[0]; i0 < hi[0]; i0++ {
		for i1 := lo[1]; i1 < hi[1]; i1++ {
			for i2 := lo[2]; i2 < hi[2]; i2++ {
				flat := (int64(i0)*int64(dims[1])+int64(i1))*int64(dims[2]) + int64(i2)
				touched[flat/int64(u)] = true
			}
		}
	}
	for k := range touched {
		blocks++
		end := (k + 1) * int64(u)
		if end > flatLen {
			end = flatLen
		}
		covered += end - k*int64(u)
	}
	return blocks, covered
}
