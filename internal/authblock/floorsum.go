// Package authblock implements the paper's core contribution: optimal
// authentication-block assignment (Section 4.2). An AuthBlock is the unit
// of data one cryptographic hash covers. Blocks are laid over each producer
// tile of a tensor by flattening the tile in a chosen orientation and
// slicing it into size-u runs (the paper's "n-1 dimensions set to 1, the
// remaining dimension u varied"); the k-th block therefore starts at flat
// offset u*k, wrapping row to row exactly as the paper's
// Lx = (u*k) mod w_i formulation describes.
//
// When a consumer reads a region that is misaligned with this block grid
// (because of cross-layer tiling mismatches or halos), it must fetch every
// block it touches. Counting touched blocks for all consumer tiles at once
// is a linear-congruence problem over the arithmetic progressions of row
// starts; this package solves it analytically with Euclidean-style
// floor-sums (log time per progression), with a brute-force oracle used in
// the tests.
package authblock

// floorSum returns sum_{i=0}^{n-1} floor((a*i + b) / m) for m > 0, handling
// negative a and b. This is the classic Euclidean-like recursion (the same
// gcd structure as the extended Euclidean algorithm the paper invokes),
// running in O(log max(a, m)).
func floorSum(n, m, a, b int64) int64 {
	if n <= 0 {
		return 0
	}
	if m <= 0 {
		panic("authblock: floorSum modulus must be positive")
	}
	var ans int64
	// Normalise a and b into [0, m).
	if a < 0 {
		a2 := a%m + m
		if a2 == m {
			a2 = 0
		}
		// a*i = (a2 - m*k)*i ; account the wholesale floors.
		ans -= n * (n - 1) / 2 * ((a2 - a) / m)
		a = a2
	}
	if b < 0 {
		b2 := b%m + m
		if b2 == m {
			b2 = 0
		}
		ans -= n * ((b2 - b) / m)
		b = b2
	}
	for {
		if a >= m {
			ans += n * (n - 1) / 2 * (a / m)
			a %= m
		}
		if b >= m {
			ans += n * (b / m)
			b %= m
		}
		yMax := a*n + b
		if yMax < m {
			break
		}
		n = yMax / m
		b = yMax % m
		m, a = a, m
	}
	return ans
}

// countResiduesBelow returns the number of i in [0, n) with
// (a*i + b) mod m < t, for 0 <= t <= m. This is the paper's
// linear-congruence counting: how many iterations of an arithmetic
// progression land in a residue window. It uses the identity
// [x mod m < t] = floor(x/m) - floor((x-t)/m).
func countResiduesBelow(n, m, a, b, t int64) int64 {
	if n <= 0 || t <= 0 {
		return 0
	}
	if t >= m {
		return n
	}
	return floorSum(n, m, a, b) - floorSum(n, m, a, b-t)
}

// gcd returns the greatest common divisor of a and b (non-negative inputs).
func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
