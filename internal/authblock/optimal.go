package authblock

import (
	"context"
	"sort"

	"secureloop/internal/num"
)

// Assignment is one AuthBlock regime for a tensor: blocks of U elements in
// the given flattening orientation, laid over each producer tile.
type Assignment struct {
	Orientation Orientation
	// U is the block size in elements.
	U int
}

// Result couples an assignment with its evaluated costs.
type Result struct {
	Assignment Assignment
	Costs      Costs
}

// CandidateSizes proposes the block sizes worth evaluating for a
// producer/consumer pair: all small sizes, powers of two, divisors of the
// producer tile's row length and plane/flat sizes (where the Figure 9 local
// minima live — block boundaries that align with row or plane boundaries
// eliminate redundant reads periodically), and row-multiples tied to the
// per-axis misalignment offsets.
func CandidateSizes(p ProducerGrid, c ConsumerGrid) []int {
	key := sizeKey{
		tileC: p.TileC, tileH: p.TileH, tileW: p.TileW,
		winH: c.WinH, winW: c.WinW, stepH: c.StepH, stepW: c.StepW,
	}
	if v, ok := sizeCache.get(key); ok {
		return v
	}
	return sizeCache.put(key, candidateSizes(p, c))
}

// candidateSizes is the unmemoised CandidateSizes.
func candidateSizes(p ProducerGrid, c ConsumerGrid) []int {
	flat := num.MulInt(num.MulInt(p.TileC, p.TileH), p.TileW)
	set := map[int]bool{1: true, flat: true}
	add := func(v int) {
		if v >= 1 && v <= flat {
			set[v] = true
		}
	}
	for v := 2; v <= 64 && v <= flat; v++ {
		add(v)
	}
	for v := 2; v <= flat; v *= 2 {
		add(v)
	}
	addDivisors := func(n int) {
		if n <= 0 {
			return
		}
		for d := 1; d <= n/d; d++ {
			if n%d == 0 {
				add(d)
				add(n / d)
			}
		}
	}
	addDivisors(p.TileW)
	addDivisors(num.MulInt(p.TileH, p.TileW))
	addDivisors(flat)
	// Misalignment-derived sizes: the paper's example shows zero-redundancy
	// points at factors of h*(wi-wj); offsets between consumer windows and
	// producer tile boundaries generate the analogous values here. rows maps
	// a (possibly negative) row count to whole rows of elements; non-positive
	// counts yield 0, which the off > 0 filter below discards.
	rows := func(h int) int {
		if h <= 0 {
			return 0
		}
		return num.MulInt(h, p.TileW)
	}
	for _, off := range []int{
		p.TileW - c.WinW, p.TileW - c.StepW, c.StepW, c.WinW,
		rows(p.TileH - c.WinH), rows(p.TileH - c.StepH),
		rows(c.StepH), rows(c.WinH),
	} {
		if off > 0 {
			add(off)
			addDivisors(off)
		}
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Optimal searches orientations x candidate sizes for the assignment that
// minimises the total extra off-chip traffic (hash writes + hash reads +
// redundant reads), the paper's Section 4.2 objective. Ties break toward
// larger blocks (fewer tags to store).
func Optimal(p ProducerGrid, c ConsumerGrid, par Params) Result {
	return OptimalOver(p, c, par, CandidateSizes(p, c))
}

// OptimalCtx is Optimal honouring a context; see OptimalOverCtx.
func OptimalCtx(ctx context.Context, p ProducerGrid, c ConsumerGrid, par Params) (Result, error) {
	return OptimalOverCtx(ctx, p, c, par, CandidateSizes(p, c))
}

// sizeChunk is the cancellation granularity of the candidate-size scan: the
// context is polled once per chunk of sizes, never per size, so the pruned
// scan stays branch-lean.
const sizeChunk = 32

// OptimalOver is Optimal with an explicit candidate-size list.
//
// The search runs on the shared pair decomposition: the class structure is
// built once, the producer-side hash-write traffic is computed once per
// size (not once per orientation), and alignment-seeded candidates are
// evaluated first so the per-size lower bound (pairDecomposition.lowerBound)
// can skip most of the remaining sizes without evaluating any orientation.
//
// The update rule — strictly smaller total, or equal total with strictly
// larger block — selects the minimum of (total, -U, orientation order)
// whatever order candidates are visited in, because orientations are always
// visited in Orientations order within one size; re-evaluating a seed or
// skipping a size whose lower bound exceeds the incumbent total therefore
// cannot change the result. TestOptimalMatchesReference holds the proof
// obligation against the retained OptimalReference.
func OptimalOver(p ProducerGrid, c ConsumerGrid, par Params, sizes []int) Result {
	res, _ := optimalOver(context.Background(), p, c, par, sizes)
	return res
}

// OptimalOverCtx is OptimalOver honouring a context, polled once per chunk
// of candidate sizes. On cancellation it returns the best assignment found
// so far together with ctx.Err(); callers must not treat the partial result
// as optimal.
func OptimalOverCtx(ctx context.Context, p ProducerGrid, c ConsumerGrid, par Params, sizes []int) (Result, error) {
	return optimalOver(ctx, p, c, par, sizes)
}

func optimalOver(ctx context.Context, p ProducerGrid, c ConsumerGrid, par Params, sizes []int) (Result, error) {
	d := decompositionFor(p, c)
	best := Result{Assignment: Assignment{Orientation: AlongQ, U: 1}}
	first := true
	fetches := c.FetchesPerTile
	consider := func(u int) {
		hw := p.HashWriteBits(u, par)
		if !first && d.lowerBound(u, hw, fetches, par) > best.Costs.Total() {
			return
		}
		for _, o := range Orientations {
			if skipOrientation(p, o) {
				continue
			}
			costs := d.evaluate(o, u, hw, fetches, par)
			if first || costs.Total() < best.Costs.Total() ||
				(costs.Total() == best.Costs.Total() && u > best.Assignment.U) {
				best = Result{Assignment: Assignment{Orientation: o, U: u}, Costs: costs}
				first = false
			}
		}
	}
	// Seeds: the Figure 9 local minima live where block boundaries align
	// with row, plane or tile boundaries. Evaluating those first gives the
	// lower bound a strong incumbent before the ascending scan begins.
	for _, seed := range []int{
		num.MulInt(num.MulInt(p.TileC, p.TileH), p.TileW),
		num.MulInt(p.TileH, p.TileW),
		p.TileW,
	} {
		for _, u := range sizes {
			if u == seed {
				consider(u)
				break
			}
		}
	}
	for i, u := range sizes {
		if i%sizeChunk == 0 {
			if err := ctx.Err(); err != nil {
				return best, err
			}
		}
		consider(u)
	}
	return best, nil
}

// skipOrientation prunes orientations that are degenerate for the tile
// shape (flattening along a unit dimension duplicates another orientation).
func skipOrientation(p ProducerGrid, o Orientation) bool {
	switch o {
	case AlongP:
		return p.TileH == 1 && p.TileW > 1 // same as AlongQ reordered
	case AlongC:
		return p.TileC == 1
	}
	return false
}

// Sweep evaluates every block size in [1, max] for one orientation,
// returning per-size costs — the Figure 9 visualisation.
func Sweep(p ProducerGrid, c ConsumerGrid, o Orientation, maxU int, par Params) []Result {
	out, _ := SweepCtx(context.Background(), p, c, o, maxU, par)
	return out
}

// SweepCtx is Sweep honouring a context, polled once per chunk of block
// sizes; on cancellation the sizes evaluated so far are returned with
// ctx.Err().
func SweepCtx(ctx context.Context, p ProducerGrid, c ConsumerGrid, o Orientation, maxU int, par Params) ([]Result, error) {
	d := decompositionFor(p, c)
	out := make([]Result, 0, maxU)
	for u := 1; u <= maxU; u++ {
		if u%sizeChunk == 0 {
			if err := ctx.Err(); err != nil {
				return out, err
			}
		}
		out = append(out, Result{
			Assignment: Assignment{Orientation: o, U: u},
			Costs:      d.evaluate(o, u, p.HashWriteBits(u, par), c.FetchesPerTile, par),
		})
	}
	return out, nil
}

// TileAsAuthBlock evaluates the prior-work baseline strategy (Section 3.2):
// one AuthBlock per producer tile. Cross-layer misalignment is then
// resolved by whichever is cheaper:
//
//   - direct: every consumer access fetches all producer tiles it overlaps
//     in full (Figure 4c's redundant reads), or
//   - rehash: one pass reads the whole tensor, re-assigns AuthBlocks to
//     match the consumer's tiles (duplicating halo data), and writes it
//     back (Section 3.2.1's workaround), after which consumer reads are
//     exact.
//
// The bool reports whether the rehash path was chosen.
func TileAsAuthBlock(p ProducerGrid, c ConsumerGrid, par Params) (Costs, bool) {
	direct := tileBaselineDirect(p, c, par)
	rehash := tileBaselineRehash(p, c, par)
	if rehash.Total() < direct.Total() {
		return rehash, true
	}
	return direct, false
}

// tileBaselineDirect counts whole-producer-tile fetches per consumer tile,
// on the shared pair decomposition.
func tileBaselineDirect(p ProducerGrid, c ConsumerGrid, par Params) Costs {
	return decompositionFor(p, c).tileDirect(p, c.FetchesPerTile, par)
}

// tileBaselineRehash charges a full reorganisation pass, after which every
// consumer tile is exactly one AuthBlock.
func tileBaselineRehash(p ProducerGrid, c ConsumerGrid, par Params) Costs {
	tensor := p.TensorBits(par)
	dup := consumerFootprintBits(p, c, par)
	oldTags := p.NumTiles() * int64(par.HashBits)
	newTags := c.NumTiles() * int64(par.HashBits)
	return Costs{
		HashWriteBits: p.NumTiles() * p.WritesPerTile * int64(par.HashBits),
		HashReadBits:  c.NumTiles() * c.FetchesPerTile * int64(par.HashBits),
		RehashBits:    tensor + dup + oldTags + newTags,
	}
}

// WeightCosts returns the tag traffic for a weight tensor: weight tiles
// never overlap and have no cross-layer consumer, so tile-as-an-AuthBlock
// is optimal for every strategy — one tag stored per tile and one fetched
// per tile read.
func WeightCosts(numTiles, fetchesPerTile int64, par Params) Costs {
	return Costs{
		HashWriteBits: 0, // weights are provisioned once by the host, off the critical path
		HashReadBits:  numTiles * fetchesPerTile * int64(par.HashBits),
	}
}

// SourceCosts returns the tag traffic for a segment-source ifmap (network
// input or post-processing output): the host or post-processing unit
// provisions AuthBlocks matching the consumer's tiles (duplicating halo
// data into both tiles when windows overlap), so consumer reads are exact
// and only tags travel.
func SourceCosts(c ConsumerGrid, par Params) Costs {
	return Costs{
		HashReadBits: c.NumTiles() * c.FetchesPerTile * int64(par.HashBits),
	}
}

// SinkCosts returns the tag traffic for a segment-sink ofmap (consumed by a
// separate post-processing step downstream): tags are written per producer
// tile; the downstream read is outside the segment's accounting.
func SinkCosts(p ProducerGrid, par Params) Costs {
	return Costs{
		HashWriteBits: p.NumTiles() * p.WritesPerTile * int64(par.HashBits),
	}
}
