package authblock

// This file retains the pre-batching evaluation paths verbatim. They
// rebuild the consumer-class decomposition for every (orientation, size)
// candidate — the redundancy the shared pairDecomposition removes — and
// serve as the equivalence oracles for the fast paths (equiv_test.go,
// FuzzEvaluateCrossEquivalence) and as the live "before" measurement for
// the cold-cache benchmarks.

// evaluateCrossReference is the original EvaluateCross: it recomputes the
// three axis decompositions and ranges over the class maps for each
// candidate. EvaluateCross must return bitwise-identical Costs.
func evaluateCrossReference(p ProducerGrid, c ConsumerGrid, o Orientation, u int, par Params) Costs {
	ch, rows, cols := consumerClasses(p, c)
	var hashReads, redundant int64
	for cc, nc := range ch {
		for rc, nr := range rows {
			for wc, nw := range cols {
				mult := nc * nr * nw
				box := Box{C0: cc.lo, C1: cc.hi, P0: rc.lo, P1: rc.hi, Q0: wc.lo, Q1: wc.hi}
				blocks, covered := CountBoxBlocks(cc.tdim, rc.tdim, wc.tdim, box, o, u)
				hashReads += mult * blocks
				redundant += mult * (covered - box.Volume())
			}
		}
	}
	return Costs{
		HashWriteBits: p.HashWriteBits(u, par),
		HashReadBits:  hashReads * c.FetchesPerTile * int64(par.HashBits),
		RedundantBits: redundant * c.FetchesPerTile * int64(par.WordBits),
	}
}

// OptimalReference is the original optimal-assignment search: orientations
// outer, sizes inner, a full reference evaluation per candidate, no shared
// decomposition, no size memo, no lower-bound pruning. Optimal must select
// the identical assignment with identical costs.
func OptimalReference(p ProducerGrid, c ConsumerGrid, par Params) Result {
	best := Result{Assignment: Assignment{Orientation: AlongQ, U: 1}}
	first := true
	for _, o := range Orientations {
		if skipOrientation(p, o) {
			continue
		}
		for _, u := range candidateSizes(p, c) {
			costs := evaluateCrossReference(p, c, o, u, par)
			if first || costs.Total() < best.Costs.Total() ||
				(costs.Total() == best.Costs.Total() && u > best.Assignment.U) {
				best = Result{Assignment: Assignment{Orientation: o, U: u}, Costs: costs}
				first = false
			}
		}
	}
	return best
}

// tileBaselineDirectReference is the original direct tile baseline over the
// per-candidate class maps.
func tileBaselineDirectReference(p ProducerGrid, c ConsumerGrid, par Params) Costs {
	ch, rows, cols := consumerClasses(p, c)
	var hashReads, redundant int64
	for cc, nc := range ch {
		for rc, nr := range rows {
			for wc, nw := range cols {
				mult := nc * nr * nw
				tileVol := int64(cc.tdim) * int64(rc.tdim) * int64(wc.tdim)
				boxVol := int64(cc.hi-cc.lo) * int64(rc.hi-rc.lo) * int64(wc.hi-wc.lo)
				hashReads += mult
				redundant += mult * (tileVol - boxVol)
			}
		}
	}
	return Costs{
		HashWriteBits: p.NumTiles() * p.WritesPerTile * int64(par.HashBits),
		HashReadBits:  hashReads * c.FetchesPerTile * int64(par.HashBits),
		RedundantBits: redundant * c.FetchesPerTile * int64(par.WordBits),
	}
}
