package authblock

import (
	"sync"
	"sync/atomic"
)

// fifoCache is a bounded, sharded, FIFO-evicting memo, mirroring the
// tile-candidate cache in the mapper package: reads take a shard RLock,
// the first writer wins so every caller sees one canonical value, and each
// shard's entry count is capped with deterministic FIFO eviction. The
// decomposition and candidate-size memos below used to be unbounded
// sync.Maps keyed by arbitrary grid geometry — exactly the footprint leak a
// long sweep over generated networks hits — so they now share this design.

const (
	// fifoShards bounds read contention; power of two for cheap masking.
	fifoShards = 8
	// fifoShardCap bounds each shard's entry count. Real runs touch at most
	// a few hundred distinct grid pairs, so the cap (8*128 entries total) is
	// above steady-state yet fixes a pathological sweep's footprint.
	fifoShardCap = 128
)

type fifoShard[K comparable, V any] struct {
	mu      sync.RWMutex
	entries map[K]V // guarded by mu
	order   []K     // guarded by mu (FIFO eviction queue)
}

type fifoCache[K comparable, V any] struct {
	// hash picks the shard; any stable mix over the key's fields works.
	hash   func(K) uint64
	shards [fifoShards]fifoShard[K, V]

	hits   atomic.Int64
	misses atomic.Int64
	evicts atomic.Int64
}

// get returns the memoised value, counting the lookup.
func (c *fifoCache[K, V]) get(k K) (V, bool) {
	sh := &c.shards[c.hash(k)%fifoShards]
	sh.mu.RLock()
	v, ok := sh.entries[k]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// put inserts a computed value and returns the canonical one: if another
// goroutine raced the compute and stored first, its value wins and the
// caller's is discarded, so all callers share one slice/decomposition.
func (c *fifoCache[K, V]) put(k K, v V) V {
	sh := &c.shards[c.hash(k)%fifoShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if prev, ok := sh.entries[k]; ok {
		return prev
	}
	if sh.entries == nil {
		sh.entries = map[K]V{}
	}
	if len(sh.order) >= fifoShardCap {
		oldest := sh.order[0]
		sh.order = sh.order[1:]
		delete(sh.entries, oldest)
		c.evicts.Add(1)
	}
	sh.entries[k] = v
	sh.order = append(sh.order, k)
	return v
}

// reset drops every entry and zeroes the counters.
func (c *fifoCache[K, V]) reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.entries = nil
		sh.order = nil
		sh.mu.Unlock()
	}
	c.hits.Store(0)
	c.misses.Store(0)
	c.evicts.Store(0)
}

// stats snapshots the counters. Every miss computes, so Runs == Misses.
func (c *fifoCache[K, V]) stats() Stats {
	s := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evicts.Load(),
	}
	s.Runs = s.Misses
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		s.Entries += int64(len(sh.entries))
		sh.mu.RUnlock()
	}
	return s
}

// fnvMix folds the values into an FNV-1a hash (the same mix cacheKey.shard
// uses) for shard selection.
func fnvMix(vals ...int64) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range vals {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}
