package authblock

import (
	"math/rand"
	"testing"
)

func TestFloorSumAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		n := int64(rng.Intn(50))
		m := int64(1 + rng.Intn(40))
		a := int64(rng.Intn(120) - 60)
		b := int64(rng.Intn(120) - 60)
		var want int64
		for j := int64(0); j < n; j++ {
			x := a*j + b
			want += floorDiv(x, m)
		}
		if got := floorSum(n, m, a, b); got != want {
			t.Fatalf("floorSum(%d,%d,%d,%d) = %d, want %d", n, m, a, b, got, want)
		}
	}
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func TestCountResiduesBelowAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 5000; i++ {
		n := int64(rng.Intn(40))
		m := int64(1 + rng.Intn(30))
		a := int64(rng.Intn(60))
		b := int64(rng.Intn(60))
		tt := int64(rng.Intn(int(m) + 1))
		var want int64
		for j := int64(0); j < n; j++ {
			if (a*j+b)%m < tt {
				want++
			}
		}
		if got := countResiduesBelow(n, m, a, b, tt); got != want {
			t.Fatalf("countResiduesBelow(%d,%d,%d,%d,%d) = %d, want %d", n, m, a, b, tt, got, want)
		}
	}
}

func TestCountBoxBlocksPaperExample(t *testing.T) {
	// Figure 8/9 setup: a 30x30 producer tile (h=30, wi=30); the misaligned
	// consumer tile_j is the right 20 columns (wj=20). Horizontal u=10
	// aligns with the offset (wi-wj=10): zero redundant reads. Vertical
	// u=300 = h*(wi-wj): zero redundant reads (Section 4.2's optimum).
	box := Box{C0: 0, C1: 1, P0: 0, P1: 30, Q0: 10, Q1: 30}

	blocks, covered := CountBoxBlocks(1, 30, 30, box, AlongQ, 10)
	if covered != box.Volume() {
		t.Errorf("horizontal u=10: covered = %d, want %d (zero redundant)", covered, box.Volume())
	}
	if blocks != 60 {
		t.Errorf("horizontal u=10: blocks = %d, want 60", blocks)
	}

	blocks, covered = CountBoxBlocks(1, 30, 30, box, AlongP, 300)
	if covered != box.Volume() {
		t.Errorf("vertical u=300: covered = %d, want %d (zero redundant)", covered, box.Volume())
	}
	if blocks != 2 {
		t.Errorf("vertical u=300: blocks = %d, want 2", blocks)
	}

	// Horizontal u=1: every element has its own hash, no redundancy
	// (Figure 7c).
	blocks, covered = CountBoxBlocks(1, 30, 30, box, AlongQ, 1)
	if blocks != 600 || covered != 600 {
		t.Errorf("horizontal u=1: blocks=%d covered=%d, want 600/600", blocks, covered)
	}

	// Tile-as-AuthBlock along the producer's rows: taking u as the whole
	// tile forces fetching everything (Figure 7a/b).
	blocks, covered = CountBoxBlocks(1, 30, 30, box, AlongQ, 900)
	if blocks != 1 || covered != 900 {
		t.Errorf("u=tile: blocks=%d covered=%d, want 1/900", blocks, covered)
	}
}

func TestCountBoxBlocksMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 3000; i++ {
		tc := 1 + rng.Intn(5)
		tp := 1 + rng.Intn(12)
		tq := 1 + rng.Intn(12)
		b := randomBox(rng, tc, tp, tq)
		o := Orientations[rng.Intn(int(NumOrientations))]
		u := 1 + rng.Intn(tc*tp*tq+5)
		gb, gc := CountBoxBlocks(tc, tp, tq, b, o, u)
		wb, wc := countBoxBlocksBrute(tc, tp, tq, b, o, u)
		if gb != wb || gc != wc {
			t.Fatalf("tile %dx%dx%d box %+v %v u=%d: got (%d,%d), want (%d,%d)",
				tc, tp, tq, b, o, u, gb, gc, wb, wc)
		}
	}
}

func randomBox(rng *rand.Rand, tc, tp, tq int) Box {
	span := func(n int) (int, int) {
		lo := rng.Intn(n)
		hi := lo + 1 + rng.Intn(n-lo)
		return lo, hi
	}
	var b Box
	b.C0, b.C1 = span(tc)
	b.P0, b.P1 = span(tp)
	b.Q0, b.Q1 = span(tq)
	return b
}

func TestCountBoxBlocksInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 2000; i++ {
		tc := 1 + rng.Intn(4)
		tp := 1 + rng.Intn(10)
		tq := 1 + rng.Intn(10)
		b := randomBox(rng, tc, tp, tq)
		o := Orientations[rng.Intn(int(NumOrientations))]
		u := 1 + rng.Intn(tc*tp*tq)
		blocks, covered := CountBoxBlocks(tc, tp, tq, b, o, u)
		flat := int64(tc) * int64(tp) * int64(tq)
		if covered < b.Volume() {
			t.Fatalf("covered %d < needed %d", covered, b.Volume())
		}
		if covered > flat {
			t.Fatalf("covered %d > tile %d", covered, flat)
		}
		if blocks < 1 {
			t.Fatalf("no blocks touched by non-empty box")
		}
		maxBlocks := (flat + int64(u) - 1) / int64(u)
		if blocks > maxBlocks {
			t.Fatalf("blocks %d > tile blocks %d", blocks, maxBlocks)
		}
		// u=1 never over-fetches.
		if u == 1 && covered != b.Volume() {
			t.Fatalf("u=1 covered %d != needed %d", covered, b.Volume())
		}
	}
}

func TestCountBoxBlocksWholeTile(t *testing.T) {
	// A box covering the whole tile touches every block and covers every
	// element, for any u and orientation.
	for _, dims := range [][3]int{{1, 7, 9}, {3, 5, 4}, {2, 2, 2}} {
		tc, tp, tq := dims[0], dims[1], dims[2]
		flat := int64(tc * tp * tq)
		b := Box{C1: tc, P1: tp, Q1: tq}
		for _, o := range Orientations {
			for u := 1; u <= int(flat)+1; u++ {
				blocks, covered := CountBoxBlocks(tc, tp, tq, b, o, u)
				if covered != flat {
					t.Fatalf("dims %v %v u=%d: covered %d != %d", dims, o, u, covered, flat)
				}
				if want := (flat + int64(u) - 1) / int64(u); blocks != want {
					t.Fatalf("dims %v %v u=%d: blocks %d != %d", dims, o, u, blocks, want)
				}
			}
		}
	}
}

func BenchmarkCountBoxBlocksAnalytic(b *testing.B) {
	box := Box{C0: 2, C1: 14, P0: 3, P1: 27, Q0: 5, Q1: 25}
	for i := 0; i < b.N; i++ {
		CountBoxBlocks(16, 30, 28, box, AlongQ, 37)
	}
}

func BenchmarkCountBoxBlocksBrute(b *testing.B) {
	box := Box{C0: 2, C1: 14, P0: 3, P1: 27, Q0: 5, Q1: 25}
	for i := 0; i < b.N; i++ {
		countBoxBlocksBrute(16, 30, 28, box, AlongQ, 37)
	}
}
