package authblock

import (
	"context"
	"fmt"
	"sync/atomic"

	"secureloop/internal/store"
)

// The persistent tier of the optimal-assignment memo: OptimalStoredCtx
// layers a content-addressed disk store beneath the sharded in-memory
// memo, so the same (producer, consumer, params) search resolves across
// processes and restarts. The key canonically encodes every field of the
// in-memory cacheKey; the value is the full Result.

// optPrefix namespaces authblock records within the shared store.
const optPrefix = "authblock.optimal"

// optRuns counts actual OptimalCtx executions through the cached path —
// misses that neither tier could answer. Warm-versus-cold assertions use
// it to prove a warm sweep re-runs (almost) nothing.
var optRuns atomic.Int64

// OptimalRuns reports how many optimal searches actually executed via
// OptimalCachedCtx / OptimalStoredCtx since the last reset.
func OptimalRuns() int64 { return optRuns.Load() }

// persistOptimalKey canonically encodes the memo identity.
func persistOptimalKey(k cacheKey) store.Key {
	e := store.NewEnc().String(optPrefix)
	e.Int(int64(k.p.C)).Int(int64(k.p.H)).Int(int64(k.p.W)).
		Int(int64(k.p.TileC)).Int(int64(k.p.TileH)).Int(int64(k.p.TileW)).
		Int(k.p.WritesPerTile)
	e.Int(int64(k.c.TileC)).
		Int(int64(k.c.WinH)).Int(int64(k.c.WinW)).
		Int(int64(k.c.StepH)).Int(int64(k.c.StepW)).
		Int(int64(k.c.OffH)).Int(int64(k.c.OffW)).
		Int(int64(k.c.CountC)).Int(int64(k.c.CountH)).Int(int64(k.c.CountW)).
		Int(k.c.FetchesPerTile)
	e.Int(int64(k.par.WordBits)).Int(int64(k.par.HashBits))
	return e.Key()
}

// StoredOptimal reports whether the persistent store already holds the
// optimal-assignment record for this exact search — the record
// OptimalStoredCtx would replay instead of searching. A peek only (no
// value read, no hit/miss counted): false when st is nil, and a true can
// still fall back to a full search if the record fails to decode.
func StoredOptimal(st *store.Store, p ProducerGrid, c ConsumerGrid, par Params) bool {
	if st == nil {
		return false
	}
	return st.Has(persistOptimalKey(cacheKey{p: p, c: c, par: par}))
}

func encodeResult(r Result) []byte {
	return store.NewEnc().
		Int(int64(r.Assignment.Orientation)).Int(int64(r.Assignment.U)).
		Int(r.Costs.HashWriteBits).Int(r.Costs.HashReadBits).
		Int(r.Costs.RedundantBits).Int(r.Costs.RehashBits).
		Encoding()
}

func decodeResult(raw []byte) (Result, error) {
	var r Result
	d, err := store.NewDec(raw)
	if err != nil {
		return r, err
	}
	o, err := d.Int()
	if err != nil {
		return r, err
	}
	if o < 0 || o >= int64(NumOrientations) {
		return r, fmt.Errorf("authblock: stored orientation %d out of range", o)
	}
	r.Assignment.Orientation = Orientation(o)
	u, err := d.Int()
	if err != nil {
		return r, err
	}
	if u < 1 {
		return r, fmt.Errorf("authblock: stored block size %d out of range", u)
	}
	r.Assignment.U = int(u)
	for _, dst := range []*int64{
		&r.Costs.HashWriteBits, &r.Costs.HashReadBits,
		&r.Costs.RedundantBits, &r.Costs.RehashBits,
	} {
		if *dst, err = d.Int(); err != nil {
			return r, err
		}
	}
	if err := d.Done(); err != nil {
		return r, err
	}
	return r, nil
}

// OptimalStoredCtx is OptimalCachedCtx with a persistent tier: on an
// in-memory miss it consults st (read-through) before running the search,
// and a fresh result is written behind into both tiers. st may be nil, in
// which case it is exactly OptimalCachedCtx. Undecodable records are
// treated as misses, never errors.
func OptimalStoredCtx(ctx context.Context, st *store.Store, p ProducerGrid, c ConsumerGrid, par Params) (Result, error) {
	key := cacheKey{p: p, c: c, par: par}
	s := &optShards[key.shard()]
	s.mu.Lock()
	if r, ok := s.entries[key]; ok {
		s.mu.Unlock()
		optHits.Add(1)
		return r, nil
	}
	s.mu.Unlock()
	optMisses.Add(1)

	var pk store.Key
	if st != nil {
		pk = persistOptimalKey(key)
		if raw, ok := st.Get(pk); ok {
			if r, derr := decodeResult(raw); derr == nil {
				s.mu.Lock()
				if s.entries == nil {
					s.entries = map[cacheKey]Result{}
				}
				s.entries[key] = r
				s.mu.Unlock()
				return r, nil
			}
		}
	}

	optRuns.Add(1)
	r, err := OptimalCtx(ctx, p, c, par)
	if err != nil {
		return r, err
	}
	s.mu.Lock()
	if s.entries == nil {
		s.entries = map[cacheKey]Result{}
	}
	s.entries[key] = r
	s.mu.Unlock()
	if st != nil {
		st.Put(store.KindAuthBlock, pk, encodeResult(r))
	}
	return r, nil
}
