package authblock

import "sync"

// The optimal-assignment search and the baseline evaluation are pure
// functions of (ProducerGrid, ConsumerGrid, Params), all comparable
// structs, and the same grid pairs recur across scheduling algorithms,
// annealing iterations and design-space sweeps. A process-wide memo makes
// repeated experiments cheap.

type cacheKey struct {
	p   ProducerGrid
	c   ConsumerGrid
	par Params
}

var (
	optMu    sync.Mutex
	optCache = map[cacheKey]Result{}

	tileMu    sync.Mutex
	tileCache = map[cacheKey]tileEntry{}
)

type tileEntry struct {
	costs    Costs
	rehashed bool
}

// OptimalCached is Optimal with process-wide memoisation.
func OptimalCached(p ProducerGrid, c ConsumerGrid, par Params) Result {
	key := cacheKey{p: p, c: c, par: par}
	optMu.Lock()
	if r, ok := optCache[key]; ok {
		optMu.Unlock()
		return r
	}
	optMu.Unlock()
	r := Optimal(p, c, par)
	optMu.Lock()
	optCache[key] = r
	optMu.Unlock()
	return r
}

// TileAsAuthBlockCached is TileAsAuthBlock with process-wide memoisation.
func TileAsAuthBlockCached(p ProducerGrid, c ConsumerGrid, par Params) (Costs, bool) {
	key := cacheKey{p: p, c: c, par: par}
	tileMu.Lock()
	if e, ok := tileCache[key]; ok {
		tileMu.Unlock()
		return e.costs, e.rehashed
	}
	tileMu.Unlock()
	costs, rehashed := TileAsAuthBlock(p, c, par)
	tileMu.Lock()
	tileCache[key] = tileEntry{costs: costs, rehashed: rehashed}
	tileMu.Unlock()
	return costs, rehashed
}
