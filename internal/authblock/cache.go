package authblock

import (
	"context"
	"sync"
	"sync/atomic"
)

// The optimal-assignment search and the baseline evaluation are pure
// functions of (ProducerGrid, ConsumerGrid, Params), all comparable
// structs, and the same grid pairs recur across scheduling algorithms,
// annealing iterations and design-space sweeps. A process-wide memo makes
// repeated experiments cheap. Both memos are sharded so the parallel
// design-space sweep does not serialize on a single mutex.

type cacheKey struct {
	p   ProducerGrid
	c   ConsumerGrid
	par Params
}

// numShards bounds lock contention across concurrent design-point
// evaluations; power of two so the hash mixes cheaply.
const numShards = 32

// shard hashes the key fields (FNV-1a) to pick a shard index.
func (k cacheKey) shard() int {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for _, v := range [...]int{
		k.p.C, k.p.H, k.p.W, k.p.TileC, k.p.TileH, k.p.TileW,
		k.c.TileC, k.c.WinH, k.c.WinW, k.c.StepH, k.c.StepW,
		k.c.OffH, k.c.OffW, k.c.CountC, k.c.CountH, k.c.CountW,
		k.par.WordBits, k.par.HashBits,
	} {
		mix(uint64(v))
	}
	mix(uint64(k.p.WritesPerTile))
	mix(uint64(k.c.FetchesPerTile))
	return int(h % numShards)
}

type optShard struct {
	mu      sync.Mutex
	entries map[cacheKey]Result // guarded by mu
}

type tileShard struct {
	mu      sync.Mutex
	entries map[cacheKey]tileEntry // guarded by mu
}

var (
	optShards  [numShards]optShard
	tileShards [numShards]tileShard

	optHits    atomic.Int64
	optMisses  atomic.Int64
	tileHits   atomic.Int64
	tileMisses atomic.Int64
)

type tileEntry struct {
	costs    Costs
	rehashed bool
}

// Stats reports cache effectiveness counters for one memo.
type Stats struct {
	Hits    int64
	Misses  int64
	Entries int64
	// Runs counts searches that actually executed (misses neither the
	// in-memory nor the persistent tier could answer). For the tile memo it
	// equals Misses, which has no persistent tier.
	Runs int64
	// Evictions counts entries dropped by a size bound (only the bounded
	// decomposition and candidate-size memos evict).
	Evictions int64
}

// HitRatio returns hits over lookups in [0, 1], or 0 before any lookup.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// CacheStats snapshots the counters of the optimal-assignment memo and the
// tile-as-an-AuthBlock memo.
func CacheStats() (optimal, tile Stats) {
	optimal = Stats{Hits: optHits.Load(), Misses: optMisses.Load(), Runs: optRuns.Load()}
	tile = Stats{Hits: tileHits.Load(), Misses: tileMisses.Load(), Runs: tileMisses.Load()}
	for i := range optShards {
		s := &optShards[i]
		s.mu.Lock()
		optimal.Entries += int64(len(s.entries))
		s.mu.Unlock()
	}
	for i := range tileShards {
		s := &tileShards[i]
		s.mu.Lock()
		tile.Entries += int64(len(s.entries))
		s.mu.Unlock()
	}
	return optimal, tile
}

// ResetCaches drops all memoised results and zeroes the counters (used by
// benchmarks and tests that need a cold cache).
func ResetCaches() {
	for i := range optShards {
		s := &optShards[i]
		s.mu.Lock()
		s.entries = nil
		s.mu.Unlock()
	}
	for i := range tileShards {
		s := &tileShards[i]
		s.mu.Lock()
		s.entries = nil
		s.mu.Unlock()
	}
	optHits.Store(0)
	optMisses.Store(0)
	optRuns.Store(0)
	tileHits.Store(0)
	tileMisses.Store(0)
	clearDecompCaches()
}

// OptimalCached is Optimal with process-wide memoisation.
func OptimalCached(p ProducerGrid, c ConsumerGrid, par Params) Result {
	r, _ := OptimalCachedCtx(context.Background(), p, c, par)
	return r
}

// OptimalCachedCtx is the cancellable memoised search. A search interrupted
// by cancellation is never stored, so a cancelled request cannot seed the
// memo with a partial (non-optimal) assignment. It is OptimalStoredCtx
// without a persistent tier.
func OptimalCachedCtx(ctx context.Context, p ProducerGrid, c ConsumerGrid, par Params) (Result, error) {
	return OptimalStoredCtx(ctx, nil, p, c, par)
}

// TileAsAuthBlockCached is TileAsAuthBlock with process-wide memoisation.
func TileAsAuthBlockCached(p ProducerGrid, c ConsumerGrid, par Params) (Costs, bool) {
	key := cacheKey{p: p, c: c, par: par}
	s := &tileShards[key.shard()]
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.mu.Unlock()
		tileHits.Add(1)
		return e.costs, e.rehashed
	}
	s.mu.Unlock()
	tileMisses.Add(1)
	costs, rehashed := TileAsAuthBlock(p, c, par)
	s.mu.Lock()
	if s.entries == nil {
		s.entries = map[cacheKey]tileEntry{}
	}
	s.entries[key] = tileEntry{costs: costs, rehashed: rehashed}
	s.mu.Unlock()
	return costs, rehashed
}
