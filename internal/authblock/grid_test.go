package authblock

import (
	"math/rand"
	"testing"
)

func TestAxisDecomposeCoversIntervals(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 2000; i++ {
		extent := 1 + rng.Intn(40)
		tile := 1 + rng.Intn(extent)
		count := 1 + rng.Intn(8)
		step := 1 + rng.Intn(6)
		win := 1 + rng.Intn(8)
		off := -rng.Intn(3)
		classes := axisDecompose(count, off, step, win, extent, tile)
		// The summed segment lengths must equal the summed clipped interval
		// lengths.
		var got int64
		for cls, n := range classes {
			if cls.lo < 0 || cls.hi <= cls.lo || cls.hi > cls.tdim || cls.tdim > tile {
				t.Fatalf("bad class %+v (tile %d)", cls, tile)
			}
			got += int64(cls.hi-cls.lo) * n
		}
		want := clippedSpanSum(count, off, step, win, extent)
		if got != want {
			t.Fatalf("decompose covers %d, want %d (extent=%d tile=%d count=%d step=%d win=%d off=%d)",
				got, want, extent, tile, count, step, win, off)
		}
	}
}

func TestHashWriteBitsExact(t *testing.T) {
	par := Params{WordBits: 8, HashBits: 64}
	// 10x10 tensor in 4x4 tiles: tiles are 4x4 (4), 4x2 (2), 2x4 (2), 2x2
	// (1). With u=5: ceil(16/5)=4, ceil(8/5)=2, ceil(8/5)=2, ceil(4/5)=1.
	p := ProducerGrid{C: 1, H: 10, W: 10, TileC: 1, TileH: 4, TileW: 4, WritesPerTile: 1}
	want := int64(4*4+2*2+2*2+1*1) * 64
	if got := p.HashWriteBits(5, par); got != want {
		t.Errorf("HashWriteBits = %d, want %d", got, want)
	}
	// WritesPerTile scales linearly.
	p.WritesPerTile = 3
	if got := p.HashWriteBits(5, par); got != 3*want {
		t.Errorf("scaled HashWriteBits = %d, want %d", got, 3*want)
	}
}

func TestWholeAndAligned(t *testing.T) {
	p := Whole(4, 9, 7)
	if p.NumTiles() != 1 {
		t.Fatalf("Whole has %d tiles", p.NumTiles())
	}
	a := p.Aligned()
	if a.NumTiles() != 1 || a.WinH != 9 || a.TileC != 4 {
		t.Fatalf("Aligned = %+v", a)
	}
	par := Params{WordBits: 8, HashBits: 64}
	costs := EvaluateCross(p, a, AlongQ, 4*9*7, par)
	if costs.RedundantBits != 0 || costs.HashReadBits != 64 || costs.HashWriteBits != 64 {
		t.Errorf("whole/aligned costs = %+v", costs)
	}
}

func TestOptimalConsistentWithSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	par := Params{WordBits: 8, HashBits: 64}
	for i := 0; i < 30; i++ {
		p := ProducerGrid{
			C: 1 + rng.Intn(4), H: 2 + rng.Intn(10), W: 2 + rng.Intn(10),
			WritesPerTile: 1,
		}
		p.TileC, p.TileH, p.TileW = p.C, 1+rng.Intn(p.H), 1+rng.Intn(p.W)
		c := ConsumerGrid{
			TileC: p.C, WinH: 1 + rng.Intn(p.H), WinW: 1 + rng.Intn(p.W),
			StepH: 1 + rng.Intn(4), StepW: 1 + rng.Intn(4),
			CountC: 1, CountH: 1 + rng.Intn(4), CountW: 1 + rng.Intn(4),
			FetchesPerTile: 1,
		}
		opt := Optimal(p, c, par)
		// The optimum must not exceed any swept point of any orientation.
		flat := p.TileC * p.TileH * p.TileW
		for _, o := range Orientations {
			if skipOrientation(p, o) {
				continue
			}
			for _, r := range Sweep(p, c, o, flat, par) {
				if opt.Costs.Total() > r.Costs.Total() {
					t.Fatalf("optimal %d beaten by %v u=%d (%d): p=%+v c=%+v",
						opt.Costs.Total(), o, r.Assignment.U, r.Costs.Total(), p, c)
				}
			}
		}
	}
}

func TestCandidateSizesProperties(t *testing.T) {
	p := ProducerGrid{C: 8, H: 14, W: 14, TileC: 4, TileH: 7, TileW: 14, WritesPerTile: 1}
	c := p.Aligned()
	sizes := CandidateSizes(p, c)
	flat := p.TileC * p.TileH * p.TileW
	if sizes[0] != 1 || sizes[len(sizes)-1] != flat {
		t.Errorf("candidates must span [1, tile]: %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatal("candidates not strictly increasing")
		}
	}
	// Row length and its divisors must be present (the Fig. 9 local-minima
	// family).
	want := map[int]bool{p.TileW: true, p.TileH * p.TileW: true}
	for _, s := range sizes {
		delete(want, s)
	}
	if len(want) != 0 {
		t.Errorf("missing alignment candidates: %v", want)
	}
}

func TestCostsAccounting(t *testing.T) {
	a := Costs{HashWriteBits: 1, HashReadBits: 2, RedundantBits: 4, RehashBits: 8}
	if a.Total() != 15 || a.HashBitsTotal() != 3 {
		t.Errorf("totals: %+v", a)
	}
	b := a
	b.Add(a)
	if b.Total() != 30 {
		t.Errorf("Add: %+v", b)
	}
}

func TestValidation(t *testing.T) {
	good := ProducerGrid{C: 2, H: 3, W: 4, TileC: 1, TileH: 2, TileW: 2, WritesPerTile: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.TileW = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero tile accepted")
	}
	bad = good
	bad.WritesPerTile = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero writes accepted")
	}
	goodC := good.Aligned()
	if err := goodC.Validate(); err != nil {
		t.Fatal(err)
	}
	badC := goodC
	badC.StepH = 0
	if err := badC.Validate(); err == nil {
		t.Error("zero step accepted")
	}
	badC = goodC
	badC.FetchesPerTile = 0
	if err := badC.Validate(); err == nil {
		t.Error("zero fetches accepted")
	}
}
