package mapper

import (
	"sort"
	"sync"
	"sync/atomic"
)

// The tile-candidate cache memoises computeTileCandidates per loop bound.
// The same small set of bounds (layer C/M/P/Q extents) recurs for every
// spatial choice of every layer of every design point, and the
// divisor/power-of-two construction is pure, so one process-wide table pays
// for itself within a single search. The cache is sharded (the parallel
// sweep reads it from many goroutines) and size-bounded with FIFO eviction:
// an unbounded memo keyed by arbitrary layer extents grows for the lifetime
// of a long sweep over generated networks, which is exactly the leak the
// bounded variant closes. FIFO (not LRU) keeps reads lock-cheap and the
// eviction order deterministic.

const (
	// tileShards bounds read contention; power of two for cheap masking.
	tileShards = 8
	// tileShardCap bounds each shard's entry count. Real sweeps touch a few
	// dozen distinct bounds, so the cap is far above steady-state yet keeps
	// a pathological sweep's footprint fixed.
	tileShardCap = 128
)

type tileShard struct {
	mu      sync.RWMutex
	entries map[int][]int
	order   []int // FIFO eviction queue
}

var (
	tileCache [tileShards]tileShard

	tileHits   atomic.Int64
	tileMisses atomic.Int64
	tileEvicts atomic.Int64
)

// tileCandidates returns candidate GLB tile sizes for a dimension bound,
// memoised per bound. Callers must treat the returned slice as read-only.
func tileCandidates(bound int) []int {
	sh := &tileCache[uint(bound)%tileShards]
	sh.mu.RLock()
	v, ok := sh.entries[bound]
	sh.mu.RUnlock()
	if ok {
		tileHits.Add(1)
		return v
	}
	tileMisses.Add(1)
	// Compute outside the lock: the construction is pure, so a racing
	// double-compute is wasted work at worst, and the first writer wins so
	// all callers see one canonical slice.
	computed := computeTileCandidates(bound)
	sh.mu.Lock()
	if v, ok = sh.entries[bound]; !ok {
		if sh.entries == nil {
			sh.entries = map[int][]int{}
		}
		if len(sh.order) >= tileShardCap {
			oldest := sh.order[0]
			sh.order = sh.order[1:]
			delete(sh.entries, oldest)
			tileEvicts.Add(1)
		}
		sh.entries[bound] = computed
		sh.order = append(sh.order, bound)
		v = computed
	}
	sh.mu.Unlock()
	return v
}

// TileStats reports tile-candidate cache effectiveness counters.
type TileStats struct {
	// Hits counts lookups answered from the cache.
	Hits int64
	// Misses counts lookups that computed the candidate set.
	Misses int64
	// Evictions counts bounds dropped by the FIFO size bound.
	Evictions int64
	// Entries is the current number of cached bounds.
	Entries int64
}

// TileCacheStats snapshots the tile-candidate cache counters.
func TileCacheStats() TileStats {
	s := TileStats{
		Hits:      tileHits.Load(),
		Misses:    tileMisses.Load(),
		Evictions: tileEvicts.Load(),
	}
	for i := range tileCache {
		sh := &tileCache[i]
		sh.mu.RLock()
		s.Entries += int64(len(sh.entries))
		sh.mu.RUnlock()
	}
	return s
}

// resetTileCache drops all cached candidate sets and zeroes the counters
// (tests).
func resetTileCache() {
	for i := range tileCache {
		sh := &tileCache[i]
		sh.mu.Lock()
		sh.entries = nil
		sh.order = nil
		sh.mu.Unlock()
	}
	tileHits.Store(0)
	tileMisses.Store(0)
	tileEvicts.Store(0)
}

// computeTileCandidates builds the candidate set for a dimension bound: its
// divisors plus powers of two, capped to a small set, sorted ascending (the
// capacity-pruning breaks in searchTilings rely on the ascending order).
func computeTileCandidates(bound int) []int {
	if bound <= 1 {
		return []int{1}
	}
	set := map[int]bool{1: true, bound: true}
	for d := 2; d <= bound/d; d++ {
		if bound%d == 0 {
			set[d] = true
			set[bound/d] = true
		}
	}
	for v := 2; v < bound; v *= 2 {
		set[v] = true
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	if len(out) > 12 {
		// Keep a spread: always 1 and bound, subsample the middle.
		kept := []int{out[0]}
		step := float64(len(out)-2) / 10
		for i := 0; i < 10; i++ {
			kept = append(kept, out[1+int(float64(i)*step)])
		}
		kept = append(kept, out[len(out)-1])
		out = dedupInts(kept)
	}
	return out
}
