package mapper

import (
	"sort"
	"sync"
)

// tileCandCache memoises computeTileCandidates per loop bound. The same
// small set of bounds (layer C/M/P/Q extents) recurs for every spatial
// choice of every layer of every design point, and the divisor/power-of-two
// construction is pure, so one process-wide table pays for itself within a
// single search. sync.Map fits the workload exactly: written once per
// distinct bound, then read-mostly from many goroutines.
var tileCandCache sync.Map // int -> []int

// tileCandidates returns candidate GLB tile sizes for a dimension bound,
// memoised per bound. Callers must treat the returned slice as read-only.
func tileCandidates(bound int) []int {
	if v, ok := tileCandCache.Load(bound); ok {
		return v.([]int)
	}
	v, _ := tileCandCache.LoadOrStore(bound, computeTileCandidates(bound))
	return v.([]int)
}

// computeTileCandidates builds the candidate set for a dimension bound: its
// divisors plus powers of two, capped to a small set, sorted ascending (the
// capacity-pruning breaks in searchTilings rely on the ascending order).
func computeTileCandidates(bound int) []int {
	if bound <= 1 {
		return []int{1}
	}
	set := map[int]bool{1: true, bound: true}
	for d := 2; d <= bound/d; d++ {
		if bound%d == 0 {
			set[d] = true
			set[bound/d] = true
		}
	}
	for v := 2; v < bound; v *= 2 {
		set[v] = true
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	if len(out) > 12 {
		// Keep a spread: always 1 and bound, subsample the middle.
		kept := []int{out[0]}
		step := float64(len(out)-2) / 10
		for i := 0; i < 10; i++ {
			kept = append(kept, out[1+int(float64(i)*step)])
		}
		kept = append(kept, out[len(out)-1])
		out = dedupInts(kept)
	}
	return out
}
