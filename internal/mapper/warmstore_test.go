package mapper

import (
	"context"
	"testing"

	"secureloop/internal/mapping"
	"secureloop/internal/workload"
)

func TestSnapTile(t *testing.T) {
	cands := []int{1, 3, 9, 16, 27}
	for _, tc := range []struct{ tile, want int }{
		{0, 1}, {1, 1}, {2, 1}, {3, 3}, {8, 3}, {9, 9}, {15, 9},
		{16, 16}, {26, 16}, {27, 27}, {100, 27},
	} {
		if got := snapTile(cands, tc.tile); got != tc.want {
			t.Errorf("snapTile(%d) = %d, want %d", tc.tile, got, tc.want)
		}
	}
}

// TestWarmKeyCanonicalisation: design points that should share winners
// (different buffer capacities, same-power-of-two output extents,
// same-bucket bandwidths) must collapse onto one warm key, while
// structurally different shapes must not.
func TestWarmKeyCanonicalisation(t *testing.T) {
	l := benchLayer()
	base := benchRequest(&l)

	same := []Request{base, base}
	same[0].GLBBits *= 4 // capacity excluded from the key
	same[0].RFBits *= 2
	same[1].EffectiveBytesPerCycle = base.EffectiveBytesPerCycle * 1.5 // 64 -> 96 B/cycle: same log2 bucket
	k0 := warmKeyFor(base)
	for i, rq := range same {
		if k1 := warmKeyFor(rq); k1 != k0 {
			t.Errorf("case %d: equivalent request altered warm key: %+v vs %+v", i, k1, k0)
		}
	}

	lp := l
	lp.P, lp.Q = 24, 24 // 27 -> 24: same log2 bucket (16..31)
	rp := base
	rp.Layer = &lp
	if kp := warmKeyFor(rp); kp != k0 {
		t.Errorf("same-bucket P/Q change altered warm key: %+v vs %+v", kp, k0)
	}

	diff := []Request{base, base, base}
	lc := l
	lc.C++
	diff[0].Layer = &lc                                              // channel counts are exact
	diff[1].PEsX++                                                   // array shape is exact
	diff[2].EffectiveBytesPerCycle = base.EffectiveBytesPerCycle * 4 // different bucket
	for i, rq := range diff {
		if kd := warmKeyFor(rq); kd == k0 {
			t.Errorf("case %d: structurally different request shares warm key", i)
		}
	}
}

// TestWarmStoreBounded: the store must stay within warmShards×warmShardCap
// keys no matter how many distinct shapes a sweep touches, with the
// overflow accounted as evictions.
func TestWarmStoreBounded(t *testing.T) {
	ResetWarmStore()
	defer ResetWarmStore()
	l := benchLayer()
	req := benchRequest(&l)
	m := mappingForSeedTest(t, req)
	out := []Candidate{{Mapping: m}}
	const puts = 2000
	for i := 0; i < puts; i++ {
		li := l
		li.C = 8 + i // distinct shape per put
		ri := req
		ri.Layer = &li
		warmPut(ri, out)
	}
	s := WarmStartStats()
	if s.Stores != puts {
		t.Errorf("Stores = %d, want %d", s.Stores, puts)
	}
	if max := int64(warmShards * warmShardCap); s.Entries > max {
		t.Errorf("Entries = %d exceeds bound %d", s.Entries, max)
	}
	if min := int64(puts - warmShards*warmShardCap); s.Evictions < min {
		t.Errorf("Evictions = %d, want at least %d", s.Evictions, min)
	}
	if s.Entries+s.Evictions != puts {
		t.Errorf("Entries+Evictions = %d, want %d", s.Entries+s.Evictions, puts)
	}
}

func mappingForSeedTest(t *testing.T, req Request) *mapping.Mapping {
	t.Helper()
	out, err := SearchCtx(context.Background(), guidedRequest(req, 0, false))
	if err != nil || len(out) == 0 {
		t.Fatalf("seed-test search failed: %v", err)
	}
	return out[0].Mapping
}

// TestWarmSeedRoundTrip: a stored winner's seed must match a spatial choice
// of a neighbouring request and reproduce the winner's tiling when the
// lattice is unchanged.
func TestWarmSeedRoundTrip(t *testing.T) {
	ResetWarmStore()
	defer ResetWarmStore()
	l := benchLayer()
	req := benchRequest(&l)
	out, err := SearchCtx(context.Background(), guidedRequest(req, 0, false))
	if err != nil || len(out) == 0 {
		t.Fatalf("search failed: %v", err)
	}
	warmPut(req, out)
	seeds := warmSeeds(req)
	if len(seeds) == 0 {
		t.Fatal("stored seeds not returned for the same shape")
	}
	sd := seeds[0]
	matched := false
	for _, sp := range spatialChoices(&l, req.PEsX, req.PEsY) {
		if sp.normKey() == sd.spatialKey() {
			matched = true
			break
		}
	}
	if !matched {
		t.Fatalf("seed spatial key %v matches no spatial choice", sd.spatialKey())
	}
	if got := seedFromMapping(out[0].Mapping); got != sd {
		t.Errorf("seed round trip mismatch: %+v vs %+v", got, sd)
	}
}

// TestGuidedWarmHitSeeds: a guided search at a neighbouring design point
// (different GLB capacity — same warm key, different exact-cache key) must
// pick up the stored winners as seeds, and still return the byte-identical
// exhaustive result.
func TestGuidedWarmHitSeeds(t *testing.T) {
	ResetWarmStore()
	ResetGuidedStats()
	defer ResetWarmStore()
	l := workload.AlexNet().Layer(3)
	req := guidedRequest(baseRequest(l), 0, true)
	if _, err := SearchCtx(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if s := GuidedSearchStats(); s.WarmSeeds != 0 {
		t.Fatalf("cold search applied %d warm seeds", s.WarmSeeds)
	}
	neighbour := req
	neighbour.GLBBits *= 2
	got, err := SearchCtx(context.Background(), neighbour)
	if err != nil {
		t.Fatal(err)
	}
	s := GuidedSearchStats()
	if s.WarmSeeds == 0 {
		t.Error("neighbouring search applied no warm seeds")
	}
	if hits := WarmStartStats().Hits; hits == 0 {
		t.Error("neighbouring search missed the warm store")
	}
	exReq := neighbour
	exReq.Opt = Options{}
	assertSameCandidates(t, "warm-seeded neighbour", got, searchReference(exReq))
}
