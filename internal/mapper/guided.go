// Guided search: a lower-bound-guided best-first enumeration of the same
// tiling lattice the exhaustive path walks, replacing brute force on the
// per-layer hot path (ROADMAP item 4).
//
// The exhaustive search pays a full mapping.Analyze plus a six-way
// permutation fold for every capacity-feasible tiling. The guided search
// observes that every term of scoreTiling's per-tiling lower bound —
// compute cycles, the distinct-tile traffic floor MinOffchipElems, and the
// GLB occupancy — factorizes per dimension once the spatial skeleton is
// fixed. It therefore precomputes per-dimension candidate tables for each
// spatial choice, derives the exact lower bound of every lattice point with
// a handful of integer multiplies (pass A), sorts the survivors by bound,
// and only scores tilings through the full permutation fold (pass B) until
// the next-best bound proves no unexplored tiling can rank within the
// top-k. At Epsilon = 0 the result is byte-identical to the exhaustive
// search; at Epsilon > 0 every returned rank is within (1+Epsilon)× of the
// exhaustive rank's scheduling cycles (see DESIGN.md §12 for the argument).
//
// A warm-start store (warmstore.go) seeds the search with previous winners
// for similar layer shapes, so DSE sweeps over neighbouring design points
// start with a tight pruning threshold instead of a cold one.
package mapper

import (
	"context"
	"fmt"
	"math"
	"slices"

	"secureloop/internal/mapping"
	"secureloop/internal/model"
	"secureloop/internal/num"
	"secureloop/internal/obs"
	"secureloop/internal/workload"
)

// Mode selects the step-1 search strategy.
type Mode int

const (
	// Exhaustive enumerates every capacity-feasible tiling (the historical
	// path, retained as the guided search's oracle).
	Exhaustive Mode = iota
	// Guided is the lower-bound-guided best-first search.
	Guided
)

// Options selects the search strategy and its accuracy knob. The zero value
// (exhaustive) preserves the historical behaviour exactly.
type Options struct {
	Mode Mode
	// Epsilon is the admissible scheduling-cycle regression of the guided
	// search relative to the exhaustive top-k: rank-i cycles are at most
	// (1+Epsilon) times the exhaustive rank-i cycles. 0 (the default) makes
	// the guided result byte-identical to the exhaustive one.
	Epsilon float64
	// DisableWarmStart skips the cross-request warm-start store; results at
	// Epsilon = 0 are unaffected (seeds only tighten pruning), so this
	// exists for cold benchmarks and determinism-sensitive tests at
	// Epsilon > 0.
	DisableWarmStart bool
}

// tiledDims are the dimensions the GLB tiling loop sweeps, in the nesting
// order of searchTilings (outermost first).
var tiledDims = [4]mapping.Dim{mapping.DimC, mapping.DimM, mapping.DimP, mapping.DimQ}

// evalChunk bounds how many pass-B evaluations run between cancellation
// polls, matching the batch-boundary polling of the exhaustive path.
const evalChunk = 64

// stopLB reports whether a tiling whose lower bound is lb can be discarded
// against the current k-th best. At eps = 0 the rule is strict (bound ties
// must still be scored: the tie-breaking order is (cycles, bits, signature)
// and a bound-tied tiling may displace the boundary candidate); at eps > 0
// the bound is inflated, which is exactly what admits the (1+eps) per-rank
// regression and nothing more.
func stopLB(lb, kth int64, eps float64) bool {
	if eps <= 0 {
		return lb > kth
	}
	return float64(lb)*(1+eps) > float64(kth)
}

// guidedCounts aggregates one search's work accounting.
type guidedCounts struct {
	evaluated int64
	pruned    int64
	skipped   int64
	warmSeeds int
}

// lbEntry is one capacity-feasible lattice point awaiting evaluation: its
// exact analytical lower bound and the packed per-axis candidate indices.
type lbEntry struct {
	lb  int64
	idx uint32
}

// guidedAxis holds the per-candidate factorized terms of one tiled
// dimension under a fixed spatial skeleton. Every field replicates the
// arithmetic (including the checked-multiply discipline) of the mapping
// package, so bounds computed from these tables agree bit-for-bit with
// Mapping.Analyze on the same tiling — TestGuidedTablesMatchAnalyze pins
// this.
type guidedAxis struct {
	cands []int   // raw tile candidates, ascending (tileCandidates order)
	ext   []int64 // min(TileDim, bound): the GLB tile extent
	outer []int64 // DRAM-level trip count (OuterCount at GLB)
	temp  []int64 // TemporalIterations contribution: perStep × dramOuter
	win   []int64 // ifmap halo extent along P/Q; nil for C/M

	minTemp int64 // min over temp, for the part-level bound
}

// buildAxis tabulates dimension d's candidates for the spatial skeleton
// held by m (R/S GLB factors already set).
func buildAxis(m *mapping.Mapping, l *workload.Layer, d mapping.Dim) guidedAxis {
	b := mapping.Bound(l, d)
	rf := m.Factor(mapping.RF, d)
	sx := m.Factor(mapping.SpatialX, d)
	sy := m.Factor(mapping.SpatialY, d)
	//securelint:ignore overflowmul sub-GLB factors multiply to at most the padded dimension bound (setGLBTile invariant); replicated unchecked so the table matches Mapping.TileDim bit-for-bit
	below := rf * sx * sy
	cands := tileCandidates(b)
	ax := guidedAxis{cands: cands}
	ax.ext = make([]int64, len(cands))
	ax.outer = make([]int64, len(cands))
	ax.temp = make([]int64, len(cands))
	if d == mapping.DimP || d == mapping.DimQ {
		ax.win = make([]int64, len(cands))
	}
	stride, filt := l.StrideH, l.R
	if d == mapping.DimQ {
		stride, filt = l.StrideW, l.S
	}
	for j, tile := range cands {
		if tile < below {
			tile = below
		}
		glbF := num.CeilDiv(tile, below)
		//securelint:ignore overflowmul same TileDim replication as `below` above: the factor product is bounded by the padded dimension bound
		tileDim := below * glbF
		ext := tileDim
		if ext > b {
			ext = b
		}
		ax.ext[j] = int64(ext)
		if tileDim >= b {
			ax.outer[j] = 1
		} else {
			ax.outer[j] = int64(num.CeilDiv(b, tileDim))
		}
		// Mirrors TemporalIterations' per-dimension body, checked multiplies
		// included.
		perStep := num.MulInt64(int64(rf), int64(glbF))
		spatial := num.MulInt64(int64(sx), int64(sy))
		tile64 := num.MulInt64(perStep, spatial)
		outer := int64(1)
		if tile64 < int64(b) {
			outer = num.CeilDiv64(int64(b), tile64)
		}
		ax.temp[j] = num.MulInt64(perStep, outer)
		if ax.win != nil {
			ax.win[j] = num.MulInt64(ax.ext[j]-1, int64(stride)) + int64(filt)
		}
		if j == 0 || ax.temp[j] < ax.minTemp {
			ax.minTemp = ax.temp[j]
		}
	}
	return ax
}

// guidedPart is the per-spatial-choice search state: the reusable mapping,
// the per-dimension tables, and the part-level optimistic bound used to
// skip the whole choice when it cannot beat the current top-k.
type guidedPart struct {
	sp spatialChoice
	m  *mapping.Mapping
	ax [4]guidedAxis // indexed like tiledDims: C, M, P, Q

	fixTemp int64 // R and S temporal contributions (tiling-independent)
	wRS     int64 // weight R×S extent product (tiling-independent)
	rel     [3][4]bool
	chIsM   bool // depthwise: the ifmap channel loop is carried by M

	minLB   int64 // optimistic lower bound over the whole lattice
	lattice int64 // lattice point count, for the skipped counter
}

// newGuidedPart builds the search state for one spatial choice, or nil when
// the choice is RF-infeasible (matching searchTilings' early return).
func newGuidedPart(req Request, sp spatialChoice, minTrafficCycles int64) *guidedPart {
	l := req.Layer
	m := baseMapping(l, sp)
	if m.RFBitsUsed(l) > req.RFBits {
		return nil
	}
	setGLBTile(m, l, mapping.DimR, mapping.Bound(l, mapping.DimR))
	setGLBTile(m, l, mapping.DimS, mapping.Bound(l, mapping.DimS))

	g := &guidedPart{sp: sp, m: m, chIsM: l.Depthwise}
	g.lattice = 1
	for i, d := range tiledDims {
		g.ax[i] = buildAxis(m, l, d)
		g.lattice *= int64(len(g.ax[i].cands))
		for dt := range g.rel {
			g.rel[dt][i] = mapping.Relevant(l, workload.Datatype(dt), d)
		}
	}
	// R/S terms: their GLB tiles always cover the full filter extents, so
	// their temporal contributions and weight extents are per-part constants.
	tR := dimTempContrib(m, l, mapping.DimR)
	tS := dimTempContrib(m, l, mapping.DimS)
	g.fixTemp = num.MulInt64(tR, tS)
	g.wRS = num.MulInt64(int64(mapping.Bound(l, mapping.DimR)), int64(mapping.Bound(l, mapping.DimS)))

	// The optimistic bound combines per-axis minima that may not form a
	// real lattice point, so its product is not covered by the exhaustive
	// path's overflow behaviour: saturate instead of panicking, and on
	// saturation never skip (minLB = 0) — any feasible point of such a part
	// overflows identically on both paths when actually evaluated.
	minTemp, ok := mulSat64(g.ax[0].minTemp, g.ax[1].minTemp)
	for _, f := range [...]int64{g.ax[2].minTemp, g.ax[3].minTemp, g.fixTemp} {
		if !ok {
			break
		}
		minTemp, ok = mulSat64(minTemp, f)
	}
	if ok {
		g.minLB = minTemp
	}
	if g.minLB < minTrafficCycles {
		g.minLB = minTrafficCycles
	}
	return g
}

// mulSat64 multiplies positive factors, reporting false on int64 overflow
// instead of panicking (see the minLB comment in newGuidedPart).
func mulSat64(a, b int64) (int64, bool) {
	if a > 0 && b > 0 && a <= math.MaxInt64/b {
		return a * b, true
	}
	return 0, false
}

// dimTempContrib mirrors one dimension's term of TemporalIterations for the
// factors currently held by m.
func dimTempContrib(m *mapping.Mapping, l *workload.Layer, d mapping.Dim) int64 {
	perStep := num.MulInt64(int64(m.Factor(mapping.RF, d)), int64(m.Factor(mapping.GLB, d)))
	spatial := num.MulInt64(int64(m.Factor(mapping.SpatialX, d)), int64(m.Factor(mapping.SpatialY, d)))
	tile := num.MulInt64(perStep, spatial)
	b := int64(mapping.Bound(l, d))
	outer := int64(1)
	if tile < b {
		outer = num.CeilDiv64(b, tile)
	}
	return num.MulInt64(perStep, outer)
}

// pointOcc computes the GLB tile element counts and the occupancy of the
// lattice point (ic, im, ip, iq) from the tables alone — no Mapping
// mutation. The element counts replicate tileElems' checked multiplies and
// the occupancy sum replicates GLBBitsUsed's unchecked arithmetic, so
// capacity breaks agree with the exhaustive path bit-for-bit even under
// (pathological) overflow wraparound. The multiplication *order* differs
// from tileElems' for hoisting, which is harmless: every factor is >= 1, so
// a partial product overflows (panics) in one order exactly when the full
// product overflows in any order.
func (g *guidedPart) pointOcc(wb int64, ic, im, ip, iq int) (wE, iE, oE, occ int64) {
	extC, extM := g.ax[0].ext[ic], g.ax[1].ext[im]
	extP, extQ := g.ax[2].ext[ip], g.ax[3].ext[iq]

	wE = extM
	if !g.chIsM { // dense: C indexes weights
		wE = num.MulInt64(wE, extC)
	}
	wE = num.MulInt64(wE, g.wRS)
	ch := extC
	if g.chIsM {
		ch = extM
	}
	iE = num.MulInt64(ch, num.MulInt64(g.ax[2].win[ip], g.ax[3].win[iq]))
	oE = num.MulInt64(num.MulInt64(extM, extP), extQ)

	//securelint:ignore overflowmul replicates GLBBitsUsed's unchecked occupancy sum so guided capacity breaks match the exhaustive path bit-for-bit
	occ = 2*wE*wb + 2*iE*wb + 2*oE*wb
	return wE, iE, oE, occ
}

// pointLB computes the exact scoreTiling lower bound of a *feasible*
// lattice point: compute cycles (TemporalIterations replication) and the
// distinct-tile traffic floor (Analyze.MinOffchipElems replication), pushed
// through the same SchedulingCyclesFor and minTrafficCycles clamp. It must
// only run on capacity-feasible points — the exhaustive path never analyses
// infeasible tilings, so checked arithmetic here would panic where the
// oracle does not.
func (g *guidedPart) pointLB(wb int64, eff float64, minTraffic, wE, iE, oE int64, ic, im, ip, iq int) int64 {
	idx := [4]int{ic, im, ip, iq}
	elems := [3]int64{wE, iE, oE} // workload.Datatypes order
	var minOff int64
	for dt := range g.rel {
		n := int64(1)
		for i := range tiledDims {
			if g.rel[dt][i] {
				n = num.MulInt64(n, g.ax[i].outer[idx[i]])
			}
		}
		minOff += num.MulInt64(n, elems[dt])
	}

	compute := num.MulInt64(num.MulInt64(num.MulInt64(num.MulInt64(
		g.ax[0].temp[ic], g.ax[1].temp[im]), g.ax[2].temp[ip]), g.ax[3].temp[iq]), g.fixTemp)

	//securelint:ignore overflowmul replicates scoreTiling's unchecked bits conversion of the traffic floor
	lb := model.SchedulingCyclesFor(compute, minOff*wb, eff)
	if lb < minTraffic {
		lb = minTraffic
	}
	return lb
}

// scan is pass A: walk the lattice with the exhaustive path's monotone
// capacity breaks, bound every feasible point, prefilter against the
// snapshot threshold, and collect the survivors for sorted evaluation. The
// bound itself is not monotone along an axis (ceiling padding), so only
// capacity — which is monotone — drives the breaks.
func (g *guidedPart) scan(ctx context.Context, req Request, eps float64, minTraffic int64, best *topK, entries []lbEntry, gc *guidedCounts) ([]lbEntry, error) {
	wb := int64(req.Layer.WordBits)
	kth, full := best.kthCycles()
	for ic := range g.ax[0].cands {
		if err := ctx.Err(); err != nil {
			return entries, err
		}
		cOverflow := true
		for im := range g.ax[1].cands {
			if err := ctx.Err(); err != nil {
				return entries, err
			}
			mOverflow := true
			for ip := range g.ax[2].cands {
				pOverflow := true
				for iq := range g.ax[3].cands {
					wE, iE, oE, occ := g.pointOcc(wb, ic, im, ip, iq)
					if occ > req.GLBBits {
						break // larger iq only grows the tiles
					}
					pOverflow = false
					lb := g.pointLB(wb, req.EffectiveBytesPerCycle, minTraffic, wE, iE, oE, ic, im, ip, iq)
					if full && stopLB(lb, kth, eps) {
						gc.pruned++
						continue
					}
					entries = append(entries, lbEntry{
						lb:  lb,
						idx: uint32(ic)<<24 | uint32(im)<<16 | uint32(ip)<<8 | uint32(iq),
					})
				}
				if pOverflow {
					break // overflowed at the smallest iq
				}
				mOverflow = false
			}
			if mOverflow {
				break // overflowed at the smallest (ip, iq)
			}
			cOverflow = false
		}
		if cOverflow {
			break // overflowed at the smallest (im, ip, iq)
		}
	}
	return entries, nil
}

// evaluate is pass B: score survivors in ascending-bound order through the
// exact same scoreTiling the exhaustive path uses, stopping once the next
// bound proves no unexplored tiling can enter the top-k. The threshold only
// tightens as candidates land, so a tiling discarded against the current
// k-th could never have displaced the final k-th.
func (g *guidedPart) evaluate(ctx context.Context, req Request, eps float64, minTraffic int64, best *topK, entries []lbEntry, gc *guidedCounts) error {
	slices.SortFunc(entries, func(a, b lbEntry) int {
		if a.lb != b.lb {
			if a.lb < b.lb {
				return -1
			}
			return 1
		}
		if a.idx != b.idx {
			if a.idx < b.idx {
				return -1
			}
			return 1
		}
		return 0
	})
	l := req.Layer
	for n, e := range entries {
		if n%evalChunk == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if kth, full := best.kthCycles(); full && stopLB(e.lb, kth, eps) {
			gc.pruned += int64(len(entries) - n)
			return nil
		}
		ic := int(e.idx >> 24)
		im := int(e.idx >> 16 & 0xff)
		ip := int(e.idx >> 8 & 0xff)
		iq := int(e.idx & 0xff)
		setGLBTile(g.m, l, mapping.DimC, g.ax[0].cands[ic])
		setGLBTile(g.m, l, mapping.DimM, g.ax[1].cands[im])
		setGLBTile(g.m, l, mapping.DimP, g.ax[2].cands[ip])
		setGLBTile(g.m, l, mapping.DimQ, g.ax[3].cands[iq])
		scoreTiling(req, g.m, minTraffic, best)
		gc.evaluated++
	}
	return nil
}

// evalSeed scores one warm-start seed snapped onto the part's lattice.
// Seeds are pure hints: a seed that no longer fits the GLB is dropped, and
// because every snapped seed is a lattice point the exhaustive path also
// visits, seeding cannot change the Epsilon = 0 result — only the order in
// which the pruning threshold tightens.
func (g *guidedPart) evalSeed(req Request, sd Seed, minTraffic int64, best *topK) bool {
	l := req.Layer
	for i, d := range tiledDims {
		setGLBTile(g.m, l, d, snapTile(g.ax[i].cands, int(sd.Tiles[i])))
	}
	if g.m.GLBBitsUsed(l) > req.GLBBits {
		return false
	}
	scoreTiling(req, g.m, minTraffic, best)
	return true
}

// snapTile returns the largest candidate not exceeding tile (or the
// smallest candidate when tile undercuts them all), keeping seeds on the
// current request's lattice.
func snapTile(cands []int, tile int) int {
	i, _ := slices.BinarySearch(cands, tile)
	if i < len(cands) && cands[i] == tile {
		return tile
	}
	if i == 0 {
		return cands[0]
	}
	return cands[i-1]
}

// searchGuided is the guided-mode body of SearchCtx. It shares spatial
// enumeration, tile candidates, capacity arithmetic, scoring and top-k
// semantics with the exhaustive path; only the evaluation *order* and the
// bound-driven stopping differ.
func searchGuided(ctx context.Context, req Request) ([]Candidate, error) {
	if req.TopK < 1 {
		req.TopK = 1
	}
	l := req.Layer
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("mapper: search layer %s: %w", l.Name, cerr)
	}
	eps := req.Opt.Epsilon
	best := newTopK(req.TopK)
	var gc guidedCounts
	defer func() { publishGuided(req, &gc) }()

	minTraffic := int64(float64(l.TotalVolume()*int64(l.WordBits)) / 8 / req.EffectiveBytesPerCycle)

	var parts []*guidedPart
	for _, sp := range spatialChoices(l, req.PEsX, req.PEsY) {
		if g := newGuidedPart(req, sp, minTraffic); g != nil {
			parts = append(parts, g)
		}
	}

	// Warm-start seeds tighten the pruning threshold before any lattice is
	// walked; each is snapped to its spatial choice's lattice and scored
	// like any other tiling.
	if !req.Opt.DisableWarmStart {
		for _, sd := range warmSeeds(req) {
			key := sd.spatialKey()
			for _, g := range parts {
				if g.sp.normKey() == key {
					if g.evalSeed(req, sd, minTraffic, best) {
						gc.warmSeeds++
						gc.evaluated++
					}
					break
				}
			}
		}
	}

	// Process spatial choices in ascending optimistic-bound order so the
	// threshold tightens as early as possible and later parts can be
	// skipped wholesale.
	order := make([]int, len(parts))
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int {
		if parts[a].minLB != parts[b].minLB {
			if parts[a].minLB < parts[b].minLB {
				return -1
			}
			return 1
		}
		return a - b
	})

	var entries []lbEntry
	for _, pi := range order {
		g := parts[pi]
		if kth, full := best.kthCycles(); full && stopLB(g.minLB, kth, eps) {
			gc.skipped += g.lattice
			continue
		}
		var err error
		entries, err = g.scan(ctx, req, eps, minTraffic, best, entries[:0], &gc)
		if err == nil {
			err = g.evaluate(ctx, req, eps, minTraffic, best, entries, &gc)
		}
		if err != nil {
			return nil, fmt.Errorf("mapper: search layer %s: %w", l.Name, err)
		}
	}

	out := best.sorted()
	if len(out) == 0 {
		out = fallbackCandidates(req)
	}
	if !req.Opt.DisableWarmStart {
		warmPut(req, out)
	}
	return out, nil
}

// publishGuided folds one search's accounting into the process-wide
// counters and emits the per-search obs event.
func publishGuided(req Request, gc *guidedCounts) {
	guidedSearches.Add(1)
	guidedEvaluated.Add(gc.evaluated)
	guidedPruned.Add(gc.pruned)
	guidedSkipped.Add(gc.skipped)
	guidedWarmSeeds.Add(int64(gc.warmSeeds))
	if req.Observe != nil {
		req.Observe.MapperSearch(obs.MapperSearchEvent{
			Layer:     req.Layer.Name,
			Evaluated: gc.evaluated,
			Pruned:    gc.pruned,
			Skipped:   gc.skipped,
			WarmSeeds: gc.warmSeeds,
		})
	}
}
