package mapper

import (
	"testing"

	"secureloop/internal/workload"
)

// TestOptionsReachBothKeyTiers pins that the guided-search knobs are part of
// the request identity at both cache tiers: two searches differing only in
// Options{Mode, Epsilon} must occupy distinct in-memory cacheKey slots AND
// hash to distinct persistent store keys. If either tier dropped the
// options, an exact search could serve a relaxed search's result (or vice
// versa) across processes — the cross-contamination keydrift exists to
// prevent, asserted here end-to-end on the real key constructors.
func TestOptionsReachBothKeyTiers(t *testing.T) {
	layer := workload.Layer{
		C: 3, M: 8, R: 3, S: 3, P: 16, Q: 16,
		StrideH: 1, StrideW: 1, N: 1, WordBits: 16,
	}
	base := cacheKey{
		layer: layer, pesX: 8, pesY: 8,
		glb: 1 << 20, rf: 4096, effBW: 16, topK: 5,
	}

	variants := []struct {
		name string
		opt  Options
	}{
		{"exhaustive", Options{Mode: Exhaustive}},
		{"guided exact", Options{Mode: Guided}},
		{"guided relaxed", Options{Mode: Guided, Epsilon: 0.05}},
		{"guided looser", Options{Mode: Guided, Epsilon: 0.1}},
	}
	keys := make([]cacheKey, len(variants))
	for i, v := range variants {
		keys[i] = base
		keys[i].opt = v.opt
	}
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if keys[i] == keys[j] {
				t.Errorf("in-memory cacheKey collision between %q and %q: Options do not reach the cache key",
					variants[i].name, variants[j].name)
			}
			if persistSearchKey(keys[i]) == persistSearchKey(keys[j]) {
				t.Errorf("persistent key collision between %q and %q: Options do not reach persistSearchKey",
					variants[i].name, variants[j].name)
			}
		}
	}

	// Identical options must keep hashing identically, or the store would
	// fragment and every warm sweep would silently go cold.
	dup := base
	dup.opt = Options{Mode: Guided, Epsilon: 0.05}
	if persistSearchKey(keys[2]) != persistSearchKey(dup) {
		t.Error("persistSearchKey is not stable for identical requests")
	}
}
