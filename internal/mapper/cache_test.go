package mapper

import (
	"reflect"
	"sync"
	"testing"

	"secureloop/internal/mapping"
)

// TestTopKCountsDistinctSignatures: repeat offers of one tiling signature
// must not make the pruning threshold report "full" — only distinct
// signatures count towards k.
func TestTopKCountsDistinctSignatures(t *testing.T) {
	mk := func(qTile int, cycles int64) Candidate {
		m := mapping.New()
		m.SetFactor(mapping.GLB, mapping.DimQ, qTile)
		return Candidate{Mapping: m, Cycles: cycles}
	}
	tk := newTopK(3)
	// Three offers of the SAME signature (permutation variants of one
	// tiling): k offers seen, but only one distinct signature.
	tk.offer(mk(1, 100))
	tk.offer(mk(1, 90))
	tk.offer(mk(1, 80))
	if _, full := tk.kthCycles(); full {
		t.Fatal("kthCycles reported full after one distinct signature")
	}
	// A worse candidate with a NEW signature must still be admitted.
	tk.offer(mk(2, 500))
	tk.offer(mk(4, 400))
	if _, full := tk.kthCycles(); !full {
		t.Fatal("kthCycles not full after 3 distinct signatures")
	}
	if kth, _ := tk.kthCycles(); kth != 500 {
		t.Fatalf("kth distinct cycles = %d, want 500", kth)
	}
	out := tk.sorted()
	if len(out) != 3 {
		t.Fatalf("sorted returned %d candidates, want 3", len(out))
	}
	if out[0].Cycles != 80 || out[1].Cycles != 400 || out[2].Cycles != 500 {
		t.Fatalf("sorted cycles = [%d %d %d]", out[0].Cycles, out[1].Cycles, out[2].Cycles)
	}
}

// TestTopKPruneKeepsBest: the map stays bounded near k and never loses the
// true top-k.
func TestTopKPruneKeepsBest(t *testing.T) {
	mk := func(qTile int, cycles int64) Candidate {
		m := mapping.New()
		m.SetFactor(mapping.GLB, mapping.DimQ, qTile)
		return Candidate{Mapping: m, Cycles: cycles}
	}
	tk := newTopK(2)
	for q := 1; q <= 100; q++ {
		tk.offer(mk(q, int64(1000-q))) // later signatures are better
	}
	if len(tk.best) > 8*tk.k {
		t.Fatalf("topK map grew to %d entries for k=%d", len(tk.best), tk.k)
	}
	out := tk.sorted()
	if len(out) != 2 || out[0].Cycles != 900 || out[1].Cycles != 901 {
		t.Fatalf("top-2 = %+v", out)
	}
}

func TestSearchCachedSingleflight(t *testing.T) {
	ResetCache()
	l := benchLayer()
	req := Request{
		Layer: &l, PEsX: 14, PEsY: 12,
		GLBBits: 8 * 64 * 1024, RFBits: 8 * 512,
		EffectiveBytesPerCycle: 32,
		TopK:                   4,
	}
	const callers = 8
	results := make([][]Candidate, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = SearchCached(req)
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("caller %d saw a different result", i)
		}
	}
	st := CacheStats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 (singleflight)", st.Misses)
	}
	if st.Hits+st.Shared != callers-1 {
		t.Errorf("hits+shared = %d, want %d", st.Hits+st.Shared, callers-1)
	}
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
	// A second, sequential call is a plain hit.
	SearchCached(req)
	if got := CacheStats(); got.Hits != st.Hits+1 {
		t.Errorf("sequential re-request did not hit: %+v", got)
	}
}

func TestCacheStatsResets(t *testing.T) {
	ResetCache()
	st := CacheStats()
	if st != (Stats{}) {
		t.Fatalf("stats after reset = %+v", st)
	}
}
