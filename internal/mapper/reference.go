package mapper

import (
	"context"

	"secureloop/internal/mapping"
	"secureloop/internal/model"
)

// This file retains the pre-optimisation step-1 inner loop verbatim: one
// Mapping clone per tiling, full model evaluation per permutation, capacity
// checks by skipping (never breaking), and only the tiling-independent
// traffic lower bound. It is the oracle for TestSearchEquivalence, which
// asserts that the optimised searchTilings — reusable mapping, per-tiling
// TilingAnalysis, monotone capacity breaks, tightened lower bound, lazy
// cloning — returns a byte-identical top-k. It is deliberately not exported
// and not on any production path.

// searchReference is Search with the reference inner loop.
func searchReference(req Request) []Candidate {
	out, _ := search(context.Background(), req, searchTilingsReference)
	return out
}

// searchTilingsReference enumerates tilings by cloning the skeleton per
// point and pruning by capacity with `continue`. The context parameter only
// satisfies the shared enumerator shape; the reference loop is retained
// verbatim and never runs under a cancellable context.
func searchTilingsReference(_ context.Context, req Request, sp spatialChoice, best *topK) {
	l := req.Layer
	skeleton := baseMapping(l, sp)

	// Cheap lower bound on any permutation's cost: compute cycles (which
	// are permutation-independent) and the cycles to move each tensor
	// off-chip at least once.
	minTrafficCycles := int64(float64(l.TotalVolume()*int64(l.WordBits)) / 8 / req.EffectiveBytesPerCycle)

	cs := tileCandidates(mapping.Bound(l, mapping.DimC))
	ms := tileCandidates(mapping.Bound(l, mapping.DimM))
	ps := tileCandidates(mapping.Bound(l, mapping.DimP))
	qs := tileCandidates(mapping.Bound(l, mapping.DimQ))

	for _, ct := range cs {
		for _, mt := range ms {
			for _, pt := range ps {
				for _, qt := range qs {
					m := skeleton.Clone()
					setGLBTile(m, l, mapping.DimC, ct)
					setGLBTile(m, l, mapping.DimM, mt)
					setGLBTile(m, l, mapping.DimP, pt)
					setGLBTile(m, l, mapping.DimQ, qt)
					// GLB holds full filter extents.
					setGLBTile(m, l, mapping.DimR, mapping.Bound(l, mapping.DimR))
					setGLBTile(m, l, mapping.DimS, mapping.Bound(l, mapping.DimS))

					if m.GLBBitsUsed(l) > req.GLBBits {
						continue
					}
					if m.RFBitsUsed(l) > req.RFBits {
						continue
					}
					lower := m.TemporalIterations(l)
					if lower < minTrafficCycles {
						lower = minTrafficCycles
					}
					if kth, full := best.kthCycles(); full && lower > kth {
						continue
					}
					scorePermutationsReference(req, m, best)
				}
			}
		}
	}
}

// scorePermutationsReference clones the tiling for every permutation and
// scores it with the unsplit model entry point.
func scorePermutationsReference(req Request, m *mapping.Mapping, best *topK) {
	l := req.Layer
	for _, perm := range permHeuristics {
		mm := m.Clone()
		mm.PermDRAM = perm
		mm.PermGLB = perm
		cycles := model.SchedulingCycles(l, mm, req.EffectiveBytesPerCycle)
		bits := mm.Offchip(l).TotalElems() * int64(l.WordBits)
		best.offer(Candidate{Mapping: mm, Cycles: cycles, OffchipBits: bits})
	}
}
