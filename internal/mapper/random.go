package mapper

import (
	"math/rand"

	"secureloop/internal/mapping"
	"secureloop/internal/model"
	"secureloop/internal/workload"
)

// RandomSearch is the random-pruned search mode Timeloop offers as an
// alternative to exhaustive enumeration (paper Section 2.1: "supported
// approximate methods like random pruning to reduce the search time"). It
// samples `samples` random valid mappings — random spatial choice, random
// tile sizes from the same candidate sets as Search, random permutation —
// and keeps the top-k. Deterministic for a given seed.
//
// It exists as a cheaper, lower-quality substrate to quantify what the
// exhaustive step-1 search buys (see BenchmarkRandomVsExhaustiveMapper).
func RandomSearch(req Request, samples int, seed int64) []Candidate {
	if req.TopK < 1 {
		req.TopK = 1
	}
	l := req.Layer
	rng := rand.New(rand.NewSource(seed))
	best := newTopK(req.TopK)

	spatials := spatialChoices(l, req.PEsX, req.PEsY)
	cs := tileCandidates(mapping.Bound(l, mapping.DimC))
	ms := tileCandidates(mapping.Bound(l, mapping.DimM))
	ps := tileCandidates(mapping.Bound(l, mapping.DimP))
	qs := tileCandidates(mapping.Bound(l, mapping.DimQ))

	for i := 0; i < samples; i++ {
		sp := spatials[rng.Intn(len(spatials))]
		m := baseMapping(l, sp)
		setGLBTile(m, l, mapping.DimC, cs[rng.Intn(len(cs))])
		setGLBTile(m, l, mapping.DimM, ms[rng.Intn(len(ms))])
		setGLBTile(m, l, mapping.DimP, ps[rng.Intn(len(ps))])
		setGLBTile(m, l, mapping.DimQ, qs[rng.Intn(len(qs))])
		setGLBTile(m, l, mapping.DimR, mapping.Bound(l, mapping.DimR))
		setGLBTile(m, l, mapping.DimS, mapping.Bound(l, mapping.DimS))

		if m.GLBBitsUsed(l) > req.GLBBits || m.RFBitsUsed(l) > req.RFBits {
			continue
		}
		perm := append([]mapping.Dim(nil), mapping.Dims[:]...)
		rng.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		m.PermDRAM = perm
		m.PermGLB = perm

		best.offer(Candidate{
			Mapping:     m,
			Cycles:      model.SchedulingCycles(l, m, req.EffectiveBytesPerCycle),
			OffchipBits: m.Offchip(l).TotalElems() * int64(l.WordBits),
		})
	}
	out := best.sorted()
	if len(out) == 0 {
		// Fall back to the exhaustive search's guaranteed-valid result.
		return Search(req)
	}
	return out
}

// RandomQualityGap runs both searches and returns the best-cycles ratio
// random/exhaustive (>= 1.0 when the exhaustive search wins, which it must
// up to sampling luck on tiny spaces).
func RandomQualityGap(req Request, samples int, seed int64) float64 {
	_ = workload.Datatypes // keep the import graph explicit for godoc
	r := RandomSearch(req, samples, seed)
	e := Search(req)
	if len(e) == 0 || e[0].Cycles == 0 {
		return 1
	}
	return float64(r[0].Cycles) / float64(e[0].Cycles)
}
