// Package mapper searches the loopnest-schedule space of one layer on one
// architecture, the role Timeloop plays in the paper's first scheduling
// step. The search enumerates spatial mappings, per-dimension tile sizes
// and loop permutations, prunes by buffer capacity, scores candidates with
// the model's effective-bandwidth cost (Section 4.1) and returns the top-k
// distinct schedules per layer — the neighbour sets the simulated-annealing
// step samples from (Section 4.3).
//
// The inner loop is the hottest path of the whole tool (it runs once per
// layer per design point): it mutates one reusable Mapping per worker,
// derives the permutation-independent cost terms once per tiling
// (mapping.TilingAnalysis), breaks out of the sorted tile-candidate loops at
// the first capacity violation (occupancy is monotone in each tile size),
// and clones a Mapping only when a candidate actually enters the top-k. The
// pre-optimisation implementation is retained in reference.go as the oracle
// for the search-equivalence test.
package mapper

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"

	"secureloop/internal/mapping"
	"secureloop/internal/model"
	"secureloop/internal/num"
	"secureloop/internal/obs"
	"secureloop/internal/store"
	"secureloop/internal/workload"
)

// Candidate is one scored schedule.
type Candidate struct {
	Mapping *mapping.Mapping
	// Cycles is the step-1 scheduling cost: latency under the effective
	// off-chip bandwidth, before authentication overhead.
	Cycles int64
	// OffchipBits is the data-only off-chip traffic, used as a tie-breaker
	// (among equal-latency schedules, less traffic means less energy and
	// less authentication exposure).
	OffchipBits int64
}

// better reports whether a should rank before b.
func (a Candidate) better(b Candidate) bool {
	if a.Cycles != b.Cycles {
		return a.Cycles < b.Cycles
	}
	return a.OffchipBits < b.OffchipBits
}

// Request describes one mapping search.
type Request struct {
	Layer *workload.Layer
	// PEsX, PEsY give the PE array shape.
	PEsX, PEsY int
	// GLBBits and RFBits are buffer capacities.
	GLBBits, RFBits int64
	// EffectiveBytesPerCycle is the off-chip bandwidth the cost model
	// assumes (min(DRAM, crypto) for secure designs).
	EffectiveBytesPerCycle float64
	// TopK is how many distinct schedules to return (>=1).
	TopK int
	// Opt selects the search strategy; the zero value (exhaustive, ε=0)
	// preserves the historical behaviour exactly.
	Opt Options
	// Observe receives per-search instrumentation events (guided-search
	// evaluated/pruned/skipped accounting); nil means none. It is not part
	// of the cached-search identity.
	Observe obs.Observer
	// Store, when non-nil, is the persistent result tier consulted by
	// SearchCachedCtx on an in-memory miss and populated (write-behind)
	// after a successful search. Like Observe it is not part of the
	// cached-search identity: a store hit is byte-identical to the search
	// it replaces.
	Store *store.Store
}

// Search returns the top-k schedules for the request, best first. The
// result is never empty for a valid layer: a degenerate all-sequential
// mapping always fits. It is SearchCtx with a background context.
func Search(req Request) []Candidate {
	out, _ := SearchCtx(context.Background(), req)
	return out
}

// SearchCtx is Search honouring a context: the spatial-choice worker pool
// stops launching on cancellation, in-flight tiling enumerations bail out at
// tiling-batch boundaries, and the error is ctx.Err() wrapped with the layer
// name. A panic anywhere in the search (an overflow guard tripping on a
// malformed layer) is recovered here and surfaced as an error.
// req.Opt selects between the exhaustive path and the guided best-first
// path (guided.go); both produce top-k sets under the identical ranking.
func SearchCtx(ctx context.Context, req Request) (out []Candidate, err error) {
	defer obs.CapturePanic(&err)
	if req.Opt.Mode == Guided {
		return searchGuided(ctx, req)
	}
	return search(ctx, req, searchTilings)
}

// search runs the spatial-choice fan-out with the given per-choice tiling
// enumerator; Search and searchReference share it so the optimised and
// reference paths resolve ranking ties identically.
func search(ctx context.Context, req Request, tilings func(context.Context, Request, spatialChoice, *topK)) ([]Candidate, error) {
	if req.TopK < 1 {
		req.TopK = 1
	}
	l := req.Layer

	// Spatial choices are independent; search them in parallel and merge.
	// Each worker body is guarded so a panicking cost model fails this one
	// search rather than the process.
	spatials := spatialChoices(l, req.PEsX, req.PEsY)
	parts := make([]*topK, len(spatials))
	errs := make([]error, len(spatials))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, sp := range spatials {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, sp spatialChoice) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = obs.Guard(func() error {
				part := newTopK(req.TopK)
				tilings(ctx, req, sp, part)
				parts[i] = part
				return nil
			})
		}(i, sp)
	}
	wg.Wait()
	for _, werr := range errs {
		if werr != nil {
			return nil, fmt.Errorf("mapper: search layer %s: %w", l.Name, werr)
		}
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("mapper: search layer %s: %w", l.Name, cerr)
	}
	best := newTopK(req.TopK)
	for _, part := range parts {
		for _, c := range part.sorted() {
			best.offer(c)
		}
	}

	out := best.sorted()
	if len(out) == 0 {
		out = fallbackCandidates(req)
	}
	return out, nil
}

// fallbackCandidates returns the degenerate all-sequential schedule
// (single-element tiles, full filter extents at the GLB) — always valid, so
// no search ever comes back empty. The exhaustive and guided paths share it
// so they stay byte-identical on layers with no capacity-feasible tiling.
func fallbackCandidates(req Request) []Candidate {
	l := req.Layer
	m := baseMapping(l, spatialChoice{})
	for _, d := range mapping.Dims {
		m.SetFactor(mapping.GLB, d, 1)
	}
	m.SetFactor(mapping.GLB, mapping.DimR, mapping.Bound(l, mapping.DimR))
	m.SetFactor(mapping.GLB, mapping.DimS, mapping.Bound(l, mapping.DimS))
	return []Candidate{{
		Mapping:     m,
		Cycles:      model.SchedulingCycles(l, m, req.EffectiveBytesPerCycle),
		OffchipBits: m.Offchip(l).TotalElems() * int64(l.WordBits),
	}}
}

// spatialChoice assigns one dimension to each PE-array axis.
type spatialChoice struct {
	dimX, dimY mapping.Dim
	fx, fy     int
}

// spatialChoices enumerates spatial mappings: pairs of distinct dimensions
// spread over the array columns/rows with the largest usable factors (and a
// half-size alternative, which sometimes wins when it divides the bound
// more evenly). The row-stationary assignment of the base architecture
// (filter rows along the array rows, output columns along the array
// columns) is always included.
func spatialChoices(l *workload.Layer, pesX, pesY int) []spatialChoice {
	xDims := []mapping.Dim{mapping.DimQ, mapping.DimP, mapping.DimM, mapping.DimC}
	yDims := []mapping.Dim{mapping.DimR, mapping.DimM, mapping.DimC, mapping.DimP}
	var out []spatialChoice
	seen := map[[4]int]bool{}
	for _, dx := range xDims {
		for _, dy := range yDims {
			if dx == dy {
				continue
			}
			bx, by := mapping.Bound(l, dx), mapping.Bound(l, dy)
			if bx <= 1 && by <= 1 {
				continue
			}
			for _, fx := range spatialFactors(bx, pesX) {
				for _, fy := range spatialFactors(by, pesY) {
					if fx == 1 && fy == 1 {
						continue
					}
					key := [4]int{int(dx), int(dy), fx, fy}
					if seen[key] {
						continue
					}
					seen[key] = true
					out = append(out, spatialChoice{dimX: dx, dimY: dy, fx: fx, fy: fy})
				}
			}
		}
	}
	// Degenerate: no spatial spreading (tiny layers).
	out = append(out, spatialChoice{dimX: mapping.DimQ, dimY: mapping.DimR, fx: 1, fy: 1})
	return out
}

// spatialFactors picks up to two factors for spreading a bound over an axis
// of the given size: the largest value <= axis, and the best divisor of the
// bound <= axis (avoiding padding waste).
func spatialFactors(bound, axis int) []int {
	if bound <= 1 || axis <= 1 {
		return []int{1}
	}
	full := bound
	if full > axis {
		full = axis
	}
	div := 1
	for f := full; f >= 1; f-- {
		if bound%f == 0 {
			div = f
			break
		}
	}
	if div == full {
		return []int{full}
	}
	return []int{full, div}
}

func dedupInts(in []int) []int {
	sort.Ints(in)
	out := in[:0]
	prev := -1
	for _, v := range in {
		if v != prev {
			out = append(out, v)
			prev = v
		}
	}
	return out
}

// baseMapping builds a mapping skeleton with the spatial choice applied,
// filter dims resident at the register file, and all other factors 1.
func baseMapping(l *workload.Layer, sp spatialChoice) *mapping.Mapping {
	m := mapping.New()
	if sp.fx > 1 {
		m.SetFactor(mapping.SpatialX, sp.dimX, sp.fx)
	}
	if sp.fy > 1 {
		m.SetFactor(mapping.SpatialY, sp.dimY, sp.fy)
	}
	// Filter rows/cols live in the PE register files (weight-row
	// stationarity); when R is spread spatially the per-PE residue remains.
	r := mapping.Bound(l, mapping.DimR)
	s := mapping.Bound(l, mapping.DimS)
	if sp.dimY == mapping.DimR && sp.fy > 1 {
		r = num.CeilDiv(r, sp.fy)
	}
	if sp.dimX == mapping.DimR && sp.fx > 1 {
		r = num.CeilDiv(r, sp.fx)
	}
	if sp.dimY == mapping.DimS && sp.fy > 1 {
		s = num.CeilDiv(s, sp.fy)
	}
	m.SetFactor(mapping.RF, mapping.DimR, r)
	m.SetFactor(mapping.RF, mapping.DimS, s)
	return m
}

// searchTilings enumerates GLB tile sizes for C, M, P, Q on top of the
// spatial skeleton, prunes by capacity, and scores survivors under a set of
// loop-permutation heuristics. One Mapping is reused for the whole
// enumeration: setGLBTile writes are per-dimension independent, so mutating
// the factors in place visits exactly the tilings the reference path builds
// by cloning.
func searchTilings(ctx context.Context, req Request, sp spatialChoice, best *topK) {
	l := req.Layer
	m := baseMapping(l, sp)

	// RF occupancy reads only RF-level factors, which the GLB tiling loop
	// never touches: one check covers the whole spatial choice.
	if m.RFBitsUsed(l) > req.RFBits {
		return
	}

	// GLB holds full filter extents (independent of the C/M/P/Q loop).
	setGLBTile(m, l, mapping.DimR, mapping.Bound(l, mapping.DimR))
	setGLBTile(m, l, mapping.DimS, mapping.Bound(l, mapping.DimS))

	// Tiling-independent traffic lower bound: all data crosses the chip
	// boundary at least once.
	minTrafficCycles := int64(float64(l.TotalVolume()*int64(l.WordBits)) / 8 / req.EffectiveBytesPerCycle)

	cs := tileCandidates(mapping.Bound(l, mapping.DimC))
	ms := tileCandidates(mapping.Bound(l, mapping.DimM))
	ps := tileCandidates(mapping.Bound(l, mapping.DimP))
	qs := tileCandidates(mapping.Bound(l, mapping.DimQ))

	// The candidate lists ascend and GLBBitsUsed is monotone nondecreasing
	// in every tile size (tile extents, and the ifmap halo they induce, only
	// grow), so a capacity violation ends the innermost axis — and when it
	// happens at the smallest setting of all inner axes it ends the
	// enclosing axis too.
	for _, ct := range cs {
		// Cancellation is polled at the two outer tiling-batch boundaries
		// only; the inner axes stay branch-lean so the hot loop's cost is
		// unchanged. An early return leaves a partial topK, which the caller
		// discards when it sees ctx.Err().
		if ctx.Err() != nil {
			return
		}
		setGLBTile(m, l, mapping.DimC, ct)
		cOverflow := true
		for _, mt := range ms {
			if ctx.Err() != nil {
				return
			}
			setGLBTile(m, l, mapping.DimM, mt)
			mOverflow := true
			for _, pt := range ps {
				setGLBTile(m, l, mapping.DimP, pt)
				pOverflow := true
				for _, qt := range qs {
					setGLBTile(m, l, mapping.DimQ, qt)
					if m.GLBBitsUsed(l) > req.GLBBits {
						break // larger qt only grows the tiles
					}
					pOverflow = false
					scoreTiling(req, m, minTrafficCycles, best)
				}
				if pOverflow {
					break // overflowed at the smallest qt
				}
				mOverflow = false
			}
			if mOverflow {
				break // overflowed at the smallest (pt, qt)
			}
			cOverflow = false
		}
		if cOverflow {
			break // overflowed at the smallest (mt, pt, qt)
		}
	}
}

// scoreTiling scores the capacity-feasible tiling currently held by m under
// every permutation heuristic. The tiling is analysed once; each permutation
// then costs one loop-order traffic product. m is cloned only when a
// candidate passes the top-k admission gate.
func scoreTiling(req Request, m *mapping.Mapping, minTrafficCycles int64, best *topK) {
	l := req.Layer
	an := m.Analyze(l)

	// Per-tiling lower bound over all permutations: compute cycles plus the
	// cycles to fetch every distinct tile of every datatype once. Tilings
	// that cannot beat the current k-th best skip permutation scoring.
	lower := model.SchedulingCyclesFor(an.Compute, an.MinOffchipElems*int64(l.WordBits), req.EffectiveBytesPerCycle)
	if lower < minTrafficCycles {
		lower = minTrafficCycles
	}
	if kth, full := best.kthCycles(); full && lower > kth {
		return
	}

	// All permutations of one tiling share its signature, so at most one of
	// them survives in the top-k map. Fold them to a local winner first —
	// ties go to the later permutation, exactly as sequential offers resolve
	// them — and pay the admission lookup and mapping copy once.
	wordBits := int64(l.WordBits)
	var winCycles, winBits int64
	var winPerm []mapping.Dim
	for _, perm := range permHeuristics {
		bits := an.OffchipElems(perm) * wordBits
		cycles := model.SchedulingCyclesFor(an.Compute, bits, req.EffectiveBytesPerCycle)
		if winPerm == nil || cycles < winCycles || (cycles == winCycles && bits <= winBits) {
			winCycles, winBits, winPerm = cycles, bits, perm
		}
	}
	sig := signature(m)
	if !best.admit(sig, winCycles, winBits) {
		return
	}
	best.insert(sig, winCycles, winBits, m, winPerm)
}

// setGLBTile sets the GLB-level factor so that the tile covers `tile`
// iterations of the dimension, given the factors already fixed below GLB.
func setGLBTile(m *mapping.Mapping, l *workload.Layer, d mapping.Dim, tile int) {
	//securelint:ignore overflowmul sub-GLB factors multiply to at most the padded dimension bound (tiling-search invariant); this runs in the search hot loop, so the checked multiply is deliberately avoided
	below := m.Factor(mapping.RF, d) * m.Factor(mapping.SpatialX, d) * m.Factor(mapping.SpatialY, d)
	if tile < below {
		tile = below
	}
	m.SetFactor(mapping.GLB, d, num.CeilDiv(tile, below))
}

// permHeuristics are the DRAM-level loop orders tried per tiling, outermost
// first: each makes one datatype maximally stationary off-chip, plus a
// reduction-innermost order that streams ofmaps without partial-sum spills.
var permHeuristics = [][]mapping.Dim{
	// Ofmap stationary: reduction loops innermost, output loops outermost.
	{mapping.DimM, mapping.DimP, mapping.DimQ, mapping.DimC, mapping.DimR, mapping.DimS},
	{mapping.DimP, mapping.DimQ, mapping.DimM, mapping.DimC, mapping.DimR, mapping.DimS},
	// Weight stationary: weight dims outermost, spatial output loops inner.
	{mapping.DimC, mapping.DimM, mapping.DimP, mapping.DimQ, mapping.DimR, mapping.DimS},
	{mapping.DimM, mapping.DimC, mapping.DimP, mapping.DimQ, mapping.DimR, mapping.DimS},
	// Ifmap stationary: ifmap dims outermost, M innermost.
	{mapping.DimC, mapping.DimP, mapping.DimQ, mapping.DimM, mapping.DimR, mapping.DimS},
	{mapping.DimP, mapping.DimQ, mapping.DimC, mapping.DimM, mapping.DimR, mapping.DimS},
}

// sigKey is the DRAM-tiling signature used as the top-k map key. A fixed
// byte array (unlike the string it replaced) is comparable without any
// per-offer allocation.
type sigKey [4 * int(mapping.NumDims)]byte

// signature captures the DRAM-level tile geometry: GLB tile extents and
// spatial factors per dimension (permutation excluded). Together with the
// layer it determines the whole pre-permutation mapping, so equal signatures
// imply interchangeable candidates up to loop order.
func signature(m *mapping.Mapping) sigKey {
	var b sigKey
	for i, d := range mapping.Dims {
		t := m.TileDim(mapping.GLB, d)
		b[4*i] = byte(t)
		b[4*i+1] = byte(t >> 8)
		b[4*i+2] = byte(m.Factor(mapping.SpatialX, d))
		b[4*i+3] = byte(m.Factor(mapping.SpatialY, d))
	}
	return b
}

// scoreRef is a top-k map value: the entry's score plus an index into the
// payload pool. Keeping the 24-byte score in the map (instead of the whole
// mapping) makes the admission lookup on every offer cheap, while the pool
// stores mappings by value so no admitted offer ever heap-clones one — the
// search's former dominant allocation.
type scoreRef struct {
	cycles, bits int64
	idx          int32 // into topK.pool
}

// payload is a pooled top-k entry body.
type payload struct {
	m mapping.Mapping
	// perm, when non-nil, overrides both PermDRAM and PermGLB of m when the
	// entry is materialised into a Candidate.
	perm []mapping.Dim
}

// topK keeps the best candidate per DRAM-tiling signature and returns the k
// best of those. Distinct signatures (rather than distinct loopnests) keep
// the returned set diverse in *tiling*, which is what the cross-layer
// AuthBlock costs and therefore the annealing neighbourhood (Section 4.3)
// actually respond to; for one tiling only its best permutation survives.
// All ordering ties break on the signature bytes so results are independent
// of map iteration and offer order.
type topK struct {
	k    int
	best map[sigKey]scoreRef
	// pool holds entry bodies; replacements overwrite their slot, prune
	// compacts, so it stays within a small multiple of k.
	pool []payload
	// lows caches the sorted best cycle counts of the k lowest *distinct*
	// signatures (rebuilt lazily when dirty). Counting distinct signatures
	// rather than raw offers matters: repeat offers of one tiling must not
	// make the pruning threshold look "full" before k tilings exist.
	lows  []int64
	dirty bool
}

func newTopK(k int) *topK {
	return &topK{k: k, best: map[sigKey]scoreRef{}}
}

// candidate materialises an entry: one Mapping allocation per returned
// candidate, paid only for the winners rather than per offer.
func (t *topK) candidate(ref scoreRef) Candidate {
	p := t.pool[ref.idx]
	mm := p.m
	if p.perm != nil {
		mm.PermDRAM = p.perm
		mm.PermGLB = p.perm
	}
	return Candidate{Mapping: &mm, Cycles: ref.cycles, OffchipBits: ref.bits}
}

// rankLess is the total candidate order: (cycles, off-chip bits, signature).
func rankLess(aSig sigKey, a scoreRef, bSig sigKey, b scoreRef) bool {
	if a.cycles != b.cycles {
		return a.cycles < b.cycles
	}
	if a.bits != b.bits {
		return a.bits < b.bits
	}
	return bytes.Compare(aSig[:], bSig[:]) < 0
}

// kthCycles returns the best cycle count of the k-th lowest *distinct*
// tiling signature seen so far, and whether k distinct signatures exist yet.
// Pruning against it never loses the best schedule (a pruned tiling's lower
// bound exceeds the k-th distinct tiling's best), and — unlike counting raw
// offers — it cannot over-prune before k distinct tilings have been seen.
func (t *topK) kthCycles() (int64, bool) {
	if len(t.best) < t.k {
		return 0, false
	}
	if t.dirty {
		t.rebuildLows()
	}
	return t.lows[t.k-1], true
}

// rebuildLows recomputes the k lowest per-signature best cycle counts. The
// map is pruned to stay within a small multiple of k, so this is O(k).
func (t *topK) rebuildLows() {
	t.lows = t.lows[:0]
	for _, ref := range t.best {
		t.lows = append(t.lows, ref.cycles)
	}
	slices.Sort(t.lows)
	if len(t.lows) > t.k {
		t.lows = t.lows[:t.k]
	}
	t.dirty = false
}

// admit reports whether a candidate scoring (cycles, bits) under the given
// signature needs storing; the caller builds the entry body only when it
// returns true. Unlike offer, a tie against the stored candidate is
// rejected: a signature determines its pre-permutation mapping and
// therefore its deterministic fold winner, so an equal-scored re-offer of
// the same signature is the identical candidate and replacing it is a
// no-op.
func (t *topK) admit(sig sigKey, cycles, bits int64) bool {
	if cur, ok := t.best[sig]; ok {
		return cycles < cur.cycles || (cycles == cur.cycles && bits < cur.bits)
	}
	// New signature: drop it outright if it cannot rank within the top k.
	// It may return later only via a strictly better offer, which passes
	// this gate, so the final top-k is unaffected.
	kth, full := t.kthCycles()
	return !full || cycles <= kth
}

// insert stores an admitted entry under its signature. The mapping is
// copied by value into the pool (reusing a replaced entry's slot), never
// heap-cloned.
func (t *topK) insert(sig sigKey, cycles, bits int64, m *mapping.Mapping, perm []mapping.Dim) {
	if cur, ok := t.best[sig]; ok {
		if cycles < cur.cycles {
			t.dirty = true
		}
		t.pool[cur.idx] = payload{m: *m, perm: perm}
		t.best[sig] = scoreRef{cycles: cycles, bits: bits, idx: cur.idx}
		return
	}
	t.pool = append(t.pool, payload{m: *m, perm: perm})
	t.best[sig] = scoreRef{cycles: cycles, bits: bits, idx: int32(len(t.pool) - 1)}
	t.dirty = true
	if len(t.best) > 4*t.k {
		t.prune()
	}
}

// offer is the general admission path (reference search, part merging,
// random search): on a score tie with the stored candidate the later offer
// wins, matching the historical sequential-offer semantics.
func (t *topK) offer(c Candidate) {
	sig := signature(c.Mapping)
	if cur, ok := t.best[sig]; ok {
		if cur.cycles < c.Cycles || (cur.cycles == c.Cycles && cur.bits < c.OffchipBits) {
			return
		}
	} else if kth, full := t.kthCycles(); full && c.Cycles > kth {
		return
	}
	t.insert(sig, c.Cycles, c.OffchipBits, c.Mapping, nil)
}

// prune shrinks the map to the k best signatures and compacts the pool.
// Dropped signatures rank below k and per-signature bests never worsen, so
// they could never enter the final top-k with their current candidates.
func (t *topK) prune() {
	all := t.rankedEntries()
	if len(all) > t.k {
		all = all[:t.k]
	}
	pool := make([]payload, 0, len(all))
	t.best = make(map[sigKey]scoreRef, len(all))
	for _, en := range all {
		pool = append(pool, t.pool[en.ref.idx])
		en.ref.idx = int32(len(pool) - 1)
		t.best[en.sig] = en.ref
	}
	t.pool = pool
	t.dirty = true
}

// rankEntry pairs a signature with its score for sorting.
type rankEntry struct {
	sig sigKey
	ref scoreRef
}

func (t *topK) rankedEntries() []rankEntry {
	all := make([]rankEntry, 0, len(t.best))
	for sig, ref := range t.best {
		all = append(all, rankEntry{sig, ref})
	}
	sort.Slice(all, func(i, j int) bool {
		return rankLess(all[i].sig, all[i].ref, all[j].sig, all[j].ref)
	})
	return all
}

func (t *topK) sorted() []Candidate {
	all := t.rankedEntries()
	if len(all) > t.k {
		all = all[:t.k]
	}
	out := make([]Candidate, 0, len(all))
	for _, en := range all {
		out = append(out, t.candidate(en.ref))
	}
	return out
}
