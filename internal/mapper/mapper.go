// Package mapper searches the loopnest-schedule space of one layer on one
// architecture, the role Timeloop plays in the paper's first scheduling
// step. The search enumerates spatial mappings, per-dimension tile sizes
// and loop permutations, prunes by buffer capacity, scores candidates with
// the model's effective-bandwidth cost (Section 4.1) and returns the top-k
// distinct schedules per layer — the neighbour sets the simulated-annealing
// step samples from (Section 4.3).
package mapper

import (
	"runtime"
	"sort"
	"sync"

	"secureloop/internal/mapping"
	"secureloop/internal/model"
	"secureloop/internal/workload"
)

// Candidate is one scored schedule.
type Candidate struct {
	Mapping *mapping.Mapping
	// Cycles is the step-1 scheduling cost: latency under the effective
	// off-chip bandwidth, before authentication overhead.
	Cycles int64
	// OffchipBits is the data-only off-chip traffic, used as a tie-breaker
	// (among equal-latency schedules, less traffic means less energy and
	// less authentication exposure).
	OffchipBits int64
}

// better reports whether a should rank before b.
func (a Candidate) better(b Candidate) bool {
	if a.Cycles != b.Cycles {
		return a.Cycles < b.Cycles
	}
	return a.OffchipBits < b.OffchipBits
}

// Request describes one mapping search.
type Request struct {
	Layer *workload.Layer
	// PEsX, PEsY give the PE array shape.
	PEsX, PEsY int
	// GLBBits and RFBits are buffer capacities.
	GLBBits, RFBits int64
	// EffectiveBytesPerCycle is the off-chip bandwidth the cost model
	// assumes (min(DRAM, crypto) for secure designs).
	EffectiveBytesPerCycle float64
	// TopK is how many distinct schedules to return (>=1).
	TopK int
}

// Search returns the top-k schedules for the request, best first. The
// result is never empty for a valid layer: a degenerate all-sequential
// mapping always fits.
func Search(req Request) []Candidate {
	if req.TopK < 1 {
		req.TopK = 1
	}
	l := req.Layer

	// Spatial choices are independent; search them in parallel and merge.
	spatials := spatialChoices(l, req.PEsX, req.PEsY)
	parts := make([]*topK, len(spatials))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, sp := range spatials {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, sp spatialChoice) {
			defer wg.Done()
			defer func() { <-sem }()
			part := newTopK(req.TopK)
			searchTilings(req, sp, part)
			parts[i] = part
		}(i, sp)
	}
	wg.Wait()
	best := newTopK(req.TopK)
	for _, part := range parts {
		for _, c := range part.sorted() {
			best.offer(c)
		}
	}

	out := best.sorted()
	if len(out) == 0 {
		// Fallback: fully sequential single-element tiles (always valid).
		m := baseMapping(l, spatialChoice{})
		for _, d := range mapping.Dims {
			m.SetFactor(mapping.GLB, d, 1)
		}
		m.SetFactor(mapping.GLB, mapping.DimR, mapping.Bound(l, mapping.DimR))
		m.SetFactor(mapping.GLB, mapping.DimS, mapping.Bound(l, mapping.DimS))
		out = []Candidate{{
			Mapping:     m,
			Cycles:      model.SchedulingCycles(l, m, req.EffectiveBytesPerCycle),
			OffchipBits: m.Offchip(l).TotalElems() * int64(l.WordBits),
		}}
	}
	return out
}

// spatialChoice assigns one dimension to each PE-array axis.
type spatialChoice struct {
	dimX, dimY mapping.Dim
	fx, fy     int
}

// spatialChoices enumerates spatial mappings: pairs of distinct dimensions
// spread over the array columns/rows with the largest usable factors (and a
// half-size alternative, which sometimes wins when it divides the bound
// more evenly). The row-stationary assignment of the base architecture
// (filter rows along the array rows, output columns along the array
// columns) is always included.
func spatialChoices(l *workload.Layer, pesX, pesY int) []spatialChoice {
	xDims := []mapping.Dim{mapping.DimQ, mapping.DimP, mapping.DimM, mapping.DimC}
	yDims := []mapping.Dim{mapping.DimR, mapping.DimM, mapping.DimC, mapping.DimP}
	var out []spatialChoice
	seen := map[[4]int]bool{}
	for _, dx := range xDims {
		for _, dy := range yDims {
			if dx == dy {
				continue
			}
			bx, by := mapping.Bound(l, dx), mapping.Bound(l, dy)
			if bx <= 1 && by <= 1 {
				continue
			}
			for _, fx := range spatialFactors(bx, pesX) {
				for _, fy := range spatialFactors(by, pesY) {
					if fx == 1 && fy == 1 {
						continue
					}
					key := [4]int{int(dx), int(dy), fx, fy}
					if seen[key] {
						continue
					}
					seen[key] = true
					out = append(out, spatialChoice{dimX: dx, dimY: dy, fx: fx, fy: fy})
				}
			}
		}
	}
	// Degenerate: no spatial spreading (tiny layers).
	out = append(out, spatialChoice{dimX: mapping.DimQ, dimY: mapping.DimR, fx: 1, fy: 1})
	return out
}

// spatialFactors picks up to two factors for spreading a bound over an axis
// of the given size: the largest value <= axis, and the best divisor of the
// bound <= axis (avoiding padding waste).
func spatialFactors(bound, axis int) []int {
	if bound <= 1 || axis <= 1 {
		return []int{1}
	}
	full := bound
	if full > axis {
		full = axis
	}
	div := 1
	for f := full; f >= 1; f-- {
		if bound%f == 0 {
			div = f
			break
		}
	}
	if div == full {
		return []int{full}
	}
	return []int{full, div}
}

// tileCandidates returns candidate GLB tile sizes for a dimension bound:
// its divisors plus powers of two, capped to a small set.
func tileCandidates(bound int) []int {
	if bound <= 1 {
		return []int{1}
	}
	set := map[int]bool{1: true, bound: true}
	for d := 2; d*d <= bound; d++ {
		if bound%d == 0 {
			set[d] = true
			set[bound/d] = true
		}
	}
	for v := 2; v < bound; v *= 2 {
		set[v] = true
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	if len(out) > 12 {
		// Keep a spread: always 1 and bound, subsample the middle.
		kept := []int{out[0]}
		step := float64(len(out)-2) / 10
		for i := 0; i < 10; i++ {
			kept = append(kept, out[1+int(float64(i)*step)])
		}
		kept = append(kept, out[len(out)-1])
		out = dedupInts(kept)
	}
	return out
}

func dedupInts(in []int) []int {
	sort.Ints(in)
	out := in[:0]
	prev := -1
	for _, v := range in {
		if v != prev {
			out = append(out, v)
			prev = v
		}
	}
	return out
}

// baseMapping builds a mapping skeleton with the spatial choice applied,
// filter dims resident at the register file, and all other factors 1.
func baseMapping(l *workload.Layer, sp spatialChoice) *mapping.Mapping {
	m := mapping.New()
	if sp.fx > 1 {
		m.SetFactor(mapping.SpatialX, sp.dimX, sp.fx)
	}
	if sp.fy > 1 {
		m.SetFactor(mapping.SpatialY, sp.dimY, sp.fy)
	}
	// Filter rows/cols live in the PE register files (weight-row
	// stationarity); when R is spread spatially the per-PE residue remains.
	r := mapping.Bound(l, mapping.DimR)
	s := mapping.Bound(l, mapping.DimS)
	if sp.dimY == mapping.DimR && sp.fy > 1 {
		r = ceilDiv(r, sp.fy)
	}
	if sp.dimX == mapping.DimR && sp.fx > 1 {
		r = ceilDiv(r, sp.fx)
	}
	if sp.dimY == mapping.DimS && sp.fy > 1 {
		s = ceilDiv(s, sp.fy)
	}
	m.SetFactor(mapping.RF, mapping.DimR, r)
	m.SetFactor(mapping.RF, mapping.DimS, s)
	return m
}

// searchTilings enumerates GLB tile sizes for C, M, P, Q on top of the
// spatial skeleton, prunes by capacity, and scores survivors under a set of
// loop-permutation heuristics.
func searchTilings(req Request, sp spatialChoice, best *topK) {
	l := req.Layer
	skeleton := baseMapping(l, sp)

	// Cheap lower bound on any permutation's cost: compute cycles (which
	// are permutation-independent) and the cycles to move each tensor
	// off-chip at least once. Tilings that cannot beat the current k-th
	// best under this bound skip permutation scoring entirely.
	minTrafficCycles := int64(float64(l.TotalVolume()*int64(l.WordBits)) / 8 / req.EffectiveBytesPerCycle)

	cs := tileCandidates(mapping.Bound(l, mapping.DimC))
	ms := tileCandidates(mapping.Bound(l, mapping.DimM))
	ps := tileCandidates(mapping.Bound(l, mapping.DimP))
	qs := tileCandidates(mapping.Bound(l, mapping.DimQ))

	for _, ct := range cs {
		for _, mt := range ms {
			for _, pt := range ps {
				for _, qt := range qs {
					m := skeleton.Clone()
					setGLBTile(m, l, mapping.DimC, ct)
					setGLBTile(m, l, mapping.DimM, mt)
					setGLBTile(m, l, mapping.DimP, pt)
					setGLBTile(m, l, mapping.DimQ, qt)
					// GLB holds full filter extents.
					setGLBTile(m, l, mapping.DimR, mapping.Bound(l, mapping.DimR))
					setGLBTile(m, l, mapping.DimS, mapping.Bound(l, mapping.DimS))

					if m.GLBBitsUsed(l) > req.GLBBits {
						continue
					}
					if m.RFBitsUsed(l) > req.RFBits {
						continue
					}
					lower := m.TemporalIterations(l)
					if lower < minTrafficCycles {
						lower = minTrafficCycles
					}
					if kth, full := best.kthCycles(); full && lower > kth {
						continue
					}
					scorePermutations(req, m, best)
				}
			}
		}
	}
}

// setGLBTile sets the GLB-level factor so that the tile covers `tile`
// iterations of the dimension, given the factors already fixed below GLB.
func setGLBTile(m *mapping.Mapping, l *workload.Layer, d mapping.Dim, tile int) {
	below := m.Factor(mapping.RF, d) * m.Factor(mapping.SpatialX, d) * m.Factor(mapping.SpatialY, d)
	if tile < below {
		tile = below
	}
	m.SetFactor(mapping.GLB, d, ceilDiv(tile, below))
}

// permHeuristics are the DRAM-level loop orders tried per tiling, outermost
// first: each makes one datatype maximally stationary off-chip, plus a
// reduction-innermost order that streams ofmaps without partial-sum spills.
var permHeuristics = [][]mapping.Dim{
	// Ofmap stationary: reduction loops innermost, output loops outermost.
	{mapping.DimM, mapping.DimP, mapping.DimQ, mapping.DimC, mapping.DimR, mapping.DimS},
	{mapping.DimP, mapping.DimQ, mapping.DimM, mapping.DimC, mapping.DimR, mapping.DimS},
	// Weight stationary: weight dims outermost, spatial output loops inner.
	{mapping.DimC, mapping.DimM, mapping.DimP, mapping.DimQ, mapping.DimR, mapping.DimS},
	{mapping.DimM, mapping.DimC, mapping.DimP, mapping.DimQ, mapping.DimR, mapping.DimS},
	// Ifmap stationary: ifmap dims outermost, M innermost.
	{mapping.DimC, mapping.DimP, mapping.DimQ, mapping.DimM, mapping.DimR, mapping.DimS},
	{mapping.DimP, mapping.DimQ, mapping.DimC, mapping.DimM, mapping.DimR, mapping.DimS},
}

func scorePermutations(req Request, m *mapping.Mapping, best *topK) {
	l := req.Layer
	for _, perm := range permHeuristics {
		mm := m.Clone()
		mm.PermDRAM = perm
		mm.PermGLB = perm
		cycles := model.SchedulingCycles(l, mm, req.EffectiveBytesPerCycle)
		bits := mm.Offchip(l).TotalElems() * int64(l.WordBits)
		best.offer(Candidate{Mapping: mm, Cycles: cycles, OffchipBits: bits})
	}
}

// topK keeps the best candidate per DRAM-tiling signature and returns the k
// best of those. Distinct signatures (rather than distinct loopnests) keep
// the returned set diverse in *tiling*, which is what the cross-layer
// AuthBlock costs and therefore the annealing neighbourhood (Section 4.3)
// actually respond to; for one tiling only its best permutation survives.
// All ordering ties break on the signature bytes so results are independent
// of map iteration and offer order.
type topK struct {
	k    int
	best map[string]Candidate
	// lows caches the sorted best cycle counts of the k lowest *distinct*
	// signatures (rebuilt lazily when dirty). Counting distinct signatures
	// rather than raw offers matters: repeat offers of one tiling must not
	// make the pruning threshold look "full" before k tilings exist.
	lows  []int64
	dirty bool
}

func newTopK(k int) *topK {
	return &topK{k: k, best: map[string]Candidate{}}
}

// rankLess is the total candidate order: (cycles, off-chip bits, signature).
func rankLess(aSig string, a Candidate, bSig string, b Candidate) bool {
	if a.Cycles != b.Cycles {
		return a.Cycles < b.Cycles
	}
	if a.OffchipBits != b.OffchipBits {
		return a.OffchipBits < b.OffchipBits
	}
	return aSig < bSig
}

// signature captures the DRAM-level tile geometry: GLB tile extents and
// spatial factors per dimension (permutation excluded).
func signature(m *mapping.Mapping) string {
	var b [4 * int(mapping.NumDims)]byte
	for i, d := range mapping.Dims {
		t := m.TileDim(mapping.GLB, d)
		b[4*i] = byte(t)
		b[4*i+1] = byte(t >> 8)
		b[4*i+2] = byte(m.Factor(mapping.SpatialX, d))
		b[4*i+3] = byte(m.Factor(mapping.SpatialY, d))
	}
	return string(b[:])
}

// kthCycles returns the best cycle count of the k-th lowest *distinct*
// tiling signature seen so far, and whether k distinct signatures exist yet.
// Pruning against it never loses the best schedule (a pruned tiling's lower
// bound exceeds the k-th distinct tiling's best), and — unlike counting raw
// offers — it cannot over-prune before k distinct tilings have been seen.
func (t *topK) kthCycles() (int64, bool) {
	if len(t.best) < t.k {
		return 0, false
	}
	if t.dirty {
		t.rebuildLows()
	}
	return t.lows[t.k-1], true
}

// rebuildLows recomputes the k lowest per-signature best cycle counts. The
// map is pruned to stay within a small multiple of k, so this is O(k).
func (t *topK) rebuildLows() {
	t.lows = t.lows[:0]
	for _, c := range t.best {
		t.lows = append(t.lows, c.Cycles)
	}
	sort.Slice(t.lows, func(i, j int) bool { return t.lows[i] < t.lows[j] })
	if len(t.lows) > t.k {
		t.lows = t.lows[:t.k]
	}
	t.dirty = false
}

func (t *topK) offer(c Candidate) {
	key := signature(c.Mapping)
	if cur, ok := t.best[key]; ok {
		if cur.better(c) {
			return
		}
		if c.Cycles < cur.Cycles {
			t.dirty = true
		}
		t.best[key] = c
		return
	}
	// New signature: drop it outright if it cannot rank within the top k.
	// It may return later only via a strictly better offer, which passes
	// this gate, so the final top-k is unaffected.
	if kth, full := t.kthCycles(); full && c.Cycles > kth {
		return
	}
	t.best[key] = c
	t.dirty = true
	if len(t.best) > 4*t.k {
		t.prune()
	}
}

// prune shrinks the map to the k best signatures. Dropped signatures rank
// below k and per-signature bests never worsen, so they could never enter
// the final top-k with their current candidates.
func (t *topK) prune() {
	type entry struct {
		sig string
		c   Candidate
	}
	all := make([]entry, 0, len(t.best))
	for sig, c := range t.best {
		all = append(all, entry{sig, c})
	}
	sort.Slice(all, func(i, j int) bool {
		return rankLess(all[i].sig, all[i].c, all[j].sig, all[j].c)
	})
	if len(all) > t.k {
		all = all[:t.k]
	}
	t.best = make(map[string]Candidate, len(all))
	for _, e := range all {
		t.best[e.sig] = e.c
	}
	t.dirty = true
}

func (t *topK) sorted() []Candidate {
	type entry struct {
		sig string
		c   Candidate
	}
	all := make([]entry, 0, len(t.best))
	for sig, c := range t.best {
		all = append(all, entry{sig, c})
	}
	sort.Slice(all, func(i, j int) bool {
		return rankLess(all[i].sig, all[i].c, all[j].sig, all[j].c)
	})
	if len(all) > t.k {
		all = all[:t.k]
	}
	out := make([]Candidate, 0, len(all))
	for _, e := range all {
		out = append(out, e.c)
	}
	return out
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}
