package mapper

import (
	"context"
	"errors"
	"strings"
	"testing"

	"secureloop/internal/workload"
)

func TestSearchCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	l := workload.AlexNet().Layer(0)
	out, err := SearchCtx(ctx, baseRequest(l))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), l.Name) {
		t.Errorf("error does not name the layer: %v", err)
	}
	if out != nil {
		t.Errorf("cancelled search returned %d candidates", len(out))
	}
}

// cancelLayer is dimensioned so no other test warms its cache entry: the
// cancelled first call must fail, and the retry must still compute a result
// (a failed search is never memoised).
func cancelLayer() *workload.Layer {
	return &workload.Layer{
		Name: "cancel-probe", C: 13, M: 17, R: 3, S: 3, P: 11, Q: 11,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, N: 1, WordBits: 16,
	}
}

func TestSearchCachedCancelDoesNotPoisonCache(t *testing.T) {
	req := baseRequest(cancelLayer())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SearchCachedCtx(ctx, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("first call: err = %v, want context.Canceled", err)
	}
	// The failed search must not have been stored: the retry recomputes and
	// succeeds.
	out, err := SearchCachedCtx(context.Background(), req)
	if err != nil {
		t.Fatalf("retry after cancellation failed: %v", err)
	}
	if len(out) == 0 {
		t.Fatal("retry returned no candidates")
	}
}

func TestSearchCancelWaiterUnblocks(t *testing.T) {
	// A waiter coalesced onto an in-flight search must honour its own
	// context rather than block until the leader finishes.
	req := baseRequest(cancelLayer())
	req.Layer = &workload.Layer{
		Name: "cancel-waiter", C: 19, M: 23, R: 3, S: 3, P: 13, Q: 13,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, N: 1, WordBits: 16,
	}
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		if _, err := SearchCachedCtx(context.Background(), req); err != nil {
			t.Errorf("leader search failed: %v", err)
		}
	}()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Whether this call sees the in-flight entry, a finished cache entry, or
	// becomes its own leader is timing-dependent; all paths must return
	// promptly with either a result or ctx.Err().
	if _, err := SearchCachedCtx(ctx, req); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter: err = %v, want nil or context.Canceled", err)
	}
	<-leaderDone
}

func TestSearchWorkerPanicBecomesError(t *testing.T) {
	l := workload.AlexNet().Layer(0)
	out, err := search(context.Background(), baseRequest(l),
		func(context.Context, Request, spatialChoice, *topK) { panic("boom") })
	if err == nil {
		t.Fatal("panicking worker did not surface as an error")
	}
	if !strings.Contains(err.Error(), "panic: boom") {
		t.Errorf("error does not carry the panic message: %v", err)
	}
	if out != nil {
		t.Errorf("panicked search returned %d candidates", len(out))
	}
}
