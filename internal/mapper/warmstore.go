package mapper

import (
	"math"
	"sync"
	"sync/atomic"

	"secureloop/internal/mapping"
)

// The warm-start store remembers the winning tilings of completed guided
// searches under a *canonical layer-shape key* — deliberately coarser than
// the exact-result cache in cache.go. Output extents and bandwidth are
// bucketed by power of two and the buffer capacities are excluded entirely,
// so a DSE sweep stepping through neighbouring design points (larger GLB,
// different crypto bandwidth) and repeated near-identical layers across
// networks hit the store and seed the next search with the previous
// winner's tiling. Hits are hints, never answers: seeds are snapped onto
// the new request's lattice and re-checked for capacity, so a stale or
// mismatched seed costs one evaluation and changes nothing else (at
// Epsilon = 0 the result is provably independent of the store contents).

// Seed is one warm-start hint: the spatial choice and the GLB tile extents
// of a previous winner.
type Seed struct {
	// DimX/FX and DimY/FY give the spatial spreading in normalized form:
	// dimension -1 with factor 1 when the axis is unspread.
	DimX, DimY mapping.Dim
	FX, FY     int
	// Tiles are the GLB tile iteration counts for C, M, P, Q (tiledDims
	// order).
	Tiles [4]int32
}

// spatialKey returns the seed's normalized spatial identity.
func (s Seed) spatialKey() [4]int {
	return [4]int{int(s.DimX), s.FX, int(s.DimY), s.FY}
}

// normKey normalizes a spatialChoice the same way seedFromMapping does: an
// axis with factor 1 carries no dimension (baseMapping ignores it), so all
// such choices collapse onto one key.
func (sp spatialChoice) normKey() [4]int {
	k := [4]int{-1, 1, -1, 1}
	if sp.fx > 1 {
		k[0], k[1] = int(sp.dimX), sp.fx
	}
	if sp.fy > 1 {
		k[2], k[3] = int(sp.dimY), sp.fy
	}
	return k
}

// seedFromMapping extracts the warm-start seed of one winning mapping.
func seedFromMapping(m *mapping.Mapping) Seed {
	sd := Seed{DimX: -1, FX: 1, DimY: -1, FY: 1}
	for _, d := range mapping.Dims {
		if f := m.Factor(mapping.SpatialX, d); f > 1 {
			sd.DimX, sd.FX = d, f
		}
		if f := m.Factor(mapping.SpatialY, d); f > 1 {
			sd.DimY, sd.FY = d, f
		}
	}
	for i, d := range tiledDims {
		sd.Tiles[i] = int32(m.TileDim(mapping.GLB, d))
	}
	return sd
}

// warmKey is the canonical layer-shape signature. Channel counts, filter
// extents, strides and the PE array shape are exact (they change the search
// space structurally); output extents P/Q and the effective bandwidth are
// log2-bucketed (neighbouring values want the same tilings, up to
// snapping); GLB/RF capacities are excluded (capacity only gates
// feasibility, which the seed re-check handles).
type warmKey struct {
	c, m, r, s       int
	p2, q2           int8
	strideH, strideW int
	depthwise        bool
	wordBits         int
	pesX, pesY       int
	bw2              int16
}

func log2Bucket(v int) int8 {
	b := int8(0)
	for v > 1 {
		v >>= 1
		b++
	}
	return b
}

func warmKeyFor(req Request) warmKey {
	l := req.Layer
	bw2 := int16(0)
	if req.EffectiveBytesPerCycle > 0 {
		bw2 = int16(math.Floor(math.Log2(req.EffectiveBytesPerCycle)))
	}
	return warmKey{
		c: l.C, m: l.M, r: l.R, s: l.S,
		p2: log2Bucket(l.P), q2: log2Bucket(l.Q),
		strideH: l.StrideH, strideW: l.StrideW,
		depthwise: l.Depthwise, wordBits: l.WordBits,
		pesX: req.PEsX, pesY: req.PEsY,
		bw2: bw2,
	}
}

const (
	// warmShards bounds lock contention across parallel sweeps.
	warmShards = 16
	// warmShardCap bounds each shard's entry count; eviction is FIFO, which
	// keeps the store deterministic under a serial sweep (no access-order
	// state) and is close enough to LRU for sweeps that revisit shapes in
	// passes.
	warmShardCap = 64
	// warmMaxSeeds caps the seeds stored per key. It matches cacheTopK so a
	// full cached search's distinct winners all seed the next neighbour.
	warmMaxSeeds = cacheTopK
)

type warmShard struct {
	mu      sync.Mutex
	entries map[warmKey][]Seed
	order   []warmKey // FIFO eviction queue
}

var (
	warmStore [warmShards]warmShard

	warmHits   atomic.Int64
	warmMisses atomic.Int64
	warmStores atomic.Int64
	warmEvicts atomic.Int64
)

func (k warmKey) shard() *warmShard {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for _, v := range [...]int{
		k.c, k.m, k.r, k.s, int(k.p2), int(k.q2),
		k.strideH, k.strideW, k.wordBits, k.pesX, k.pesY, int(k.bw2),
	} {
		mix(uint64(v))
	}
	if k.depthwise {
		mix(1)
	}
	return &warmStore[h%warmShards]
}

// warmSeeds returns the stored seeds for the request's canonical shape, or
// nil. The returned slice is immutable: warmPut replaces entries wholesale.
func warmSeeds(req Request) []Seed {
	key := warmKeyFor(req)
	sh := key.shard()
	sh.mu.Lock()
	seeds := sh.entries[key]
	sh.mu.Unlock()
	if seeds == nil {
		warmMisses.Add(1)
		return nil
	}
	warmHits.Add(1)
	return seeds
}

// warmPut records a completed search's winners under the canonical shape
// key, evicting the oldest key when the shard is full.
func warmPut(req Request, out []Candidate) {
	n := len(out)
	if n == 0 {
		return
	}
	if n > warmMaxSeeds {
		n = warmMaxSeeds
	}
	seeds := make([]Seed, n)
	for i := 0; i < n; i++ {
		seeds[i] = seedFromMapping(out[i].Mapping)
	}
	key := warmKeyFor(req)
	sh := key.shard()
	sh.mu.Lock()
	if sh.entries == nil {
		sh.entries = map[warmKey][]Seed{}
	}
	if _, ok := sh.entries[key]; !ok {
		if len(sh.order) >= warmShardCap {
			oldest := sh.order[0]
			sh.order = sh.order[1:]
			delete(sh.entries, oldest)
			warmEvicts.Add(1)
		}
		sh.order = append(sh.order, key)
	}
	sh.entries[key] = seeds
	sh.mu.Unlock()
	warmStores.Add(1)
}

// WarmStats reports warm-start store effectiveness counters.
type WarmStats struct {
	// Hits counts guided searches seeded from the store.
	Hits int64
	// Misses counts guided searches that started cold.
	Misses int64
	// Stores counts completed searches recorded into the store.
	Stores int64
	// Evictions counts keys dropped by the FIFO bound.
	Evictions int64
	// Entries is the current number of stored shape keys.
	Entries int64
}

// WarmStartStats snapshots the warm-start store counters.
func WarmStartStats() WarmStats {
	s := WarmStats{
		Hits:      warmHits.Load(),
		Misses:    warmMisses.Load(),
		Stores:    warmStores.Load(),
		Evictions: warmEvicts.Load(),
	}
	for i := range warmStore {
		sh := &warmStore[i]
		sh.mu.Lock()
		s.Entries += int64(len(sh.entries))
		sh.mu.Unlock()
	}
	return s
}

// ResetWarmStore drops all stored seeds and zeroes the counters (cold
// benchmarks and warm-vs-cold tests).
func ResetWarmStore() {
	for i := range warmStore {
		sh := &warmStore[i]
		sh.mu.Lock()
		sh.entries = nil
		sh.order = nil
		sh.mu.Unlock()
	}
	warmHits.Store(0)
	warmMisses.Store(0)
	warmStores.Store(0)
	warmEvicts.Store(0)
}

// Process-wide guided-search work counters (GuidedSearchStats). The per
// search numbers also flow through obs.MapperSearchEvent; these aggregates
// serve tests and the experiments -cachestats report.
var (
	guidedSearches  atomic.Int64
	guidedEvaluated atomic.Int64
	guidedPruned    atomic.Int64
	guidedSkipped   atomic.Int64
	guidedWarmSeeds atomic.Int64
)

// GuidedStats aggregates guided-search work accounting across the process.
type GuidedStats struct {
	// Searches counts guided searches run.
	Searches int64
	// Evaluated counts tilings fully scored (permutation fold), warm seeds
	// included.
	Evaluated int64
	// Pruned counts capacity-feasible tilings disposed of by the analytical
	// lower bound without scoring.
	Pruned int64
	// Skipped counts tilings inside spatial choices skipped wholesale by
	// the part-level bound.
	Skipped int64
	// WarmSeeds counts warm-start seeds applied.
	WarmSeeds int64
}

// GuidedSearchStats snapshots the guided-search counters.
func GuidedSearchStats() GuidedStats {
	return GuidedStats{
		Searches:  guidedSearches.Load(),
		Evaluated: guidedEvaluated.Load(),
		Pruned:    guidedPruned.Load(),
		Skipped:   guidedSkipped.Load(),
		WarmSeeds: guidedWarmSeeds.Load(),
	}
}

// ResetGuidedStats zeroes the guided-search counters.
func ResetGuidedStats() {
	guidedSearches.Store(0)
	guidedEvaluated.Store(0)
	guidedPruned.Store(0)
	guidedSkipped.Store(0)
	guidedWarmSeeds.Store(0)
}
