package mapper

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"secureloop/internal/arch"
	"secureloop/internal/mapping"
	"secureloop/internal/model"
	"secureloop/internal/obs"
	"secureloop/internal/workload"
)

// guidedRequest decorates a base request with guided-mode options.
func guidedRequest(req Request, eps float64, warm bool) Request {
	req.Opt = Options{Mode: Guided, Epsilon: eps, DisableWarmStart: !warm}
	return req
}

// TestGuidedSearchEquivalence is the oracle guard of the guided search: at
// Epsilon = 0, across the same layer × arch × bandwidth × k matrix as
// TestSearchEquivalence, the guided result must be byte-identical to
// searchReference — cold, and again with whatever the warm-start store has
// accumulated (the Epsilon = 0 result is provably independent of seeding).
func TestGuidedSearchEquivalence(t *testing.T) {
	ResetWarmStore()
	layers := equivalenceLayers()
	for _, spec := range equivalenceSpecs() {
		for _, l := range layers {
			for _, bw := range []float64{float64(spec.DRAM.BytesPerCycle), 1.5} {
				for _, k := range []int{1, 4, 6} {
					req := Request{
						Layer: l,
						PEsX:  spec.PEsX, PEsY: spec.PEsY,
						GLBBits: spec.GlobalBufferBits(), RFBits: spec.RegFileBits(),
						EffectiveBytesPerCycle: bw,
						TopK:                   k,
					}
					name := fmt.Sprintf("%s/pe%dx%d/bw%.1f/k%d", l.Name, spec.PEsX, spec.PEsY, bw, k)
					want := searchReference(req)
					for _, warm := range []bool{false, true} {
						got, err := SearchCtx(context.Background(), guidedRequest(req, 0, warm))
						if err != nil {
							t.Fatalf("%s warm=%v: %v", name, warm, err)
						}
						assertSameCandidates(t, fmt.Sprintf("%s/warm=%v", name, warm), got, want)
					}
				}
			}
		}
	}
}

func assertSameCandidates(t *testing.T, name string, got, want []Candidate) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d candidates, reference has %d", name, len(got), len(want))
		return
	}
	for i := range got {
		if got[i].Cycles != want[i].Cycles || got[i].OffchipBits != want[i].OffchipBits {
			t.Errorf("%s[%d]: (cycles, bits) = (%d, %d), reference (%d, %d)",
				name, i, got[i].Cycles, got[i].OffchipBits, want[i].Cycles, want[i].OffchipBits)
		}
		if signature(got[i].Mapping) != signature(want[i].Mapping) {
			t.Errorf("%s[%d]: signature mismatch:\n  got  %v\n  want %v",
				name, i, got[i].Mapping, want[i].Mapping)
		}
		if gs, ws := got[i].Mapping.String(), want[i].Mapping.String(); gs != ws {
			t.Errorf("%s[%d]: loopnest mismatch:\n  got  %s\n  want %s", name, i, gs, ws)
		}
	}
}

// TestGuidedEpsilonWithinBound verifies the relaxed mode's contract: at
// Epsilon > 0 every returned rank's scheduling cycles stay within
// (1+Epsilon)× of the exhaustive rank's, and the candidate count matches
// (the stop rule only fires once k distinct tilings exist).
func TestGuidedEpsilonWithinBound(t *testing.T) {
	const eps = 0.01
	layers := equivalenceLayers()
	for _, spec := range equivalenceSpecs() {
		for _, l := range layers {
			req := Request{
				Layer: l,
				PEsX:  spec.PEsX, PEsY: spec.PEsY,
				GLBBits: spec.GlobalBufferBits(), RFBits: spec.RegFileBits(),
				EffectiveBytesPerCycle: float64(spec.DRAM.BytesPerCycle),
				TopK:                   6,
			}
			name := fmt.Sprintf("%s/pe%dx%d", l.Name, spec.PEsX, spec.PEsY)
			want := searchReference(req)
			got, err := SearchCtx(context.Background(), guidedRequest(req, eps, false))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(got) != len(want) {
				t.Errorf("%s: %d candidates, reference has %d", name, len(got), len(want))
				continue
			}
			for i := range got {
				if float64(got[i].Cycles) > (1+eps)*float64(want[i].Cycles) {
					t.Errorf("%s[%d]: guided cycles %d exceed (1+ε)×%d",
						name, i, got[i].Cycles, want[i].Cycles)
				}
			}
		}
	}
}

// TestGuidedTablesMatchAnalyze pins the factorized bound arithmetic to the
// mapping package: for every lattice point of every spatial choice, the
// table-derived occupancy must equal GLBBitsUsed and the table-derived
// lower bound must equal the one scoreTiling computes from Mapping.Analyze,
// bit for bit. This is what makes the Epsilon = 0 byte-identity argument an
// arithmetic fact rather than an approximation.
func TestGuidedTablesMatchAnalyze(t *testing.T) {
	base := arch.Base()
	small := base.WithPEs(8, 8).WithGlobalBuffer(16 * 1024)
	layers := []*workload.Layer{
		workload.AlexNet().Layer(1),
		workload.MobileNetV2().Layer(1), // depthwise
		{Name: "prime", C: 13, M: 17, R: 3, S: 3, P: 29, Q: 29,
			StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, N: 1, WordBits: 16},
	}
	for _, spec := range []*arch.Spec{&base, &small} {
		for _, l := range layers {
			req := Request{
				Layer: l, PEsX: spec.PEsX, PEsY: spec.PEsY,
				GLBBits: spec.GlobalBufferBits(), RFBits: spec.RegFileBits(),
				EffectiveBytesPerCycle: float64(spec.DRAM.BytesPerCycle),
				TopK:                   6,
			}
			minTraffic := int64(float64(l.TotalVolume()*int64(l.WordBits)) / 8 / req.EffectiveBytesPerCycle)
			wb := int64(l.WordBits)
			for _, sp := range spatialChoices(l, req.PEsX, req.PEsY) {
				g := newGuidedPart(req, sp, minTraffic)
				if g == nil {
					continue
				}
				for ic := range g.ax[0].cands {
					for im := range g.ax[1].cands {
						for ip := range g.ax[2].cands {
							for iq := range g.ax[3].cands {
								setGLBTile(g.m, l, mapping.DimC, g.ax[0].cands[ic])
								setGLBTile(g.m, l, mapping.DimM, g.ax[1].cands[im])
								setGLBTile(g.m, l, mapping.DimP, g.ax[2].cands[ip])
								setGLBTile(g.m, l, mapping.DimQ, g.ax[3].cands[iq])
								wE, iE, oE, occ := g.pointOcc(wb, ic, im, ip, iq)
								if want := g.m.GLBBitsUsed(l); occ != want {
									t.Fatalf("%s %v point(%d,%d,%d,%d): occ %d, GLBBitsUsed %d",
										l.Name, sp, ic, im, ip, iq, occ, want)
								}
								if occ > req.GLBBits {
									continue
								}
								lb := g.pointLB(wb, req.EffectiveBytesPerCycle, minTraffic, wE, iE, oE, ic, im, ip, iq)
								an := g.m.Analyze(l)
								want := model.SchedulingCyclesFor(an.Compute, an.MinOffchipElems*wb, req.EffectiveBytesPerCycle)
								if want < minTraffic {
									want = minTraffic
								}
								if lb != want {
									t.Fatalf("%s %v point(%d,%d,%d,%d): lb %d, Analyze-based %d",
										l.Name, sp, ic, im, ip, iq, lb, want)
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestGuidedCancelledBeforeStart: a pre-cancelled guided search must return
// the wrapped context error without touching any lattice — zero tilings
// evaluated, pruned or skipped.
func TestGuidedCancelledBeforeStart(t *testing.T) {
	ResetGuidedStats()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	l := workload.AlexNet().Layer(0)
	out, err := SearchCtx(ctx, guidedRequest(baseRequest(l), 0, false))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), l.Name) {
		t.Errorf("error does not name the layer: %v", err)
	}
	if out != nil {
		t.Errorf("cancelled search returned %d candidates", len(out))
	}
	if s := GuidedSearchStats(); s.Evaluated != 0 || s.Pruned != 0 || s.Skipped != 0 {
		t.Errorf("pre-cancelled search did work: %+v", s)
	}
}

// errAfterCtx is a context whose Err() starts failing at the n-th poll,
// giving tests deterministic control over which cancellation checkpoint
// fires.
type errAfterCtx struct {
	context.Context
	polls, fail int
}

func (c *errAfterCtx) Err() error {
	c.polls++
	if c.polls >= c.fail {
		return context.Canceled
	}
	return nil
}

// TestGuidedCancelMidRunBounded: between any two consecutive cancellation
// polls the guided search evaluates at most evalChunk tilings, so the work
// done after a mid-run cancel is bounded by the chunk size — with the
// cancellation firing at poll n, at most (n-1) inter-poll windows ran.
func TestGuidedCancelMidRunBounded(t *testing.T) {
	l := workload.AlexNet().Layer(2)
	req := guidedRequest(baseRequest(l), 0, false)
	for _, fail := range []int{1, 2, 5, 20, 100} {
		ResetGuidedStats()
		ctx := &errAfterCtx{Context: context.Background(), fail: fail}
		_, err := SearchCtx(ctx, req)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("fail=%d: err = %v, want context.Canceled", fail, err)
		}
		s := GuidedSearchStats()
		if max := int64(fail) * evalChunk; s.Evaluated > max {
			t.Errorf("fail=%d: %d tilings evaluated after cancellation, chunk bound allows %d",
				fail, s.Evaluated, max)
		}
	}
}

// eventRecorder collects MapperSearch events (single-goroutine tests).
type eventRecorder struct {
	obs.Nop
	events []obs.MapperSearchEvent
}

func (r *eventRecorder) MapperSearch(e obs.MapperSearchEvent) {
	r.events = append(r.events, e)
}

// TestGuidedObserverEvent: the per-search obs event must carry the same
// accounting the process-wide counters accumulate.

func TestGuidedObserverEvent(t *testing.T) {
	ResetGuidedStats()
	l := workload.AlexNet().Layer(1)
	rec := &eventRecorder{}
	req := guidedRequest(baseRequest(l), 0, false)
	req.Observe = rec
	if _, err := SearchCtx(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if len(rec.events) != 1 {
		t.Fatalf("observer saw %d MapperSearch events, want 1", len(rec.events))
	}
	e := rec.events[0]
	s := GuidedSearchStats()
	if e.Layer != l.Name {
		t.Errorf("event layer %q, want %q", e.Layer, l.Name)
	}
	if e.Evaluated != s.Evaluated || e.Pruned != s.Pruned || e.Skipped != s.Skipped {
		t.Errorf("event %+v disagrees with counters %+v", e, s)
	}
	if e.Evaluated == 0 {
		t.Error("guided search evaluated no tilings")
	}
	if e.Pruned == 0 && e.Skipped == 0 {
		t.Error("guided search pruned nothing — bound-driven search not engaged")
	}
}
