package mapper

import (
	"testing"

	"secureloop/internal/arch"
	"secureloop/internal/model"
	"secureloop/internal/workload"
)

func baseRequest(l *workload.Layer) Request {
	spec := arch.Base()
	return Request{
		Layer: l,
		PEsX:  spec.PEsX, PEsY: spec.PEsY,
		GLBBits: spec.GlobalBufferBits(), RFBits: spec.RegFileBits(),
		EffectiveBytesPerCycle: float64(spec.DRAM.BytesPerCycle),
		TopK:                   6,
	}
}

func TestSearchReturnsValidMappings(t *testing.T) {
	for _, net := range workload.Networks() {
		for i := range net.Layers {
			l := &net.Layers[i]
			req := baseRequest(l)
			cands := SearchCached(req)
			if len(cands) == 0 {
				t.Fatalf("%s/%s: no candidates", net.Name, l.Name)
			}
			for _, c := range cands {
				if err := c.Mapping.Validate(l, req.PEsX, req.PEsY); err != nil {
					t.Fatalf("%s/%s: invalid mapping: %v", net.Name, l.Name, err)
				}
				if c.Mapping.GLBBitsUsed(l) > req.GLBBits {
					t.Fatalf("%s/%s: GLB overflow", net.Name, l.Name)
				}
				if c.Mapping.RFBitsUsed(l) > req.RFBits {
					t.Fatalf("%s/%s: RF overflow", net.Name, l.Name)
				}
			}
		}
	}
}

func TestSearchSortedAndDiverse(t *testing.T) {
	l := workload.AlexNet().Layer(2)
	cands := Search(baseRequest(l))
	if len(cands) < 2 {
		t.Fatalf("only %d candidates", len(cands))
	}
	seen := map[sigKey]bool{}
	for i, c := range cands {
		if i > 0 && cands[i-1].Cycles > c.Cycles {
			t.Error("candidates not sorted by cycles")
		}
		sig := signature(c.Mapping)
		if seen[sig] {
			t.Error("duplicate tiling signature in top-k")
		}
		seen[sig] = true
	}
}

func TestSearchCostMatchesModel(t *testing.T) {
	l := workload.AlexNet().Layer(1)
	req := baseRequest(l)
	for _, c := range Search(req) {
		want := model.SchedulingCycles(l, c.Mapping, req.EffectiveBytesPerCycle)
		if c.Cycles != want {
			t.Fatalf("reported %d, model says %d", c.Cycles, want)
		}
	}
}

func TestLowerBandwidthNeverImprovesBest(t *testing.T) {
	l := workload.ResNet18().Layer(5)
	fast := baseRequest(l)
	slow := fast
	slow.EffectiveBytesPerCycle = 1.5
	bFast := Search(fast)[0].Cycles
	bSlow := Search(slow)[0].Cycles
	if bSlow < bFast {
		t.Errorf("slower bandwidth found faster schedule: %d < %d", bSlow, bFast)
	}
}

func TestCryptoAwareSchedulingHelps(t *testing.T) {
	// The Section 5.1 point: supplying the effective bandwidth to the
	// mapper matters. A schedule picked for full bandwidth, re-evaluated
	// under the crypto-limited bandwidth, must not beat the schedule picked
	// *for* that bandwidth.
	l := workload.MobileNetV2().Layer(10)
	eff := 3 * 16.0 / 11 // parallel engine per datatype
	aware := Search(func() Request { r := baseRequest(l); r.EffectiveBytesPerCycle = eff; return r }())
	naive := Search(baseRequest(l))
	naiveUnderCrypto := model.SchedulingCycles(l, naive[0].Mapping, eff)
	if aware[0].Cycles > naiveUnderCrypto {
		t.Errorf("crypto-aware schedule (%d) worse than naive schedule under crypto (%d)",
			aware[0].Cycles, naiveUnderCrypto)
	}
}

func TestTinyLayerFallback(t *testing.T) {
	// A 1x1x1 layer exercises the degenerate paths.
	l := &workload.Layer{Name: "fc", C: 512, M: 1000, R: 1, S: 1, P: 1, Q: 1,
		StrideH: 1, StrideW: 1, N: 1, WordBits: 16}
	cands := Search(baseRequest(l))
	if len(cands) == 0 {
		t.Fatal("no candidates for FC layer")
	}
	if err := cands[0].Mapping.Validate(l, 14, 12); err != nil {
		t.Fatal(err)
	}
}

func TestSearchCachedIdempotent(t *testing.T) {
	l := workload.AlexNet().Layer(0)
	req := baseRequest(l)
	a := SearchCached(req)
	b := SearchCached(req)
	if len(a) != len(b) {
		t.Fatal("cache changed result length")
	}
	for i := range a {
		if a[i].Cycles != b[i].Cycles || signature(a[i].Mapping) != signature(b[i].Mapping) {
			t.Fatal("cache changed results")
		}
	}
}

func TestTileCandidates(t *testing.T) {
	for _, n := range []int{1, 2, 13, 27, 55, 112, 1280} {
		cands := tileCandidates(n)
		if cands[0] != 1 || cands[len(cands)-1] != n {
			t.Errorf("tileCandidates(%d) = %v: must span [1, n]", n, cands)
		}
		if len(cands) > 13 {
			t.Errorf("tileCandidates(%d) too large: %d", n, len(cands))
		}
		for i := 1; i < len(cands); i++ {
			if cands[i] <= cands[i-1] {
				t.Errorf("tileCandidates(%d) not strictly increasing: %v", n, cands)
			}
		}
	}
}

func TestSpatialFactors(t *testing.T) {
	fs := spatialFactors(55, 14)
	// Largest usable (14) plus best divisor (11).
	if len(fs) != 2 || fs[0] != 14 || fs[1] != 11 {
		t.Errorf("spatialFactors(55,14) = %v", fs)
	}
	if fs := spatialFactors(12, 14); len(fs) != 1 || fs[0] != 12 {
		t.Errorf("spatialFactors(12,14) = %v", fs)
	}
	if fs := spatialFactors(1, 14); fs[0] != 1 {
		t.Errorf("spatialFactors(1,14) = %v", fs)
	}
}

func BenchmarkSearchConvLayer(b *testing.B) {
	l := workload.AlexNet().Layer(2)
	req := baseRequest(l)
	for i := 0; i < b.N; i++ {
		Search(req)
	}
}

func TestRandomSearchValidAndDeterministic(t *testing.T) {
	l := workload.AlexNet().Layer(1)
	req := baseRequest(l)
	a := RandomSearch(req, 500, 7)
	b := RandomSearch(req, 500, 7)
	if len(a) == 0 {
		t.Fatal("no candidates")
	}
	if len(a) != len(b) || a[0].Cycles != b[0].Cycles {
		t.Error("random search not deterministic per seed")
	}
	for _, c := range a {
		if err := c.Mapping.Validate(l, req.PEsX, req.PEsY); err != nil {
			t.Fatalf("invalid mapping: %v", err)
		}
		if c.Mapping.GLBBitsUsed(l) > req.GLBBits {
			t.Fatal("GLB overflow")
		}
	}
}

func TestRandomNeverBeatsExhaustive(t *testing.T) {
	// The exhaustive search evaluates a superset of structured points; the
	// random search samples the same space, so its best can tie but not
	// win on latency.
	for _, li := range []int{0, 2, 4} {
		l := workload.AlexNet().Layer(li)
		req := baseRequest(l)
		gap := RandomQualityGap(req, 300, 11)
		if gap < 1.0 {
			t.Errorf("layer %d: random beat exhaustive (gap %g)", li, gap)
		}
	}
}

func BenchmarkRandomVsExhaustiveMapper(b *testing.B) {
	l := workload.MobileNetV2().Layer(10)
	req := baseRequest(l)
	for i := 0; i < b.N; i++ {
		gap := RandomQualityGap(req, 300, int64(i+1))
		b.ReportMetric(gap, "quality_gap")
	}
}
