package mapper

import (
	"sync"
	"testing"
)

// TestTileCacheHitsAndIdentity: repeated lookups must hit and return the
// same canonical slice (first-writer-wins), and the content must match a
// fresh computation.
func TestTileCacheHitsAndIdentity(t *testing.T) {
	resetTileCache()
	defer resetTileCache()
	a := tileCandidates(96)
	b := tileCandidates(96)
	if &a[0] != &b[0] {
		t.Error("repeated lookup returned a different slice")
	}
	want := computeTileCandidates(96)
	if len(a) != len(want) {
		t.Fatalf("cached candidates %v, computed %v", a, want)
	}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("cached candidates %v, computed %v", a, want)
		}
	}
	s := TileCacheStats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Errorf("stats after one miss + one hit: %+v", s)
	}
}

// TestTileCacheBounded: the cache must stay within tileShards×tileShardCap
// entries however many distinct bounds a sweep touches, with the overflow
// accounted as evictions.
func TestTileCacheBounded(t *testing.T) {
	resetTileCache()
	defer resetTileCache()
	const lookups = 4000
	for b := 1; b <= lookups; b++ {
		if got := tileCandidates(b); len(got) == 0 {
			t.Fatalf("no candidates for bound %d", b)
		}
	}
	s := TileCacheStats()
	if s.Misses != lookups {
		t.Errorf("Misses = %d, want %d", s.Misses, lookups)
	}
	if max := int64(tileShards * tileShardCap); s.Entries > max {
		t.Errorf("Entries = %d exceeds bound %d", s.Entries, max)
	}
	if s.Entries+s.Evictions != lookups {
		t.Errorf("Entries+Evictions = %d, want %d", s.Entries+s.Evictions, lookups)
	}
	// Evicted bounds recompute correctly (bound 1 was evicted long ago —
	// sequential fill is FIFO per shard).
	if got := tileCandidates(1); len(got) != 1 || got[0] != 1 {
		t.Errorf("recomputed candidates for bound 1: %v", got)
	}
}

// TestTileCacheConcurrent hammers one bound from many goroutines under
// -race; every caller must see the identical canonical slice.
func TestTileCacheConcurrent(t *testing.T) {
	resetTileCache()
	defer resetTileCache()
	canonical := tileCandidates(27)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if got := tileCandidates(27); &got[0] != &canonical[0] {
					t.Error("concurrent lookup returned a non-canonical slice")
					return
				}
			}
		}()
	}
	wg.Wait()
}
