package mapper

import (
	"sort"
	"testing"

	"secureloop/internal/mapping"
	"secureloop/internal/workload"
)

// The invariants below gate the optimised search: the monotone capacity
// breaks assume ascending tile-candidate lists, the spatial fan-out assumes
// spatialChoices always yields a usable (possibly degenerate) choice, and
// the tiling-level pruning assumes topK.kthCycles / prune never lose a
// candidate that belongs in the final top-k regardless of offer order.

func TestSpatialFactorsEdgeCases(t *testing.T) {
	cases := []struct {
		bound, axis int
		want        []int
	}{
		{1, 14, []int{1}},    // bound 1: nothing to spread
		{55, 1, []int{1}},    // axis 1: nowhere to spread
		{1, 1, []int{1}},     //
		{14, 14, []int{14}},  // bound == axis: exact fit, single factor
		{12, 14, []int{12}},  // bound < axis: bound itself divides evenly
		{13, 8, []int{8, 1}}, // prime bound > axis: full axis + trivial divisor
		{27, 14, []int{14, 9}},
		{2, 14, []int{2}},
	}
	for _, c := range cases {
		got := spatialFactors(c.bound, c.axis)
		if len(got) != len(c.want) {
			t.Errorf("spatialFactors(%d,%d) = %v, want %v", c.bound, c.axis, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("spatialFactors(%d,%d) = %v, want %v", c.bound, c.axis, got, c.want)
				break
			}
		}
		for _, f := range got {
			if f < 1 || f > c.axis {
				t.Errorf("spatialFactors(%d,%d): factor %d outside [1,%d]", c.bound, c.axis, f, c.axis)
			}
		}
	}
}

func TestSpatialChoicesEdgeCases(t *testing.T) {
	check := func(name string, l *workload.Layer, pesX, pesY int) []spatialChoice {
		t.Helper()
		sps := spatialChoices(l, pesX, pesY)
		if len(sps) == 0 {
			t.Fatalf("%s: no spatial choices", name)
		}
		seen := map[spatialChoice]bool{}
		for _, sp := range sps {
			if seen[sp] {
				t.Errorf("%s: duplicate choice %+v", name, sp)
			}
			seen[sp] = true
			if sp.fx < 1 || sp.fx > pesX || sp.fy < 1 || sp.fy > pesY {
				t.Errorf("%s: choice %+v exceeds %dx%d array", name, sp, pesX, pesY)
			}
			if sp.fx > mapping.Bound(l, sp.dimX) || sp.fy > mapping.Bound(l, sp.dimY) {
				t.Errorf("%s: choice %+v exceeds layer bounds", name, sp)
			}
		}
		// The degenerate no-spreading choice is always present (the
		// fallback for tiny layers).
		last := sps[len(sps)-1]
		if last.fx != 1 || last.fy != 1 {
			t.Errorf("%s: degenerate choice missing, got %+v", name, last)
		}
		return sps
	}

	// All bounds 1: only the degenerate choice survives.
	one := &workload.Layer{Name: "one", C: 1, M: 1, R: 1, S: 1, P: 1, Q: 1,
		StrideH: 1, StrideW: 1, N: 1, WordBits: 16}
	if sps := check("all-1", one, 14, 12); len(sps) != 1 {
		t.Errorf("all-1 layer: %d choices, want only the degenerate one", len(sps))
	}

	// Bound equal to the axis on both axes: exact-fit factors must appear.
	exact := &workload.Layer{Name: "exact", C: 3, M: 12, R: 3, S: 3, P: 14, Q: 14,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, N: 1, WordBits: 16}
	sps := check("exact", exact, 14, 12)
	foundExact := false
	for _, sp := range sps {
		if sp.dimX == mapping.DimQ && sp.fx == 14 && sp.dimY == mapping.DimM && sp.fy == 12 {
			foundExact = true
		}
	}
	if !foundExact {
		t.Error("exact-fit layer: Q=14 x M=12 spreading not enumerated")
	}

	// Prime bounds larger than the array: both the full-axis factor and the
	// trivial divisor appear; nothing exceeds the array.
	prime := &workload.Layer{Name: "prime", C: 13, M: 17, R: 3, S: 3, P: 31, Q: 31,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, N: 1, WordBits: 16}
	check("prime", prime, 14, 12)

	// 1-wide PE axis: no X spreading is ever proposed beyond factor 1.
	for _, sp := range check("axis-1", exact, 1, 12) {
		if sp.fx != 1 {
			t.Errorf("pesX=1 but choice %+v spreads X", sp)
		}
	}
}

// TestTopKAdversarialOfferOrders drives offer/kthCycles/prune with the same
// candidate multiset in antagonistic orders (ascending, descending, and an
// interleave with repeated signatures designed to trip over-eager pruning)
// and checks every order converges to the brute-force top-k.
func TestTopKAdversarialOfferOrders(t *testing.T) {
	mk := func(qTile int, cycles int64) Candidate {
		m := mapping.New()
		m.SetFactor(mapping.GLB, mapping.DimQ, qTile)
		return Candidate{Mapping: m, Cycles: cycles, OffchipBits: cycles * 3}
	}
	// 40 distinct signatures; per-sig best is cycles = 100 + 7*q.
	type off struct {
		q      int
		cycles int64
	}
	var offers []off
	for q := 1; q <= 40; q++ {
		best := int64(100 + 7*q)
		offers = append(offers, off{q, best + 50}, off{q, best}, off{q, best + 10})
	}
	wantBest := func(k int) []int64 {
		var per []int64
		for q := 1; q <= 40; q++ {
			per = append(per, int64(100+7*q))
		}
		sort.Slice(per, func(i, j int) bool { return per[i] < per[j] })
		return per[:k]
	}

	orders := map[string]func([]off) []off{
		"given": func(o []off) []off { return o },
		"descending": func(o []off) []off {
			s := append([]off(nil), o...)
			sort.Slice(s, func(i, j int) bool { return s[i].cycles > s[j].cycles })
			return s
		},
		"ascending": func(o []off) []off {
			s := append([]off(nil), o...)
			sort.Slice(s, func(i, j int) bool { return s[i].cycles < s[j].cycles })
			return s
		},
		// All worst offers first, then the bests, then the mediums: the
		// map fills with bad entries and must prune/replace them, and the
		// good offers must still be readmitted (a strictly better offer
		// always passes the kth gate).
		"worst-first": func(o []off) []off {
			s := make([]off, 0, len(o))
			for pass := 0; pass < 3; pass++ {
				for i := pass; i < len(o); i += 3 {
					s = append(s, o[i])
				}
			}
			return s
		},
	}
	for name, order := range orders {
		for _, k := range []int{1, 3, 5} {
			tk := newTopK(k)
			for _, o := range order(offers) {
				tk.offer(mk(o.q, o.cycles))
			}
			if len(tk.best) > 4*k {
				t.Errorf("%s/k=%d: map grew to %d entries", name, k, len(tk.best))
			}
			got := tk.sorted()
			want := wantBest(k)
			if len(got) != k {
				t.Fatalf("%s/k=%d: %d candidates", name, k, len(got))
			}
			for i := range got {
				if got[i].Cycles != want[i] {
					t.Errorf("%s/k=%d: rank %d cycles %d, want %d", name, k, i, got[i].Cycles, want[i])
				}
			}
		}
	}
}

// TestTopKKthCyclesAfterPrune: pruning must not lower the reported k-th
// threshold below the true k-th distinct-signature best (which would
// over-prune), nor lose an improvement offered to a pruned signature.
func TestTopKKthCyclesAfterPrune(t *testing.T) {
	mk := func(qTile int, cycles int64) Candidate {
		m := mapping.New()
		m.SetFactor(mapping.GLB, mapping.DimQ, qTile)
		return Candidate{Mapping: m, Cycles: cycles}
	}
	tk := newTopK(2)
	// Fill well past the prune threshold (4k = 8 signatures) with mediocre
	// distinct signatures, each better than the last so every offer is
	// admitted and prune actually fires.
	for q := 1; q <= 20; q++ {
		tk.offer(mk(q, int64(1021-q)))
	}
	kth, full := tk.kthCycles()
	if !full || kth != 1002 {
		t.Fatalf("kth = %d (full=%v), want 1002", kth, full)
	}
	// A signature that was pruned away returns with a strictly better
	// offer: it must displace the incumbents.
	tk.offer(mk(15, 500))
	tk.offer(mk(16, 600))
	out := tk.sorted()
	if len(out) != 2 || out[0].Cycles != 500 || out[1].Cycles != 600 {
		t.Fatalf("after readmission top-2 = %+v", out)
	}
	if kth, _ := tk.kthCycles(); kth != 600 {
		t.Errorf("kth after readmission = %d, want 600", kth)
	}
}
