// The exported per-layer search floor: a sound lower bound on the cost of
// any candidate SearchCtx can return, computed from the guided search's
// per-dimension bound tables without walking a single tiling lattice point.
// The DSE coordinator's dominance pruning (internal/dse/bounds.go) is built
// on it: a design point whose summed layer floors already exceed the Pareto
// front can be skipped without running the full scheduler.

package mapper

// SearchLowerBound returns a sound lower bound on the scheduling cycles of
// the best candidate SearchCtx can return for req, on either search path
// (exhaustive or guided) and at any TopK.
//
// The bound is the minimum over all RF-feasible spatial choices of the
// choice's optimistic lattice bound (guidedPart.minLB: the product of
// per-axis minimum temporal contributions, clamped to the all-data-crosses-
// once traffic floor), additionally min'd with the degenerate fallback
// schedule's exact cost — the candidate the search returns when no tiling
// is capacity-feasible. Every returned candidate is either a lattice point
// of some feasible spatial choice (its cost is >= that choice's minLB,
// which pass A of the guided search relies on) or the fallback itself, so
// the minimum over both sources can never exceed the best candidate.
//
// The cost here is step-1 scheduling cycles (model.SchedulingCycles under
// the request's effective bandwidth); the scheduled layer's final
// Stats.Cycles is never smaller (DESIGN.md §14 gives the argument), so the
// bound is also sound against whole-network totals.
//
// Like the search itself, the bound arithmetic uses the mapping package's
// checked multiplies and may panic on pathological layer shapes; callers on
// untrusted inputs should guard with obs.Guard and treat a panic as "no
// usable bound".
func SearchLowerBound(req Request) int64 {
	l := req.Layer
	minTraffic := int64(float64(l.TotalVolume()*int64(l.WordBits)) / 8 / req.EffectiveBytesPerCycle)
	lb := fallbackCandidates(req)[0].Cycles
	for _, sp := range spatialChoices(l, req.PEsX, req.PEsY) {
		g := newGuidedPart(req, sp, minTraffic)
		if g == nil {
			continue
		}
		if g.minLB < lb {
			lb = g.minLB
		}
	}
	// Every source above already respects the traffic floor; the clamp
	// restates the invariant so the floor survives future refactors.
	if lb < minTraffic {
		lb = minTraffic
	}
	return lb
}
