package mapper

import (
	"fmt"
	"testing"

	"secureloop/internal/arch"
	"secureloop/internal/mapping"
	"secureloop/internal/workload"
)

// TestSearchEquivalence is the correctness guard of the optimised inner
// loop: across a matrix of layer shapes, architecture variants, effective
// bandwidths and k values, Search (reusable mapping, per-tiling analysis,
// monotone capacity breaks, tightened lower bound, lazy cloning) must return
// a top-k byte-identical to searchReference (clone per tiling, full model
// evaluation per permutation, skip-only capacity checks): same length, and
// per rank the same tiling signature, cycles, off-chip bits and rendered
// loopnest.
// equivalenceSpecs and equivalenceLayers build the spec × layer matrix the
// search-equivalence tests (exhaustive-vs-reference here, guided-vs-oracle
// in guided_test.go) share.
func equivalenceSpecs() []*arch.Spec {
	base := arch.Base()
	small := base.WithPEs(8, 8).WithGlobalBuffer(16 * 1024)
	big := base.WithPEs(28, 24).WithGlobalBuffer(256 * 1024)
	return []*arch.Spec{&base, &small, &big}
}

func equivalenceLayers() []*workload.Layer {
	var layers []*workload.Layer
	an := workload.AlexNet()
	for i := 0; i < an.NumLayers(); i++ {
		layers = append(layers, an.Layer(i))
	}
	rn := workload.ResNet18()
	for _, i := range []int{0, 4, 9, rn.NumLayers() - 1} {
		layers = append(layers, rn.Layer(i))
	}
	mn := workload.MobileNetV2()
	for _, i := range []int{0, 1, 5, 10, 20} { // includes depthwise layers
		layers = append(layers, mn.Layer(i))
	}
	// Degenerate shapes: FC-style 1x1 spatial, single-channel, prime bounds.
	layers = append(layers,
		&workload.Layer{Name: "fc", C: 512, M: 1000, R: 1, S: 1, P: 1, Q: 1,
			StrideH: 1, StrideW: 1, N: 1, WordBits: 16},
		&workload.Layer{Name: "prime", C: 13, M: 17, R: 3, S: 3, P: 29, Q: 29,
			StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, N: 1, WordBits: 16},
		&workload.Layer{Name: "tiny", C: 1, M: 1, R: 1, S: 1, P: 2, Q: 2,
			StrideH: 1, StrideW: 1, N: 1, WordBits: 8},
	)
	return layers
}

func TestSearchEquivalence(t *testing.T) {
	layers := equivalenceLayers()
	for _, spec := range equivalenceSpecs() {
		for _, l := range layers {
			for _, bw := range []float64{float64(spec.DRAM.BytesPerCycle), 1.5} {
				for _, k := range []int{1, 4, 6} {
					req := Request{
						Layer: l,
						PEsX:  spec.PEsX, PEsY: spec.PEsY,
						GLBBits: spec.GlobalBufferBits(), RFBits: spec.RegFileBits(),
						EffectiveBytesPerCycle: bw,
						TopK:                   k,
					}
					name := fmt.Sprintf("%s/pe%dx%d/bw%.1f/k%d", l.Name, spec.PEsX, spec.PEsY, bw, k)
					got := Search(req)
					want := searchReference(req)
					if len(got) != len(want) {
						t.Errorf("%s: %d candidates, reference has %d", name, len(got), len(want))
						continue
					}
					for i := range got {
						if got[i].Cycles != want[i].Cycles || got[i].OffchipBits != want[i].OffchipBits {
							t.Errorf("%s[%d]: (cycles, bits) = (%d, %d), reference (%d, %d)",
								name, i, got[i].Cycles, got[i].OffchipBits, want[i].Cycles, want[i].OffchipBits)
						}
						if signature(got[i].Mapping) != signature(want[i].Mapping) {
							t.Errorf("%s[%d]: signature mismatch:\n  got  %v\n  want %v",
								name, i, got[i].Mapping, want[i].Mapping)
						}
						if gs, ws := got[i].Mapping.String(), want[i].Mapping.String(); gs != ws {
							t.Errorf("%s[%d]: loopnest mismatch:\n  got  %s\n  want %s", name, i, gs, ws)
						}
					}
				}
			}
		}
	}
}

// TestAnalysisMatchesOffchip pins the tiling/permutation cost split at the
// mapping layer: for every candidate the search produces, the analysis path
// must reproduce Offchip().TotalElems() and TemporalIterations exactly under
// every permutation heuristic.
func TestAnalysisMatchesOffchip(t *testing.T) {
	spec := arch.Base()
	for _, l := range []*workload.Layer{
		workload.AlexNet().Layer(1),
		workload.MobileNetV2().Layer(1), // depthwise
	} {
		req := Request{
			Layer: l, PEsX: spec.PEsX, PEsY: spec.PEsY,
			GLBBits: spec.GlobalBufferBits(), RFBits: spec.RegFileBits(),
			EffectiveBytesPerCycle: float64(spec.DRAM.BytesPerCycle),
			TopK:                   4,
		}
		for _, c := range Search(req) {
			an := c.Mapping.Analyze(l)
			if got, want := an.Compute, c.Mapping.TemporalIterations(l); got != want {
				t.Errorf("%s: analysis compute %d, mapping says %d", l.Name, got, want)
			}
			for _, perm := range permHeuristics {
				m := c.Mapping.Clone()
				m.PermDRAM = perm
				got := an.OffchipElems(perm)
				want := m.Offchip(l).TotalElems()
				if got != want {
					t.Errorf("%s perm %v: analysis %d elems, Offchip %d", l.Name, perm, got, want)
				}
				if got < an.MinOffchipElems {
					t.Errorf("%s perm %v: traffic %d below claimed lower bound %d",
						l.Name, perm, got, an.MinOffchipElems)
				}
			}
		}
	}
}

// TestSignatureDeterminesTiling guards the dedup assumption: equal
// signatures imply equal GLB tile extents and spatial factors.
func TestSignatureDeterminesTiling(t *testing.T) {
	l := workload.AlexNet().Layer(2)
	spec := arch.Base()
	req := Request{
		Layer: l, PEsX: spec.PEsX, PEsY: spec.PEsY,
		GLBBits: spec.GlobalBufferBits(), RFBits: spec.RegFileBits(),
		EffectiveBytesPerCycle: float64(spec.DRAM.BytesPerCycle),
		TopK:                   6,
	}
	for _, c := range Search(req) {
		sig := signature(c.Mapping)
		for i, d := range mapping.Dims {
			tile := int(sig[4*i]) | int(sig[4*i+1])<<8
			if got := c.Mapping.TileDim(mapping.GLB, d); got&0xffff != tile {
				t.Errorf("signature tile for %v = %d, mapping has %d", d, tile, got)
			}
		}
	}
}
