package mapper

import (
	"fmt"

	"secureloop/internal/mapping"
	"secureloop/internal/store"
	"secureloop/internal/workload"
)

// The persistent tier: cached searches additionally read through to, and
// write behind into, a content-addressed disk store (Request.Store). The
// key is the canonical encoding of exactly the fields that form the
// in-memory cacheKey — layer shape (name excluded), array geometry, buffer
// capacities, effective bandwidth, the stored k and the search options —
// so a store hit is admissible wherever an in-memory hit is, across
// processes and restarts.

// persistPrefix namespaces mapper records within the shared store.
const persistPrefix = "mapper.search"

// storekey:exclude workload.Layer.Name results are shape-keyed; the layer name is a label

// persistSearchKey canonically encodes the cached-search identity.
func persistSearchKey(k cacheKey) store.Key {
	e := store.NewEnc().String(persistPrefix)
	EncodeLayerShape(e, k.layer)
	e.Int(int64(k.pesX)).Int(int64(k.pesY)).
		Int(k.glb).Int(k.rf).Float(k.effBW).Int(int64(k.topK)).
		Int(int64(k.opt.Mode)).Float(k.opt.Epsilon).Bool(k.opt.DisableWarmStart)
	return e.Key()
}

// EncodeLayerShape encodes every layer field a search result depends on,
// in declaration order. The name is excluded: like the in-memory cache,
// the persistent tier is shape-keyed. Shared with core's network-level
// keys so the tiers agree on what "the same layer" means.
func EncodeLayerShape(e *store.Enc, l workload.Layer) {
	e.Int(int64(l.C)).Int(int64(l.M)).Int(int64(l.R)).Int(int64(l.S)).
		Int(int64(l.P)).Int(int64(l.Q)).
		Int(int64(l.StrideH)).Int(int64(l.StrideW)).
		Int(int64(l.PadH)).Int(int64(l.PadW)).Int(int64(l.N)).
		Bool(l.Depthwise).Int(int64(l.WordBits))
}

// EncodeMapping encodes a complete schedule: every per-level tiling factor
// in canonical (level, dimension) order, then both loop permutations.
func EncodeMapping(e *store.Enc, m *mapping.Mapping) {
	for lv := mapping.Level(0); lv < mapping.NumLevels; lv++ {
		for _, d := range mapping.Dims {
			e.Int(int64(m.Factor(lv, d)))
		}
	}
	encPerm(e, m.PermDRAM)
	encPerm(e, m.PermGLB)
}

// DecodeMapping is the inverse of EncodeMapping; structural errors fail
// the decode (the caller recomputes).
func DecodeMapping(d *store.Dec) (*mapping.Mapping, error) {
	m := mapping.New()
	for lv := mapping.Level(0); lv < mapping.NumLevels; lv++ {
		for _, dim := range mapping.Dims {
			f, err := d.Int()
			if err != nil {
				return nil, err
			}
			if f < 1 || f > 1<<30 {
				return nil, fmt.Errorf("mapper: stored factor %d out of range", f)
			}
			m.SetFactor(lv, dim, int(f))
		}
	}
	var err error
	if m.PermDRAM, err = decPerm(d); err != nil {
		return nil, err
	}
	if m.PermGLB, err = decPerm(d); err != nil {
		return nil, err
	}
	return m, nil
}

// encodeCandidates serialises a top-k result: per candidate the two score
// components plus the complete mapping.
func encodeCandidates(cands []Candidate) []byte {
	e := store.NewEnc().Int(int64(len(cands)))
	for _, c := range cands {
		e.Int(c.Cycles).Int(c.OffchipBits)
		EncodeMapping(e, c.Mapping)
	}
	return e.Encoding()
}

func encPerm(e *store.Enc, perm []mapping.Dim) {
	e.Int(int64(len(perm)))
	for _, d := range perm {
		e.Int(int64(d))
	}
}

// decodeCandidates is the inverse of encodeCandidates. Any structural
// error (truncation, out-of-range dimension, absurd count) fails decoding
// as a whole; the caller treats that as a store miss and recomputes.
func decodeCandidates(raw []byte) ([]Candidate, error) {
	d, err := store.NewDec(raw)
	if err != nil {
		return nil, err
	}
	n, err := d.Int()
	if err != nil {
		return nil, err
	}
	if n < 0 || n > 1<<16 {
		return nil, fmt.Errorf("mapper: stored candidate count %d out of range", n)
	}
	out := make([]Candidate, 0, n)
	for i := int64(0); i < n; i++ {
		var c Candidate
		if c.Cycles, err = d.Int(); err != nil {
			return nil, err
		}
		if c.OffchipBits, err = d.Int(); err != nil {
			return nil, err
		}
		if c.Mapping, err = DecodeMapping(d); err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return out, nil
}

func decPerm(d *store.Dec) ([]mapping.Dim, error) {
	n, err := d.Int()
	if err != nil {
		return nil, err
	}
	if n < 0 || n > int64(mapping.NumDims) {
		return nil, fmt.Errorf("mapper: stored permutation length %d out of range", n)
	}
	perm := make([]mapping.Dim, 0, n)
	for i := int64(0); i < n; i++ {
		v, err := d.Int()
		if err != nil {
			return nil, err
		}
		if v < 0 || v >= int64(mapping.NumDims) {
			return nil, fmt.Errorf("mapper: stored dimension %d out of range", v)
		}
		perm = append(perm, mapping.Dim(v))
	}
	return perm, nil
}
