package mapper

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"secureloop/internal/store"
	"secureloop/internal/workload"
)

// The search cache memoises SearchCached results across experiments (the
// same layer shapes recur in every figure's sweep). It is sharded so the
// parallel design-space sweep and the parallel per-layer scheduling step do
// not serialize on one mutex, and each shard carries a singleflight table so
// concurrent requests for the same layer shape run one search and share the
// result instead of duplicating the work.

type cacheKey struct {
	layer workload.Layer
	pesX  int
	pesY  int
	glb   int64
	rf    int64
	effBW float64
	topK  int
	// opt is part of the identity: guided results at Epsilon > 0 are
	// admissible approximations, never interchangeable with exhaustive
	// entries (and whether warm seeding ran can matter at Epsilon > 0 too).
	opt Options
}

// numShards bounds lock contention; power of two so the hash mixes cheaply.
const numShards = 32

type inflightSearch struct {
	done chan struct{}
	val  []Candidate
	// err is the leader's failure (cancellation or a recovered panic); set
	// before done is closed. Waiters seeing it retry — the failure may be
	// specific to the leader's context.
	err error
}

type cacheShard struct {
	mu       sync.Mutex
	entries  map[cacheKey][]Candidate     // guarded by mu
	inflight map[cacheKey]*inflightSearch // guarded by mu
}

var (
	shards [numShards]cacheShard

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	cacheShared atomic.Int64
)

// shard hashes the key fields (FNV-1a) to pick a shard.
func (k cacheKey) shard() *cacheShard {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	l := k.layer
	for _, v := range [...]int{
		l.C, l.M, l.R, l.S, l.P, l.Q,
		l.StrideH, l.StrideW, l.PadH, l.PadW, l.N, l.WordBits,
		k.pesX, k.pesY, k.topK,
	} {
		mix(uint64(v))
	}
	if l.Depthwise {
		mix(1)
	}
	mix(uint64(k.glb))
	mix(uint64(k.rf))
	mix(math.Float64bits(k.effBW))
	mix(uint64(k.opt.Mode))
	mix(math.Float64bits(k.opt.Epsilon))
	if k.opt.DisableWarmStart {
		mix(1)
	}
	return &shards[h%numShards]
}

// Stats reports cache effectiveness counters.
type Stats struct {
	// Hits counts requests answered from a completed entry.
	Hits int64
	// Misses counts requests that ran a search.
	Misses int64
	// Shared counts requests that waited on an identical in-flight search
	// instead of duplicating it (singleflight coalescing).
	Shared int64
	// Entries is the number of distinct cached searches.
	Entries int64
}

// CacheStats snapshots the search-cache counters.
func CacheStats() Stats {
	s := Stats{
		Hits:   cacheHits.Load(),
		Misses: cacheMisses.Load(),
		Shared: cacheShared.Load(),
	}
	for i := range shards {
		sh := &shards[i]
		sh.mu.Lock()
		s.Entries += int64(len(sh.entries))
		sh.mu.Unlock()
	}
	return s
}

// ResetCache drops all cached searches and zeroes the counters (used by
// benchmarks and tests that need a cold cache).
func ResetCache() {
	for i := range shards {
		sh := &shards[i]
		sh.mu.Lock()
		sh.entries = nil
		sh.mu.Unlock()
	}
	cacheHits.Store(0)
	cacheMisses.Store(0)
	cacheShared.Store(0)
}

// cacheTopK is the k the cache stores; requests for smaller k slice the
// cached result, so sweeping k (the paper's Figure 10) costs one search.
const cacheTopK = 10

// SearchCached is Search with process-wide memoisation. Requests with
// TopK <= cacheTopK share one cached search; larger requests bypass the
// prefix optimisation and cache at their own k. Concurrent requests for the
// same shape coalesce onto a single search. It is SearchCachedCtx with a
// background context.
func SearchCached(req Request) []Candidate {
	out, _ := SearchCachedCtx(context.Background(), req)
	return out
}

// SearchCachedCtx is the cancellable cached search. Failed or cancelled
// searches are never stored, so a cancelled request cannot poison the cache
// with a partial result; waiters coalesced onto a search whose leader fails
// retry with their own context (one becomes the new leader).
func SearchCachedCtx(ctx context.Context, req Request) ([]Candidate, error) {
	storeK := cacheTopK
	if req.TopK > storeK {
		storeK = req.TopK
	}
	key := cacheKey{
		layer: *req.Layer, pesX: req.PEsX, pesY: req.PEsY,
		glb: req.GLBBits, rf: req.RFBits,
		effBW: req.EffectiveBytesPerCycle, topK: storeK,
		opt: req.Opt,
	}
	key.layer.Name = "" // shape-keyed: identical shapes share results
	sh := key.shard()

	for {
		sh.mu.Lock()
		if got, ok := sh.entries[key]; ok {
			sh.mu.Unlock()
			cacheHits.Add(1)
			return clipTopK(got, req.TopK), nil
		}
		if call, ok := sh.inflight[key]; ok {
			sh.mu.Unlock()
			cacheShared.Add(1)
			select {
			case <-call.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if call.err != nil {
				// The leader failed with *its* context; ours may still be
				// live, so go around and re-check (possibly leading now).
				continue
			}
			return clipTopK(call.val, req.TopK), nil
		}
		call := &inflightSearch{done: make(chan struct{})}
		if sh.inflight == nil {
			sh.inflight = map[cacheKey]*inflightSearch{}
		}
		sh.inflight[key] = call
		sh.mu.Unlock()

		cacheMisses.Add(1)
		full := req
		full.TopK = storeK
		val, err := searchOrLoad(ctx, full, key)

		sh.mu.Lock()
		if err == nil {
			if sh.entries == nil {
				sh.entries = map[cacheKey][]Candidate{}
			}
			sh.entries[key] = val
		}
		delete(sh.inflight, key)
		sh.mu.Unlock()
		call.val, call.err = val, err
		close(call.done)
		if err != nil {
			return nil, err
		}
		return clipTopK(val, req.TopK), nil
	}
}

// searchOrLoad resolves a cache miss: consult the persistent store first
// (read-through), fall back to the real search, and write the fresh result
// behind. It runs only on the singleflight leader, so concurrent identical
// misses cost one disk lookup, not one per waiter. A record that fails to
// decode (version skew, corruption that slipped past the CRC) is treated
// as a miss — never an error.
func searchOrLoad(ctx context.Context, full Request, key cacheKey) ([]Candidate, error) {
	if full.Store == nil {
		return SearchCtx(ctx, full)
	}
	pk := persistSearchKey(key)
	if raw, ok := full.Store.Get(pk); ok {
		if val, derr := decodeCandidates(raw); derr == nil {
			return val, nil
		}
	}
	val, err := SearchCtx(ctx, full)
	if err == nil {
		full.Store.Put(store.KindMapper, pk, encodeCandidates(val))
	}
	return val, err
}

func clipTopK(got []Candidate, k int) []Candidate {
	if len(got) > k {
		got = got[:k]
	}
	return got
}
