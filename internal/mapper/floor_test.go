package mapper

import (
	"testing"

	"secureloop/internal/arch"
	"secureloop/internal/workload"
)

// TestSearchLowerBoundSound pins the floor's contract: on every AlexNet
// layer, across PE-array shapes, buffer sizes and effective bandwidths,
// SearchLowerBound never exceeds the cost of the best candidate either
// search mode returns — the property the DSE coordinator's dominance
// pruning is sound against.
func TestSearchLowerBoundSound(t *testing.T) {
	base := arch.Base()
	specs := []arch.Spec{
		base,
		base.WithGlobalBuffer(16 * 1024),
		base.WithPEs(28, 24).WithGlobalBuffer(32 * 1024),
	}
	bws := []float64{0.5, 4, float64(base.DRAM.BytesPerCycle)}
	net := workload.AlexNet()
	for _, spec := range specs {
		for _, bw := range bws {
			for i := range net.Layers {
				l := &net.Layers[i]
				req := Request{
					Layer: l,
					PEsX:  spec.PEsX, PEsY: spec.PEsY,
					GLBBits: spec.GlobalBufferBits(), RFBits: spec.RegFileBits(),
					EffectiveBytesPerCycle: bw,
					TopK:                   1,
				}
				lb := SearchLowerBound(req)
				if lb < 0 {
					t.Fatalf("%s pe%dx%d bw=%g: negative bound %d", l.Name, spec.PEsX, spec.PEsY, bw, lb)
				}
				for _, mode := range []Mode{Exhaustive, Guided} {
					r := req
					r.Opt = Options{Mode: mode}
					best := Search(r)[0].Cycles
					if lb > best {
						t.Errorf("%s pe%dx%d glb%dB bw=%g mode=%v: bound %d exceeds best candidate %d",
							l.Name, spec.PEsX, spec.PEsY, spec.GlobalBufferBytes, bw, mode, lb, best)
					}
				}
			}
		}
	}
}

// TestSearchLowerBoundModeIndependent pins that the bound never reads the
// search options: the coordinator memoises it per (spec, bandwidth) and
// reuses it across exhaustive and guided sweeps.
func TestSearchLowerBoundModeIndependent(t *testing.T) {
	l := workload.AlexNet().Layer(2)
	spec := arch.Base()
	req := Request{
		Layer: l,
		PEsX:  spec.PEsX, PEsY: spec.PEsY,
		GLBBits: spec.GlobalBufferBits(), RFBits: spec.RegFileBits(),
		EffectiveBytesPerCycle: 4,
		TopK:                   1,
	}
	want := SearchLowerBound(req)
	for _, opt := range []Options{
		{Mode: Guided},
		{Mode: Guided, Epsilon: 0.5},
		{Mode: Exhaustive},
	} {
		r := req
		r.Opt = opt
		r.TopK = 6
		if got := SearchLowerBound(r); got != want {
			t.Errorf("opt %+v: bound %d != %d", opt, got, want)
		}
	}
}
