package mapper

import (
	"context"
	"testing"

	"secureloop/internal/arch"
	"secureloop/internal/workload"
)

// benchLayer is an AlexNet-conv2-shaped layer, a representative mid-size
// convolution for the step-1 search.
func benchLayer() workload.Layer {
	return workload.Layer{
		Name: "conv2", C: 64, M: 192, R: 5, S: 5, P: 27, Q: 27,
		StrideH: 1, StrideW: 1, PadH: 2, PadW: 2,
		N: 1, WordBits: 16,
	}
}

// BenchmarkMapperSearch measures one uncached top-k loopnest search on the
// base architecture (the step-1 hot path of every design-point evaluation).
func BenchmarkMapperSearch(b *testing.B) {
	l := benchLayer()
	spec := arch.Base()
	req := Request{
		Layer: &l,
		PEsX:  spec.PEsX, PEsY: spec.PEsY,
		GLBBits: spec.GlobalBufferBits(), RFBits: spec.RegFileBits(),
		EffectiveBytesPerCycle: float64(spec.DRAM.BytesPerCycle),
		TopK:                   6,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := Search(req); len(got) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// benchRequest is the shared request of the mapper benchmarks.
func benchRequest(l *workload.Layer) Request {
	spec := arch.Base()
	return Request{
		Layer: l,
		PEsX:  spec.PEsX, PEsY: spec.PEsY,
		GLBBits: spec.GlobalBufferBits(), RFBits: spec.RegFileBits(),
		EffectiveBytesPerCycle: float64(spec.DRAM.BytesPerCycle),
		TopK:                   6,
	}
}

// BenchmarkMapperGuided measures the guided search, cold (warm-start store
// disabled), on the exact request BenchmarkMapperSearch runs — the ns/op
// ratio between the two is the guided-search speedup. The cost-ratio metric
// is best-candidate scheduling cycles, guided over exhaustive, summed over
// all AlexNet layers: 1.000 means zero cost regression (at the default
// Epsilon = 0 it is exact by construction, and asserted by the equivalence
// tests; the metric keeps BENCH_PR6.json honest about it).
func BenchmarkMapperGuided(b *testing.B) {
	l := benchLayer()
	req := guidedRequest(benchRequest(&l), 0, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		got, err := SearchCtx(context.Background(), req)
		if err != nil || len(got) == 0 {
			b.Fatalf("guided search: %d candidates, err %v", len(got), err)
		}
	}
	b.StopTimer()
	var guidedCycles, exhaustiveCycles int64
	an := workload.AlexNet()
	for i := 0; i < an.NumLayers(); i++ {
		lr := an.Layer(i)
		g, err := SearchCtx(context.Background(), guidedRequest(benchRequest(lr), 0, false))
		if err != nil || len(g) == 0 {
			b.Fatalf("guided search %s: %v", lr.Name, err)
		}
		e := Search(benchRequest(lr))
		guidedCycles += g[0].Cycles
		exhaustiveCycles += e[0].Cycles
	}
	b.ReportMetric(float64(guidedCycles)/float64(exhaustiveCycles), "cost-ratio")
}

// BenchmarkMapperWarmStart measures the guided search seeded from the
// warm-start store: the store is pre-populated by a search at a
// neighbouring design point (double the GLB — a different exact-cache key,
// the same canonical warm key), the way a DSE sweep hands one spec's
// winners to the next.
func BenchmarkMapperWarmStart(b *testing.B) {
	l := benchLayer()
	req := guidedRequest(benchRequest(&l), 0, true)
	ResetWarmStore()
	neighbour := req
	neighbour.GLBBits *= 2
	if _, err := SearchCtx(context.Background(), neighbour); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := SearchCtx(context.Background(), req)
		if err != nil || len(got) == 0 {
			b.Fatalf("warm search: %d candidates, err %v", len(got), err)
		}
	}
}

// BenchmarkMapperSearchReference measures the retained pre-optimisation
// inner loop (the oracle of TestSearchEquivalence) on the same request, so
// scripts/bench.sh can record a live before/after pair — time and
// allocations — on the machine running the script.
func BenchmarkMapperSearchReference(b *testing.B) {
	l := benchLayer()
	spec := arch.Base()
	req := Request{
		Layer: &l,
		PEsX:  spec.PEsX, PEsY: spec.PEsY,
		GLBBits: spec.GlobalBufferBits(), RFBits: spec.RegFileBits(),
		EffectiveBytesPerCycle: float64(spec.DRAM.BytesPerCycle),
		TopK:                   6,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := searchReference(req); len(got) == 0 {
			b.Fatal("no candidates")
		}
	}
}
