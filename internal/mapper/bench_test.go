package mapper

import (
	"testing"

	"secureloop/internal/arch"
	"secureloop/internal/workload"
)

// benchLayer is an AlexNet-conv2-shaped layer, a representative mid-size
// convolution for the step-1 search.
func benchLayer() workload.Layer {
	return workload.Layer{
		Name: "conv2", C: 64, M: 192, R: 5, S: 5, P: 27, Q: 27,
		StrideH: 1, StrideW: 1, PadH: 2, PadW: 2,
		N: 1, WordBits: 16,
	}
}

// BenchmarkMapperSearch measures one uncached top-k loopnest search on the
// base architecture (the step-1 hot path of every design-point evaluation).
func BenchmarkMapperSearch(b *testing.B) {
	l := benchLayer()
	spec := arch.Base()
	req := Request{
		Layer: &l,
		PEsX:  spec.PEsX, PEsY: spec.PEsY,
		GLBBits: spec.GlobalBufferBits(), RFBits: spec.RegFileBits(),
		EffectiveBytesPerCycle: float64(spec.DRAM.BytesPerCycle),
		TopK:                   6,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := Search(req); len(got) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// BenchmarkMapperSearchReference measures the retained pre-optimisation
// inner loop (the oracle of TestSearchEquivalence) on the same request, so
// scripts/bench.sh can record a live before/after pair — time and
// allocations — on the machine running the script.
func BenchmarkMapperSearchReference(b *testing.B) {
	l := benchLayer()
	spec := arch.Base()
	req := Request{
		Layer: &l,
		PEsX:  spec.PEsX, PEsY: spec.PEsY,
		GLBBits: spec.GlobalBufferBits(), RFBits: spec.RegFileBits(),
		EffectiveBytesPerCycle: float64(spec.DRAM.BytesPerCycle),
		TopK:                   6,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := searchReference(req); len(got) == 0 {
			b.Fatal("no candidates")
		}
	}
}
