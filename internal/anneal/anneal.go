// Package anneal implements the paper's third scheduling step (Section 4.3,
// Algorithm 1): simulated annealing over the per-layer top-k loopnest
// schedules. The state is one schedule choice per layer; a neighbour
// replaces one randomly chosen layer's schedule with another of its top-k
// candidates; acceptance is probabilistic under a linearly decaying
// temperature, so diverse states are explored early and the best ones
// exploited late.
package anneal

import (
	"math"
	"math/rand"
)

// Problem is a discrete per-layer choice space with a global cost.
type Problem interface {
	// NumLayers returns the number of layers (state components).
	NumLayers() int
	// NumChoices returns the candidate count of layer i (>= 1).
	NumChoices(i int) int
	// Cost evaluates the full-network cost of a choice vector. Lower is
	// better. Implementations should memoise: the same pairs recur.
	Cost(choices []int) float64
}

// Options tunes the search.
type Options struct {
	// Iterations is the annealing step count (the paper defaults to 1000).
	Iterations int
	// TInit and TFinal bound the linearly decaying temperature, expressed
	// relative to the initial cost (the cost is normalised internally, so
	// these are dimensionless).
	TInit, TFinal float64
	// Seed drives the random source; equal seeds reproduce runs exactly.
	Seed int64
}

// DefaultOptions returns the paper's defaults: 1000 iterations.
func DefaultOptions() Options {
	return Options{Iterations: 1000, TInit: 0.05, TFinal: 1e-4, Seed: 1}
}

// Result reports the annealing outcome.
type Result struct {
	// Choices is the best state found (not merely the final state).
	Choices []int
	// Cost is its cost.
	Cost float64
	// InitialCost is the cost of the all-top-1 starting state.
	InitialCost float64
	// Accepted counts accepted moves.
	Accepted int
}

// Minimize runs Algorithm 1: starting from the all-top-1 state, it
// repeatedly perturbs one layer's choice and probabilistically accepts the
// move. It returns the best state observed.
func Minimize(p Problem, opts Options) Result {
	n := p.NumLayers()
	cur := make([]int, n)
	curCost := p.Cost(cur)
	res := Result{
		Choices:     append([]int(nil), cur...),
		Cost:        curCost,
		InitialCost: curCost,
	}
	if n == 0 || opts.Iterations <= 0 {
		return res
	}
	// Layers with a single candidate cannot move; if none can, we are done.
	movable := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if p.NumChoices(i) > 1 {
			movable = append(movable, i)
		}
	}
	if len(movable) == 0 {
		return res
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	norm := curCost
	if norm <= 0 {
		norm = 1
	}

	for it := 0; it < opts.Iterations; it++ {
		// Linear temperature decay (Algorithm 1 line 13).
		frac := float64(it) / float64(opts.Iterations)
		t := opts.TInit + (opts.TFinal-opts.TInit)*frac

		i := movable[rng.Intn(len(movable))]
		next := rng.Intn(p.NumChoices(i))
		if next == cur[i] {
			continue
		}
		old := cur[i]
		cur[i] = next
		nextCost := p.Cost(cur)

		// Probabilistic acceptance (Algorithm 1 lines 8-12): improvements
		// always accepted, regressions with probability exp(diff/t).
		diff := (curCost - nextCost) / norm
		if math.Exp(diff/t) > rng.Float64() {
			curCost = nextCost
			res.Accepted++
			if nextCost < res.Cost {
				res.Cost = nextCost
				copy(res.Choices, cur)
			}
		} else {
			cur[i] = old
		}
	}
	return res
}
