// Package anneal implements the paper's third scheduling step (Section 4.3,
// Algorithm 1): simulated annealing over the per-layer top-k loopnest
// schedules. The state is one schedule choice per layer; a neighbour
// replaces one randomly chosen layer's schedule with another of its top-k
// candidates; acceptance is probabilistic under a linearly decaying
// temperature, so diverse states are explored early and the best ones
// exploited late.
package anneal

import (
	"context"
	"math"
	"math/rand"

	"secureloop/internal/obs"
)

// Problem is a discrete per-layer choice space with a global cost.
type Problem interface {
	// NumLayers returns the number of layers (state components).
	NumLayers() int
	// NumChoices returns the candidate count of layer i (>= 1).
	NumChoices(i int) int
	// Cost evaluates the full-network cost of a choice vector. Lower is
	// better. Implementations should memoise: the same pairs recur.
	Cost(choices []int) float64
}

// Incremental is an optional Problem extension for states whose cost
// responds locally to a single-component move (a layer's schedule change
// touches only that layer and its segment neighbours). When a Problem
// implements it, Minimize evaluates each proposed move through DeltaCost
// instead of a full Cost recomputation, turning the per-iteration cost from
// O(segment) layer evaluations into O(1).
type Incremental interface {
	Problem
	// DeltaCost returns the cost of the state obtained from choices by
	// setting component i to next. It must not mutate choices and must
	// return exactly the value Cost would return on the modified vector, so
	// the annealing trajectory is identical with or without the fast path.
	DeltaCost(choices []int, i, next int) float64
}

// Options tunes the search.
type Options struct {
	// Iterations is the annealing step count (the paper defaults to 1000).
	Iterations int
	// TInit and TFinal bound the linearly decaying temperature, expressed
	// relative to the initial cost (the cost is normalised internally, so
	// these are dimensionless).
	TInit, TFinal float64
	// Seed drives the random source; equal seeds reproduce runs exactly.
	Seed int64
	// Observer receives AnnealProgress events (nil means none). Emission
	// happens at move-chunk boundaries, outside the random trajectory, so
	// observed and unobserved runs are bitwise identical.
	Observer obs.Observer
	// Tag identifies this problem in emitted events (the scheduler passes
	// the segment's first layer index).
	Tag int
}

// DefaultOptions returns the paper's defaults: 1000 iterations.
func DefaultOptions() Options {
	return Options{Iterations: 1000, TInit: 0.05, TFinal: 1e-4, Seed: 1}
}

// Result reports the annealing outcome.
type Result struct {
	// Choices is the best state found (not merely the final state).
	Choices []int
	// Cost is its cost.
	Cost float64
	// InitialCost is the cost of the all-top-1 starting state.
	InitialCost float64
	// Accepted counts accepted moves.
	Accepted int
}

// moveChunk is the cancellation/progress granularity of the move loop: the
// context is polled and progress emitted once per chunk of moves, never per
// move, so the steady-state iteration stays free of interface calls and
// allocations.
const moveChunk = 64

// Minimize runs Algorithm 1 to completion with a background context. It is
// a thin wrapper over MinimizeCtx; the trajectory is identical.
func Minimize(p Problem, opts Options) Result {
	res, _ := MinimizeCtx(context.Background(), p, opts)
	return res
}

// MinimizeCtx runs Algorithm 1: starting from the all-top-1 state, it
// repeatedly perturbs one layer's choice and probabilistically accepts the
// move. It returns the best state observed. The context is polled at
// move-chunk boundaries; on cancellation the best state found so far is
// returned together with ctx.Err(), so callers can either abort or keep the
// partial result.
func MinimizeCtx(ctx context.Context, p Problem, opts Options) (Result, error) {
	n := p.NumLayers()
	ob := obs.OrNop(opts.Observer)
	if err := ctx.Err(); err != nil {
		// Pre-cancelled: do no work, not even the initial evaluation.
		return Result{}, err
	}
	cur := make([]int, n)
	curCost := p.Cost(cur)
	res := Result{
		Choices:     append([]int(nil), cur...),
		Cost:        curCost,
		InitialCost: curCost,
	}
	if n == 0 || opts.Iterations <= 0 {
		return res, nil
	}
	// Layers with a single candidate cannot move; if none can, we are done.
	// Choice counts are hoisted so the move loop never calls back through
	// the interface.
	movable := make([]int, 0, n)
	numChoices := make([]int, n)
	for i := 0; i < n; i++ {
		numChoices[i] = p.NumChoices(i)
		if numChoices[i] > 1 {
			movable = append(movable, i)
		}
	}
	if len(movable) == 0 {
		return res, nil
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	norm := curCost
	if norm <= 0 {
		norm = 1
	}
	inc, incremental := p.(Incremental)

	for it := 0; it < opts.Iterations; it++ {
		// Cancellation and progress at chunk boundaries only: the check sits
		// outside the random trajectory (no rng draw, no state change), so a
		// run that is never cancelled is bitwise identical to the ctx-less
		// path, and the per-move cost stays allocation-free.
		if it%moveChunk == 0 {
			if err := ctx.Err(); err != nil {
				return res, err
			}
			ob.AnnealProgress(obs.AnnealEvent{
				Tag:        opts.Tag,
				Iteration:  it,
				Iterations: opts.Iterations,
				Accepted:   res.Accepted,
				Best:       res.Cost,
			})
		}

		// Linear temperature decay (Algorithm 1 line 13).
		frac := float64(it) / float64(opts.Iterations)
		t := opts.TInit + (opts.TFinal-opts.TInit)*frac

		// Sample a layer and one of its NumChoices(i)-1 *other* candidates,
		// so every iteration proposes a real move (sampling the current
		// choice would burn the iteration as a no-op).
		i := movable[rng.Intn(len(movable))]
		next := rng.Intn(numChoices[i] - 1)
		if next >= cur[i] {
			next++
		}

		var nextCost float64
		if incremental {
			nextCost = inc.DeltaCost(cur, i, next)
		} else {
			old := cur[i]
			cur[i] = next
			nextCost = p.Cost(cur)
			cur[i] = old
		}

		// Probabilistic acceptance (Algorithm 1 lines 8-12): improvements
		// always accepted, regressions with probability exp(diff/t). The
		// draw happens unconditionally so the random trajectory is identical
		// whether or not the improvement fast path skips the exponential
		// (exp(diff/t) >= 1 > draw whenever diff >= 0).
		diff := (curCost - nextCost) / norm
		draw := rng.Float64()
		if diff >= 0 || math.Exp(diff/t) > draw {
			cur[i] = next
			curCost = nextCost
			res.Accepted++
			if nextCost < res.Cost {
				res.Cost = nextCost
				copy(res.Choices, cur)
			}
		}
	}
	ob.AnnealProgress(obs.AnnealEvent{
		Tag:        opts.Tag,
		Iteration:  opts.Iterations,
		Iterations: opts.Iterations,
		Accepted:   res.Accepted,
		Best:       res.Cost,
	})
	return res, nil
}
