package anneal

import (
	"math"
	"testing"
)

// quadProblem: cost is sum of squared distances from a hidden target.
type quadProblem struct {
	target []int
	k      int
	calls  int
}

func (p *quadProblem) NumLayers() int       { return len(p.target) }
func (p *quadProblem) NumChoices(i int) int { return p.k }
func (p *quadProblem) Cost(c []int) float64 {
	p.calls++
	var s float64
	for i, v := range c {
		d := float64(v - p.target[i])
		s += d * d
	}
	return s + 1 // keep positive
}

func TestMinimizeFindsTarget(t *testing.T) {
	p := &quadProblem{target: []int{3, 1, 4, 1, 5, 2, 0, 3}, k: 6}
	res := Minimize(p, Options{Iterations: 5000, TInit: 0.5, TFinal: 1e-4, Seed: 42})
	if res.Cost > res.InitialCost {
		t.Fatalf("annealing worsened: %g > %g", res.Cost, res.InitialCost)
	}
	if math.Abs(res.Cost-1) > 1e-9 {
		t.Errorf("did not find the optimum: cost %g, choices %v", res.Cost, res.Choices)
	}
}

func TestMinimizeDeterministicPerSeed(t *testing.T) {
	mk := func(seed int64) Result {
		p := &quadProblem{target: []int{2, 4, 1, 3}, k: 5}
		return Minimize(p, Options{Iterations: 300, TInit: 0.3, TFinal: 1e-3, Seed: seed})
	}
	a, b := mk(7), mk(7)
	if a.Cost != b.Cost || a.Accepted != b.Accepted {
		t.Error("same seed produced different runs")
	}
	for i := range a.Choices {
		if a.Choices[i] != b.Choices[i] {
			t.Error("same seed produced different choices")
		}
	}
}

func TestMinimizeNeverReturnsWorseThanInitial(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := &quadProblem{target: []int{0, 0, 0}, k: 4}
		res := Minimize(p, Options{Iterations: 50, TInit: 5, TFinal: 1, Seed: seed})
		if res.Cost > res.InitialCost {
			t.Fatalf("seed %d: best cost %g exceeds initial %g", seed, res.Cost, res.InitialCost)
		}
	}
}

func TestMinimizeSingleChoiceNoop(t *testing.T) {
	p := &quadProblem{target: []int{0, 0}, k: 1}
	res := Minimize(p, Options{Iterations: 100, TInit: 1, TFinal: 0.1, Seed: 1})
	if res.Accepted != 0 {
		t.Error("accepted moves with no alternatives")
	}
	if p.calls != 1 {
		t.Errorf("evaluated cost %d times, want 1", p.calls)
	}
}

func TestMinimizeZeroIterations(t *testing.T) {
	p := &quadProblem{target: []int{1}, k: 3}
	res := Minimize(p, Options{Iterations: 0, Seed: 1})
	if res.Cost != res.InitialCost {
		t.Error("zero iterations changed the state")
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.Iterations != 1000 {
		t.Errorf("default iterations = %d, want the paper's 1000", o.Iterations)
	}
	if o.TInit <= o.TFinal {
		t.Error("temperature schedule inverted")
	}
}

// incQuadProblem adds the Incremental fast path to quadProblem.
type incQuadProblem struct {
	quadProblem
	deltaCalls int
}

func (p *incQuadProblem) DeltaCost(c []int, i, next int) float64 {
	p.deltaCalls++
	var s float64
	for j, v := range c {
		if j == i {
			v = next
		}
		d := float64(v - p.target[j])
		s += d * d
	}
	return s + 1
}

// hideIncremental wraps an Incremental problem so Minimize only sees the
// base interface (forcing the full-recomputation path).
type hideIncremental struct{ p Problem }

func (h hideIncremental) NumLayers() int       { return h.p.NumLayers() }
func (h hideIncremental) NumChoices(i int) int { return h.p.NumChoices(i) }
func (h hideIncremental) Cost(c []int) float64 { return h.p.Cost(c) }

// TestIncrementalMatchesFullRecomputation: the DeltaCost fast path must
// reproduce the full-Cost annealing trajectory exactly — same best state,
// same cost, same acceptance count.
func TestIncrementalMatchesFullRecomputation(t *testing.T) {
	opts := Options{Iterations: 800, TInit: 0.4, TFinal: 1e-3, Seed: 11}
	full := &incQuadProblem{quadProblem: quadProblem{target: []int{3, 1, 4, 1, 5}, k: 6}}
	fullRes := Minimize(hideIncremental{full}, opts)
	fast := &incQuadProblem{quadProblem: quadProblem{target: []int{3, 1, 4, 1, 5}, k: 6}}
	fastRes := Minimize(fast, opts)
	if fastRes.Cost != fullRes.Cost || fastRes.Accepted != fullRes.Accepted {
		t.Fatalf("incremental diverged: %+v vs %+v", fastRes, fullRes)
	}
	for i := range fastRes.Choices {
		if fastRes.Choices[i] != fullRes.Choices[i] {
			t.Fatalf("choices diverged: %v vs %v", fastRes.Choices, fullRes.Choices)
		}
	}
	if fast.deltaCalls != opts.Iterations {
		t.Errorf("DeltaCost called %d times, want %d", fast.deltaCalls, opts.Iterations)
	}
	// The fast path evaluates the full cost only once (the initial state).
	if fast.calls != 1 {
		t.Errorf("incremental path called Cost %d times, want 1", fast.calls)
	}
}

// TestEveryIterationProposesARealMove: sampling is over the other
// NumChoices-1 candidates, so no iteration is burned proposing the current
// choice — the full-path Cost is evaluated exactly once per iteration.
func TestEveryIterationProposesARealMove(t *testing.T) {
	p := &quadProblem{target: []int{1, 1}, k: 2}
	opts := Options{Iterations: 200, TInit: 0.5, TFinal: 1e-3, Seed: 5}
	Minimize(p, opts)
	if want := opts.Iterations + 1; p.calls != want {
		t.Errorf("Cost called %d times, want %d (one per iteration plus the initial state)",
			p.calls, want)
	}
}

// TestHigherTemperatureExploresMore: with a very high temperature nearly
// all moves are accepted; with near-zero temperature only improvements are.
func TestTemperatureControlsAcceptance(t *testing.T) {
	hot := &quadProblem{target: []int{9, 9, 9, 9}, k: 10}
	hotRes := Minimize(hot, Options{Iterations: 500, TInit: 1e6, TFinal: 1e6, Seed: 3})
	cold := &quadProblem{target: []int{9, 9, 9, 9}, k: 10}
	coldRes := Minimize(cold, Options{Iterations: 500, TInit: 1e-9, TFinal: 1e-12, Seed: 3})
	if hotRes.Accepted <= coldRes.Accepted {
		t.Errorf("hot accepted %d <= cold accepted %d", hotRes.Accepted, coldRes.Accepted)
	}
}
