package anneal

import (
	"context"
	"errors"
	"testing"

	"secureloop/internal/obs"
)

// cancelOnProgress cancels the run's context at the first AnnealProgress
// event, exercising the chunk-boundary poll.
type cancelOnProgress struct {
	obs.Nop
	cancel context.CancelFunc
	events int
}

func (c *cancelOnProgress) AnnealProgress(obs.AnnealEvent) {
	c.events++
	c.cancel()
}

func TestMinimizeCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := &quadProblem{target: []int{3, 1, 4}, k: 5}
	_, err := MinimizeCtx(ctx, p, Options{Iterations: 1000, TInit: 0.5, TFinal: 1e-4, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if p.calls != 0 {
		t.Errorf("pre-cancelled run evaluated the cost %d times", p.calls)
	}
}

func TestMinimizeCancelMidRunKeepsPartialBest(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ob := &cancelOnProgress{cancel: cancel}
	p := &quadProblem{target: []int{3, 1, 4, 1, 5, 2}, k: 6}
	res, err := MinimizeCtx(ctx, p, Options{
		Iterations: 1 << 20, TInit: 0.5, TFinal: 1e-4, Seed: 1, Observer: ob,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ob.events == 0 {
		t.Fatal("no progress events before cancellation")
	}
	// The cancellation poll runs once per chunk: the run must stop within
	// one chunk of the cancelling event, far short of the full budget.
	if p.calls > 3*moveChunk {
		t.Errorf("run kept going for %d cost calls after cancellation", p.calls)
	}
	// The partial best is still a valid result.
	if len(res.Choices) != p.NumLayers() {
		t.Errorf("partial result has %d choices, want %d", len(res.Choices), p.NumLayers())
	}
	if res.Cost > res.InitialCost {
		t.Errorf("partial best %g worse than initial %g", res.Cost, res.InitialCost)
	}
}
