module secureloop

go 1.22
