// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its experiment through the same
// code path as cmd/experiments and reports the headline quantities as
// custom metrics, so `go test -bench=. -benchmem` reproduces the paper's
// result set end to end. The experiments are macro-scale: expect minutes,
// not microseconds, for the scheduling figures.
package secureloop_test

import (
	"context"
	"strconv"
	"testing"

	"secureloop/internal/core"
	"secureloop/internal/experiments"
)

// benchCtx is the context every macro benchmark runs under; benchmarks are
// never cancelled, so results stay byte-identical to the ctx-less paths.
func benchCtx() context.Context { return context.Background() }

// benchOpts selects full-fidelity runs; use -short for reduced fidelity.
func benchOpts() experiments.Options {
	return experiments.Options{Quick: testing.Short()}
}

// BenchmarkFig3AESCatalog regenerates Figure 3 (AES implementation
// trade-off space) and reports the catalog span.
func BenchmarkFig3AESCatalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig3()
		if len(t.Rows) != 10 {
			b.Fatalf("%d designs", len(t.Rows))
		}
	}
}

// BenchmarkTable2EngineSpecs regenerates Table 2.
func BenchmarkTable2EngineSpecs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table2()
		if len(t.Rows) != 3 {
			b.Fatalf("%d engines", len(t.Rows))
		}
	}
}

// BenchmarkFig9AuthBlockSweep regenerates Figure 9 (off-chip traffic vs
// AuthBlock size and orientation) and reports the optimal sizes.
func BenchmarkFig9AuthBlockSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h, v := experiments.Fig9()
		b.ReportMetric(bestU(b, h), "best_u_horizontal")
		b.ReportMetric(bestU(b, v), "best_u_vertical")
	}
}

func bestU(b *testing.B, t experiments.Table) float64 {
	b.Helper()
	bestU, bestTotal := 0.0, 1e18
	for _, r := range t.Rows {
		u, err1 := strconv.ParseFloat(r[0], 64)
		total, err2 := strconv.ParseFloat(r[3], 64)
		if err1 != nil || err2 != nil {
			b.Fatalf("bad row %v", r)
		}
		if total < bestTotal {
			bestTotal, bestU = total, u
		}
	}
	return bestU
}

// BenchmarkFig10AnnealK regenerates Figure 10 (annealing speedup vs k on
// MobileNetV2) and reports the speedup at the paper's chosen k=6.
func BenchmarkFig10AnnealK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig10(benchCtx(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range t.Rows {
			if r[0] == "6" {
				v, _ := strconv.ParseFloat(r[1], 64)
				b.ReportMetric(v, "speedup_pct_k6")
			}
		}
	}
}

// BenchmarkFig11Schedulers regenerates Figure 11 (scheduling-algorithm
// comparison) and reports the normalized latencies and headline gains.
func BenchmarkFig11Schedulers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, results, err := experiments.Fig11(benchCtx(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			b.ReportMetric(r.NormLatency[core.CryptTileSingle], r.Workload+"_tile")
			b.ReportMetric(r.NormLatency[core.CryptOptCross], r.Workload+"_cross")
		}
		var maxSpeedup, maxEDP float64
		for _, r := range results {
			if r.SpeedupPct > maxSpeedup {
				maxSpeedup = r.SpeedupPct
			}
			if r.EDPImprovementPct > maxEDP {
				maxEDP = r.EDPImprovementPct
			}
		}
		// Paper headline: up to 33.2% speedup and 50.2% EDP improvement.
		b.ReportMetric(maxSpeedup, "max_speedup_pct")
		b.ReportMetric(maxEDP, "max_edp_gain_pct")
	}
}

// BenchmarkFig12Roofline regenerates Figure 12.
func BenchmarkFig12Roofline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig12(benchCtx(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) < 12 {
			b.Fatalf("%d roofline rows", len(t.Rows))
		}
	}
}

// BenchmarkFig13CryptoConfigs regenerates Figure 13 (crypto engine
// configurations) and reports the MobileNetV2 slowdown spread.
func BenchmarkFig13CryptoConfigs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig13(benchCtx(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, r := range t.Rows {
			v, _ := strconv.ParseFloat(r[2], 64)
			if v > worst {
				worst = v
			}
		}
		b.ReportMetric(worst, "worst_slowdown")
	}
}

// BenchmarkFig14PEScaling regenerates Figure 14 (PE array scaling).
func BenchmarkFig14PEScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig14(benchCtx(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 9 {
			b.Fatalf("%d rows", len(t.Rows))
		}
	}
}

// BenchmarkFig15BufferScaling regenerates Figure 15 (buffer scaling).
func BenchmarkFig15BufferScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig15(benchCtx(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 9 {
			b.Fatalf("%d rows", len(t.Rows))
		}
	}
}

// BenchmarkDRAMTechnologies regenerates the Section 5.2 DRAM study.
func BenchmarkDRAMTechnologies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.DRAMStudy(benchCtx(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 3 {
			b.Fatalf("%d DRAM rows", len(t.Rows))
		}
	}
}

// BenchmarkFig16Pareto regenerates Figure 16 (area vs performance) and
// reports the Pareto-front size.
func BenchmarkFig16Pareto(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, points, err := experiments.Fig16(benchCtx(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		front := 0
		for _, p := range points {
			if p.Pareto {
				front++
			}
		}
		b.ReportMetric(float64(front), "pareto_points")
		b.ReportMetric(float64(len(points)), "design_points")
	}
}
