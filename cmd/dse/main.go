// Command dse runs the design-space exploration of the paper's Section 5.3:
// it sweeps PE-array shapes, global-buffer sizes and cryptographic-engine
// configurations on a workload, and reports every design point's area,
// latency and slowdown with the Pareto front marked (Figure 16).
//
// Usage:
//
//	dse [-workload alexnet] [-iters 200] [-guided] [-epsilon 0] [-pareto-only]
//	    [-shards 1] [-prune] [-csv out.csv] [-progress]
//	    [-cpuprofile cpu.out] [-memprofile mem.out]
//
// -guided switches every loopnest search to the lower-bound-guided mode
// with cross-design-point warm starts (byte-identical results at the
// default -epsilon 0, an order of magnitude faster per layer).
// -prune routes the sweep through the dominance-pruned coordinator: a cheap
// bound pre-pass plus a streaming Pareto front let it skip design points
// that cannot reach the front, and the output (the front itself,
// byte-identical to the unpruned sweep's) prints with per-point skip events
// under -progress. -shards partitions the coordinator's work into canonical
// best-bound-first shards. -progress streams one line per resolved design
// point to stderr; pruned and store-answered points appear with their
// outcome in parentheses, and the Done counter stays monotone. Ctrl-C
// cancels the sweep: no new design points launch, in-flight points stop at
// their next stage boundary, and the error names the interrupted stage.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"secureloop/internal/arch"
	"secureloop/internal/core"
	"secureloop/internal/dse"
	"secureloop/internal/mapper"
	"secureloop/internal/obs"
	"secureloop/internal/store"
	"secureloop/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "alexnet", "workload: alexnet, resnet18, mobilenetv2, vgg16")
		iters        = flag.Int("iters", 200, "annealing iterations per design point")
		guided       = flag.Bool("guided", false, "use the guided loopnest search (byte-identical results at epsilon 0)")
		epsilon      = flag.Float64("epsilon", 0, "guided-search relaxation: allowed per-rank cycle regression (e.g. 0.01)")
		paretoOnly   = flag.Bool("pareto-only", false, "print only the Pareto front")
		csvPath      = flag.String("csv", "", "write the sweep as CSV")
		progress     = flag.Bool("progress", false, "stream per-design-point progress to stderr")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file at exit")
		storeDir     = flag.String("store", "", "persistent result-store directory: a warm rerun of the sweep replays byte-identical design points from disk")
		shards       = flag.Int("shards", 1, "coordinator sweep: number of canonical best-bound-first shards")
		prune        = flag.Bool("prune", false, "coordinator sweep with dominance pruning: skip design points whose (area, cycle lower bound) is dominated; prints the Pareto front (byte-identical to the unpruned sweep's)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	hooks := obs.Options{CPUProfile: *cpuprofile, MemProfile: *memprofile}
	if *progress {
		hooks.Observer = obs.NewLogger(os.Stderr)
	}
	stopProf, err := hooks.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	net, err := workload.ByName(*workloadName)
	if err != nil {
		fatal(err)
	}
	specs, cryptos := dse.Figure16Space(arch.Base())

	fmt.Fprintf(os.Stderr, "evaluating %d design points...\n", len(specs)*len(cryptos))
	sweepOpts := dse.Options{AnnealIterations: *iters, Observe: hooks.Observer}
	if *guided {
		sweepOpts.Mapper = mapper.Options{Mode: mapper.Guided, Epsilon: *epsilon}
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{})
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := st.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "dse: store close:", err)
			}
		}()
		sweepOpts.Store = st
	}
	var points []dse.DesignPoint
	if *prune || *shards > 1 {
		sweepOpts.Shards = *shards
		sweepOpts.Prune = *prune
		res, err := dse.SweepFrontCtx(ctx, net, specs, cryptos, core.CryptOptCross, sweepOpts)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "dse: interrupted: %v\n", err)
				os.Exit(130)
			}
			fatal(err)
		}
		s := res.Stats
		fmt.Fprintf(os.Stderr,
			"coordinator: %d point(s) in %d shard(s): %d evaluated (%d store-answered), %d pruned, %d deferred (%d re-evaluated)\n",
			s.Points, s.Shards, s.FullEvals, s.StoreHits, s.Pruned, s.Deferred, s.Reevaluated)
		points = res.Front // every front point carries Pareto=true
	} else {
		points, err = dse.SweepOptsCtx(ctx, net, specs, cryptos, core.CryptOptCross, sweepOpts)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "dse: interrupted: %v\n", err)
				os.Exit(130)
			}
			fatal(err)
		}
		dse.MarkPareto(points)
	}

	var csv strings.Builder
	csv.WriteString("design,area_mm2,cycles,slowdown,energy_uj,pareto\n")
	fmt.Printf("%-38s %10s %12s %10s %12s %7s\n", "design", "area_mm2", "cycles", "slowdown", "energy_uJ", "pareto")
	for _, p := range points {
		if *paretoOnly && !p.Pareto {
			continue
		}
		mark := ""
		if p.Pareto {
			mark = "*"
		}
		fmt.Printf("%-38s %10.3f %12d %10.3f %12.3f %7s\n",
			p.Label(), p.AreaMM2, p.Cycles, p.Slowdown(), p.EnergyPJ/1e6, mark)
		fmt.Fprintf(&csv, "%s,%.4f,%d,%.4f,%.4f,%v\n",
			p.Label(), p.AreaMM2, p.Cycles, p.Slowdown(), p.EnergyPJ/1e6, p.Pareto)
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(csv.String()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dse:", err)
	os.Exit(1)
}
